# Empty dependencies file for amtlce_mlci.
# This may be replaced when dependencies are built.
