file(REMOVE_RECURSE
  "CMakeFiles/amtlce_mlci.dir/lci.cpp.o"
  "CMakeFiles/amtlce_mlci.dir/lci.cpp.o.d"
  "libamtlce_mlci.a"
  "libamtlce_mlci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amtlce_mlci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
