file(REMOVE_RECURSE
  "libamtlce_mlci.a"
)
