# Empty dependencies file for amtlce_net.
# This may be replaced when dependencies are built.
