file(REMOVE_RECURSE
  "CMakeFiles/amtlce_net.dir/clock_sync.cpp.o"
  "CMakeFiles/amtlce_net.dir/clock_sync.cpp.o.d"
  "CMakeFiles/amtlce_net.dir/fabric.cpp.o"
  "CMakeFiles/amtlce_net.dir/fabric.cpp.o.d"
  "libamtlce_net.a"
  "libamtlce_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amtlce_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
