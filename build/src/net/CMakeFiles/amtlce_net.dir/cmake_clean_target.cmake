file(REMOVE_RECURSE
  "libamtlce_net.a"
)
