file(REMOVE_RECURSE
  "CMakeFiles/amtlce_amt.dir/node_runtime.cpp.o"
  "CMakeFiles/amtlce_amt.dir/node_runtime.cpp.o.d"
  "CMakeFiles/amtlce_amt.dir/runtime.cpp.o"
  "CMakeFiles/amtlce_amt.dir/runtime.cpp.o.d"
  "libamtlce_amt.a"
  "libamtlce_amt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amtlce_amt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
