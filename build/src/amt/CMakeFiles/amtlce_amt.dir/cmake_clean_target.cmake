file(REMOVE_RECURSE
  "libamtlce_amt.a"
)
