# Empty compiler generated dependencies file for amtlce_amt.
# This may be replaced when dependencies are built.
