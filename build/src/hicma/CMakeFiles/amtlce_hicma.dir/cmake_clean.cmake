file(REMOVE_RECURSE
  "CMakeFiles/amtlce_hicma.dir/driver.cpp.o"
  "CMakeFiles/amtlce_hicma.dir/driver.cpp.o.d"
  "CMakeFiles/amtlce_hicma.dir/tlr_cholesky.cpp.o"
  "CMakeFiles/amtlce_hicma.dir/tlr_cholesky.cpp.o.d"
  "libamtlce_hicma.a"
  "libamtlce_hicma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amtlce_hicma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
