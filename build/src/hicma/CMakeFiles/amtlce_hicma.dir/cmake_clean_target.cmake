file(REMOVE_RECURSE
  "libamtlce_hicma.a"
)
