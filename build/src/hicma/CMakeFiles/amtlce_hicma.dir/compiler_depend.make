# Empty compiler generated dependencies file for amtlce_hicma.
# This may be replaced when dependencies are built.
