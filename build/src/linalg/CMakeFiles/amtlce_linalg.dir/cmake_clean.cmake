file(REMOVE_RECURSE
  "CMakeFiles/amtlce_linalg.dir/blas.cpp.o"
  "CMakeFiles/amtlce_linalg.dir/blas.cpp.o.d"
  "CMakeFiles/amtlce_linalg.dir/hcore.cpp.o"
  "CMakeFiles/amtlce_linalg.dir/hcore.cpp.o.d"
  "CMakeFiles/amtlce_linalg.dir/lowrank.cpp.o"
  "CMakeFiles/amtlce_linalg.dir/lowrank.cpp.o.d"
  "CMakeFiles/amtlce_linalg.dir/starsh.cpp.o"
  "CMakeFiles/amtlce_linalg.dir/starsh.cpp.o.d"
  "CMakeFiles/amtlce_linalg.dir/svd.cpp.o"
  "CMakeFiles/amtlce_linalg.dir/svd.cpp.o.d"
  "libamtlce_linalg.a"
  "libamtlce_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amtlce_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
