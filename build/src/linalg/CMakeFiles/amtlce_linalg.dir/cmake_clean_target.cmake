file(REMOVE_RECURSE
  "libamtlce_linalg.a"
)
