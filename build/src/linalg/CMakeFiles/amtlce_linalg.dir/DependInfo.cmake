
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/blas.cpp" "src/linalg/CMakeFiles/amtlce_linalg.dir/blas.cpp.o" "gcc" "src/linalg/CMakeFiles/amtlce_linalg.dir/blas.cpp.o.d"
  "/root/repo/src/linalg/hcore.cpp" "src/linalg/CMakeFiles/amtlce_linalg.dir/hcore.cpp.o" "gcc" "src/linalg/CMakeFiles/amtlce_linalg.dir/hcore.cpp.o.d"
  "/root/repo/src/linalg/lowrank.cpp" "src/linalg/CMakeFiles/amtlce_linalg.dir/lowrank.cpp.o" "gcc" "src/linalg/CMakeFiles/amtlce_linalg.dir/lowrank.cpp.o.d"
  "/root/repo/src/linalg/starsh.cpp" "src/linalg/CMakeFiles/amtlce_linalg.dir/starsh.cpp.o" "gcc" "src/linalg/CMakeFiles/amtlce_linalg.dir/starsh.cpp.o.d"
  "/root/repo/src/linalg/svd.cpp" "src/linalg/CMakeFiles/amtlce_linalg.dir/svd.cpp.o" "gcc" "src/linalg/CMakeFiles/amtlce_linalg.dir/svd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/des/CMakeFiles/amtlce_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
