# Empty compiler generated dependencies file for amtlce_linalg.
# This may be replaced when dependencies are built.
