file(REMOVE_RECURSE
  "libamtlce_mmpi.a"
)
