file(REMOVE_RECURSE
  "CMakeFiles/amtlce_mmpi.dir/mpi.cpp.o"
  "CMakeFiles/amtlce_mmpi.dir/mpi.cpp.o.d"
  "libamtlce_mmpi.a"
  "libamtlce_mmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amtlce_mmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
