# Empty compiler generated dependencies file for amtlce_mmpi.
# This may be replaced when dependencies are built.
