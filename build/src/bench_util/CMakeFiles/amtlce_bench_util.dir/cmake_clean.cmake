file(REMOVE_RECURSE
  "CMakeFiles/amtlce_bench_util.dir/harness.cpp.o"
  "CMakeFiles/amtlce_bench_util.dir/harness.cpp.o.d"
  "CMakeFiles/amtlce_bench_util.dir/pingpong_graph.cpp.o"
  "CMakeFiles/amtlce_bench_util.dir/pingpong_graph.cpp.o.d"
  "libamtlce_bench_util.a"
  "libamtlce_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amtlce_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
