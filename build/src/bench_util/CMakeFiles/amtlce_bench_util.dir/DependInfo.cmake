
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bench_util/harness.cpp" "src/bench_util/CMakeFiles/amtlce_bench_util.dir/harness.cpp.o" "gcc" "src/bench_util/CMakeFiles/amtlce_bench_util.dir/harness.cpp.o.d"
  "/root/repo/src/bench_util/pingpong_graph.cpp" "src/bench_util/CMakeFiles/amtlce_bench_util.dir/pingpong_graph.cpp.o" "gcc" "src/bench_util/CMakeFiles/amtlce_bench_util.dir/pingpong_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/amt/CMakeFiles/amtlce_amt.dir/DependInfo.cmake"
  "/root/repo/build/src/ce/CMakeFiles/amtlce_ce.dir/DependInfo.cmake"
  "/root/repo/build/src/mmpi/CMakeFiles/amtlce_mmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/mlci/CMakeFiles/amtlce_mlci.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/amtlce_net.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/amtlce_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
