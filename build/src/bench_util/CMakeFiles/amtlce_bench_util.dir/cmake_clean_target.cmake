file(REMOVE_RECURSE
  "libamtlce_bench_util.a"
)
