# Empty dependencies file for amtlce_bench_util.
# This may be replaced when dependencies are built.
