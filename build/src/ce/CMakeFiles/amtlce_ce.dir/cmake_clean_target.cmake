file(REMOVE_RECURSE
  "libamtlce_ce.a"
)
