file(REMOVE_RECURSE
  "CMakeFiles/amtlce_ce.dir/lci_backend.cpp.o"
  "CMakeFiles/amtlce_ce.dir/lci_backend.cpp.o.d"
  "CMakeFiles/amtlce_ce.dir/mpi_backend.cpp.o"
  "CMakeFiles/amtlce_ce.dir/mpi_backend.cpp.o.d"
  "CMakeFiles/amtlce_ce.dir/world.cpp.o"
  "CMakeFiles/amtlce_ce.dir/world.cpp.o.d"
  "libamtlce_ce.a"
  "libamtlce_ce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amtlce_ce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
