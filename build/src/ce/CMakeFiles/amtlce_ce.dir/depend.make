# Empty dependencies file for amtlce_ce.
# This may be replaced when dependencies are built.
