file(REMOVE_RECURSE
  "libamtlce_des.a"
)
