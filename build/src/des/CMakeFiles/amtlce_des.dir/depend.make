# Empty dependencies file for amtlce_des.
# This may be replaced when dependencies are built.
