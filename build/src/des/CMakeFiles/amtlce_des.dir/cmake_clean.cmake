file(REMOVE_RECURSE
  "CMakeFiles/amtlce_des.dir/event_queue.cpp.o"
  "CMakeFiles/amtlce_des.dir/event_queue.cpp.o.d"
  "CMakeFiles/amtlce_des.dir/time.cpp.o"
  "CMakeFiles/amtlce_des.dir/time.cpp.o.d"
  "libamtlce_des.a"
  "libamtlce_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amtlce_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
