# CMake generated Testfile for 
# Source directory: /root/repo/tests/mlci
# Build directory: /root/repo/build/tests/mlci
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mlci/test_mlci[1]_include.cmake")
