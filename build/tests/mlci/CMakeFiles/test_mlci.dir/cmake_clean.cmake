file(REMOVE_RECURSE
  "CMakeFiles/test_mlci.dir/lci_test.cpp.o"
  "CMakeFiles/test_mlci.dir/lci_test.cpp.o.d"
  "test_mlci"
  "test_mlci.pdb"
  "test_mlci[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mlci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
