# Empty dependencies file for test_mlci.
# This may be replaced when dependencies are built.
