# CMake generated Testfile for 
# Source directory: /root/repo/tests/linalg
# Build directory: /root/repo/build/tests/linalg
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/linalg/test_linalg[1]_include.cmake")
