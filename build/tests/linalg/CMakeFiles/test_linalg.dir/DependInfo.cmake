
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/linalg/blas_test.cpp" "tests/linalg/CMakeFiles/test_linalg.dir/blas_test.cpp.o" "gcc" "tests/linalg/CMakeFiles/test_linalg.dir/blas_test.cpp.o.d"
  "/root/repo/tests/linalg/hcore_test.cpp" "tests/linalg/CMakeFiles/test_linalg.dir/hcore_test.cpp.o" "gcc" "tests/linalg/CMakeFiles/test_linalg.dir/hcore_test.cpp.o.d"
  "/root/repo/tests/linalg/lowrank_test.cpp" "tests/linalg/CMakeFiles/test_linalg.dir/lowrank_test.cpp.o" "gcc" "tests/linalg/CMakeFiles/test_linalg.dir/lowrank_test.cpp.o.d"
  "/root/repo/tests/linalg/starsh_test.cpp" "tests/linalg/CMakeFiles/test_linalg.dir/starsh_test.cpp.o" "gcc" "tests/linalg/CMakeFiles/test_linalg.dir/starsh_test.cpp.o.d"
  "/root/repo/tests/linalg/svd_test.cpp" "tests/linalg/CMakeFiles/test_linalg.dir/svd_test.cpp.o" "gcc" "tests/linalg/CMakeFiles/test_linalg.dir/svd_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/amtlce_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/amtlce_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
