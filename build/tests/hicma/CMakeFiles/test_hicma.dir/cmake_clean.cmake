file(REMOVE_RECURSE
  "CMakeFiles/test_hicma.dir/rank_model_test.cpp.o"
  "CMakeFiles/test_hicma.dir/rank_model_test.cpp.o.d"
  "CMakeFiles/test_hicma.dir/tlr_cholesky_test.cpp.o"
  "CMakeFiles/test_hicma.dir/tlr_cholesky_test.cpp.o.d"
  "test_hicma"
  "test_hicma.pdb"
  "test_hicma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hicma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
