# Empty dependencies file for test_hicma.
# This may be replaced when dependencies are built.
