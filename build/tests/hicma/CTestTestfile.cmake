# CMake generated Testfile for 
# Source directory: /root/repo/tests/hicma
# Build directory: /root/repo/build/tests/hicma
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/hicma/test_hicma[1]_include.cmake")
