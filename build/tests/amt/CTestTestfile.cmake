# CMake generated Testfile for 
# Source directory: /root/repo/tests/amt
# Build directory: /root/repo/build/tests/amt
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/amt/test_amt[1]_include.cmake")
