file(REMOVE_RECURSE
  "CMakeFiles/test_amt.dir/runtime_test.cpp.o"
  "CMakeFiles/test_amt.dir/runtime_test.cpp.o.d"
  "test_amt"
  "test_amt.pdb"
  "test_amt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_amt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
