# Empty dependencies file for test_amt.
# This may be replaced when dependencies are built.
