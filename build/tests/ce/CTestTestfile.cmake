# CMake generated Testfile for 
# Source directory: /root/repo/tests/ce
# Build directory: /root/repo/build/tests/ce
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ce/test_ce[1]_include.cmake")
