# Empty dependencies file for test_ce.
# This may be replaced when dependencies are built.
