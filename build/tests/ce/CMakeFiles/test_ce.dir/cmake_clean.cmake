file(REMOVE_RECURSE
  "CMakeFiles/test_ce.dir/comm_engine_test.cpp.o"
  "CMakeFiles/test_ce.dir/comm_engine_test.cpp.o.d"
  "test_ce"
  "test_ce.pdb"
  "test_ce[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
