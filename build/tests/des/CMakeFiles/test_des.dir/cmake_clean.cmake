file(REMOVE_RECURSE
  "CMakeFiles/test_des.dir/coro_test.cpp.o"
  "CMakeFiles/test_des.dir/coro_test.cpp.o.d"
  "CMakeFiles/test_des.dir/engine_test.cpp.o"
  "CMakeFiles/test_des.dir/engine_test.cpp.o.d"
  "CMakeFiles/test_des.dir/event_queue_test.cpp.o"
  "CMakeFiles/test_des.dir/event_queue_test.cpp.o.d"
  "CMakeFiles/test_des.dir/poll_loop_test.cpp.o"
  "CMakeFiles/test_des.dir/poll_loop_test.cpp.o.d"
  "CMakeFiles/test_des.dir/rng_test.cpp.o"
  "CMakeFiles/test_des.dir/rng_test.cpp.o.d"
  "CMakeFiles/test_des.dir/sim_thread_test.cpp.o"
  "CMakeFiles/test_des.dir/sim_thread_test.cpp.o.d"
  "test_des"
  "test_des.pdb"
  "test_des[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
