
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/des/coro_test.cpp" "tests/des/CMakeFiles/test_des.dir/coro_test.cpp.o" "gcc" "tests/des/CMakeFiles/test_des.dir/coro_test.cpp.o.d"
  "/root/repo/tests/des/engine_test.cpp" "tests/des/CMakeFiles/test_des.dir/engine_test.cpp.o" "gcc" "tests/des/CMakeFiles/test_des.dir/engine_test.cpp.o.d"
  "/root/repo/tests/des/event_queue_test.cpp" "tests/des/CMakeFiles/test_des.dir/event_queue_test.cpp.o" "gcc" "tests/des/CMakeFiles/test_des.dir/event_queue_test.cpp.o.d"
  "/root/repo/tests/des/poll_loop_test.cpp" "tests/des/CMakeFiles/test_des.dir/poll_loop_test.cpp.o" "gcc" "tests/des/CMakeFiles/test_des.dir/poll_loop_test.cpp.o.d"
  "/root/repo/tests/des/rng_test.cpp" "tests/des/CMakeFiles/test_des.dir/rng_test.cpp.o" "gcc" "tests/des/CMakeFiles/test_des.dir/rng_test.cpp.o.d"
  "/root/repo/tests/des/sim_thread_test.cpp" "tests/des/CMakeFiles/test_des.dir/sim_thread_test.cpp.o" "gcc" "tests/des/CMakeFiles/test_des.dir/sim_thread_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/des/CMakeFiles/amtlce_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
