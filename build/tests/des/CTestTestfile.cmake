# CMake generated Testfile for 
# Source directory: /root/repo/tests/des
# Build directory: /root/repo/build/tests/des
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/des/test_des[1]_include.cmake")
