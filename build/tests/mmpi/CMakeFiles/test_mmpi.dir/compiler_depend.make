# Empty compiler generated dependencies file for test_mmpi.
# This may be replaced when dependencies are built.
