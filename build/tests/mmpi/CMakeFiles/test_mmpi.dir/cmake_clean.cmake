file(REMOVE_RECURSE
  "CMakeFiles/test_mmpi.dir/mpi_test.cpp.o"
  "CMakeFiles/test_mmpi.dir/mpi_test.cpp.o.d"
  "test_mmpi"
  "test_mmpi.pdb"
  "test_mmpi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
