# CMake generated Testfile for 
# Source directory: /root/repo/tests/mmpi
# Build directory: /root/repo/build/tests/mmpi
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mmpi/test_mmpi[1]_include.cmake")
