# Empty dependencies file for fig4_tile_scaling.
# This may be replaced when dependencies are built.
