# Empty compiler generated dependencies file for fig2a_pingpong_bw.
# This may be replaced when dependencies are built.
