file(REMOVE_RECURSE
  "CMakeFiles/fig2a_pingpong_bw.dir/fig2a_pingpong_bw.cpp.o"
  "CMakeFiles/fig2a_pingpong_bw.dir/fig2a_pingpong_bw.cpp.o.d"
  "fig2a_pingpong_bw"
  "fig2a_pingpong_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_pingpong_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
