# Empty dependencies file for abl_backend_features.
# This may be replaced when dependencies are built.
