file(REMOVE_RECURSE
  "CMakeFiles/abl_backend_features.dir/abl_backend_features.cpp.o"
  "CMakeFiles/abl_backend_features.dir/abl_backend_features.cpp.o.d"
  "abl_backend_features"
  "abl_backend_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_backend_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
