file(REMOVE_RECURSE
  "CMakeFiles/fig2b_bidir_bw.dir/fig2b_bidir_bw.cpp.o"
  "CMakeFiles/fig2b_bidir_bw.dir/fig2b_bidir_bw.cpp.o.d"
  "fig2b_bidir_bw"
  "fig2b_bidir_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_bidir_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
