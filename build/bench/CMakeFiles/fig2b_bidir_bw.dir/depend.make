# Empty dependencies file for fig2b_bidir_bw.
# This may be replaced when dependencies are built.
