# Empty compiler generated dependencies file for tlr_cholesky.
# This may be replaced when dependencies are built.
