file(REMOVE_RECURSE
  "CMakeFiles/tlr_cholesky.dir/tlr_cholesky.cpp.o"
  "CMakeFiles/tlr_cholesky.dir/tlr_cholesky.cpp.o.d"
  "tlr_cholesky"
  "tlr_cholesky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlr_cholesky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
