# Empty dependencies file for comm_thread_study.
# This may be replaced when dependencies are built.
