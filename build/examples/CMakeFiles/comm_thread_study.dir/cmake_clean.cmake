file(REMOVE_RECURSE
  "CMakeFiles/comm_thread_study.dir/comm_thread_study.cpp.o"
  "CMakeFiles/comm_thread_study.dir/comm_thread_study.cpp.o.d"
  "comm_thread_study"
  "comm_thread_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_thread_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
