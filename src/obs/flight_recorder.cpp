#include "obs/flight_recorder.hpp"

#include <cstdio>
#include <cstdlib>

namespace obs {

const char* flight_kind_name(FlightKind k) {
  switch (k) {
    case FlightKind::MsgSend: return "msg_send";
    case FlightKind::MsgDrop: return "msg_drop";
    case FlightKind::Crash: return "crash";
    case FlightKind::Restart: return "restart";
    case FlightKind::FdState: return "fd_state";
    case FlightKind::RelTimeout: return "rel_timeout";
    case FlightKind::RelRetransmit: return "rel_retransmit";
    case FlightKind::TaskDone: return "task_done";
    case FlightKind::Recovery: return "recovery";
    case FlightKind::RunStatus: return "run_status";
    case FlightKind::Invariant: return "invariant";
    case FlightKind::Sample: return "sample";
  }
  return "?";
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder instance;
  return instance;
}

FlightRecorder::FlightRecorder() {
  capacity_ = 256;
  if (const char* p = std::getenv("AMTLCE_FLIGHT_RING");
      p != nullptr && *p != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(p, &end, 0);
    if (end != p && *end == '\0' && v > 0 && v <= (1u << 20)) {
      capacity_ = static_cast<std::size_t>(v);
    }
  }
}

void FlightRecorder::begin_run(int num_nodes) {
  num_nodes_ = num_nodes < 0 ? 0 : num_nodes;
  rings_.assign(static_cast<std::size_t>(num_nodes_) + 1, Ring{});
  for (Ring& r : rings_) r.buf.resize(capacity_);
}

std::uint64_t FlightRecorder::total_records(int node) const {
  const auto idx = static_cast<std::size_t>(node < 0 ? 0 : node + 1);
  if (idx >= rings_.size()) return 0;
  return rings_[idx].total;
}

std::vector<FlightRecord> FlightRecorder::snapshot(int node) const {
  std::vector<FlightRecord> out;
  const auto idx = static_cast<std::size_t>(node < 0 ? 0 : node + 1);
  if (idx >= rings_.size()) return out;
  const Ring& r = rings_[idx];
  const std::size_t held =
      r.total < r.buf.size() ? static_cast<std::size_t>(r.total)
                             : r.buf.size();
  out.reserve(held);
  // Oldest first: the ring wraps at head, so the oldest surviving record
  // sits at head when full, at 0 otherwise.
  const std::size_t start = r.total < r.buf.size() ? 0 : r.head;
  for (std::size_t i = 0; i < held; ++i) {
    out.push_back(r.buf[(start + i) % r.buf.size()]);
  }
  return out;
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

void append_section(std::string& out, const char* key,
                    std::string_view value_json) {
  out += "  \"";
  out += key;
  out += "\": ";
  if (value_json.empty()) {
    out += "null";
  } else {
    out += value_json;
  }
}

}  // namespace

std::string FlightRecorder::bundle_json(std::string_view reason,
                                        std::string_view config_json,
                                        std::string_view crash_schedule_json,
                                        std::string_view metrics_json) const {
  std::string out;
  out.reserve(1u << 16);
  out += "{\n  \"bench\": \"postmortem\",\n  \"schema_version\": 1,\n";
  out += "  \"reason\": \"";
  append_escaped(out, reason);
  out += "\",\n";
  out += "  \"ring_capacity\": " + std::to_string(capacity_) + ",\n";
  out += "  \"num_nodes\": " + std::to_string(num_nodes_) + ",\n";
  out += "  \"rings\": [";
  bool first_ring = true;
  for (int node = -1; node < num_nodes_; ++node) {
    const std::vector<FlightRecord> recs = snapshot(node);
    out += first_ring ? "\n" : ",\n";
    first_ring = false;
    out += "    { \"node\": " + std::to_string(node);
    out += ", \"total\": " + std::to_string(total_records(node));
    out += ", \"records\": [";
    for (std::size_t i = 0; i < recs.size(); ++i) {
      const FlightRecord& r = recs[i];
      out += i == 0 ? "\n" : ",\n";
      out += "      { \"t_ns\": " + std::to_string(r.t);
      out += ", \"kind\": \"";
      out += flight_kind_name(static_cast<FlightKind>(r.kind));
      out += "\", \"code\": " + std::to_string(r.code);
      out += ", \"a\": " + std::to_string(r.a);
      out += ", \"b\": " + std::to_string(r.b) + " }";
    }
    out += recs.empty() ? "] }" : " ] }";
  }
  out += first_ring ? "],\n" : "\n  ],\n";
  append_section(out, "config", config_json);
  out += ",\n";
  append_section(out, "crash_schedule", crash_schedule_json);
  out += ",\n";
  append_section(out, "metrics", metrics_json);
  out += "\n}\n";
  return out;
}

std::string FlightRecorder::dump_postmortem(std::string_view reason,
                                            std::string_view config_json,
                                            std::string_view crash_schedule_json,
                                            std::string_view metrics_json,
                                            std::string path) const {
  if (path.empty()) {
    const char* p = std::getenv("AMTLCE_POSTMORTEM");
    if (p != nullptr &&
        (std::string_view(p) == "off" || std::string_view(p) == "0")) {
      return {};
    }
    path = (p != nullptr && *p != '\0') ? p : "postmortem.json";
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot open postmortem file '%s'\n",
                 path.c_str());
    return {};
  }
  const std::string text =
      bundle_json(reason, config_json, crash_schedule_json, metrics_json);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "postmortem bundle written to %s (%s)\n", path.c_str(),
               std::string(reason).c_str());
  return path;
}

}  // namespace obs
