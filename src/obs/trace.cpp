#include "obs/trace.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace obs {
namespace {

/// Escapes a string for embedding in a JSON string literal.
void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Nanoseconds -> microseconds with three decimals, Chrome's ts unit.
void append_us(std::string& out, std::int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out += buf;
}

/// Recursive-descent JSON well-formedness checker (no semantics, no DOM).
struct JsonChecker {
  std::string_view text;
  std::size_t i = 0;

  void skip_ws() {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
  }

  bool string() {
    if (i >= text.size() || text[i] != '"') return false;
    ++i;
    while (i < text.size()) {
      const char c = text[i];
      if (c == '\\') {
        if (i + 1 >= text.size()) return false;
        i += 2;
        continue;
      }
      ++i;
      if (c == '"') return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text.substr(i, word.size()) != word) return false;
    i += word.size();
    return true;
  }

  bool number() {
    const std::size_t start = i;
    if (i < text.size() && text[i] == '-') ++i;
    std::size_t digits = 0;
    while (i < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[i]))) {
      ++i;
      ++digits;
    }
    if (digits == 0) return false;
    if (i < text.size() && text[i] == '.') {
      ++i;
      digits = 0;
      while (i < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[i]))) {
        ++i;
        ++digits;
      }
      if (digits == 0) return false;
    }
    if (i < text.size() && (text[i] == 'e' || text[i] == 'E')) {
      ++i;
      if (i < text.size() && (text[i] == '+' || text[i] == '-')) ++i;
      digits = 0;
      while (i < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[i]))) {
        ++i;
        ++digits;
      }
      if (digits == 0) return false;
    }
    return i > start;
  }

  bool value(int depth) {  // NOLINT(misc-no-recursion)
    if (depth > 256) return false;
    skip_ws();
    if (i >= text.size()) return false;
    const char c = text[i];
    if (c == '"') return string();
    if (c == '{') {
      ++i;
      skip_ws();
      if (i < text.size() && text[i] == '}') {
        ++i;
        return true;
      }
      while (true) {
        skip_ws();
        if (!string()) return false;
        skip_ws();
        if (i >= text.size() || text[i] != ':') return false;
        ++i;
        if (!value(depth + 1)) return false;
        skip_ws();
        if (i < text.size() && text[i] == ',') {
          ++i;
          continue;
        }
        break;
      }
      if (i >= text.size() || text[i] != '}') return false;
      ++i;
      return true;
    }
    if (c == '[') {
      ++i;
      skip_ws();
      if (i < text.size() && text[i] == ']') {
        ++i;
        return true;
      }
      while (true) {
        if (!value(depth + 1)) return false;
        skip_ws();
        if (i < text.size() && text[i] == ',') {
          ++i;
          continue;
        }
        break;
      }
      if (i >= text.size() || text[i] != ']') return false;
      ++i;
      return true;
    }
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }
};

}  // namespace

TraceConfig TraceConfig::from_env() {
  TraceConfig cfg;
  if (const char* p = std::getenv("AMTLCE_TRACE"); p != nullptr && *p != '\0') {
    cfg.path = p;
  }
  if (const char* p = std::getenv("AMTLCE_TRACE_MAX_EVENTS");
      p != nullptr && *p != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(p, &end, 0);
    if (end != p && *end == '\0' && v > 0) {
      cfg.max_events = static_cast<std::size_t>(v);
    }
  }
  return cfg;
}

Tracer::Tracer(TraceConfig cfg) : cfg_(std::move(cfg)) {}

Tracer::~Tracer() { write(); }

int Tracer::tid_for(std::string_view track) {
  if (const auto it = tids_.find(std::string(track)); it != tids_.end()) {
    return it->second;
  }
  const int tid = static_cast<int>(tracks_.size());
  tracks_.emplace_back(track);
  tids_.emplace(std::string(track), tid);
  return tid;
}

bool Tracer::admit() {
  if (events_.size() < cfg_.max_events) return true;
  ++dropped_;
  return false;
}

void Tracer::span(std::string_view track, std::string_view name,
                  des::Time start, des::Duration dur) {
  if (!admit()) return;
  if (dur < 0) dur = 0;
  events_.push_back(
      Event{tid_for(track), std::string(name), start, dur, Kind::Span, 0});
}

void Tracer::instant(std::string_view track, std::string_view name,
                     des::Time t) {
  if (!admit()) return;
  events_.push_back(
      Event{tid_for(track), std::string(name), t, 0, Kind::Instant, 0});
}

void Tracer::flow(std::string_view track, std::string_view name, des::Time t,
                  std::uint64_t id, bool begin) {
  if (!admit()) return;
  events_.push_back(Event{tid_for(track), std::string(name), t, 0,
                          begin ? Kind::FlowBegin : Kind::FlowEnd, id});
}

void Tracer::counter(std::string_view track, std::string_view name,
                     des::Time t, double value) {
  if (!admit()) return;
  events_.push_back(
      Event{tid_for(track), std::string(name), t, 0, Kind::Counter, 0, value});
}

std::string Tracer::json() const {
  std::string out;
  out.reserve(events_.size() * 96 + 256);
  out += "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"droppedEvents\":";
  out += std::to_string(dropped_);
  out += ",\"maxEvents\":";
  out += std::to_string(cfg_.max_events);
  out += "},\"traceEvents\":[";
  bool first = true;
  // Thread-name metadata first, so viewers label tracks before any event.
  for (std::size_t tid = 0; tid < tracks_.size(); ++tid) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"pid\":0,\"tid\":";
    out += std::to_string(tid);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    append_escaped(out, tracks_[tid]);
    out += "\"}}";
  }
  for (const Event& e : events_) {
    if (!first) out += ',';
    first = false;
    switch (e.kind) {
      case Kind::Instant:
        out += "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":";
        out += std::to_string(e.tid);
        out += ",\"ts\":";
        append_us(out, e.ts);
        break;
      case Kind::Span:
        out += "{\"ph\":\"X\",\"pid\":0,\"tid\":";
        out += std::to_string(e.tid);
        out += ",\"ts\":";
        append_us(out, e.ts);
        out += ",\"dur\":";
        append_us(out, e.dur);
        break;
      case Kind::Counter:
        // Counter tracks: the viewer keys series by (pid, name), renders
        // the value as a stepped area chart, and holds each point until
        // the next one.
        out += "{\"ph\":\"C\",\"pid\":0,\"tid\":";
        out += std::to_string(e.tid);
        out += ",\"ts\":";
        append_us(out, e.ts);
        break;
      case Kind::FlowBegin:
      case Kind::FlowEnd:
        // Flow arrows: the viewer matches "s"/"f" pairs by (cat, id, name)
        // and binds each end to the slice enclosing ts on its track.
        // bp:"e" attaches the finish to the enclosing slice rather than
        // the next one, which is what a message-delivery handler wants.
        out += "{\"ph\":\"";
        out += (e.kind == Kind::FlowBegin) ? 's' : 'f';
        out += '"';
        if (e.kind == Kind::FlowEnd) out += ",\"bp\":\"e\"";
        out += ",\"cat\":\"flow\",\"id\":";
        out += std::to_string(e.flow_id);
        out += ",\"pid\":0,\"tid\":";
        out += std::to_string(e.tid);
        out += ",\"ts\":";
        append_us(out, e.ts);
        break;
    }
    out += ",\"name\":\"";
    append_escaped(out, e.name);
    out += '"';
    if (e.kind == Kind::Counter) {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%.17g", e.value);
      out += ",\"args\":{\"value\":";
      out += buf;
      out += '}';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

void Tracer::write() {
  if (written_ || !cfg_.enabled()) return;
  written_ = true;
  std::FILE* f = std::fopen(cfg_.path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot open trace file '%s'\n",
                 cfg_.path.c_str());
    return;
  }
  const std::string text = json();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

std::unique_ptr<Tracer> Tracer::attach_from_env(des::Engine& engine) {
  TraceConfig cfg = TraceConfig::from_env();
  if (!cfg.enabled()) return nullptr;
  // One process may run several simulations (e.g. comm_thread_study runs
  // one per configuration); keep every trace by suffixing after the first.
  static int attach_count = 0;
  if (attach_count > 0) {
    cfg.path += '.';
    cfg.path += std::to_string(attach_count);
  }
  ++attach_count;
  auto tracer = std::make_unique<Tracer>(std::move(cfg));
  engine.set_trace_sink(tracer.get());
  return tracer;
}

bool json_parse_ok(std::string_view text) {
  JsonChecker checker{text};
  if (!checker.value(0)) return false;
  checker.skip_ws();
  return checker.i == text.size();
}

}  // namespace obs
