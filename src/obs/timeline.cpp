#include "obs/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "des/trace_sink.hpp"

namespace obs {
namespace {

void append_num(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

std::string counter_name(const ProbeSeries& s) {
  // Chrome-trace counters are keyed by (pid, name) — the tid is not part
  // of the identity — so the node id must be folded into the name for
  // per-node series to render as separate tracks.
  if (s.node < 0) return s.name;
  return s.name + ".n" + std::to_string(s.node);
}

std::string fmt_ms(des::Time t) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f ms", static_cast<double>(t) / 1e6);
  return buf;
}

}  // namespace

TimelineConfig TimelineConfig::from_env() {
  TimelineConfig cfg;
  cfg.interval = 0;  // disabled until AMTLCE_TIMELINE provides a path
  const char* p = std::getenv("AMTLCE_TIMELINE");
  if (p == nullptr || *p == '\0') return cfg;
  std::string spec(p);
  cfg.interval = kDefaultInterval;
  // path[,interval_us] — the suffix after the LAST comma is taken as the
  // cadence iff it parses as a positive number, so paths with commas in
  // directory names still work.
  if (const auto comma = spec.rfind(','); comma != std::string::npos) {
    const std::string tail = spec.substr(comma + 1);
    char* end = nullptr;
    const double us = std::strtod(tail.c_str(), &end);
    if (end != tail.c_str() && *end == '\0' && us > 0) {
      cfg.interval = static_cast<des::Duration>(us * 1e3);
      if (cfg.interval <= 0) cfg.interval = 1;
      spec.resize(comma);
    }
  }
  cfg.path = std::move(spec);
  return cfg;
}

Timeline::Timeline(TimelineConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.interval <= 0) cfg_.interval = TimelineConfig::kDefaultInterval;
  next_due_ = cfg_.interval;
}

Timeline::~Timeline() { write(); }

void Timeline::add_probe(std::string name, int node,
                         std::function<double()> fn) {
  Probe p;
  p.series.name = std::move(name);
  p.series.node = node;
  p.read = std::move(fn);
  probes_.push_back(std::move(p));
}

void Timeline::mark_phase(std::string name, des::Time t) {
  phases_.push_back(PhaseMark{std::move(name), t});
}

des::Time Timeline::arm(des::Engine& eng) {
  next_due_ = eng.now() + cfg_.interval;
  eng.set_sampler(this, next_due_);
  return next_due_;
}

des::Time Timeline::on_sample(des::Time now) {
  if (finished_) return des::kTimeNever;
  // Catch up over event gaps: one sample per elapsed boundary, so idle
  // stretches cost probe reads but store nothing (delta encoding).
  while (next_due_ <= now) {
    sample_all(next_due_);
    next_due_ += cfg_.interval;
  }
  return next_due_;
}

void Timeline::sample_all(des::Time t) {
  for (Probe& p : probes_) {
    ProbeSeries& s = p.series;
    const double v = p.read();
    const bool first = s.samples == 0;
    ++s.samples;
    if (first) {
      s.min = s.max = v;
      s.t_max = t;
      s.first_t = t;
    } else {
      s.tw_integral += s.last * static_cast<double>(t - s.last_t);
      if (v < s.min) s.min = v;
      if (v > s.max) {
        s.max = v;
        s.t_max = t;
      }
    }
    if (first || v != s.last) {
      if (s.times.size() < cfg_.max_samples_per_probe) {
        s.times.push_back(t);
        s.values.push_back(v);
        if (sink_ != nullptr) {
          const std::string track =
              s.node < 0 ? "cluster.counters"
                         : "node" + std::to_string(s.node) + ".counters";
          sink_->counter(track, counter_name(s), t, v);
        }
      } else {
        ++s.dropped;
      }
    }
    s.last = v;
    s.last_t = t;
  }
}

void Timeline::finish(des::Time end) {
  if (finished_) return;
  // One closing sample at the quiesce time (not necessarily on a
  // boundary) so every series' level and time-weighted window extend to
  // the end of the run.
  if (probes_.empty() || end > probes_.front().series.last_t ||
      probes_.front().series.samples == 0) {
    sample_all(end);
  }
  finished_ = true;
}

std::string Timeline::json() const {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"bench\": \"timeline\",\n  \"schema_version\": 1,\n";
  out += "  \"interval_ns\": " + std::to_string(cfg_.interval) + ",\n";
  out += "  \"max_samples_per_probe\": " +
         std::to_string(cfg_.max_samples_per_probe) + ",\n";
  out += "  \"phases\": [";
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    { \"name\": \"";
    append_escaped(out, phases_[i].name);
    out += "\", \"t_ns\": " + std::to_string(phases_[i].t) + " }";
  }
  out += phases_.empty() ? "],\n" : "\n  ],\n";
  out += "  \"probes\": [";
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    const ProbeSeries& s = probes_[i].series;
    out += i == 0 ? "\n" : ",\n";
    out += "    { \"name\": \"";
    append_escaped(out, s.name);
    out += "\", \"node\": " + std::to_string(s.node);
    out += ", \"samples\": " + std::to_string(s.samples);
    out += ", \"stored\": " + std::to_string(s.times.size());
    out += ", \"dropped\": " + std::to_string(s.dropped);
    out += ", \"min\": ";
    append_num(out, s.min);
    out += ", \"max\": ";
    append_num(out, s.max);
    out += ", \"t_max_ns\": " + std::to_string(s.t_max);
    out += ", \"last\": ";
    append_num(out, s.last);
    out += ", \"tw_mean\": ";
    append_num(out, s.tw_mean());
    out += ",\n      \"points\": [";
    for (std::size_t j = 0; j < s.times.size(); ++j) {
      if (j != 0) out += ',';
      out += '[';
      out += std::to_string(s.times[j]);
      out += ',';
      append_num(out, s.values[j]);
      out += ']';
    }
    out += "] }";
  }
  out += probes_.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string Timeline::csv() const {
  std::string out = "probe,node,t_ns,value\n";
  for (const Probe& p : probes_) {
    const ProbeSeries& s = p.series;
    for (std::size_t j = 0; j < s.times.size(); ++j) {
      out += s.name;
      out += ',';
      out += std::to_string(s.node);
      out += ',';
      out += std::to_string(s.times[j]);
      out += ',';
      append_num(out, s.values[j]);
      out += '\n';
    }
  }
  return out;
}

std::string Timeline::report(int k) const {
  // Group per-node series by probe name; within each family rank nodes
  // by peak value.  std::map keeps family order deterministic.
  std::map<std::string, std::vector<const ProbeSeries*>> families;
  for (const Probe& p : probes_) {
    if (p.series.samples == 0) continue;
    families[p.series.name].push_back(&p.series);
  }
  std::string out = "== timeline report (interval " +
                    std::to_string(cfg_.interval / 1000) + " us, " +
                    std::to_string(probes_.size()) + " probes) ==\n";
  char buf[192];
  for (auto& [name, series] : families) {
    std::stable_sort(series.begin(), series.end(),
                     [](const ProbeSeries* a, const ProbeSeries* b) {
                       return a->max > b->max;
                     });
    std::snprintf(buf, sizeof buf, "  %-24s", name.c_str());
    out += buf;
    const int n = std::min<int>(k, static_cast<int>(series.size()));
    for (int i = 0; i < n; ++i) {
      const ProbeSeries& s = *series[i];
      if (i != 0) out += "; ";
      if (s.node >= 0) {
        std::snprintf(buf, sizeof buf, "n%d peak %.4g @ %s", s.node, s.max,
                      fmt_ms(s.t_max).c_str());
      } else {
        std::snprintf(buf, sizeof buf, "peak %.4g @ %s (tw-mean %.4g)",
                      s.max, fmt_ms(s.t_max).c_str(), s.tw_mean());
      }
      out += buf;
    }
    if (static_cast<int>(series.size()) > n) {
      std::snprintf(buf, sizeof buf, "; +%d more",
                    static_cast<int>(series.size()) - n);
      out += buf;
    }
    out += '\n';
  }
  if (!phases_.empty()) {
    des::Time end = 0;
    for (const Probe& p : probes_) end = std::max(end, p.series.last_t);
    out += "  phases:\n";
    for (std::size_t i = 0; i < phases_.size(); ++i) {
      const des::Time t0 = phases_[i].t;
      const des::Time t1 = i + 1 < phases_.size() ? phases_[i + 1].t : end;
      const des::Time span = t1 > t0 ? t1 - t0 : 0;
      const double pct = end > phases_.front().t
                             ? 100.0 * static_cast<double>(span) /
                                   static_cast<double>(end - phases_.front().t)
                             : 0.0;
      std::snprintf(buf, sizeof buf, "    %-28s %s -> %s (%.1f%%)\n",
                    phases_[i].name.c_str(), fmt_ms(t0).c_str(),
                    fmt_ms(t1).c_str(), pct);
      out += buf;
    }
  }
  return out;
}

void Timeline::write() {
  if (written_ || cfg_.path.empty()) return;
  written_ = true;
  std::FILE* f = std::fopen(cfg_.path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot open timeline file '%s'\n",
                 cfg_.path.c_str());
    return;
  }
  const bool as_csv = cfg_.path.size() >= 4 &&
                      cfg_.path.compare(cfg_.path.size() - 4, 4, ".csv") == 0;
  const std::string text = as_csv ? csv() : json();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

std::unique_ptr<Timeline> Timeline::attach_from_env(des::Engine& engine) {
  TimelineConfig cfg = TimelineConfig::from_env();
  if (!cfg.enabled() || cfg.path.empty()) return nullptr;
  // Multi-simulation processes keep every timeline, like the Tracer.
  static int attach_count = 0;
  if (attach_count > 0) {
    cfg.path += '.';
    cfg.path += std::to_string(attach_count);
  }
  ++attach_count;
  auto tl = std::make_unique<Timeline>(std::move(cfg));
  tl->arm(engine);
  return tl;
}

}  // namespace obs
