// Deterministic simulated-time timeline sampler.
//
// Every metric the runtime emits elsewhere is an end-of-run aggregate
// (obs::Recorder) or a discrete trace event (obs::Tracer).  The Timeline
// adds the time axis: registered probes — DES queue depths, link bytes,
// reliable-layer windows, FD states, ready-task counts — are snapshotted
// at a fixed simulated-time cadence and delta-encoded into bounded
// per-probe buffers.
//
// Scheduling: the Timeline implements des::Sampler, so the engine calls
// it BETWEEN events (one integer compare per step, no events scheduled,
// no sequence numbers consumed).  A sampler-on run therefore fires the
// exact same event order, RNG draws, and timestamps as a sampler-off run
// — the fingerprint tests pin this.  Sample timestamps are multiples of
// the interval; a sample at boundary t observes the state left by every
// event that fired strictly before t.
//
// Export, three ways:
//   * Perfetto counter tracks: each stored sample is forwarded to a
//     des::TraceSink as a ph:"C" point, so curves render interleaved
//     with the span/flow tracks of the same AMTLCE_TRACE file.
//   * json() / csv(): a schema-stable dump (schema_version 1) for the
//     bench harness; write() picks the format from the path extension.
//   * report(): a top-k bottleneck summary (deepest probes by family,
//     phase attribution) the drivers print after a run.
//
// Opt-in via AMTLCE_TIMELINE=path[,interval_us]; with the variable unset
// attach_from_env() installs nothing and runs pay one compare per step
// against kTimeNever (the disarmed engine default).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "des/engine.hpp"
#include "des/time.hpp"

namespace des {
class TraceSink;
}

namespace obs {

struct TimelineConfig {
  std::string path;  ///< output file; empty = in-memory only (tests)

  /// Sampling cadence in simulated time.  100us resolves the millisecond
  /// dynamics the drivers care about (queue waves, FD outages) at ~25k
  /// samples for the fingerprint problem.
  static constexpr des::Duration kDefaultInterval = 100 * des::kMicrosecond;
  des::Duration interval = kDefaultInterval;

  /// Per-probe stored-sample cap.  Delta encoding stores only changes, so
  /// flat probes stay tiny; a probe that changes every tick saturates at
  /// the cap and counts further changes as dropped.
  std::size_t max_samples_per_probe = 1u << 14;

  bool enabled() const { return interval > 0; }

  /// Parses AMTLCE_TIMELINE=path[,interval_us].  Unset/empty => a config
  /// with an empty path and interval 0 (enabled() == false).
  static TimelineConfig from_env();
};

/// One registered probe's stored series plus running statistics.  The
/// statistics cover every sample (including delta-suppressed and
/// capacity-dropped ones); the stored series is the changes-only curve.
struct ProbeSeries {
  std::string name;
  int node = -1;  ///< -1: cluster-wide probe
  std::vector<des::Time> times;   ///< change points (delta-encoded)
  std::vector<double> values;     ///< value from times[i] onward
  std::uint64_t samples = 0;      ///< boundaries observed
  std::uint64_t dropped = 0;      ///< changes lost to the per-probe cap
  double last = 0;
  double min = 0;
  double max = 0;
  des::Time t_max = 0;            ///< first boundary where max was seen
  double tw_integral = 0;         ///< time-weighted sum since first sample
  des::Time first_t = 0;
  des::Time last_t = 0;

  /// Time-weighted mean of the level over [first sample, finish).
  double tw_mean() const {
    return last_t > first_t
               ? tw_integral / static_cast<double>(last_t - first_t)
               : last;
  }
};

/// A phase marker: per-phase makespan attribution for the report.
struct PhaseMark {
  std::string name;
  des::Time t;
};

class Timeline final : public des::Sampler {
 public:
  explicit Timeline(TimelineConfig cfg);
  ~Timeline() override;  // writes the file if configured and not written

  const TimelineConfig& config() const { return cfg_; }

  /// Registers a probe read at every sample boundary.  `node` is -1 for
  /// cluster-wide series.  Registration order is export order — register
  /// deterministically.  Probes must stay callable until finish().
  void add_probe(std::string name, int node, std::function<double()> fn);

  /// Marks a named phase boundary at simulated time `t` (run start,
  /// first death, recovery complete, ...).  Phases segment the report's
  /// makespan attribution.
  void mark_phase(std::string name, des::Time t);

  /// Forwards every stored sample to `sink` as a ph:"C" counter point on
  /// track "node<N>.counters" (or "cluster.counters").  Null detaches.
  /// Typically the engine's Tracer, so curves land in the same
  /// Chrome-trace file as the span/flow events.
  void set_counter_sink(des::TraceSink* sink) { sink_ = sink; }

  /// Installs this timeline as `eng`'s sampler with the first boundary
  /// one interval past now.  Returns that first due time.
  des::Time arm(des::Engine& eng);

  /// des::Sampler: samples every due boundary <= now, returns the next.
  des::Time on_sample(des::Time now) override;

  /// Takes the final sample at `end` (quiesce time), closes every
  /// series' time-weighted window, and disarms future sampling.
  void finish(des::Time end);

  std::size_t num_probes() const { return probes_.size(); }
  const ProbeSeries& probe(std::size_t i) const { return probes_[i].series; }
  const std::vector<PhaseMark>& phases() const { return phases_; }

  /// Schema-stable JSON dump (schema_version 1): config, phases, and one
  /// object per probe with the delta-encoded series and its statistics.
  /// Deterministic: identical runs render byte-identically.
  std::string json() const;

  /// CSV dump: one "probe,node,t_ns,value" row per stored sample.
  std::string csv() const;

  /// Top-k bottleneck summary: per probe family (name prefix up to the
  /// last '.'), the k series with the largest peak, plus phase makespan
  /// attribution.  Human-readable; printed by the drivers.
  std::string report(int k = 3) const;

  /// Writes json() or csv() — chosen by the path extension (".csv" =>
  /// CSV) — to cfg.path.  No-op when the path is empty; idempotent.
  void write();

  /// When AMTLCE_TIMELINE is set, creates a Timeline and arms it as
  /// `engine`'s sampler (first boundary = one interval past now);
  /// returns null and installs nothing otherwise.  Like the Tracer, a
  /// second attachment in one process writes "<path>.1", then ".2", ...
  /// — read config().path for the resolved name.
  static std::unique_ptr<Timeline> attach_from_env(des::Engine& engine);

 private:
  struct Probe {
    ProbeSeries series;
    std::function<double()> read;
  };

  void sample_all(des::Time t);

  TimelineConfig cfg_;
  std::vector<Probe> probes_;
  std::vector<PhaseMark> phases_;
  des::TraceSink* sink_ = nullptr;
  des::Time next_due_ = 0;
  bool finished_ = false;
  bool written_ = false;
};

}  // namespace obs
