// Chrome-trace (chrome://tracing / Perfetto) exporter for simulated time.
//
// Implements des::TraceSink: every span becomes a `ph:"X"` complete event
// and every point event a `ph:"i"` instant event in the Trace Event JSON
// format; tracks (SimThreads, NIC pipes) map to tids with thread_name
// metadata so the viewer labels them.  Timestamps are simulated
// microseconds (ts/dur fields), with displayTimeUnit "ns".
//
// Tracing is opt-in via AMTLCE_TRACE=<path>: attach_from_env() installs a
// tracer on the engine only when the variable is set, so an untracing run
// pays exactly one null-pointer check per potential event.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "des/engine.hpp"
#include "des/trace_sink.hpp"

namespace obs {

struct TraceConfig {
  std::string path;  ///< output file; empty disables tracing

  /// In-memory event cap; events past the cap are counted as dropped, not
  /// stored, so long chaos soaks with tracing on stay bounded.
  static constexpr std::size_t kDefaultMaxEvents = 1u << 21;
  std::size_t max_events = kDefaultMaxEvents;

  bool enabled() const { return !path.empty(); }

  /// Reads AMTLCE_TRACE (unset/empty => disabled) and
  /// AMTLCE_TRACE_MAX_EVENTS (0 or unparsable => default cap).
  static TraceConfig from_env();
};

class Tracer final : public des::TraceSink {
 public:
  explicit Tracer(TraceConfig cfg);
  ~Tracer() override;  // writes the file if not already written

  void span(std::string_view track, std::string_view name, des::Time start,
            des::Duration dur) override;
  void instant(std::string_view track, std::string_view name,
               des::Time t) override;
  void flow(std::string_view track, std::string_view name, des::Time t,
            std::uint64_t id, bool begin) override;
  void counter(std::string_view track, std::string_view name, des::Time t,
               double value) override;

  std::size_t num_events() const { return events_.size(); }

  /// Events discarded because the buffer hit cfg.max_events.  Also emitted
  /// into the JSON as otherData.droppedEvents so a consumer of the file can
  /// tell the trace is truncated.
  std::uint64_t dropped_events() const { return dropped_; }

  /// Renders the full trace JSON (what write() puts on disk).
  std::string json() const;

  /// Writes the trace to cfg.path (no-op when disabled).  Idempotent;
  /// called automatically by the destructor.
  void write();

  /// When AMTLCE_TRACE is set, creates a tracer and installs it as
  /// `engine`'s sink; returns null (and installs nothing) otherwise.  A
  /// second attachment in the same process writes to "<path>.1", the next
  /// to "<path>.2", ... so multi-simulation drivers keep every trace.
  static std::unique_ptr<Tracer> attach_from_env(des::Engine& engine);

 private:
  enum class Kind : std::uint8_t { Span, Instant, FlowBegin, FlowEnd, Counter };

  struct Event {
    int tid;
    std::string name;
    des::Time ts;
    des::Duration dur;  // spans only
    Kind kind;
    std::uint64_t flow_id;  // flow events only
    double value = 0;       // counter events only
  };

  int tid_for(std::string_view track);
  bool admit();  // false (and counts a drop) once the buffer is full

  TraceConfig cfg_;
  std::vector<Event> events_;
  std::vector<std::string> tracks_;  // tid -> name
  std::unordered_map<std::string, int> tids_;
  std::uint64_t dropped_ = 0;
  bool written_ = false;
};

/// Minimal JSON well-formedness check (objects, arrays, strings, numbers,
/// literals; no semantic validation).  Used by the trace smoke test and
/// unit tests; returns true iff `text` is one complete JSON value.
bool json_parse_ok(std::string_view text);

}  // namespace obs
