// Always-on post-mortem flight recorder.
//
// A crash-tolerant run that fails closed (RunStatus != Ok) or trips a
// soak invariant leaves only aggregates behind; the question "what was
// node 5 doing right before the coordinator gave up" needs the last few
// hundred events, not the sums.  The recorder keeps exactly that: one
// fixed-capacity ring of compact POD records per node, overwritten in
// FIFO order, written by the hot paths unconditionally.
//
// Cost model: the simulation is single-OS-threaded, so a record is a
// bounds check plus a 32-byte store into a preallocated ring — about
// 2 ns, wait-free and allocation-free.  perf_core's timeline section
// pins the always-on recorder's share of an end-to-end reduced-fig4
// run's wall-clock at <= 1% (records made x per-record cost / wall).
//
// The process-wide instance (global()) mirrors net::PayloadPool::global()
// and bench::metrics_accumulator(): hot paths reach it without plumbing a
// pointer through every layer.  Fabric construction calls begin_run(), so
// the rings always describe the most recent simulation.
//
// dump_postmortem() renders the rings plus caller-supplied context (final
// metrics, crash schedule, config) as one JSON bundle.  The drivers call
// it automatically whenever a run ends with RunStatus != Ok; tests call
// it when a soak invariant trips.  AMTLCE_POSTMORTEM overrides the
// output path ("off"/"0" disables the automatic dump); AMTLCE_FLIGHT_RING
// overrides the per-node ring capacity (default 256).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "des/time.hpp"

namespace obs {

/// Record kinds, in rough layer order.  Values are stable: they appear
/// numerically in the dump next to their names.
enum class FlightKind : std::uint16_t {
  MsgSend = 0,      ///< a: dst node, b: wire bytes
  MsgDrop = 1,      ///< a: dst node, b: wire bytes; code: DropWhy
  Crash = 2,        ///< fail-stop crash fired on this node
  Restart = 3,      ///< ground-truth restart of this node
  FdState = 4,      ///< a: peer, b: new PeerState (0/1/2), on observer node
  RelTimeout = 5,   ///< a: dst node, b: seq; retry budget exhausted
  RelRetransmit = 6,///< a: dst node, b: seq
  TaskDone = 7,     ///< a: task key hash, b: tasks executed so far
  Recovery = 8,     ///< a: dead rank; recovery pass ran on the coordinator
  RunStatus = 9,    ///< a: amt::RunStatus value at run end (non-Ok)
  Invariant = 10,   ///< a test/soak invariant fired; code: caller-defined
  Sample = 11,      ///< a: timeline samples taken (sampler heartbeat)
};

const char* flight_kind_name(FlightKind k);

/// One 32-byte POD ring entry.
struct FlightRecord {
  des::Time t = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint32_t node = 0;
  std::uint16_t kind = 0;
  std::uint16_t code = 0;
};

/// Reasons a frame never reached its destination (FlightRecord::code for
/// MsgDrop).
enum class DropWhy : std::uint16_t {
  Fault = 0,     ///< seeded drop / corruption discard
  Brownout = 1,
  Crash = 2,     ///< eaten by a crashed NIC (either side)
  Stall = 3,
};

class FlightRecorder {
 public:
  /// The process-wide recorder the hot paths write to.
  static FlightRecorder& global();

  FlightRecorder();

  /// Clears every ring and sizes the per-node set for a new simulation of
  /// `num_nodes` nodes (index num_nodes is the cluster-wide ring).
  /// Called by Fabric construction — rings always describe the latest run.
  void begin_run(int num_nodes);

  /// True when records are being kept.  Default on; the kill switch
  /// exists for the perf harness to measure the recorder's cost and for
  /// tests that want deterministic ring contents.
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Appends one record to `node`'s ring (nodes past begin_run's count —
  /// or a negative node — land in the cluster ring).  Wait-free: bounds
  /// check + store.
  void record(int node, FlightKind kind, des::Time t, std::uint16_t code = 0,
              std::uint64_t a = 0, std::uint64_t b = 0) {
    if (!enabled_ || rings_.empty()) return;
    auto idx = static_cast<std::size_t>(node < 0 ? 0 : node + 1);
    if (idx >= rings_.size()) idx = 0;
    Ring& r = rings_[idx];
    FlightRecord& slot = r.buf[r.head];
    slot.t = t;
    slot.a = a;
    slot.b = b;
    slot.node = static_cast<std::uint32_t>(node < 0 ? 0 : node);
    slot.kind = static_cast<std::uint16_t>(kind);
    slot.code = code;
    r.head = r.head + 1 == r.buf.size() ? 0 : r.head + 1;
    ++r.total;
  }

  std::size_t ring_capacity() const { return capacity_; }
  int num_nodes() const { return num_nodes_; }

  /// Records written to `node`'s ring over the run (>= what the ring
  /// still holds).  Node -1: the cluster ring.
  std::uint64_t total_records(int node) const;

  /// `node`'s surviving records, oldest first.  Node -1: cluster ring.
  std::vector<FlightRecord> snapshot(int node) const;

  /// Renders the post-mortem bundle: {reason, rings (oldest first, with
  /// kind names), plus the caller's context sections}.  The context
  /// strings must each be one complete JSON value (pass "null" for
  /// sections you do not have).
  std::string bundle_json(std::string_view reason,
                          std::string_view config_json,
                          std::string_view crash_schedule_json,
                          std::string_view metrics_json) const;

  /// Writes bundle_json() to `path` (or, when `path` is empty, to the
  /// AMTLCE_POSTMORTEM path, defaulting to "postmortem.json"; the env
  /// values "off"/"0" suppress the dump).  Returns the path written, or
  /// empty when suppressed/failed.
  std::string dump_postmortem(std::string_view reason,
                              std::string_view config_json,
                              std::string_view crash_schedule_json,
                              std::string_view metrics_json,
                              std::string path = {}) const;

 private:
  struct Ring {
    std::vector<FlightRecord> buf;
    std::size_t head = 0;       ///< next write slot
    std::uint64_t total = 0;    ///< lifetime records (wraps overwrite)
  };

  bool enabled_ = true;
  int num_nodes_ = 0;
  std::size_t capacity_;
  std::vector<Ring> rings_;  ///< [0]: cluster; [n+1]: node n
};

}  // namespace obs
