#include "obs/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace obs {

void Gauge::set(double v) {
  value_ = v;
  if (!seen_ || v > max_) max_ = v;
  if (!seen_ || v < min_) min_ = v;
  sum_ += v;
  ++count_;
  seen_ = true;
}

void Gauge::set_at(double v, double t) {
  if (timed_ && t > last_t_) {
    tw_integral_ += value_ * (t - last_t_);
    tw_span_ += t - last_t_;
  }
  last_t_ = t;
  timed_ = true;
  set(v);
}

void Gauge::merge(const Gauge& o) {
  if (!o.seen_) return;
  value_ = o.value_;  // "last writer": merge order is caller-defined
  if (!seen_ || o.max_ > max_) max_ = o.max_;
  if (!seen_ || o.min_ < min_) min_ = o.min_;
  sum_ += o.sum_;
  count_ += o.count_;
  // Disjoint per-node observation windows: integrals and spans add, so
  // the merged tw_mean() weights each side by its observed span.  The
  // merged gauge does not continue either side's set_at() stream.
  tw_integral_ += o.tw_integral_;
  tw_span_ += o.tw_span_;
  timed_ = false;
  seen_ = true;
}

int Histogram::bucket_of(double v) {
  if (!(v >= 1.0)) return 0;  // sub-unit, zero, negative, NaN
  int exp = 0;
  const double mant = std::frexp(v, &exp);  // v = mant * 2^exp, mant in [0.5, 1)
  const int octave = std::min(exp - 1, kOctaves - 1);
  const int sub = std::min(
      kSub - 1, static_cast<int>((mant - 0.5) * 2.0 * kSub));
  return 1 + octave * kSub + sub;
}

double Histogram::bucket_lo(int b) {
  if (b <= 0) return 0.0;
  const int octave = (b - 1) / kSub;
  const int sub = (b - 1) % kSub;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSub, octave);
}

double Histogram::bucket_hi(int b) {
  if (b <= 0) return 1.0;
  const int octave = (b - 1) / kSub;
  const int sub = (b - 1) % kSub;
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSub, octave);
}

void Histogram::add(double v) {
  ++buckets_[static_cast<std::size_t>(bucket_of(v))];
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  sum_ += v;
  ++count_;
}

void Histogram::merge(const Histogram& o) {
  if (o.count_ == 0) return;
  for (int b = 0; b < kBuckets; ++b) {
    buckets_[static_cast<std::size_t>(b)] +=
        o.buckets_[static_cast<std::size_t>(b)];
  }
  if (count_ == 0 || o.min_ < min_) min_ = o.min_;
  if (count_ == 0 || o.max_ > max_) max_ = o.max_;
  sum_ += o.sum_;
  count_ += o.count_;
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target sample, 1-based (nearest-rank definition).
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p / 100.0 *
                                              static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = buckets_[static_cast<std::size_t>(b)];
    if (n == 0) continue;
    if (seen + n >= rank) {
      // Interpolate within the bucket, then clamp to the observed range.
      const double frac =
          (static_cast<double>(rank - seen) - 0.5) / static_cast<double>(n);
      const double lo = bucket_lo(b);
      const double hi = bucket_hi(b);
      return std::clamp(lo + frac * (hi - lo), min_, max_);
    }
    seen += n;
  }
  return max_;
}

Counter& Recorder::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& Recorder::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& Recorder::histogram(std::string_view name) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), Histogram{}).first->second;
}

const Counter* Recorder::find_counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* Recorder::find_gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* Recorder::find_histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void Recorder::merge(const Recorder& o) {
  for (const auto& [name, c] : o.counters_) counter(name).merge(c);
  for (const auto& [name, g] : o.gauges_) gauge(name).merge(g);
  for (const auto& [name, h] : o.histograms_) histogram(name).merge(h);
}

std::string Recorder::summary() const {
  std::string out;
  char buf[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof buf, "%-32s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c.value()));
    out += buf;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(buf, sizeof buf,
                  "%-32s %.3g (min %.3g, max %.3g, mean %.3g, n %llu)\n",
                  name.c_str(), g.value(), g.min(), g.max(), g.mean(),
                  static_cast<unsigned long long>(g.count()));
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(buf, sizeof buf,
                  "%-32s n=%llu mean=%.3g p50=%.3g p99=%.3g max=%.3g\n",
                  name.c_str(), static_cast<unsigned long long>(h.count()),
                  h.mean(), h.p50(), h.p99(), h.max());
    out += buf;
  }
  return out;
}

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  // %.17g round-trips doubles, keeping identical runs byte-identical.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

std::string metrics_json(const Recorder& rec) {
  std::string out;
  out += "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : rec.counters()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_json_string(out, name);
    out += ": ";
    out += std::to_string(c.value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : rec.gauges()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_json_string(out, name);
    out += ": {\"value\": ";
    append_json_number(out, g.value());
    out += ", \"min\": ";
    append_json_number(out, g.min());
    out += ", \"max\": ";
    append_json_number(out, g.max());
    out += ", \"count\": ";
    out += std::to_string(g.count());
    out += ", \"mean\": ";
    append_json_number(out, g.mean());
    out += ", \"tw_mean\": ";
    append_json_number(out, g.tw_mean());
    out += "}";
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : rec.histograms()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_json_string(out, name);
    out += ": {\"count\": ";
    out += std::to_string(h.count());
    out += ", \"sum\": ";
    append_json_number(out, h.sum());
    out += ", \"mean\": ";
    append_json_number(out, h.mean());
    out += ", \"min\": ";
    append_json_number(out, h.min());
    out += ", \"max\": ";
    append_json_number(out, h.max());
    out += ", \"p50\": ";
    append_json_number(out, h.p50());
    out += ", \"p90\": ";
    append_json_number(out, h.p90());
    out += ", \"p99\": ";
    append_json_number(out, h.p99());
    out += "}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

}  // namespace obs
