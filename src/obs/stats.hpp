// Metrics primitives: Counter, Gauge, log-bucketed Histogram, and the
// named Recorder registry.
//
// Everything here is zero-dependency, deterministic, and mergeable:
// per-node (or per-backend) recorders can be combined into cluster-wide
// aggregates, the way the paper's §6.1.3 methodology sums per-rank
// measurements.  Histograms keep fixed-size geometric buckets (8 per
// octave, ~9% relative resolution) so p50/p90/p99/max queries cost O(1)
// memory regardless of sample count — distributions, not just the means
// the earlier ad-hoc counters reported.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void merge(const Counter& o) { value_ += o.value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Sampled level (queue depths, window occupancy, ...): the last written
/// value plus the extremes, the sample count, the plain mean, and — when
/// samples carry timestamps via set_at() — a time-weighted mean.
///
/// merge() is how per-node gauges become cluster aggregates: count, sum,
/// and the time-weighted integral add across nodes, so mean() is the mean
/// over every sample taken anywhere and tw_mean() weights each node's
/// levels by how long they were held.  value() stays last-writer-wins
/// (merge order), which is only meaningful for single-writer gauges —
/// aggregate consumers should read mean()/tw_mean()/min()/max().
class Gauge {
 public:
  void set(double v);
  /// set() with a timestamp: additionally charges the PREVIOUS value for
  /// the [previous t, t) interval, so tw_mean() is the time average of the
  /// held level.  Timestamps must be non-decreasing per gauge.
  void set_at(double v, double t);
  double value() const { return value_; }
  double max() const { return max_; }
  double min() const { return min_; }
  std::uint64_t count() const { return count_; }
  /// Mean over all set()/set_at() samples; 0 when empty.
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  /// Time-weighted mean over the set_at() intervals.  Falls back to the
  /// plain mean when no time span was observed (zero or one set_at()).
  double tw_mean() const {
    return tw_span_ > 0 ? tw_integral_ / tw_span_ : mean();
  }
  /// Total observed span behind tw_mean(), in set_at() time units.
  double tw_span() const { return tw_span_; }
  void merge(const Gauge& o);

 private:
  double value_ = 0;
  double max_ = 0;
  double min_ = 0;
  double sum_ = 0;
  std::uint64_t count_ = 0;
  double tw_integral_ = 0;  ///< sum of value * held-interval
  double tw_span_ = 0;      ///< sum of held-interval lengths
  double last_t_ = 0;
  bool seen_ = false;
  bool timed_ = false;  ///< a set_at() established last_t_
};

/// Log-bucketed histogram of non-negative samples (latencies in ns, byte
/// counts, ...).  Samples below 1 land in bucket 0; the geometric range
/// covers [1, 2^40) with 8 sub-buckets per octave.  Percentiles
/// interpolate linearly within a bucket and are clamped to the observed
/// [min, max].
class Histogram {
 public:
  static constexpr int kSubBits = 3;
  static constexpr int kSub = 1 << kSubBits;      // sub-buckets per octave
  static constexpr int kOctaves = 40;
  static constexpr int kBuckets = kOctaves * kSub + 1;  // +1: the [0,1) bucket

  void add(double v);
  void merge(const Histogram& o);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Value at percentile `p` in [0, 100].  0 when empty.
  double percentile(double p) const;
  double p50() const { return percentile(50.0); }
  double p90() const { return percentile(90.0); }
  double p99() const { return percentile(99.0); }

 private:
  static int bucket_of(double v);
  static double bucket_lo(int b);
  static double bucket_hi(int b);

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Named-metric registry.  Lookup creates on first use; iteration order is
/// the name order (std::map), so reports are deterministic.  Copyable, so
/// results structs can carry a snapshot out of a finished simulation.
class Recorder {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Read-only lookup; null when the metric was never touched.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  /// Combines another recorder into this one, metric by metric.
  void merge(const Recorder& o);

  /// Human-readable dump (one line per metric) for logs and examples.
  std::string summary() const;

  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// Machine-readable dump of a recorder: one JSON object with "counters"
/// (name -> value), "gauges" (name -> {value,min,max}), and "histograms"
/// (name -> {count,sum,mean,min,max,p50,p90,p99}).  Key order follows the
/// recorder's (sorted) iteration order, so outputs of identical runs are
/// byte-identical and diffable in CI.
std::string metrics_json(const Recorder& rec);

}  // namespace obs
