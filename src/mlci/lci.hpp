// mlci — a miniature LCI (Lightweight Communication Interface) over the
// simulated fabric, modeling the feature set the paper's §5 relies on:
//
//   * Three protocols: Immediate (cache-line-sized, sent inline), Buffered
//     (a few pages, copied to pre-registered packets), Direct (any length,
//     RDMA with rendezvous), selected explicitly by the caller.
//   * Non-blocking calls that return Status::Retry under resource
//     exhaustion, letting the library exert back-pressure on the runtime.
//   * Completion delivery via completion queue, handler function, or
//     synchronizer — chosen per operation.
//   * An explicit progress() call that drains hardware completions,
//     matches Direct messages, runs handlers, and delivers completions.
//     Unlike MPI, progress is fully decoupled from operation submission,
//     so a dedicated progress thread can run it (paper §5.3.1).
//   * Dynamic receive-buffer allocation for active messages: the target
//     never posts receives or matches tags for Immediate/Buffered sends.
//
// Costs are charged to the calling simulated thread; they are deliberately
// lighter than mmpi's — that difference (no request-array scanning, no
// wildcard matching, handler dispatch instead of polling) is the paper's
// central claim about why LCI fits AMT runtimes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "des/sim_thread.hpp"
#include "des/time.hpp"
#include "net/fabric.hpp"

namespace mlci {

using Tag = std::uint64_t;

enum class Status {
  Ok,
  Retry,    ///< insufficient resources; progress and resubmit
  Invalid,  ///< protocol size limit violated; the call did nothing
};

struct Config {
  std::size_t immediate_size = 64;        ///< max Immediate payload
  std::size_t buffered_size = 12 * 1024;  ///< max Buffered payload (~12 KiB)

  int packet_pool_size = 256;   ///< packets for Buffered sends (per device)
  int immediate_slots = 256;    ///< outstanding Immediate injections
  int direct_slots = 1024;      ///< outstanding Direct sends+recvs

  // --- software overhead model -----------------------------------------
  des::Duration op_overhead = 200;        ///< per communication call
  des::Duration progress_poll_cost = 100; ///< per progress() invocation
  des::Duration event_cost = 150;         ///< per hardware event drained
  des::Duration handler_cost = 250;       ///< per handler/AM dispatch
  des::Duration match_cost = 100;         ///< per Direct-recv list element
  des::Duration alloc_cost = 300;         ///< per dynamic recv allocation
  double copy_bandwidth_Bps = 8e9;       ///< packet-copy memcpy rate

  std::uint64_t header_bytes = 64;       ///< wire header per message
};

/// Completion descriptor, delivered through the chosen mechanism.
struct Request {
  enum class Type { SendDone, RecvDone, Am };
  Type type = Type::Am;
  int peer = -1;
  Tag tag = 0;
  std::size_t size = 0;
  net::PayloadPtr payload;     ///< AM data (dynamically allocated buffer)
  void* user_context = nullptr;
};

/// MPI-request-like completion flag that a thread can test or wait on.
class Synchronizer {
 public:
  bool test() const { return signaled_; }
  void reset() { signaled_ = false; }

 private:
  friend class Device;
  bool signaled_ = false;
  Request request_;

 public:
  /// The completed operation's descriptor (valid once test() is true).
  const Request& request() const { return request_; }
};

/// FIFO completion queue drained by polling.
class CompQueue {
 public:
  std::optional<Request> poll() {
    if (queue_.empty()) return std::nullopt;
    Request r = std::move(queue_.front());
    queue_.pop_front();
    return r;
  }
  std::size_t size() const { return queue_.size(); }

 private:
  friend class Device;
  std::deque<Request> queue_;
};

/// Handler invoked from inside progress().
using Handler = std::function<void(Request&&)>;

/// Per-operation completion target.
class Comp {
 public:
  static Comp none() { return Comp{}; }
  static Comp queue(CompQueue* q) {
    Comp c;
    c.queue_ = q;
    return c;
  }
  static Comp handler(Handler h) {
    Comp c;
    c.handler_ = std::make_shared<Handler>(std::move(h));
    return c;
  }
  static Comp sync(Synchronizer* s) {
    Comp c;
    c.sync_ = s;
    return c;
  }

 private:
  friend class Device;
  CompQueue* queue_ = nullptr;
  std::shared_ptr<Handler> handler_;
  Synchronizer* sync_ = nullptr;
};

/// Per-node LCI device: owns packet pools, matching state, and the
/// hardware event queue.  Endpoint-style communication calls live here
/// (one endpoint per device in this implementation).
class Device {
 public:
  int rank() const { return rank_; }
  int num_ranks() const;
  const Config& config() const;

  /// Handler for incoming active messages (Immediate/Buffered sends).
  /// Invoked from progress() with the message payload; the buffer was
  /// "dynamically allocated" at the receiver (alloc cost charged).
  void set_am_handler(Handler h) { am_handler_ = std::move(h); }

  // --- sends -------------------------------------------------------------
  /// Immediate protocol: payload <= immediate_size, sent inline from the
  /// user buffer.  Fire-and-forget (no local completion object).
  Status sends(int dst, Tag tag, const void* buf, std::size_t n);

  /// Buffered protocol: payload <= buffered_size, copied into a
  /// pre-registered packet.  Fire-and-forget.
  Status sendm(int dst, Tag tag, const void* buf, std::size_t n);

  /// Direct protocol: any length, rendezvous + RDMA.  Local completion is
  /// delivered through `comp` when the remote transfer finishes.
  Status sendd(int dst, Tag tag, const void* buf, std::size_t n, Comp comp,
               void* user_context = nullptr);

  /// Posts the matching receive for a Direct send (match on (src, tag)).
  Status recvd(int src, Tag tag, void* buf, std::size_t capacity, Comp comp,
               void* user_context = nullptr);

  /// Native one-sided put (the paper's §7 future-work LCI feature): RDMA
  /// write of `n` bytes into the remote registered region `remote_base`
  /// (0 = virtual), carrying up to a packet of immediate data that the
  /// target's put handler receives on completion.  No receive is posted
  /// and no rendezvous round-trip occurs.  `comp` fires at local
  /// completion (buffer reusable).
  Status putd(int dst, Tag tag, const void* buf, std::size_t n,
              std::uint64_t remote_base, Comp comp, const void* imm_data,
              std::size_t imm_size);

  /// Handler for incoming native puts (remote completion); receives the
  /// immediate data as payload, the data size in Request::size.
  void set_put_handler(Handler h) { put_handler_ = std::move(h); }

  /// Fail-stop peer death: releases every Direct resource wedged on
  /// `peer`.  Direct sends awaiting CTS complete through their Comp as
  /// SendDone (the send is locally complete — the buffer is reusable —
  /// even though the target died); posted and matched Direct receives
  /// from `peer` are dropped WITHOUT completing (their data never
  /// arrived), and queued RTS/incoming traffic from `peer` is discarded.
  /// Completions are deferred through the hardware CQ, so handlers run
  /// inside the next progress() call, never in the caller's context.
  /// Idempotent.  Safe to call from event context.
  struct PurgeResult {
    std::size_t sends = 0;  ///< direct sends completed-as-cancelled
    std::size_t recvs = 0;  ///< direct receives dropped
  };
  PurgeResult peer_failed(int peer);

  // --- introspection -------------------------------------------------------
  int free_packets() const { return packets_free_; }
  int free_direct_slots() const { return direct_free_; }

  /// Registers a hook invoked whenever hardware activity occurs for this
  /// device (arrival or local completion).  A dedicated progress thread
  /// parks on this instead of burning its core while idle.  Runs in event
  /// context — must only schedule work, never call progress() directly.
  void set_event_notifier(std::function<void()> fn) {
    notifier_ = std::move(fn);
  }
  std::size_t pending_hw_events() const {
    return hw_completions_.size() + incoming_.size();
  }

 private:
  friend class Lci;
  friend int progress(Device&);

  struct DirectRecv {
    int src;
    Tag tag;
    void* buf;
    std::size_t capacity;
    Comp comp;
    void* user_context;
  };
  struct DirectSend {
    int dst;
    Tag tag;
    net::PayloadPtr payload;
    std::size_t size;
    Comp comp;
    void* user_context;
    std::uint64_t id;
  };
  struct PendingCompletion {
    Comp comp;
    Request request;
  };

  Device(class Lci& lci, int rank) : lci_(lci), rank_(rank) {}

  void deliver(net::Message&& m);
  void complete(const Comp& comp, Request&& req);
  int do_progress();
  void handle_incoming(net::Message& m);
  void handle_rts(net::Message& m);
  void handle_cts(net::Message& m);
  void handle_data(net::Message& m);
  void try_match_rts();
  net::Message base_message(int dst, Tag tag, std::uint16_t kind,
                            std::size_t logical_size) const;

  void handle_put(net::Message& m);

  class Lci& lci_;
  int rank_;
  Handler am_handler_;
  Handler put_handler_;

  int packets_free_ = 0;
  int immediate_free_ = 0;
  int direct_free_ = 0;

  std::deque<net::Message> incoming_;          ///< hardware receive queue
  std::deque<PendingCompletion> hw_completions_;  ///< local send CQ
  std::vector<DirectRecv> posted_direct_;      ///< posted Direct receives
  std::deque<net::Message> pending_rts_;       ///< RTS awaiting a recvd
  std::vector<DirectSend> direct_sends_;       ///< outstanding Direct sends
  std::unordered_map<std::uint64_t, DirectRecv> matched_recvs_;
  std::uint64_t next_direct_id_ = 1;
  std::function<void()> notifier_;

  void notify() {
    if (notifier_) notifier_();
  }
};

/// The LCI "job": per-node devices bound to the fabric.
class Lci {
 public:
  Lci(net::Fabric& fabric, Config config = {});
  ~Lci();
  Lci(const Lci&) = delete;
  Lci& operator=(const Lci&) = delete;

  net::Fabric& fabric() { return fabric_; }
  const Config& config() const { return cfg_; }
  int size() const { return static_cast<int>(devices_.size()); }
  Device& device(int rank) {
    return *devices_.at(static_cast<std::size_t>(rank));
  }

 private:
  friend class Device;
  net::Fabric& fabric_;
  Config cfg_;
  std::vector<std::unique_ptr<Device>> devices_;
};

/// Explicit progress: drains hardware events and incoming messages,
/// matches Direct transfers, runs handlers, delivers completions.
/// Returns the number of completions/messages processed.
int progress(Device& dev);

inline const Config& Device::config() const { return lci_.config(); }
inline int Device::num_ranks() const { return lci_.size(); }

}  // namespace mlci
