#include "mlci/lci.hpp"

#include <cassert>
#include <cstring>
#include <utility>

namespace mlci {
namespace {

// WireHeader::kind values for the mlci protocol.
enum : std::uint16_t {
  kAmImmediate = 1,
  kAmBuffered = 2,
  kRts = 3,
  kCts = 4,
  kData = 5,
  kPut = 6,  // native one-sided put (§7 future-work feature)
};

}  // namespace

Lci::Lci(net::Fabric& fabric, Config config) : fabric_(fabric), cfg_(config) {
  const int n = fabric.num_nodes();
  devices_.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    auto dev = std::unique_ptr<Device>(new Device(*this, r));
    dev->packets_free_ = cfg_.packet_pool_size;
    dev->immediate_free_ = cfg_.immediate_slots;
    dev->direct_free_ = cfg_.direct_slots;
    devices_.push_back(std::move(dev));
    fabric.nic(r).set_deliver_handler([this, r](net::Message&& m) {
      if (m.hdr.proto == net::kProtoLci) device(r).deliver(std::move(m));
    });
  }
}

Lci::~Lci() {
  for (int r = 0; r < size(); ++r) {
    fabric_.nic(r).set_deliver_handler(nullptr);
  }
}

void Device::deliver(net::Message&& m) {
  // Hardware queue; software costs are paid inside progress().
  incoming_.push_back(std::move(m));
  notify();
}

net::Message Device::base_message(int dst, Tag tag, std::uint16_t kind,
                                  std::size_t logical_size) const {
  net::Message m;
  m.src = rank_;
  m.dst = dst;
  m.wire_bytes = lci_.cfg_.header_bytes;
  m.hdr.proto = net::kProtoLci;
  m.hdr.kind = kind;
  m.hdr.tag = tag;
  m.hdr.size = logical_size;
  return m;
}

// ---------------------------------------------------------------------------
// Sends

Status Device::sends(int dst, Tag tag, const void* buf, std::size_t n) {
  const Config& cfg = lci_.cfg_;
  if (n > cfg.immediate_size) return Status::Invalid;
  des::charge_current(cfg.op_overhead);
  if (immediate_free_ == 0) return Status::Retry;
  --immediate_free_;
  net::Message m = base_message(dst, tag, kAmImmediate, n);
  m.wire_bytes += n;
  if (buf != nullptr && n > 0) m.payload = net::make_payload(buf, n);
  lci_.fabric_.nic(rank_).send(std::move(m), [this]() {
    // Send-queue slot returns: a hardware event consumers may be
    // back-pressure-parked on.
    ++immediate_free_;
    notify();
  });
  return Status::Ok;
}

Status Device::sendm(int dst, Tag tag, const void* buf, std::size_t n) {
  const Config& cfg = lci_.cfg_;
  if (n > cfg.buffered_size) return Status::Invalid;
  des::charge_current(cfg.op_overhead);
  if (packets_free_ == 0) return Status::Retry;
  --packets_free_;
  // Copy into the pre-registered packet: the user buffer is immediately
  // reusable; the packet returns to the pool once it leaves the NIC.
  if (buf != nullptr && n > 0) {
    des::charge_current(des::transfer_time(n, cfg.copy_bandwidth_Bps));
  }
  net::Message m = base_message(dst, tag, kAmBuffered, n);
  m.wire_bytes += n;
  if (buf != nullptr && n > 0) m.payload = net::make_payload(buf, n);
  lci_.fabric_.nic(rank_).send(std::move(m), [this]() {
    ++packets_free_;  // packet back in the pool
    notify();
  });
  return Status::Ok;
}

Status Device::sendd(int dst, Tag tag, const void* buf, std::size_t n,
                     Comp comp, void* user_context) {
  const Config& cfg = lci_.cfg_;
  des::charge_current(cfg.op_overhead);
  if (direct_free_ == 0) return Status::Retry;
  --direct_free_;

  DirectSend ds;
  ds.dst = dst;
  ds.tag = tag;
  ds.size = n;
  ds.comp = std::move(comp);
  ds.user_context = user_context;
  ds.id = next_direct_id_++;
  if (buf != nullptr && n > 0) ds.payload = net::make_payload(buf, n);

  net::Message rts = base_message(dst, tag, kRts, n);
  rts.hdr.imm[0] = ds.id;
  direct_sends_.push_back(std::move(ds));
  lci_.fabric_.nic(rank_).send(std::move(rts));
  return Status::Ok;
}

Status Device::putd(int dst, Tag tag, const void* buf, std::size_t n,
                    std::uint64_t remote_base, Comp comp,
                    const void* imm_data, std::size_t imm_size) {
  const Config& cfg = lci_.cfg_;
  if (imm_size > cfg.buffered_size) return Status::Invalid;
  des::charge_current(cfg.op_overhead);
  if (direct_free_ == 0) return Status::Retry;
  --direct_free_;

  net::Message m = base_message(dst, tag, kPut, n);
  m.wire_bytes += n + imm_size;
  m.hdr.imm[0] = remote_base;
  m.hdr.imm[1] = imm_size;
  // Payload layout: [imm_size bytes of immediate data][data bytes].
  if (imm_size > 0 || (buf != nullptr && n > 0)) {
    auto body = std::make_shared<std::vector<std::byte>>(
        imm_size + (buf != nullptr ? n : 0));
    if (imm_size > 0) std::memcpy(body->data(), imm_data, imm_size);
    if (buf != nullptr && n > 0) {
      std::memcpy(body->data() + imm_size, buf, n);
    }
    m.payload = std::move(body);
  }
  lci_.fabric_.nic(rank_).send(
      std::move(m), [this, peer = dst, tag, n, comp = std::move(comp)]() {
        ++direct_free_;
        Request req;
        req.type = Request::Type::SendDone;
        req.peer = peer;
        req.tag = tag;
        req.size = n;
        hw_completions_.push_back(
            PendingCompletion{comp, std::move(req)});
        notify();
      });
  return Status::Ok;
}

void Device::handle_put(net::Message& m) {
  const Config& cfg = lci_.cfg_;
  des::charge_current(cfg.event_cost);
  const auto imm_size = static_cast<std::size_t>(m.hdr.imm[1]);
  const auto n = static_cast<std::size_t>(m.hdr.size);
  auto* base = reinterpret_cast<std::byte*>(m.hdr.imm[0]);
  if (base != nullptr && m.payload != nullptr &&
      m.payload->size() >= imm_size + n) {
    // The RDMA write already landed (no CPU copy is charged).
    std::memcpy(base, m.payload->data() + imm_size, n);
  }
  if (put_handler_) {
    des::charge_current(cfg.handler_cost);
    Request req;
    req.type = Request::Type::RecvDone;
    req.peer = m.src;
    req.tag = m.hdr.tag;
    req.size = n;
    if (imm_size > 0 && m.payload != nullptr) {
      req.payload = std::make_shared<std::vector<std::byte>>(
          m.payload->begin(),
          m.payload->begin() + static_cast<std::ptrdiff_t>(imm_size));
    }
    put_handler_(std::move(req));
  }
}

Status Device::recvd(int src, Tag tag, void* buf, std::size_t capacity,
                     Comp comp, void* user_context) {
  const Config& cfg = lci_.cfg_;
  des::charge_current(cfg.op_overhead);
  if (direct_free_ == 0) return Status::Retry;
  --direct_free_;
  posted_direct_.push_back(DirectRecv{src, tag, buf, capacity,
                                      std::move(comp), user_context});
  // A matching RTS may already be waiting; matching happens in progress(),
  // which the caller is responsible for driving (explicit-progress model).
  return Status::Ok;
}

// ---------------------------------------------------------------------------
// Completion delivery

void Device::complete(const Comp& comp, Request&& req) {
  const Config& cfg = lci_.cfg_;
  if (comp.handler_ && *comp.handler_) {
    des::charge_current(cfg.handler_cost);
    (*comp.handler_)(std::move(req));
  } else if (comp.queue_ != nullptr) {
    comp.queue_->queue_.push_back(std::move(req));
  } else if (comp.sync_ != nullptr) {
    comp.sync_->request_ = std::move(req);
    comp.sync_->signaled_ = true;
  }
}

// ---------------------------------------------------------------------------
// Progress

void Device::handle_incoming(net::Message& m) {
  const Config& cfg = lci_.cfg_;
  switch (m.hdr.kind) {
    case kAmImmediate:
    case kAmBuffered: {
      // Dynamic receive allocation: no posted receive, no matching.
      des::charge_current(cfg.alloc_cost + cfg.handler_cost);
      if (am_handler_) {
        Request req;
        req.type = Request::Type::Am;
        req.peer = m.src;
        req.tag = m.hdr.tag;
        req.size = static_cast<std::size_t>(m.hdr.size);
        req.payload = std::move(m.payload);
        am_handler_(std::move(req));
      }
      break;
    }
    case kRts:
      handle_rts(m);
      break;
    case kCts:
      handle_cts(m);
      break;
    case kData:
      handle_data(m);
      break;
    case kPut:
      handle_put(m);
      break;
    default:
      assert(false && "unknown mlci message kind");
  }
}

void Device::handle_rts(net::Message& m) {
  pending_rts_.push_back(std::move(m));
  try_match_rts();
}

void Device::try_match_rts() {
  const Config& cfg = lci_.cfg_;
  for (auto rts = pending_rts_.begin(); rts != pending_rts_.end();) {
    bool matched = false;
    for (auto pr = posted_direct_.begin(); pr != posted_direct_.end(); ++pr) {
      des::charge_current(cfg.match_cost);
      if (pr->src == rts->src && pr->tag == rts->hdr.tag) {
        // Send clear-to-send carrying both sides' identifiers; stash the
        // receive descriptor keyed by the sender's id (echoed in DATA).
        net::Message cts = base_message(rts->src, rts->hdr.tag, kCts, 0);
        cts.hdr.imm[0] = rts->hdr.imm[0];
        matched_recvs_.emplace(rts->hdr.imm[0] ^
                                   (static_cast<std::uint64_t>(rts->src) << 48),
                               std::move(*pr));
        posted_direct_.erase(pr);
        lci_.fabric_.nic(rank_).send(std::move(cts));
        matched = true;
        break;
      }
    }
    if (matched) {
      rts = pending_rts_.erase(rts);
    } else {
      ++rts;
    }
  }
}

void Device::handle_cts(net::Message& m) {
  const Config& cfg = lci_.cfg_;
  des::charge_current(cfg.event_cost);
  const std::uint64_t id = m.hdr.imm[0];
  for (auto it = direct_sends_.begin(); it != direct_sends_.end(); ++it) {
    if (it->id != id) continue;
    DirectSend ds = std::move(*it);
    direct_sends_.erase(it);
    net::Message data = base_message(ds.dst, ds.tag, kData, ds.size);
    data.wire_bytes += ds.size;
    data.hdr.imm[0] = id;
    data.payload = ds.payload;
    // Local completion once the RDMA write has drained from the NIC: a
    // hardware event consumed by a later progress() call.
    lci_.fabric_.nic(rank_).send(
        std::move(data),
        [this, peer = ds.dst, tag = ds.tag, size = ds.size,
         comp = std::move(ds.comp), ctx = ds.user_context]() mutable {
          Request req;
          req.type = Request::Type::SendDone;
          req.peer = peer;
          req.tag = tag;
          req.size = size;
          req.user_context = ctx;
          ++direct_free_;
          hw_completions_.push_back(
              PendingCompletion{std::move(comp), std::move(req)});
          notify();
        });
    return;
  }
  assert(false && "CTS for unknown direct send");
}

void Device::handle_data(net::Message& m) {
  const Config& cfg = lci_.cfg_;
  des::charge_current(cfg.event_cost);
  const std::uint64_t key =
      m.hdr.imm[0] ^ (static_cast<std::uint64_t>(m.src) << 48);
  auto it = matched_recvs_.find(key);
  assert(it != matched_recvs_.end() && "DATA without matched recv");
  DirectRecv dr = std::move(it->second);
  matched_recvs_.erase(it);
  const auto n = static_cast<std::size_t>(m.hdr.size);
  const std::size_t copied = n < dr.capacity ? n : dr.capacity;
  if (dr.buf != nullptr && m.payload != nullptr && copied > 0) {
    // RDMA wrote into the registered buffer; model as free for the CPU.
    std::memcpy(dr.buf, m.payload->data(), copied);
  }
  ++direct_free_;
  Request req;
  req.type = Request::Type::RecvDone;
  req.peer = m.src;
  req.tag = m.hdr.tag;
  req.size = copied;
  req.user_context = dr.user_context;
  complete(dr.comp, std::move(req));
}

Device::PurgeResult Device::peer_failed(int peer) {
  PurgeResult res;
  // Direct sends parked on a CTS that will never come: free the slot and
  // defer a SendDone through the hardware CQ (the next progress() call
  // runs the handler on a real thread, mirroring the NIC-drain path).
  for (auto it = direct_sends_.begin(); it != direct_sends_.end();) {
    if (it->dst != peer) {
      ++it;
      continue;
    }
    DirectSend ds = std::move(*it);
    it = direct_sends_.erase(it);
    ++direct_free_;
    Request req;
    req.type = Request::Type::SendDone;
    req.peer = ds.dst;
    req.tag = ds.tag;
    req.size = ds.size;
    req.user_context = ds.user_context;
    hw_completions_.push_back(
        PendingCompletion{std::move(ds.comp), std::move(req)});
    ++res.sends;
  }
  // Receives matched (CTS sent) or merely posted against the corpse: the
  // DATA never arrives, so the slot is freed and no completion fires —
  // signalling RecvDone would hand a buffer of garbage to the consumer.
  for (auto it = matched_recvs_.begin(); it != matched_recvs_.end();) {
    if (it->second.src == peer) {
      it = matched_recvs_.erase(it);
      ++direct_free_;
      ++res.recvs;
    } else {
      ++it;
    }
  }
  for (auto it = posted_direct_.begin(); it != posted_direct_.end();) {
    if (it->src == peer) {
      it = posted_direct_.erase(it);
      ++direct_free_;
      ++res.recvs;
    } else {
      ++it;
    }
  }
  // Queued traffic from the corpse: an RTS left here could match a future
  // receive and wedge its slot on never-arriving DATA, so everything not
  // yet processed is discarded (fail-stop semantics).
  std::erase_if(pending_rts_,
                [peer](const net::Message& m) { return m.src == peer; });
  std::erase_if(incoming_,
                [peer](const net::Message& m) { return m.src == peer; });
  if (res.sends > 0) notify();
  return res;
}

int Device::do_progress() {
  const Config& cfg = lci_.cfg_;
  des::charge_current(cfg.progress_poll_cost);
  int processed = 0;
  // Drain local hardware completions (send-side CQ).
  while (!hw_completions_.empty()) {
    des::charge_current(cfg.event_cost);
    PendingCompletion pc = std::move(hw_completions_.front());
    hw_completions_.pop_front();
    complete(pc.comp, std::move(pc.request));
    ++processed;
  }
  // Drain incoming messages.
  while (!incoming_.empty()) {
    des::charge_current(cfg.event_cost);
    net::Message m = std::move(incoming_.front());
    incoming_.pop_front();
    handle_incoming(m);
    ++processed;
  }
  // Newly posted receives may match queued RTS.
  if (!pending_rts_.empty() && !posted_direct_.empty()) try_match_rts();
  return processed;
}

int progress(Device& dev) { return dev.do_progress(); }

}  // namespace mlci
