// Experiment driver: builds the simulated cluster, runs a TLR Cholesky,
// and returns the measurements the paper's §6.4 plots (time-to-solution,
// end-to-end communication latency, utilization).  Used by the benches
// and examples.
#pragma once

#include <cstdint>

#include "ce/world.hpp"
#include "hicma/tlr_cholesky.hpp"
#include "net/config.hpp"
#include "obs/stats.hpp"
#include "amt/config.hpp"

namespace hicma {

struct ExperimentConfig {
  int nodes = 16;
  int cores_per_node = 128;  ///< Expanse: 2 x 64-core EPYC (Table 1)
  ce::BackendKind backend = ce::BackendKind::Mpi;
  bool mt_activate = false;  ///< §6.4.3 communication multithreading
  TlrOptions tlr;
  net::FabricConfig fabric = net::expanse_config();
  ce::CeConfig ce;
  mmpi::Config mpi;
  mlci::Config lci;
  amt::RuntimeConfig rt;    ///< workers field is ignored; see below
  int workers_override = 0; ///< >0 forces the worker count; 0 = §6.1.2 rule
};

struct ExperimentResult {
  ce::CeStats ce_stats;             ///< summed over all engines
  double tts_s = 0;                 ///< time-to-solution, seconds
  /// Ok on fault-free or fully recovered runs; an error status when the
  /// graph could not be completed (fault tolerance fails closed).
  amt::RunStatus run_status = amt::RunStatus::Ok;
  amt::LatencyStats latency;        ///< hop + end-to-end comm latency
  amt::NodeStats runtime_stats;     ///< aggregated counters
  double worker_utilization = 0;    ///< busy fraction of worker cores
  std::uint64_t fabric_messages = 0;
  std::uint64_t fabric_bytes = 0;
  double mean_rank = 0;
  double residual = -1;             ///< real mode: ||LL^T - A|| / ||A||
  std::uint64_t tasks = 0;
  /// Snapshot of the fabric/backend metric recorder (wire transit,
  /// put latencies, queue waits — histograms with percentiles).
  obs::Recorder metrics;
};

/// Worker-thread count per §6.1.2: all cores on one node; cores minus the
/// communication thread (minus the LCI progress thread) on multi-node.
int workers_for(int cores, int nodes, ce::BackendKind backend,
                bool progress_thread);

ExperimentResult run_tlr_cholesky(const ExperimentConfig& cfg);

}  // namespace hicma
