#include "hicma/driver.hpp"

#include <algorithm>

#include "des/engine.hpp"
#include "net/fabric.hpp"
#include "obs/trace.hpp"
#include "amt/runtime.hpp"

namespace hicma {

int workers_for(int cores, int nodes, ce::BackendKind backend,
                bool progress_thread) {
  if (nodes == 1) return cores;  // single-node: all cores compute (§6.1.2)
  int w = cores - 1;  // communication thread
  if (backend == ce::BackendKind::Lci && progress_thread) --w;
  return std::max(1, w);
}

ExperimentResult run_tlr_cholesky(const ExperimentConfig& cfg) {
  des::Engine eng;
  const auto tracer = obs::Tracer::attach_from_env(eng);
  net::Fabric fabric(eng, cfg.nodes, cfg.fabric);
  ce::CommWorld comm(fabric, cfg.backend, cfg.ce, cfg.mpi, cfg.lci);

  amt::RuntimeConfig rt = cfg.rt;
  rt.workers = cfg.workers_override > 0
                   ? cfg.workers_override
                   : workers_for(cfg.cores_per_node, cfg.nodes, cfg.backend,
                                 cfg.ce.progress_thread);
  rt.mt_activate = cfg.mt_activate;

  TlrCholeskyGraph graph(cfg.tlr, cfg.nodes);
  amt::Runtime runtime(eng, fabric, comm, graph, rt);
  const des::Duration makespan = runtime.run();

  ExperimentResult res;
  res.tts_s = des::to_seconds(makespan);
  res.run_status = runtime.run_status();
  res.runtime_stats = runtime.aggregate_stats();
  res.latency = res.runtime_stats.latency;
  res.tasks = runtime.total_tasks_executed();
  const double core_time = des::to_seconds(makespan) *
                           static_cast<double>(rt.workers) *
                           static_cast<double>(cfg.nodes);
  res.worker_utilization =
      core_time > 0
          ? des::to_seconds(runtime.total_worker_busy()) / core_time
          : 0.0;
  for (int n = 0; n < cfg.nodes; ++n) {
    const ce::CeStats& s = comm.engine(n).stats();
    res.ce_stats.ams_sent += s.ams_sent;
    res.ce_stats.ams_delivered += s.ams_delivered;
    res.ce_stats.puts_started += s.puts_started;
    res.ce_stats.puts_completed_local += s.puts_completed_local;
    res.ce_stats.puts_completed_remote += s.puts_completed_remote;
    res.ce_stats.puts_deferred += s.puts_deferred;
    res.ce_stats.recvs_dynamic += s.recvs_dynamic;
    res.ce_stats.retries_delegated += s.retries_delegated;
    res.ce_stats.eager_puts += s.eager_puts;
    res.ce_stats.peer_failed_sends += s.peer_failed_sends;
    res.ce_stats.peer_failed_recvs += s.peer_failed_recvs;
  }
  res.fabric_messages = fabric.total_messages();
  res.fabric_bytes = fabric.total_bytes();
  res.metrics = comm.metrics();
  amt::export_latency_metrics(res.runtime_stats, res.metrics);
  res.mean_rank = graph.mean_offdiag_rank();
  if (cfg.tlr.mode == TlrOptions::Mode::Real) {
    res.residual = graph.verify();
  }
  return res;
}

}  // namespace hicma
