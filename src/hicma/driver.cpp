#include "hicma/driver.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

#include "des/engine.hpp"
#include "net/fabric.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/stats.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "amt/probes.hpp"
#include "amt/runtime.hpp"

namespace hicma {
namespace {

/// Context sections for the post-mortem bundle: the knobs that reproduce
/// the run and the ground-truth crash schedule it ran under.
std::string postmortem_config_json(const ExperimentConfig& cfg, int workers) {
  std::string out = "{ \"backend\": \"";
  out += cfg.backend == ce::BackendKind::Lci ? "lci" : "mpi";
  out += "\", \"nodes\": " + std::to_string(cfg.nodes);
  out += ", \"workers\": " + std::to_string(workers);
  out += ", \"n\": " + std::to_string(cfg.tlr.n);
  out += ", \"nb\": " + std::to_string(cfg.tlr.nb);
  out += " }";
  return out;
}

std::string crash_schedule_json(const net::FaultConfig& f) {
  std::string out = "[";
  for (std::size_t i = 0; i < f.crashes.size(); ++i) {
    const net::CrashEvent& c = f.crashes[i];
    out += i == 0 ? " " : ", ";
    out += "{ \"node\": " + std::to_string(c.node);
    out += ", \"crash_at\": " + std::to_string(c.crash_at);
    out += ", \"restart_at\": " + std::to_string(c.restart_at) + " }";
  }
  out += f.crashes.empty() ? "]" : " ]";
  return out;
}

}  // namespace

int workers_for(int cores, int nodes, ce::BackendKind backend,
                bool progress_thread) {
  if (nodes == 1) return cores;  // single-node: all cores compute (§6.1.2)
  int w = cores - 1;  // communication thread
  if (backend == ce::BackendKind::Lci && progress_thread) --w;
  return std::max(1, w);
}

ExperimentResult run_tlr_cholesky(const ExperimentConfig& cfg) {
  des::Engine eng;
  const auto tracer = obs::Tracer::attach_from_env(eng);
  const auto timeline = obs::Timeline::attach_from_env(eng);
  if (timeline != nullptr) timeline->set_counter_sink(tracer.get());
  net::Fabric fabric(eng, cfg.nodes, cfg.fabric);
  ce::CommWorld comm(fabric, cfg.backend, cfg.ce, cfg.mpi, cfg.lci);

  amt::RuntimeConfig rt = cfg.rt;
  rt.workers = cfg.workers_override > 0
                   ? cfg.workers_override
                   : workers_for(cfg.cores_per_node, cfg.nodes, cfg.backend,
                                 cfg.ce.progress_thread);
  rt.mt_activate = cfg.mt_activate;

  TlrCholeskyGraph graph(cfg.tlr, cfg.nodes);
  amt::Runtime runtime(eng, fabric, comm, graph, rt);
  if (timeline != nullptr) {
    amt::install_standard_probes(*timeline, fabric, comm, runtime);
    runtime.set_timeline(timeline.get());
    timeline->mark_phase("run.start", eng.now());
  }
  const des::Time t0 = eng.now();
  const des::Duration makespan = runtime.run();
  if (timeline != nullptr) timeline->finish(t0 + makespan);

  ExperimentResult res;
  res.tts_s = des::to_seconds(makespan);
  res.run_status = runtime.run_status();
  res.runtime_stats = runtime.aggregate_stats();
  res.latency = res.runtime_stats.latency;
  res.tasks = runtime.total_tasks_executed();
  const double core_time = des::to_seconds(makespan) *
                           static_cast<double>(rt.workers) *
                           static_cast<double>(cfg.nodes);
  res.worker_utilization =
      core_time > 0
          ? des::to_seconds(runtime.total_worker_busy()) / core_time
          : 0.0;
  for (int n = 0; n < cfg.nodes; ++n) {
    const ce::CeStats& s = comm.engine(n).stats();
    res.ce_stats.ams_sent += s.ams_sent;
    res.ce_stats.ams_delivered += s.ams_delivered;
    res.ce_stats.puts_started += s.puts_started;
    res.ce_stats.puts_completed_local += s.puts_completed_local;
    res.ce_stats.puts_completed_remote += s.puts_completed_remote;
    res.ce_stats.puts_deferred += s.puts_deferred;
    res.ce_stats.recvs_dynamic += s.recvs_dynamic;
    res.ce_stats.retries_delegated += s.retries_delegated;
    res.ce_stats.eager_puts += s.eager_puts;
    res.ce_stats.peer_failed_sends += s.peer_failed_sends;
    res.ce_stats.peer_failed_recvs += s.peer_failed_recvs;
  }
  res.fabric_messages = fabric.total_messages();
  res.fabric_bytes = fabric.total_bytes();
  fabric.export_metrics(comm.metrics());
  res.metrics = comm.metrics();
  amt::export_latency_metrics(res.runtime_stats, res.metrics);
  res.mean_rank = graph.mean_offdiag_rank();
  if (cfg.tlr.mode == TlrOptions::Mode::Real) {
    res.residual = graph.verify();
  }
  if (timeline != nullptr) {
    // stderr: every driver multiplexes machine-readable JSON on stdout.
    const std::string report = timeline->report();
    std::fwrite(report.data(), 1, report.size(), stderr);
    timeline->write();
  }
  if (res.run_status != amt::RunStatus::Ok) {
    obs::FlightRecorder::global().dump_postmortem(
        amt::run_status_name(res.run_status),
        postmortem_config_json(cfg, rt.workers),
        crash_schedule_json(cfg.fabric.faults), obs::metrics_json(res.metrics));
  }
  return res;
}

}  // namespace hicma
