// Matrix (de)serialization for real-numerics dataflow: tile factors move
// through the runtime as DataCopy byte buffers.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>

#include "amt/task_graph.hpp"
#include "linalg/lowrank.hpp"
#include "linalg/matrix.hpp"

namespace hicma {

inline amt::DataCopyPtr pack_matrix(const linalg::Matrix& m) {
  const std::size_t bytes =
      2 * sizeof(std::int32_t) + m.size_bytes();
  auto copy = amt::DataCopy::real(bytes);
  auto* p = copy->bytes->data();
  const std::int32_t rows = m.rows(), cols = m.cols();
  std::memcpy(p, &rows, sizeof rows);
  std::memcpy(p + sizeof rows, &cols, sizeof cols);
  std::memcpy(p + 2 * sizeof rows, m.data(), m.size_bytes());
  return copy;
}

inline amt::DataCopyPtr pack_lr(const linalg::LrTile& t) {
  const std::size_t bytes =
      4 * sizeof(std::int32_t) + t.u.size_bytes() + t.v.size_bytes();
  auto copy = amt::DataCopy::real(bytes);
  auto* p = copy->bytes->data();
  auto put = [&p](const linalg::Matrix& m) {
    const std::int32_t rows = m.rows(), cols = m.cols();
    std::memcpy(p, &rows, sizeof rows);
    p += sizeof rows;
    std::memcpy(p, &cols, sizeof cols);
    p += sizeof cols;
    std::memcpy(p, m.data(), m.size_bytes());
    p += m.size_bytes();
  };
  put(t.u);
  put(t.v);
  return copy;
}

inline linalg::LrTile unpack_lr(const amt::DataCopyPtr& d) {
  assert(d && d->bytes);
  const auto* p = d->bytes->data();
  auto get = [&p]() {
    std::int32_t rows = 0, cols = 0;
    std::memcpy(&rows, p, sizeof rows);
    p += sizeof rows;
    std::memcpy(&cols, p, sizeof cols);
    p += sizeof cols;
    linalg::Matrix m(rows, cols);
    std::memcpy(m.data(), p, m.size_bytes());
    p += m.size_bytes();
    return m;
  };
  linalg::LrTile t;
  t.u = get();
  t.v = get();
  return t;
}

inline linalg::Matrix unpack_matrix(const amt::DataCopyPtr& d) {
  assert(d && d->bytes);
  const auto* p = d->bytes->data();
  std::int32_t rows = 0, cols = 0;
  std::memcpy(&rows, p, sizeof rows);
  std::memcpy(&cols, p + sizeof rows, sizeof cols);
  linalg::Matrix m(rows, cols);
  std::memcpy(m.data(), p + 2 * sizeof rows, m.size_bytes());
  return m;
}

}  // namespace hicma
