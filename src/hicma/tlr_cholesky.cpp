#include "hicma/tlr_cholesky.hpp"

#include <cassert>
#include <cmath>

#include "hicma/serialize.hpp"
#include "linalg/blas.hpp"
#include "linalg/hcore.hpp"

namespace hicma {
namespace {

/// Near-square process grid: the largest p <= sqrt(nodes) dividing nodes.
std::pair<int, int> make_grid(int nodes) {
  int p = static_cast<int>(std::sqrt(static_cast<double>(nodes)));
  while (p > 1 && nodes % p != 0) --p;
  return {p, nodes / p};
}

}  // namespace

TlrCholeskyGraph::TlrCholeskyGraph(TlrOptions opts, int num_nodes)
    : opts_(std::move(opts)) {
  assert(opts_.n % opts_.nb == 0 && "tile size must divide the matrix");
  std::tie(grid_p_, grid_q_) = make_grid(num_nodes);
  copts_ = {.accuracy = opts_.accuracy, .maxrank = opts_.maxrank};
  opts_.rank_model.tile_size = opts_.nb;
  opts_.rank_model.maxrank = opts_.maxrank;
  if (opts_.mode == TlrOptions::Mode::Real) {
    opts_.problem.n = opts_.n;
    points_ = linalg::sqexp_points(opts_.problem);
  }
}

int TlrCholeskyGraph::tile_owner(int i, int j) const {
  return (i % grid_p_) * grid_q_ + (j % grid_q_);
}

int TlrCholeskyGraph::model_rank(int i, int j) const {
  return opts_.rank_model.rank(i, j);
}

des::Duration TlrCholeskyGraph::dense_duration(double flops) const {
  return opts_.kernel_overhead +
         des::from_seconds(flops / (opts_.dense_gflops * 1e9));
}

des::Duration TlrCholeskyGraph::lr_duration(double flops) const {
  return opts_.kernel_overhead +
         des::from_seconds(flops / (opts_.lr_gflops * 1e9));
}

des::Duration TlrCholeskyGraph::kernel_duration(
    const linalg::KernelCost& cost) const {
  return opts_.kernel_overhead +
         des::from_seconds(cost.dense / (opts_.dense_gflops * 1e9) +
                           cost.skinny / (opts_.lr_gflops * 1e9));
}

// ---------------------------------------------------------------------------
// Graph shape

int TlrCholeskyGraph::num_inputs(const amt::TaskKey& t) const {
  switch (t.cls) {
    case kDiag:
    case kCmpr:
      return 0;
    case kPotrf:
      return 1;
    case kTrsm:
      return 2;  // L_kk, V_ik
    case kSyrk:
      return 3;  // D chain, U_ik, V_ik
    case kGemm:
      return 5;  // A_ij chain, U_ik, V_ik, U_jk, V_jk
  }
  assert(false);
  return 0;
}

int TlrCholeskyGraph::num_outputs(const amt::TaskKey& t) const {
  const int nt = opts_.nt();
  switch (t.cls) {
    case kDiag:
      return 1;
    case kCmpr:
      return t.j == 0 ? 2 : 1;  // (U, V) straight to panel 0, else packed
    case kPotrf:
      return t.i < nt - 1 ? 1 : 0;
    case kTrsm:
      return 1;
    case kSyrk:
      return 1;
    case kGemm:
      return t.k == t.j - 1 ? 2 : 1;
  }
  assert(false);
  return 0;
}

int TlrCholeskyGraph::rank_of(const amt::TaskKey& t) const {
  switch (t.cls) {
    case kDiag:
      return tile_owner(t.i, t.i);
    case kCmpr:
      return tile_owner(t.i, t.j);
    case kPotrf:
      return tile_owner(t.i, t.i);  // t.i = k
    case kTrsm:
      return tile_owner(t.i, t.j);  // t.j = k
    case kSyrk:
      return tile_owner(t.i, t.i);
    case kGemm:
      return tile_owner(t.i, t.j);
  }
  assert(false);
  return 0;
}

void TlrCholeskyGraph::successors(const amt::TaskKey& t, int flow,
                                  std::vector<amt::Dep>& out) const {
  const int nt = opts_.nt();
  // Consumers of the panel tile (i, k)'s U factor (input 1 / 3) and V
  // factor (input 2 / 4).
  const auto panel_consumers = [&](int i, int k, bool u_factor) {
    const std::int32_t self_in = u_factor ? 1 : 2;
    const std::int32_t other_in = u_factor ? 3 : 4;
    out.push_back({amt::TaskKey{kSyrk, i, k}, self_in});
    for (int j = k + 1; j < i; ++j) {
      out.push_back({amt::TaskKey{kGemm, i, j, k}, self_in});
    }
    for (int i2 = i + 1; i2 < nt; ++i2) {
      out.push_back({amt::TaskKey{kGemm, i2, i, k}, other_in});
    }
  };

  switch (t.cls) {
    case kDiag:
      if (t.i == 0) {
        out.push_back({amt::TaskKey{kPotrf, 0}, 0});
      } else {
        out.push_back({amt::TaskKey{kSyrk, t.i, 0}, 0});
      }
      return;
    case kCmpr:
      if (t.j == 0) {
        if (flow == 0) {
          panel_consumers(t.i, 0, /*u_factor=*/true);
        } else {
          out.push_back({amt::TaskKey{kTrsm, t.i, 0}, 1});
        }
      } else {
        out.push_back({amt::TaskKey{kGemm, t.i, t.j, 0}, 0});
      }
      return;
    case kPotrf: {
      const int k = t.i;
      for (int i = k + 1; i < nt; ++i) {
        out.push_back({amt::TaskKey{kTrsm, i, k}, 0});
      }
      return;
    }
    case kTrsm:
      panel_consumers(t.i, t.j, /*u_factor=*/false);
      return;
    case kSyrk: {
      const int i = t.i, k = t.j;
      if (k == i - 1) {
        out.push_back({amt::TaskKey{kPotrf, i}, 0});
      } else {
        out.push_back({amt::TaskKey{kSyrk, i, k + 1}, 0});
      }
      return;
    }
    case kGemm: {
      const int i = t.i, j = t.j, k = t.k;
      if (k < j - 1) {
        out.push_back({amt::TaskKey{kGemm, i, j, k + 1}, 0});
      } else if (flow == 0) {
        panel_consumers(i, j, /*u_factor=*/true);
      } else {
        out.push_back({amt::TaskKey{kTrsm, i, j}, 1});
      }
      return;
    }
  }
  assert(false);
}

double TlrCholeskyGraph::priority(const amt::TaskKey& t) const {
  const int nt = opts_.nt();
  // Panel index drives urgency; within a panel: POTRF > TRSM > SYRK >
  // GEMM, then closer-to-panel tiles first.  This mirrors the
  // critical-path prioritization §6.4.1 calls the key element.
  const auto level = [&](int k, int bump, int dist) {
    return (static_cast<double>(nt - k) * 4.0 + bump) * 1e4 - dist;
  };
  switch (t.cls) {
    case kDiag:
      return level(0, 1, t.i);
    case kCmpr:
      return level(t.j == 0 ? 0 : t.j, 0, t.i + t.j);
    case kPotrf:
      return level(t.i, 3, 0);
    case kTrsm:
      return level(t.j, 2, t.i);
    case kSyrk:
      return level(t.j, 1, t.i);
    case kGemm:
      return level(t.k, 0, t.i + t.j);
  }
  return 0.0;
}

void TlrCholeskyGraph::initial_tasks(int rank,
                                     std::vector<amt::TaskKey>& out) const {
  const int nt = opts_.nt();
  for (int i = 0; i < nt; ++i) {
    if (tile_owner(i, i) == rank) out.push_back(amt::TaskKey{kDiag, i});
    for (int j = 0; j < i; ++j) {
      if (tile_owner(i, j) == rank) {
        out.push_back(amt::TaskKey{kCmpr, i, j});
      }
    }
  }
}

std::uint64_t TlrCholeskyGraph::total_tasks() const {
  const auto nt = static_cast<std::uint64_t>(opts_.nt());
  const std::uint64_t offdiag = nt * (nt - 1) / 2;
  const std::uint64_t gemms = nt * (nt - 1) * (nt - 2) / 6;
  // DIAG + CMPR + POTRF + TRSM + SYRK + GEMM
  return nt + offdiag + nt + offdiag + offdiag + gemms;
}

// ---------------------------------------------------------------------------
// Execution

des::Duration TlrCholeskyGraph::execute(const amt::TaskKey& t,
                                        amt::RunContext& ctx) {
  return opts_.mode == TlrOptions::Mode::Real ? exec_real(t, ctx)
                                              : exec_model(t, ctx);
}

des::Duration TlrCholeskyGraph::exec_real(const amt::TaskKey& t,
                                          amt::RunContext& ctx) {
  namespace f = linalg::flops;
  const int nb = opts_.nb;
  const double dnb = nb;
  switch (t.cls) {
    case kDiag: {
      linalg::Matrix d = linalg::sqexp_block(opts_.problem, points_,
                                             t.i * nb, nb, t.i * nb, nb);
      ctx.set_output(0, pack_matrix(d));
      return dense_duration(2.0 * dnb * dnb);
    }
    case kCmpr: {
      const linalg::Matrix a = linalg::sqexp_block(
          opts_.problem, points_, t.i * nb, nb, t.j * nb, nb);
      linalg::LrTile tile = linalg::compress(a, copts_);
      if (t.j == 0) {
        result_.u[{t.i, 0}] = tile.u;
        ctx.set_output(0, pack_matrix(tile.u));
        ctx.set_output(1, pack_matrix(tile.v));
      } else {
        ctx.set_output(0, pack_lr(tile));
      }
      return lr_duration(4.0 * dnb * dnb * tile.rank());
    }
    case kPotrf: {
      linalg::Matrix d = unpack_matrix(ctx.input(0));
      const bool ok = linalg::potrf_lower(d);
      assert(ok && "TLR Cholesky hit a non-SPD diagonal tile");
      (void)ok;
      result_.dense[{t.i, t.i}] = d;
      if (num_outputs(t) > 0) ctx.set_output(0, pack_matrix(d));
      return dense_duration(f::potrf(dnb));
    }
    case kTrsm: {
      const linalg::Matrix l = unpack_matrix(ctx.input(0));
      linalg::Matrix v = unpack_matrix(ctx.input(1));
      linalg::trsm_left_lower(l, v);
      result_.v[{t.i, t.j}] = v;
      ctx.set_output(0, pack_matrix(v));
      return kernel_duration(f::lr_trsm(dnb, v.cols()));
    }
    case kSyrk: {
      linalg::Matrix d = unpack_matrix(ctx.input(0));
      linalg::LrTile a;
      a.u = unpack_matrix(ctx.input(1));
      a.v = unpack_matrix(ctx.input(2));
      linalg::lr_syrk(a, d);
      ctx.set_output(0, pack_matrix(d));
      return kernel_duration(f::lr_syrk(dnb, a.rank()));
    }
    case kGemm: {
      linalg::LrTile c = unpack_lr(ctx.input(0));
      linalg::LrTile a, b;
      a.u = unpack_matrix(ctx.input(1));
      a.v = unpack_matrix(ctx.input(2));
      b.u = unpack_matrix(ctx.input(3));
      b.v = unpack_matrix(ctx.input(4));
      const linalg::KernelCost fl =
          f::lr_gemm(dnb, a.rank(), b.rank(), c.rank());
      linalg::lr_gemm(a, b, c, copts_);
      if (t.k == t.j - 1) {
        result_.u[{t.i, t.j}] = c.u;
        ctx.set_output(0, pack_matrix(c.u));
        ctx.set_output(1, pack_matrix(c.v));
      } else {
        ctx.set_output(0, pack_lr(c));
      }
      return kernel_duration(fl);
    }
  }
  assert(false);
  return 0;
}

des::Duration TlrCholeskyGraph::exec_model(const amt::TaskKey& t,
                                           amt::RunContext& ctx) {
  namespace f = linalg::flops;
  const int nb = opts_.nb;
  const double dnb = nb;
  const auto dense_bytes =
      static_cast<std::size_t>(nb) * static_cast<std::size_t>(nb) *
      sizeof(double);
  const auto factor_bytes = [&](int r) {
    return static_cast<std::size_t>(nb) * static_cast<std::size_t>(r) *
           sizeof(double);
  };
  switch (t.cls) {
    case kDiag:
      ctx.set_output(0, amt::DataCopy::virt(dense_bytes));
      return dense_duration(2.0 * dnb * dnb);
    case kCmpr: {
      const int r = model_rank(t.i, t.j);
      if (t.j == 0) {
        ctx.set_output(0, amt::DataCopy::virt(factor_bytes(r)));
        ctx.set_output(1, amt::DataCopy::virt(factor_bytes(r)));
      } else {
        ctx.set_output(0, amt::DataCopy::virt(2 * factor_bytes(r)));
      }
      return lr_duration(4.0 * dnb * dnb * r);
    }
    case kPotrf:
      if (num_outputs(t) > 0) {
        ctx.set_output(0, amt::DataCopy::virt(dense_bytes));
      }
      return dense_duration(f::potrf(dnb));
    case kTrsm: {
      const int r = model_rank(t.i, t.j);
      ctx.set_output(0, amt::DataCopy::virt(factor_bytes(r)));
      return kernel_duration(f::lr_trsm(dnb, r));
    }
    case kSyrk: {
      const int r = model_rank(t.i, t.j);
      ctx.set_output(0, amt::DataCopy::virt(dense_bytes));
      return kernel_duration(f::lr_syrk(dnb, r));
    }
    case kGemm: {
      const int ra = model_rank(t.i, t.k);
      const int rb = model_rank(t.j, t.k);
      const int rc = model_rank(t.i, t.j);
      if (t.k == t.j - 1) {
        ctx.set_output(0, amt::DataCopy::virt(factor_bytes(rc)));
        ctx.set_output(1, amt::DataCopy::virt(factor_bytes(rc)));
      } else {
        ctx.set_output(0, amt::DataCopy::virt(2 * factor_bytes(rc)));
      }
      return kernel_duration(f::lr_gemm(dnb, ra, rb, rc));
    }
  }
  assert(false);
  return 0;
}

// ---------------------------------------------------------------------------
// Verification (real mode)

double TlrCholeskyGraph::verify() const {
  assert(opts_.mode == TlrOptions::Mode::Real);
  const int n = opts_.n;
  const int nb = opts_.nb;
  const int nt = opts_.nt();
  // Assemble L.
  linalg::Matrix l(n, n);
  for (int k = 0; k < nt; ++k) {
    const auto dit = result_.dense.find({k, k});
    assert(dit != result_.dense.end() && "missing diagonal factor tile");
    for (int jj = 0; jj < nb; ++jj) {
      for (int ii = 0; ii < nb; ++ii) {
        l(k * nb + ii, k * nb + jj) = dit->second(ii, jj);
      }
    }
  }
  for (int i = 1; i < nt; ++i) {
    for (int j = 0; j < i; ++j) {
      const auto uit = result_.u.find({i, j});
      const auto vit = result_.v.find({i, j});
      assert(uit != result_.u.end() && vit != result_.v.end());
      linalg::Matrix tile(nb, nb);
      linalg::gemm(1.0, uit->second, linalg::Trans::No, vit->second,
                   linalg::Trans::Yes, 0.0, tile);
      for (int jj = 0; jj < nb; ++jj) {
        for (int ii = 0; ii < nb; ++ii) {
          l(i * nb + ii, j * nb + jj) = tile(ii, jj);
        }
      }
    }
  }
  // Residual against the original matrix.
  linalg::Matrix a =
      linalg::sqexp_block(opts_.problem, points_, 0, n, 0, n);
  linalg::Matrix llt(n, n);
  linalg::gemm(1.0, l, linalg::Trans::No, l, linalg::Trans::Yes, 0.0, llt);
  return linalg::frobenius_diff(llt, a) / linalg::frobenius_norm(a);
}

double TlrCholeskyGraph::mean_offdiag_rank() const {
  const int nt = opts_.nt();
  if (opts_.mode == TlrOptions::Mode::Model) {
    return opts_.rank_model.mean_rank(nt);
  }
  double sum = 0;
  std::uint64_t count = 0;
  for (const auto& [ij, u] : result_.u) {
    sum += u.cols();
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace hicma
