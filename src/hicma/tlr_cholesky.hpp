// Two-flow TLR (tile low-rank) Cholesky factorization over the AMT
// runtime — the HiCMA workload of the paper's §6.4.
//
// Structure (band size 1, lower-triangular, nt = n / nb tiles per side):
//   DIAG(i)      materialize the dense diagonal tile D_ii
//   CMPR(i,j)    materialize + compress the off-diagonal tile to U V^T
//   POTRF(k)     D_kk -> L_kk (dense)
//   TRSM(i,k)    V_ik <- L_kk^{-1} V_ik        (only V changes!)
//   SYRK(i,k)    D_ii <- D_ii - U (V^T V) U^T  (dense update)
//   GEMM(i,j,k)  A_ij <- A_ij - L_ik L_jk^T    (factored + recompression)
//
// "Two-flow" means the U and V factors of a panel tile travel as separate
// dataflows: U_ik is broadcast by the task that last *wrote* it (CMPR or
// the final GEMM on that tile) while V_ik is broadcast by TRSM(i,k) —
// consumers can receive U early and overlap it with the panel solve,
// exactly the HiCMA optimization the paper's experiments run [7, 8].
//
// Two execution modes:
//   Real  — tiles hold real doubles from the st-2d-sqexp generator; every
//           kernel computes; the result is verifiable against ||LL^T - A||.
//   Model — paper-scale: virtual payloads sized by the calibrated rank
//           model, kernel durations from flop counts.  The task graph,
//           message pattern, and runtime behaviour are identical.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "des/time.hpp"
#include "hicma/rank_model.hpp"
#include "linalg/hcore.hpp"
#include "linalg/lowrank.hpp"
#include "linalg/starsh.hpp"
#include "amt/task_graph.hpp"

namespace hicma {

/// Task-class ids (TaskKey::cls).
enum TaskClass : std::int32_t {
  kDiag = 0,
  kCmpr = 1,
  kPotrf = 2,
  kTrsm = 3,
  kSyrk = 4,
  kGemm = 5,
};

struct TlrOptions {
  enum class Mode { Real, Model };
  Mode mode = Mode::Model;

  int n = 360000;      ///< matrix dimension
  int nb = 1200;       ///< tile size
  double accuracy = 1e-8;
  int maxrank = 150;

  /// Process grid (2D block-cyclic); 0 = derive near-square from nodes.
  int grid_p = 0;
  int grid_q = 0;

  // --- model mode ---------------------------------------------------------
  RankModel rank_model;          ///< tile_size/maxrank overwritten from above
  /// Dense BLAS-3 rate for the band kernels (POTRF/TRSM and the
  /// dense-shaped part of SYRK).  HiCMA's dense diagonal kernels run with
  /// fused multi-core BLAS (a single-core POTRF of a 6000-tile would
  /// alone exceed the paper's whole time-to-solution), so this is an
  /// effective multi-core rate.
  double dense_gflops = 400.0;
  /// Rate for rank-sized panel work (thin GEMM, tall QR, small SVD in the
  /// low-rank update/recompression): memory-bound, far below dense peak —
  /// the low compute intensity §6.4.1 describes.
  double lr_gflops = 1.4;
  des::Duration kernel_overhead = 3 * des::kMicrosecond;

  // --- real mode ------------------------------------------------------------
  linalg::SqExpProblem problem;  ///< n overwritten from above

  int nt() const { return (n + nb - 1) / nb; }
};

/// Collected factor pieces (real mode) for verification.
struct TlrResult {
  std::map<std::pair<int, int>, linalg::Matrix> dense;  ///< L_kk
  std::map<std::pair<int, int>, linalg::Matrix> u;      ///< U_ik
  std::map<std::pair<int, int>, linalg::Matrix> v;      ///< V_ik (post-TRSM)
};

class TlrCholeskyGraph final : public amt::TaskGraphDef {
 public:
  TlrCholeskyGraph(TlrOptions opts, int num_nodes);

  // TaskGraphDef interface.
  int num_inputs(const amt::TaskKey& t) const override;
  int num_outputs(const amt::TaskKey& t) const override;
  int rank_of(const amt::TaskKey& t) const override;
  void successors(const amt::TaskKey& t, int flow,
                  std::vector<amt::Dep>& out) const override;
  double priority(const amt::TaskKey& t) const override;
  des::Duration execute(const amt::TaskKey& t,
                        amt::RunContext& ctx) override;
  void initial_tasks(int rank, std::vector<amt::TaskKey>& out) const override;
  std::uint64_t total_tasks() const override;

  const TlrOptions& options() const { return opts_; }
  const TlrResult& result() const { return result_; }

  /// Real mode: relative factorization residual ||L L^T - A||_F / ||A||_F.
  double verify() const;

  /// Observed rank statistics (real mode: actual; model mode: sampled).
  double mean_offdiag_rank() const;

 private:
  int tile_owner(int i, int j) const;
  int model_rank(int i, int j) const;
  des::Duration dense_duration(double flops) const;
  des::Duration lr_duration(double flops) const;
  des::Duration kernel_duration(const linalg::KernelCost& cost) const;

  des::Duration exec_real(const amt::TaskKey& t, amt::RunContext& ctx);
  des::Duration exec_model(const amt::TaskKey& t, amt::RunContext& ctx);

  TlrOptions opts_;
  int grid_p_ = 1, grid_q_ = 1;
  linalg::CompressOptions copts_;

  // Real-mode problem data.
  std::vector<std::pair<double, double>> points_;
  TlrResult result_;
};

}  // namespace hicma
