// Rank model for paper-scale TLR Cholesky runs.
//
// At N = 360,000 we cannot compress real tiles, so model mode samples
// per-tile ranks from a decay law calibrated against the statistics the
// paper reports for tile size 1200 at accuracy 1e-8 (§6.4.2):
//   * average rank 10.44 over the off-diagonal tiles,
//   * largest low-rank tile 544 KiB => rank 29 (2 * 1200 * r * 8 bytes),
//   * average tile ~196 KiB => ~10.2.
// rank(d) = r1 * d^{-1/4} with r1 = 29 reproduces both the maximum (at
// distance 1) and the average (10.66 over a 300-tile dimension).  Tile
// sizes other than 1200 scale r1 by sqrt(nb / 1200): merging four tiles
// of a smooth kernel roughly doubles the interaction rank.  Small
// deterministic jitter keeps tiles from being artificially uniform.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "des/rng.hpp"

namespace hicma {

struct RankModel {
  int tile_size = 1200;
  int maxrank = 150;
  double r1 = 29.0;       ///< rank at distance 1 for tile 1200
  double decay = 0.25;    ///< rank(d) ~ d^-decay
  double jitter = 0.10;   ///< +-10% deterministic noise
  std::uint64_t seed = 7;

  /// Rank of the off-diagonal tile (i, j), i > j.
  int rank(int i, int j) const {
    const int d = i - j;
    const double scale =
        std::sqrt(static_cast<double>(tile_size) / 1200.0);
    double r = r1 * scale * std::pow(static_cast<double>(d), -decay);
    // Deterministic per-tile jitter.
    std::uint64_t s = des::derive_seed(
        seed, (static_cast<std::uint64_t>(static_cast<std::uint32_t>(i))
               << 32) |
                  static_cast<std::uint32_t>(j));
    des::Rng rng(s);
    r *= 1.0 + jitter * (2.0 * rng.uniform() - 1.0);
    const int cap = std::min(maxrank, tile_size / 2);
    return std::clamp(static_cast<int>(std::lround(r)), 1, cap);
  }

  /// Bytes of one factor (U or V) of the tile in packed storage.
  std::uint64_t factor_bytes(int r) const {
    return static_cast<std::uint64_t>(tile_size) *
           static_cast<std::uint64_t>(r) * sizeof(double);
  }

  /// Mean rank over the strictly-lower tiles of an nt x nt tile grid.
  double mean_rank(int nt) const {
    double sum = 0;
    std::uint64_t count = 0;
    for (int i = 1; i < nt; ++i) {
      for (int j = 0; j < i; ++j) {
        sum += rank(i, j);
        ++count;
      }
    }
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

}  // namespace hicma
