#include "bench_util/harness.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "des/engine.hpp"
#include "net/fabric.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "amt/runtime.hpp"

namespace bench {

Reps Reps::from_env() {
  Reps r;
  if (const char* v = std::getenv("AMTLCE_REPS")) r.total = std::atoi(v);
  if (const char* v = std::getenv("AMTLCE_WARMUP")) r.warmup = std::atoi(v);
  if (r.total < 1) r.total = 1;
  if (r.warmup < 0) r.warmup = 0;  // a negative warm-up discards nothing
  if (r.warmup >= r.total) r.warmup = r.total - 1;
  return r;
}

namespace {

bool env_double(const char* name, double& out) {
  const char* v = std::getenv(name);
  if (!v || !*v) return false;
  out = std::strtod(v, nullptr);
  return true;
}

/// Parses "node:start_ms:dur_ms" fault windows.
bool env_window(const char* name, int& node, des::Time& start,
                des::Duration& duration) {
  const char* v = std::getenv(name);
  if (!v || !*v) return false;
  int n = 0;
  double start_ms = 0;
  double dur_ms = 0;
  if (std::sscanf(v, "%d:%lf:%lf", &n, &start_ms, &dur_ms) != 3) {
    throw std::invalid_argument(std::string(name) + " wants node:start_ms:dur_ms, got \"" + v + "\"");
  }
  node = n;
  start = static_cast<des::Time>(start_ms * des::kMillisecond);
  duration = static_cast<des::Duration>(dur_ms * des::kMillisecond);
  return true;
}

}  // namespace

bool apply_fault_env(net::FabricConfig& cfg) {
  net::FaultConfig& f = cfg.faults;
  bool any = false;
  if (const char* v = std::getenv("AMTLCE_FAULT_SEED")) {
    f.seed = std::strtoull(v, nullptr, 0);
    any = true;
  }
  any |= env_double("AMTLCE_FAULT_DROP", f.drop_prob);
  any |= env_double("AMTLCE_FAULT_DUP", f.dup_prob);
  any |= env_double("AMTLCE_FAULT_CORRUPT", f.corrupt_prob);
  any |= env_double("AMTLCE_FAULT_SPIKE_PROB", f.spike_prob);
  double us = 0;
  if (env_double("AMTLCE_FAULT_SPIKE_US", us)) {
    f.spike_max = static_cast<des::Duration>(us * des::kMicrosecond);
    any = true;
  }
  if (env_double("AMTLCE_FAULT_JITTER_US", us)) {
    f.jitter_max = static_cast<des::Duration>(us * des::kMicrosecond);
    any = true;
  }
  any |= env_window("AMTLCE_FAULT_BROWNOUT", f.brownout_node,
                    f.brownout_start, f.brownout_duration);
  any |= env_window("AMTLCE_FAULT_STALL", f.stall_node, f.stall_start,
                    f.stall_duration);
  if (any) net::validate(cfg);  // fail loudly on out-of-range knobs
  return any;
}

bool reliable_from_env() {
  const char* v = std::getenv("AMTLCE_RELIABLE");
  if (!v || !*v) return false;
  const std::string s = v;
  return s != "0" && s != "off" && s != "false";
}

double mean_of(const Reps& reps, const std::function<double(int)>& measure) {
  double sum = 0;
  int counted = 0;
  for (int i = 0; i < reps.total; ++i) {
    const double v = measure(i);
    if (i >= reps.warmup) {
      sum += v;
      ++counted;
    }
  }
  return counted > 0 ? sum / counted : 0.0;
}

PingPongResult run_pingpong(ce::BackendKind backend,
                            const PingPongOptions& opts,
                            net::FabricConfig fabric, ce::CeConfig ce_cfg) {
  assert(opts.iterations >= 1 && "ping-pong needs at least one iteration");
  // Environment chaos knobs overlay whatever the caller configured.
  apply_fault_env(fabric);
  if (reliable_from_env()) ce_cfg.reliable.enabled = true;
  des::Engine eng;
  const auto tracer = obs::Tracer::attach_from_env(eng);
  net::Fabric fab(eng, opts.nodes, fabric);
  ce::CommWorld comm(fab, backend, ce_cfg);
  PingPongGraph graph(opts);
  amt::RuntimeConfig rt = amt::RuntimeConfig::light_costs();
  // §6.1.2: 128 cores; one for the communication thread, one more for the
  // LCI progress thread.
  rt.workers = 128 - 1 -
               (backend == ce::BackendKind::Lci && ce_cfg.progress_thread
                    ? 1
                    : 0);
  amt::Runtime runtime(eng, fab, comm, graph, rt);
  const des::Duration makespan = runtime.run();
  const amt::NodeStats agg = runtime.aggregate_stats();
  {
    // Fold this simulation's metrics (CE/fabric + runtime latency stages)
    // into the process-wide accumulator for AMTLCE_METRICS.
    obs::Recorder snap = comm.metrics();
    fab.export_metrics(snap);
    amt::export_latency_metrics(agg, snap);
    metrics_accumulator().merge(snap);
  }

  PingPongResult res;
  res.tts_s = des::to_seconds(makespan);
  // Wire-volume accounting: the first round's fragments start co-located
  // with their tasks, so the window crosses the network once per iteration
  // *transition* — (iterations - 1) crossings per stream.  Signed math: a
  // single iteration moves nothing and reports zero bandwidth instead of
  // the unsigned-underflow garbage the old size_t expression produced.
  const double bytes = static_cast<double>(opts.total_bytes) *
                       opts.streams * (opts.iterations - 1);
  res.gbit_per_s = bytes * 8.0 / res.tts_s / 1e9;
  res.gflop_per_s = graph.total_flops() / res.tts_s / 1e9;
  res.latency = agg.latency;
  res.stages = agg.stages;
  res.crit = agg.crit;
  return res;
}

PingPongResult run_pingpong_series(const Reps& reps, ce::BackendKind backend,
                                   const PingPongOptions& opts,
                                   net::FabricConfig fabric,
                                   ce::CeConfig ce_cfg) {
  PingPongResult agg;
  int counted = 0;
  for (int i = 0; i < reps.total; ++i) {
    PingPongResult r = run_pingpong(backend, opts, fabric, ce_cfg);
    if (i < reps.warmup) continue;
    agg.gbit_per_s += r.gbit_per_s;
    agg.gflop_per_s += r.gflop_per_s;
    agg.tts_s += r.tts_s;
    agg.latency.merge(r.latency);
    agg.stages.merge(r.stages);
    agg.crit.merge(r.crit);
    ++counted;
  }
  if (counted > 0) {
    agg.gbit_per_s /= counted;
    agg.gflop_per_s /= counted;
    agg.tts_s /= counted;
  }
  return agg;
}

double netpipe_gbit(std::size_t fragment_bytes, std::size_t total_bytes,
                    net::FabricConfig fabric) {
  des::Engine eng;
  net::Fabric fab(eng, 2, fabric);
  const auto count = total_bytes / fragment_bytes;
  if (count == 0) return 0.0;  // fragment larger than the total volume
  des::Time first = 0;
  des::Time last = 0;
  std::uint64_t received = 0;
  fab.nic(1).set_deliver_handler([&](net::Message&&) {
    if (received == 0) first = eng.now();
    ++received;
    last = eng.now();
  });
  // Small per-message host overhead, like the NetPIPE inner loop.
  des::Time inject = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    eng.schedule_at(inject, [&fab, fragment_bytes]() {
      net::Message m;
      m.src = 0;
      m.dst = 1;
      m.wire_bytes = fragment_bytes + 64;
      fab.nic(0).send(std::move(m));
    });
    inject += 500;  // 0.5 us software pacing per message
  }
  eng.run();
  if (received == 0) return 0.0;
  if (received == 1) {
    // Single message: no arrival-to-arrival window exists, so fall back to
    // injection-to-arrival time (includes the one-way latency — the
    // steady-state pipeline rate is undefined with one sample).
    return static_cast<double>(fragment_bytes) * 8.0 / des::to_seconds(last) /
           1e9;
  }
  // Steady-state rate: the window [first arrival, last arrival] contains
  // the payloads of messages 2..N.
  const double bytes = static_cast<double>(fragment_bytes) *
                       static_cast<double>(received - 1);
  return bytes * 8.0 / des::to_seconds(last - first) / 1e9;
}

obs::Recorder& metrics_accumulator() {
  static obs::Recorder rec;
  return rec;
}

bool export_metrics_env() {
  const char* path = std::getenv("AMTLCE_METRICS");
  if (path == nullptr || *path == '\0') return false;
  std::ofstream out(path);
  if (!out) return false;
  out << obs::metrics_json(metrics_accumulator());
  return static_cast<bool>(out);
}

std::string critical_path_line(const amt::CriticalPath& cp) {
  if (!cp.seen) return "critical path: (no tasks observed)";
  char buf[192];
  std::snprintf(
      buf, sizeof buf,
      "critical path: %u tasks, %.3f ms = compute %.3f + comm %.3f + "
      "overhead %.3f ms, ends at task %d(%d,%d,%d)",
      cp.sums.tasks, static_cast<double>(cp.sums.total()) / 1e6,
      static_cast<double>(cp.sums.compute) / 1e6,
      static_cast<double>(cp.sums.comm) / 1e6,
      static_cast<double>(cp.sums.overhead) / 1e6, cp.last.cls, cp.last.i,
      cp.last.j, cp.last.k);
  return buf;
}

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::add_row(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

Table::~Table() {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
    for (const auto& row : rows_) {
      if (c < row.size()) width[c] = std::max(width[c], row[c].size());
    }
  }
  std::printf("\n== %s ==\n", title_.c_str());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%-*s  ", static_cast<int>(width[c]), columns_[c].c_str());
  }
  std::printf("\n");
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%s  ", std::string(width[c], '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(width[c]), row[c].c_str());
    }
    std::printf("\n");
  }
  std::fflush(stdout);

  if (const char* prefix = std::getenv("AMTLCE_CSV")) {
    std::string name = title_;
    for (auto& ch : name) {
      if (ch == ' ' || ch == '/' || ch == ',') ch = '_';
    }
    // RFC-4180-style quoting for cells containing separators or quotes.
    const auto escape = [](const std::string& cell) -> std::string {
      if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
      std::string quoted = "\"";
      for (const char ch : cell) {
        if (ch == '"') quoted += '"';
        quoted += ch;
      }
      quoted += '"';
      return quoted;
    };
    std::ofstream csv(std::string(prefix) + name + ".csv");
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      csv << escape(columns_[c]) << (c + 1 < columns_.size() ? "," : "\n");
    }
    // Every data line has exactly one field per header column: short rows
    // are padded with empty cells, long rows keep their extra cells.
    for (const auto& row : rows_) {
      const std::size_t n = std::max(row.size(), columns_.size());
      for (std::size_t c = 0; c < n; ++c) {
        if (c > 0) csv << ',';
        if (c < row.size()) csv << escape(row[c]);
      }
      csv << '\n';
    }
  }
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string human_bytes(std::size_t bytes) {
  char buf[64];
  if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof buf, "%.5g MiB",
                  static_cast<double>(bytes) / (1 << 20));
  } else {
    std::snprintf(buf, sizeof buf, "%.5g KiB",
                  static_cast<double>(bytes) / (1 << 10));
  }
  return buf;
}

}  // namespace bench
