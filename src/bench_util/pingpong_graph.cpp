#include "bench_util/pingpong_graph.hpp"

#include <cassert>

namespace bench {
namespace {
constexpr std::int32_t kPing = 0;
constexpr std::int32_t kSync = 1;
constexpr std::int32_t kSend = 2;
}  // namespace

// Sync mode uses three classes so that the Sync task serializes the
// *transfers*, not just the task executions:
//   PING(t,f,c) --data(local)--> SEND(t,f,c) --data(remote)--> PING(t+1,f,c)
//   PING(t,*,*) --ctl--> SYNC(t) --ctl--> SEND(t,*,*)
// SEND is a zero-work task co-located with its PING; its output is what
// crosses the network, and it cannot run (hence nothing is sent) until
// every PING of the iteration has executed — which in turn required every
// transfer of the previous round to arrive.  Without sync, PING feeds the
// next PING directly and rounds pipeline (the Fig. 2b "no sync" series).

int PingPongGraph::num_inputs(const amt::TaskKey& t) const {
  switch (t.cls) {
    case kSync:
      return opts_.window() * opts_.streams;
    case kSend:
      return 2;  // data from PING, gate from SYNC
    default:
      if (t.i == 0) return 0;
      return 1;  // data from previous round
  }
}

int PingPongGraph::num_outputs(const amt::TaskKey& t) const {
  switch (t.cls) {
    case kSync:
      return 1;
    case kSend:
      return 1;
    default:
      if (t.i + 1 >= opts_.iterations) return 0;
      return opts_.sync ? 2 : 1;
  }
}

int PingPongGraph::rank_of(const amt::TaskKey& t) const {
  if (t.cls == kSync) return t.i % opts_.nodes;
  // Stream c starts on node c % nodes and hops every iteration; SEND is
  // co-located with its PING.
  return (t.k + t.i) % opts_.nodes;
}

void PingPongGraph::successors(const amt::TaskKey& t, int flow,
                               std::vector<amt::Dep>& out) const {
  const int W = opts_.window();
  switch (t.cls) {
    case kSync:
      // Releases every SEND of this iteration.
      for (int f = 0; f < W; ++f) {
        for (int c = 0; c < opts_.streams; ++c) {
          out.push_back({amt::TaskKey{kSend, t.i, f, c}, 1});
        }
      }
      return;
    case kSend:
      out.push_back({amt::TaskKey{kPing, t.i + 1, t.j, t.k}, 0});
      return;
    default:
      if (t.i + 1 >= opts_.iterations) return;
      if (opts_.sync) {
        if (flow == 0) {
          out.push_back({amt::TaskKey{kSend, t.i, t.j, t.k}, 0});
        } else {
          out.push_back({amt::TaskKey{kSync, t.i},
                         t.j * opts_.streams + t.k});
        }
      } else {
        out.push_back({amt::TaskKey{kPing, t.i + 1, t.j, t.k}, 0});
      }
      return;
  }
}

des::Duration PingPongGraph::execute(const amt::TaskKey& t,
                                     amt::RunContext& ctx) {
  switch (t.cls) {
    case kSync:
      ctx.set_output(0, amt::DataCopy::virt(0));
      return 1 * des::kMicrosecond;
    case kSend:
      // Forward the data copy; the transfer happens downstream.
      ctx.set_output(0, ctx.input(0));
      return 500;  // send-initiation bookkeeping
    default: {
      if (t.i + 1 < opts_.iterations) {
        ctx.set_output(0, amt::DataCopy::virt(opts_.fragment_bytes));
        if (opts_.sync) ctx.set_output(1, amt::DataCopy::virt(0));
      }
      const double flops =
          2.0 * opts_.fma_per_8bytes *
          (static_cast<double>(opts_.fragment_bytes) / 8.0);
      return des::kMicrosecond +
             des::from_seconds(flops / (opts_.core_gflops * 1e9));
    }
  }
}

void PingPongGraph::initial_tasks(int rank,
                                  std::vector<amt::TaskKey>& out) const {
  const int W = opts_.window();
  for (int f = 0; f < W; ++f) {
    for (int c = 0; c < opts_.streams; ++c) {
      const amt::TaskKey t{kPing, 0, f, c};
      if (rank_of(t) == rank) out.push_back(t);
    }
  }
}

std::uint64_t PingPongGraph::total_tasks() const {
  const auto per_iter = static_cast<std::uint64_t>(opts_.window()) *
                        static_cast<std::uint64_t>(opts_.streams);
  const auto pings =
      static_cast<std::uint64_t>(opts_.iterations) * per_iter;
  if (!opts_.sync) return pings;
  const auto rounds = static_cast<std::uint64_t>(opts_.iterations - 1);
  return pings + rounds /*sync*/ + rounds * per_iter /*send*/;
}

double PingPongGraph::total_flops() const {
  return 2.0 * opts_.fma_per_8bytes *
         (static_cast<double>(opts_.fragment_bytes) / 8.0) *
         static_cast<double>(opts_.iterations) *
         static_cast<double>(opts_.window()) *
         static_cast<double>(opts_.streams);
}

}  // namespace bench
