// Benchmark harness shared by the figure-reproduction binaries.
//
// Methodology follows paper §6.1.3: each measurement runs several
// executions in succession, discards the first (warm-up) ones, and
// reports the mean of the rest.  In a deterministic simulation repeats
// differ only via the seed, so the defaults are lighter than the paper's
// 18/3 — override with AMTLCE_REPS / AMTLCE_WARMUP env vars to match.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "amt/config.hpp"
#include "ce/world.hpp"
#include "net/config.hpp"
#include "bench_util/pingpong_graph.hpp"

namespace bench {

/// Repetition policy (env-overridable: AMTLCE_REPS, AMTLCE_WARMUP).
/// Values are clamped sane: total >= 1, 0 <= warmup < total.
struct Reps {
  int total = 3;
  int warmup = 1;
  static Reps from_env();
};

/// Mean over repeated measurements with warm-up discard.
double mean_of(const Reps& reps, const std::function<double(int)>& measure);

/// Overlays AMTLCE_FAULT_* environment knobs onto `cfg.faults` so any
/// bench binary can run under an injected fault schedule:
///   AMTLCE_FAULT_SEED        fault RNG seed (decimal or 0x hex)
///   AMTLCE_FAULT_DROP        drop probability in [0, 1]
///   AMTLCE_FAULT_DUP         duplication probability
///   AMTLCE_FAULT_CORRUPT     bit-flip corruption probability
///   AMTLCE_FAULT_SPIKE_PROB  latency-spike probability
///   AMTLCE_FAULT_SPIKE_US    max spike magnitude, microseconds
///   AMTLCE_FAULT_JITTER_US   max per-message jitter, microseconds
///   AMTLCE_FAULT_BROWNOUT    node:start_ms:dur_ms link brownout window
///   AMTLCE_FAULT_STALL       node:start_ms:dur_ms NIC stall window
/// The merged config is validated (std::invalid_argument on garbage).
/// Returns true when any override was applied.
bool apply_fault_env(net::FabricConfig& cfg);

/// True when AMTLCE_RELIABLE requests the end-to-end reliability sublayer
/// (unset, "0", "off", "false" => false; anything else => true).
bool reliable_from_env();

struct PingPongResult {
  double gbit_per_s = 0;   ///< fragment payload bandwidth
  double gflop_per_s = 0;  ///< task-body compute rate (overlap benchmark)
  double tts_s = 0;
  /// Per-flow latency distribution (hop + e2e) aggregated over all nodes.
  amt::LatencyStats latency;
  /// Lifecycle-stage decomposition of the e2e path (telescoping stages).
  amt::StageLats stages;
  /// Longest weighted dependency chain across the run.
  amt::CriticalPath crit;
};

/// Runs the §6.2/§6.3 ping-pong graph on a fresh 2..N-node cluster.
/// Honors AMTLCE_TRACE (one Chrome-trace file per simulation).
PingPongResult run_pingpong(ce::BackendKind backend,
                            const PingPongOptions& opts,
                            net::FabricConfig fabric = net::expanse_config(),
                            ce::CeConfig ce_cfg = {});

/// run_pingpong over a full repetition series: scalar results are the mean
/// of the post-warm-up runs, latency histograms are merged across them.
PingPongResult run_pingpong_series(
    const Reps& reps, ce::BackendKind backend, const PingPongOptions& opts,
    net::FabricConfig fabric = net::expanse_config(), ce::CeConfig ce_cfg = {});

/// Hardware-only ping-pong ceiling (the NetPIPE role): windowed raw
/// fabric transfers of `fragment` bytes, no runtime, no backend.
double netpipe_gbit(std::size_t fragment_bytes,
                    std::size_t total_bytes = 256ull << 20,
                    net::FabricConfig fabric = net::expanse_config());

/// Process-wide metrics accumulator: run_pingpong merges each
/// simulation's obs::Recorder snapshot here (the figure benches do the
/// same with ExperimentResult::metrics), so one AMTLCE_METRICS dump can
/// cover a whole sweep.
obs::Recorder& metrics_accumulator();

/// When AMTLCE_METRICS names a path, writes obs::metrics_json() of the
/// accumulator there (overwritten on every call — call last).  Returns
/// true when a file was written.
bool export_metrics_env();

/// One-line critical-path breakdown for reports, e.g.
///   "critical path: 42 tasks, 12.345 ms = compute 8.000 + comm 3.500 +
///    overhead 0.845 ms, ends at task 2(5,3,1)"
/// Deterministic: same simulation seed, byte-identical line.
std::string critical_path_line(const amt::CriticalPath& cp);

/// Aligned table output: header once, then add_row per line; also emits
/// a CSV copy next to stdout when AMTLCE_CSV is set to a path prefix.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);
  void add_row(const std::vector<std::string>& cells);
  ~Table();

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt(double v, int precision = 2);
std::string human_bytes(std::size_t bytes);

}  // namespace bench
