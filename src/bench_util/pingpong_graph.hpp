// The task-based windowed ping-pong benchmark of paper §6.2/§6.3.
//
// PINGPONG(t, f, c) operates on fragment f (window position) of stream c
// in iteration t; tasks execute round-robin across nodes so the fragment
// data crosses the network every iteration.  A Sync(t) task (optional —
// the "no sync" variants of Fig. 2b drop it) forces serialization between
// iterations.  For the overlap study (§6.3, Fig. 3) each task can execute
// a configurable number of FMA operations per 8 bytes of its fragment.
#pragma once

#include <cstddef>
#include <cstdint>

#include "des/time.hpp"
#include "amt/task_graph.hpp"

namespace bench {

struct PingPongOptions {
  std::size_t fragment_bytes = 1 << 20;
  /// Data volume per iteration per stream; the window size is
  /// total_bytes / fragment_bytes (the paper holds this at 256 MiB).
  std::size_t total_bytes = 256ull << 20;
  int iterations = 4;
  int streams = 1;
  int nodes = 2;
  bool sync = true;

  /// Compute intensity: FMA operations executed per 8 bytes of fragment
  /// (0 = pure bandwidth benchmark).  GEMM-like intensity is
  /// sqrt(fragment_bytes / 8).
  double fma_per_8bytes = 0.0;
  double core_gflops = 10.0;  ///< worker FLOP rate for the intensity model

  int window() const {
    return static_cast<int>(total_bytes / fragment_bytes);
  }
};

class PingPongGraph final : public amt::TaskGraphDef {
 public:
  explicit PingPongGraph(PingPongOptions opts) : opts_(opts) {}

  int num_inputs(const amt::TaskKey& t) const override;
  int num_outputs(const amt::TaskKey& t) const override;
  int rank_of(const amt::TaskKey& t) const override;
  void successors(const amt::TaskKey& t, int flow,
                  std::vector<amt::Dep>& out) const override;
  des::Duration execute(const amt::TaskKey& t,
                        amt::RunContext& ctx) override;
  void initial_tasks(int rank, std::vector<amt::TaskKey>& out) const override;
  std::uint64_t total_tasks() const override;

  /// Task-body FLOPs executed over the whole run.
  double total_flops() const;

  const PingPongOptions& options() const { return opts_; }

 private:
  PingPongOptions opts_;
};

}  // namespace bench
