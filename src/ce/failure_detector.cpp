#include "ce/failure_detector.hpp"

#include <algorithm>

#include "obs/flight_recorder.hpp"
#include "obs/stats.hpp"

namespace ce {

// ---------------------------------------------------------------------------
// Per-node detector shim

class FailureDetectorDomain::NodeDetector final : public net::LinkShim {
 public:
  NodeDetector(FailureDetectorDomain& domain, int node)
      : domain_(domain), node_(node) {
    const auto n = static_cast<std::size_t>(domain_.fabric_.num_nodes());
    last_rx_.resize(n, 0);
    last_tx_.resize(n, 0);
    mean_gap_.resize(n, 0.0);
    state_.resize(n, PeerState::Alive);
    net::Nic& nic = domain_.fabric_.nic(node_);
    inner_ = nic.shim();
    nic.set_shim(this);
    arm_timer();
  }

  ~NodeDetector() override {
    cancel_timer();
    domain_.fabric_.nic(node_).set_shim(inner_);
  }

  void shim_send(net::Message&& m, std::function<void()> on_sent) override {
    if (m.dst != node_) {
      last_tx_[static_cast<std::size_t>(m.dst)] = eng().now();
    }
    if (inner_ != nullptr) {
      inner_->shim_send(std::move(m), std::move(on_sent));
      return;
    }
    domain_.fabric_.nic(node_).raw_send(std::move(m), std::move(on_sent));
  }

  bool shim_deliver(net::Message& m) override {
    if (m.src != node_) note_alive(m.src);
    if (m.hdr.proto == net::kProtoFd) return true;  // heartbeat: consumed
    if (inner_ != nullptr) return inner_->shim_deliver(m);
    return false;
  }

  PeerState state(int peer) const {
    return state_[static_cast<std::size_t>(peer)];
  }

  void hint(int peer) {
    PeerState& st = state_[static_cast<std::size_t>(peer)];
    if (st != PeerState::Alive) return;
    st = PeerState::Suspect;
    domain_.track_view(peer, PeerState::Alive, PeerState::Suspect);
    ++domain_.stats_.suspects;
    ++domain_.stats_.hints;
    if (domain_.rec_ != nullptr) {
      domain_.rec_->counter("ce.fd.suspects").add();
      domain_.rec_->counter("ce.fd.hints").add();
    }
    domain_.notify(node_, peer, PeerState::Suspect);
  }

  /// Ground-truth restart of `peer`: revive a sticky Dead verdict.  A
  /// Suspect verdict is left alone — resumed heartbeats clear it (the
  /// suspect -> alive flap the stats count).
  void peer_restarted(int peer) {
    const auto i = static_cast<std::size_t>(peer);
    last_rx_[i] = eng().now();
    mean_gap_[i] = 0.0;
    if (state_[i] != PeerState::Dead) return;
    state_[i] = PeerState::Alive;
    domain_.track_view(peer, PeerState::Dead, PeerState::Alive);
    ++domain_.stats_.revivals;
    if (domain_.rec_ != nullptr) {
      domain_.rec_->counter("ce.fd.revivals").add();
    }
    domain_.notify(node_, peer, PeerState::Alive);
  }

  /// This node itself restarted: reset every view and restart the timer
  /// (the crash cancelled it along with the rest of the node's shard).
  void self_restarted() {
    const des::Time now = eng().now();
    std::fill(last_rx_.begin(), last_rx_.end(), now);
    std::fill(last_tx_.begin(), last_tx_.end(), now);
    std::fill(mean_gap_.begin(), mean_gap_.end(), 0.0);
    arm_timer();
  }

  void cancel_timer() { eng().cancel(timer_); }

 private:
  des::Engine& eng() { return domain_.fabric_.engine(); }

  void arm_timer() {
    if (domain_.stopped_) return;
    timer_ = eng().schedule_on(net::Fabric::shard_of(node_),
                               eng().now() + domain_.cfg_.heartbeat_interval,
                               [this]() { tick(); });
  }

  void note_alive(int peer) {
    const auto i = static_cast<std::size_t>(peer);
    const des::Time now = eng().now();
    if (last_rx_[i] > 0) {
      const auto gap = static_cast<double>(now - last_rx_[i]);
      mean_gap_[i] = mean_gap_[i] == 0.0 ? gap
                                         : 0.8 * mean_gap_[i] + 0.2 * gap;
    }
    last_rx_[i] = now;
    if (state_[i] == PeerState::Suspect) {
      state_[i] = PeerState::Alive;
      domain_.track_view(peer, PeerState::Suspect, PeerState::Alive);
      ++domain_.stats_.false_suspects;
      if (domain_.rec_ != nullptr) {
        domain_.rec_->counter("ce.fd.false_suspects").add();
      }
      domain_.notify(node_, peer, PeerState::Alive);
    }
  }

  des::Duration suspect_threshold(std::size_t i) const {
    const auto adaptive = static_cast<des::Duration>(
        domain_.cfg_.phi_factor * mean_gap_[i]);
    return std::max(domain_.cfg_.min_timeout, adaptive);
  }

  void tick() {
    const des::Time now = eng().now();
    const FdConfig& cfg = domain_.cfg_;
    const int n = domain_.fabric_.num_nodes();
    for (int peer = 0; peer < n; ++peer) {
      if (peer == node_) continue;
      const auto i = static_cast<std::size_t>(peer);
      if (state_[i] == PeerState::Dead) continue;

      // Heartbeat only into silence: any frame to the peer within the
      // interval already proved us alive over there.
      if (now - last_tx_[i] >= cfg.heartbeat_interval) {
        send_heartbeat(peer);
        last_tx_[i] = now;
      }

      const des::Duration silence = now - last_rx_[i];
      const des::Duration threshold = suspect_threshold(i);
      if (state_[i] == PeerState::Alive && silence > threshold) {
        state_[i] = PeerState::Suspect;
        domain_.track_view(peer, PeerState::Alive, PeerState::Suspect);
        ++domain_.stats_.suspects;
        if (domain_.rec_ != nullptr) {
          domain_.rec_->counter("ce.fd.suspects").add();
        }
        domain_.notify(node_, peer, PeerState::Suspect);
      }
      if (state_[i] == PeerState::Suspect &&
          silence > threshold + cfg.confirm_timeout) {
        state_[i] = PeerState::Dead;
        domain_.track_view(peer, PeerState::Suspect, PeerState::Dead);
        ++domain_.stats_.deaths;
        domain_.record_death(node_, peer, now);
        domain_.notify(node_, peer, PeerState::Dead);
      }
    }
    arm_timer();
  }

  void send_heartbeat(int peer) {
    net::Message m;
    m.src = node_;
    m.dst = peer;
    m.wire_bytes = domain_.cfg_.heartbeat_bytes;
    m.hdr.proto = net::kProtoFd;
    domain_.fabric_.nic(node_).raw_send(std::move(m));
    ++domain_.stats_.heartbeats_sent;
    if (domain_.rec_ != nullptr) {
      domain_.rec_->counter("ce.fd.heartbeats").add();
    }
  }

  FailureDetectorDomain& domain_;
  int node_;
  net::LinkShim* inner_ = nullptr;
  des::ShardedEventQueue::Id timer_;
  std::vector<des::Time> last_rx_;
  std::vector<des::Time> last_tx_;
  std::vector<double> mean_gap_;     ///< EWMA inter-arrival gap (ns)
  std::vector<PeerState> state_;
};

// ---------------------------------------------------------------------------
// Domain

FailureDetectorDomain::FailureDetectorDomain(net::Fabric& fabric, FdConfig cfg)
    : fabric_(fabric), cfg_(cfg) {
  const int n = fabric_.num_nodes();
  suspect_views_of_.resize(static_cast<std::size_t>(n), 0);
  dead_views_of_.resize(static_cast<std::size_t>(n), 0);
  nodes_.reserve(static_cast<std::size_t>(n));
  for (int node = 0; node < n; ++node) {
    nodes_.emplace_back(std::make_unique<NodeDetector>(*this, node));
  }
  fabric_.add_crash_handler([this](net::NodeId node, bool up) {
    if (!up) return;  // the crash itself needs no action: the shard died
    nodes_[static_cast<std::size_t>(node)]->self_restarted();
    for (auto& d : nodes_) d->peer_restarted(node);
  });
}

FailureDetectorDomain::~FailureDetectorDomain() {
  // Uninstall in reverse construction order so each detector restores
  // the inner shim it captured.
  while (!nodes_.empty()) nodes_.pop_back();
}

PeerState FailureDetectorDomain::peer_state(int node, int peer) const {
  return nodes_.at(static_cast<std::size_t>(node))->state(peer);
}

void FailureDetectorDomain::suspect_hint(int node, int peer) {
  nodes_.at(static_cast<std::size_t>(node))->hint(peer);
}

void FailureDetectorDomain::stop() {
  stopped_ = true;
  for (auto& d : nodes_) d->cancel_timer();
}

void FailureDetectorDomain::set_recorder(obs::Recorder* rec) { rec_ = rec; }

void FailureDetectorDomain::track_view(int peer, PeerState from,
                                       PeerState to) {
  const auto i = static_cast<std::size_t>(peer);
  if (from == PeerState::Suspect) --suspect_views_of_[i];
  if (from == PeerState::Dead) --dead_views_of_[i];
  if (to == PeerState::Suspect) ++suspect_views_of_[i];
  if (to == PeerState::Dead) ++dead_views_of_[i];
}

void FailureDetectorDomain::notify(int node, int peer, PeerState state) {
  obs::FlightRecorder::global().record(
      node, obs::FlightKind::FdState, fabric_.engine().now(), 0,
      static_cast<std::uint64_t>(peer),
      static_cast<std::uint64_t>(static_cast<std::uint8_t>(state)));
  for (const StateCallback& cb : subscribers_) cb(node, peer, state);
}

void FailureDetectorDomain::record_death(int node, int peer, des::Time now) {
  if (rec_ == nullptr) return;
  rec_->counter("ce.fd.dead").add();
  // Detection latency against the fabric's ground-truth crash schedule.
  for (const net::CrashEvent& c : fabric_.config().faults.crashes) {
    if (c.node == peer && now >= c.crash_at) {
      rec_->histogram("ce.fd.detect_ns")
          .add(static_cast<double>(now - c.crash_at));
      return;
    }
  }
  (void)node;
}

}  // namespace ce
