// The LCI backend of the PaRSEC communication engine (paper §5.3).
//
// Mechanisms reproduced:
//   * A dedicated progress thread runs LCI_progress: it drains hardware
//     completions, matches Direct transfers, and runs handler functions —
//     fully decoupled from callback execution (§5.3.1).  Disable it with
//     CeConfig::progress_thread = false (ablation: progress then happens
//     inside progress() on the communication thread, MPI-style).
//   * Active-message tags live in a hash table mapping tag -> callback
//     handle; registration is a table insert, no receives posted (§5.3.2).
//   * send_am picks the Immediate or Buffered protocol by size; receive
//     buffers are dynamically allocated at the target (§5.3.2).
//   * put() sends a handshake (Immediate/Buffered by size) on a
//     specialized path that bypasses the AM hash lookup, then moves data
//     with the Direct protocol.  Small data rides inside the handshake
//     (the eager-data optimization) and completes locally at once
//     (§5.3.3).
//   * The handshake handler posts the matching Direct receive from the
//     progress thread; when LCI returns Retry (resource pressure), the
//     receive is delegated to the communication thread (§5.3.3).
//   * Completion callbacks are queued as handles into two FIFO queues (AM
//     vs bulk data); progress() takes up to 5 AM handles, then all bulk
//     handles, looping until both are empty (§5.3.4).
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ce/comm_engine.hpp"
#include "ce/reliable.hpp"
#include "des/poll_loop.hpp"
#include "des/rng.hpp"
#include "des/sim_thread.hpp"
#include "mlci/lci.hpp"

namespace ce {

class LciBackend final : public CommEngine {
 public:
  /// `progress_core` names the simulated core for the progress thread; it
  /// is created only when cfg.progress_thread is set.
  LciBackend(mlci::Device& device, des::Engine& engine, CeConfig cfg = {});
  ~LciBackend() override;

  int rank() const override { return dev_.rank(); }
  int size() const override;

  Status tag_reg(Tag tag, AmCallback cb, void* cb_data,
                 std::size_t max_len) override;
  MemReg mem_reg(void* mem, std::size_t size) override;
  Status send_am(Tag tag, int remote, const void* msg,
                 std::size_t size) override;
  int put(const MemReg& lreg, std::ptrdiff_t ldispl, const MemReg& rreg,
          std::ptrdiff_t rdispl, std::size_t size, int remote,
          OnesidedCallback l_cb, void* l_cb_data, Tag r_tag,
          const void* r_cb_data, std::size_t r_cb_data_size) override;
  int progress() override;
  void peer_failed(int remote) override;
  bool idle() const override;
  void set_wake_callback(std::function<void()> fn) override;
  const CeStats& stats() const override { return stats_; }
  void set_recorder(obs::Recorder* rec) override { rec_ = rec; }

  /// The progress thread (null when disabled) — exposed so experiments can
  /// read its utilization.
  des::SimThread* progress_thread() { return progress_thread_.get(); }

 private:
  struct AmTagInfo {
    AmCallback cb;
    void* cb_data = nullptr;
    std::size_t max_len = 0;
  };

  /// Callback handle: filled by the progress thread, consumed by the
  /// communication thread through the FIFO queues (§5.3.2/§5.3.4).
  struct AmHandle {
    Tag tag = 0;
    int src = -1;
    net::PayloadPtr payload;
    std::size_t size = 0;
    des::Time arrived = 0;  ///< FIFO entry time ("ce.am_queue_ns")
  };
  struct DataHandle {
    enum class Kind { LocalDone, RemoteDone };
    Kind kind = Kind::LocalDone;
    // LocalDone
    OnesidedCallback l_cb;
    void* l_cb_data = nullptr;
    MemReg lreg, rreg;
    std::ptrdiff_t ldispl = 0, rdispl = 0;
    std::size_t size = 0;
    int remote = -1;
    // RemoteDone
    Tag r_tag = 0;
    std::vector<std::byte> r_cb_data;
    int origin = -1;
    std::uint64_t flow_id = 0;  ///< put trace-flow id (origin, data_tag)
    /// Put start (origin call / handshake arrival): put_local/put_remote
    /// latency base.
    des::Time started = 0;
    des::Time queued = 0;  ///< FIFO entry time ("ce.data_queue_ns")
  };
  /// A Direct receive that hit Retry on the progress thread and was
  /// delegated to the communication thread.
  struct PendingRecv {
    int src = -1;
    std::uint64_t data_tag = 0;
    void* dst = nullptr;
    std::size_t size = 0;
    DataHandle remote_done;  ///< completion pushed when the data lands
  };
  /// An AM or handshake whose send hit Retry (pool exhaustion).
  struct PendingSend {
    int remote = -1;
    Tag wire_tag = 0;
    std::vector<std::byte> body;
  };
  /// A Direct data send (or native put) that hit Retry.
  struct PendingDataSend {
    int remote = -1;
    std::uint64_t data_tag = 0;
    const void* src = nullptr;
    std::size_t size = 0;
    DataHandle local_done;
    // Native-put fields (cfg.native_put).
    bool native = false;
    std::uint64_t remote_base = 0;
    std::vector<std::byte> imm;
  };

  void on_am_arrival(mlci::Request&& req);      // progress-thread context
  void handle_handshake(mlci::Request&& req);   // progress-thread context
  bool post_data_recv(const PendingRecv& pr);   // false => Retry
  bool start_data_send(const PendingDataSend& ps);  // false => Retry
  mlci::Status send_wire_am(int remote, Tag wire_tag, const void* body,
                            std::size_t size);  // Immediate/Buffered by size
  void dispatch_data_handle(DataHandle&& h);
  void wake_comm_thread();
  int drain_retries();
  void arm_retry_timer();
  void clear_retry_pacing();
  bool has_retries() const {
    return !retry_sends_.empty() || !retry_recvs_.empty() ||
           !retry_data_sends_.empty();
  }

  mlci::Device& dev_;
  des::Engine& eng_;
  CeConfig cfg_;
  CeStats stats_;
  std::unordered_map<Tag, AmTagInfo> tags_;

  std::deque<AmHandle> am_fifo_;
  std::deque<DataHandle> data_fifo_;
  std::deque<PendingRecv> retry_recvs_;
  std::deque<PendingSend> retry_sends_;
  std::deque<PendingDataSend> retry_data_sends_;

  std::unique_ptr<des::SimThread> progress_thread_;
  std::unique_ptr<des::PollLoop> progress_loop_;

  // Retry pacing: instead of hot-spinning drain_retries() on every
  // progress() pass while mlci keeps answering Retry, attempts back off
  // exponentially (with jitter, same Backoff policy as the reliability
  // sublayer) until either the timer expires or the progress thread
  // signals that resources were actually freed.
  Backoff retry_backoff_;
  des::Rng retry_rng_;
  des::Time retry_next_at_ = 0;   ///< gate: no drain before this time
  des::EventId retry_timer_ = des::kInvalidEvent;

  std::uint64_t next_data_tag_;
  std::uint64_t outstanding_direct_ = 0;  ///< sends with pending local done
  std::function<void()> wake_;
  obs::Recorder* rec_ = nullptr;
};

}  // namespace ce
