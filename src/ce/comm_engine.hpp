// The PaRSEC communication-engine API (paper §4.1, Listing 1).
//
// An active-message abstraction with a one-sided put for bulk data.  The
// runtime registers AM tags once at startup (ACTIVATE, GET DATA); task
// data moves with put(), which notifies *both* sides: a local callback at
// the origin and a registered AM callback (r_tag) at the target — the
// remote-completion requirement that rules out standard MPI RMA (§4.2.2).
//
// Two backends implement this interface:
//   MpiBackend (§4.2): persistent wildcard receives, MPI_Testsome polling
//     over a global request array, handshake + two-sided data transport,
//     a 30-transfer concurrency cap with deferred queues.
//   LciBackend (§5.3): dedicated progress thread, AM tag hash table,
//     handshake with the eager-data optimization, callback-handle FIFO
//     queues drained with a 5-AM fairness loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "des/time.hpp"
#include "net/message.hpp"

namespace obs {
class Recorder;
}

namespace ce {

using Tag = std::uint64_t;

class CommEngine;

/// Recoverable result codes for communication-engine calls.  API misuse
/// (unregistered tags, oversized messages, double registration) reports an
/// error instead of assert-aborting, so release builds validate too; the
/// reliability sublayer reports delivery failures the same way.
enum class Status : int {
  Ok = 0,
  ErrTagUnregistered,  ///< send_am on a tag never passed to tag_reg
  ErrTagDuplicate,     ///< tag_reg on an already-registered tag
  ErrTooLarge,         ///< message exceeds the registered/backing limit
  ErrTimeout,          ///< reliability: retry budget exhausted
  ErrPeerDead,         ///< destination confirmed dead by the failure detector
};

inline const char* status_name(Status s) {
  switch (s) {
    case Status::Ok: return "Ok";
    case Status::ErrTagUnregistered: return "ErrTagUnregistered";
    case Status::ErrTagDuplicate: return "ErrTagDuplicate";
    case Status::ErrTooLarge: return "ErrTooLarge";
    case Status::ErrTimeout: return "ErrTimeout";
    case Status::ErrPeerDead: return "ErrPeerDead";
  }
  return "?";
}

/// End-to-end reliability sublayer configuration (ce/reliable).  Disabled
/// by default: the sublayer is not installed and the wire path is
/// byte-for-byte what it was before the sublayer existed.
struct ReliableConfig {
  bool enabled = false;

  /// Retransmission timer: the per-message initial timeout is
  ///   rto_initial + rtt_factor * (queue wait + serialization + latency),
  /// then grows by rto_backoff per retry (jittered by up to rto_jitter,
  /// capped at max(rto_max, 2 * initial)).
  des::Duration rto_initial = 20 * des::kMicrosecond;
  des::Duration rto_max = 2 * des::kMillisecond;
  double rto_backoff = 2.0;
  double rto_jitter = 0.25;
  int rtt_factor = 4;

  /// Retry budget: after this many retransmissions the message is dropped
  /// and the failure surfaces through the error callback as ErrTimeout.
  int max_retries = 12;

  std::uint64_t seed = 0xAC4;     ///< jitter rng seed (per-node derived)
  std::uint64_t ack_bytes = 32;   ///< wire size of an ACK/NACK frame
};

/// Failure-detector configuration (ce/failure_detector).  Disabled by
/// default: no heartbeats, no detector shims, wire path unchanged.
struct FdConfig {
  bool enabled = false;

  /// Heartbeat period per (node, peer) direction.  A heartbeat to a peer
  /// is skipped when any frame was sent to that peer within the period
  /// (piggybacking on existing traffic).
  des::Duration heartbeat_interval = 5 * des::kMillisecond;

  /// Suspicion threshold: a peer becomes Suspect when nothing has been
  /// heard from it for max(min_timeout, phi_factor * mean observed
  /// inter-arrival gap) — a cheap phi-accrual-style adaptive bound.
  des::Duration min_timeout = 50 * des::kMillisecond;
  double phi_factor = 6.0;

  /// Confirmation: a Suspect peer is declared Dead after this additional
  /// silence.  Death is sticky until the peer's NIC provably restarts.
  des::Duration confirm_timeout = 25 * des::kMillisecond;

  std::uint64_t heartbeat_bytes = 16;  ///< wire size of a heartbeat frame
};

/// Active-message callback: invoked when a message with the registered tag
/// arrives (or, for r_tag, when a put completes at the target).
/// `msg`/`size` is the message body; `src` the sending rank; `cb_data` the
/// pointer registered with the tag.
using AmCallback = std::function<void(CommEngine& ce, Tag tag, const void* msg,
                                      std::size_t size, int src,
                                      void* cb_data)>;

/// Registered memory handle.  Trivially copyable so a registration can be
/// shipped inside an ACTIVATE message and used as the remote side of a
/// put.  `base == nullptr` denotes a virtual region (paper-scale runs move
/// sized-but-empty payloads).
struct MemReg {
  net::NodeId node = -1;
  void* base = nullptr;
  std::size_t size = 0;
};

/// Origin-side completion callback for put().
using OnesidedCallback =
    std::function<void(CommEngine& ce, const MemReg& lreg,
                       std::ptrdiff_t ldispl, const MemReg& rreg,
                       std::ptrdiff_t rdispl, std::size_t size, int remote,
                       void* cb_data)>;

struct CeConfig {
  // --- MPI backend (§4.2) ----------------------------------------------
  int persistent_recvs_per_tag = 5;   ///< MPI_Recv_init instances per AM tag
  int max_concurrent_transfers = 30;  ///< actively polled data transfers

  // --- LCI backend (§5.3) ----------------------------------------------
  bool progress_thread = true;        ///< dedicate a progress thread
  /// Put data at or below this size rides inside the handshake message
  /// (the eager-data optimization of §5.3.3); 0 disables it.
  std::size_t eager_put_max = 4096;
  /// §7 future work: use LCI's native one-sided put (no handshake, no
  /// rendezvous round-trip) to implement the PaRSEC put interface
  /// directly.  Off by default — the paper evaluates the emulated path.
  bool native_put = false;
  int am_fairness_batch = 5;          ///< AM handles per fairness round (§5.3.4)

  // --- shared -------------------------------------------------------------
  std::size_t max_am_size = 12 * 1024;  ///< AM payload limit (LCI ~12 KiB)
  des::Duration dispatch_cost = 40;     ///< per callback-handle dispatch
  des::Duration loop_cost = 25;         ///< per progress-loop iteration

  /// End-to-end reliability sublayer, shared by both backends (installed
  /// below mmpi/mlci by CommWorld when enabled).
  ReliableConfig reliable;

  /// Fail-stop failure detector (installed above the reliability shim by
  /// CommWorld when enabled).
  FdConfig fd;
};

/// Counters exposed by every backend (for tests and instrumentation).
struct CeStats {
  std::uint64_t ams_sent = 0;
  std::uint64_t ams_delivered = 0;
  std::uint64_t puts_started = 0;
  std::uint64_t puts_completed_local = 0;
  std::uint64_t puts_completed_remote = 0;
  std::uint64_t puts_deferred = 0;     ///< MPI: sends hitting the 30-cap
  std::uint64_t recvs_dynamic = 0;     ///< MPI: dynamic (unpromoted) recvs
  std::uint64_t retries_delegated = 0; ///< LCI: recvd retries delegated
  std::uint64_t eager_puts = 0;        ///< LCI: puts carried in handshakes
  std::uint64_t peer_failed_sends = 0; ///< sends released by peer_failed()
  std::uint64_t peer_failed_recvs = 0; ///< recvs dropped by peer_failed()
};

/// Per-node communication engine (Listing 1).
class CommEngine {
 public:
  virtual ~CommEngine() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Registers an active-message callback under `tag`.  `max_len` bounds
  /// the message body (receive buffers are sized accordingly).  Fails with
  /// ErrTagDuplicate on re-registration and ErrTooLarge when max_len
  /// exceeds the backend AM limit.
  virtual Status tag_reg(Tag tag, AmCallback cb, void* cb_data,
                         std::size_t max_len) = 0;

  /// Registers memory for one-sided transfers.
  virtual MemReg mem_reg(void* mem, std::size_t size) = 0;

  /// Sends an active message (body <= registered max_len and the backend
  /// AM limit).  Returns Status::Ok on success; ErrTagUnregistered /
  /// ErrTooLarge on misuse (nothing is sent).  The body is copied; the
  /// caller's buffer is immediately reusable.
  virtual Status send_am(Tag tag, int remote, const void* msg,
                         std::size_t size) = 0;

  /// One-sided put with completion on both ends (Listing 1).  Transfers
  /// `size` bytes from lreg+ldispl into rreg+rdispl on `remote`.  At local
  /// completion `l_cb(l_cb_data)` runs at the origin; at remote completion
  /// the AM callback registered under `r_tag` runs at the target with the
  /// r_cb_data bytes as its message body.
  virtual int put(const MemReg& lreg, std::ptrdiff_t ldispl,
                  const MemReg& rreg, std::ptrdiff_t rdispl, std::size_t size,
                  int remote, OnesidedCallback l_cb, void* l_cb_data,
                  Tag r_tag, const void* r_cb_data,
                  std::size_t r_cb_data_size) = 0;

  /// Makes communication progress; executes completion callbacks.  Called
  /// from the runtime's communication thread.  Returns the number of
  /// completions processed.
  virtual int progress() = 0;

  /// True when the engine has nothing in flight and nothing queued (used
  /// by drivers to detect quiescence).
  virtual bool idle() const = 0;

  /// Hook invoked when new work becomes available for progress(); the
  /// runtime's communication thread parks on it.
  virtual void set_wake_callback(std::function<void()> fn) = 0;

  virtual const CeStats& stats() const = 0;

  /// Attaches a metrics recorder for latency histograms ("ce.put_local_ns",
  /// "ce.put_remote_ns", queue-wait metrics).  Null detaches; the engine
  /// does not own the recorder.  Default: metrics are dropped.
  virtual void set_recorder(obs::Recorder* /*rec*/) {}

  /// Notification that `remote` was confirmed dead by the failure
  /// detector.  Backends cancel or fast-complete transfers wedged on the
  /// dead peer (e.g. rendezvous handshakes that will never get a CTS) so
  /// progress engines and concurrency caps drain instead of stalling
  /// forever.  Default: nothing to release.
  virtual void peer_failed(int /*remote*/) {}
};

}  // namespace ce
