#include "ce/world.hpp"

#include "ce/lci_backend.hpp"
#include "ce/mpi_backend.hpp"

namespace ce {

CommWorld::CommWorld(net::Fabric& fabric, BackendKind kind, CeConfig ce_cfg,
                     mmpi::Config mpi_cfg, mlci::Config lci_cfg)
    : kind_(kind), fabric_(fabric) {
  const int n = fabric.num_nodes();
  engines_.reserve(static_cast<std::size_t>(n));
  if (kind == BackendKind::Mpi) {
    // PaRSEC sets mpi_assert_allow_overtaking (§4.2.2): it never relies on
    // MPI message ordering.
    mpi_cfg.allow_overtaking = true;
    mpi_ = std::make_unique<mmpi::Mpi>(fabric, mpi_cfg);
    for (int r = 0; r < n; ++r) {
      engines_.push_back(
          std::make_unique<MpiBackend>(mpi_->rank(r), ce_cfg));
    }
  } else {
    lci_ = std::make_unique<mlci::Lci>(fabric, lci_cfg);
    for (int r = 0; r < n; ++r) {
      engines_.push_back(std::make_unique<LciBackend>(
          lci_->device(r), fabric.engine(), ce_cfg));
    }
  }
  if (ce_cfg.reliable.enabled) {
    reliable_ = std::make_unique<ReliableDomain>(fabric, ce_cfg.reliable);
    reliable_->set_recorder(&recorder_);
  }
  if (ce_cfg.fd.enabled) {
    // Constructed after reliable_ so the detector shim wraps the
    // reliability shim and sees every frame first.
    fd_ = std::make_unique<FailureDetectorDomain>(fabric, ce_cfg.fd);
    fd_->set_recorder(&recorder_);
    // Dead verdict: stop retransmitting to the corpse and release
    // backend transfers wedged on it.  Revival re-opens the channels.
    fd_->subscribe([this](int /*node*/, int peer, PeerState state) {
      if (state == PeerState::Dead) {
        peer_failed(peer);
      } else if (state == PeerState::Alive && reliable_ != nullptr) {
        reliable_->peer_alive(peer);
      }
    });
    if (reliable_ != nullptr) {
      reliable_->set_suspicion_hook([this](net::NodeId src, net::NodeId dst) {
        fd_->suspect_hint(src, dst);
      });
    }
  }
  fabric.set_recorder(&recorder_);
  for (auto& e : engines_) e->set_recorder(&recorder_);
}

CommWorld::~CommWorld() {
  // The fabric outlives this world; don't leave it a dangling recorder.
  if (fabric_.recorder() == &recorder_) fabric_.set_recorder(nullptr);
}

}  // namespace ce
