#include "ce/lci_backend.hpp"

#include <cassert>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "ce/put_protocol.hpp"
#include "obs/stats.hpp"

namespace ce {
namespace {

/// Reserved wire tag for put handshakes: the device AM handler recognizes
/// it structurally and bypasses the AM hash-table lookup (§5.3.3).
constexpr Tag kLciHandshakeTag = 0xFFFF'FFFF'FFFF'0002ULL;
constexpr Tag kDataTagBase = 0x8000'0000'0000'0000ULL;

}  // namespace

LciBackend::LciBackend(mlci::Device& device, des::Engine& engine,
                       CeConfig cfg)
    : dev_(device), eng_(engine), cfg_(cfg),
      retry_rng_(des::derive_seed(0xB0FFULL,
                                  static_cast<std::uint64_t>(device.rank()))),
      next_data_tag_(kDataTagBase) {
  dev_.set_am_handler(
      [this](mlci::Request&& req) { on_am_arrival(std::move(req)); });
  dev_.set_put_handler([this](mlci::Request&& req) {
    // Progress-thread context: remote completion of a native put (§7
    // future work).  The immediate data is a PutHandshake header plus
    // the remote-callback bytes.
    assert(req.payload != nullptr);
    const auto v =
        HandshakeView::parse(req.payload->data(), req.payload->size());
    DataHandle done;
    done.kind = DataHandle::Kind::RemoteDone;
    done.r_tag = v.hdr.r_tag;
    if (v.hdr.r_cb_size > 0) {
      done.r_cb_data.assign(v.r_cb_data, v.r_cb_data + v.hdr.r_cb_size);
    }
    done.origin = req.peer;
    done.flow_id = put_flow_id(req.peer, v.hdr.data_tag);
    done.size = req.size;
    done.started = eng_.now();
    done.queued = eng_.now();
    data_fifo_.push_back(std::move(done));
    wake_comm_thread();
  });

  if (cfg_.progress_thread) {
    // §5.3.1: a thread dedicated to LCI_progress, decoupling progress on
    // existing communications from callback execution.
    progress_thread_ = std::make_unique<des::SimThread>(
        eng_, "lci-progress-" + std::to_string(dev_.rank()));
    progress_loop_ = std::make_unique<des::PollLoop>(
        *progress_thread_, cfg_.loop_cost, [this]() {
          const int n = mlci::progress(dev_);
          // Progress may have freed the resources a Retry-parked
          // operation is waiting for; those retries live on the
          // communication thread (§5.3.3), so lift the backoff gate and
          // hand it the baton.
          if (n > 0 && has_retries()) {
            clear_retry_pacing();
            wake_comm_thread();
          }
          return n > 0;
        });
    dev_.set_event_notifier([this]() { progress_loop_->wake(); });
    progress_loop_->start();
  } else {
    // Ablation: no progress thread; the communication thread must drive
    // LCI progress from within progress().
    dev_.set_event_notifier([this]() { wake_comm_thread(); });
  }
}

LciBackend::~LciBackend() {
  if (progress_loop_) progress_loop_->stop();
  if (retry_timer_ != des::kInvalidEvent) {
    eng_.cancel(retry_timer_);
    retry_timer_ = des::kInvalidEvent;
  }
  dev_.set_event_notifier(nullptr);
  dev_.set_am_handler(nullptr);
}

int LciBackend::size() const { return dev_.num_ranks(); }

void LciBackend::set_wake_callback(std::function<void()> fn) {
  wake_ = std::move(fn);
}

void LciBackend::wake_comm_thread() {
  if (wake_) wake_();
}

Status LciBackend::tag_reg(Tag tag, AmCallback cb, void* cb_data,
                           std::size_t max_len) {
  // §5.3.2: registration is a hash-table insert; no receives are posted
  // and no buffers are pre-committed.
  if (tags_.contains(tag)) return Status::ErrTagDuplicate;
  if (max_len > cfg_.max_am_size) return Status::ErrTooLarge;
  tags_.emplace(tag, AmTagInfo{std::move(cb), cb_data, max_len});
  return Status::Ok;
}

MemReg LciBackend::mem_reg(void* mem, std::size_t size) {
  return MemReg{rank(), mem, size};
}

mlci::Status LciBackend::send_wire_am(int remote, Tag wire_tag,
                                      const void* body, std::size_t size) {
  const auto& lcfg = dev_.config();
  if (size <= lcfg.immediate_size) {
    return dev_.sends(remote, wire_tag, body, size);
  }
  return dev_.sendm(remote, wire_tag, body, size);
}

Status LciBackend::send_am(Tag tag, int remote, const void* msg,
                           std::size_t size) {
  const auto it = tags_.find(tag);
  if (it == tags_.end()) return Status::ErrTagUnregistered;
  if (size > it->second.max_len) return Status::ErrTooLarge;
  const mlci::Status st = send_wire_am(remote, tag, msg, size);
  if (st == mlci::Status::Invalid) return Status::ErrTooLarge;
  ++stats_.ams_sent;
  if (st == mlci::Status::Retry) {
    // Back-pressure: park the message; the communication thread retries.
    PendingSend ps;
    ps.remote = remote;
    ps.wire_tag = tag;
    const auto* b = static_cast<const std::byte*>(msg);
    ps.body.assign(b, b + size);
    retry_sends_.push_back(std::move(ps));
    wake_comm_thread();
  }
  return Status::Ok;
}

// ---------------------------------------------------------------------------
// put

int LciBackend::put(const MemReg& lreg, std::ptrdiff_t ldispl,
                    const MemReg& rreg, std::ptrdiff_t rdispl,
                    std::size_t size, int remote, OnesidedCallback l_cb,
                    void* l_cb_data, Tag r_tag, const void* r_cb_data,
                    std::size_t r_cb_data_size) {
  ++stats_.puts_started;
  const des::Time put_start = eng_.now();
  const std::uint64_t data_tag = next_data_tag_++;
  des::emit_flow(eng_, "put", put_flow_id(rank(), data_tag),
                 /*begin=*/true);
  const void* src = nullptr;
  if (lreg.base != nullptr) {
    src = static_cast<const std::byte*>(lreg.base) + ldispl;
  }

  PutHandshake h;
  h.rbase = reinterpret_cast<std::uint64_t>(rreg.base);
  h.rdispl = rdispl;
  h.size = size;
  h.r_tag = r_tag;
  h.data_tag = data_tag;
  h.r_cb_size = static_cast<std::uint32_t>(r_cb_data_size);

  if (cfg_.native_put) {
    // §7 future work: a single one-sided message — no handshake AM, no
    // rendezvous round-trip, remote completion via the put handler.
    PendingDataSend ds;
    ds.native = true;
    ds.remote = remote;
    ds.data_tag = data_tag;
    ds.src = src;
    ds.size = size;
    ds.remote_base = reinterpret_cast<std::uint64_t>(
        rreg.base == nullptr
            ? nullptr
            : static_cast<std::byte*>(rreg.base) + rdispl);
    ds.imm = pack_handshake(h, r_cb_data, nullptr, 0);
    ds.local_done.kind = DataHandle::Kind::LocalDone;
    ds.local_done.l_cb = std::move(l_cb);
    ds.local_done.l_cb_data = l_cb_data;
    ds.local_done.lreg = lreg;
    ds.local_done.rreg = rreg;
    ds.local_done.ldispl = ldispl;
    ds.local_done.rdispl = rdispl;
    ds.local_done.size = size;
    ds.local_done.remote = remote;
    ds.local_done.started = put_start;
    if (!start_data_send(ds)) {
      retry_data_sends_.push_back(std::move(ds));
      wake_comm_thread();
    }
    return 0;
  }

  const auto& lcfg = dev_.config();
  const bool eager =
      cfg_.eager_put_max > 0 && size <= cfg_.eager_put_max &&
      sizeof(PutHandshake) + r_cb_data_size + size <= lcfg.buffered_size;

  if (eager) {
    // §5.3.3: small data rides inside the handshake; no Direct transfer,
    // and the local completion callback runs immediately.
    h.flags |= kHandshakeEagerData;
    const auto body = pack_handshake(h, r_cb_data, src, size);
    if (send_wire_am(remote, kLciHandshakeTag, body.data(), body.size()) !=
        mlci::Status::Ok) {
      PendingSend ps;
      ps.remote = remote;
      ps.wire_tag = kLciHandshakeTag;
      ps.body = body;
      retry_sends_.push_back(std::move(ps));
      wake_comm_thread();
    }
    ++stats_.eager_puts;
    ++stats_.puts_completed_local;
    if (rec_ != nullptr) {
      // Eager local completion is immediate; the histogram still records
      // it so put_local distributions reflect the eager fraction.
      rec_->histogram("ce.put_local_ns")
          .add(static_cast<double>(eng_.now() - put_start));
    }
    if (l_cb) {
      l_cb(*this, lreg, ldispl, rreg, rdispl, size, remote, l_cb_data);
    }
    return 0;
  }

  const auto body = pack_handshake(h, r_cb_data, nullptr, 0);
  if (send_wire_am(remote, kLciHandshakeTag, body.data(), body.size()) !=
      mlci::Status::Ok) {
    PendingSend ps;
    ps.remote = remote;
    ps.wire_tag = kLciHandshakeTag;
    ps.body = body;
    retry_sends_.push_back(std::move(ps));
    wake_comm_thread();
  }

  PendingDataSend ds;
  ds.remote = remote;
  ds.data_tag = data_tag;
  ds.src = src;
  ds.size = size;
  ds.local_done.kind = DataHandle::Kind::LocalDone;
  ds.local_done.l_cb = std::move(l_cb);
  ds.local_done.l_cb_data = l_cb_data;
  ds.local_done.lreg = lreg;
  ds.local_done.rreg = rreg;
  ds.local_done.ldispl = ldispl;
  ds.local_done.rdispl = rdispl;
  ds.local_done.size = size;
  ds.local_done.remote = remote;
  ds.local_done.started = put_start;
  if (!start_data_send(ds)) {
    retry_data_sends_.push_back(std::move(ds));
    wake_comm_thread();
  }
  return 0;
}

bool LciBackend::start_data_send(const PendingDataSend& ps) {
  if (ps.native) {
    const mlci::Status st = dev_.putd(
        ps.remote, ps.data_tag, ps.src, ps.size, ps.remote_base,
        mlci::Comp::handler(
            [this, h = ps.local_done](mlci::Request&&) mutable {
              --outstanding_direct_;
              h.queued = eng_.now();
              data_fifo_.push_back(std::move(h));
              wake_comm_thread();
            }),
        ps.imm.data(), ps.imm.size());
    if (st != mlci::Status::Ok) return false;
    ++outstanding_direct_;
    return true;
  }
  const mlci::Status st = dev_.sendd(
      ps.remote, ps.data_tag, ps.src, ps.size,
      mlci::Comp::handler([this, h = ps.local_done](mlci::Request&&) mutable {
        // Progress-thread context: fill the callback handle and push it to
        // the bulk-data FIFO for the communication thread (§5.3.3).
        --outstanding_direct_;
        h.queued = eng_.now();
        data_fifo_.push_back(std::move(h));
        wake_comm_thread();
      }));
  if (st != mlci::Status::Ok) return false;
  ++outstanding_direct_;
  return true;
}

// ---------------------------------------------------------------------------
// Progress-thread-side handlers

void LciBackend::on_am_arrival(mlci::Request&& req) {
  if (req.tag == kLciHandshakeTag) {
    handle_handshake(std::move(req));
    return;
  }
  // Ordinary AM: allocate a callback handle, push to the shared FIFO for
  // the communication thread (§5.3.2).
  AmHandle h;
  h.tag = req.tag;
  h.src = req.peer;
  h.payload = std::move(req.payload);
  h.size = req.size;
  h.arrived = eng_.now();
  am_fifo_.push_back(std::move(h));
  wake_comm_thread();
}

void LciBackend::handle_handshake(mlci::Request&& req) {
  assert(req.payload != nullptr && "handshake must carry a body");
  const auto v = HandshakeView::parse(req.payload->data(),
                                      req.payload->size());
  DataHandle done;
  done.kind = DataHandle::Kind::RemoteDone;
  done.r_tag = v.hdr.r_tag;
  if (v.hdr.r_cb_size > 0) {
    done.r_cb_data.assign(v.r_cb_data, v.r_cb_data + v.hdr.r_cb_size);
  }
  done.origin = req.peer;
  done.flow_id = put_flow_id(req.peer, v.hdr.data_tag);
  done.size = static_cast<std::size_t>(v.hdr.size);
  done.started = eng_.now();

  std::byte* dst = nullptr;
  if (v.hdr.rbase != 0) {
    dst = reinterpret_cast<std::byte*>(v.hdr.rbase) + v.hdr.rdispl;
  }

  if ((v.hdr.flags & kHandshakeEagerData) != 0) {
    if (dst != nullptr && v.eager_data != nullptr) {
      std::memcpy(dst, v.eager_data, static_cast<std::size_t>(v.hdr.size));
    }
    done.queued = eng_.now();
    data_fifo_.push_back(std::move(done));
    wake_comm_thread();
    return;
  }

  PendingRecv pr;
  pr.src = req.peer;
  pr.data_tag = v.hdr.data_tag;
  pr.dst = dst;
  pr.size = static_cast<std::size_t>(v.hdr.size);
  pr.remote_done = std::move(done);
  if (!post_data_recv(pr)) {
    // §5.3.3: cannot retry on the progress thread (recursion hazard);
    // delegate the receive to the communication thread.
    retry_recvs_.push_back(std::move(pr));
    ++stats_.retries_delegated;
    wake_comm_thread();
  }
}

bool LciBackend::post_data_recv(const PendingRecv& pr) {
  const mlci::Status st = dev_.recvd(
      pr.src, pr.data_tag, pr.dst, pr.size,
      mlci::Comp::handler(
          [this, h = pr.remote_done](mlci::Request&&) mutable {
            h.queued = eng_.now();
            data_fifo_.push_back(std::move(h));
            wake_comm_thread();
          }));
  return st == mlci::Status::Ok;
}

// ---------------------------------------------------------------------------
// Communication-thread side

void LciBackend::dispatch_data_handle(DataHandle&& h) {
  des::charge_current(cfg_.dispatch_cost);
  if (rec_ != nullptr) {
    rec_->histogram("ce.data_queue_ns")
        .add(static_cast<double>(eng_.now() - h.queued));
  }
  if (h.kind == DataHandle::Kind::LocalDone) {
    ++stats_.puts_completed_local;
    if (rec_ != nullptr) {
      rec_->histogram("ce.put_local_ns")
          .add(static_cast<double>(eng_.now() - h.started));
    }
    if (h.l_cb) {
      std::optional<des::ChargeSpan> span;
      if (eng_.trace_sink() != nullptr) span.emplace(eng_, "put.l_cb");
      h.l_cb(*this, h.lreg, h.ldispl, h.rreg, h.rdispl, h.size, h.remote,
             h.l_cb_data);
    }
  } else {
    ++stats_.puts_completed_remote;
    if (rec_ != nullptr) {
      rec_->histogram("ce.put_remote_ns")
          .add(static_cast<double>(eng_.now() - h.started));
    }
    const auto it = tags_.find(h.r_tag);
    assert(it != tags_.end() && "put r_tag not registered");
    std::optional<des::ChargeSpan> span;
    if (eng_.trace_sink() != nullptr) span.emplace(eng_, "put.r_cb");
    des::emit_flow(eng_, "put", h.flow_id, /*begin=*/false);
    it->second.cb(*this, h.r_tag, h.r_cb_data.data(), h.r_cb_data.size(),
                  h.origin, it->second.cb_data);
  }
}

int LciBackend::drain_retries() {
  int resumed = 0;
  while (!retry_sends_.empty()) {
    PendingSend& ps = retry_sends_.front();
    const mlci::Status st = send_wire_am(ps.remote, ps.wire_tag,
                                         ps.body.data(), ps.body.size());
    if (st != mlci::Status::Ok) {
      assert(st == mlci::Status::Retry && "parked send turned invalid");
      break;  // still no resources
    }
    retry_sends_.pop_front();
    ++resumed;
  }
  // Strict FIFO: attempt the front, pop only on success.  Rotating the
  // queue on failure would let the two sides of a rendezvous work on
  // mismatched subsets and livelock under tight resource limits.
  while (!retry_recvs_.empty()) {
    if (!post_data_recv(retry_recvs_.front())) break;
    retry_recvs_.pop_front();
    ++resumed;
  }
  while (!retry_data_sends_.empty()) {
    if (!start_data_send(retry_data_sends_.front())) break;
    retry_data_sends_.pop_front();
    ++resumed;
  }
  if (has_retries()) {
    // The front is still blocked: pace the next attempt instead of
    // retrying on every progress() pass.
    retry_next_at_ = eng_.now() + retry_backoff_.next(retry_rng_);
    arm_retry_timer();
  } else {
    clear_retry_pacing();
  }
  return resumed;
}

void LciBackend::arm_retry_timer() {
  // Push a still-pending timer out in place; only a fired/cleared timer
  // needs a fresh event.
  if (retry_timer_ != des::kInvalidEvent &&
      eng_.reschedule(retry_timer_, retry_next_at_)) {
    return;
  }
  retry_timer_ = eng_.schedule_at(retry_next_at_, [this]() {
    retry_timer_ = des::kInvalidEvent;
    wake_comm_thread();
  });
}

void LciBackend::clear_retry_pacing() {
  if (retry_timer_ != des::kInvalidEvent) {
    eng_.cancel(retry_timer_);
    retry_timer_ = des::kInvalidEvent;
  }
  retry_next_at_ = 0;
  retry_backoff_.reset();
}

int LciBackend::progress() {
  int total = 0;
  for (;;) {
    des::charge_current(cfg_.loop_cost);
    int processed = 0;
    if (has_retries() && eng_.now() >= retry_next_at_) {
      processed += drain_retries();
    }
    if (!cfg_.progress_thread) {
      // Ablation mode: the communication thread doubles as the progress
      // engine, like the MPI backend's coupled design.
      const int n = mlci::progress(dev_);
      // Completions may free the resources the parked front is waiting
      // on: lift the pacing gate so the next pass retries immediately.
      if (n > 0 && has_retries()) clear_retry_pacing();
      processed += n;
    }
    // §5.3.4: up to five AM completion handles, then all available bulk
    // handles; loop until nothing completes.
    for (int i = 0; i < cfg_.am_fairness_batch && !am_fifo_.empty(); ++i) {
      AmHandle h = std::move(am_fifo_.front());
      am_fifo_.pop_front();
      des::charge_current(cfg_.dispatch_cost);
      const auto it = tags_.find(h.tag);
      assert(it != tags_.end() && "AM for unregistered tag");
      ++stats_.ams_delivered;
      if (rec_ != nullptr) {
        rec_->histogram("ce.am_queue_ns")
            .add(static_cast<double>(eng_.now() - h.arrived));
      }
      const void* body = h.payload ? h.payload->data() : nullptr;
      std::optional<des::ChargeSpan> span;
      if (eng_.trace_sink() != nullptr) {
        char label[32];
        std::snprintf(label, sizeof label, "am 0x%llx",
                      static_cast<unsigned long long>(h.tag));
        span.emplace(eng_, label);
      }
      it->second.cb(*this, h.tag, body, h.size, h.src, it->second.cb_data);
      ++processed;
    }
    while (!data_fifo_.empty()) {
      DataHandle h = std::move(data_fifo_.front());
      data_fifo_.pop_front();
      dispatch_data_handle(std::move(h));
      ++processed;
    }
    total += processed;
    if (processed == 0) break;
  }
  return total;
}

void LciBackend::peer_failed(int remote) {
  // Retry-parked work aimed at the corpse would otherwise block the FIFO
  // head forever (strict-FIFO drain) and starve live peers.  Idempotent.
  std::size_t sends = 0;
  std::size_t recvs = 0;
  std::erase_if(retry_sends_, [&](const PendingSend& ps) {
    return ps.remote == remote;
  });
  std::erase_if(retry_recvs_, [&](const PendingRecv& pr) {
    if (pr.src != remote) return false;
    ++recvs;  // dropped without completing: the data never arrived
    return true;
  });
  for (auto it = retry_data_sends_.begin(); it != retry_data_sends_.end();) {
    if (it->remote != remote) {
      ++it;
      continue;
    }
    // Local-complete semantics: the origin buffer is reusable, so the
    // local callback still fires (through the bulk FIFO, like any other
    // local completion).  No slot was held — start_data_send failed.
    DataHandle h = std::move(it->local_done);
    h.queued = eng_.now();
    data_fifo_.push_back(std::move(h));
    ++sends;
    it = retry_data_sends_.erase(it);
  }
  if (!has_retries()) clear_retry_pacing();

  // Device-level: direct sends awaiting CTS complete-as-cancelled (their
  // Comp handlers run inside the next progress pass), wedged receives
  // and queued RTS from the corpse are dropped.
  const mlci::Device::PurgeResult purged = dev_.peer_failed(remote);
  sends += purged.sends;
  recvs += purged.recvs;
  stats_.peer_failed_sends += sends;
  stats_.peer_failed_recvs += recvs;
  if (rec_ != nullptr && sends + recvs > 0) {
    rec_->counter("ce.peer_failed_cancels").add(sends + recvs);
  }
  if (sends + recvs > 0) wake_comm_thread();
}

bool LciBackend::idle() const {
  return am_fifo_.empty() && data_fifo_.empty() && retry_sends_.empty() &&
         retry_recvs_.empty() && retry_data_sends_.empty() &&
         outstanding_direct_ == 0 && dev_.pending_hw_events() == 0;
}

}  // namespace ce
