#include "ce/reliable.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdio>
#include <cstring>

#include "des/trace_sink.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/stats.hpp"

namespace ce {
namespace {

/// WireHeader::kind values for kProtoRel control frames.
enum : std::uint16_t { kRelAck = 1, kRelNack = 2 };

const std::array<std::uint32_t, 256>& crc32c_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0x82F63B78u ^ (c >> 1) : c >> 1;  // reflected poly
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t n, std::uint32_t seed) {
  const auto& table = crc32c_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t message_crc(const net::Message& m) {
  // Hash the fields individually (not the struct bytes) so padding never
  // participates.  rel_crc itself is excluded, rel_seq is covered.
  const std::uint64_t fields[] = {
      static_cast<std::uint64_t>(m.src),
      static_cast<std::uint64_t>(m.dst),
      m.wire_bytes,
      static_cast<std::uint64_t>(m.hdr.proto) << 16 | m.hdr.kind,
      static_cast<std::uint64_t>(m.hdr.flags),
      m.hdr.tag,
      m.hdr.seq,
      m.hdr.size,
      m.hdr.imm[0],
      m.hdr.imm[1],
      m.hdr.imm[2],
      m.hdr.imm[3],
      m.hdr.rel_seq,
  };
  std::uint32_t c = crc32c(fields, sizeof fields);
  if (m.payload != nullptr && !m.payload->empty()) {
    c = crc32c(m.payload->data(), m.payload->size(), c);
  }
  return c;
}

des::Duration Backoff::next(des::Rng& rng) {
  double d = static_cast<double>(base);
  for (int i = 0; i < attempt_; ++i) d *= factor;
  d = std::min(d, static_cast<double>(cap));
  ++attempt_;
  if (jitter > 0) d *= rng.uniform(1.0, 1.0 + jitter);
  auto delay = static_cast<des::Duration>(d);
  return delay > 0 ? delay : 1;
}

// ---------------------------------------------------------------------------
// ReliableChannel

ReliableChannel::ReliableChannel(ReliableDomain& domain, net::Fabric& fabric,
                                 net::NodeId node)
    : domain_(domain), fabric_(fabric), eng_(fabric.engine()), node_(node),
      rng_(des::derive_seed(domain.cfg_.seed,
                            static_cast<std::uint64_t>(node))) {
  const auto n = static_cast<std::size_t>(fabric.num_nodes());
  next_seq_.resize(n, 0);
  unacked_.resize(n);
  recv_.resize(n);
  peer_dead_.resize(n, false);
  err_logged_.resize(n, false);
}

ReliableChannel::~ReliableChannel() { cancel_timers(); }

std::uint32_t ReliableChannel::slab_acquire() {
  std::uint32_t slot = slab_free_;
  if (slot != kNoSlot) {
    slab_free_ = slab_next_free_[slot];
    slab_hot_[slot] = UnackedHot{};
  } else {
    slot = static_cast<std::uint32_t>(slab_hot_.size());
    slab_hot_.emplace_back();
    slab_msg_.emplace_back();
    slab_next_free_.push_back(kNoSlot);
  }
  return slot;
}

void ReliableChannel::slab_release(std::uint32_t slot) {
  slab_msg_[slot] = net::Message{};  // drop the payload reference now
  slab_next_free_[slot] = slab_free_;
  slab_free_ = slot;
}

std::size_t ReliableChannel::window_find(const std::vector<SeqSlot>& w,
                                         std::uint64_t seq) {
  const auto it = std::lower_bound(
      w.begin(), w.end(), seq,
      [](const SeqSlot& e, std::uint64_t s) { return e.seq < s; });
  if (it == w.end() || it->seq != seq) return SIZE_MAX;
  return static_cast<std::size_t>(it - w.begin());
}

void ReliableChannel::cancel_timers() {
  for (auto& peer : unacked_) {
    for (const SeqSlot& e : peer) {
      UnackedHot& u = slab_hot_[e.slot];
      if (u.timer.ev != des::kInvalidEvent) {
        eng_.cancel(u.timer);
        u.timer = {};
      }
    }
  }
}

std::size_t ReliableChannel::unacked() const {
  std::size_t n = 0;
  for (const auto& peer : unacked_) n += peer.size();
  return n;
}

void ReliableChannel::peer_dead(net::NodeId peer) {
  const auto i = static_cast<std::size_t>(peer);
  if (peer_dead_[i]) return;
  peer_dead_[i] = true;
  // Cancel every outstanding RTO timer to the dead peer and fail the
  // messages recoverably.  Collect first: the error callback may send
  // (recovery traffic) and mutate unacked_.
  std::vector<std::uint64_t> seqs;
  seqs.reserve(unacked_[i].size());
  for (const SeqSlot& e : unacked_[i]) {
    UnackedHot& u = slab_hot_[e.slot];
    if (u.timer.ev != des::kInvalidEvent) eng_.cancel(u.timer);
    seqs.push_back(e.seq);
    slab_release(e.slot);
  }
  unacked_[i].clear();
  domain_.stats_.peer_dead_fails += seqs.size();
  if (domain_.rec_ != nullptr && !seqs.empty()) {
    domain_.rec_->counter("ce.rel.peer_dead_fails").add(seqs.size());
  }
  if (domain_.on_error_) {
    for (const std::uint64_t seq : seqs) {
      domain_.on_error_(node_, peer, seq, Status::ErrPeerDead);
    }
  }
}

void ReliableChannel::peer_alive(net::NodeId peer) {
  peer_dead_[static_cast<std::size_t>(peer)] = false;
}

void ReliableChannel::shim_send(net::Message&& m,
                                std::function<void()> on_sent) {
  net::Nic& nic = fabric_.nic(node_);
  if (m.dst == node_ || m.hdr.proto == net::kProtoRel) {
    // Loopback is a memory copy (never faulted) and control frames manage
    // themselves: neither is tracked.
    nic.raw_send(std::move(m), std::move(on_sent));
    return;
  }

  const auto peer = static_cast<std::size_t>(m.dst);
  if (peer_dead_[peer]) {
    // Fast-fail: the destination is confirmed dead, so transmitting (and
    // then burning the whole retry budget) is pure waste.  The local
    // completion still fires — the send buffer is "reusable" exactly as
    // if the frame had left the NIC — and the failure surfaces
    // immediately through the error callback.
    ++domain_.stats_.peer_dead_fails;
    if (domain_.rec_ != nullptr) {
      domain_.rec_->counter("ce.rel.peer_dead_fails").add();
    }
    const net::NodeId dst = m.dst;
    if (on_sent) {
      eng_.schedule_on(net::Fabric::shard_of(node_), eng_.now(),
                       std::move(on_sent));
    }
    if (domain_.on_error_) {
      domain_.on_error_(node_, dst, 0, Status::ErrPeerDead);
    }
    return;
  }
  const std::uint64_t seq = ++next_seq_[peer];
  m.hdr.rel_seq = seq;
  m.hdr.rel_crc = message_crc(m);

  // Size-aware initial timeout: the message may sit behind everything
  // already queued on our egress pipe, then needs a full round trip
  // (data out, ACK back) before an ACK can possibly arrive.
  const ReliableConfig& cfg = domain_.cfg_;
  const des::Time now = eng_.now();
  const des::Duration queue_wait =
      std::max<des::Duration>(0, nic.egress_free_at() - now);
  const des::Duration round_trip =
      fabric_.serialization_time(m.wire_bytes) +
      fabric_.serialization_time(cfg.ack_bytes) +
      2 * fabric_.latency(node_, m.dst);
  const std::uint32_t slot = slab_acquire();
  UnackedHot& u = slab_hot_[slot];
  u.first_sent = now;
  u.rto = cfg.rto_initial + cfg.rtt_factor * round_trip + queue_wait;
  u.rto_cap = std::max(cfg.rto_max, 2 * u.rto);
  const net::NodeId dst = m.dst;
  slab_msg_[slot] = std::move(m);
  // seqs are handed out monotonically per peer, so the window stays
  // sorted by construction.
  unacked_[peer].push_back(SeqSlot{seq, slot});

  ++domain_.stats_.data_sent;
  if (domain_.rec_ != nullptr) domain_.rec_->counter("ce.rel.data").add();
  transmit(dst, seq, std::move(on_sent));
  arm_timer(dst, seq);
}

void ReliableChannel::transmit(net::NodeId dst, std::uint64_t seq,
                               std::function<void()> on_sent) {
  auto& peer = unacked_[static_cast<std::size_t>(dst)];
  const std::size_t i = window_find(peer, seq);
  assert(i != SIZE_MAX);
  net::Message copy = slab_msg_[peer[i].slot];  // payload pointer shared
  fabric_.nic(node_).raw_send(std::move(copy), std::move(on_sent));
}

void ReliableChannel::arm_timer(net::NodeId dst, std::uint64_t seq) {
  auto& peer = unacked_[static_cast<std::size_t>(dst)];
  const std::size_t i = window_find(peer, seq);
  assert(i != SIZE_MAX);
  UnackedHot& u = slab_hot_[peer[i].slot];
  des::Duration delay = u.rto;
  const double j = domain_.cfg_.rto_jitter;
  if (j > 0) {
    delay = static_cast<des::Duration>(static_cast<double>(delay) *
                                       rng_.uniform(1.0, 1.0 + j));
  }
  // Reschedule a still-pending timer in place (the NACK fast-retransmit
  // path): the callback stays parked in its event slot, no cancel
  // tombstone, no new slot.  A fired timer needs a fresh event.
  if (u.timer.ev != des::kInvalidEvent &&
      eng_.reschedule(u.timer, eng_.now() + delay)) {
    return;
  }
  u.timer = eng_.schedule_on(net::Fabric::shard_of(node_),
                             eng_.now() + delay,
                             [this, dst, seq]() { on_timer(dst, seq); });
}

void ReliableChannel::on_timer(net::NodeId dst, std::uint64_t seq) {
  auto& peer = unacked_[static_cast<std::size_t>(dst)];
  const std::size_t i = window_find(peer, seq);
  if (i == SIZE_MAX) return;  // ACKed between firing and dispatch
  slab_hot_[peer[i].slot].timer = {};
  expire(dst, seq);
}

void ReliableChannel::expire(net::NodeId dst, std::uint64_t seq) {
  auto& peer = unacked_[static_cast<std::size_t>(dst)];
  const std::size_t i = window_find(peer, seq);
  assert(i != SIZE_MAX);
  const std::uint32_t slot = peer[i].slot;
  UnackedHot& u = slab_hot_[slot];

  if (static_cast<int>(u.attempts) - 1 >= domain_.cfg_.max_retries) {
    // Retry budget exhausted: give up recoverably.
    ++domain_.stats_.timeouts;
    obs::FlightRecorder::global().record(node_, obs::FlightKind::RelTimeout,
                                         eng_.now(), 0,
                                         static_cast<std::uint64_t>(dst), seq);
    if (domain_.rec_ != nullptr) {
      domain_.rec_->counter("ce.rel.timeouts").add();
    }
    if (u.timer.ev != des::kInvalidEvent) eng_.cancel(u.timer);
    const DeliveryErrorCallback& cb = domain_.on_error_;
    const ReliableDomain::SuspicionHook& hook = domain_.on_suspect_;
    peer.erase(peer.begin() + static_cast<std::ptrdiff_t>(i));
    slab_release(slot);
    // A burned retry budget is strong evidence the peer is down: always
    // feed the suspicion hook (the failure detector), whether or not an
    // error callback consumes the loss itself.
    if (hook) hook(node_, dst);
    if (cb) {
      cb(node_, dst, seq, Status::ErrTimeout);
    } else if (!hook) {
      // Nobody is listening.  Surface the loss through obs — once per
      // peer, so a dead node's stream of give-ups doesn't flood — instead
      // of silently discarding it.
      ++domain_.stats_.unhandled_errors;
      if (domain_.rec_ != nullptr) {
        domain_.rec_->counter("ce.rel.err_unhandled").add();
      }
      if (!err_logged_[static_cast<std::size_t>(dst)]) {
        err_logged_[static_cast<std::size_t>(dst)] = true;
        std::fprintf(stderr,
                     "ce.rel: node %d gave up on peer %d (seq %llu, %s) "
                     "with no error callback installed\n",
                     node_, dst, static_cast<unsigned long long>(seq),
                     status_name(Status::ErrTimeout));
      }
    }
    return;
  }

  ++u.attempts;
  ++domain_.stats_.retransmits;
  obs::FlightRecorder::global().record(node_, obs::FlightKind::RelRetransmit,
                                       eng_.now(), 0,
                                       static_cast<std::uint64_t>(dst), seq);
  if (domain_.rec_ != nullptr) {
    domain_.rec_->counter("ce.rel.retransmits").add();
  }
  if (des::TraceSink* const sink = eng_.trace_sink()) {
    // Mark the retransmission on the sender's egress track so traces show
    // why a flow arrow spans several RTOs.
    char label[48];
    std::snprintf(label, sizeof label, "rel.retransmit seq=%llu",
                  static_cast<unsigned long long>(seq));
    char track[32];
    std::snprintf(track, sizeof track, "nic%d.egress", node_);
    sink->instant(track, label, eng_.now());
  }
  u.rto = std::min(static_cast<des::Duration>(
                       static_cast<double>(u.rto) * domain_.cfg_.rto_backoff),
                   u.rto_cap);
  transmit(dst, seq, nullptr);
  arm_timer(dst, seq);
}

void ReliableChannel::send_control(net::NodeId dst, std::uint16_t kind,
                                   std::uint64_t seq) {
  net::Message c;
  c.src = node_;
  c.dst = dst;
  c.wire_bytes = domain_.cfg_.ack_bytes;
  c.hdr.proto = net::kProtoRel;
  c.hdr.kind = kind;
  c.hdr.imm[0] = seq;
  c.hdr.rel_crc = message_crc(c);
  fabric_.nic(node_).raw_send(std::move(c));
}

void ReliableChannel::on_control(const net::Message& m) {
  const auto peer = static_cast<std::size_t>(m.src);
  auto& outstanding = unacked_[peer];
  const std::size_t i = window_find(outstanding, m.hdr.imm[0]);
  if (i == SIZE_MAX) return;  // stale (already ACKed / timed out)
  const std::uint32_t slot = outstanding[i].slot;
  UnackedHot& u = slab_hot_[slot];

  if (m.hdr.kind == kRelNack) {
    // The receiver saw this frame arrive corrupted: retransmit right away
    // (still charged against the retry budget).  The pending RTO timer is
    // kept and pushed out in place by arm_timer, not cancelled.
    expire(m.src, m.hdr.imm[0]);
    return;
  }

  // ACK: done.
  if (u.timer.ev != des::kInvalidEvent) eng_.cancel(u.timer);
  if (domain_.rec_ != nullptr) {
    const auto wait = static_cast<double>(eng_.now() - u.first_sent);
    domain_.rec_->histogram("ce.rel.ack_ns").add(wait);
    if (u.attempts > 1) {
      domain_.rec_->histogram("ce.rel.retransmit_latency_ns").add(wait);
    }
  }
  outstanding.erase(outstanding.begin() + static_cast<std::ptrdiff_t>(i));
  slab_release(slot);
}

bool ReliableChannel::note_received(net::NodeId src, std::uint64_t seq) {
  PeerRecv& r = recv_[static_cast<std::size_t>(src)];
  if (seq <= r.cum || r.ahead.contains(seq)) return false;
  r.ahead.insert(seq);
  while (r.ahead.contains(r.cum + 1)) {
    r.ahead.erase(r.cum + 1);
    ++r.cum;
  }
  return true;
}

bool ReliableChannel::shim_deliver(net::Message& m) {
  if (m.hdr.proto == net::kProtoRel) {
    if (message_crc(m) != m.hdr.rel_crc) {
      // A corrupted control frame is simply lost; the data timer covers
      // the lost-ACK case.
      ++domain_.stats_.corrupt_discarded;
      if (domain_.rec_ != nullptr) {
        domain_.rec_->counter("ce.rel.corrupt").add();
      }
      return true;
    }
    on_control(m);
    return true;
  }
  if (m.hdr.rel_seq == 0) return false;  // untracked raw traffic

  if (message_crc(m) != m.hdr.rel_crc) {
    // Damaged in flight: discard before any protocol logic can parse it
    // and ask the sender for an immediate retransmit.  rel_seq is covered
    // by the CRC, but in-sim corruption never touches it (payload/imm[3]
    // only), so the NACK targets the right frame; a real implementation
    // would fall back to the sender's timer, which still holds here.
    ++domain_.stats_.corrupt_discarded;
    if (domain_.rec_ != nullptr) {
      domain_.rec_->counter("ce.rel.corrupt").add();
    }
    ++domain_.stats_.nacks_sent;
    if (domain_.rec_ != nullptr) domain_.rec_->counter("ce.rel.nacks").add();
    send_control(m.src, kRelNack, m.hdr.rel_seq);
    return true;
  }

  if (!note_received(m.src, m.hdr.rel_seq)) {
    // Duplicate (fabric-injected or a retransmission racing its ACK):
    // suppress, but re-ACK — the original ACK may have been the casualty.
    ++domain_.stats_.duplicates_suppressed;
    if (domain_.rec_ != nullptr) domain_.rec_->counter("ce.rel.dups").add();
    ++domain_.stats_.acks_sent;
    if (domain_.rec_ != nullptr) domain_.rec_->counter("ce.rel.acks").add();
    send_control(m.src, kRelAck, m.hdr.rel_seq);
    return true;
  }

  ++domain_.stats_.acks_sent;
  if (domain_.rec_ != nullptr) domain_.rec_->counter("ce.rel.acks").add();
  send_control(m.src, kRelAck, m.hdr.rel_seq);
  return false;  // verified, first copy: up to the library
}

// ---------------------------------------------------------------------------
// ReliableDomain

ReliableDomain::ReliableDomain(net::Fabric& fabric, ReliableConfig cfg)
    : fabric_(fabric), cfg_(cfg) {
  const int n = fabric.num_nodes();
  channels_.reserve(static_cast<std::size_t>(n));
  for (net::NodeId node = 0; node < n; ++node) {
    channels_.push_back(
        std::make_unique<ReliableChannel>(*this, fabric, node));
    fabric.nic(node).set_shim(channels_.back().get());
  }
}

ReliableDomain::~ReliableDomain() {
  for (net::NodeId node = 0; node < fabric_.num_nodes(); ++node) {
    if (fabric_.nic(node).shim() ==
        channels_[static_cast<std::size_t>(node)].get()) {
      fabric_.nic(node).set_shim(nullptr);
    }
  }
  for (auto& ch : channels_) ch->cancel_timers();
}

std::size_t ReliableDomain::unacked() const {
  std::size_t n = 0;
  for (const auto& ch : channels_) n += ch->unacked();
  return n;
}

std::size_t ReliableDomain::unacked(net::NodeId node) const {
  return channels_.at(static_cast<std::size_t>(node))->unacked();
}

void ReliableDomain::peer_dead(net::NodeId peer) {
  for (auto& ch : channels_) ch->peer_dead(peer);
}

void ReliableDomain::peer_alive(net::NodeId peer) {
  for (auto& ch : channels_) ch->peer_alive(peer);
}

}  // namespace ce
