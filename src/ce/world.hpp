// CommWorld: constructs one communication engine per simulated node over a
// shared fabric, for either backend.  This is the object experiments and
// the AMT runtime hold; it owns the underlying mmpi/mlci library instance.
#pragma once

#include <memory>
#include <vector>

#include "ce/comm_engine.hpp"
#include "ce/failure_detector.hpp"
#include "ce/reliable.hpp"
#include "mlci/lci.hpp"
#include "mmpi/mpi.hpp"
#include "net/fabric.hpp"
#include "obs/stats.hpp"

namespace ce {

enum class BackendKind { Mpi, Lci };

inline const char* backend_name(BackendKind k) {
  return k == BackendKind::Mpi ? "Open MPI" : "LCI";
}

class CommWorld {
 public:
  CommWorld(net::Fabric& fabric, BackendKind kind, CeConfig ce_cfg = {},
            mmpi::Config mpi_cfg = {}, mlci::Config lci_cfg = {});
  ~CommWorld();

  BackendKind kind() const { return kind_; }

  /// World-wide metrics: the fabric and every engine record into this.
  obs::Recorder& metrics() { return recorder_; }
  const obs::Recorder& metrics() const { return recorder_; }
  int size() const { return static_cast<int>(engines_.size()); }
  CommEngine& engine(int node) {
    return *engines_.at(static_cast<std::size_t>(node));
  }

  /// True when every engine is idle (global communication quiescence).
  /// With the reliability sublayer enabled this also requires every sent
  /// message to have been ACKed.
  bool all_idle() const {
    for (const auto& e : engines_) {
      if (!e->idle()) return false;
    }
    return reliable_ == nullptr || reliable_->unacked() == 0;
  }

  /// The end-to-end reliability sublayer, or null when
  /// CeConfig::reliable.enabled was false.
  ReliableDomain* reliability() { return reliable_.get(); }
  const ReliableDomain* reliability() const { return reliable_.get(); }

  /// Declares `peer` dead at the communication level: the reliability
  /// sublayer stops retransmitting to it and every engine cancels
  /// transfers wedged on it.  Idempotent.  Invoked automatically on
  /// detector Dead verdicts; callers with ground-truth crash knowledge
  /// (e.g. the AMT runtime without a detector) may call it directly.
  void peer_failed(int peer) {
    if (reliable_ != nullptr) reliable_->peer_dead(peer);
    for (auto& e : engines_) e->peer_failed(peer);
  }

  /// The failure detector, or null when CeConfig::fd.enabled was false.
  /// When both sublayers are on, CommWorld has already wired: detector
  /// Dead verdicts -> reliability peer_dead + backend peer_failed;
  /// reliability ErrTimeout give-ups -> detector suspicion hints.
  FailureDetectorDomain* failure_detector() { return fd_.get(); }
  const FailureDetectorDomain* failure_detector() const { return fd_.get(); }

 private:
  BackendKind kind_;
  net::Fabric& fabric_;
  obs::Recorder recorder_;
  std::unique_ptr<mmpi::Mpi> mpi_;
  std::unique_ptr<mlci::Lci> lci_;
  std::vector<std::unique_ptr<CommEngine>> engines_;
  // Declared last: uninstalls its NIC shims and cancels retransmission
  // timers before the libraries above go away.
  std::unique_ptr<ReliableDomain> reliable_;
  // After reliable_: the detector shims wrap the reliability shims, so
  // they must uninstall first (reverse declaration order).
  std::unique_ptr<FailureDetectorDomain> fd_;
};

}  // namespace ce
