// The MPI backend of the PaRSEC communication engine (paper §4.2).
//
// Mechanisms reproduced:
//   * tag_reg posts a fixed number (5) of persistent wildcard receives
//     (MPI_Recv_init + MPI_Start, MPI_ANY_SOURCE) per registered tag.
//   * send_am uses blocking eager MPI_Send with the AM tag.
//   * put() is emulated: a handshake active message announces target
//     address / size / data tag / remote callback, then the data moves
//     with nonblocking two-sided sends on a per-transfer unique tag.
//   * A global array of requests paired with a parallel callback array,
//     length 5*Nam + 30: at most 30 data transfers (sends + receives) are
//     actively polled.  Put-sends that find no space are deferred; data
//     receives posted by the handshake callback when the array is full
//     use dynamically allocated requests that are only polled once
//     promoted into the array (§4.2.2).
//   * progress() loops MPI_Testsome over the array, runs callbacks for
//     completions, compacts, starts deferred work FIFO, and repeats until
//     a pass completes nothing (§4.2.3).
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ce/comm_engine.hpp"
#include "mmpi/mpi.hpp"

namespace ce {

class MpiBackend final : public CommEngine {
 public:
  MpiBackend(mmpi::Rank& rank, CeConfig cfg = {});
  ~MpiBackend() override;

  int rank() const override { return rank_.rank(); }
  int size() const override { return rank_.size(); }

  Status tag_reg(Tag tag, AmCallback cb, void* cb_data,
                 std::size_t max_len) override;
  MemReg mem_reg(void* mem, std::size_t size) override;
  Status send_am(Tag tag, int remote, const void* msg,
                 std::size_t size) override;
  int put(const MemReg& lreg, std::ptrdiff_t ldispl, const MemReg& rreg,
          std::ptrdiff_t rdispl, std::size_t size, int remote,
          OnesidedCallback l_cb, void* l_cb_data, Tag r_tag,
          const void* r_cb_data, std::size_t r_cb_data_size) override;
  int progress() override;
  void peer_failed(int remote) override;
  bool idle() const override;
  void set_wake_callback(std::function<void()> fn) override;
  const CeStats& stats() const override { return stats_; }
  void set_recorder(obs::Recorder* rec) override { rec_ = rec; }

 private:
  struct AmTagInfo {
    AmCallback cb;
    void* cb_data = nullptr;
    std::size_t max_len = 0;
  };

  /// One entry of the global request array + parallel callback array.
  struct Entry {
    enum class Kind { AmRecv, DataSend, DataRecv };
    Kind kind = Kind::AmRecv;
    mmpi::RequestId req = mmpi::kNullRequest;
    // AmRecv: the registered tag and its receive buffer.
    Tag am_tag = 0;
    std::shared_ptr<std::vector<std::byte>> buffer;
    // DataSend: origin-side completion.
    OnesidedCallback l_cb;
    void* l_cb_data = nullptr;
    MemReg lreg, rreg;
    std::ptrdiff_t ldispl = 0, rdispl = 0;
    std::size_t size = 0;
    int remote = -1;
    std::uint64_t data_tag = 0;
    // DataRecv: remote-completion callback data.
    Tag r_tag = 0;
    std::vector<std::byte> r_cb_data;
    int origin = -1;
    /// When this transfer entered the engine (put() call / handshake
    /// arrival) — start of the put_local/put_remote latency histograms.
    des::Time started = 0;
  };

  /// Deferred work, kept in one FIFO to preserve global start order.
  struct Pending {
    enum class What { StartSend, PromoteRecv };
    What what;
    Entry entry;  ///< fully formed; req set for PromoteRecv only
  };

  int data_entries_active() const;
  void start_data_send(Entry&& e);
  void drain_pending();
  void handle_handshake(const void* msg, std::size_t size, int src);
  void run_am_callback(Entry& e, const mmpi::MpiStatus& st);

  mmpi::Rank& rank_;
  CeConfig cfg_;
  CeStats stats_;
  std::unordered_map<Tag, AmTagInfo> tags_;
  std::vector<Entry> entries_;        ///< the global array
  std::deque<Pending> pending_;       ///< deferred sends + dynamic recvs
  std::uint64_t next_data_tag_;
  std::function<void()> wake_;
  obs::Recorder* rec_ = nullptr;
};

}  // namespace ce
