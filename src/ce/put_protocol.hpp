// Handshake message layout shared by the put implementations.
//
// Both backends emulate the one-sided put with two-sided transport plus a
// handshake active message (paper §4.2.2, §5.3.3).  The handshake tells
// the target where the data lands, how much is coming, which tag the bulk
// transfer uses, and carries the remote-completion callback data inline.
// The LCI backend may additionally append the put data itself when it is
// small (the eager-data optimization).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "ce/comm_engine.hpp"

namespace ce {

struct PutHandshake {
  std::uint64_t rbase = 0;      ///< target registration base (opaque)
  std::int64_t rdispl = 0;      ///< displacement into the registration
  std::uint64_t size = 0;       ///< bulk data size
  Tag r_tag = 0;                ///< remote-completion AM tag
  std::uint64_t data_tag = 0;   ///< tag the bulk transfer uses
  std::uint32_t r_cb_size = 0;  ///< bytes of callback data that follow
  std::uint32_t flags = 0;
};

inline constexpr std::uint32_t kHandshakeEagerData = 1u;

/// Trace-flow identity of one put transfer, derivable independently on
/// both sides: the origin rank plus the per-origin data tag (both reach
/// the target in the handshake).  Bit 63 is set by the data-tag range
/// already (kDataTagBase), keeping put flow ids disjoint from the
/// runtime-level span ids.
inline std::uint64_t put_flow_id(int origin, std::uint64_t data_tag) {
  return data_tag ^ (static_cast<std::uint64_t>(
                         static_cast<std::uint32_t>(origin))
                     << 40);
}

/// Serializes header + callback data (+ optional eager payload bytes).
inline std::vector<std::byte> pack_handshake(const PutHandshake& h,
                                             const void* r_cb_data,
                                             const void* eager_data,
                                             std::size_t eager_size) {
  std::vector<std::byte> buf(sizeof(PutHandshake) + h.r_cb_size + eager_size);
  std::memcpy(buf.data(), &h, sizeof h);
  if (h.r_cb_size > 0) {
    assert(r_cb_data != nullptr);
    std::memcpy(buf.data() + sizeof h, r_cb_data, h.r_cb_size);
  }
  if (eager_size > 0 && eager_data != nullptr) {
    std::memcpy(buf.data() + sizeof h + h.r_cb_size, eager_data, eager_size);
  }
  return buf;
}

/// View into a packed handshake message.
struct HandshakeView {
  PutHandshake hdr;
  const std::byte* r_cb_data = nullptr;
  const std::byte* eager_data = nullptr;

  static HandshakeView parse(const void* msg, std::size_t size) {
    HandshakeView v;
    assert(size >= sizeof(PutHandshake));
    std::memcpy(&v.hdr, msg, sizeof v.hdr);
    const auto* bytes = static_cast<const std::byte*>(msg);
    v.r_cb_data = v.hdr.r_cb_size > 0 ? bytes + sizeof(PutHandshake) : nullptr;
    if ((v.hdr.flags & kHandshakeEagerData) != 0) {
      v.eager_data = bytes + sizeof(PutHandshake) + v.hdr.r_cb_size;
    }
    return v;
  }
};

}  // namespace ce
