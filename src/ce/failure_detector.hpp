// Fail-stop failure detection (heartbeats + adaptive timeout).
//
// One FailureDetectorDomain covers the whole simulated cluster: a
// per-node detector shim interposes in FRONT of whatever link shim is
// already installed (the reliability sublayer, usually), so it observes
// every frame each node sends and receives — data, ACKs, retransmits —
// and treats all of them as proof of life.  Dedicated kProtoFd
// heartbeat frames fill silent gaps: a node heartbeats a peer only when
// it has sent that peer nothing for a full heartbeat interval
// (piggybacking on existing traffic the rest of the time).
//
// Peer-state machine, evaluated on each node's periodic timer:
//
//   Alive --silence > max(min_timeout, phi * mean_gap)--> Suspect
//   Suspect --any frame arrives--> Alive            (a "flap": counted
//                                                    as a false suspect)
//   Suspect --further confirm_timeout of silence--> Dead
//
// Dead is sticky — subscribers (reliability fast-fail, backend transfer
// cancellation, the AMT recovery coordinator) have acted on it — until
// the fabric's ground-truth restart signal revives the peer.  The
// suspicion threshold adapts phi-accrual-style to the observed
// inter-arrival gap so bursty-but-healthy peers (e.g. a NIC busy
// serializing a multi-MB tile) are not declared suspect; at fault-rate
// zero the detector must produce zero false positives, which the unit
// tests pin.
//
// A node's timer lives on its own DES shard: when the node crashes the
// fabric cancels the shard and the dead node stops heartbeating and
// detecting — exactly the fail-stop semantics.  On restart the domain
// re-arms the timer and resets the node's views.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ce/comm_engine.hpp"
#include "net/fabric.hpp"

namespace obs {
class Recorder;
}

namespace ce {

enum class PeerState : std::uint8_t { Alive = 0, Suspect = 1, Dead = 2 };

inline const char* peer_state_name(PeerState s) {
  switch (s) {
    case PeerState::Alive: return "Alive";
    case PeerState::Suspect: return "Suspect";
    case PeerState::Dead: return "Dead";
  }
  return "?";
}

/// Domain-wide detector counters (summed over all nodes).
struct FdStats {
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t suspects = 0;        ///< Alive -> Suspect transitions
  std::uint64_t false_suspects = 0;  ///< Suspect -> Alive flaps
  std::uint64_t deaths = 0;          ///< Suspect -> Dead confirmations
  std::uint64_t revivals = 0;        ///< Dead -> Alive on ground-truth restart
  std::uint64_t hints = 0;           ///< external suspicion hints accepted
};

class FailureDetectorDomain {
 public:
  /// Observer of peer-state transitions: `node`'s view of `peer` changed
  /// to `state`.  Invoked synchronously from the detector (timer events
  /// and frame arrivals); keep it cheap and re-entrant-safe.
  using StateCallback = std::function<void(int node, int peer, PeerState)>;

  FailureDetectorDomain(net::Fabric& fabric, FdConfig cfg);
  ~FailureDetectorDomain();
  FailureDetectorDomain(const FailureDetectorDomain&) = delete;
  FailureDetectorDomain& operator=(const FailureDetectorDomain&) = delete;

  const FdConfig& config() const { return cfg_; }
  const FdStats& stats() const { return stats_; }

  void subscribe(StateCallback cb) { subscribers_.push_back(std::move(cb)); }

  /// `node`'s current view of `peer`.
  PeerState peer_state(int node, int peer) const;

  /// How many live observers currently view `peer` as Suspect / Dead.
  /// Maintained incrementally at each state transition, so a timeline
  /// probe sampling every peer is O(n) per sample, not O(n^2).
  std::uint32_t suspect_views(int peer) const {
    return suspect_views_of_.at(static_cast<std::size_t>(peer));
  }
  std::uint32_t dead_views(int peer) const {
    return dead_views_of_.at(static_cast<std::size_t>(peer));
  }

  /// External suspicion hint (the reliability sublayer's ErrTimeout):
  /// accelerates Alive -> Suspect without waiting for the silence bound.
  /// Confirmation still requires confirm_timeout of real silence.
  void suspect_hint(int node, int peer);

  /// Cancels every pending heartbeat timer.  The detector stops; call
  /// when the workload reached quiescence so the periodic timers don't
  /// keep the event queue alive forever.
  void stop();

  /// Attaches a metrics recorder for ce.fd.* counters and the
  /// ce.fd.detect_ns detection-latency histogram.  Null detaches.
  void set_recorder(obs::Recorder* rec);

 private:
  class NodeDetector;
  friend class NodeDetector;

  void notify(int node, int peer, PeerState state);
  void record_death(int node, int peer, des::Time now);
  /// Updates the aggregate view counters for one observer's transition.
  void track_view(int peer, PeerState from, PeerState to);

  net::Fabric& fabric_;
  FdConfig cfg_;
  FdStats stats_;
  bool stopped_ = false;
  obs::Recorder* rec_ = nullptr;
  std::vector<StateCallback> subscribers_;
  std::vector<std::unique_ptr<NodeDetector>> nodes_;
  std::vector<std::uint32_t> suspect_views_of_;  ///< observers seeing Suspect
  std::vector<std::uint32_t> dead_views_of_;     ///< observers seeing Dead
};

}  // namespace ce
