#include "ce/mpi_backend.hpp"

#include <cassert>
#include <cstdio>
#include <cstring>
#include <optional>

#include "ce/put_protocol.hpp"
#include "des/sim_thread.hpp"
#include "obs/stats.hpp"

namespace ce {
namespace {

/// Internal AM tag carrying put handshakes.
constexpr Tag kHandshakeTag = 0xFFFF'FFFF'FFFF'0001ULL;
/// Data-transfer tags live in their own range; unique per origin.
constexpr Tag kDataTagBase = 0x8000'0000'0000'0000ULL;

}  // namespace

MpiBackend::MpiBackend(mmpi::Rank& rank, CeConfig cfg)
    : rank_(rank), cfg_(cfg), next_data_tag_(kDataTagBase) {
  // The handshake handler is itself a registered active message.
  const Status st = tag_reg(
      kHandshakeTag,
      [](CommEngine& ce, Tag, const void* msg, std::size_t size, int src,
         void* cb_data) {
        static_cast<MpiBackend*>(cb_data)->handle_handshake(msg, size, src);
        (void)ce;
      },
      this, sizeof(PutHandshake) + cfg_.max_am_size);
  assert(st == Status::Ok);
  (void)st;
}

MpiBackend::~MpiBackend() { rank_.set_event_notifier(nullptr); }

void MpiBackend::set_wake_callback(std::function<void()> fn) {
  wake_ = std::move(fn);
  rank_.set_event_notifier(wake_);
}

Status MpiBackend::tag_reg(Tag tag, AmCallback cb, void* cb_data,
                           std::size_t max_len) {
  if (tags_.contains(tag)) return Status::ErrTagDuplicate;
  tags_.emplace(tag, AmTagInfo{std::move(cb), cb_data, max_len});
  // Five persistent wildcard receives per tag (§4.2.1).
  for (int i = 0; i < cfg_.persistent_recvs_per_tag; ++i) {
    Entry e;
    e.kind = Entry::Kind::AmRecv;
    e.am_tag = tag;
    e.buffer = std::make_shared<std::vector<std::byte>>(max_len);
    e.req = rank_.recv_init(e.buffer->data(), max_len, mmpi::kAnySource, tag);
    rank_.start(e.req);
    entries_.push_back(std::move(e));
  }
  return Status::Ok;
}

MemReg MpiBackend::mem_reg(void* mem, std::size_t size) {
  return MemReg{rank(), mem, size};
}

Status MpiBackend::send_am(Tag tag, int remote, const void* msg,
                           std::size_t size) {
  const auto it = tags_.find(tag);
  if (it == tags_.end()) return Status::ErrTagUnregistered;
  // Oversized bodies would overflow the posted receive buffers.
  if (size > it->second.max_len) return Status::ErrTooLarge;
  // Blocking eager MPI_Send with the registered tag (§4.2.1).
  rank_.send(msg, size, remote, tag);
  ++stats_.ams_sent;
  return Status::Ok;
}

int MpiBackend::data_entries_active() const {
  int n = 0;
  for (const Entry& e : entries_) {
    if (e.kind != Entry::Kind::AmRecv) ++n;
  }
  return n;
}

int MpiBackend::put(const MemReg& lreg, std::ptrdiff_t ldispl,
                    const MemReg& rreg, std::ptrdiff_t rdispl,
                    std::size_t size, int remote, OnesidedCallback l_cb,
                    void* l_cb_data, Tag r_tag, const void* r_cb_data,
                    std::size_t r_cb_data_size) {
  ++stats_.puts_started;
  const std::uint64_t data_tag = next_data_tag_++;

  // Handshake first: tells the target to post the matching receive.
  PutHandshake h;
  h.rbase = reinterpret_cast<std::uint64_t>(rreg.base);
  h.rdispl = rdispl;
  h.size = size;
  h.r_tag = r_tag;
  h.data_tag = data_tag;
  h.r_cb_size = static_cast<std::uint32_t>(r_cb_data_size);
  const auto buf = pack_handshake(h, r_cb_data, nullptr, 0);
  rank_.send(buf.data(), buf.size(), remote, kHandshakeTag);
  des::emit_flow(rank_.engine(), "put", put_flow_id(rank(), data_tag),
                 /*begin=*/true);

  Entry e;
  e.kind = Entry::Kind::DataSend;
  e.l_cb = std::move(l_cb);
  e.l_cb_data = l_cb_data;
  e.lreg = lreg;
  e.rreg = rreg;
  e.ldispl = ldispl;
  e.rdispl = rdispl;
  e.size = size;
  e.remote = remote;
  e.data_tag = data_tag;
  e.started = rank_.engine().now();

  if (data_entries_active() < cfg_.max_concurrent_transfers) {
    start_data_send(std::move(e));
  } else {
    // No space in the global array: defer posting the send (§4.2.2).
    ++stats_.puts_deferred;
    pending_.push_back(Pending{Pending::What::StartSend, std::move(e)});
  }
  return 0;
}

void MpiBackend::start_data_send(Entry&& e) {
  const void* src = nullptr;
  if (e.lreg.base != nullptr) {
    src = static_cast<const std::byte*>(e.lreg.base) + e.ldispl;
  }
  e.req = rank_.isend(src, e.size, e.remote, e.data_tag);
  entries_.push_back(std::move(e));
}

void MpiBackend::handle_handshake(const void* msg, std::size_t size,
                                  int src) {
  const auto v = HandshakeView::parse(msg, size);
  Entry e;
  e.kind = Entry::Kind::DataRecv;
  e.r_tag = v.hdr.r_tag;
  if (v.hdr.r_cb_size > 0) {
    e.r_cb_data.assign(v.r_cb_data, v.r_cb_data + v.hdr.r_cb_size);
  }
  e.origin = src;
  e.size = static_cast<std::size_t>(v.hdr.size);
  e.data_tag = v.hdr.data_tag;
  e.started = rank_.engine().now();
  void* dst = nullptr;
  if (v.hdr.rbase != 0) {
    dst = reinterpret_cast<std::byte*>(v.hdr.rbase) + v.hdr.rdispl;
  }
  // The receive is posted either way; without array space the request is
  // "dynamically allocated" and not polled until promoted (§4.2.2).
  e.req = rank_.irecv(dst, e.size, src, v.hdr.data_tag);
  if (data_entries_active() < cfg_.max_concurrent_transfers) {
    entries_.push_back(std::move(e));
  } else {
    ++stats_.recvs_dynamic;
    pending_.push_back(Pending{Pending::What::PromoteRecv, std::move(e)});
  }
}

void MpiBackend::drain_pending() {
  while (!pending_.empty() &&
         data_entries_active() < cfg_.max_concurrent_transfers) {
    Pending p = std::move(pending_.front());
    pending_.pop_front();
    if (p.what == Pending::What::StartSend) {
      start_data_send(std::move(p.entry));
    } else {
      entries_.push_back(std::move(p.entry));  // request already posted
    }
  }
}

void MpiBackend::run_am_callback(Entry& e, const mmpi::MpiStatus& st) {
  des::charge_current(cfg_.dispatch_cost);
  const auto it = tags_.find(e.am_tag);
  assert(it != tags_.end());
  ++stats_.ams_delivered;
  std::optional<des::ChargeSpan> span;
  if (rank_.engine().trace_sink() != nullptr) {
    char label[32];
    std::snprintf(label, sizeof label, "am 0x%llx",
                  static_cast<unsigned long long>(e.am_tag));
    span.emplace(rank_.engine(), label);
  }
  it->second.cb(*this, e.am_tag, e.buffer->data(), st.count, st.source,
                it->second.cb_data);
}

int MpiBackend::progress() {
  int total = 0;
  // §4.2.3: Testsome, execute callbacks, compact, start deferred work;
  // repeat until a pass completes nothing.
  for (;;) {
    des::charge_current(cfg_.loop_cost);
    std::vector<mmpi::RequestId> ids;
    ids.reserve(entries_.size());
    for (const Entry& e : entries_) ids.push_back(e.req);
    const auto res = rank_.testsome(ids);
    if (res.indices.empty()) break;

    std::vector<bool> done(entries_.size(), false);
    for (std::size_t k = 0; k < res.indices.size(); ++k) {
      const std::size_t idx = res.indices[k];
      const mmpi::MpiStatus& st = res.statuses[k];
      // Callbacks may append entries (reentrant put/send_am): access by
      // index, never hold references across a callback.
      switch (entries_[idx].kind) {
        case Entry::Kind::AmRecv: {
          run_am_callback(entries_[idx], st);
          rank_.start(entries_[idx].req);  // re-enable the persistent recv
          break;
        }
        case Entry::Kind::DataSend: {
          des::charge_current(cfg_.dispatch_cost);
          Entry& e = entries_[idx];
          ++stats_.puts_completed_local;
          if (rec_ != nullptr) {
            rec_->histogram("ce.put_local_ns")
                .add(static_cast<double>(rank_.engine().now() - e.started));
          }
          if (e.l_cb) {
            std::optional<des::ChargeSpan> span;
            if (rank_.engine().trace_sink() != nullptr) {
              span.emplace(rank_.engine(), "put.l_cb");
            }
            e.l_cb(*this, e.lreg, e.ldispl, e.rreg, e.rdispl, e.size,
                   e.remote, e.l_cb_data);
          }
          done[idx] = true;
          break;
        }
        case Entry::Kind::DataRecv: {
          des::charge_current(cfg_.dispatch_cost);
          ++stats_.puts_completed_remote;
          // Remote completion: invoke the AM callback registered for
          // r_tag with the callback data from the handshake.
          const Entry& e = entries_[idx];
          if (rec_ != nullptr) {
            rec_->histogram("ce.put_remote_ns")
                .add(static_cast<double>(rank_.engine().now() - e.started));
          }
          const auto it = tags_.find(e.r_tag);
          assert(it != tags_.end() && "put r_tag not registered");
          std::optional<des::ChargeSpan> span;
          if (rank_.engine().trace_sink() != nullptr) {
            span.emplace(rank_.engine(), "put.r_cb");
          }
          des::emit_flow(rank_.engine(), "put",
                         put_flow_id(e.origin, e.data_tag),
                         /*begin=*/false);
          it->second.cb(*this, e.r_tag, e.r_cb_data.data(),
                        e.r_cb_data.size(), e.origin, it->second.cb_data);
          done[idx] = true;
          break;
        }
      }
      ++total;
    }

    // Compact: completed non-persistent entries leave; free space is at
    // the back.  Entries appended by callbacks (index >= done.size())
    // are kept.
    std::vector<Entry> kept;
    kept.reserve(entries_.size());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (i < done.size() && done[i]) continue;
      kept.push_back(std::move(entries_[i]));
    }
    entries_ = std::move(kept);

    drain_pending();
  }
  return total;
}

void MpiBackend::peer_failed(int remote) {
  // A transfer wedged on a dead peer never completes through MPI: cancel
  // its request and release its array slot so the 30-entry cap (§4.2.2)
  // is not permanently consumed by a corpse.  Idempotent — after the
  // first call nothing matching `remote` remains.
  std::size_t recvs = 0;
  std::vector<Entry> kept;
  std::vector<Entry> released_sends;
  kept.reserve(entries_.size());
  for (Entry& e : entries_) {
    const bool doomed =
        (e.kind == Entry::Kind::DataSend && e.remote == remote) ||
        (e.kind == Entry::Kind::DataRecv && e.origin == remote);
    if (!doomed) {
      kept.push_back(std::move(e));
      continue;
    }
    rank_.cancel(e.req);
    if (e.kind == Entry::Kind::DataSend) {
      // Put sends are locally complete the moment the data leaves the
      // origin buffer; the origin callback still fires so upper layers
      // can release the tile.  The remote side is dead — no r_cb.
      ++stats_.peer_failed_sends;
      released_sends.push_back(std::move(e));
    } else {
      // Dropped without any callback: the data never arrived, so faking
      // remote completion would hand garbage to the consumer.
      ++stats_.peer_failed_recvs;
      ++recvs;
    }
  }
  entries_ = std::move(kept);

  // Deferred work targeting the corpse: deferred sends were never posted
  // (req unset); dynamic recvs hold a live request that must be dropped.
  for (auto it = pending_.begin(); it != pending_.end();) {
    Entry& e = it->entry;
    if (it->what == Pending::What::StartSend && e.remote == remote) {
      ++stats_.peer_failed_sends;
      released_sends.push_back(std::move(e));
      it = pending_.erase(it);
    } else if (it->what == Pending::What::PromoteRecv &&
               e.origin == remote) {
      rank_.cancel(e.req);
      ++stats_.peer_failed_recvs;
      ++recvs;
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }

  rank_.purge_peer(remote);
  if (rec_ != nullptr && released_sends.size() + recvs > 0) {
    rec_->counter("ce.peer_failed_cancels").add(released_sends.size() + recvs);
  }
  for (Entry& e : released_sends) {
    if (e.l_cb) {
      e.l_cb(*this, e.lreg, e.ldispl, e.rreg, e.rdispl, e.size, e.remote,
             e.l_cb_data);
    }
  }
  drain_pending();
  if (wake_) wake_();
}

bool MpiBackend::idle() const {
  if (!pending_.empty()) return false;
  if (rank_.pending_incoming() > 0) return false;
  for (const Entry& e : entries_) {
    if (e.kind != Entry::Kind::AmRecv) return false;
  }
  return true;
}

}  // namespace ce
