// End-to-end reliability sublayer shared by both communication-engine
// backends.
//
// The simulated fabric can be configured to drop, duplicate, corrupt, and
// delay messages (net::FaultConfig).  Neither mmpi nor mlci was designed
// for a lossy transport — a lost RTS or CTS deadlocks a rendezvous, a
// duplicated CTS trips protocol asserts.  Instead of teaching both
// libraries loss recovery, this sublayer slots in *below* them as a
// net::LinkShim on every NIC (the role a reliable-connection queue pair
// plays under a real InfiniBand MPI):
//
//   * every outgoing cross-node message gets a per-(src,dst) sequence
//     number and a CRC-32C over header + payload;
//   * the receiver verifies the checksum (NACKing corrupt frames),
//     suppresses duplicates, ACKs every data frame, and only then passes
//     the message up to the library's deliver handler;
//   * the sender retransmits unACKed messages under exponential backoff
//     with jitter and a bounded retry budget; exhausting the budget
//     surfaces as a recoverable ce::Status::ErrTimeout through an error
//     callback instead of an abort.
//
// With ReliableConfig::enabled == false the shim is never installed and
// the wire path is untouched.  The same Backoff policy object is reused by
// the LCI backend to pace its Retry-parked operations.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "ce/comm_engine.hpp"
#include "des/engine.hpp"
#include "des/rng.hpp"
#include "net/fabric.hpp"

namespace ce {

/// CRC-32C (Castagnoli), bitwise-reflected, software table.  `seed` chains
/// multi-buffer checksums (pass a previous result).
std::uint32_t crc32c(const void* data, std::size_t n, std::uint32_t seed = 0);

/// The checksum the reliability sublayer stores in WireHeader::rel_crc:
/// CRC-32C over every load-bearing header field plus the payload bytes.
std::uint32_t message_crc(const net::Message& m);

/// Exponential backoff with multiplicative jitter: delay(i) =
/// base * factor^i * uniform[1, 1+jitter), capped at `cap`.  Shared by the
/// retransmission timers and the LCI backend's Retry pacing.
struct Backoff {
  des::Duration base = 1 * des::kMicrosecond;
  des::Duration cap = 64 * des::kMicrosecond;
  double factor = 2.0;
  double jitter = 0.25;

  /// Delay for the next attempt; grows the internal attempt count.
  des::Duration next(des::Rng& rng);
  void reset() { attempt_ = 0; }
  int attempts() const { return attempt_; }

 private:
  int attempt_ = 0;
};

/// Aggregate sublayer counters (also exported via obs::Recorder "ce.rel.*").
struct ReliableStats {
  std::uint64_t data_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t nacks_sent = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t corrupt_discarded = 0;
  std::uint64_t peer_dead_fails = 0;  ///< sends failed fast with ErrPeerDead
  std::uint64_t unhandled_errors = 0; ///< give-ups with no callback installed
};

/// Delivery-failure notification: the sublayer gave up on (src -> dst,
/// seq) — `status` is ErrTimeout after the retry budget, or ErrPeerDead
/// when the destination was declared dead (seq 0 for a send that never
/// entered the sequence space).
using DeliveryErrorCallback = std::function<void(
    net::NodeId src, net::NodeId dst, std::uint64_t seq, Status status)>;

class ReliableDomain;

/// One node's half of the sublayer: sender-side retransmission state and
/// receiver-side dedup/ACK state, installed as the NIC's LinkShim.
class ReliableChannel final : public net::LinkShim {
 public:
  ReliableChannel(ReliableDomain& domain, net::Fabric& fabric,
                  net::NodeId node);
  ~ReliableChannel() override;

  void shim_send(net::Message&& m, std::function<void()> on_sent) override;
  bool shim_deliver(net::Message& m) override;

  /// Cancels every pending retransmission timer (domain teardown).
  void cancel_timers();

  /// The destination was confirmed dead: cancel its RTO timers, fail
  /// every outstanding message to it with ErrPeerDead, and fast-fail
  /// subsequent sends to it until peer_alive().
  void peer_dead(net::NodeId peer);
  /// Ground-truth restart of `peer`: resume normal transmission.  The
  /// per-peer sequence spaces continue where they left off.
  void peer_alive(net::NodeId peer);

  std::size_t unacked() const;

 private:
  // Tracked-send state lives in a per-channel slab pool, SoA-split so
  // the RTO/timer machinery (fired on every timeout, ACK, and NACK)
  // walks a dense hot column and never drags the ~100-byte
  // retransmission Message copies through the cache; those sit in a
  // parallel cold column touched only when a frame actually goes back
  // on the wire.  Slots are free-list recycled — the former
  // std::map<seq, Unacked> cost a node allocation per tracked send,
  // which at fig5 scale was the last per-message allocation left on the
  // hot path.
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  struct UnackedHot {
    des::Time first_sent = 0;
    std::uint32_t attempts = 1;  ///< transmissions so far
    des::Duration rto = 0;       ///< current timeout
    des::Duration rto_cap = 0;   ///< per-message cap (size-dependent)
    // RTO timer handle; lives on the owning node's DES shard so a
    // node's retransmission state stays in that node's event slab.
    des::ShardedEventQueue::Id timer;
  };
  /// One entry of a peer's send window: the tracked seq and its slab
  /// slot.  Windows stay sorted for free — seqs are assigned
  /// monotonically per peer, so tracking is a push_back and lookup is a
  /// binary search over a few in-flight entries.
  struct SeqSlot {
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct PeerRecv {
    std::uint64_t cum = 0;            ///< all seq <= cum seen
    std::set<std::uint64_t> ahead;    ///< out-of-order seqs > cum
  };

  std::uint32_t slab_acquire();
  void slab_release(std::uint32_t slot);
  /// Index of `seq` in a peer's window, or SIZE_MAX when not tracked.
  static std::size_t window_find(const std::vector<SeqSlot>& w,
                                 std::uint64_t seq);

  void transmit(net::NodeId dst, std::uint64_t seq,
                std::function<void()> on_sent);
  void arm_timer(net::NodeId dst, std::uint64_t seq);
  void on_timer(net::NodeId dst, std::uint64_t seq);
  /// Shared RTO-expiry logic: retransmit (or give up) for (dst, seq).
  /// Reached from a fired timer (on_timer) or a NACK (timer still
  /// pending — arm_timer then reschedules it in place).
  void expire(net::NodeId dst, std::uint64_t seq);
  void send_control(net::NodeId dst, std::uint16_t kind, std::uint64_t seq);
  void on_control(const net::Message& m);
  bool note_received(net::NodeId src, std::uint64_t seq);  ///< false = dup

  ReliableDomain& domain_;
  net::Fabric& fabric_;
  des::Engine& eng_;
  net::NodeId node_;
  des::Rng rng_;
  std::vector<std::uint64_t> next_seq_;              ///< per peer
  std::vector<std::vector<SeqSlot>> unacked_;        ///< per peer, seq-sorted
  std::vector<UnackedHot> slab_hot_;         ///< RTO/timer column
  std::vector<net::Message> slab_msg_;       ///< retransmission-copy column
  std::vector<std::uint32_t> slab_next_free_;
  std::uint32_t slab_free_ = kNoSlot;
  std::vector<PeerRecv> recv_;                       ///< per peer
  std::vector<bool> peer_dead_;                      ///< fast-fail sends
  std::vector<bool> err_logged_;  ///< once-per-peer unhandled-error log
};

/// Owns one ReliableChannel per node and installs them as NIC shims;
/// uninstalls on destruction.  Holds the shared config, stats, recorder
/// hookup, and the error callback.
class ReliableDomain {
 public:
  ReliableDomain(net::Fabric& fabric, ReliableConfig cfg);
  ~ReliableDomain();
  ReliableDomain(const ReliableDomain&) = delete;
  ReliableDomain& operator=(const ReliableDomain&) = delete;

  const ReliableConfig& config() const { return cfg_; }
  const ReliableStats& stats() const { return stats_; }

  /// Invoked (from event context) when a message exhausts its retry
  /// budget or its destination is declared dead.  Default: counted only.
  void set_error_callback(DeliveryErrorCallback cb) { on_error_ = std::move(cb); }

  /// Invoked on every retry-budget exhaustion, independently of the
  /// error callback: an ErrTimeout is a strong hint the peer may be down,
  /// so CommWorld wires this into the failure detector's suspect_hint.
  using SuspicionHook = std::function<void(net::NodeId src, net::NodeId dst)>;
  void set_suspicion_hook(SuspicionHook fn) { on_suspect_ = std::move(fn); }

  /// Marks `peer` dead / alive on every channel (see
  /// ReliableChannel::peer_dead).
  void peer_dead(net::NodeId peer);
  void peer_alive(net::NodeId peer);

  /// Metrics sink for ce.rel.* counters and retransmit-latency histograms
  /// (null detaches; not owned).
  void set_recorder(obs::Recorder* rec) { rec_ = rec; }

  /// Messages currently awaiting an ACK, over all nodes (quiescence
  /// check for drivers and tests).
  std::size_t unacked() const;

  /// Messages `node` currently has awaiting an ACK (its send window /
  /// RTO-pending count — every unacked message holds a pending RTO
  /// timer).  O(peers) per call; used by the timeline sampler.
  std::size_t unacked(net::NodeId node) const;

 private:
  friend class ReliableChannel;

  net::Fabric& fabric_;
  ReliableConfig cfg_;
  ReliableStats stats_;
  obs::Recorder* rec_ = nullptr;
  DeliveryErrorCallback on_error_;
  SuspicionHook on_suspect_;
  std::vector<std::unique_ptr<ReliableChannel>> channels_;
};

}  // namespace ce
