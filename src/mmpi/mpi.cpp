#include "mmpi/mpi.hpp"

#include <cassert>
#include <cstring>

namespace mmpi {
namespace {

// WireHeader::kind values for the mmpi protocol.
enum : std::uint16_t {
  kEager = 1,  // payload inline
  kRts = 2,    // rendezvous ready-to-send
  kCts = 3,    // rendezvous clear-to-send
  kData = 4,   // rendezvous bulk data (modeled RDMA write)
};

}  // namespace

Rank::~Rank() = default;

Mpi::Mpi(net::Fabric& fabric, Config config)
    : fabric_(fabric), cfg_(config) {
  const int n = fabric.num_nodes();
  ranks_.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    ranks_.emplace_back(std::unique_ptr<Rank>(new Rank(*this, r)));
    fabric.nic(r).set_deliver_handler([this, r](net::Message&& m) {
      if (m.hdr.proto == net::kProtoMpi) rank(r).deliver(std::move(m));
    });
  }
}

Mpi::~Mpi() {
  for (int r = 0; r < size(); ++r) {
    fabric_.nic(r).set_deliver_handler(nullptr);
  }
}

int Rank::size() const { return mpi_.size(); }

des::Engine& Rank::engine() { return mpi_.fabric().engine(); }

std::uint64_t Rank::next_seq(int dst) { return send_seq_[dst]++; }

void Rank::charge_thread_switch() {
  des::SimThread* caller = des::SimThread::current();
  if (caller == nullptr) return;  // test-driver calls model no CPU
  if (last_caller_ != nullptr && caller != last_caller_) {
    des::charge_current(mpi_.cfg_.thread_switch_cost);
  }
  last_caller_ = caller;
}

void Rank::deliver(net::Message&& m) {
  // Hardware queue: no software cost until some MPI call progresses.
  incoming_.push_back(std::move(m));
  notify();
}

// ---------------------------------------------------------------------------
// Sending

void Rank::send(const void* buf, std::size_t bytes, int dst, Tag tag) {
  assert(bytes <= mpi_.cfg_.eager_threshold &&
         "blocking mmpi send() supports only eager-size messages");
  const Config& cfg = mpi_.cfg_;
  charge_thread_switch();
  des::charge_current(cfg.call_overhead);
  if (buf != nullptr && bytes > 0) {
    des::charge_current(des::transfer_time(bytes, cfg.copy_bandwidth_Bps));
  }
  net::Message m;
  m.src = rank_;
  m.dst = dst;
  m.wire_bytes = cfg.header_bytes + bytes;
  m.hdr.proto = net::kProtoMpi;
  m.hdr.kind = kEager;
  m.hdr.tag = tag;
  m.hdr.seq = next_seq(dst);
  m.hdr.size = bytes;
  if (buf != nullptr && bytes > 0) m.payload = net::make_payload(buf, bytes);
  mpi_.fabric_.nic(rank_).send(std::move(m));
}

RequestId Rank::isend(const void* buf, std::size_t bytes, int dst, Tag tag) {
  const Config& cfg = mpi_.cfg_;
  if (bytes <= cfg.eager_threshold) {
    // Eager: buffered semantics, locally complete at the call.
    send(buf, bytes, dst, tag);
    auto req = std::make_unique<Request>();
    req->kind = Request::Kind::Send;
    req->state = Request::State::Complete;
    req->dst = dst;
    req->tag = tag;
    req->bytes = bytes;
    req->id = mpi_.next_request_id_++;
    const RequestId id = req->id;
    requests_.emplace(id, std::move(req));
    return id;
  }

  charge_thread_switch();
  des::charge_current(cfg.call_overhead + cfg.rendezvous_cost);
  auto req = std::make_unique<Request>();
  req->kind = Request::Kind::Send;
  req->state = Request::State::Active;
  req->sbuf = buf;
  req->bytes = bytes;
  req->dst = dst;
  req->tag = tag;
  req->id = mpi_.next_request_id_++;
  if (buf != nullptr) req->staged = net::make_payload(buf, bytes);
  const RequestId id = req->id;

  net::Message rts;
  rts.src = rank_;
  rts.dst = dst;
  rts.wire_bytes = cfg.header_bytes;
  rts.hdr.proto = net::kProtoMpi;
  rts.hdr.kind = kRts;
  rts.hdr.tag = tag;
  rts.hdr.seq = next_seq(dst);
  rts.hdr.size = bytes;
  rts.hdr.imm[0] = id;
  mpi_.fabric_.nic(rank_).send(std::move(rts));

  requests_.emplace(id, std::move(req));
  return id;
}

// ---------------------------------------------------------------------------
// Receiving

RequestId Rank::irecv(void* buf, std::size_t capacity, int src, Tag tag) {
  des::charge_current(mpi_.cfg_.call_overhead);
  auto req = std::make_unique<Request>();
  req->kind = Request::Kind::Recv;
  req->state = Request::State::Active;
  req->rbuf = buf;
  req->capacity = capacity;
  req->src = src;
  req->tag = tag;
  req->id = mpi_.next_request_id_++;
  const RequestId id = req->id;
  requests_.emplace(id, std::move(req));
  post_recv(id);
  return id;
}

RequestId Rank::recv_init(void* buf, std::size_t capacity, int src, Tag tag) {
  des::charge_current(mpi_.cfg_.call_overhead);
  auto req = std::make_unique<Request>();
  req->kind = Request::Kind::Recv;
  req->state = Request::State::Inactive;
  req->persistent = true;
  req->rbuf = buf;
  req->capacity = capacity;
  req->src = src;
  req->tag = tag;
  req->id = mpi_.next_request_id_++;
  const RequestId id = req->id;
  requests_.emplace(id, std::move(req));
  return id;
}

RequestId Rank::send_init(const void* buf, std::size_t bytes, int dst,
                          Tag tag) {
  des::charge_current(mpi_.cfg_.call_overhead);
  auto req = std::make_unique<Request>();
  req->kind = Request::Kind::Send;
  req->state = Request::State::Inactive;
  req->persistent = true;
  req->sbuf = buf;
  req->bytes = bytes;
  req->dst = dst;
  req->tag = tag;
  req->id = mpi_.next_request_id_++;
  const RequestId id = req->id;
  requests_.emplace(id, std::move(req));
  return id;
}

void Rank::start(RequestId id) {
  des::charge_current(mpi_.cfg_.call_overhead);
  auto it = requests_.find(id);
  assert(it != requests_.end() && "start() on unknown request");
  Request& r = *it->second;
  assert(r.persistent && r.state == Request::State::Inactive);
  r.state = Request::State::Active;
  if (r.kind == Request::Kind::Recv) {
    post_recv(id);
  } else {
    // Persistent send: re-issue as an eager or rendezvous send.
    if (r.bytes <= mpi_.cfg_.eager_threshold) {
      send(r.sbuf, r.bytes, r.dst, r.tag);
      r.state = Request::State::Complete;
    } else {
      const RequestId tmp = isend(r.sbuf, r.bytes, r.dst, r.tag);
      // Track the underlying transfer by aliasing: completion of the
      // temporary marks the persistent request complete.
      requests_.at(tmp)->imm_alias = id;
    }
  }
}

void Rank::post_recv(RequestId id) {
  Request& r = *requests_.at(id);
  const Config& cfg = mpi_.cfg_;

  // First, search the unexpected queue (FIFO preserves MPI's
  // non-overtaking matching order).
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    des::charge_current(cfg.match_scan_cost);
    net::Message& m = *it;
    const bool src_ok = (r.src == kAnySource || r.src == m.src);
    if (!src_ok || r.tag != m.hdr.tag) continue;
    if (m.hdr.kind == kEager) {
      complete_recv_from_message(r, m);
      unexpected_.erase(it);
      return;
    }
    if (m.hdr.kind == kRts) {
      net::Message rts = std::move(m);
      unexpected_.erase(it);
      accept_rts(r, rts);
      return;
    }
  }
  posted_recvs_.push_back(id);
}

void Rank::accept_rts(Request& r, net::Message& rts) {
  const Config& cfg = mpi_.cfg_;
  des::charge_current(cfg.rendezvous_cost);
  r.status.source = rts.src;
  r.status.tag = rts.hdr.tag;
  r.status.count = static_cast<std::size_t>(rts.hdr.size);
  net::Message cts;
  cts.src = rank_;
  cts.dst = rts.src;
  cts.wire_bytes = cfg.header_bytes;
  cts.hdr.proto = net::kProtoMpi;
  cts.hdr.kind = kCts;
  cts.hdr.tag = rts.hdr.tag;
  cts.hdr.imm[0] = rts.hdr.imm[0];  // sender's request id
  cts.hdr.imm[1] = r.id;            // our request id (for DATA routing)
  mpi_.fabric_.nic(rank_).send(std::move(cts));
}

void Rank::complete_recv_from_message(Request& r, net::Message& m) {
  const Config& cfg = mpi_.cfg_;
  const auto n = static_cast<std::size_t>(m.hdr.size);
  const std::size_t copied = n < r.capacity ? n : r.capacity;
  if (r.rbuf != nullptr && m.payload != nullptr && copied > 0) {
    des::charge_current(des::transfer_time(copied, cfg.copy_bandwidth_Bps));
    std::memcpy(r.rbuf, m.payload->data(), copied);
  }
  r.status.source = m.src;
  r.status.tag = m.hdr.tag;
  r.status.count = copied;
  r.state = Request::State::Complete;
}

// ---------------------------------------------------------------------------
// Progress

Rank::Request* Rank::find_matching_posted(int src, Tag tag) {
  const Config& cfg = mpi_.cfg_;
  for (auto it = posted_recvs_.begin(); it != posted_recvs_.end(); ++it) {
    des::charge_current(cfg.match_scan_cost);
    Request& r = *requests_.at(*it);
    const bool src_ok = (r.src == kAnySource || r.src == src);
    if (src_ok && r.tag == tag) {
      posted_recvs_.erase(it);
      return &r;
    }
  }
  return nullptr;
}

void Rank::handle_eager(net::Message& m) {
  if (Request* r = find_matching_posted(m.src, m.hdr.tag)) {
    complete_recv_from_message(*r, m);
  } else {
    des::charge_current(mpi_.cfg_.unexpected_cost);
    unexpected_.push_back(std::move(m));
  }
}

void Rank::handle_rts(net::Message& m) {
  if (Request* r = find_matching_posted(m.src, m.hdr.tag)) {
    accept_rts(*r, m);
  } else {
    des::charge_current(mpi_.cfg_.unexpected_cost);
    unexpected_.push_back(std::move(m));
  }
}

void Rank::handle_cts(net::Message& m) {
  const Config& cfg = mpi_.cfg_;
  des::charge_current(cfg.rendezvous_cost);
  auto it = requests_.find(m.hdr.imm[0]);
  assert(it != requests_.end() && "CTS for unknown send request");
  Request& r = *it->second;
  net::Message data;
  data.src = rank_;
  data.dst = m.src;
  data.wire_bytes = cfg.header_bytes + r.bytes;
  data.hdr.proto = net::kProtoMpi;
  data.hdr.kind = kData;
  data.hdr.tag = r.tag;
  data.hdr.size = r.bytes;
  data.hdr.imm[0] = m.hdr.imm[1];  // receiver's request id
  data.payload = r.staged;
  // Local completion when the last byte leaves the NIC (RDMA semantics:
  // the send buffer is then reusable).  The state flip is a hardware CQ
  // write; the completion is *observed* at the next test/testsome.
  const RequestId sid = r.id;
  mpi_.fabric_.nic(rank_).send(std::move(data), [this, sid]() {
    auto sit = requests_.find(sid);
    if (sit == requests_.end()) return;
    sit->second->state = Request::State::Complete;
    if (sit->second->imm_alias != kNullRequest) {
      // Persistent-send alias: complete the persistent request too and
      // drop the temporary.
      auto pit = requests_.find(sit->second->imm_alias);
      if (pit != requests_.end()) {
        pit->second->state = Request::State::Complete;
      }
      requests_.erase(sit);
    }
    notify();
  });
}

void Rank::handle_data(net::Message& m) {
  auto it = requests_.find(m.hdr.imm[0]);
  assert(it != requests_.end() && "DATA for unknown recv request");
  Request& r = *it->second;
  // RDMA write: payload lands without a CPU copy; just complete.
  if (r.rbuf != nullptr && m.payload != nullptr) {
    const auto n = static_cast<std::size_t>(m.hdr.size);
    const std::size_t copied = n < r.capacity ? n : r.capacity;
    std::memcpy(r.rbuf, m.payload->data(), copied);
    r.status.count = copied;
  } else {
    r.status.count = static_cast<std::size_t>(m.hdr.size);
  }
  r.status.source = m.src;
  r.status.tag = m.hdr.tag;
  r.state = Request::State::Complete;
}

void Rank::progress() {
  while (!incoming_.empty()) {
    net::Message m = std::move(incoming_.front());
    incoming_.pop_front();
    switch (m.hdr.kind) {
      case kEager:
        handle_eager(m);
        break;
      case kRts:
        handle_rts(m);
        break;
      case kCts:
        handle_cts(m);
        break;
      case kData:
        handle_data(m);
        break;
      default:
        assert(false && "unknown mmpi message kind");
    }
  }
}

// ---------------------------------------------------------------------------
// Completion

Rank::TestsomeResult Rank::testsome(std::span<const RequestId> reqs) {
  const Config& cfg = mpi_.cfg_;
  charge_thread_switch();
  des::charge_current(cfg.call_overhead);
  progress();
  TestsomeResult out;
  des::charge_current(static_cast<des::Duration>(reqs.size()) *
                      cfg.request_scan_cost);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const RequestId id = reqs[i];
    if (id == kNullRequest) continue;
    auto it = requests_.find(id);
    if (it == requests_.end()) continue;
    Request& r = *it->second;
    if (r.state != Request::State::Complete) continue;
    out.indices.push_back(i);
    out.statuses.push_back(r.status);
    if (r.persistent) {
      r.state = Request::State::Inactive;
    } else {
      requests_.erase(it);
    }
  }
  return out;
}

bool Rank::test(RequestId id, MpiStatus* st) {
  const Config& cfg = mpi_.cfg_;
  charge_thread_switch();
  des::charge_current(cfg.call_overhead + cfg.request_scan_cost);
  progress();
  auto it = requests_.find(id);
  assert(it != requests_.end() && "test() on unknown request");
  Request& r = *it->second;
  if (r.state != Request::State::Complete) return false;
  if (st != nullptr) *st = r.status;
  if (r.persistent) {
    r.state = Request::State::Inactive;
  } else {
    requests_.erase(it);
  }
  return true;
}

void Rank::poll() {
  charge_thread_switch();
  des::charge_current(mpi_.cfg_.call_overhead);
  progress();
}

void Rank::free_request(RequestId id) {
  auto it = requests_.find(id);
  if (it == requests_.end()) return;
  assert(it->second->state != Request::State::Active &&
         "freeing an active request");
  requests_.erase(it);
}

void Rank::cancel(RequestId id) {
  auto it = requests_.find(id);
  if (it == requests_.end()) return;
  for (auto pit = posted_recvs_.begin(); pit != posted_recvs_.end(); ++pit) {
    if (*pit == id) {
      posted_recvs_.erase(pit);
      break;
    }
  }
  requests_.erase(it);
}

std::size_t Rank::purge_peer(int peer) {
  // Queued traffic from the dead peer will never be matched: flush it
  // from the hardware and unexpected queues before touching requests so
  // no handler resurrects it.
  std::erase_if(incoming_, [peer](const net::Message& m) {
    return m.src == peer;
  });
  std::erase_if(unexpected_, [peer](const net::Message& m) {
    return m.src == peer;
  });

  std::vector<RequestId> doomed;
  for (const auto& [id, req] : requests_) {
    if (req->state != Request::State::Active) continue;
    if (req->kind == Request::Kind::Send && req->dst == peer) {
      doomed.push_back(id);
    } else if (req->kind == Request::Kind::Recv && req->src == peer) {
      // Wildcard receives stay posted — another rank can still match.
      doomed.push_back(id);
    }
  }
  for (const RequestId id : doomed) cancel(id);
  return doomed.size();
}

}  // namespace mmpi
