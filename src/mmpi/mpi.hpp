// mmpi — a miniature MPI implementation over the simulated fabric.
//
// Implements the MPI subset the PaRSEC MPI backend (paper §4.2) uses:
// two-sided nonblocking sends/receives, persistent requests
// (MPI_Recv_init / MPI_Start), MPI_Testsome over a request array, wildcard
// MPI_ANY_SOURCE, blocking eager MPI_Send, tag matching with posted- and
// unexpected-message queues, an eager/rendezvous protocol switch, and the
// mpi_assert_allow_overtaking info key.
//
// Progress semantics mirror real MPI: the library only progresses inside
// MPI calls.  Arriving fabric messages queue in a per-rank hardware queue;
// they are matched (and their CPU costs paid) only when some thread on that
// rank enters an MPI call that polls.  This is the property the paper's
// §4.3 identifies as a latency bottleneck — while the communication thread
// executes a long callback, nothing is matched.
//
// Software overheads are explicit model parameters (Config) charged to the
// calling simulated thread via des::charge_current.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "des/sim_thread.hpp"
#include "des/time.hpp"
#include "net/fabric.hpp"

namespace mmpi {

/// Wildcard source rank.
inline constexpr int kAnySource = -1;

using Tag = std::uint64_t;
using RequestId = std::uint64_t;
inline constexpr RequestId kNullRequest = 0;

struct Config {
  /// Messages at or below this size use the eager protocol.
  std::size_t eager_threshold = 8192;

  /// mpi_assert_allow_overtaking: PaRSEC sets this because it never relies
  /// on MPI message ordering.  Recorded and queryable; matching in this
  /// implementation is FIFO either way (a valid behaviour for both modes).
  bool allow_overtaking = false;

  // --- software overhead model (charged to the calling sim thread) ---
  des::Duration call_overhead = 1500;        ///< fixed cost of any MPI call
  des::Duration request_scan_cost = 100;     ///< per request examined by testsome
  des::Duration match_scan_cost = 150;       ///< per queue element traversed
  des::Duration unexpected_cost = 800;      ///< per unexpected message queued
  des::Duration rendezvous_cost = 800;      ///< per RTS/CTS handled
  double copy_bandwidth_Bps = 8e9;          ///< eager-buffer memcpy rate

  /// Thread-contention model (§4.3 / [24]): MPI implementations guard
  /// their internals with a global lock; when the calling thread differs
  /// from the previous caller, the lock (and its cache lines) must
  /// migrate.  This is the cost that makes multithreaded ACTIVATE sends
  /// "neutral or negative" for MPI (§6.4.3).
  des::Duration thread_switch_cost = 6 * des::kMicrosecond;

  /// Extra wire bytes per message for transport headers.
  std::uint64_t header_bytes = 64;
};

struct MpiStatus {
  int source = kAnySource;
  Tag tag = 0;
  std::size_t count = 0;
};

class Mpi;

/// Per-rank MPI library handle.  All calls must happen "on" the owning
/// simulated node; costs are charged to the calling SimThread.
class Rank {
 public:
  ~Rank();

  int rank() const { return rank_; }
  int size() const;

  // --- point-to-point -------------------------------------------------
  /// Blocking send.  Only valid for eager-size messages (the PaRSEC MPI
  /// backend uses MPI_Send exclusively for active messages, which are
  /// always eager-size); completes locally at the call.
  void send(const void* buf, std::size_t bytes, int dst, Tag tag);

  /// Nonblocking send.  `buf` may be null for virtual payloads.
  RequestId isend(const void* buf, std::size_t bytes, int dst, Tag tag);

  /// Nonblocking receive.  `buf` may be null (virtual); `src` may be
  /// kAnySource.
  RequestId irecv(void* buf, std::size_t capacity, int src, Tag tag);

  // --- persistent requests ---------------------------------------------
  RequestId recv_init(void* buf, std::size_t capacity, int src, Tag tag);
  RequestId send_init(const void* buf, std::size_t bytes, int dst, Tag tag);
  void start(RequestId req);

  // --- completion -------------------------------------------------------
  struct TestsomeResult {
    std::vector<std::size_t> indices;  ///< positions in the passed array
    std::vector<MpiStatus> statuses;   ///< parallel to indices
  };

  /// MPI_Testsome: progresses the library, then reports completed requests
  /// among `reqs` (kNullRequest entries are skipped).  Completed persistent
  /// requests become inactive (restart with start()); completed ordinary
  /// requests are freed and their ids invalidated.
  TestsomeResult testsome(std::span<const RequestId> reqs);

  /// MPI_Test on one request; on completion fills `st` (may be null) and,
  /// for non-persistent requests, frees the request.
  bool test(RequestId req, MpiStatus* st);

  /// Frees an inactive persistent request.
  void free_request(RequestId req);

  /// MPI_Cancel + MPI_Request_free in one step: drops a request even if
  /// it is still Active (a transfer wedged on a dead peer will never
  /// complete, so normal completion rules cannot apply).  Unknown ids are
  /// ignored.  Posted-receive queue entries for the request are removed.
  void cancel(RequestId req);

  /// Drops every request wedged on `peer` (Active sends to it, Active
  /// receives specifically from it) plus all queued traffic from it
  /// (hardware queue and unexpected-message queue).  Used by the ce layer
  /// when the failure detector confirms `peer` dead.  Returns the number
  /// of requests cancelled.
  std::size_t purge_peer(int peer);

  /// Progress-only call (like MPI_Testsome on an empty array): drains and
  /// matches the hardware queue without completing any caller request.
  void poll();

  /// Number of messages sitting in the hardware queue, not yet matched
  /// (visible for tests and instrumentation).
  std::size_t pending_incoming() const { return incoming_.size(); }

  /// The simulation engine driving this rank's fabric (for timestamps and
  /// tracing in layers that only hold a Rank).
  des::Engine& engine();

  /// Registers a hook invoked whenever hardware activity occurs for this
  /// rank (message arrival, local send completion).  Polling threads use
  /// it to park between MPI calls without missing events.  The hook runs
  /// in event context — it must only schedule work, not call back into
  /// the library.
  void set_event_notifier(std::function<void()> fn) {
    notifier_ = std::move(fn);
  }

 private:
  friend class Mpi;
  Rank(Mpi& mpi, int rank) : mpi_(mpi), rank_(rank) {}

  struct Request {
    enum class Kind { Send, Recv };
    enum class State { Inactive, Active, Complete };

    Kind kind = Kind::Recv;
    State state = State::Inactive;
    bool persistent = false;

    // Receive parameters.
    void* rbuf = nullptr;
    std::size_t capacity = 0;
    int src = kAnySource;

    // Send parameters.
    const void* sbuf = nullptr;
    std::size_t bytes = 0;
    int dst = -1;
    net::PayloadPtr staged;  ///< payload captured at isend time (rendezvous)

    Tag tag = 0;
    MpiStatus status;
    RequestId id = kNullRequest;
    /// For persistent sends re-issued through isend(): the persistent
    /// request whose completion mirrors this temporary one.
    RequestId imm_alias = kNullRequest;
  };

  void progress();
  void deliver(net::Message&& m);
  void handle_eager(net::Message& m);
  void accept_rts(Request& r, net::Message& rts);
  void handle_rts(net::Message& m);
  void handle_cts(net::Message& m);
  void handle_data(net::Message& m);
  Request* find_matching_posted(int src, Tag tag);
  void complete_recv_from_message(Request& r, net::Message& m);
  void post_recv(RequestId id);
  std::uint64_t next_seq(int dst);

  Mpi& mpi_;
  int rank_;
  std::deque<net::Message> incoming_;       ///< hardware queue
  std::vector<RequestId> posted_recvs_;     ///< posted-receive queue (FIFO)
  std::deque<net::Message> unexpected_;     ///< unexpected-message queue
  std::unordered_map<int, std::uint64_t> send_seq_;
  std::unordered_map<RequestId, std::unique_ptr<Request>> requests_;
  std::function<void()> notifier_;
  des::SimThread* last_caller_ = nullptr;

  void notify() {
    if (notifier_) notifier_();
  }

  /// Charges the global-lock hand-off cost when the calling thread is not
  /// the one that made the previous MPI call on this rank.
  void charge_thread_switch();
};

/// The MPI "job": owns per-rank state and binds to the fabric.
class Mpi {
 public:
  Mpi(net::Fabric& fabric, Config config = {});
  ~Mpi();
  Mpi(const Mpi&) = delete;
  Mpi& operator=(const Mpi&) = delete;

  net::Fabric& fabric() { return fabric_; }
  const Config& config() const { return cfg_; }
  int size() const { return static_cast<int>(ranks_.size()); }
  Rank& rank(int r) { return *ranks_.at(static_cast<std::size_t>(r)); }

  /// Sets the allow_overtaking info key (recorded; see Config).
  void set_allow_overtaking(bool v) { cfg_.allow_overtaking = v; }

 private:
  friend class Rank;

  net::Fabric& fabric_;
  Config cfg_;
  std::vector<std::unique_ptr<Rank>> ranks_;
  RequestId next_request_id_ = 1;
};

}  // namespace mmpi
