#include "amt/node_runtime.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <optional>
#include <string>

#include "obs/flight_recorder.hpp"

namespace amt {

NodeRuntime::NodeRuntime(des::Engine& engine, net::Fabric& fabric, int rank,
                         ce::CommEngine& comm, TaskGraphDef& def,
                         const RuntimeConfig& cfg,
                         const net::GlobalClock& clock, FaultState* ft)
    : eng_(engine), fabric_(fabric), rank_(rank), comm_(comm), def_(def),
      cfg_(cfg), clock_(clock), ft_(ft) {}

NodeRuntime::~NodeRuntime() {
  if (comm_loop_) comm_loop_->stop();
}

void NodeRuntime::start() {
  // Worker threads.
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int w = 0; w < cfg_.workers; ++w) {
    workers_.push_back(std::make_unique<des::SimThread>(
        eng_, "worker-" + std::to_string(rank_) + "." + std::to_string(w)));
    idle_workers_.push_back(w);
  }

  // Communication thread + poll loop.
  comm_thread_ = std::make_unique<des::SimThread>(
      eng_, "comm-" + std::to_string(rank_));
  comm_loop_ = std::make_unique<des::PollLoop>(
      *comm_thread_, cfg_.comm_loop_cost, [this]() { return comm_body(); });
  comm_.set_wake_callback([this]() { comm_loop_->wake(); });
  comm_loop_->start();

  // The two runtime active messages (§4.1) plus the put r_tag.  The tags
  // are compile-time distinct and the sizes within the backend AM limit,
  // so registration cannot fail here.
  ce::Status reg_st = comm_.tag_reg(
      wire::kTagActivate,
      [](ce::CommEngine&, ce::Tag, const void* msg, std::size_t size,
         int src, void* self) {
        static_cast<NodeRuntime*>(self)->on_activate(msg, size, src);
      },
      this, 12 * 1024);
  assert(reg_st == ce::Status::Ok);
  reg_st = comm_.tag_reg(
      wire::kTagGetData,
      [](ce::CommEngine&, ce::Tag, const void* msg, std::size_t size,
         int src, void* self) {
        static_cast<NodeRuntime*>(self)->on_getdata(msg, size, src);
      },
      this, 256);
  assert(reg_st == ce::Status::Ok);
  reg_st = comm_.tag_reg(
      wire::kTagDataArrived,
      [](ce::CommEngine&, ce::Tag, const void* msg, std::size_t size,
         int src, void* self) {
        static_cast<NodeRuntime*>(self)->on_data_arrived(msg, size, src);
      },
      this, 256);
  assert(reg_st == ce::Status::Ok);
  (void)reg_st;

  // Source tasks.  A source's chain starts at global time zero; the gap
  // until it is scheduled counts as runtime overhead, keeping the
  // critical-path invariant (sums total == finish time) from the start.
  std::vector<TaskKey> initial;
  def_.initial_tasks(rank_, initial);
  for (const TaskKey& t : initial) {
    assert(def_.num_inputs(t) == 0 && "initial task with inputs");
    const des::Time rel_g = charged_global_now();
    PathSums pred;
    pred.overhead = rel_g;
    task_ready(t, {}, pred, rel_g);
  }
}

des::Duration NodeRuntime::worker_busy_time() const {
  des::Duration total = 0;
  for (const auto& w : workers_) total += w->busy_time();
  return total;
}

des::Time NodeRuntime::threads_free_at() const {
  des::Time t = 0;
  for (const auto& w : workers_) t = std::max(t, w->free_at());
  t = std::max(t, comm_thread_->free_at());
  return t;
}

void NodeRuntime::wake_comm() { comm_loop_->wake(); }

// ---------------------------------------------------------------------------
// Scheduling

void NodeRuntime::task_ready(const TaskKey& key,
                             std::vector<DataCopyPtr> inputs,
                             const PathSums& pred, des::Time release_g) {
  if (dead_) return;
  if (ft_ != nullptr) {
    if (ft_->lineage.is_done(key)) {
      ++stats_.dup_completions_suppressed;
      return;
    }
    ft_->lineage.mark_ready(key);
  }
  ReadyTask rt;
  rt.priority = def_.priority(key);
  rt.seq = ready_seq_++;
  rt.key = key;
  rt.inputs = std::move(inputs);
  rt.pred_sums = pred;
  rt.release_g = release_g;
  ready_.push(std::move(rt));
  try_dispatch();
}

void NodeRuntime::try_dispatch() {
  while (!ready_.empty() && !idle_workers_.empty()) {
    // priority_queue has no non-const top-move; copy the small parts and
    // move the heap entry out via const_cast-free pop pattern.
    ReadyTask task = std::move(const_cast<ReadyTask&>(ready_.top()));
    ready_.pop();
    const int w = idle_workers_.back();
    idle_workers_.pop_back();
    auto& worker = *workers_[static_cast<std::size_t>(w)];
    worker.post_work(
        cfg_.scheduler_cost,
        [this, t = std::move(task), w]() mutable {
          run_task(std::move(t), w);
        },
        "task");
  }
}

void NodeRuntime::run_task(ReadyTask&& task, int worker_idx) {
  // Fail-stop: work items queued before the crash still fire (they live
  // on the engine's shared shard), but a dead node does no work.
  if (dead_) return;
  if (ft_ != nullptr && ft_->lineage.is_done(task.key)) {
    // Lost the race with a re-execution elsewhere (possible only after a
    // false-positive death verdict): drop the duplicate run.
    ++stats_.dup_completions_suppressed;
    idle_workers_.push_back(worker_idx);
    try_dispatch();
    return;
  }
  auto& worker = *workers_[static_cast<std::size_t>(worker_idx)];
  RunContext ctx(std::move(task.inputs), def_.num_outputs(task.key));
  std::optional<des::ChargeSpan> span;
  if (eng_.trace_sink() != nullptr) {
    char label[64];
    std::snprintf(label, sizeof label, "T%d(%d,%d,%d)", task.key.cls,
                  task.key.i, task.key.j, task.key.k);
    span.emplace(eng_, label);
  }
  const des::Time start_g = charged_global_now();
  const des::Duration body = def_.execute(task.key, ctx);
  worker.charge(body + cfg_.task_epilogue_cost);
  span.reset();  // the span covers execute + epilogue, not the releases
  ++stats_.tasks_executed;
  obs::FlightRecorder::global().record(
      rank_, obs::FlightKind::TaskDone, eng_.now(), 0,
      TaskKeyHash{}(task.key), stats_.tasks_executed);

  // Critical path: extend the trigger input's chain through this task.
  // The wait between release and body start is runtime overhead (scheduler
  // queue + worker availability); body + epilogue is compute.  The
  // invariant chain.total() == finish_g holds because pred_sums.total()
  // == release_g at every hand-off.
  const des::Time finish_g = charged_global_now();
  PathSums chain = task.pred_sums;
  chain.overhead += start_g - task.release_g;
  chain.compute += finish_g - start_g;
  ++chain.tasks;
  stats_.crit.observe(finish_g, chain, task.key);
  stats_.stages[Stage::TaskStart].add(
      static_cast<double>(start_g - task.release_g));

  task_completed(task.key, ctx, chain);
  idle_workers_.push_back(worker_idx);
  try_dispatch();
}

void NodeRuntime::deliver_local(const Dep& dep, const DataCopyPtr& copy,
                                const PathSums& prod, bool remote,
                                des::Time release_g) {
  if (ft_ != nullptr && ft_->lineage.is_done(dep.task)) {
    // Re-delivery to a task that already ran (recovery re-announce).
    ++stats_.dup_inputs_dropped;
    return;
  }
  auto [it, created] = task_states_.try_emplace(dep.task);
  TaskState& st = it->second;
  if (created) {
    st.remaining = def_.num_inputs(dep.task);
    st.inputs.resize(static_cast<std::size_t>(st.remaining));
    assert(st.remaining > 0);
  }
  auto& slot = st.inputs.at(static_cast<std::size_t>(dep.input));
  if (slot != nullptr) {
    assert(ft_ != nullptr && "input delivered twice");
    ++stats_.dup_inputs_dropped;
    return;
  }
  slot = copy;
  // The latest release is the trigger: its chain gates the task.  The gap
  // between the producer chain's end and this release is communication
  // time when the input crossed the wire, runtime overhead otherwise.  A
  // negative gap means the delivery overlapped the producer's charged
  // compute (messages inject at the uncharged event time); the overlapped
  // portion was not actually on the path, so it comes out of compute.
  if (!st.has_sums || release_g >= st.release_g) {
    PathSums in = prod;
    const des::Duration gap = release_g - in.total();
    if (gap >= 0) {
      (remote ? in.comm : in.overhead) += gap;
    } else {
      in.compute += gap;
    }
    st.in_sums = in;
    st.release_g = release_g;
    st.has_sums = true;
  }
  if (--st.remaining == 0) {
    std::vector<DataCopyPtr> inputs = std::move(st.inputs);
    const TaskKey key = dep.task;
    const PathSums pred = st.in_sums;
    const des::Time rel_g = st.release_g;
    task_states_.erase(it);
    task_ready(key, std::move(inputs), pred, rel_g);
  }
}

void NodeRuntime::task_completed(const TaskKey& key, RunContext& ctx,
                                 const PathSums& chain) {
  if (ft_ != nullptr) {
    if (ft_->lineage.is_done(key)) {
      ++stats_.dup_completions_suppressed;
      return;
    }
    ft_->lineage.mark_done(key);
  }
  const int nout = def_.num_outputs(key);
  for (int f = 0; f < nout; ++f) {
    deps_scratch_.clear();
    def_.successors(key, f, deps_scratch_);
    if (deps_scratch_.empty()) continue;
    const DataCopyPtr& copy = ctx.output(f);
    assert(copy != nullptr && "task did not set an output with successors");

    std::vector<std::int32_t> remote_ranks;
    double remote_prio = 0.0;
    for (const Dep& dep : deps_scratch_) {
      if (ft_ != nullptr && ft_->lineage.is_done(dep.task)) continue;
      const int r = owner_rank(dep.task);
      if (r == rank_) {
        deliver_local(dep, copy, chain, /*remote=*/false,
                      charged_global_now());
      } else {
        if (std::find(remote_ranks.begin(), remote_ranks.end(), r) ==
            remote_ranks.end()) {
          remote_ranks.push_back(r);
        }
        remote_prio = std::max(remote_prio, def_.priority(dep.task));
      }
    }
    if (!remote_ranks.empty()) {
      std::sort(remote_ranks.begin(), remote_ranks.end());
      publish_remote(FlowKey{key, f}, copy, remote_prio,
                     fabric_.local_clock(rank_), chain,
                     std::move(remote_ranks));
    }
  }
}

// ---------------------------------------------------------------------------
// Multicast publication (producer or forwarding node)

void NodeRuntime::publish_remote(const FlowKey& flow, const DataCopyPtr& copy,
                                 double priority, des::Time root_ts,
                                 const PathSums& path,
                                 std::vector<std::int32_t> destinations) {
  // Split the destination list into at most `multicast_arity` children;
  // each child receives a contiguous slice of the remainder to forward.
  const int arity = std::max(1, cfg_.multicast_arity);
  const auto n = static_cast<int>(destinations.size());
  const int children = std::min(arity, n);

  auto [it, created] = outgoing_.try_emplace(flow);
  OutgoingData& out = it->second;
  if (created) {
    out.copy = copy;
    out.expected_gets = children;
  } else {
    // Re-publication (recovery re-announce): serve the extra children
    // from the existing entry.
    assert(ft_ != nullptr && "flow published twice");
    out.expected_gets += children;
  }
  if (ft_ != nullptr) {
    // Keep every published flow re-servable: GET DATA after retirement
    // and recovery re-announces both read this cache.
    ProducedData& pd = produced_cache_[flow];
    pd.copy = copy;
    pd.path = path;
    pd.priority = priority;
  }

  const int rest = n - children;
  int consumed = children;
  for (int c = 0; c < children; ++c) {
    const int share = rest / children + (c < rest % children ? 1 : 0);
    wire::ActivationRecord rec;
    rec.flow = flow;
    rec.size = copy->size;
    rec.src_rank = rank_;
    rec.priority = priority;
    rec.root_ts = root_ts;
    rec.send_ts = fabric_.local_clock(rank_);
    rec.real = copy->bytes != nullptr ? 1 : 0;
    rec.trace = new_ctx(flow);
    rec.path = path;
    rec.subtree.assign(destinations.begin() + consumed,
                       destinations.begin() + consumed + share);
    consumed += share;
    emit_activation(destinations[static_cast<std::size_t>(c)],
                    std::move(rec));
  }
  assert(consumed == n);
}

void NodeRuntime::emit_activation(int dst, wire::ActivationRecord&& rec) {
  ++stats_.activations_sent;
  // Stamps are event times (no pending-charge correction): messages are
  // injected at the current sim time, so charged stamps would run ahead
  // of the wire.  Within-callback CPU is charged, not elapsed — it shows
  // up as wait time of whatever queues behind this thread.
  rec.enqueue_ts = fabric_.local_clock(rank_);
  if (cfg_.mt_activate) {
    // §6.4.3: the worker (or whichever thread completes the flow) sends
    // directly.  No aggregation.
    des::charge_current(cfg_.activate_pack_cost);
    rec.send_ts = fabric_.local_clock(rank_);
    std::vector<wire::ActivationRecord> one;
    one.push_back(std::move(rec));
    send_activate_am(dst, one);
  } else {
    outgoing_activations_[dst].push_back(std::move(rec));
    wake_comm();
  }
}

void NodeRuntime::send_activate_am(
    int dst, const std::vector<wire::ActivationRecord>& records) {
  if (eng_.trace_sink() != nullptr) {
    for (const auto& r : records) {
      des::emit_flow(eng_, "activate", r.trace.span_id, /*begin=*/true);
    }
  }
  const auto buf = wire::pack_activate(records);
  const ce::Status st =
      comm_.send_am(wire::kTagActivate, dst, buf.data(), buf.size());
  assert(st == ce::Status::Ok && "activation batch exceeds AM limit");
  (void)st;
  ++stats_.activate_ams;
}

bool NodeRuntime::flush_activations() {
  bool sent = false;
  for (auto& [dst, records] : outgoing_activations_) {
    while (!records.empty()) {
      // Aggregate as many records as fit under the batch limit (§4.3).
      std::vector<wire::ActivationRecord> batch;
      std::size_t bytes = sizeof(std::uint16_t);
      while (!records.empty() &&
             (batch.empty() ||
              bytes + wire::record_wire_size(records.front()) <=
                  cfg_.am_batch_bytes)) {
        bytes += wire::record_wire_size(records.front());
        des::charge_current(cfg_.activate_pack_cost);
        records.front().send_ts = fabric_.local_clock(rank_);
        batch.push_back(std::move(records.front()));
        records.erase(records.begin());
      }
      send_activate_am(dst, batch);
      sent = true;
    }
  }
  if (sent) {
    std::erase_if(outgoing_activations_,
                  [](const auto& kv) { return kv.second.empty(); });
  }
  return sent;
}

// ---------------------------------------------------------------------------
// Receiving side

void NodeRuntime::on_activate(const void* msg, std::size_t size, int src) {
  (void)src;
  auto records = wire::unpack_activate(msg, size);
  for (auto& rec : records) {
    // One sub-span per aggregated record: this is the per-record work that
    // makes the ACTIVATE callback block progress on the MPI backend (§4.3).
    std::optional<des::ChargeSpan> span;
    if (eng_.trace_sink() != nullptr) span.emplace(eng_, "activate.rec");
    const des::Time reached_ts = fabric_.local_clock(rank_);
    des::emit_flow(eng_, "activate", rec.trace.span_id, /*begin=*/false);
    des::charge_current(cfg_.activate_unpack_cost);
    PendingFetch pf;
    deps_scratch_.clear();
    def_.successors(rec.flow.producer, rec.flow.flow, deps_scratch_);
    double prio = rec.priority;
    for (const Dep& dep : deps_scratch_) {
      if (owner_rank(dep.task) != rank_) continue;
      if (ft_ != nullptr && ft_->lineage.is_done(dep.task)) continue;
      pf.local_deps.push_back(dep);
      prio = std::max(prio, def_.priority(dep.task));
    }
    // Iterating descendants is the expensive part of the callback (§4.3).
    des::charge_current(static_cast<des::Duration>(pf.local_deps.size()) *
                        cfg_.activate_per_dep_cost);
    pf.fetch_priority = prio;
    pf.reached_ts = reached_ts;
    pf.activated_ts = fabric_.local_clock(rank_);
    pf.record = std::move(rec);

    if (pf.record.size == 0 && pf.record.subtree.empty()) {
      // Control-only dependency: nothing to fetch; release immediately.
      // The lifecycle ends at activation, so the latency endpoint and the
      // last e2e stage are the activation-processed stamp; the fetch and
      // transfer stages contribute zero samples, keeping stage counts and
      // the telescoping sum aligned with the e2e histogram.
      const des::Time end_l = pf.activated_ts;
      const des::Time end_g = clock_.to_global(rank_, end_l);
      const des::Time hop_g =
          clock_.to_global(pf.record.src_rank, pf.record.send_ts);
      const int root = owner_rank(pf.record.flow.producer);
      const des::Time root_g = clock_.to_global(root, pf.record.root_ts);
      stats_.latency.add(static_cast<double>(end_g - hop_g),
                         static_cast<double>(end_g - root_g));
      ++stats_.data_arrivals;
      record_stages(pf.record, clock_.to_global(rank_, pf.reached_ts),
                    end_g, end_g, end_g, end_g);
      const des::Time rel0 = charged_local_now();
      des::charge_current(
          static_cast<des::Duration>(pf.local_deps.size()) *
          cfg_.release_per_dep_cost);
      stats_.stages[Stage::Release].add(
          static_cast<double>(charged_local_now() - rel0));
      auto empty = DataCopy::virt(0);
      for (const Dep& dep : pf.local_deps) {
        deliver_local(dep, empty, pf.record.path, /*remote=*/true, end_g);
      }
      continue;
    }

    const FlowKey flow = pf.record.flow;
    if (ft_ != nullptr && (pending_.count(flow) != 0 ||
                           (pf.local_deps.empty() &&
                            pf.record.subtree.empty()))) {
      // Duplicate of an in-flight fetch, or a record whose consumers all
      // completed meanwhile — both arise only from recovery re-announces.
      ++stats_.stale_activations;
      continue;
    }
    const auto [it, created] = pending_.emplace(flow, std::move(pf));
    assert(created && "duplicate activation for flow");
    (void)it;
    fetch_queue_.push(FetchOrder{prio, fetch_seq_++, flow});
    if (inflight_fetches_ >= cfg_.max_inflight_fetches) {
      ++stats_.getdata_deferred;
    }
  }
  issue_fetches();
}

bool NodeRuntime::issue_fetches() {
  bool issued = false;
  while (inflight_fetches_ < cfg_.max_inflight_fetches &&
         !fetch_queue_.empty()) {
    const FetchOrder fo = fetch_queue_.top();
    fetch_queue_.pop();
    auto it = pending_.find(fo.flow);
    if (ft_ != nullptr && (it == pending_.end() || it->second.requested)) {
      continue;  // entry purged (dead server) or superseded; skip
    }
    assert(it != pending_.end());
    PendingFetch& pf = it->second;
    assert(!pf.requested);
    pf.requested = true;
    pf.buffer = pf.record.real != 0
                    ? DataCopy::real(static_cast<std::size_t>(pf.record.size))
                    : DataCopy::virt(static_cast<std::size_t>(pf.record.size));
    wire::GetDataMsg g;
    g.flow = fo.flow;
    g.rbase = pf.buffer->bytes
                  ? reinterpret_cast<std::uint64_t>(pf.buffer->bytes->data())
                  : 0;
    g.rsize = pf.record.size;
    des::charge_current(cfg_.getdata_handle_cost);
    pf.requested_ts = fabric_.local_clock(rank_);
    g.send_ts = pf.requested_ts;
    g.trace = new_ctx(fo.flow);
    des::emit_flow(eng_, "getdata", g.trace.span_id, /*begin=*/true);
    const ce::Status st =
        comm_.send_am(wire::kTagGetData, pf.record.src_rank, &g, sizeof g);
    assert(st == ce::Status::Ok);
    (void)st;
    ++stats_.getdata_sent;
    ++inflight_fetches_;
    issued = true;
  }
  return issued;
}

void NodeRuntime::on_getdata(const void* msg, std::size_t size, int src) {
  const auto g = wire::unpack_pod<wire::GetDataMsg>(msg, size);
  // The GET DATA wire stage ends when the handler reaches this request;
  // handling cost and the put transfer belong to the transfer stage.
  const des::Time reached_ts = fabric_.local_clock(rank_);
  des::emit_flow(eng_, "getdata", g.trace.span_id, /*begin=*/false);
  des::charge_current(cfg_.getdata_handle_cost);
  auto it = outgoing_.find(g.flow);
  bool tracked = true;
  DataCopyPtr serving;
  if (it != outgoing_.end()) {
    serving = it->second.copy;
  } else if (ft_ != nullptr) {
    // Retired (or never-published-here) flow requested during recovery:
    // serve it from the produced-data cache, outside the expected-gets
    // bookkeeping.  A miss here means the tile is gone everywhere the
    // requester could reach — fail closed, never abort.
    const auto cit = produced_cache_.find(g.flow);
    if (cit == produced_cache_.end()) {
      ft_->fail(RunStatus::ErrTileLost);
      return;
    }
    serving = cit->second.copy;
    tracked = false;
  } else {
    assert(false && "GET DATA for unknown flow");
    return;
  }

  ce::MemReg lreg{rank_,
                  serving->bytes ? static_cast<void*>(serving->bytes->data())
                                 : nullptr,
                  serving->size};
  ce::MemReg rreg{src, reinterpret_cast<void*>(g.rbase),
                  static_cast<std::size_t>(g.rsize)};
  wire::DataArrivedMsg arrived;
  arrived.flow = g.flow;
  arrived.put_ts = reached_ts;
  arrived.trace = new_ctx(g.flow);
  des::emit_flow(eng_, "data", arrived.trace.span_id, /*begin=*/true);
  const FlowKey flow = g.flow;
  // Keep the copy alive until the put drains locally; then retire the
  // outgoing entry once every direct child has been served.  A cache-only
  // serve (recovery path) carries no retirement bookkeeping.
  DataCopyPtr keepalive = serving;
  comm_.put(
      lreg, 0, rreg, 0, serving->size, src,
      [this, flow, keepalive, tracked](ce::CommEngine&, const ce::MemReg&,
                                       std::ptrdiff_t, const ce::MemReg&,
                                       std::ptrdiff_t, std::size_t, int,
                                       void*) {
        if (!tracked) return;
        auto oit = outgoing_.find(flow);
        if (oit == outgoing_.end()) {
          assert(ft_ != nullptr && "put completion for retired flow");
          return;
        }
        if (++oit->second.gets_served == oit->second.expected_gets) {
          outgoing_.erase(oit);
        }
      },
      nullptr, wire::kTagDataArrived, &arrived, sizeof arrived);
}

void NodeRuntime::on_data_arrived(const void* msg, std::size_t size,
                                  int src) {
  (void)src;
  const auto d = wire::unpack_pod<wire::DataArrivedMsg>(msg, size);
  const des::Time end_l = fabric_.local_clock(rank_);
  const des::Time rel0 = charged_local_now();
  des::emit_flow(eng_, "data", d.trace.span_id, /*begin=*/false);
  des::charge_current(cfg_.data_release_cost);
  auto it = pending_.find(d.flow);
  if (it == pending_.end()) {
    // Possible under recovery: the entry was purged (its server died and a
    // re-announce re-created the fetch elsewhere) or the same flow arrived
    // twice via a redundant re-announce.  Drop tolerantly.
    assert(ft_ != nullptr && "data arrived for unknown flow");
    ++stats_.stale_activations;
    return;
  }
  PendingFetch pf = std::move(it->second);
  pending_.erase(it);
  --inflight_fetches_;
  ++stats_.data_arrivals;

  // Latency accounting (§6.1.3): clock-corrected, per flow.
  const des::Time now_g = clock_.to_global(rank_, end_l);
  const des::Time hop_send_g =
      clock_.to_global(pf.record.src_rank, pf.record.send_ts);
  // root_ts was stamped by the multicast root; we do not know the root's
  // rank directly, but the producer's owner (its lineage home, if re-homed)
  // is it.
  const int root = owner_rank(pf.record.flow.producer);
  const des::Time root_send_g = clock_.to_global(root, pf.record.root_ts);
  stats_.latency.add(static_cast<double>(now_g - hop_send_g),
                     static_cast<double>(now_g - root_send_g));
  stats_.fetch_wait.add(
      static_cast<double>(pf.requested_ts - pf.activated_ts));
  stats_.transfer.add(static_cast<double>(end_l - pf.requested_ts));
  record_stages(pf.record, clock_.to_global(rank_, pf.reached_ts),
                clock_.to_global(rank_, pf.activated_ts),
                clock_.to_global(rank_, pf.requested_ts),
                clock_.to_global(pf.record.src_rank, d.put_ts), now_g);

  des::charge_current(static_cast<des::Duration>(pf.local_deps.size()) *
                      cfg_.release_per_dep_cost);
  stats_.stages[Stage::Release].add(
      static_cast<double>(charged_local_now() - rel0));
  for (const Dep& dep : pf.local_deps) {
    deliver_local(dep, pf.buffer, pf.record.path, /*remote=*/true, now_g);
  }

  if (!pf.record.subtree.empty()) {
    ++stats_.forwards;
    publish_remote(pf.record.flow, pf.buffer, pf.record.priority,
                   pf.record.root_ts, pf.record.path,
                   std::move(pf.record.subtree));
  }
  issue_fetches();
}

// ---------------------------------------------------------------------------
// Tracing / stage instrumentation

des::Time NodeRuntime::charged_local_now() const {
  const des::SimThread* const t = des::SimThread::current();
  return fabric_.local_clock(rank_) + (t ? t->pending_charge() : 0);
}

des::Time NodeRuntime::charged_global_now() const {
  return clock_.to_global(rank_, charged_local_now());
}

wire::TraceCtx NodeRuntime::new_ctx(const FlowKey& flow) {
  wire::TraceCtx ctx;
  // The trace id names the flow: a hash of the root FlowKey, identical on
  // every hop of the multicast tree.  The span id names this message leg;
  // the rank in the high bits keeps ids unique without coordination, and
  // the per-node counter is deterministic (single-threaded simulation).
  ctx.trace_id = static_cast<std::uint64_t>(FlowKeyHash{}(flow));
  ctx.span_id = ((static_cast<std::uint64_t>(rank_) + 1) << 44) | ++span_seq_;
  return ctx;
}

void NodeRuntime::record_stages(const wire::ActivationRecord& rec,
                                des::Time reached_g, des::Time activated_g,
                                des::Time requested_g, des::Time put_g,
                                des::Time end_g) {
  const int root = owner_rank(rec.flow.producer);
  const des::Time root_g = clock_.to_global(root, rec.root_ts);
  const des::Time enq_g = clock_.to_global(rec.src_rank, rec.enqueue_ts);
  const des::Time send_g = clock_.to_global(rec.src_rank, rec.send_ts);
  StageLats& st = stats_.stages;
  st[Stage::Upstream].add(static_cast<double>(enq_g - root_g));
  st[Stage::Queue].add(static_cast<double>(send_g - enq_g));
  st[Stage::ActivateWire].add(static_cast<double>(reached_g - send_g));
  st[Stage::ActivateHandle].add(static_cast<double>(activated_g - reached_g));
  st[Stage::FetchWait].add(static_cast<double>(requested_g - activated_g));
  st[Stage::GetdataWire].add(static_cast<double>(put_g - requested_g));
  st[Stage::Transfer].add(static_cast<double>(end_g - put_g));
}

// ---------------------------------------------------------------------------
// Communication thread body

bool NodeRuntime::comm_body() {
  if (dead_) return false;
  bool worked = false;
  if (!cfg_.mt_activate) worked |= flush_activations();
  worked |= issue_fetches();
  worked |= comm_.progress() > 0;
  return worked;
}

// ---------------------------------------------------------------------------
// Fail-stop recovery hooks

void NodeRuntime::mark_crashed() { dead_ = true; }

void NodeRuntime::purge_peer(int dead_rank) {
  if (dead_) return;
  // Activations queued to the corpse will never be wanted again: the
  // coordinator rearms every not-Done task homed there.
  outgoing_activations_.erase(dead_rank);
  // Fetches served by the corpse can never complete; the coordinator
  // re-announces the data from an alive holder (or rearms the producer).
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.record.src_rank == dead_rank) {
      if (it->second.requested) --inflight_fetches_;
      ++stats_.fetches_abandoned;
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  // Stale fetch_queue_ orders for erased flows are skipped by
  // issue_fetches; freed in-flight slots can admit queued fetches now.
  issue_fetches();
}

void NodeRuntime::inject_source(const TaskKey& key) {
  if (dead_) return;
  const des::Time rel_g = charged_global_now();
  PathSums pred;
  // The whole wait until re-injection is recovery (runtime) overhead;
  // pred.total() == rel_g keeps the critical-path invariant.
  pred.overhead = rel_g;
  task_ready(key, {}, pred, rel_g);
}

bool NodeRuntime::reannounce(const FlowKey& flow, int dst) {
  if (ft_ == nullptr || dead_) return false;
  const auto cit = produced_cache_.find(flow);
  if (cit == produced_cache_.end()) return false;
  const ProducedData& pd = cit->second;
  ++stats_.reannounces;
  if (dst == rank_) {
    // Local consumers: hand the cached copy straight to every
    // still-unfilled input (deliver_local drops filled/Done ones anyway).
    deps_scratch_.clear();
    def_.successors(flow.producer, flow.flow, deps_scratch_);
    const des::Time now_g = charged_global_now();
    for (const Dep& dep : deps_scratch_) {
      if (owner_rank(dep.task) != rank_) continue;
      if (ft_->lineage.is_done(dep.task)) continue;
      if (!input_unfilled(dep.task, dep.input)) continue;
      deliver_local(dep, pd.copy, pd.path, /*remote=*/true, now_g);
    }
    return true;
  }
  // Remote consumer: a fresh single-destination ACTIVATE.  This leg is a
  // new multicast root, so root_ts restarts here — recovery latency is
  // measured from the re-announce, not the lost original.
  wire::ActivationRecord rec;
  rec.flow = flow;
  rec.size = pd.copy->size;
  rec.src_rank = rank_;
  rec.priority = pd.priority;
  rec.root_ts = fabric_.local_clock(rank_);
  rec.send_ts = rec.root_ts;
  rec.real = pd.copy->bytes != nullptr ? 1 : 0;
  rec.trace = new_ctx(flow);
  rec.path = pd.path;
  emit_activation(dst, std::move(rec));
  return true;
}

bool NodeRuntime::input_unfilled(const TaskKey& task, int input) const {
  if (ft_ != nullptr && ft_->lineage.phase(task) != TaskPhase::Pending) {
    return false;  // Ready/Done: the task holds (or held) all its inputs
  }
  const auto it = task_states_.find(task);
  if (it == task_states_.end()) return true;
  return it->second.inputs.at(static_cast<std::size_t>(input)) == nullptr;
}

}  // namespace amt
