// Task-lineage tracking for fail-stop crash recovery.
//
// Every task carries a lineage record: its phase (Pending -> Ready ->
// Done), its execution epoch (bumped each time the task must re-execute),
// and its home rank (the owner-computes rank, overridden when the owner
// dies).  The tracker is coordinator-side global knowledge, the same way
// the shared TaskGraphDef is: in a real deployment it corresponds to the
// replicated metadata a recovery coordinator maintains; in the simulation
// all nodes share one address space, so one instance serves every rank.
//
// The re-owner rule is deterministic: a task re-homes to
// survivors[hash(task) % |survivors|] with the survivor list sorted by
// rank, so any two runs with the same crash schedule re-home identically
// (the property the crash-soak determinism tests pin down).
//
// Epochs never travel on the wire — the ACTIVATE / GET DATA formats are
// untouched, which is what keeps crash-free runs bit-identical to the
// non-tolerant runtime.  Duplicate suppression is purely local: Done
// tasks ignore re-deliveries and refuse re-execution.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "amt/config.hpp"
#include "amt/task_graph.hpp"
#include "amt/task_key.hpp"

namespace amt {

enum class TaskPhase : int { Pending = 0, Ready, Done };

class LineageTracker {
 public:
  explicit LineageTracker(const TaskGraphDef& def) : def_(def) {}

  TaskPhase phase(const TaskKey& t) const {
    const auto it = recs_.find(t);
    return it == recs_.end() ? TaskPhase::Pending : it->second.phase;
  }
  bool is_done(const TaskKey& t) const { return phase(t) == TaskPhase::Done; }

  int epoch(const TaskKey& t) const {
    const auto it = recs_.find(t);
    return it == recs_.end() ? 0 : it->second.epoch;
  }

  /// Effective home rank: the owner-computes rank until re-homed.
  int home(const TaskKey& t) const {
    const auto it = recs_.find(t);
    if (it != recs_.end() && it->second.home >= 0) return it->second.home;
    return def_.rank_of(t);
  }

  void mark_ready(const TaskKey& t) {
    Rec& r = rec(t);
    if (r.phase == TaskPhase::Pending) r.phase = TaskPhase::Ready;
  }

  void mark_done(const TaskKey& t) {
    Rec& r = rec(t);
    if (r.phase != TaskPhase::Done) {
      r.phase = TaskPhase::Done;
      ++done_;
    }
  }

  /// Deterministic re-owner rule (see file comment).  `survivors` must be
  /// sorted ascending.
  static int reowner(const TaskKey& t, const std::vector<int>& survivors) {
    return survivors[TaskKeyHash{}(t) % survivors.size()];
  }

  /// Re-arms a task for re-execution on a survivor: phase back to
  /// Pending, epoch bumped, home re-assigned.  Un-counts a Done task so
  /// the completion predicate stays exact.  Returns the new epoch.
  int rearm(const TaskKey& t, const std::vector<int>& survivors) {
    Rec& r = rec(t);
    if (r.phase == TaskPhase::Done) --done_;
    r.phase = TaskPhase::Pending;
    r.home = reowner(t, survivors);
    return ++r.epoch;
  }

  /// Number of distinct tasks currently Done.
  std::uint64_t done_count() const { return done_; }

  /// Tasks whose phase is Pending (known records only; never-touched tasks
  /// are implicitly Pending and enumerated by the coordinator's graph walk).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [key, r] : recs_) fn(key, r.phase, r.epoch, r.home);
  }

 private:
  struct Rec {
    TaskPhase phase = TaskPhase::Pending;
    std::int32_t epoch = 0;
    std::int32_t home = -1;  ///< -1 = owner-computes default
  };
  Rec& rec(const TaskKey& t) { return recs_[t]; }

  const TaskGraphDef& def_;
  std::unordered_map<TaskKey, Rec, TaskKeyHash> recs_;
  std::uint64_t done_ = 0;
};

/// Shared fault state: owned by the Runtime, consulted by every
/// NodeRuntime through a raw pointer (null when tolerance is off, so the
/// fault-free hot path never even branches on configuration).
struct FaultState {
  explicit FaultState(const TaskGraphDef& def, FaultToleranceConfig c)
      : cfg(c), lineage(def) {}

  FaultToleranceConfig cfg;
  LineageTracker lineage;
  std::vector<char> node_dead;  ///< AMT-confirmed dead (sticky)
  RunStatus status = RunStatus::Ok;

  bool alive(int rank) const {
    return node_dead.empty() ||
           node_dead[static_cast<std::size_t>(rank)] == 0;
  }
  std::vector<int> survivors() const {
    std::vector<int> s;
    for (std::size_t r = 0; r < node_dead.size(); ++r) {
      if (node_dead[r] == 0) s.push_back(static_cast<int>(r));
    }
    return s;  // ascending by construction
  }
  void fail(RunStatus s) {
    if (status == RunStatus::Ok) status = s;
  }
};

}  // namespace amt
