// Task identification for the parameterized task graph.
//
// Like PaRSEC's JDF tasks, a task is identified by its task class plus up
// to three integer parameters, e.g. GEMM(i, j, k).  Keys are trivially
// copyable so they travel inside ACTIVATE / GET DATA messages.
#pragma once

#include <cstdint>
#include <functional>

namespace amt {

struct TaskKey {
  std::int32_t cls = 0;
  std::int32_t i = 0;
  std::int32_t j = 0;
  std::int32_t k = 0;

  friend bool operator==(const TaskKey&, const TaskKey&) = default;
};

/// A dataflow edge endpoint: successor task + which of its inputs.
struct Dep {
  TaskKey task;
  std::int32_t input = 0;
};

/// Identifies one produced datum: (producer task, output flow).
struct FlowKey {
  TaskKey producer;
  std::int32_t flow = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

struct TaskKeyHash {
  std::size_t operator()(const TaskKey& k) const {
    // splitmix-style mix of the four fields.
    std::uint64_t h = static_cast<std::uint32_t>(k.cls);
    h = h * 0x9E3779B97F4A7C15ULL + static_cast<std::uint32_t>(k.i);
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL +
        static_cast<std::uint32_t>(k.j);
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL +
        static_cast<std::uint32_t>(k.k);
    return static_cast<std::size_t>(h ^ (h >> 31));
  }
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& f) const {
    return TaskKeyHash{}(f.producer) * 1099511628211ULL +
           static_cast<std::uint32_t>(f.flow);
  }
};

}  // namespace amt
