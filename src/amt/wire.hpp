// Wire formats for the runtime's control messages.
//
// ACTIVATE carries one or more activation records (aggregation, §4.3).
// Each record describes one produced flow a destination must fetch, plus
// the multicast-subtree ranks that destination is responsible for
// forwarding to once the data lands.  GET DATA carries the requester's
// receive registration; the put's remote-completion callback data carries
// the flow identity back.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

#include "ce/comm_engine.hpp"
#include "des/time.hpp"
#include "amt/config.hpp"
#include "amt/task_key.hpp"

namespace amt::wire {

// AM tags registered by the runtime.
inline constexpr ce::Tag kTagActivate = 0x10;
inline constexpr ce::Tag kTagGetData = 0x11;
inline constexpr ce::Tag kTagDataArrived = 0x12;  ///< put r_tag

/// Causal trace identity carried on every control message of a flow's
/// lifecycle.  `trace_id` names the flow (stable across multicast hops,
/// aggregation, and retransmission — it is derived from the root FlowKey);
/// `span_id` names one message leg and changes at each hop.  Rides inside
/// the runtime's wire payloads, which both CE backends and the reliable
/// sublayer treat as opaque bytes, so retransmissions resend the context
/// intact.
struct TraceCtx {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

struct ActivationRecord {
  FlowKey flow;
  std::uint64_t size = 0;      ///< data bytes to fetch
  std::int32_t src_rank = -1;  ///< who holds the data (tree parent)
  double priority = 0.0;
  des::Time root_ts = 0;       ///< multicast-root send time (local clock)
  des::Time enqueue_ts = 0;    ///< when this hop queued the record (local)
  des::Time send_ts = 0;       ///< this hop's send time (local clock)
  std::uint8_t real = 0;       ///< 1 = data has real bytes (receiver
                               ///< allocates a real buffer)
  TraceCtx trace;              ///< causal identity of this ACTIVATE leg
  PathSums path;               ///< producer-chain sums (critical path)
  std::vector<std::int32_t> subtree;  ///< ranks this destination forwards to
};

namespace detail {

template <typename T>
void append(std::vector<std::byte>& buf, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t off = buf.size();
  buf.resize(off + sizeof v);
  std::memcpy(buf.data() + off, &v, sizeof v);
}

template <typename T>
T read(const std::byte*& p) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v;
  std::memcpy(&v, p, sizeof v);
  p += sizeof v;
  return v;
}

}  // namespace detail

inline std::size_t record_wire_size(const ActivationRecord& r) {
  return sizeof(FlowKey) + sizeof(std::uint64_t) + sizeof(std::int32_t) +
         sizeof(double) + 3 * sizeof(des::Time) + sizeof(std::uint8_t) +
         sizeof(TraceCtx) + sizeof(PathSums) +
         sizeof(std::uint16_t) + r.subtree.size() * sizeof(std::int32_t);
}

inline void pack_record(std::vector<std::byte>& buf,
                        const ActivationRecord& r) {
  detail::append(buf, r.flow);
  detail::append(buf, r.size);
  detail::append(buf, r.src_rank);
  detail::append(buf, r.priority);
  detail::append(buf, r.root_ts);
  detail::append(buf, r.enqueue_ts);
  detail::append(buf, r.send_ts);
  detail::append(buf, r.real);
  detail::append(buf, r.trace);
  detail::append(buf, r.path);
  detail::append(buf, static_cast<std::uint16_t>(r.subtree.size()));
  for (const auto rank : r.subtree) detail::append(buf, rank);
}

/// Packs `count` records preceded by a count header.
inline std::vector<std::byte> pack_activate(
    const std::vector<ActivationRecord>& records) {
  std::vector<std::byte> buf;
  detail::append(buf, static_cast<std::uint16_t>(records.size()));
  for (const auto& r : records) pack_record(buf, r);
  return buf;
}

inline std::vector<ActivationRecord> unpack_activate(const void* msg,
                                                     std::size_t size) {
  const auto* p = static_cast<const std::byte*>(msg);
  const std::byte* const end = p + size;
  const auto count = detail::read<std::uint16_t>(p);
  std::vector<ActivationRecord> out;
  out.reserve(count);
  for (std::uint16_t c = 0; c < count; ++c) {
    ActivationRecord r;
    r.flow = detail::read<FlowKey>(p);
    r.size = detail::read<std::uint64_t>(p);
    r.src_rank = detail::read<std::int32_t>(p);
    r.priority = detail::read<double>(p);
    r.root_ts = detail::read<des::Time>(p);
    r.enqueue_ts = detail::read<des::Time>(p);
    r.send_ts = detail::read<des::Time>(p);
    r.real = detail::read<std::uint8_t>(p);
    r.trace = detail::read<TraceCtx>(p);
    r.path = detail::read<PathSums>(p);
    const auto n = detail::read<std::uint16_t>(p);
    r.subtree.resize(n);
    for (auto& rank : r.subtree) rank = detail::read<std::int32_t>(p);
    out.push_back(std::move(r));
  }
  assert(p <= end);
  (void)end;
  return out;
}

struct GetDataMsg {
  FlowKey flow;
  std::uint64_t rbase = 0;  ///< requester's registration (0 = virtual)
  std::uint64_t rsize = 0;
  des::Time send_ts = 0;    ///< requester's GET DATA send time (local clock)
  TraceCtx trace;           ///< causal identity of this GET DATA leg
};

struct DataArrivedMsg {
  FlowKey flow;
  des::Time put_ts = 0;     ///< holder's put-issue time (local clock)
  TraceCtx trace;           ///< causal identity of the data leg
};

template <typename T>
std::vector<std::byte> pack_pod(const T& v) {
  std::vector<std::byte> buf;
  detail::append(buf, v);
  return buf;
}

template <typename T>
T unpack_pod(const void* msg, std::size_t size) {
  assert(size >= sizeof(T));
  (void)size;
  T v;
  std::memcpy(&v, msg, sizeof v);
  return v;
}

}  // namespace amt::wire
