// Per-node runtime: scheduler, worker threads, and the communication
// thread implementing the ACTIVATE / GET DATA protocol of §4.1.
//
// Lifecycle of a remote dataflow (paper Fig. 1):
//   1. Task A completes on this node.  For each output flow the epilogue
//      finds the successors; local ones get the data copy immediately,
//      remote ranks become a multicast: direct children receive ACTIVATE
//      records (with the subtree each must forward to), and the produced
//      copy parks in the outgoing table awaiting GET DATA.
//   2. ACTIVATE records are queued per destination and aggregated by the
//      communication thread into one AM per destination (§4.3) — unless
//      mt_activate is set, in which case the worker sends them directly
//      (§6.4.3).
//   3. A destination unpacks each record, evaluates the priority of its
//      local successors, and enqueues a fetch.  The fetch queue is
//      priority-ordered and capped; GET DATA carries the receive buffer
//      registration.
//   4. The data holder answers GET DATA with put(); the put's remote
//      completion releases local dependencies, records latency (hop and
//      root-to-here), and triggers subtree forwarding.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "ce/comm_engine.hpp"
#include "des/poll_loop.hpp"
#include "des/sim_thread.hpp"
#include "net/clock_sync.hpp"
#include "net/fabric.hpp"
#include "amt/config.hpp"
#include "amt/lineage.hpp"
#include "amt/task_graph.hpp"
#include "amt/task_key.hpp"
#include "amt/wire.hpp"

namespace amt {

class NodeRuntime {
 public:
  /// `ft` is the runtime-wide fault state; null disables fault tolerance
  /// entirely (the fault-free hot path is then byte-identical to the
  /// pre-recovery runtime).
  NodeRuntime(des::Engine& engine, net::Fabric& fabric, int rank,
              ce::CommEngine& comm, TaskGraphDef& def,
              const RuntimeConfig& cfg, const net::GlobalClock& clock,
              FaultState* ft = nullptr);
  ~NodeRuntime();
  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  /// Registers AM tags, starts threads, and schedules this rank's source
  /// tasks.
  void start();

  const NodeStats& stats() const { return stats_; }
  int rank() const { return rank_; }

  /// Timeline-probe introspection: tasks released but not yet dispatched,
  /// announced flows still awaiting arrival, and GET DATAs on the wire.
  std::size_t ready_tasks() const { return ready_.size(); }
  std::size_t pending_fetches() const { return pending_.size(); }
  int inflight_fetches() const { return inflight_fetches_; }

  /// Aggregate busy time over worker threads (for utilization reports).
  des::Duration worker_busy_time() const;
  /// Latest charged-busy horizon across this node's worker/comm threads.
  /// The engine stops at the last *event*; a final task's charged compute
  /// elapses past it, so the true makespan is the max of both.
  des::Time threads_free_at() const;
  des::SimThread& comm_thread() { return *comm_thread_; }

  // --- fail-stop recovery hooks (no-ops unless ft was passed) -----------
  /// Ground-truth crash notification: this node stops doing work.  Its
  /// DES shard was already cancelled by the fabric; this guards the
  /// SimThread work items (workers, comm loop) that live on shard 0.
  void mark_crashed();
  bool crashed() const { return dead_; }
  /// Drops protocol state wedged on a confirmed-dead peer: pending
  /// fetches whose serving rank died, and queued activations to it.
  void purge_peer(int dead_rank);
  /// Seeds a re-homed zero-input task on this node.
  void inject_source(const TaskKey& key);
  /// Re-serves a produced flow from the cache: local consumers get the
  /// data directly; a remote `dst` gets a fresh single-destination
  /// ACTIVATE.  Returns false when the flow is not cached here.
  bool reannounce(const FlowKey& flow, int dst);
  /// True when `input` of `task` has not been delivered on this node.
  bool input_unfilled(const TaskKey& task, int input) const;
  /// Coordinator bookkeeping: a previously Ready/Done task homed here was
  /// rearmed and will run again.
  void note_reexecuted() { ++stats_.tasks_reexecuted; }

 private:
  struct TaskState {
    int remaining = 0;
    std::vector<DataCopyPtr> inputs;
    // Critical-path bookkeeping: the chain sums of the latest delivery so
    // far (the trigger input — the one whose release lets the task run).
    PathSums in_sums;
    des::Time release_g = 0;
    bool has_sums = false;
  };
  struct ReadyTask {
    double priority = 0.0;
    std::uint64_t seq = 0;  ///< FIFO among equal priorities
    TaskKey key;
    std::vector<DataCopyPtr> inputs;
    PathSums pred_sums;      ///< chain sums up to the trigger release
    des::Time release_g = 0; ///< when the last input was released (global)
  };
  struct ReadyOrder {
    bool operator()(const ReadyTask& a, const ReadyTask& b) const {
      if (a.priority != b.priority) return a.priority < b.priority;
      return a.seq > b.seq;
    }
  };
  /// Data held for remote consumers (origin side of puts).
  struct OutgoingData {
    DataCopyPtr copy;
    int expected_gets = 0;
    int gets_served = 0;
  };
  /// A flow announced by ACTIVATE, awaiting fetch + arrival.
  struct PendingFetch {
    wire::ActivationRecord record;
    std::vector<Dep> local_deps;
    DataCopyPtr buffer;
    double fetch_priority = 0.0;
    bool requested = false;
    des::Time reached_ts = 0;    ///< when the handler reached this record
    des::Time activated_ts = 0;  ///< when the ACTIVATE was processed here
    des::Time requested_ts = 0;  ///< when GET DATA left
  };
  struct FetchOrder {
    double priority;
    std::uint64_t seq;
    FlowKey flow;
    bool operator<(const FetchOrder& o) const {
      if (priority != o.priority) return priority < o.priority;
      return seq > o.seq;
    }
  };

  // --- scheduling -----------------------------------------------------
  void task_ready(const TaskKey& key, std::vector<DataCopyPtr> inputs,
                  const PathSums& pred, des::Time release_g);
  void try_dispatch();
  void run_task(ReadyTask&& task, int worker_idx);
  void task_completed(const TaskKey& key, RunContext& ctx,
                      const PathSums& chain);
  void deliver_local(const Dep& dep, const DataCopyPtr& copy,
                     const PathSums& prod, bool remote, des::Time release_g);

  /// Effective owner rank: the lineage home under fault tolerance, the
  /// owner-computes rank otherwise.
  int owner_rank(const TaskKey& t) const {
    return ft_ != nullptr ? ft_->lineage.home(t) : def_.rank_of(t);
  }

  // --- communication ----------------------------------------------------
  void publish_remote(const FlowKey& flow, const DataCopyPtr& copy,
                      double priority, des::Time root_ts,
                      const PathSums& path,
                      std::vector<std::int32_t> destinations);
  void emit_activation(int dst, wire::ActivationRecord&& rec);
  void send_activate_am(int dst, const std::vector<wire::ActivationRecord>&);
  void on_activate(const void* msg, std::size_t size, int src);
  void on_getdata(const void* msg, std::size_t size, int src);
  void on_data_arrived(const void* msg, std::size_t size, int src);
  bool issue_fetches();
  bool flush_activations();
  bool comm_body();
  void wake_comm();

  // --- tracing / stage instrumentation ----------------------------------
  /// Local-clock "now" including CPU time charged so far by the current
  /// work item.  Charges don't advance sim time, so this is the stamp
  /// that sequences sub-steps within one callback correctly.
  des::Time charged_local_now() const;
  des::Time charged_global_now() const;
  /// Fresh causal identity for one message leg of `flow`: the trace id
  /// names the flow (stable across hops), the span id this leg.
  wire::TraceCtx new_ctx(const FlowKey& flow);
  /// Records the telescoping stage samples for one delivered record.  All
  /// timestamps are global-clock; consecutive stages share endpoints, so
  /// the seven e2e stages sum exactly to `end_g - root_g` — the same
  /// quantity LatencyStats::e2e records for this flow.
  void record_stages(const wire::ActivationRecord& rec, des::Time reached_g,
                     des::Time activated_g, des::Time requested_g,
                     des::Time put_g, des::Time end_g);

  des::Engine& eng_;
  net::Fabric& fabric_;
  int rank_;
  ce::CommEngine& comm_;
  TaskGraphDef& def_;
  const RuntimeConfig& cfg_;
  const net::GlobalClock& clock_;
  NodeStats stats_;

  // Scheduler state.
  std::unordered_map<TaskKey, TaskState, TaskKeyHash> task_states_;
  std::priority_queue<ReadyTask, std::vector<ReadyTask>, ReadyOrder> ready_;
  std::vector<std::unique_ptr<des::SimThread>> workers_;
  std::vector<int> idle_workers_;
  std::uint64_t ready_seq_ = 0;

  // Communication state.
  std::unordered_map<FlowKey, OutgoingData, FlowKeyHash> outgoing_;
  std::unordered_map<FlowKey, PendingFetch, FlowKeyHash> pending_;
  std::priority_queue<FetchOrder> fetch_queue_;
  std::unordered_map<int, std::vector<wire::ActivationRecord>>
      outgoing_activations_;
  std::uint64_t fetch_seq_ = 0;
  int inflight_fetches_ = 0;
  std::uint64_t span_seq_ = 0;  ///< per-node trace span allocator

  std::unique_ptr<des::SimThread> comm_thread_;
  std::unique_ptr<des::PollLoop> comm_loop_;

  // Scratch to avoid per-call allocation in hot paths.
  std::vector<Dep> deps_scratch_;

  // --- fault tolerance ---------------------------------------------------
  FaultState* ft_ = nullptr;  ///< null = tolerance off (exact legacy paths)
  bool dead_ = false;         ///< this node fail-stopped
  /// Every flow this node has published or produced, kept so lost data
  /// can be re-served (GET DATA after retirement, recovery re-announce).
  struct ProducedData {
    DataCopyPtr copy;
    PathSums path;
    double priority = 0.0;
  };
  std::unordered_map<FlowKey, ProducedData, FlowKeyHash> produced_cache_;
};

}  // namespace amt
