#include "amt/runtime.hpp"

#include <algorithm>

namespace amt {

Runtime::Runtime(des::Engine& engine, net::Fabric& fabric,
                 ce::CommWorld& comm, TaskGraphDef& def, RuntimeConfig cfg,
                 net::GlobalClock clock)
    : eng_(engine), def_(def), cfg_(std::move(cfg)),
      clock_(std::move(clock)) {
  if (clock_.offsets().empty()) {
    clock_ = net::GlobalClock::identity(fabric.num_nodes());
  }
  nodes_.reserve(static_cast<std::size_t>(fabric.num_nodes()));
  for (int r = 0; r < fabric.num_nodes(); ++r) {
    nodes_.push_back(std::make_unique<NodeRuntime>(
        engine, fabric, r, comm.engine(r), def, cfg_, clock_));
  }
}

des::Duration Runtime::run() {
  const des::Time start = eng_.now();
  for (auto& n : nodes_) n->start();
  eng_.run();
  const std::uint64_t executed = total_tasks_executed();
  assert(executed == def_.total_tasks() &&
         "runtime quiesced before completing all tasks (deadlock?)");
  (void)executed;
  // The engine quiesces at the last event, but the final tasks' charged
  // compute still has to elapse on their workers; without it the makespan
  // would end before the critical path's last task finishes.
  des::Time end = eng_.now();
  for (const auto& n : nodes_) end = std::max(end, n->threads_free_at());
  return end - start;
}

NodeStats Runtime::aggregate_stats() const {
  NodeStats total;
  for (const auto& n : nodes_) {
    const NodeStats& s = n->stats();
    total.tasks_executed += s.tasks_executed;
    total.activations_sent += s.activations_sent;
    total.activate_ams += s.activate_ams;
    total.getdata_sent += s.getdata_sent;
    total.getdata_deferred += s.getdata_deferred;
    total.data_arrivals += s.data_arrivals;
    total.forwards += s.forwards;
    total.latency.merge(s.latency);
    total.fetch_wait.merge(s.fetch_wait);
    total.transfer.merge(s.transfer);
    total.stages.merge(s.stages);
    total.crit.merge(s.crit);
  }
  return total;
}

std::uint64_t Runtime::total_tasks_executed() const {
  std::uint64_t n = 0;
  for (const auto& node : nodes_) n += node->stats().tasks_executed;
  return n;
}

des::Duration Runtime::total_worker_busy() const {
  des::Duration n = 0;
  for (const auto& node : nodes_) n += node->worker_busy_time();
  return n;
}

}  // namespace amt
