#include "amt/runtime.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "obs/flight_recorder.hpp"
#include "obs/timeline.hpp"

namespace amt {

Runtime::Runtime(des::Engine& engine, net::Fabric& fabric,
                 ce::CommWorld& comm, TaskGraphDef& def, RuntimeConfig cfg,
                 net::GlobalClock clock)
    : eng_(engine), def_(def), cfg_(std::move(cfg)),
      clock_(std::move(clock)) {
  if (clock_.offsets().empty()) {
    clock_ = net::GlobalClock::identity(fabric.num_nodes());
  }
  if (cfg_.ft.enabled) {
    ft_ = std::make_unique<FaultState>(def_, cfg_.ft);
    ft_->node_dead.assign(static_cast<std::size_t>(fabric.num_nodes()), 0);
  }
  nodes_.reserve(static_cast<std::size_t>(fabric.num_nodes()));
  for (int r = 0; r < fabric.num_nodes(); ++r) {
    nodes_.push_back(std::make_unique<NodeRuntime>(
        engine, fabric, r, comm.engine(r), def, cfg_, clock_, ft_.get()));
  }
  if (ft_ != nullptr) {
    // Detection source: failure-detector verdicts when the comm world has
    // one (realistic detection latency), ground-truth fabric crash
    // notifications otherwise (zero-latency recovery, for unit tests).
    ce::FailureDetectorDomain* const fd = comm.failure_detector();
    detector_ = fd;
    fd_recovery_ = fd != nullptr;
    if (fd != nullptr) {
      fd->subscribe([this](int /*node*/, int peer, ce::PeerState st) {
        if (st == ce::PeerState::Dead) on_peer_dead(peer);
      });
    }
    // The crash handler always marks the corpse so its queued shard-0 work
    // items (workers, comm loop) become no-ops.  AMT death is sticky: a
    // fabric restart revives the ce level only; the node stays out of the
    // work pool (graceful degradation).
    fabric.add_crash_handler([this, &comm](net::NodeId n, bool up) {
      if (up) return;
      nodes_[static_cast<std::size_t>(n)]->mark_crashed();
      if (!fd_recovery_) {
        // Ground-truth recovery: purge the comm level first (the detector
        // path does this via its Dead-verdict subscriber), then re-home.
        comm.peer_failed(static_cast<int>(n));
        on_peer_dead(static_cast<int>(n));
      }
    });
  }
}

des::Duration Runtime::run() {
  const des::Time start = eng_.now();
  for (auto& n : nodes_) n->start();
  if (ft_ != nullptr) return run_tolerant(start);
  eng_.run();
  const std::uint64_t executed = total_tasks_executed();
  assert(executed == def_.total_tasks() &&
         "runtime quiesced before completing all tasks (deadlock?)");
  (void)executed;
  // The engine quiesces at the last event, but the final tasks' charged
  // compute still has to elapse on their workers; without it the makespan
  // would end before the critical path's last task finishes.
  des::Time end = eng_.now();
  for (const auto& n : nodes_) end = std::max(end, n->threads_free_at());
  return end - start;
}

des::Duration Runtime::run_tolerant(des::Time start) {
  const std::uint64_t total = def_.total_tasks();
  const LineageTracker& lin = ft_->lineage;
  // Failure-detector heartbeat timers keep the event queue non-empty
  // forever, so the engine cannot quiesce on its own: run until every
  // distinct task is Done (re-executions un-count, so the predicate is
  // exact), the run failed closed, or nothing completes for longer than
  // the stall timeout (a lost-task deadlock the coordinator missed).
  des::Time last_progress = eng_.now();
  std::uint64_t last_done = lin.done_count();
  const auto done = [&]() {
    if (ft_->status != RunStatus::Ok) return true;
    const std::uint64_t d = lin.done_count();
    if (d >= total) return true;
    if (d != last_done) {
      last_done = d;
      last_progress = eng_.now();
    } else if (eng_.now() - last_progress > ft_->cfg.stall_timeout) {
      ft_->fail(RunStatus::ErrDeadlock);
      return true;
    }
    return false;
  };
  if (!eng_.run_while_pending(done) && lin.done_count() < total &&
      ft_->status == RunStatus::Ok) {
    // Queue drained with work remaining: structural deadlock.
    ft_->fail(RunStatus::ErrDeadlock);
  }
  if (ft_->status == RunStatus::Ok) {
    // Completion: stop the detector's periodic heartbeats so the
    // remaining in-flight events (data retirements, ACKs) can drain.
    // Draining keeps the quiescence point — and therefore the makespan —
    // identical to the non-tolerant runtime on crash-free runs.
    if (detector_ != nullptr) detector_->stop();
    eng_.run();
  }
  if (ft_->status != RunStatus::Ok) {
    // Failed closed: stamp the terminal status into the cluster ring so a
    // post-mortem bundle ends with the verdict.
    obs::FlightRecorder::global().record(
        -1, obs::FlightKind::RunStatus, eng_.now(), 0,
        static_cast<std::uint64_t>(ft_->status));
  }
  // Makespan over surviving nodes only — a corpse's charged horizon is
  // not part of the completed schedule.
  des::Time end = eng_.now();
  for (const auto& n : nodes_) {
    if (!ft_->alive(n->rank())) continue;
    end = std::max(end, n->threads_free_at());
  }
  return end - start;
}

void Runtime::build_graph_index() {
  graph_indexed_ = true;
  std::unordered_set<TaskKey, TaskKeyHash> seen;
  std::vector<TaskKey> stack;
  std::vector<TaskKey> init;
  for (int r = 0; r < num_nodes(); ++r) {
    init.clear();
    def_.initial_tasks(r, init);
    for (const TaskKey& t : init) {
      if (seen.insert(t).second) stack.push_back(t);
    }
  }
  std::vector<Dep> deps;
  while (!stack.empty()) {
    const TaskKey t = stack.back();
    stack.pop_back();
    all_tasks_.push_back(t);
    const int nout = def_.num_outputs(t);
    for (int f = 0; f < nout; ++f) {
      deps.clear();
      def_.successors(t, f, deps);
      const FlowKey flow{t, f};
      for (const Dep& d : deps) {
        producers_[d.task].emplace_back(d.input, flow);
        if (seen.insert(d.task).second) stack.push_back(d.task);
      }
    }
  }
  assert(all_tasks_.size() == def_.total_tasks() &&
         "graph walk did not reach every task");
}

void Runtime::on_peer_dead(int dead_rank) {
  if (ft_ == nullptr) return;
  if (ft_->status != RunStatus::Ok) return;  // already failed closed
  char& flag = ft_->node_dead[static_cast<std::size_t>(dead_rank)];
  if (flag != 0) return;  // detector verdicts repeat per observer
  flag = 1;
  obs::FlightRecorder::global().record(
      -1, obs::FlightKind::Recovery, eng_.now(), 0,
      static_cast<std::uint64_t>(dead_rank));
  if (timeline_ != nullptr) {
    char mark[32];
    std::snprintf(mark, sizeof mark, "recovery.n%d", dead_rank);
    timeline_->mark_phase(mark, eng_.now());
  }
  const std::vector<int> survivors = ft_->survivors();
  if (survivors.empty()) {
    ft_->fail(RunStatus::ErrNoSurvivors);
    return;
  }
  if (!graph_indexed_) build_graph_index();
  LineageTracker& lin = ft_->lineage;

  // Drop protocol state wedged on the corpse on every survivor FIRST:
  // recovery re-announces must not be dup-dropped against fetches that
  // are about to be purged.
  for (const int r : survivors) {
    nodes_[static_cast<std::size_t>(r)]->purge_peer(dead_rank);
  }

  std::vector<TaskKey> work;
  const auto rearm = [&](const TaskKey& t) {
    const TaskPhase was = lin.phase(t);
    const int epoch = lin.rearm(t, survivors);
    if (epoch > ft_->cfg.max_epochs) {
      ft_->fail(RunStatus::ErrLineageExhausted);
      return false;
    }
    if (was != TaskPhase::Pending) {
      nodes_[static_cast<std::size_t>(lin.home(t))]->note_reexecuted();
    }
    work.push_back(t);
    return true;
  };

  // Pass 1: every not-Done task homed on a dead node re-homes to a
  // survivor (deterministic hash rule).  Done-on-dead tasks are left
  // alone here — their outputs are re-produced lazily in pass 2, only if
  // a consumer still needs them.
  for (const TaskKey& t : all_tasks_) {
    if (ft_->alive(lin.home(t))) continue;
    if (lin.is_done(t)) continue;
    if (!rearm(t)) return;
  }

  // Pass 2: make every Pending task runnable again.  Each missing input
  // either has a not-Done producer that will (re-)deliver naturally, or a
  // Done producer whose cached output an alive holder re-announces, or a
  // Done-on-dead producer whose sub-lineage must re-execute (cascades via
  // the worklist).  The seed sweep below already covers pass 1's rearms.
  work.clear();
  for (const TaskKey& t : all_tasks_) {
    if (lin.phase(t) == TaskPhase::Pending) work.push_back(t);
  }
  while (!work.empty() && ft_->status == RunStatus::Ok) {
    const TaskKey t = work.back();
    work.pop_back();
    if (lin.phase(t) != TaskPhase::Pending) continue;
    NodeRuntime& home = *nodes_[static_cast<std::size_t>(lin.home(t))];
    if (def_.num_inputs(t) == 0) {
      home.inject_source(t);
      continue;
    }
    const auto pit = producers_.find(t);
    assert(pit != producers_.end() && "task with inputs but no producers");
    for (const auto& [input, flow] : pit->second) {
      if (!home.input_unfilled(t, input)) continue;
      const TaskKey& p = flow.producer;
      if (!lin.is_done(p)) continue;  // will deliver on (re-)completion
      const int p_home = lin.home(p);
      if (ft_->alive(p_home)) {
        if (!nodes_[static_cast<std::size_t>(p_home)]->reannounce(
                flow, home.rank())) {
          // Done producer, alive home, no cached copy: the tile is gone.
          ft_->fail(RunStatus::ErrTileLost);
          return;
        }
      } else if (!rearm(p)) {
        return;  // lost output: re-execute the producing sub-lineage
      }
    }
  }
}

NodeStats Runtime::aggregate_stats() const {
  NodeStats total;
  for (const auto& n : nodes_) {
    const NodeStats& s = n->stats();
    total.tasks_executed += s.tasks_executed;
    total.activations_sent += s.activations_sent;
    total.activate_ams += s.activate_ams;
    total.getdata_sent += s.getdata_sent;
    total.getdata_deferred += s.getdata_deferred;
    total.data_arrivals += s.data_arrivals;
    total.forwards += s.forwards;
    total.tasks_reexecuted += s.tasks_reexecuted;
    total.dup_completions_suppressed += s.dup_completions_suppressed;
    total.dup_inputs_dropped += s.dup_inputs_dropped;
    total.stale_activations += s.stale_activations;
    total.fetches_abandoned += s.fetches_abandoned;
    total.reannounces += s.reannounces;
    total.latency.merge(s.latency);
    total.fetch_wait.merge(s.fetch_wait);
    total.transfer.merge(s.transfer);
    total.stages.merge(s.stages);
    total.crit.merge(s.crit);
  }
  return total;
}

std::uint64_t Runtime::total_tasks_executed() const {
  std::uint64_t n = 0;
  for (const auto& node : nodes_) n += node->stats().tasks_executed;
  return n;
}

des::Duration Runtime::total_worker_busy() const {
  des::Duration n = 0;
  for (const auto& node : nodes_) n += node->worker_busy_time();
  return n;
}

}  // namespace amt
