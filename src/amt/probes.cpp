#include "amt/probes.hpp"

#include <cstdio>
#include <string>

#include "ce/world.hpp"
#include "net/fabric.hpp"
#include "amt/runtime.hpp"

namespace amt {

void install_standard_probes(obs::Timeline& tl, net::Fabric& fabric,
                             ce::CommWorld& comm, Runtime& rt) {
  des::Engine& eng = fabric.engine();
  const int n = fabric.num_nodes();

  for (int node = 0; node < n; ++node) {
    const auto shard = net::Fabric::shard_of(node);
    tl.add_probe("des.qdepth", node, [&eng, shard]() {
      return static_cast<double>(eng.shard_pending(shard));
    });
  }

  if (ce::ReliableDomain* const rel = comm.reliability()) {
    for (int node = 0; node < n; ++node) {
      tl.add_probe("ce.unacked", node, [rel, node]() {
        return static_cast<double>(rel->unacked(node));
      });
    }
  }

  if (const ce::FailureDetectorDomain* const fd = comm.failure_detector()) {
    for (int node = 0; node < n; ++node) {
      // Worst surviving verdict about this node, not the node's own view:
      // the curve answers "when did the cluster consider n3 gone".
      tl.add_probe("ce.fd.view", node, [fd, node]() {
        if (fd->dead_views(node) > 0) return 2.0;
        if (fd->suspect_views(node) > 0) return 1.0;
        return 0.0;
      });
    }
  }

  for (int node = 0; node < n; ++node) {
    NodeRuntime& nr = rt.node(node);
    tl.add_probe("amt.ready", node, [&nr]() {
      return static_cast<double>(nr.ready_tasks());
    });
    tl.add_probe("amt.blocked", node, [&nr]() {
      return static_cast<double>(nr.pending_fetches());
    });
  }

  tl.add_probe("net.msgs", -1, [&fabric]() {
    return static_cast<double>(fabric.total_messages());
  });
  tl.add_probe("net.bytes", -1, [&fabric]() {
    return static_cast<double>(fabric.total_bytes());
  });

  const net::Topology& topo = fabric.topology();
  if (!topo.explicit_links()) return;
  char name[64];
  for (int t = 0; t + 1 < topo.num_tiers(); ++t) {
    std::snprintf(name, sizeof name, "net.link.t%d.up_bytes", t);
    tl.add_probe(name, -1, [&topo, t]() {
      return static_cast<double>(topo.boundary_bytes_up(t));
    });
    std::snprintf(name, sizeof name, "net.link.t%d.down_bytes", t);
    tl.add_probe(name, -1, [&topo, t]() {
      return static_cast<double>(topo.boundary_bytes_down(t));
    });
    for (int sw = 0; sw < topo.num_switches(t); ++sw) {
      for (int p = 0; p < topo.uplinks(t); ++p) {
        std::snprintf(name, sizeof name, "net.link.t%d.s%d.p%d.bytes", t, sw,
                      p);
        tl.add_probe(name, -1, [&topo, t, sw, p]() {
          return static_cast<double>(topo.up_link(t, sw, p).bytes +
                                     topo.down_link(t, sw, p).bytes);
        });
      }
    }
  }
}

}  // namespace amt
