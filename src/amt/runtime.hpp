// The distributed runtime: one NodeRuntime per simulated node, a shared
// TaskGraphDef, and the execution driver.
#pragma once

#include <cassert>
#include <memory>
#include <vector>

#include "ce/world.hpp"
#include "des/engine.hpp"
#include "net/clock_sync.hpp"
#include "net/fabric.hpp"
#include "amt/config.hpp"
#include "amt/node_runtime.hpp"
#include "amt/task_graph.hpp"

namespace amt {

class Runtime {
 public:
  Runtime(des::Engine& engine, net::Fabric& fabric, ce::CommWorld& comm,
          TaskGraphDef& def, RuntimeConfig cfg = {},
          net::GlobalClock clock = {});

  /// Executes the task graph to completion.  Returns the makespan
  /// (simulated time from call to global quiescence).
  des::Duration run();

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  NodeRuntime& node(int rank) {
    return *nodes_.at(static_cast<std::size_t>(rank));
  }

  /// Sum of per-node counters.
  NodeStats aggregate_stats() const;
  std::uint64_t total_tasks_executed() const;
  /// Aggregate worker busy time across all nodes.
  des::Duration total_worker_busy() const;

 private:
  des::Engine& eng_;
  TaskGraphDef& def_;
  RuntimeConfig cfg_;
  net::GlobalClock clock_;
  std::vector<std::unique_ptr<NodeRuntime>> nodes_;
};

}  // namespace amt
