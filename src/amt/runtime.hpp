// The distributed runtime: one NodeRuntime per simulated node, a shared
// TaskGraphDef, and the execution driver.
//
// With fault tolerance enabled (RuntimeConfig::ft.enabled) the Runtime
// also acts as the recovery coordinator: it owns the shared FaultState,
// listens for confirmed peer deaths (failure-detector verdicts when a
// detector is wired, ground-truth fabric crash notifications otherwise),
// and re-homes the dead node's unfinished lineage onto survivors.  When
// tolerance is off the hot path is byte-identical to the pre-recovery
// runtime (no FaultState is ever allocated; NodeRuntimes see a null
// pointer and take the exact legacy branches).
#pragma once

#include <cassert>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ce/world.hpp"
#include "des/engine.hpp"
#include "net/clock_sync.hpp"
#include "net/fabric.hpp"
#include "amt/config.hpp"
#include "amt/lineage.hpp"
#include "amt/node_runtime.hpp"
#include "amt/task_graph.hpp"

namespace obs {
class Timeline;
}

namespace amt {

class Runtime {
 public:
  Runtime(des::Engine& engine, net::Fabric& fabric, ce::CommWorld& comm,
          TaskGraphDef& def, RuntimeConfig cfg = {},
          net::GlobalClock clock = {});

  /// Executes the task graph to completion.  Returns the makespan
  /// (simulated time from call to global quiescence).  Under fault
  /// tolerance the run may instead end with run_status() != Ok — an
  /// unrecoverable loss fails closed, it never aborts.
  des::Duration run();

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  NodeRuntime& node(int rank) {
    return *nodes_.at(static_cast<std::size_t>(rank));
  }

  /// Ok on fault-free or fully recovered runs; an error status when the
  /// graph could not be completed.  Always Ok with tolerance disabled.
  RunStatus run_status() const {
    return ft_ != nullptr ? ft_->status : RunStatus::Ok;
  }
  /// The shared fault state (null when tolerance is off).
  const FaultState* fault_state() const { return ft_.get(); }

  /// Recovery entry point: re-homes `dead_rank`'s unfinished lineage onto
  /// survivors and re-announces lost inputs.  Idempotent; normally driven
  /// by the failure detector (or the fabric crash handler when no
  /// detector is wired), public so tests can inject verdicts directly.
  void on_peer_dead(int dead_rank);

  /// Attaches a timeline sampler for recovery phase marks (the span from
  /// a confirmed death to run end shows up in the bottleneck report's
  /// phase attribution).  Null detaches; not owned.
  void set_timeline(obs::Timeline* tl) { timeline_ = tl; }

  /// Sum of per-node counters.
  NodeStats aggregate_stats() const;
  std::uint64_t total_tasks_executed() const;
  /// Aggregate worker busy time across all nodes.
  des::Duration total_worker_busy() const;

 private:
  /// Lazily enumerates the whole graph (BFS from every rank's source
  /// tasks) into all_tasks_ and the input -> producing-flow map.  Only
  /// ever built on the first confirmed death — fault-free runs never pay
  /// for it.
  void build_graph_index();
  des::Duration run_tolerant(des::Time start);

  des::Engine& eng_;
  TaskGraphDef& def_;
  RuntimeConfig cfg_;
  net::GlobalClock clock_;
  std::vector<std::unique_ptr<NodeRuntime>> nodes_;
  obs::Timeline* timeline_ = nullptr;

  // --- fault tolerance ---------------------------------------------------
  std::unique_ptr<FaultState> ft_;  ///< null = tolerance off
  ce::FailureDetectorDomain* detector_ = nullptr;  ///< may be null
  bool fd_recovery_ = false;  ///< verdicts come from the failure detector
  bool graph_indexed_ = false;
  std::vector<TaskKey> all_tasks_;
  /// task -> [(input index, producing flow)] for every input edge.
  std::unordered_map<TaskKey, std::vector<std::pair<int, FlowKey>>,
                     TaskKeyHash>
      producers_;
};

}  // namespace amt
