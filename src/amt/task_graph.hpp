// Application interface: a parameterized task graph (PTG-lite).
//
// The application describes its computation algebraically, the way a
// PaRSEC JDF does: given any task key the definition can answer who runs
// it, what its successors are, and how to execute its body.  The runtime
// instantiates task state on demand (first activation) and discards it at
// completion, so graphs with millions of tasks never exist in memory at
// once — only the execution frontier does.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "des/time.hpp"
#include "amt/task_key.hpp"

namespace amt {

/// A reference-counted piece of task data.  `bytes` may be null ("virtual"
/// payload): the size still drives communication timing, but no memory
/// moves — paper-scale experiments run this way.
struct DataCopy {
  std::shared_ptr<std::vector<std::byte>> bytes;
  std::size_t size = 0;

  static std::shared_ptr<DataCopy> real(std::size_t n) {
    auto d = std::make_shared<DataCopy>();
    d->bytes = std::make_shared<std::vector<std::byte>>(n);
    d->size = n;
    return d;
  }
  static std::shared_ptr<DataCopy> virt(std::size_t n) {
    auto d = std::make_shared<DataCopy>();
    d->size = n;
    return d;
  }
};
using DataCopyPtr = std::shared_ptr<DataCopy>;

/// Handed to a task body: read inputs, publish outputs.
class RunContext {
 public:
  explicit RunContext(std::vector<DataCopyPtr> inputs, int num_outputs)
      : inputs_(std::move(inputs)),
        outputs_(static_cast<std::size_t>(num_outputs)) {}

  const DataCopyPtr& input(int idx) const {
    return inputs_.at(static_cast<std::size_t>(idx));
  }
  std::size_t num_inputs() const { return inputs_.size(); }

  /// Publishes the datum for output flow `flow`.  Every flow that has
  /// successors must be set before the body returns.
  void set_output(int flow, DataCopyPtr data) {
    outputs_.at(static_cast<std::size_t>(flow)) = std::move(data);
  }
  const DataCopyPtr& output(int flow) const {
    return outputs_.at(static_cast<std::size_t>(flow));
  }

 private:
  std::vector<DataCopyPtr> inputs_;
  std::vector<DataCopyPtr> outputs_;
};

/// The application-provided, immutable graph definition.  One instance is
/// shared by every simulated node (it encodes global knowledge the same
/// way a JDF compiled into every process does).
class TaskGraphDef {
 public:
  virtual ~TaskGraphDef() = default;

  /// Number of input dependencies of `t` (0 for source tasks).
  virtual int num_inputs(const TaskKey& t) const = 0;

  /// Number of output flows of `t`.
  virtual int num_outputs(const TaskKey& t) const = 0;

  /// Owner-computes rank for `t`.
  virtual int rank_of(const TaskKey& t) const = 0;

  /// Appends the consumers of output `flow` of `t` to `out`.
  virtual void successors(const TaskKey& t, int flow,
                          std::vector<Dep>& out) const = 0;

  /// Scheduling priority; larger runs earlier, and data for
  /// higher-priority consumers is fetched first.
  virtual double priority(const TaskKey& /*t*/) const { return 0.0; }

  /// Executes the body of `t` and returns its modeled duration.  The body
  /// must set every output flow that has successors.
  virtual des::Duration execute(const TaskKey& t, RunContext& ctx) = 0;

  /// Appends the source tasks (num_inputs == 0) owned by `rank`.
  virtual void initial_tasks(int rank, std::vector<TaskKey>& out) const = 0;

  /// Total number of tasks across all ranks (for completion checking).
  virtual std::uint64_t total_tasks() const = 0;
};

}  // namespace amt
