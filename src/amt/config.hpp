// Runtime configuration and instrumentation counters.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "des/time.hpp"
#include "obs/stats.hpp"
#include "amt/task_key.hpp"

namespace amt {

/// Fail-stop fault tolerance (lineage-based re-execution).  When enabled,
/// the runtime tracks every task's lineage (phase, execution epoch, home
/// rank) in a coordinator-side tracker; a confirmed node death re-homes
/// the dead node's unfinished tasks onto survivors, re-announces lost
/// inputs from surviving producers' produced-data caches, and re-executes
/// the producing sub-lineage when the producer itself died after
/// completing.  Off by default: the fault-free fast path is bit-identical
/// to the non-tolerant runtime.
struct FaultToleranceConfig {
  bool enabled = false;
  /// Re-execution cap per task; exceeding it fails closed with
  /// RunStatus::ErrLineageExhausted instead of looping forever.
  int max_epochs = 8;
  /// Tolerant-run watchdog: if simulated time advances this far with no
  /// new task completion, the run fails closed with ErrDeadlock.  Needed
  /// because failure-detector heartbeat timers keep the event queue
  /// non-empty forever — the engine can never "drain to prove" deadlock.
  des::Duration stall_timeout = 2 * des::kSecond;
};

/// Terminal outcome of a tolerant run.  The default (non-tolerant) path
/// still asserts on incomplete execution; the tolerant path never aborts —
/// it reports one of these and returns.
enum class RunStatus : int {
  Ok = 0,
  ErrNoSurvivors,       ///< every node crashed; nothing left to run on
  ErrLineageExhausted,  ///< a task died more than max_epochs times
  ErrTileLost,          ///< data irrecoverable (no cache copy anywhere)
  ErrDeadlock,          ///< engine drained before all tasks completed
};

inline const char* run_status_name(RunStatus s) {
  switch (s) {
    case RunStatus::Ok: return "ok";
    case RunStatus::ErrNoSurvivors: return "err_no_survivors";
    case RunStatus::ErrLineageExhausted: return "err_lineage_exhausted";
    case RunStatus::ErrTileLost: return "err_tile_lost";
    case RunStatus::ErrDeadlock: return "err_deadlock";
  }
  return "unknown";
}

struct RuntimeConfig {
  /// Worker threads per node.  The paper's setup (§6.1.2): 128 cores,
  /// minus one for the communication thread, minus one more for the LCI
  /// progress thread.
  int workers = 4;

  /// §6.4.3 communication multithreading: workers send ACTIVATE messages
  /// directly instead of funneling them through the communication thread.
  /// Disables ACTIVATE aggregation.
  bool mt_activate = false;

  /// Maximum bytes of activation records aggregated into one ACTIVATE AM.
  std::size_t am_batch_bytes = 3 * 1024;

  /// Maximum outstanding GET DATA requests per node; further fetches wait
  /// in a priority queue (deferred, §4.1/§4.3).
  int max_inflight_fetches = 32;

  /// Remote destinations per multicast-tree node; a flow with more
  /// destinations is forwarded through a tree rooted at the producer.
  int multicast_arity = 2;

  // --- modeled CPU costs --------------------------------------------------
  // Calibrated to PaRSEC-scale runtime work.  The ACTIVATE callback is the
  // expensive one (§4.3): it unpacks each aggregated activation, iterates
  // over all local descendants of the task, and decides which data to
  // request — tens of microseconds of comm-thread time per record.  This
  // is precisely the work that, on the MPI backend, blocks all message
  // matching while it runs.
  des::Duration task_epilogue_cost = 8 * des::kMicrosecond;
  des::Duration activate_pack_cost = 4 * des::kMicrosecond;
  /// ACTIVATE processing = fixed part + a per-local-descendant part (the
  /// callback iterates over all local descendants of the completed task).
  des::Duration activate_unpack_cost = 25 * des::kMicrosecond;
  des::Duration activate_per_dep_cost = 2 * des::kMicrosecond;
  des::Duration getdata_handle_cost = 15 * des::kMicrosecond;
  /// Data-arrival processing = fixed part + per released dependency.
  des::Duration data_release_cost = 15 * des::kMicrosecond;
  des::Duration release_per_dep_cost = 3 * des::kMicrosecond;
  des::Duration scheduler_cost = 1 * des::kMicrosecond;
  des::Duration comm_loop_cost = 50;  ///< per comm-thread poll iteration

  /// Fail-stop crash recovery (see FaultToleranceConfig).
  FaultToleranceConfig ft;

  /// Cost profile for microbenchmark-style task classes whose successor
  /// functions are trivial (one consumer, no tile bookkeeping) — the
  /// paper's §6.2/§6.3 ping-pong benchmarks.  The defaults above model a
  /// complex application (HiCMA: descendant sets of hundreds, low-rank
  /// tile bookkeeping per record).
  static RuntimeConfig light_costs() {
    RuntimeConfig cfg;
    cfg.task_epilogue_cost = 1000;
    cfg.activate_pack_cost = 300;
    cfg.activate_unpack_cost = 1200;
    cfg.activate_per_dep_cost = 200;
    cfg.getdata_handle_cost = 1200;
    cfg.data_release_cost = 1200;
    cfg.release_per_dep_cost = 150;
    cfg.scheduler_cost = 400;
    return cfg;
  }
};

/// End-to-end latency statistics (paper Figs. 4b/5b): measured from the
/// ACTIVATE send until the data arrives, per flow; `e2e` is from the
/// multicast root, `hop` from the direct predecessor in the tree.
/// Histogram-backed, so the benches report percentiles (p50/p90/p99), not
/// just means; merging across nodes merges the underlying buckets.
struct LatencyStats {
  obs::Histogram hop;
  obs::Histogram e2e;

  void add(double hop_ns, double e2e_ns) {
    hop.add(hop_ns);
    e2e.add(e2e_ns);
  }
  void merge(const LatencyStats& o) {
    hop.merge(o.hop);
    e2e.merge(o.e2e);
  }
  std::uint64_t count() const { return e2e.count(); }
  double hop_mean_ns() const { return hop.mean(); }
  double e2e_mean_ns() const { return e2e.mean(); }
  double hop_max_ns() const { return hop.max(); }
  double e2e_max_ns() const { return e2e.max(); }
  double hop_p50_ns() const { return hop.p50(); }
  double hop_p99_ns() const { return hop.p99(); }
  double e2e_p50_ns() const { return e2e.p50(); }
  double e2e_p90_ns() const { return e2e.p90(); }
  double e2e_p99_ns() const { return e2e.p99(); }
};

/// Stages of a remote flow's delivery path, in causal order.  The first
/// kE2eStages telescope: consecutive timestamps along one delivery chain,
/// so their per-flow values sum *exactly* to the `LatencyStats::e2e`
/// sample for that flow (and, since every arrival contributes one sample
/// to every stage, the stage means sum to the e2e mean).  `Release` and
/// `TaskStart` happen after the latency endpoint and are reported
/// separately as runtime-overhead stages.
enum class Stage : int {
  Upstream = 0,     ///< multicast-root publish -> this hop queues the record
  Queue,            ///< queued -> packed into an ACTIVATE AM (aggregation
                    ///< wait; the stage mt_activate removes)
  ActivateWire,     ///< ACTIVATE injected -> remote handler reaches record
  ActivateHandle,   ///< record unpack + successor iteration CPU time
  FetchWait,        ///< activated -> GET DATA sent (inflight-cap queueing)
  GetdataWire,      ///< GET DATA sent -> holder issues the put
  Transfer,         ///< put issued -> data-arrival callback on requester
  Release,          ///< dependency-release processing (post-arrival)
  TaskStart,        ///< last input released -> task body starts
  kCount
};

inline constexpr int kNumStages = static_cast<int>(Stage::kCount);
inline constexpr int kE2eStages = static_cast<int>(Stage::Transfer) + 1;

inline constexpr std::array<const char*, kNumStages> kStageNames = {
    "upstream",      "queue",        "activate_wire", "activate_handle",
    "fetch_wait",    "getdata_wire", "transfer",      "release",
    "task_start"};

/// One histogram per lifecycle stage (samples in ns, like LatencyStats).
struct StageLats {
  std::array<obs::Histogram, kNumStages> h;

  obs::Histogram& operator[](Stage s) {
    return h[static_cast<std::size_t>(s)];
  }
  const obs::Histogram& operator[](Stage s) const {
    return h[static_cast<std::size_t>(s)];
  }
  void merge(const StageLats& o) {
    for (int s = 0; s < kNumStages; ++s) {
      h[static_cast<std::size_t>(s)].merge(o.h[static_cast<std::size_t>(s)]);
    }
  }
  /// Sum of the e2e-stage means; equals the LatencyStats e2e mean when all
  /// stage histograms carry the same arrivals.
  double e2e_stage_mean_sum_ns() const {
    double sum = 0;
    for (int s = 0; s < kE2eStages; ++s) {
      sum += h[static_cast<std::size_t>(s)].mean();
    }
    return sum;
  }
};

/// Running weighted-path sums along one dependency chain.  Shipped inside
/// ActivationRecords so the longest path is computed streaming, O(1) per
/// task, instead of materializing the task DAG: the invariant is
/// total() == the chain head's finish time on the global clock, so the
/// chain ending at the globally last-finishing task IS the critical path.
struct PathSums {
  des::Duration compute = 0;   ///< task-body time on the path
  des::Duration comm = 0;      ///< remote-delivery gaps on the path
  des::Duration overhead = 0;  ///< runtime time (scheduling, local waits)
  std::uint32_t tasks = 0;     ///< chain length, for reporting
  std::uint32_t pad_ = 0;      ///< keep wire bytes deterministic

  des::Duration total() const { return compute + comm + overhead; }
};
static_assert(sizeof(PathSums) == 32, "PathSums must pack without padding");

/// The longest weighted path observed so far: the chain ending at the
/// latest-finishing task.  Strictly-greater updates keep the first
/// maximum, so merging per-node results in rank order is deterministic.
struct CriticalPath {
  bool seen = false;
  des::Time finish_g = 0;  ///< global-clock finish time of the last task
  PathSums sums;
  TaskKey last;            ///< the chain's final task

  void observe(des::Time f, const PathSums& s, const TaskKey& k) {
    if (!seen || f > finish_g) {
      seen = true;
      finish_g = f;
      sums = s;
      last = k;
    }
  }
  void merge(const CriticalPath& o) {
    if (o.seen) observe(o.finish_g, o.sums, o.last);
  }
};

/// Per-node runtime counters.
struct NodeStats {
  std::uint64_t tasks_executed = 0;
  std::uint64_t activations_sent = 0;      ///< activation records
  std::uint64_t activate_ams = 0;          ///< AM messages (post-aggregation)
  std::uint64_t getdata_sent = 0;
  std::uint64_t getdata_deferred = 0;      ///< waited in the fetch queue
  std::uint64_t data_arrivals = 0;
  std::uint64_t forwards = 0;              ///< multicast-tree forwards
  // Fault-tolerance counters (all zero on fault-free runs).
  std::uint64_t tasks_reexecuted = 0;      ///< lineage re-arms applied here
  std::uint64_t dup_completions_suppressed = 0;
  std::uint64_t dup_inputs_dropped = 0;    ///< re-delivered inputs ignored
  std::uint64_t stale_activations = 0;     ///< duplicate/stale records dropped
  std::uint64_t fetches_abandoned = 0;     ///< pending fetches on a dead peer
  std::uint64_t reannounces = 0;           ///< flows re-served from the cache
  LatencyStats latency;
  /// Phase breakdown of the end-to-end path: activate-processed -> GET
  /// DATA sent (fetch_wait), and GET DATA sent -> data arrival (transfer).
  obs::Histogram fetch_wait;
  obs::Histogram transfer;
  /// Full lifecycle-stage decomposition (tentpole of the tracing layer).
  StageLats stages;
  /// Longest weighted dependency chain ending on this node.
  CriticalPath crit;
};

/// Copies the latency and lifecycle-stage histograms of `s` into `rec`
/// under "amt.lat.*", so drivers and benches can export them alongside
/// the CE/fabric metrics (AMTLCE_METRICS JSON dump).
inline void export_latency_metrics(const NodeStats& s, obs::Recorder& rec) {
  rec.histogram("amt.lat.hop_ns").merge(s.latency.hop);
  rec.histogram("amt.lat.e2e_ns").merge(s.latency.e2e);
  for (int i = 0; i < kNumStages; ++i) {
    rec.histogram(std::string("amt.lat.stage.") + kStageNames[i] + "_ns")
        .merge(s.stages.h[static_cast<std::size_t>(i)]);
  }
}

}  // namespace amt
