// Standard timeline probe set for a full runtime stack.
//
// obs::Timeline is layer-agnostic (it samples opaque double-valued
// callbacks); this module knows the stack and registers the probes the
// paper's bottleneck questions need:
//
//   des.qdepth     (per node)  DES event-queue depth of the node's shard
//   ce.unacked     (per node)  reliable-layer send window / RTO-pending
//   ce.fd.view     (per node)  worst surviving verdict about the node:
//                              0 Alive everywhere, 1 someone suspects it,
//                              2 someone declared it dead
//   amt.ready      (per node)  tasks released but not yet dispatched
//   amt.blocked    (per node)  announced flows still awaiting data
//   net.msgs / net.bytes (cluster)  cumulative fabric frame totals
//   net.link.t<T>.up_bytes / down_bytes (cluster)  boundary-tier totals,
//                              explicit-link topologies only
//   net.link.t<T>.s<S>.p<P>.bytes (cluster)  per-link cumulative bytes,
//                              explicit-link topologies only
//
// Registration order is deterministic (probe family, then node id), so
// the exported JSON is bit-identical across identical runs.  Probes hold
// references to the stack — the fabric, comm world, and runtime must
// outlive the timeline's last sample (finish()).
#pragma once

#include "obs/timeline.hpp"

namespace net {
class Fabric;
}
namespace ce {
class CommWorld;
}

namespace amt {

class Runtime;

void install_standard_probes(obs::Timeline& tl, net::Fabric& fabric,
                             ce::CommWorld& comm, Runtime& rt);

}  // namespace amt
