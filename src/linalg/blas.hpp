// Dense kernels (the BLAS/LAPACK subset the TLR Cholesky needs), written
// from scratch: gemm, syrk, trsm, potrf, Householder QR.  Loop order is
// column-major-friendly; these run on tile-sized problems in tests and
// examples, while paper-scale runs use flop models instead (see
// flops.hpp).
#pragma once

#include "linalg/matrix.hpp"

namespace linalg {

enum class Trans { No, Yes };

/// C += alpha * op(A) * op(B).  Shapes must conform.
void gemm(double alpha, const Matrix& a, Trans ta, const Matrix& b, Trans tb,
          double beta, Matrix& c);

/// C (n x n, lower) = beta*C + alpha * A * A^T, updating the lower
/// triangle only (upper mirrored for convenience).
void syrk_lower(double alpha, const Matrix& a, double beta, Matrix& c);

/// Solves L * X = B in place (B <- L^{-1} B); L lower-triangular,
/// non-unit diagonal.
void trsm_left_lower(const Matrix& l, Matrix& b);

/// Solves X * L^T = B in place (B <- B L^{-T}); L lower-triangular.
void trsm_right_lower_trans(const Matrix& l, Matrix& b);

/// In-place Cholesky of the lower triangle (A = L L^T; upper cleared).
/// Returns false if A is not positive definite.
bool potrf_lower(Matrix& a);

/// Thin Householder QR: A (m x n, m >= n) = Q (m x n) * R (n x n, upper).
void qr_thin(const Matrix& a, Matrix& q, Matrix& r);

}  // namespace linalg
