#include "linalg/svd.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace linalg {
namespace {

/// One-sided Jacobi on the columns of W (m x n, m >= n): orthogonalizes
/// column pairs; V accumulates the rotations so A = W_final * V^T with
/// W_final = U * diag(s).
void jacobi_columns(Matrix& w, Matrix& v, int max_sweeps, double tol) {
  const int n = w.cols();
  const int m = w.rows();
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        double app = 0, aqq = 0, apq = 0;
        for (int i = 0; i < m; ++i) {
          app += w(i, p) * w(i, p);
          aqq += w(i, q) * w(i, q);
          apq += w(i, p) * w(i, q);
        }
        if (std::abs(apq) <= tol * std::sqrt(app * aqq) || apq == 0.0) {
          continue;
        }
        rotated = true;
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0 ? 1.0 : -1.0) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (int i = 0; i < m; ++i) {
          const double wp = w(i, p), wq = w(i, q);
          w(i, p) = c * wp - s * wq;
          w(i, q) = s * wp + c * wq;
        }
        for (int i = 0; i < v.rows(); ++i) {
          const double vp = v(i, p), vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (!rotated) break;
  }
}

}  // namespace

SvdResult svd_jacobi(const Matrix& a, int max_sweeps, double tol) {
  const bool transpose = a.rows() < a.cols();
  Matrix w = transpose ? a.transposed() : a;
  const int m = w.rows();
  const int n = w.cols();
  Matrix v = Matrix::identity(n);
  jacobi_columns(w, v, max_sweeps, tol);

  // Column norms are the singular values.
  std::vector<double> s(static_cast<std::size_t>(n), 0.0);
  for (int j = 0; j < n; ++j) {
    double nrm = 0;
    for (int i = 0; i < m; ++i) nrm += w(i, j) * w(i, j);
    s[static_cast<std::size_t>(j)] = std::sqrt(nrm);
  }
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int x, int y) {
    return s[static_cast<std::size_t>(x)] > s[static_cast<std::size_t>(y)];
  });

  SvdResult out;
  out.u = Matrix(m, n);
  out.v = Matrix(n, n);
  out.s.resize(static_cast<std::size_t>(n));
  for (int jj = 0; jj < n; ++jj) {
    const int j = order[static_cast<std::size_t>(jj)];
    const double sv = s[static_cast<std::size_t>(j)];
    out.s[static_cast<std::size_t>(jj)] = sv;
    for (int i = 0; i < m; ++i) {
      out.u(i, jj) = sv > 0 ? w(i, j) / sv : 0.0;
    }
    for (int i = 0; i < n; ++i) out.v(i, jj) = v(i, j);
  }
  if (transpose) std::swap(out.u, out.v);
  return out;
}

}  // namespace linalg
