#include "linalg/lowrank.hpp"

#include <algorithm>
#include <cassert>

#include "linalg/blas.hpp"
#include "linalg/svd.hpp"

namespace linalg {
namespace {

int truncation_rank(const std::vector<double>& s,
                    const CompressOptions& opts) {
  int r = 0;
  for (double sv : s) {
    if (sv < opts.accuracy) break;
    ++r;
  }
  if (r == 0) r = 1;  // keep at least rank 1 so the tile stays usable
  if (opts.maxrank > 0) r = std::min(r, opts.maxrank);
  return r;
}

}  // namespace

LrTile compress(const Matrix& a, const CompressOptions& opts) {
  const SvdResult svd = svd_jacobi(a);
  const int r = truncation_rank(svd.s, opts);
  LrTile t;
  t.u = Matrix(a.rows(), r);
  t.v = Matrix(a.cols(), r);
  for (int j = 0; j < r; ++j) {
    const double sv = svd.s[static_cast<std::size_t>(j)];
    for (int i = 0; i < a.rows(); ++i) t.u(i, j) = svd.u(i, j) * sv;
    for (int i = 0; i < a.cols(); ++i) t.v(i, j) = svd.v(i, j);
  }
  return t;
}

Matrix lr_to_dense(const LrTile& t) {
  Matrix out(t.rows(), t.cols());
  gemm(1.0, t.u, Trans::No, t.v, Trans::Yes, 0.0, out);
  return out;
}

void recompress(LrTile& t, const CompressOptions& opts) {
  const int r = t.rank();
  if (r == 0) return;
  if (r >= t.rows() || r >= t.cols()) {
    // Rank no longer below the tile dimensions: the factored QR route
    // needs tall factors, so round-trip through the dense form instead.
    t = compress(lr_to_dense(t), opts);
    return;
  }
  // QR both factors, SVD the small core Ru * Rv^T, truncate, reassemble.
  Matrix qu, ru, qv, rv;
  qr_thin(t.u, qu, ru);
  qr_thin(t.v, qv, rv);
  Matrix core(r, r);
  gemm(1.0, ru, Trans::No, rv, Trans::Yes, 0.0, core);
  const SvdResult svd = svd_jacobi(core);
  const int k = truncation_rank(svd.s, opts);

  Matrix us(r, k);
  for (int j = 0; j < k; ++j) {
    const double sv = svd.s[static_cast<std::size_t>(j)];
    for (int i = 0; i < r; ++i) us(i, j) = svd.u(i, j) * sv;
  }
  Matrix vs = svd.v.columns(0, k);

  LrTile out;
  out.u = Matrix(t.rows(), k);
  out.v = Matrix(t.cols(), k);
  gemm(1.0, qu, Trans::No, us, Trans::No, 0.0, out.u);
  gemm(1.0, qv, Trans::No, vs, Trans::No, 0.0, out.v);
  t = std::move(out);
}

void lr_axpy(LrTile& c, double alpha, const LrTile& a,
             const CompressOptions& opts) {
  assert(c.rows() == a.rows() && c.cols() == a.cols());
  const int rc = c.rank();
  const int ra = a.rank();
  LrTile sum;
  sum.u = Matrix(c.rows(), rc + ra);
  sum.v = Matrix(c.cols(), rc + ra);
  for (int j = 0; j < rc; ++j) {
    for (int i = 0; i < c.rows(); ++i) sum.u(i, j) = c.u(i, j);
    for (int i = 0; i < c.cols(); ++i) sum.v(i, j) = c.v(i, j);
  }
  for (int j = 0; j < ra; ++j) {
    for (int i = 0; i < a.rows(); ++i) sum.u(i, rc + j) = alpha * a.u(i, j);
    for (int i = 0; i < a.cols(); ++i) sum.v(i, rc + j) = a.v(i, j);
  }
  recompress(sum, opts);
  c = std::move(sum);
}

}  // namespace linalg
