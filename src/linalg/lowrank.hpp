// Low-rank tile representation and compression.
//
// A tile A (m x n) is stored as A ~= U * V^T with U: m x r, V: n x r —
// the packed U x V format HiCMA uses; its memory footprint is
// (m + n) * r doubles, the quantity the paper's §6.4.2 message-size
// discussion is about.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace linalg {

struct LrTile {
  Matrix u;  ///< m x r
  Matrix v;  ///< n x r

  int rows() const { return u.rows(); }
  int cols() const { return v.rows(); }
  int rank() const { return u.cols(); }

  /// Packed U x V storage footprint.
  std::size_t bytes() const {
    return (static_cast<std::size_t>(rows()) +
            static_cast<std::size_t>(cols())) *
           static_cast<std::size_t>(rank()) * sizeof(double);
  }
};

struct CompressOptions {
  /// Absolute singular-value threshold (HiCMA "fixed accuracy"): keep
  /// sigma_i >= accuracy.
  double accuracy = 1e-8;
  /// Hard rank cap (HiCMA maxrank); 0 means unlimited.
  int maxrank = 0;
};

/// Compresses a dense tile into U * V^T form.
LrTile compress(const Matrix& a, const CompressOptions& opts);

/// Reconstructs the dense tile (U * V^T).
Matrix lr_to_dense(const LrTile& t);

/// Rounds a (possibly rank-inflated) tile back down to the requested
/// accuracy using QR + small-SVD recompression.
void recompress(LrTile& t, const CompressOptions& opts);

/// C <- C + alpha * A where both are low-rank over the same shape:
/// concatenates factors then recompresses.
void lr_axpy(LrTile& c, double alpha, const LrTile& a,
             const CompressOptions& opts);

}  // namespace linalg
