// Dense column-major matrix of doubles.
//
// Deliberately minimal: the HiCMA reproduction needs owned storage, an
// (i,j) accessor, and cheap moves.  All kernels in blas.hpp operate on
// whole matrices (tiles), which is exactly the granularity the tile-based
// algorithms use.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) *
              static_cast<std::size_t>(cols)) {
    assert(rows >= 0 && cols >= 0);
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(int i, int j) {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(j) *
                     static_cast<std::size_t>(rows_) +
                 static_cast<std::size_t>(i)];
  }
  double operator()(int i, int j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(j) *
                     static_cast<std::size_t>(rows_) +
                 static_cast<std::size_t>(i)];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::size_t size_bytes() const { return data_.size() * sizeof(double); }

  /// Column-slice copy: columns [c0, c0+n).
  Matrix columns(int c0, int n) const {
    assert(c0 >= 0 && c0 + n <= cols_);
    Matrix out(rows_, n);
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < rows_; ++i) out(i, j) = (*this)(i, c0 + j);
    }
    return out;
  }

  Matrix transposed() const {
    Matrix out(cols_, rows_);
    for (int j = 0; j < cols_; ++j) {
      for (int i = 0; i < rows_; ++i) out(j, i) = (*this)(i, j);
    }
    return out;
  }

  static Matrix identity(int n) {
    Matrix out(n, n);
    for (int i = 0; i < n; ++i) out(i, i) = 1.0;
    return out;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// Frobenius norm of A.
double frobenius_norm(const Matrix& a);

/// Frobenius norm of A - B (shapes must match).
double frobenius_diff(const Matrix& a, const Matrix& b);

}  // namespace linalg
