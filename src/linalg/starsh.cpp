#include "linalg/starsh.hpp"

#include <cassert>
#include <cmath>

#include "des/rng.hpp"

namespace linalg {

std::vector<std::pair<double, double>> sqexp_points(const SqExpProblem& p) {
  assert(p.n > 0);
  const int side = static_cast<int>(std::ceil(std::sqrt(
      static_cast<double>(p.n))));
  const double spacing = 1.0 / static_cast<double>(side);
  des::Rng rng(des::derive_seed(p.seed, 0x9017));
  std::vector<std::pair<double, double>> pts;
  pts.reserve(static_cast<std::size_t>(p.n));
  for (int idx = 0; idx < p.n; ++idx) {
    const int gx = idx % side;
    const int gy = idx / side;
    const double jx = p.jitter * spacing * (rng.uniform() - 0.5);
    const double jy = p.jitter * spacing * (rng.uniform() - 0.5);
    pts.emplace_back((gx + 0.5) * spacing + jx, (gy + 0.5) * spacing + jy);
  }
  return pts;
}

double sqexp_entry(const SqExpProblem& p,
                   const std::vector<std::pair<double, double>>& pts, int i,
                   int j) {
  const auto [xi, yi] = pts[static_cast<std::size_t>(i)];
  const auto [xj, yj] = pts[static_cast<std::size_t>(j)];
  const double dx = xi - xj;
  const double dy = yi - yj;
  const double d2 = dx * dx + dy * dy;
  double v = std::exp(-d2 / (2.0 * p.length_scale * p.length_scale));
  if (i == j) v += p.noise;
  return v;
}

Matrix sqexp_block(const SqExpProblem& p,
                   const std::vector<std::pair<double, double>>& pts, int r0,
                   int m, int c0, int n) {
  Matrix out(m, n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      out(i, j) = sqexp_entry(p, pts, r0 + i, c0 + j);
    }
  }
  return out;
}

}  // namespace linalg
