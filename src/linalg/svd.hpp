// Singular value decomposition via one-sided Jacobi rotations.
//
// Robust and dependency-free; cubic cost is fine at tile scale.  Returns
// the thin SVD A (m x n) = U (m x k) * diag(s) * V^T (k x n) with
// k = min(m, n) and s sorted descending.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace linalg {

struct SvdResult {
  Matrix u;               ///< m x k, orthonormal columns
  std::vector<double> s;  ///< k singular values, descending
  Matrix v;               ///< n x k, orthonormal columns (A = U S V^T)
};

SvdResult svd_jacobi(const Matrix& a, int max_sweeps = 60,
                     double tol = 1e-13);

}  // namespace linalg
