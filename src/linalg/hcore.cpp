#include "linalg/hcore.hpp"

#include <cassert>

#include "linalg/blas.hpp"

namespace linalg {

void lr_trsm(const Matrix& l, LrTile& a) {
  // (U V^T) L^{-T} = U (L^{-1} V)^T.
  assert(l.rows() == a.cols());
  trsm_left_lower(l, a.v);
}

void lr_syrk(const LrTile& a, Matrix& c) {
  assert(c.rows() == a.rows() && c.cols() == a.rows());
  const int r = a.rank();
  // W = V^T V  (r x r)
  Matrix w(r, r);
  gemm(1.0, a.v, Trans::Yes, a.v, Trans::No, 0.0, w);
  // T = U W  (m x r)
  Matrix t(a.rows(), r);
  gemm(1.0, a.u, Trans::No, w, Trans::No, 0.0, t);
  // C -= T U^T
  gemm(-1.0, t, Trans::No, a.u, Trans::Yes, 1.0, c);
}

void lr_gemm(const LrTile& a, const LrTile& b, LrTile& c,
             const CompressOptions& opts) {
  assert(a.cols() == b.cols());  // contraction over the k dimension
  assert(c.rows() == a.rows() && c.cols() == b.rows());
  // A B^T = U_a (V_a^T V_b) U_b^T.
  Matrix w(a.rank(), b.rank());
  gemm(1.0, a.v, Trans::Yes, b.v, Trans::No, 0.0, w);
  LrTile prod;
  prod.u = Matrix(a.rows(), b.rank());
  gemm(1.0, a.u, Trans::No, w, Trans::No, 0.0, prod.u);
  prod.v = b.u;  // (U_a W) U_b^T => V factor is U_b
  lr_axpy(c, -1.0, prod, opts);
}

}  // namespace linalg
