// HCORE-style tile kernels for TLR Cholesky (HiCMA's compute core).
//
// The two-flow TLR Cholesky with band size 1 keeps diagonal tiles dense
// and off-band tiles low-rank; these kernels implement the four update
// types it needs.
#pragma once

#include "linalg/lowrank.hpp"
#include "linalg/matrix.hpp"

namespace linalg {

/// TRSM on a low-rank tile: A <- A * L^{-T} where A = U V^T, so only
/// V <- L^{-1} V changes (the classic TLR trick: cost depends on rank,
/// not tile width).
void lr_trsm(const Matrix& l, LrTile& a);

/// SYRK with a low-rank A into a dense lower-triangular C:
/// C <- C - (U V^T)(U V^T)^T = C - U (V^T V) U^T.
void lr_syrk(const LrTile& a, Matrix& c);

/// GEMM of two low-rank tiles into a low-rank tile:
/// C <- C - A * B^T, computed in factored form and recompressed.
void lr_gemm(const LrTile& a, const LrTile& b, LrTile& c,
             const CompressOptions& opts);

/// Kernel cost split by execution profile: `dense` flops run at the
/// machine's dense BLAS-3 rate; `skinny` flops are rank-sized panel
/// operations (tall QR, small SVD, thin GEMM) that run memory-bound.
struct KernelCost {
  double dense = 0;
  double skinny = 0;
};

namespace flops {

/// Dense kernel flop counts (standard LAPACK conventions).
constexpr double potrf(double n) { return n * n * n / 3.0; }
constexpr double trsm(double m, double n) { return m * n * n; }
constexpr double syrk(double n, double k) { return n * n * k; }
constexpr double gemm(double m, double n, double k) {
  return 2.0 * m * n * k;
}

/// TLR kernel flop counts as functions of tile size and ranks (Akbudak et
/// al.): these are what make HiCMA tasks "far less compute-intense than
/// traditional GEMM kernels" (§6.4.1).
constexpr KernelCost lr_trsm(double nb, double r) {
  // Triangular solve applied to V (nb x r): BLAS-3 shaped.
  return {nb * nb * r, 0.0};
}
constexpr KernelCost lr_syrk(double nb, double r) {
  // W = V^T V and T = U W are skinny; C -= T U^T is a dense-shaped GEMM.
  return {2.0 * nb * nb * r, 2.0 * nb * r * r + 2.0 * nb * r * r};
}
inline KernelCost lr_gemm(double nb, double ra, double rb, double rc) {
  // Factored product + QR/SVD recompression of rank (rc + min(ra, rb));
  // everything is rank-sized panel work.
  const double rmin = ra < rb ? ra : rb;
  const double rsum = rc + rmin;
  const double product = 2.0 * nb * ra * rb + 2.0 * nb * ra * rmin;
  const double qr2 = 2.0 * 2.0 * nb * rsum * rsum;
  const double small_svd = 22.0 * rsum * rsum * rsum;
  const double reassemble = 4.0 * nb * rsum * rsum;
  return {0.0, product + qr2 + small_svd + reassemble};
}

constexpr double total(const KernelCost& c) { return c.dense + c.skinny; }

}  // namespace flops

}  // namespace linalg
