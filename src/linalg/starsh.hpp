// Synthetic application matrices (the STARS-H role in the HiCMA stack).
//
// st-2d-sqexp: spatial statistics covariance on a 2D point grid with the
// squared-exponential kernel — the problem type of the paper's §6.4
// experiments.  Off-diagonal blocks of such matrices are numerically
// low-rank, with rank decaying with distance from the diagonal, which is
// what gives HiCMA its workload shape.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"

namespace linalg {

struct SqExpProblem {
  int n = 0;                 ///< matrix dimension (= number of points)
  double length_scale = 0.1; ///< kernel correlation length
  double noise = 1e-2;       ///< diagonal nugget (keeps the matrix SPD)
  double jitter = 0.3;       ///< grid perturbation, fraction of spacing
  std::uint64_t seed = 42;
};

/// 2D point set: a near-regular sqrt(n) x sqrt(n) grid over the unit
/// square with deterministic jitter (the STARS-H spatial layout).
std::vector<std::pair<double, double>> sqexp_points(const SqExpProblem& p);

/// Covariance entry K(i, j) for the point set.
double sqexp_entry(const SqExpProblem& p,
                   const std::vector<std::pair<double, double>>& pts, int i,
                   int j);

/// Materializes the dense block rows [r0, r0+m) x cols [c0, c0+n).
Matrix sqexp_block(const SqExpProblem& p,
                   const std::vector<std::pair<double, double>>& pts, int r0,
                   int m, int c0, int n);

}  // namespace linalg
