#include "linalg/blas.hpp"

#include <cassert>
#include <cmath>

namespace linalg {

double frobenius_norm(const Matrix& a) {
  double s = 0;
  for (int j = 0; j < a.cols(); ++j) {
    for (int i = 0; i < a.rows(); ++i) s += a(i, j) * a(i, j);
  }
  return std::sqrt(s);
}

double frobenius_diff(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  double s = 0;
  for (int j = 0; j < a.cols(); ++j) {
    for (int i = 0; i < a.rows(); ++i) {
      const double d = a(i, j) - b(i, j);
      s += d * d;
    }
  }
  return std::sqrt(s);
}

void gemm(double alpha, const Matrix& a, Trans ta, const Matrix& b, Trans tb,
          double beta, Matrix& c) {
  const int m = c.rows();
  const int n = c.cols();
  const int ka = ta == Trans::No ? a.cols() : a.rows();
  const int kb = tb == Trans::No ? b.rows() : b.cols();
  assert(ka == kb);
  assert((ta == Trans::No ? a.rows() : a.cols()) == m);
  assert((tb == Trans::No ? b.cols() : b.rows()) == n);
  const int kk = ka;

  if (beta != 1.0) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < m; ++i) c(i, j) *= beta;
    }
  }
  auto av = [&](int i, int l) { return ta == Trans::No ? a(i, l) : a(l, i); };
  auto bv = [&](int l, int j) { return tb == Trans::No ? b(l, j) : b(j, l); };
  for (int j = 0; j < n; ++j) {
    for (int l = 0; l < kk; ++l) {
      const double blj = alpha * bv(l, j);
      if (blj == 0.0) continue;
      for (int i = 0; i < m; ++i) c(i, j) += av(i, l) * blj;
    }
  }
}

void syrk_lower(double alpha, const Matrix& a, double beta, Matrix& c) {
  const int n = c.rows();
  assert(c.cols() == n && a.rows() == n);
  const int k = a.cols();
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      double s = 0;
      for (int l = 0; l < k; ++l) s += a(i, l) * a(j, l);
      const double v = beta * c(i, j) + alpha * s;
      c(i, j) = v;
      c(j, i) = v;  // keep the mirror coherent
    }
  }
}

void trsm_left_lower(const Matrix& l, Matrix& b) {
  const int n = b.rows();
  assert(l.rows() == n && l.cols() == n);
  for (int j = 0; j < b.cols(); ++j) {
    for (int i = 0; i < n; ++i) {
      double s = b(i, j);
      for (int p = 0; p < i; ++p) s -= l(i, p) * b(p, j);
      b(i, j) = s / l(i, i);
    }
  }
}

void trsm_right_lower_trans(const Matrix& l, Matrix& b) {
  // X L^T = B  =>  column sweep: x_j = (b_j - sum_{p<j} x_p * L(j,p)) / L(j,j)
  const int n = b.cols();
  assert(l.rows() == n && l.cols() == n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < b.rows(); ++i) {
      double s = b(i, j);
      for (int p = 0; p < j; ++p) s -= b(i, p) * l(j, p);
      b(i, j) = s / l(j, j);
    }
  }
}

bool potrf_lower(Matrix& a) {
  const int n = a.rows();
  assert(a.cols() == n);
  for (int j = 0; j < n; ++j) {
    double d = a(j, j);
    for (int p = 0; p < j; ++p) d -= a(j, p) * a(j, p);
    if (d <= 0.0 || !std::isfinite(d)) return false;
    const double ljj = std::sqrt(d);
    a(j, j) = ljj;
    for (int i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (int p = 0; p < j; ++p) s -= a(i, p) * a(j, p);
      a(i, j) = s / ljj;
    }
  }
  // Clear the strictly upper triangle so A holds exactly L.
  for (int j = 1; j < n; ++j) {
    for (int i = 0; i < j; ++i) a(i, j) = 0.0;
  }
  return true;
}

void qr_thin(const Matrix& a, Matrix& q, Matrix& r) {
  const int m = a.rows();
  const int n = a.cols();
  assert(m >= n);
  // Householder factorization on a working copy.
  Matrix w = a;
  std::vector<std::vector<double>> vs;  // reflector vectors
  vs.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    double norm = 0;
    for (int i = k; i < m; ++i) norm += w(i, k) * w(i, k);
    norm = std::sqrt(norm);
    std::vector<double> v(static_cast<std::size_t>(m - k), 0.0);
    if (norm > 0.0) {
      const double alpha = w(k, k) >= 0 ? -norm : norm;
      v[0] = w(k, k) - alpha;
      for (int i = k + 1; i < m; ++i) {
        v[static_cast<std::size_t>(i - k)] = w(i, k);
      }
      double vnorm2 = 0;
      for (double x : v) vnorm2 += x * x;
      if (vnorm2 > 0) {
        // Apply H = I - 2 v v^T / (v^T v) to the trailing block.
        for (int j = k; j < n; ++j) {
          double dot = 0;
          for (int i = k; i < m; ++i) {
            dot += v[static_cast<std::size_t>(i - k)] * w(i, j);
          }
          const double f = 2.0 * dot / vnorm2;
          for (int i = k; i < m; ++i) {
            w(i, j) -= f * v[static_cast<std::size_t>(i - k)];
          }
        }
      }
    }
    vs.push_back(std::move(v));
  }
  r = Matrix(n, n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i <= j; ++i) r(i, j) = w(i, j);
  }
  // Form thin Q by applying reflectors to the first n columns of I.
  q = Matrix(m, n);
  for (int j = 0; j < n; ++j) q(j, j) = 1.0;
  for (int k = n - 1; k >= 0; --k) {
    const auto& v = vs[static_cast<std::size_t>(k)];
    double vnorm2 = 0;
    for (double x : v) vnorm2 += x * x;
    if (vnorm2 == 0) continue;
    for (int j = 0; j < n; ++j) {
      double dot = 0;
      for (int i = k; i < m; ++i) {
        dot += v[static_cast<std::size_t>(i - k)] * q(i, j);
      }
      const double f = 2.0 * dot / vnorm2;
      for (int i = k; i < m; ++i) {
        q(i, j) -= f * v[static_cast<std::size_t>(i - k)];
      }
    }
  }
}

}  // namespace linalg
