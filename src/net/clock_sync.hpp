// Clock synchronization for cross-node latency measurement.
//
// The paper measures ACTIVATE-to-data-arrival latency across nodes and
// synchronizes clocks with a hierarchical offset-estimation algorithm
// (Hunold & Carpen-Amarie, CLUSTER'18) re-run at every execution epoch.  We
// reproduce the methodology: the fabric can inject per-node clock skew, and
// this module estimates each node's offset relative to node 0 using
// round-trip probes, keeping the lowest-RTT sample per node.
//
// synchronize() temporarily owns the NICs' delivery handlers; run it before
// a communication library is attached (or between epochs while the library
// is quiesced and re-attach afterwards).
#pragma once

#include <vector>

#include "des/time.hpp"
#include "net/fabric.hpp"

namespace net {

class ClockSync {
 public:
  struct Options {
    int rounds = 5;          ///< probe rounds per node (min-RTT filter)
    /// Per-probe timeout before the probe is retransmitted.  0 derives a
    /// bound from the fabric config (round trip + worst-case fault delay).
    des::Duration timeout = 0;
    int max_attempts = 8;    ///< probe (re)transmissions per round
  };

  struct Result {
    std::vector<des::Duration> offsets;  ///< per node, relative to node 0
    /// True when every node produced at least one valid sample.  False
    /// means some node's offset could not be estimated (offset left 0) —
    /// e.g. the link was browned out for the whole exchange.
    bool synced = true;
    std::uint64_t probes_lost = 0;  ///< probe timeouts (lost or late)
  };

  /// Estimated offsets such that global_time ~= local_clock(n) - offset[n].
  /// Runs `rounds` probes per node and uses the minimum-RTT sample; lost
  /// probes (the fabric may drop, corrupt, or stall traffic) time out and
  /// are retransmitted up to `max_attempts` times per round.  Drives the
  /// engine until the exchange completes.
  static Result synchronize(Fabric& fabric, const Options& opts);

  /// Legacy convenience: fault-free fabrics always sync.
  static std::vector<des::Duration> synchronize(Fabric& fabric,
                                                int rounds = 5);
};

/// Maps node-local clock readings onto the reference (node 0) timeline
/// using offsets estimated by ClockSync.
class GlobalClock {
 public:
  GlobalClock() = default;
  explicit GlobalClock(std::vector<des::Duration> offsets)
      : offsets_(std::move(offsets)) {}

  /// Identity mapping for `n` nodes (for skew-free simulations).
  static GlobalClock identity(int num_nodes) {
    return GlobalClock(std::vector<des::Duration>(
        static_cast<std::size_t>(num_nodes), 0));
  }

  des::Time to_global(NodeId node, des::Time local) const {
    return local - offsets_.at(static_cast<std::size_t>(node));
  }

  const std::vector<des::Duration>& offsets() const { return offsets_; }

 private:
  std::vector<des::Duration> offsets_;
};

}  // namespace net
