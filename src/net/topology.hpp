// Hierarchical fat-tree topology: explicit switch tiers, per-link
// serialization queues, and deterministic ECMP routing.
//
// The fabric's legacy model prices a cross-leaf message at a fixed
// 3-hop latency bump and lets NIC pipes do all the queueing.  That is
// exact for an idle fabric but blind to the two effects that decide
// whether a many-small-messages runtime scales past a few racks:
// shared-uplink serialization (oversubscribed leaf switches) and
// spine congestion (many pairs hashing onto one plane).  This module
// models both while preserving the legacy timing EXACTLY when links
// are uncongested: per-link passage uses a cut-through fluid
// recurrence whose uncongested fixed point is "last byte advances by
// the switch latency", so an idle fat-tree reproduces
// wire_latency + hops * per_hop_latency to the nanosecond.
//
// Structure: `levels[t]` describes switch tier t bottom-up.  Tier 0
// switches (leaves) each attach `radix` nodes; tier t switches each
// attach `radix` tier-(t-1) switches; the top tier spans everything
// (its radix is ignored).  Each non-top tier-t switch has `uplinks`
// parallel up-ports (ECMP planes) toward tier t+1.  A message between
// nodes whose first common switch sits at tier T traverses 2T+1
// switches and 2T links (T up, T down).
//
// Routing is plane-symmetric ECMP: one deterministic hash per tier
// boundary, derived from (src, dst, salt), picks the plane; the up
// link at tier t is (src-side tier-t switch, plane) and the down link
// is (dst-side tier-t switch, plane).  Same pair, same path, always —
// determinism is a hard invariant, not a tie-break accident.
#pragma once

#include <cstdint>
#include <vector>

#include "des/time.hpp"
#include "net/message.hpp"

namespace net {

struct FabricConfig;

/// One switch tier, bottom-up.  Defaults of 0 / -1 mean "inherit from
/// the owning FabricConfig" (resolved at Topology construction).
struct TopologyLevel {
  /// Children per switch: nodes for tier 0, tier-(t-1) switches above.
  /// Ignored on the top tier (it spans all).  Node/switch counts not
  /// divisible by the radix leave the last switch partially populated —
  /// explicitly supported, never rounds into a phantom group.
  int radix = 0;

  /// Parallel up-ports (ECMP planes) toward the next tier.  0 on a
  /// non-top tier derives ceil(radix / oversubscription).  Ignored on
  /// the top tier.
  int uplinks = 0;

  /// Bandwidth of each up/down port at this tier boundary, bytes/sec.
  /// 0 inherits FabricConfig::link_bandwidth_Bps.
  double uplink_bandwidth_Bps = 0;

  /// Latency of traversing one switch of this tier.  -1 inherits
  /// FabricConfig::per_hop_latency.
  des::Duration switch_latency = -1;
};

struct TopologyConfig {
  /// Off (default): the fabric keeps the legacy fixed-latency hop model
  /// — no link queues, bit-identical to pre-topology builds.  On: every
  /// cross-leaf message is routed over explicit per-link FIFO queues.
  bool explicit_links = false;

  /// Downlink:uplink capacity ratio used to derive `uplinks` for levels
  /// that leave it 0 (assuming equal port bandwidth).
  double oversubscription = 1.0;

  /// Switch tiers, bottom-up (leaf first, top last).  Empty: a two-tier
  /// tree is synthesized from FabricConfig::nodes_per_switch.
  std::vector<TopologyLevel> levels;

  /// Salt for the deterministic ECMP plane hash.
  std::uint64_t route_salt = 0x57A1E;
};

/// Per-link counters (tests assert conservation: the sum of link bytes
/// per boundary equals the fabric's cross-leaf bytes).
struct LinkStats {
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  des::Time busy_until = 0;  ///< link FIFO frees at this time
};

class Topology {
 public:
  /// Resolves config defaults against `fabric_cfg` and builds the link
  /// state for `num_nodes` nodes.  Throws std::invalid_argument on an
  /// unsatisfiable tier description.
  Topology(const FabricConfig& fabric_cfg, int num_nodes);

  bool explicit_links() const { return explicit_; }
  int num_nodes() const { return num_nodes_; }
  int num_tiers() const { return static_cast<int>(tiers_.size()); }
  int num_switches(int tier) const { return tiers_[tier].count; }
  int uplinks(int tier) const { return tiers_[tier].uplinks; }

  /// Tier-`tier` switch containing `node` (tier 0 = leaf).  Assumes a
  /// valid node id — the Fabric validates at the send boundary.
  int switch_of(NodeId node, int tier) const;

  /// Switch hops between two nodes: 0 loopback, 2T+1 where T is the
  /// first tier at which the nodes share a switch.
  int hops(NodeId a, NodeId b) const;

  /// Sum of switch traversal latencies on the (uncongested) a->b path.
  /// Equals hops(a, b) * per_hop_latency under inherited defaults.
  des::Duration path_switch_latency(NodeId a, NodeId b) const;

  /// The ECMP plane used at tier boundary `tier` for src->dst traffic.
  /// Pure function of (src, dst, tier, salt) — the determinism anchor.
  int plane(NodeId src, NodeId dst, int tier) const;

  /// Routes one message's last byte through the fat tree: charges every
  /// traversed link FIFO and returns the time the last byte clears the
  /// final (dst-leaf) switch.  `entry` is when it leaves the src NIC.
  /// The caller adds wire/propagation latency and any fault jitter.
  /// Mutates link state — call exactly once per transmitted frame, in
  /// event order.  Precondition: explicit_links() and src/dst on
  /// different leaves (same-leaf traffic never touches a shared link).
  des::Time traverse(NodeId src, NodeId dst, std::uint64_t bytes,
                     des::Time entry);

  /// Link introspection for tests: boundary tier t, switch s, plane p.
  const LinkStats& up_link(int tier, int sw, int plane) const {
    return up_[tier][link_index(tier, sw, plane)];
  }
  const LinkStats& down_link(int tier, int sw, int plane) const {
    return down_[tier][link_index(tier, sw, plane)];
  }

  /// Totals across one boundary tier, up and down direction.
  std::uint64_t boundary_bytes_up(int tier) const;
  std::uint64_t boundary_bytes_down(int tier) const;
  std::uint64_t boundary_msgs_up(int tier) const;

 private:
  struct Tier {
    int radix = 1;
    int uplinks = 1;
    int count = 1;                    ///< switches in this tier
    double bandwidth_Bps = 1;         ///< per port at this boundary
    des::Duration switch_latency = 0;
  };

  std::size_t link_index(int tier, int sw, int plane) const {
    return static_cast<std::size_t>(sw) *
               static_cast<std::size_t>(tiers_[tier].uplinks) +
           static_cast<std::size_t>(plane);
  }

  /// Cut-through fluid passage: the last byte arrives at the link exit
  /// no earlier than `arrive`; if the FIFO is busy the message queues.
  /// Uncongested, exit == arrive (pure pass-through); congested, the
  /// link serializes at its own bandwidth.
  des::Time link_pass(LinkStats& link, des::Time arrive,
                      des::Duration ser, std::uint64_t bytes);

  int num_nodes_ = 0;
  bool explicit_ = false;
  std::uint64_t salt_ = 0;
  std::vector<Tier> tiers_;
  // Link FIFOs per boundary tier: index = switch * uplinks + plane.
  std::vector<std::vector<LinkStats>> up_;
  std::vector<std::vector<LinkStats>> down_;
};

}  // namespace net
