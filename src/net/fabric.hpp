// The simulated cluster fabric.
//
// Timing model (LogGP-flavoured, cut-through):
//   - Sender NIC egress is a FIFO pipe: a message occupies it for
//     max(bytes / bandwidth, 1 / msg_rate) starting when the pipe frees.
//   - The last byte reaches the receiver egress_end + latency(src, dst)
//     later, where latency includes per-switch-hop costs from a two-level
//     fat-tree hop count.
//   - Receiver NIC ingress is a FIFO pipe too: concurrent senders to one
//     node serialize, which is what produces incast queueing.
//   - Delivery fires when the ingress pipe finishes the message; upper
//     layers treat it as "the NIC wrote a completion-queue entry".
//
// Host CPU costs (send/recv software overhead, matching, callbacks) are
// deliberately NOT modeled here — they belong to the communication
// libraries (mmpi / mlci), because the difference between those libraries
// is the paper's subject.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "des/engine.hpp"
#include "des/rng.hpp"
#include "des/time.hpp"
#include "net/config.hpp"
#include "net/message.hpp"
#include "net/topology.hpp"
#include "obs/stats.hpp"

namespace net {

/// Per-NIC traffic counters.
struct NicStats {
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

/// Fabric-wide fault-injection counters (all zero when faults are off).
struct FaultStats {
  std::uint64_t drops = 0;           ///< includes brownout drops
  std::uint64_t dropped_bytes = 0;
  std::uint64_t dups = 0;
  std::uint64_t dup_bytes = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t spikes = 0;
  std::uint64_t stalled_msgs = 0;
  std::uint64_t brownout_drops = 0;
  std::uint64_t undeliverable = 0;  ///< arrivals with no handler installed
  std::uint64_t crashes = 0;        ///< fail-stop crash events fired
  std::uint64_t crash_drops = 0;    ///< frames eaten by a crashed NIC
  std::uint64_t crash_cancelled_events = 0;  ///< DES events killed by crashes
};

class Fabric;
class Nic;

/// Bump-in-the-wire interposer between the upper communication libraries
/// and the raw NIC pipes.  ce::ReliableChannel implements this to add
/// sequence numbers / checksums / retransmission below mmpi and mlci
/// without either library knowing.
class LinkShim {
 public:
  virtual ~LinkShim() = default;
  /// Outgoing message from the upper layer.  The shim must eventually call
  /// Nic::raw_send (possibly several times, for retransmits).
  virtual void shim_send(Message&& m, std::function<void()> on_sent) = 0;
  /// Incoming message off the wire.  Return true to consume it (control
  /// traffic, duplicates, corrupt frames); false passes it to the upper
  /// layer's deliver handler.
  virtual bool shim_deliver(Message& m) = 0;
};

/// One node's network interface.  Upper layers send through it and register
/// a delivery handler to receive.
class Nic {
 public:
  using DeliverHandler = std::function<void(Message&&)>;
  /// Invoked when the last byte of a sent message has left this NIC (the
  /// send buffer is reusable and, for RDMA-style semantics, the transfer is
  /// locally complete).
  using SentHandler = std::function<void()>;

  /// Starts sending `m` (m.src must equal this NIC's node).  `on_sent` may
  /// be null.  Delivery at the destination is asynchronous.  Routed
  /// through the installed LinkShim, if any.
  void send(Message m, SentHandler on_sent = nullptr);

  /// Sends bypassing the shim — the shim's own path to the wire (also
  /// what send() degenerates to with no shim installed).
  void raw_send(Message m, SentHandler on_sent = nullptr);

  /// Registers the function invoked on message arrival.  Exactly one
  /// handler per NIC (the owning communication library).
  void set_deliver_handler(DeliverHandler h) { deliver_ = std::move(h); }

  /// Installs (null: removes) the link-layer interposer.  The shim is not
  /// owned and must outlive all traffic through it.
  void set_shim(LinkShim* shim) { shim_ = shim; }
  LinkShim* shim() const { return shim_; }

  NodeId node() const { return node_; }
  const NicStats& stats() const { return stats_; }

  /// Earliest time a new egress could start (for tests / introspection).
  des::Time egress_free_at() const { return egress_free_; }

 private:
  friend class Fabric;
  Nic(Fabric& fabric, NodeId node) : fabric_(fabric), node_(node) {}

  /// Arrival entry point: shim first, then the deliver handler.
  void dispatch(Message&& m);

  Fabric& fabric_;
  NodeId node_;
  DeliverHandler deliver_;
  LinkShim* shim_ = nullptr;
  NicStats stats_;
  des::Time egress_free_ = 0;
  des::Time ingress_free_ = 0;
  // This node's in-flight delivery pool: an incoming message parks in a
  // slot between schedule and dispatch, so the event closure captures
  // (Nic*, slot index) — always inline in des::InplaceCallback — instead
  // of a whole Message.  SoA index pool rather than a vector of
  // heap-allocated records: the Message slots sit contiguously in ONE
  // allocation per node (two cache-resident vectors instead of a pointer
  // chase per message), indices stay stable across growth, and the free
  // list is a parallel index column.  Slots are recycled free-list-first,
  // so steady-state allocation per message is zero.
  static constexpr std::uint32_t kNoDelivery = 0xFFFFFFFFu;
  std::vector<Message> delivery_slots_;
  std::vector<std::uint32_t> delivery_next_free_;
  std::uint32_t delivery_free_ = kNoDelivery;
};

class Fabric {
 public:
  Fabric(des::Engine& engine, int num_nodes, FabricConfig config = {});

  des::Engine& engine() { return eng_; }
  const FabricConfig& config() const { return cfg_; }
  int num_nodes() const { return static_cast<int>(nics_.size()); }

  Nic& nic(NodeId node) { return *nics_.at(static_cast<std::size_t>(node)); }

  /// The fabric's topology model (hop math, link queues, per-link
  /// stats).  Link state mutates as messages transit; treat as
  /// read-only outside the fabric.
  const Topology& topology() const { return topo_; }

  /// Switch hops between two nodes under the configured topology.
  /// Node ids are validated — an out-of-range or negative id is a hard
  /// std::out_of_range, never silent garbage group math.
  int hops(NodeId a, NodeId b) const;

  /// One-way wire latency between two nodes (excludes pipe occupancy
  /// and link congestion; this is the uncongested propagation figure
  /// RTO estimators want).  Validates node ids like hops().
  des::Duration latency(NodeId a, NodeId b) const;

  /// Pure serialization time of `bytes` on one pipe (without the
  /// message-rate floor).
  des::Duration serialization_time(std::uint64_t bytes) const {
    return des::transfer_time(bytes, cfg_.link_bandwidth_Bps);
  }

  /// Pipe occupancy of one message: max(serialization, message-rate gap).
  des::Duration occupancy(std::uint64_t bytes) const;

  /// The node's local clock reading (global time + injected skew).
  des::Time local_clock(NodeId node) const {
    return eng_.now() + skew_.at(static_cast<std::size_t>(node));
  }

  /// The injected (ground-truth) skew of a node's clock.
  des::Duration true_skew(NodeId node) const {
    return skew_.at(static_cast<std::size_t>(node));
  }

  /// Frames that entered the wire, including fault-injected duplicates —
  /// so with faults on, total_messages() == delivered + fault drops.
  std::uint64_t total_messages() const { return total_msgs_; }
  std::uint64_t total_bytes() const { return total_bytes_; }

  /// Fault-injection counters (all zero when cfg.faults is inactive).
  const FaultStats& fault_stats() const { return fault_stats_; }

  /// Ground-truth liveness: false while `node` is inside a crash window
  /// (i.e. after its crash control event fired and before any restart).
  bool node_alive(NodeId node) const {
    return !crashed_.at(static_cast<std::size_t>(node));
  }

  /// Registers a callback fired when a node's fail-stop state changes:
  /// fn(node, false) at crash time (after the node's shard events were
  /// cancelled), fn(node, true) at restart.  Handlers are invoked in
  /// registration order and are never removed — register for the
  /// fabric's lifetime.
  using CrashHandler = std::function<void(NodeId, bool up)>;
  void add_crash_handler(CrashHandler fn) {
    crash_handlers_.push_back(std::move(fn));
  }

  /// Attaches a metrics recorder ("net.wire_transit_ns",
  /// "net.egress_wait_ns").  Null detaches; the fabric does not own it.
  /// Resolves the per-message histograms once, so the send path never
  /// pays a by-name lookup.
  void set_recorder(obs::Recorder* rec);
  obs::Recorder* recorder() const { return rec_; }

  /// End-of-run export of the counters that are NOT live-recorded on the
  /// send path: fault byte totals (net.fault.dropped_bytes / dup_bytes),
  /// fabric frame totals (net.msgs / net.bytes), aggregate NIC delivery
  /// counters (net.delivered_msgs / net.delivered_bytes), and — when the
  /// topology routes over explicit links — per-boundary-tier and
  /// per-link msg/byte counters (net.link.*).  Call once at quiesce;
  /// calling twice double-counts.
  void export_metrics(obs::Recorder& rec) const;

 private:
  friend class Nic;

  std::uint32_t acquire_delivery(Nic& dst, Message&& m);
  void deliver_and_release(Nic& dst, std::uint32_t slot);

  void do_send(Nic& src, Message m, Nic::SentHandler on_sent);

  /// Throws std::out_of_range unless `n` is a valid node id.
  void check_node(const char* what, NodeId n) const;

 public:
  /// DES shard carrying a node's events (deliveries, completions,
  /// per-node protocol timers).  Shard 0 is reserved for non-node work
  /// (global timers, protocol clocks).
  static std::uint32_t shard_of(NodeId node) {
    return static_cast<std::uint32_t>(node) + 1;
  }

 private:

  /// Fault-injection decisions for one cross-node message, drawn in a
  /// fixed order from fault_rng_ (determinism comes from the engine's
  /// total event order).  Brownout is evaluated separately in do_send
  /// against the modeled transmit/arrival intervals — it consumes no
  /// randomness, so hoisting it preserves the per-seed draw sequence.
  struct FaultPlan {
    bool drop = false;
    bool dup = false;
    bool corrupt = false;
    des::Duration extra_latency = 0;  ///< jitter + spike
  };
  FaultPlan plan_faults();
  void corrupt_in_flight(Message& m);
  void count_fault(const char* name);

  /// True when [a, b) overlaps `node`'s crash window (egress-side test).
  bool crash_overlaps(NodeId node, des::Time a, des::Time b) const {
    const auto i = static_cast<std::size_t>(node);
    return a < crash_end_[i] && b > crash_start_[i];
  }
  /// True when instant `t` falls inside `node`'s crash window
  /// (arrival-side test, mirroring the brownout boundary rules).
  bool crash_at_instant(NodeId node, des::Time t) const {
    const auto i = static_cast<std::size_t>(node);
    return t >= crash_start_[i] && t < crash_end_[i];
  }
  void count_crash_drop(std::uint64_t wire_bytes);
  void fire_crash(NodeId node);
  void fire_restart(NodeId node);

  des::Engine& eng_;
  FabricConfig cfg_;
  Topology topo_;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::vector<des::Duration> skew_;
  obs::Recorder* rec_ = nullptr;
  // Cached handles into rec_ (stable: Recorder's maps are node-based),
  // refreshed by set_recorder — one null check per sample, no name lookup.
  obs::Histogram* h_wire_transit_ = nullptr;
  obs::Histogram* h_egress_wait_ = nullptr;
  obs::Histogram* h_fault_delay_ = nullptr;
  std::uint64_t total_msgs_ = 0;
  std::uint64_t total_bytes_ = 0;
  FaultStats fault_stats_;
  des::Rng fault_rng_;
  // Fail-stop crash state: per-node half-open windows [start, end) for
  // the hot-path drop tests (kTimeNever start = never crashes) plus the
  // event-driven liveness flags and subscriber list.
  std::vector<des::Time> crash_start_;
  std::vector<des::Time> crash_end_;
  std::vector<bool> crashed_;
  std::vector<CrashHandler> crash_handlers_;
};

}  // namespace net
