#include "net/clock_sync.hpp"

#include <cassert>
#include <limits>

namespace net {
namespace {

// WireHeader::kind values for the sync protocol (proto == kProtoRaw).
enum : std::uint16_t { kProbe = 0xC5, kEcho = 0xC6 };

constexpr std::uint64_t kProbeBytes = 64;

}  // namespace

std::vector<des::Duration> ClockSync::synchronize(Fabric& fabric, int rounds) {
  assert(rounds > 0);
  const int n = fabric.num_nodes();
  std::vector<des::Duration> offsets(static_cast<std::size_t>(n), 0);
  if (n == 1) return offsets;

  des::Engine& eng = fabric.engine();

  struct State {
    int target = 1;          // node currently being synchronized
    int round = 0;           // probe round for that node
    des::Time t1_local = 0;  // root clock when probe sent
    des::Duration best_rtt = std::numeric_limits<des::Duration>::max();
    des::Duration best_offset = 0;
    bool done = false;
  } st;

  // Every non-root node echoes probes, stamping its local receive time.
  // t2 == t3 in this implementation (the echo turns around instantly; the
  // modeled NIC pipes still contribute symmetric delays).
  for (NodeId node = 1; node < n; ++node) {
    fabric.nic(node).set_deliver_handler([&fabric, node](Message&& m) {
      if (m.hdr.proto != kProtoRaw || m.hdr.kind != kProbe) return;
      Message echo;
      echo.src = node;
      echo.dst = m.src;
      echo.wire_bytes = kProbeBytes;
      echo.hdr.proto = kProtoRaw;
      echo.hdr.kind = kEcho;
      echo.hdr.imm[0] =
          static_cast<std::uint64_t>(fabric.local_clock(node));
      fabric.nic(node).send(std::move(echo));
    });
  }

  auto send_probe = [&fabric, &st]() {
    st.t1_local = fabric.local_clock(0);
    Message probe;
    probe.src = 0;
    probe.dst = st.target;
    probe.wire_bytes = kProbeBytes;
    probe.hdr.proto = kProtoRaw;
    probe.hdr.kind = kProbe;
    fabric.nic(0).send(std::move(probe));
  };

  fabric.nic(0).set_deliver_handler(
      [&fabric, &st, &offsets, rounds, n, &send_probe](Message&& m) {
        if (m.hdr.proto != kProtoRaw || m.hdr.kind != kEcho) return;
        const des::Time t4 = fabric.local_clock(0);
        const auto t2 = static_cast<des::Time>(m.hdr.imm[0]);
        const des::Duration rtt = t4 - st.t1_local;
        // offset = remote_clock - root_clock, assuming symmetric one-way
        // delays: t2 = t1 + delay + offset, t4 = t2 - offset + delay.
        const des::Duration offset = t2 - st.t1_local - rtt / 2;
        if (rtt < st.best_rtt) {
          st.best_rtt = rtt;
          st.best_offset = offset;
        }
        if (++st.round < rounds) {
          send_probe();
          return;
        }
        offsets[static_cast<std::size_t>(st.target)] = st.best_offset;
        st.round = 0;
        st.best_rtt = std::numeric_limits<des::Duration>::max();
        if (++st.target < n) {
          send_probe();
        } else {
          st.done = true;
        }
      });

  send_probe();
  eng.run_while_pending([&st]() { return st.done; });
  assert(st.done && "clock sync did not complete");

  // Leave the NICs handler-free for the real communication library.
  for (NodeId node = 0; node < n; ++node) {
    fabric.nic(node).set_deliver_handler(nullptr);
  }
  return offsets;
}

}  // namespace net
