#include "net/clock_sync.hpp"

#include <cassert>
#include <functional>
#include <limits>

namespace net {
namespace {

// WireHeader::kind values for the sync protocol (proto == kProtoRaw).
enum : std::uint16_t { kProbe = 0xC5, kEcho = 0xC6 };

constexpr std::uint64_t kProbeBytes = 64;

}  // namespace

ClockSync::Result ClockSync::synchronize(Fabric& fabric,
                                         const Options& opts) {
  assert(opts.rounds > 0 && opts.max_attempts > 0);
  const int n = fabric.num_nodes();
  Result res;
  res.offsets.assign(static_cast<std::size_t>(n), 0);
  if (n == 1) return res;

  des::Engine& eng = fabric.engine();

  struct State {
    int target = 1;          // node currently being synchronized
    int round = 0;           // probe round for that node
    int attempt = 0;         // retransmission count within the round
    des::Time t1_local = 0;  // root clock when probe sent
    des::Duration best_rtt = std::numeric_limits<des::Duration>::max();
    des::Duration best_offset = 0;
    bool have_sample = false;
    bool done = false;
    des::EventId timer = des::kInvalidEvent;
  } st;

  // Every non-root node echoes probes, stamping its local receive time and
  // reflecting the probe identity so the root can reject stale echoes.
  // t2 == t3 in this implementation (the echo turns around instantly; the
  // modeled NIC pipes still contribute symmetric delays).
  for (NodeId node = 1; node < n; ++node) {
    fabric.nic(node).set_deliver_handler([&fabric, node](Message&& m) {
      if (m.hdr.proto != kProtoRaw || m.hdr.kind != kProbe) return;
      Message echo;
      echo.src = node;
      echo.dst = m.src;
      echo.wire_bytes = kProbeBytes;
      echo.hdr.proto = kProtoRaw;
      echo.hdr.kind = kEcho;
      echo.hdr.imm[0] =
          static_cast<std::uint64_t>(fabric.local_clock(node));
      echo.hdr.imm[1] = m.hdr.imm[1];  // target
      echo.hdr.imm[2] = m.hdr.imm[2];  // (round << 16) | attempt
      fabric.nic(node).send(std::move(echo));
    });
  }

  const auto probe_timeout = [&fabric, &opts](NodeId target) {
    if (opts.timeout > 0) return opts.timeout;
    const FaultConfig& f = fabric.config().faults;
    const des::Duration round_trip =
        2 * (fabric.latency(0, target) + fabric.occupancy(kProbeBytes));
    // Generous slack: faults may add jitter/spike delay in each direction.
    const des::Duration to =
        4 * round_trip + 2 * (f.jitter_max + f.spike_max);
    return to > des::kMicrosecond ? to : des::kMicrosecond;
  };

  const auto probe_id = [&st]() {
    return (static_cast<std::uint64_t>(st.round) << 16) |
           static_cast<std::uint64_t>(st.attempt);
  };

  // send_probe / on_timeout / advance are mutually recursive.
  std::function<void()> send_probe;
  std::function<void()> on_timeout;

  send_probe = [&]() {
    st.t1_local = fabric.local_clock(0);
    Message probe;
    probe.src = 0;
    probe.dst = st.target;
    probe.wire_bytes = kProbeBytes;
    probe.hdr.proto = kProtoRaw;
    probe.hdr.kind = kProbe;
    probe.hdr.imm[1] = static_cast<std::uint64_t>(st.target);
    probe.hdr.imm[2] = probe_id();
    fabric.nic(0).send(std::move(probe));
    st.timer = eng.schedule_after(probe_timeout(st.target), on_timeout);
  };

  // Steps to the next round (or node, or completion).  The caller has
  // either recorded a sample for the current round or given up on it.
  const auto advance = [&]() {
    st.attempt = 0;
    if (++st.round < opts.rounds) {
      send_probe();
      return;
    }
    if (st.have_sample) {
      res.offsets[static_cast<std::size_t>(st.target)] = st.best_offset;
    } else {
      res.synced = false;  // every probe to this node was lost
    }
    st.round = 0;
    st.best_rtt = std::numeric_limits<des::Duration>::max();
    st.have_sample = false;
    if (++st.target < n) {
      send_probe();
    } else {
      st.done = true;
    }
  };

  on_timeout = [&]() {
    st.timer = des::kInvalidEvent;
    ++res.probes_lost;
    if (++st.attempt < opts.max_attempts) {
      send_probe();  // probe or echo lost (or late): try again
      return;
    }
    advance();  // retry budget exhausted; no sample from this round
  };

  fabric.nic(0).set_deliver_handler([&](Message&& m) {
    if (m.hdr.proto != kProtoRaw || m.hdr.kind != kEcho) return;
    // Stale echo (an earlier attempt's reply outliving its timeout, or a
    // fabric-injected duplicate): ignore; only the outstanding probe's
    // echo pairs with t1_local.
    if (m.hdr.imm[1] != static_cast<std::uint64_t>(st.target) ||
        m.hdr.imm[2] != probe_id() || st.timer == des::kInvalidEvent) {
      return;
    }
    eng.cancel(st.timer);
    st.timer = des::kInvalidEvent;
    const des::Time t4 = fabric.local_clock(0);
    const auto t2 = static_cast<des::Time>(m.hdr.imm[0]);
    const des::Duration rtt = t4 - st.t1_local;
    // offset = remote_clock - root_clock, assuming symmetric one-way
    // delays: t2 = t1 + delay + offset, t4 = t2 - offset + delay.
    const des::Duration offset = t2 - st.t1_local - rtt / 2;
    if (rtt < st.best_rtt) {
      st.best_rtt = rtt;
      st.best_offset = offset;
    }
    st.have_sample = true;
    advance();
  });

  send_probe();
  eng.run_while_pending([&st]() { return st.done; });
  // Timers keep the exchange live, so done is guaranteed; be defensive
  // anyway — the handlers capture this stack frame.
  if (st.timer != des::kInvalidEvent) {
    eng.cancel(st.timer);
    st.timer = des::kInvalidEvent;
  }
  if (!st.done) res.synced = false;

  // Leave the NICs handler-free for the real communication library.
  for (NodeId node = 0; node < n; ++node) {
    fabric.nic(node).set_deliver_handler(nullptr);
  }
  return res;
}

std::vector<des::Duration> ClockSync::synchronize(Fabric& fabric,
                                                  int rounds) {
  Options opts;
  opts.rounds = rounds;
  return synchronize(fabric, opts).offsets;
}

}  // namespace net
