#include "net/fabric.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "des/trace_sink.hpp"
#include "net/payload_pool.hpp"

namespace net {
namespace {

/// "256B", "64KiB"-style label for trace spans (static buffer semantics:
/// the Tracer copies the string, so a stack buffer at the call site is fine).
void format_size(char* buf, std::size_t n, std::uint64_t bytes) {
  if (bytes >= 1024 * 1024) {
    std::snprintf(buf, n, "msg %.1fMiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 1024) {
    std::snprintf(buf, n, "msg %.1fKiB", static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, n, "msg %lluB",
                  static_cast<unsigned long long>(bytes));
  }
}

}  // namespace

PayloadPtr make_payload(const void* data, std::size_t size) {
  return PayloadPool::global().acquire(data, size);
}

namespace {

[[noreturn]] void reject(const char* field, double value) {
  throw std::invalid_argument(std::string("FabricConfig: invalid ") + field +
                              " = " + std::to_string(value));
}

void check_finite_positive(const char* field, double v) {
  if (!std::isfinite(v) || v <= 0.0) reject(field, v);
}

void check_non_negative(const char* field, double v) {
  if (!std::isfinite(v) || v < 0.0) reject(field, v);
}

void check_probability(const char* field, double v) {
  if (!std::isfinite(v) || v < 0.0 || v > 1.0) reject(field, v);
}

}  // namespace

void validate(const FabricConfig& cfg) {
  check_finite_positive("link_bandwidth_Bps", cfg.link_bandwidth_Bps);
  check_finite_positive("nic_msg_rate", cfg.nic_msg_rate);
  check_finite_positive("loopback_bandwidth_Bps", cfg.loopback_bandwidth_Bps);
  check_non_negative("wire_latency", static_cast<double>(cfg.wire_latency));
  check_non_negative("per_hop_latency",
                     static_cast<double>(cfg.per_hop_latency));
  check_non_negative("loopback_latency",
                     static_cast<double>(cfg.loopback_latency));
  check_non_negative("clock_skew_max",
                     static_cast<double>(cfg.clock_skew_max));
  if (cfg.nodes_per_switch < 1) {
    reject("nodes_per_switch", cfg.nodes_per_switch);
  }
  const FaultConfig& f = cfg.faults;
  check_probability("faults.drop_prob", f.drop_prob);
  check_probability("faults.dup_prob", f.dup_prob);
  check_probability("faults.corrupt_prob", f.corrupt_prob);
  check_probability("faults.spike_prob", f.spike_prob);
  check_non_negative("faults.spike_max", static_cast<double>(f.spike_max));
  check_non_negative("faults.jitter_max", static_cast<double>(f.jitter_max));
  check_non_negative("faults.brownout_duration",
                     static_cast<double>(f.brownout_duration));
  check_non_negative("faults.stall_duration",
                     static_cast<double>(f.stall_duration));
}

Fabric::Fabric(des::Engine& engine, int num_nodes, FabricConfig config)
    : eng_(engine), cfg_(config),
      fault_rng_(des::derive_seed(config.faults.seed, 0xFA01)) {
  validate(cfg_);
  if (num_nodes < 1) {
    throw std::invalid_argument("Fabric: num_nodes must be >= 1, got " +
                                std::to_string(num_nodes));
  }
  nics_.reserve(static_cast<std::size_t>(num_nodes));
  for (NodeId n = 0; n < num_nodes; ++n) {
    nics_.emplace_back(std::unique_ptr<Nic>(new Nic(*this, n)));
  }
  skew_.resize(static_cast<std::size_t>(num_nodes), 0);
  if (cfg_.clock_skew_max > 0) {
    des::Rng rng(des::derive_seed(cfg_.clock_seed, 0xC10C));
    for (auto& s : skew_) {
      const double max = static_cast<double>(cfg_.clock_skew_max);
      s = static_cast<des::Duration>(rng.uniform(-max, max));
    }
  }
}

int Fabric::hops(NodeId a, NodeId b) const {
  if (a == b) return 0;
  const int group_a = a / cfg_.nodes_per_switch;
  const int group_b = b / cfg_.nodes_per_switch;
  return group_a == group_b ? 1 : 3;
}

des::Duration Fabric::latency(NodeId a, NodeId b) const {
  if (a == b) return cfg_.loopback_latency;
  return cfg_.wire_latency + static_cast<des::Duration>(hops(a, b)) *
                                 cfg_.per_hop_latency;
}

des::Duration Fabric::occupancy(std::uint64_t bytes) const {
  const auto serial = serialization_time(bytes);
  const auto gap = des::from_seconds(1.0 / cfg_.nic_msg_rate);
  return serial > gap ? serial : gap;
}

void Nic::send(Message m, SentHandler on_sent) {
  if (shim_ != nullptr) {
    shim_->shim_send(std::move(m), std::move(on_sent));
    return;
  }
  raw_send(std::move(m), std::move(on_sent));
}

void Nic::raw_send(Message m, SentHandler on_sent) {
  assert(m.src == node_ && "message src must be the sending NIC's node");
  assert(m.dst >= 0 && m.dst < fabric_.num_nodes());
  fabric_.do_send(*this, std::move(m), std::move(on_sent));
}

void Nic::dispatch(Message&& m) {
  ++stats_.msgs_received;
  stats_.bytes_received += m.wire_bytes;
  if (shim_ != nullptr && shim_->shim_deliver(m)) return;
  if (!deliver_) {
    // Without faults a missing handler is a wiring bug; with faults it is
    // a legitimate late arrival (e.g. a duplicated echo landing after a
    // protocol tore its handler down) and is dropped, counted.
    assert(fabric_.cfg_.faults.any() && "no deliver handler installed");
    ++fabric_.fault_stats_.undeliverable;
    fabric_.count_fault("net.fault.undeliverable");
    return;
  }
  deliver_(std::move(m));
}

void Fabric::count_fault(const char* name) {
  if (rec_ != nullptr) rec_->counter(name).add();
}

void Fabric::set_recorder(obs::Recorder* rec) {
  rec_ = rec;
  h_wire_transit_ = rec ? &rec->histogram("net.wire_transit_ns") : nullptr;
  h_egress_wait_ = rec ? &rec->histogram("net.egress_wait_ns") : nullptr;
  h_fault_delay_ = rec ? &rec->histogram("net.fault.delay_ns") : nullptr;
}

Fabric::Delivery* Fabric::acquire_delivery(Nic& dst, Message&& m) {
  Delivery* d = delivery_free_;
  if (d != nullptr) {
    delivery_free_ = d->next_free;
  } else {
    delivery_arena_.push_back(std::make_unique<Delivery>());
    d = delivery_arena_.back().get();
  }
  d->msg = std::move(m);
  d->dst = &dst;
  return d;
}

void Fabric::deliver_and_release(Delivery* d) {
  Nic* const dst = d->dst;
  Message msg = std::move(d->msg);  // leaves the record's payload ref null
  d->next_free = delivery_free_;
  delivery_free_ = d;  // recycled before dispatch: nested sends may reuse it
  dst->dispatch(std::move(msg));
}

Fabric::FaultPlan Fabric::plan_faults(const Message& m,
                                      des::Time wire_entry) {
  const FaultConfig& f = cfg_.faults;
  FaultPlan plan;
  // Brownout: the link to/from the browned-out node eats every message in
  // the window (deterministic, no rng draw).
  if (f.brownout_node >= 0 && f.brownout_duration > 0 &&
      (m.src == f.brownout_node || m.dst == f.brownout_node) &&
      wire_entry >= f.brownout_start &&
      wire_entry < f.brownout_start + f.brownout_duration) {
    plan.drop = true;
    ++fault_stats_.brownout_drops;
    count_fault("net.fault.brownout_drops");
    return plan;
  }
  if (f.drop_prob > 0 && fault_rng_.uniform() < f.drop_prob) {
    plan.drop = true;
    return plan;
  }
  if (f.dup_prob > 0 && fault_rng_.uniform() < f.dup_prob) plan.dup = true;
  if (f.corrupt_prob > 0 && fault_rng_.uniform() < f.corrupt_prob) {
    plan.corrupt = true;
  }
  if (f.jitter_max > 0) {
    plan.extra_latency += static_cast<des::Duration>(
        fault_rng_.uniform(0.0, static_cast<double>(f.jitter_max)));
  }
  if (f.spike_prob > 0 && f.spike_max > 0 &&
      fault_rng_.uniform() < f.spike_prob) {
    plan.extra_latency += static_cast<des::Duration>(
        fault_rng_.uniform(0.0, static_cast<double>(f.spike_max)));
    ++fault_stats_.spikes;
    count_fault("net.fault.spikes");
  }
  return plan;
}

void Fabric::corrupt_in_flight(Message& m) {
  ++fault_stats_.corruptions;
  count_fault("net.fault.corruptions");
  if (m.payload != nullptr && !m.payload->empty()) {
    // Payloads are shared immutable buffers: corrupt a private (pooled)
    // copy so the sender's bytes (and any retransmit of them) stay intact.
    auto copy = PayloadPool::global().acquire_mutable(m.payload->size());
    std::memcpy(copy->data(), m.payload->data(), m.payload->size());
    const std::uint64_t bit = fault_rng_.below(copy->size() * 8);
    (*copy)[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    m.payload = std::move(copy);
    return;
  }
  // Virtual payload: flip a bit in the one header immediate no protocol
  // assigns (imm[3]), so the damage is checksum-detectable but never
  // scrambles routing fields.
  m.hdr.imm[3] ^= 1ULL << fault_rng_.below(64);
}

void Fabric::do_send(Nic& src, Message m, Nic::SentHandler on_sent) {
  const des::Time now = eng_.now();
  ++total_msgs_;
  total_bytes_ += m.wire_bytes;
  ++src.stats_.msgs_sent;
  src.stats_.bytes_sent += m.wire_bytes;

  Nic& dst = nic(m.dst);

  if (m.src == m.dst) {
    // Loopback: memory copy, no NIC pipe occupancy — and never faulted.
    // Mirroring the NIC path, on_sent fires when the copy has left the
    // sender (send buffer reusable), not at delivery: delivery trails it
    // by the loopback latency.
    const des::Duration copy =
        des::transfer_time(m.wire_bytes, cfg_.loopback_bandwidth_Bps);
    const des::Time sent = now + copy;
    const des::Time done = sent + cfg_.loopback_latency;
    if (h_wire_transit_ != nullptr) {
      h_wire_transit_->add(static_cast<double>(done - now));
    }
    if (on_sent) {
      eng_.schedule_at(sent, std::move(on_sent));
    }
    Delivery* const d = acquire_delivery(dst, std::move(m));
    eng_.schedule_at(done, [this, d]() { deliver_and_release(d); });
    return;
  }

  const bool faulted = cfg_.faults.any();
  const des::Duration occ = occupancy(m.wire_bytes);
  des::Time egress_start = std::max(now, src.egress_free_);

  // NIC stall window: the egress pipe is frozen; the message (and, via
  // egress_free_, everything queued behind it) waits the window out.
  if (faulted && m.src == cfg_.faults.stall_node &&
      cfg_.faults.stall_duration > 0 &&
      egress_start >= cfg_.faults.stall_start &&
      egress_start < cfg_.faults.stall_start + cfg_.faults.stall_duration) {
    egress_start = cfg_.faults.stall_start + cfg_.faults.stall_duration;
    ++fault_stats_.stalled_msgs;
    count_fault("net.fault.stalled_msgs");
  }

  const des::Time egress_end = egress_start + occ;
  src.egress_free_ = egress_end;

  if (on_sent) {
    eng_.schedule_at(egress_end, std::move(on_sent));
  }

  FaultPlan plan;
  if (faulted) plan = plan_faults(m, egress_start);
  if (plan.drop) {
    // The message left the NIC (egress charged, on_sent fired) and died on
    // the wire: no ingress occupancy, no delivery.
    ++fault_stats_.drops;
    fault_stats_.dropped_bytes += m.wire_bytes;
    count_fault("net.fault.drops");
    return;
  }

  // Last byte reaches the destination after the wire latency (plus any
  // injected jitter/spike).
  const des::Time available_at =
      egress_end + latency(m.src, m.dst) + plan.extra_latency;
  if (plan.extra_latency > 0 && h_fault_delay_ != nullptr) {
    h_fault_delay_->add(static_cast<double>(plan.extra_latency));
  }

  // Duplicate before corrupting: the injected copy models an independent
  // retransmission by faulty hardware, not a copy of the damaged frame.
  std::optional<Message> dup;
  if (plan.dup) dup = m;
  if (plan.corrupt) corrupt_in_flight(m);

  // Receiver ingress pipe: the port can overlap with the wire (cut-through)
  // but serializes across concurrent senders.
  const des::Time ingress_start =
      std::max(available_at - occ, dst.ingress_free_);
  const des::Time ingress_end = std::max(ingress_start + occ, available_at);
  dst.ingress_free_ = ingress_end;

  // One cached observability check per message: histogram handles are
  // pre-resolved by set_recorder, the trace sink is fetched once.
  des::TraceSink* const sink = eng_.trace_sink();
  if (h_egress_wait_ != nullptr) {
    // Queueing behind earlier messages on our own egress pipe, and the
    // first-byte-out to last-byte-in transit of this message.
    h_egress_wait_->add(static_cast<double>(egress_start - now));
    h_wire_transit_->add(static_cast<double>(ingress_end - egress_start));
  }
  char label[48] = "";
  if (sink != nullptr) {
    format_size(label, sizeof label, m.wire_bytes);
    char track[32];
    std::snprintf(track, sizeof track, "nic%d.egress", m.src);
    sink->span(track, label, egress_start, occ);
    std::snprintf(track, sizeof track, "nic%d.ingress", m.dst);
    sink->span(track, label, ingress_start, ingress_end - ingress_start);
  }

  Delivery* const d = acquire_delivery(dst, std::move(m));
  eng_.schedule_at(ingress_end, [this, d]() { deliver_and_release(d); });

  if (dup.has_value()) {
    // The duplicate trails the original through the same ingress pipe, so
    // FIFO order per link is preserved: ... original, duplicate, ...  The
    // injected copy occupies the wire like any frame: it counts toward the
    // fabric totals (keeping total == delivered + dropped), records its
    // own transit, and emits its own ingress span.
    const des::Time dup_end = ingress_end + occ;
    dst.ingress_free_ = dup_end;
    ++total_msgs_;
    total_bytes_ += dup->wire_bytes;
    ++fault_stats_.dups;
    fault_stats_.dup_bytes += dup->wire_bytes;
    count_fault("net.fault.dups");
    if (h_wire_transit_ != nullptr) {
      h_wire_transit_->add(static_cast<double>(dup_end - egress_start));
    }
    if (sink != nullptr) {
      char track[32];
      std::snprintf(track, sizeof track, "nic%d.ingress", dup->dst);
      sink->span(track, label, ingress_end, dup_end - ingress_end);
    }
    Delivery* const dd = acquire_delivery(dst, std::move(*dup));
    eng_.schedule_at(dup_end, [this, dd]() { deliver_and_release(dd); });
  }
}

}  // namespace net
