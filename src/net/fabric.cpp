#include "net/fabric.hpp"

#include <cassert>
#include <cstdio>
#include <cstring>
#include <utility>

#include "des/trace_sink.hpp"

namespace net {
namespace {

/// "256B", "64KiB"-style label for trace spans (static buffer semantics:
/// the Tracer copies the string, so a stack buffer at the call site is fine).
void format_size(char* buf, std::size_t n, std::uint64_t bytes) {
  if (bytes >= 1024 * 1024) {
    std::snprintf(buf, n, "msg %.1fMiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 1024) {
    std::snprintf(buf, n, "msg %.1fKiB", static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, n, "msg %lluB",
                  static_cast<unsigned long long>(bytes));
  }
}

}  // namespace

PayloadPtr make_payload(const void* data, std::size_t size) {
  auto buf = std::make_shared<std::vector<std::byte>>(size);
  if (size > 0) std::memcpy(buf->data(), data, size);
  return buf;
}

Fabric::Fabric(des::Engine& engine, int num_nodes, FabricConfig config)
    : eng_(engine), cfg_(config) {
  assert(num_nodes > 0);
  nics_.reserve(static_cast<std::size_t>(num_nodes));
  for (NodeId n = 0; n < num_nodes; ++n) {
    nics_.emplace_back(std::unique_ptr<Nic>(new Nic(*this, n)));
  }
  skew_.resize(static_cast<std::size_t>(num_nodes), 0);
  if (cfg_.clock_skew_max > 0) {
    des::Rng rng(des::derive_seed(cfg_.clock_seed, 0xC10C));
    for (auto& s : skew_) {
      const double max = static_cast<double>(cfg_.clock_skew_max);
      s = static_cast<des::Duration>(rng.uniform(-max, max));
    }
  }
}

int Fabric::hops(NodeId a, NodeId b) const {
  if (a == b) return 0;
  const int group_a = a / cfg_.nodes_per_switch;
  const int group_b = b / cfg_.nodes_per_switch;
  return group_a == group_b ? 1 : 3;
}

des::Duration Fabric::latency(NodeId a, NodeId b) const {
  if (a == b) return cfg_.loopback_latency;
  return cfg_.wire_latency + static_cast<des::Duration>(hops(a, b)) *
                                 cfg_.per_hop_latency;
}

des::Duration Fabric::occupancy(std::uint64_t bytes) const {
  const auto serial = serialization_time(bytes);
  const auto gap = des::from_seconds(1.0 / cfg_.nic_msg_rate);
  return serial > gap ? serial : gap;
}

void Nic::send(Message m, SentHandler on_sent) {
  assert(m.src == node_ && "message src must be the sending NIC's node");
  assert(m.dst >= 0 && m.dst < fabric_.num_nodes());
  fabric_.do_send(*this, std::move(m), std::move(on_sent));
}

void Fabric::do_send(Nic& src, Message m, Nic::SentHandler on_sent) {
  const des::Time now = eng_.now();
  ++total_msgs_;
  total_bytes_ += m.wire_bytes;
  ++src.stats_.msgs_sent;
  src.stats_.bytes_sent += m.wire_bytes;

  Nic& dst = nic(m.dst);

  if (m.src == m.dst) {
    // Loopback: memory copy, no NIC pipe occupancy.
    const des::Duration copy =
        des::transfer_time(m.wire_bytes, cfg_.loopback_bandwidth_Bps);
    const des::Time done = now + cfg_.loopback_latency + copy;
    if (rec_ != nullptr) {
      rec_->histogram("net.wire_transit_ns")
          .add(static_cast<double>(done - now));
    }
    eng_.schedule_at(done, [this, &dst, msg = std::move(m),
                            cb = std::move(on_sent)]() mutable {
      if (cb) cb();
      ++dst.stats_.msgs_received;
      dst.stats_.bytes_received += msg.wire_bytes;
      assert(dst.deliver_ && "no deliver handler installed");
      dst.deliver_(std::move(msg));
    });
    return;
  }

  const des::Duration occ = occupancy(m.wire_bytes);
  const des::Time egress_start = std::max(now, src.egress_free_);
  const des::Time egress_end = egress_start + occ;
  src.egress_free_ = egress_end;

  if (on_sent) {
    eng_.schedule_at(egress_end, std::move(on_sent));
  }

  // Last byte reaches the destination after the wire latency.
  const des::Time available_at = egress_end + latency(m.src, m.dst);

  // Receiver ingress pipe: the port can overlap with the wire (cut-through)
  // but serializes across concurrent senders.
  const des::Time ingress_start =
      std::max(available_at - occ, dst.ingress_free_);
  const des::Time ingress_end = std::max(ingress_start + occ, available_at);
  dst.ingress_free_ = ingress_end;

  if (rec_ != nullptr) {
    // Queueing behind earlier messages on our own egress pipe, and the
    // first-byte-out to last-byte-in transit of this message.
    rec_->histogram("net.egress_wait_ns")
        .add(static_cast<double>(egress_start - now));
    rec_->histogram("net.wire_transit_ns")
        .add(static_cast<double>(ingress_end - egress_start));
  }
  if (des::TraceSink* sink = eng_.trace_sink()) {
    char label[48];
    format_size(label, sizeof label, m.wire_bytes);
    char track[32];
    std::snprintf(track, sizeof track, "nic%d.egress", m.src);
    sink->span(track, label, egress_start, occ);
    std::snprintf(track, sizeof track, "nic%d.ingress", m.dst);
    sink->span(track, label, ingress_start, ingress_end - ingress_start);
  }

  eng_.schedule_at(ingress_end, [this, &dst, msg = std::move(m)]() mutable {
    ++dst.stats_.msgs_received;
    dst.stats_.bytes_received += msg.wire_bytes;
    assert(dst.deliver_ && "no deliver handler installed");
    dst.deliver_(std::move(msg));
  });
}

}  // namespace net
