#include "net/fabric.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "des/trace_sink.hpp"
#include "net/payload_pool.hpp"
#include "obs/flight_recorder.hpp"

namespace net {
namespace {

/// "256B", "64KiB"-style label for trace spans (static buffer semantics:
/// the Tracer copies the string, so a stack buffer at the call site is fine).
void format_size(char* buf, std::size_t n, std::uint64_t bytes) {
  if (bytes >= 1024 * 1024) {
    std::snprintf(buf, n, "msg %.1fMiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 1024) {
    std::snprintf(buf, n, "msg %.1fKiB", static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, n, "msg %lluB",
                  static_cast<unsigned long long>(bytes));
  }
}

}  // namespace

PayloadPtr make_payload(const void* data, std::size_t size) {
  return PayloadPool::global().acquire(data, size);
}

namespace {

[[noreturn]] void reject(const char* field, double value) {
  throw std::invalid_argument(std::string("FabricConfig: invalid ") + field +
                              " = " + std::to_string(value));
}

void check_finite_positive(const char* field, double v) {
  if (!std::isfinite(v) || v <= 0.0) reject(field, v);
}

void check_non_negative(const char* field, double v) {
  if (!std::isfinite(v) || v < 0.0) reject(field, v);
}

void check_probability(const char* field, double v) {
  if (!std::isfinite(v) || v < 0.0 || v > 1.0) reject(field, v);
}

}  // namespace

void validate(const FabricConfig& cfg) {
  check_finite_positive("link_bandwidth_Bps", cfg.link_bandwidth_Bps);
  check_finite_positive("nic_msg_rate", cfg.nic_msg_rate);
  check_finite_positive("loopback_bandwidth_Bps", cfg.loopback_bandwidth_Bps);
  check_non_negative("wire_latency", static_cast<double>(cfg.wire_latency));
  check_non_negative("per_hop_latency",
                     static_cast<double>(cfg.per_hop_latency));
  check_non_negative("loopback_latency",
                     static_cast<double>(cfg.loopback_latency));
  check_non_negative("clock_skew_max",
                     static_cast<double>(cfg.clock_skew_max));
  if (cfg.nodes_per_switch < 1) {
    reject("nodes_per_switch", cfg.nodes_per_switch);
  }
  const FaultConfig& f = cfg.faults;
  check_probability("faults.drop_prob", f.drop_prob);
  check_probability("faults.dup_prob", f.dup_prob);
  check_probability("faults.corrupt_prob", f.corrupt_prob);
  check_probability("faults.spike_prob", f.spike_prob);
  check_non_negative("faults.spike_max", static_cast<double>(f.spike_max));
  check_non_negative("faults.jitter_max", static_cast<double>(f.jitter_max));
  check_non_negative("faults.brownout_duration",
                     static_cast<double>(f.brownout_duration));
  check_non_negative("faults.stall_duration",
                     static_cast<double>(f.stall_duration));
  for (std::size_t i = 0; i < f.crashes.size(); ++i) {
    const CrashEvent& c = f.crashes[i];
    if (c.node < 0) reject("faults.crashes[].node", c.node);
    check_non_negative("faults.crashes[].crash_at",
                       static_cast<double>(c.crash_at));
    if (c.restart_at != 0 && c.restart_at <= c.crash_at) {
      reject("faults.crashes[].restart_at",
             static_cast<double>(c.restart_at));
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (f.crashes[j].node == c.node) {
        reject("faults.crashes[] (duplicate node)", c.node);
      }
    }
  }
}

namespace {

// Runs before the Topology member is built: the topology derives link
// structure from the config, so a bad config must fail here first.
const FabricConfig& validated(const FabricConfig& cfg, int num_nodes) {
  validate(cfg);
  if (num_nodes < 1) {
    throw std::invalid_argument("Fabric: num_nodes must be >= 1, got " +
                                std::to_string(num_nodes));
  }
  return cfg;
}

}  // namespace

Fabric::Fabric(des::Engine& engine, int num_nodes, FabricConfig config)
    : eng_(engine), cfg_(config),
      topo_(validated(cfg_, num_nodes), num_nodes),
      fault_rng_(des::derive_seed(config.faults.seed, 0xFA01)) {
  // The flight recorder's rings always describe the latest simulation;
  // a new fabric is the start of one.
  obs::FlightRecorder::global().begin_run(num_nodes);
  nics_.reserve(static_cast<std::size_t>(num_nodes));
  for (NodeId n = 0; n < num_nodes; ++n) {
    nics_.emplace_back(std::unique_ptr<Nic>(new Nic(*this, n)));
  }
  skew_.resize(static_cast<std::size_t>(num_nodes), 0);
  if (cfg_.clock_skew_max > 0) {
    des::Rng rng(des::derive_seed(cfg_.clock_seed, 0xC10C));
    for (auto& s : skew_) {
      const double max = static_cast<double>(cfg_.clock_skew_max);
      s = static_cast<des::Duration>(rng.uniform(-max, max));
    }
  }
  // Fail-stop crash schedule: per-node windows for the hot-path drop
  // tests, plus crash/restart control events.  Control events live on
  // shard 0 so a node's own crash (which cancels its whole shard) can
  // never cancel its restart.
  crash_start_.resize(static_cast<std::size_t>(num_nodes), des::kTimeNever);
  crash_end_.resize(static_cast<std::size_t>(num_nodes), des::kTimeNever);
  crashed_.resize(static_cast<std::size_t>(num_nodes), false);
  for (const CrashEvent& c : cfg_.faults.crashes) {
    check_node("faults.crashes[].node", c.node);
    const auto i = static_cast<std::size_t>(c.node);
    crash_start_[i] = c.crash_at;
    crash_end_[i] = c.restart_at != 0 ? c.restart_at : des::kTimeNever;
    const NodeId node = c.node;
    eng_.schedule_at(c.crash_at, [this, node]() { fire_crash(node); });
    if (c.restart_at != 0) {
      eng_.schedule_at(c.restart_at, [this, node]() { fire_restart(node); });
    }
  }
}

void Fabric::fire_crash(NodeId node) {
  ++fault_stats_.crashes;
  count_fault("net.fault.crashes");
  const std::size_t n = eng_.cancel_shard(shard_of(node));
  obs::FlightRecorder::global().record(node, obs::FlightKind::Crash,
                                       eng_.now(), 0, n);
  fault_stats_.crash_cancelled_events += n;
  if (rec_ != nullptr && n > 0) {
    rec_->counter("net.fault.crash_cancelled").add(n);
  }
  crashed_[static_cast<std::size_t>(node)] = true;
  for (const CrashHandler& h : crash_handlers_) h(node, false);
}

void Fabric::fire_restart(NodeId node) {
  obs::FlightRecorder::global().record(node, obs::FlightKind::Restart,
                                       eng_.now());
  crashed_[static_cast<std::size_t>(node)] = false;
  for (const CrashHandler& h : crash_handlers_) h(node, true);
}

void Fabric::count_crash_drop(std::uint64_t wire_bytes) {
  ++fault_stats_.crash_drops;
  count_fault("net.fault.crash_drops");
  ++fault_stats_.drops;
  fault_stats_.dropped_bytes += wire_bytes;
  count_fault("net.fault.drops");
}

void Fabric::check_node(const char* what, NodeId n) const {
  if (n < 0 || n >= num_nodes()) {
    throw std::out_of_range(std::string("Fabric: ") + what + " = " +
                            std::to_string(n) + " outside [0, " +
                            std::to_string(num_nodes()) +
                            ") — invalid node id");
  }
}

int Fabric::hops(NodeId a, NodeId b) const {
  // Hard validation: a negative id would silently round toward group 0
  // and an oversized one would invent a phantom switch — both are
  // wiring bugs that must fail at the call site, not as garbage math.
  check_node("node a", a);
  check_node("node b", b);
  return topo_.hops(a, b);
}

des::Duration Fabric::latency(NodeId a, NodeId b) const {
  if (a == b) {
    check_node("node", a);
    return cfg_.loopback_latency;
  }
  check_node("node a", a);
  check_node("node b", b);
  return cfg_.wire_latency + topo_.path_switch_latency(a, b);
}

des::Duration Fabric::occupancy(std::uint64_t bytes) const {
  const auto serial = serialization_time(bytes);
  const auto gap = des::from_seconds(1.0 / cfg_.nic_msg_rate);
  return serial > gap ? serial : gap;
}

void Nic::send(Message m, SentHandler on_sent) {
  if (shim_ != nullptr) {
    shim_->shim_send(std::move(m), std::move(on_sent));
    return;
  }
  raw_send(std::move(m), std::move(on_sent));
}

void Nic::raw_send(Message m, SentHandler on_sent) {
  // Send-time validation is a hard error: a stale or corrupted NodeId
  // must not leak into group math, link indexing, or nic() lookups.
  fabric_.check_node("Message.dst", m.dst);
  if (m.src != node_) {
    throw std::invalid_argument(
        "Nic::raw_send: Message.src = " + std::to_string(m.src) +
        " does not match the sending NIC's node " + std::to_string(node_));
  }
  fabric_.do_send(*this, std::move(m), std::move(on_sent));
}

void Nic::dispatch(Message&& m) {
  ++stats_.msgs_received;
  stats_.bytes_received += m.wire_bytes;
  if (shim_ != nullptr && shim_->shim_deliver(m)) return;
  if (!deliver_) {
    // Without faults a missing handler is a wiring bug; with faults it is
    // a legitimate late arrival (e.g. a duplicated echo landing after a
    // protocol tore its handler down) and is dropped, counted.
    assert(fabric_.cfg_.faults.any() && "no deliver handler installed");
    ++fabric_.fault_stats_.undeliverable;
    fabric_.count_fault("net.fault.undeliverable");
    return;
  }
  deliver_(std::move(m));
}

void Fabric::count_fault(const char* name) {
  if (rec_ != nullptr) rec_->counter(name).add();
}

void Fabric::set_recorder(obs::Recorder* rec) {
  rec_ = rec;
  h_wire_transit_ = rec ? &rec->histogram("net.wire_transit_ns") : nullptr;
  h_egress_wait_ = rec ? &rec->histogram("net.egress_wait_ns") : nullptr;
  h_fault_delay_ = rec ? &rec->histogram("net.fault.delay_ns") : nullptr;
}

std::uint32_t Fabric::acquire_delivery(Nic& dst, Message&& m) {
  // Per-destination pool: the slot lives with the node that will consume
  // it, alongside that node's event-queue shard (see Nic for the SoA
  // layout).
  std::uint32_t slot = dst.delivery_free_;
  if (slot != Nic::kNoDelivery) {
    dst.delivery_free_ = dst.delivery_next_free_[slot];
  } else {
    slot = static_cast<std::uint32_t>(dst.delivery_slots_.size());
    dst.delivery_slots_.emplace_back();
    dst.delivery_next_free_.push_back(Nic::kNoDelivery);
  }
  dst.delivery_slots_[slot] = std::move(m);
  return slot;
}

void Fabric::deliver_and_release(Nic& dst, std::uint32_t slot) {
  Message msg = std::move(dst.delivery_slots_[slot]);  // slot's payload ref
                                                       // is null afterwards
  dst.delivery_next_free_[slot] = dst.delivery_free_;
  dst.delivery_free_ = slot;  // recycled before dispatch: nested sends reuse it
  dst.dispatch(std::move(msg));
}

Fabric::FaultPlan Fabric::plan_faults() {
  const FaultConfig& f = cfg_.faults;
  FaultPlan plan;
  if (f.drop_prob > 0 && fault_rng_.uniform() < f.drop_prob) {
    plan.drop = true;
    return plan;
  }
  if (f.dup_prob > 0 && fault_rng_.uniform() < f.dup_prob) plan.dup = true;
  if (f.corrupt_prob > 0 && fault_rng_.uniform() < f.corrupt_prob) {
    plan.corrupt = true;
  }
  if (f.jitter_max > 0) {
    plan.extra_latency += static_cast<des::Duration>(
        fault_rng_.uniform(0.0, static_cast<double>(f.jitter_max)));
  }
  if (f.spike_prob > 0 && f.spike_max > 0 &&
      fault_rng_.uniform() < f.spike_prob) {
    plan.extra_latency += static_cast<des::Duration>(
        fault_rng_.uniform(0.0, static_cast<double>(f.spike_max)));
    ++fault_stats_.spikes;
    count_fault("net.fault.spikes");
  }
  return plan;
}

void Fabric::corrupt_in_flight(Message& m) {
  ++fault_stats_.corruptions;
  count_fault("net.fault.corruptions");
  if (m.payload != nullptr && !m.payload->empty()) {
    // Payloads are shared immutable buffers: corrupt a private (pooled)
    // copy so the sender's bytes (and any retransmit of them) stay intact.
    auto copy = PayloadPool::global().acquire_mutable(m.payload->size());
    std::memcpy(copy->data(), m.payload->data(), m.payload->size());
    const std::uint64_t bit = fault_rng_.below(copy->size() * 8);
    (*copy)[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    m.payload = std::move(copy);
    return;
  }
  // Virtual payload: flip a bit in the one header immediate no protocol
  // assigns (imm[3]), so the damage is checksum-detectable but never
  // scrambles routing fields.
  m.hdr.imm[3] ^= 1ULL << fault_rng_.below(64);
}

void Fabric::do_send(Nic& src, Message m, Nic::SentHandler on_sent) {
  const des::Time now = eng_.now();
  ++total_msgs_;
  total_bytes_ += m.wire_bytes;
  ++src.stats_.msgs_sent;
  src.stats_.bytes_sent += m.wire_bytes;
  obs::FlightRecorder::global().record(m.src, obs::FlightKind::MsgSend, now, 0,
                                       static_cast<std::uint64_t>(m.dst),
                                       m.wire_bytes);

  Nic& dst = nic(m.dst);

  if (m.src == m.dst) {
    // Loopback: memory copy, no NIC pipe occupancy — and never faulted.
    // Mirroring the NIC path, on_sent fires when the copy has left the
    // sender (send buffer reusable), not at delivery: delivery trails it
    // by the loopback latency.
    const des::Duration copy =
        des::transfer_time(m.wire_bytes, cfg_.loopback_bandwidth_Bps);
    const des::Time sent = now + copy;
    const des::Time done = sent + cfg_.loopback_latency;
    if (h_wire_transit_ != nullptr) {
      h_wire_transit_->add(static_cast<double>(done - now));
    }
    if (on_sent) {
      eng_.schedule_on(shard_of(m.src), sent, std::move(on_sent));
    }
    const auto dst_shard = shard_of(m.dst);
    Nic* const dstp = &dst;
    const std::uint32_t slot = acquire_delivery(dst, std::move(m));
    eng_.schedule_on(dst_shard, done, [this, dstp, slot]() {
      deliver_and_release(*dstp, slot);
    });
    return;
  }

  const FaultConfig& f = cfg_.faults;
  const bool faulted = f.any();
  const des::Duration occ = occupancy(m.wire_bytes);
  des::Time egress_start = std::max(now, src.egress_free_);
  des::Time egress_end = egress_start + occ;

  // NIC stall window [S, E): the egress pipe is frozen.  A transfer that
  // would start inside the window starts at E instead; one already on
  // the wire when the window opens freezes mid-flight and carries the
  // full window length.  Either way egress_free_ pushes the queue back.
  if (faulted && m.src == f.stall_node && f.stall_duration > 0) {
    const des::Time stall_end = f.stall_start + f.stall_duration;
    if (egress_start >= f.stall_start && egress_start < stall_end) {
      egress_start = stall_end;
      egress_end = egress_start + occ;
      ++fault_stats_.stalled_msgs;
      count_fault("net.fault.stalled_msgs");
    } else if (egress_start < f.stall_start && egress_end > f.stall_start) {
      // Straddle: the tail of this transfer was previously priced as if
      // the NIC kept transmitting through the window — the bug this
      // branch fixes.  The frozen interval is inserted wholesale.
      egress_end += f.stall_duration;
      ++fault_stats_.stalled_msgs;
      count_fault("net.fault.stalled_msgs");
    }
  }
  src.egress_free_ = egress_end;

  if (on_sent) {
    eng_.schedule_on(shard_of(m.src), egress_end, std::move(on_sent));
  }

  // Source-side brownout is judged against the modeled wire-occupancy
  // interval [egress_start, egress_end), not the queue-entry time: a
  // message queued before the window but transmitted inside it is eaten.
  // Evaluated before routing so a browned-out source charges no links.
  const bool brownout_active = faulted && f.brownout_node >= 0 &&
                               f.brownout_duration > 0;
  const des::Time brownout_end = f.brownout_start + f.brownout_duration;
  if (brownout_active && m.src == f.brownout_node &&
      egress_start < brownout_end && egress_end > f.brownout_start) {
    ++fault_stats_.brownout_drops;
    count_fault("net.fault.brownout_drops");
    ++fault_stats_.drops;
    fault_stats_.dropped_bytes += m.wire_bytes;
    count_fault("net.fault.drops");
    obs::FlightRecorder::global().record(
        m.src, obs::FlightKind::MsgDrop, now,
        static_cast<std::uint16_t>(obs::DropWhy::Brownout),
        static_cast<std::uint64_t>(m.dst), m.wire_bytes);
    return;
  }

  // Source-side crash: like brownout, judged against the modeled wire
  // occupancy [egress_start, egress_end) — a message queued before the
  // node died but transmitted inside its crash window is eaten.  Drawn
  // before plan_faults so crashes consume no randomness (the RNG
  // sequence of surviving traffic matches the crash-free run).
  if (faulted && crash_overlaps(m.src, egress_start, egress_end)) {
    count_crash_drop(m.wire_bytes);
    obs::FlightRecorder::global().record(
        m.src, obs::FlightKind::MsgDrop, now,
        static_cast<std::uint16_t>(obs::DropWhy::Crash),
        static_cast<std::uint64_t>(m.dst), m.wire_bytes);
    return;
  }

  FaultPlan plan;
  if (faulted) plan = plan_faults();
  if (plan.drop) {
    // The message left the NIC (egress charged, on_sent fired) and died on
    // the wire before reaching the switch fabric: no link occupancy, no
    // ingress occupancy, no delivery.
    ++fault_stats_.drops;
    fault_stats_.dropped_bytes += m.wire_bytes;
    count_fault("net.fault.drops");
    obs::FlightRecorder::global().record(
        m.src, obs::FlightKind::MsgDrop, now,
        static_cast<std::uint16_t>(obs::DropWhy::Fault),
        static_cast<std::uint64_t>(m.dst), m.wire_bytes);
    return;
  }

  // Route the last byte to the destination.  With explicit links every
  // cross-leaf frame passes per-link FIFO queues (congestion); otherwise
  // — and for leaf-local traffic, whose only shared resources are the
  // NIC pipes — the uncongested fixed-latency model applies.  Both
  // agree bit-for-bit on an idle fabric.
  des::Time available_at;
  if (topo_.explicit_links() &&
      topo_.switch_of(m.src, 0) != topo_.switch_of(m.dst, 0)) {
    available_at = topo_.traverse(m.src, m.dst, m.wire_bytes, egress_end) +
                   cfg_.wire_latency;
  } else {
    available_at = egress_end + latency(m.src, m.dst);
  }

  // Destination-side brownout is judged at the modeled arrival time (the
  // instant the browned-out NIC would see the last byte), closing the
  // escape where a frame sent before the window landed inside it.  The
  // frame crossed the fabric, so any link charges above stand.
  if (brownout_active && m.dst == f.brownout_node &&
      available_at >= f.brownout_start && available_at < brownout_end) {
    ++fault_stats_.brownout_drops;
    count_fault("net.fault.brownout_drops");
    ++fault_stats_.drops;
    fault_stats_.dropped_bytes += m.wire_bytes;
    count_fault("net.fault.drops");
    obs::FlightRecorder::global().record(
        m.dst, obs::FlightKind::MsgDrop, now,
        static_cast<std::uint16_t>(obs::DropWhy::Brownout),
        static_cast<std::uint64_t>(m.src), m.wire_bytes);
    return;
  }

  // Destination-side crash: judged at the modeled arrival instant, like
  // the destination brownout.  The frame crossed the fabric; link
  // charges stand, the dead NIC just never raises a completion.
  if (faulted && crash_at_instant(m.dst, available_at)) {
    count_crash_drop(m.wire_bytes);
    obs::FlightRecorder::global().record(
        m.dst, obs::FlightKind::MsgDrop, now,
        static_cast<std::uint16_t>(obs::DropWhy::Crash),
        static_cast<std::uint64_t>(m.src), m.wire_bytes);
    return;
  }

  available_at += plan.extra_latency;
  if (plan.extra_latency > 0 && h_fault_delay_ != nullptr) {
    h_fault_delay_->add(static_cast<double>(plan.extra_latency));
  }

  // Duplicate before corrupting: the injected copy models an independent
  // retransmission by faulty hardware, not a copy of the damaged frame.
  std::optional<Message> dup;
  if (plan.dup) dup = m;
  if (plan.corrupt) corrupt_in_flight(m);

  // Receiver ingress pipe: the port can overlap with the wire (cut-through)
  // but serializes across concurrent senders.
  des::Time ingress_start = std::max(available_at - occ, dst.ingress_free_);
  des::Time ingress_end = std::max(ingress_start + occ, available_at);

  // Ingress half of the NIC stall: a frozen NIC also stops draining its
  // receive port, so arrivals during the window complete after it ends
  // and a reception in progress freezes mid-transfer.
  if (faulted && m.dst == f.stall_node && f.stall_duration > 0) {
    const des::Time stall_end = f.stall_start + f.stall_duration;
    if (ingress_start >= f.stall_start && ingress_start < stall_end) {
      ingress_start = stall_end;
      ingress_end = ingress_start + occ;
      ++fault_stats_.stalled_msgs;
      count_fault("net.fault.stalled_msgs");
    } else if (ingress_start < f.stall_start &&
               ingress_end > f.stall_start) {
      ingress_end += f.stall_duration;
      ++fault_stats_.stalled_msgs;
      count_fault("net.fault.stalled_msgs");
    }
  }
  dst.ingress_free_ = ingress_end;

  // One cached observability check per message: histogram handles are
  // pre-resolved by set_recorder, the trace sink is fetched once.
  des::TraceSink* const sink = eng_.trace_sink();
  if (h_egress_wait_ != nullptr) {
    // Queueing behind earlier messages on our own egress pipe, and the
    // first-byte-out to last-byte-in transit of this message.
    h_egress_wait_->add(static_cast<double>(egress_start - now));
    h_wire_transit_->add(static_cast<double>(ingress_end - egress_start));
  }
  char label[48] = "";
  if (sink != nullptr) {
    format_size(label, sizeof label, m.wire_bytes);
    char track[32];
    std::snprintf(track, sizeof track, "nic%d.egress", m.src);
    sink->span(track, label, egress_start, occ);
    std::snprintf(track, sizeof track, "nic%d.ingress", m.dst);
    sink->span(track, label, ingress_start, ingress_end - ingress_start);
  }

  const auto dst_shard = shard_of(m.dst);
  Nic* const dstp = &dst;
  const std::uint32_t slot = acquire_delivery(dst, std::move(m));
  eng_.schedule_on(dst_shard, ingress_end, [this, dstp, slot]() {
    deliver_and_release(*dstp, slot);
  });

  if (dup.has_value()) {
    // The duplicate trails the original through the same ingress pipe, so
    // FIFO order per link is preserved: ... original, duplicate, ...  The
    // injected copy occupies the wire like any frame: it counts toward the
    // fabric totals (keeping total == delivered + dropped), records its
    // own transit, and emits its own ingress span.
    const des::Time dup_end = ingress_end + occ;
    dst.ingress_free_ = dup_end;
    ++total_msgs_;
    total_bytes_ += dup->wire_bytes;
    ++fault_stats_.dups;
    fault_stats_.dup_bytes += dup->wire_bytes;
    count_fault("net.fault.dups");
    if (h_wire_transit_ != nullptr) {
      h_wire_transit_->add(static_cast<double>(dup_end - egress_start));
    }
    if (sink != nullptr) {
      char track[32];
      std::snprintf(track, sizeof track, "nic%d.ingress", dup->dst);
      sink->span(track, label, ingress_end, dup_end - ingress_end);
    }
    const std::uint32_t dslot = acquire_delivery(dst, std::move(*dup));
    eng_.schedule_on(dst_shard, dup_end, [this, dstp, dslot]() {
      deliver_and_release(*dstp, dslot);
    });
  }
}

void Fabric::export_metrics(obs::Recorder& rec) const {
  // Totals the send path accumulates as plain fields (no per-message
  // recorder cost): fabric frame totals and the fault BYTE counters —
  // the per-event fault counts are already live-recorded by count_fault.
  rec.counter("net.msgs").add(total_msgs_);
  rec.counter("net.bytes").add(total_bytes_);
  if (fault_stats_.dropped_bytes > 0) {
    rec.counter("net.fault.dropped_bytes").add(fault_stats_.dropped_bytes);
  }
  if (fault_stats_.dup_bytes > 0) {
    rec.counter("net.fault.dup_bytes").add(fault_stats_.dup_bytes);
  }
  std::uint64_t delivered_msgs = 0;
  std::uint64_t delivered_bytes = 0;
  for (const auto& nic : nics_) {
    delivered_msgs += nic->stats_.msgs_received;
    delivered_bytes += nic->stats_.bytes_received;
  }
  rec.counter("net.delivered_msgs").add(delivered_msgs);
  rec.counter("net.delivered_bytes").add(delivered_bytes);

  // Per-link traffic exists only when the topology routes over explicit
  // link FIFOs.  Boundary tier t sits between switch tiers t and t+1;
  // the top tier has no uplinks.
  if (!topo_.explicit_links()) return;
  char name[64];
  for (int t = 0; t + 1 < topo_.num_tiers(); ++t) {
    std::snprintf(name, sizeof name, "net.link.t%d.up_msgs", t);
    rec.counter(name).add(topo_.boundary_msgs_up(t));
    std::snprintf(name, sizeof name, "net.link.t%d.up_bytes", t);
    rec.counter(name).add(topo_.boundary_bytes_up(t));
    std::snprintf(name, sizeof name, "net.link.t%d.down_bytes", t);
    rec.counter(name).add(topo_.boundary_bytes_down(t));
    for (int sw = 0; sw < topo_.num_switches(t); ++sw) {
      for (int p = 0; p < topo_.uplinks(t); ++p) {
        const LinkStats& up = topo_.up_link(t, sw, p);
        const LinkStats& down = topo_.down_link(t, sw, p);
        if (up.msgs > 0) {
          std::snprintf(name, sizeof name, "net.link.t%d.s%d.p%d.up_msgs", t,
                        sw, p);
          rec.counter(name).add(up.msgs);
          std::snprintf(name, sizeof name, "net.link.t%d.s%d.p%d.up_bytes", t,
                        sw, p);
          rec.counter(name).add(up.bytes);
        }
        if (down.msgs > 0) {
          std::snprintf(name, sizeof name, "net.link.t%d.s%d.p%d.down_msgs", t,
                        sw, p);
          rec.counter(name).add(down.msgs);
          std::snprintf(name, sizeof name, "net.link.t%d.s%d.p%d.down_bytes",
                        t, sw, p);
          rec.counter(name).add(down.bytes);
        }
      }
    }
  }
}

}  // namespace net
