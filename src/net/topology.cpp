#include "net/topology.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "des/rng.hpp"
#include "net/config.hpp"

namespace net {
namespace {

[[noreturn]] void reject_topology(const std::string& what) {
  throw std::invalid_argument("TopologyConfig: " + what);
}

int ceil_div(int a, int b) { return (a + b - 1) / b; }

}  // namespace

Topology::Topology(const FabricConfig& cfg, int num_nodes)
    : num_nodes_(num_nodes),
      explicit_(cfg.topology.explicit_links),
      salt_(cfg.topology.route_salt) {
  const TopologyConfig& t = cfg.topology;
  if (!std::isfinite(t.oversubscription) || t.oversubscription < 1.0) {
    reject_topology("oversubscription must be >= 1, got " +
                    std::to_string(t.oversubscription));
  }

  // Resolve the tier descriptions; an empty config synthesizes the
  // legacy two-tier tree (leaf radix = nodes_per_switch, one spanning
  // spine tier) so hops()/latency() reproduce the historical grouping.
  std::vector<TopologyLevel> levels = t.levels;
  if (levels.empty()) {
    levels.push_back(TopologyLevel{cfg.nodes_per_switch, 0, 0, -1});
    levels.push_back(TopologyLevel{});  // spanning top tier
  }
  if (levels.size() < 2) {
    reject_topology("levels must describe >= 2 switch tiers "
                    "(leaf and top), got " +
                    std::to_string(levels.size()));
  }
  if (levels.size() > 16) {  // traverse() uses fixed-depth path buffers
    reject_topology("levels limited to 16 tiers, got " +
                    std::to_string(levels.size()));
  }

  tiers_.resize(levels.size());
  int below = num_nodes;  // children available to this tier
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const TopologyLevel& lv = levels[i];
    Tier& tier = tiers_[i];
    const bool top = i + 1 == levels.size();
    if (top) {
      // The top tier spans every child below it; radix/uplinks unused.
      tier.radix = below > 0 ? below : 1;
      tier.uplinks = 0;
      tier.count = 1;
    } else {
      if (lv.radix < 1) {
        reject_topology("levels[" + std::to_string(i) +
                        "].radix must be >= 1, got " +
                        std::to_string(lv.radix));
      }
      tier.radix = lv.radix;
      tier.count = ceil_div(below, lv.radix);
      tier.uplinks =
          lv.uplinks > 0
              ? lv.uplinks
              : std::max(1, static_cast<int>(std::ceil(
                                static_cast<double>(lv.radix) /
                                t.oversubscription)));
    }
    tier.bandwidth_Bps = lv.uplink_bandwidth_Bps > 0
                             ? lv.uplink_bandwidth_Bps
                             : cfg.link_bandwidth_Bps;
    tier.switch_latency =
        lv.switch_latency >= 0 ? lv.switch_latency : cfg.per_hop_latency;
    below = tier.count;
  }

  if (explicit_) {
    up_.resize(tiers_.size());
    down_.resize(tiers_.size());
    for (std::size_t i = 0; i + 1 < tiers_.size(); ++i) {
      const auto n = static_cast<std::size_t>(tiers_[i].count) *
                     static_cast<std::size_t>(tiers_[i].uplinks);
      up_[i].resize(n);
      down_[i].resize(n);
    }
  }
}

int Topology::switch_of(NodeId node, int tier) const {
  int sw = node / tiers_[0].radix;
  for (int l = 1; l <= tier; ++l) sw /= tiers_[l].radix;
  return sw;
}

int Topology::hops(NodeId a, NodeId b) const {
  if (a == b) return 0;
  int sa = a / tiers_[0].radix;
  int sb = b / tiers_[0].radix;
  int tier = 0;
  // The top tier spans everything, so the walk always terminates there.
  while (sa != sb) {
    ++tier;
    sa /= tiers_[tier].radix;
    sb /= tiers_[tier].radix;
  }
  return 2 * tier + 1;
}

des::Duration Topology::path_switch_latency(NodeId a, NodeId b) const {
  if (a == b) return 0;
  int sa = a / tiers_[0].radix;
  int sb = b / tiers_[0].radix;
  int tier = 0;
  des::Duration below_sum = 0;  // sum of tier latencies under the apex
  while (sa != sb) {
    below_sum += tiers_[tier].switch_latency;
    ++tier;
    sa /= tiers_[tier].radix;
    sb /= tiers_[tier].radix;
  }
  // 2T+1 switches: each sub-apex tier twice (up side and down side)
  // plus the apex once.
  return 2 * below_sum + tiers_[tier].switch_latency;
}

int Topology::plane(NodeId src, NodeId dst, int tier) const {
  const std::uint64_t pair =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
      static_cast<std::uint32_t>(dst);
  const std::uint64_t h =
      des::derive_seed(salt_ ^ pair, static_cast<std::uint64_t>(tier));
  return static_cast<int>(h % static_cast<std::uint64_t>(
                                  tiers_[tier].uplinks));
}

des::Time Topology::link_pass(LinkStats& link, des::Time arrive,
                              des::Duration ser, std::uint64_t bytes) {
  // Cut-through fluid recurrence: the message's first byte may enter
  // the link while its tail is still upstream, so an idle link adds no
  // delay (exit == arrive).  A busy link forces the transfer to start
  // after the FIFO frees and re-serializes it at this link's bandwidth.
  const des::Time start = std::max(arrive - ser, link.busy_until);
  const des::Time exit = std::max(start + ser, arrive);
  link.busy_until = exit;
  ++link.msgs;
  link.bytes += bytes;
  return exit;
}

des::Time Topology::traverse(NodeId src, NodeId dst, std::uint64_t bytes,
                             des::Time entry) {
  // Climb to the apex tier, charging one up link per boundary.
  int ssrc = src / tiers_[0].radix;
  int sdst = dst / tiers_[0].radix;
  int apex = 0;
  int planes[16];
  int src_sw[16];
  int dst_sw[16];
  while (ssrc != sdst) {
    src_sw[apex] = ssrc;
    dst_sw[apex] = sdst;
    planes[apex] = plane(src, dst, apex);
    ++apex;
    ssrc /= tiers_[apex].radix;
    sdst /= tiers_[apex].radix;
  }
  des::Time t = entry;
  for (int i = 0; i < apex; ++i) {
    t += tiers_[i].switch_latency;  // traverse the src-side switch
    const auto ser = des::transfer_time(bytes, tiers_[i].bandwidth_Bps);
    t = link_pass(up_[i][link_index(i, src_sw[i], planes[i])], t, ser,
                  bytes);
  }
  t += tiers_[apex].switch_latency;  // the apex switch
  for (int i = apex - 1; i >= 0; --i) {
    const auto ser = des::transfer_time(bytes, tiers_[i].bandwidth_Bps);
    t = link_pass(down_[i][link_index(i, dst_sw[i], planes[i])], t, ser,
                  bytes);
    if (i > 0) t += tiers_[i].switch_latency;  // dst-side mid switch
  }
  t += tiers_[0].switch_latency;  // the dst leaf switch
  return t;
}

std::uint64_t Topology::boundary_bytes_up(int tier) const {
  std::uint64_t sum = 0;
  for (const LinkStats& l : up_[tier]) sum += l.bytes;
  return sum;
}

std::uint64_t Topology::boundary_bytes_down(int tier) const {
  std::uint64_t sum = 0;
  for (const LinkStats& l : down_[tier]) sum += l.bytes;
  return sum;
}

std::uint64_t Topology::boundary_msgs_up(int tier) const {
  std::uint64_t sum = 0;
  for (const LinkStats& l : up_[tier]) sum += l.msgs;
  return sum;
}

}  // namespace net
