#include "net/payload_pool.hpp"

#include <cstring>

namespace net {

std::shared_ptr<std::vector<std::byte>> PayloadPool::acquire_mutable(
    std::size_t size) {
  const std::size_t n = pool_.size();
  for (std::size_t probe = 0; probe < n; ++probe) {
    const std::size_t i = (cursor_ + probe) % n;
    if (pool_[i].use_count() == 1) {  // only the pool holds it: free
      cursor_ = (i + 1) % n;
      ++reused_;
      pool_[i]->resize(size);
      return pool_[i];
    }
  }
  ++allocated_;
  auto buf = std::make_shared<std::vector<std::byte>>(size);
  if (pool_.size() < max_pooled_) pool_.push_back(buf);
  return buf;
}

PayloadPtr PayloadPool::acquire(const void* data, std::size_t size) {
  auto buf = acquire_mutable(size);
  if (size > 0) std::memcpy(buf->data(), data, size);
  return buf;
}

PayloadPool& PayloadPool::global() {
  static PayloadPool pool;
  return pool;
}

}  // namespace net
