// Wire-level message representation.
//
// The fabric transports opaque messages between nodes.  A message carries a
// fixed protocol header (interpreted by the mmpi / mlci layers, never by the
// fabric) plus an optional real payload.  `wire_bytes` is what occupies the
// network; the payload pointer may be null for "virtual" payloads used by
// paper-scale experiments where moving real bytes would be wasteful — the
// timing model only ever reads wire_bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace net {

/// Identifies a simulated node (0-based, dense).
using NodeId = int;

/// Reference-counted byte buffer.  Immutable by convention once sent.
using PayloadPtr = std::shared_ptr<const std::vector<std::byte>>;

/// Makes a payload from raw memory (copies, like a NIC doing DMA-out of a
/// send buffer that the caller may immediately reuse).
PayloadPtr make_payload(const void* data, std::size_t size);

/// Fixed header space for upper-layer protocols.  The fabric treats this as
/// opaque bits; mmpi and mlci define their own field meanings.
struct WireHeader {
  std::uint16_t proto = 0;   ///< owning protocol (mmpi / mlci / raw)
  std::uint16_t kind = 0;    ///< message kind within the protocol
  std::uint32_t flags = 0;
  std::uint64_t tag = 0;
  std::uint64_t seq = 0;
  std::uint64_t size = 0;    ///< logical payload size in bytes
  std::uint64_t imm[4] = {0, 0, 0, 0};  ///< protocol immediates
  /// Reliability-sublayer fields (ce/reliable): a per-(src,dst) sequence
  /// number (0 = message not tracked by the sublayer) and a checksum over
  /// header + payload.  The fabric transports them like any header bits.
  std::uint64_t rel_seq = 0;
  std::uint32_t rel_crc = 0;
  std::uint32_t rel_pad = 0;
};

/// Protocol ids for WireHeader::proto.
enum : std::uint16_t {
  kProtoRaw = 0,
  kProtoMpi = 1,
  kProtoLci = 2,
  kProtoRel = 3,  ///< reliability-sublayer control traffic (ACK / NACK)
  kProtoFd = 4,   ///< failure-detector heartbeats
};

struct Message {
  NodeId src = -1;
  NodeId dst = -1;
  std::uint64_t wire_bytes = 0;  ///< bytes that occupy the wire
  WireHeader hdr;
  PayloadPtr payload;  ///< may be null (virtual payload)
};

}  // namespace net
