// Fabric configuration and the Expanse-like default parameter set.
#pragma once

#include <cstdint>
#include <vector>

#include "des/time.hpp"
#include "net/topology.hpp"

namespace net {

/// One seeded fail-stop crash: `node` dies at `crash_at` and (optionally)
/// rejoins at `restart_at`.  While down — the half-open window
/// [crash_at, restart_at), or [crash_at, inf) when restart_at == 0 — the
/// node's NIC drops all ingress and egress and its pending DES events are
/// cancelled on its ShardedEventQueue shard.  Window semantics match the
/// brownout/stall rules: a transfer transmitted inside the window is
/// eaten pre-routing, an arrival inside the window is eaten post-routing.
struct CrashEvent {
  int node = -1;
  des::Time crash_at = 0;
  des::Time restart_at = 0;  ///< 0 = fail-stop forever
};

/// Deterministic fault-injection knobs.  Everything defaults to "off": the
/// fabric stays a perfect lossless pipe unless an experiment opts in.  All
/// randomness derives from `seed` through des::Rng, so a fault schedule is
/// bit-reproducible per seed.  Loopback (src == dst) traffic is never
/// faulted — it models a memory copy, not a wire.
struct FaultConfig {
  std::uint64_t seed = 0xFA17;

  /// Per-message probabilities, each in [0, 1].
  double drop_prob = 0;     ///< message silently lost after egress
  double dup_prob = 0;      ///< message delivered twice
  double corrupt_prob = 0;  ///< one payload bit flipped in flight (header
                            ///< immediates imm[3] for virtual payloads)

  /// Latency perturbation: every message gets an extra uniform
  /// [0, jitter_max) delay; with probability spike_prob it additionally
  /// gets a uniform [0, spike_max) spike.
  double spike_prob = 0;
  des::Duration spike_max = 0;
  des::Duration jitter_max = 0;

  /// Timed link brownout: every message to or from `brownout_node` during
  /// [brownout_start, brownout_start + brownout_duration) is dropped.
  int brownout_node = -1;
  des::Time brownout_start = 0;
  des::Duration brownout_duration = 0;

  /// NIC stall window: `stall_node`'s NIC is frozen during
  /// [stall_start, stall_start + stall_duration) in BOTH directions —
  /// egress and ingress pipes alike (a stalled NIC neither transmits
  /// nor raises completion events).  A transfer that would start inside
  /// the window waits for the window end; a transfer already in
  /// progress when the window opens freezes mid-flight and finishes
  /// `stall_duration` later.  Queued traffic trails behind either way.
  int stall_node = -1;
  des::Time stall_start = 0;
  des::Duration stall_duration = 0;

  /// Seeded fail-stop crash schedule (see CrashEvent).  At most one entry
  /// per node; validated by the Fabric.
  std::vector<CrashEvent> crashes;

  /// True when any fault mechanism is active.
  bool any() const {
    return drop_prob > 0 || dup_prob > 0 || corrupt_prob > 0 ||
           spike_prob > 0 || jitter_max > 0 ||
           (brownout_node >= 0 && brownout_duration > 0) ||
           (stall_node >= 0 && stall_duration > 0) || !crashes.empty();
  }
};

struct FabricConfig {
  /// Per-NIC, per-direction aggregate link bandwidth in bytes/second.
  /// Expanse: 2 x 50 Gbit/s HDR InfiniBand = 100 Gbit/s = 12.5 GB/s
  /// (the two rails are modeled as one aggregated pipe).
  double link_bandwidth_Bps = 12.5e9;

  /// Base propagation + NIC-to-NIC latency excluding switch hops.
  des::Duration wire_latency = 600;  // 0.6 us

  /// Latency added per switch hop.
  des::Duration per_hop_latency = 150;  // 0.15 us

  /// Nodes attached to the same leaf switch (1 hop); otherwise the message
  /// crosses the spine (3 hops).  Matches a two-level fat-tree.
  int nodes_per_switch = 16;

  /// Maximum NIC message rate (messages/second); enforces a minimum gap
  /// between message starts so small messages are rate- not
  /// bandwidth-limited.
  double nic_msg_rate = 30e6;

  /// Intra-node loopback: fixed latency + memory-copy bandwidth.
  des::Duration loopback_latency = 400;
  double loopback_bandwidth_Bps = 40e9;

  /// Clock skew injection: each node's local clock is offset by a value
  /// uniform in [-clock_skew_max, +clock_skew_max] (0 disables).
  des::Duration clock_skew_max = 0;
  std::uint64_t clock_seed = 0x5eed;

  /// Hierarchical topology (see TopologyConfig).  Defaults to the
  /// legacy fixed-latency two-level hop model; setting
  /// `topology.explicit_links` routes cross-leaf traffic over per-link
  /// serialization queues with shared-switch congestion.
  TopologyConfig topology;

  /// Fault injection (off by default; see FaultConfig).
  FaultConfig faults;
};

/// Validates a configuration, throwing std::invalid_argument with a
/// field-naming message on the first violation (NaN / non-positive
/// bandwidths or rates, negative latencies, nodes_per_switch < 1, fault
/// probabilities outside [0, 1], negative fault windows).  The Fabric
/// constructor calls this, so a bad config fails loudly at construction
/// instead of as a downstream div-by-zero or infinite timestamp.
void validate(const FabricConfig& cfg);

/// Parameters mirroring the paper's SDSC Expanse platform (Table 1).
inline FabricConfig expanse_config() { return FabricConfig{}; }

/// Expanse's hybrid fat-tree (Table 1) with explicit links: 56-node
/// racks on HDR100 (12.5 GB/s per node), racks uplinked to a spanning
/// spine tier through 7 x HDR200 (25 GB/s) ports — 700 GB/s of rack
/// ingress vs 175 GB/s of uplink, the documented 4.33:1 (~4:1)
/// oversubscription.  Cross-rack traffic contends for uplinks and
/// spine planes; in-rack traffic sees only the NIC pipes.
inline FabricConfig expanse_fat_tree_config() {
  FabricConfig cfg;
  cfg.nodes_per_switch = 56;
  cfg.topology.explicit_links = true;
  cfg.topology.levels = {
      TopologyLevel{/*radix=*/56, /*uplinks=*/7,
                    /*uplink_bandwidth_Bps=*/25e9, /*switch_latency=*/-1},
      TopologyLevel{},  // spanning spine tier
  };
  return cfg;
}

}  // namespace net
