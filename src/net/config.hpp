// Fabric configuration and the Expanse-like default parameter set.
#pragma once

#include <cstdint>

#include "des/time.hpp"

namespace net {

struct FabricConfig {
  /// Per-NIC, per-direction aggregate link bandwidth in bytes/second.
  /// Expanse: 2 x 50 Gbit/s HDR InfiniBand = 100 Gbit/s = 12.5 GB/s
  /// (the two rails are modeled as one aggregated pipe).
  double link_bandwidth_Bps = 12.5e9;

  /// Base propagation + NIC-to-NIC latency excluding switch hops.
  des::Duration wire_latency = 600;  // 0.6 us

  /// Latency added per switch hop.
  des::Duration per_hop_latency = 150;  // 0.15 us

  /// Nodes attached to the same leaf switch (1 hop); otherwise the message
  /// crosses the spine (3 hops).  Matches a two-level fat-tree.
  int nodes_per_switch = 16;

  /// Maximum NIC message rate (messages/second); enforces a minimum gap
  /// between message starts so small messages are rate- not
  /// bandwidth-limited.
  double nic_msg_rate = 30e6;

  /// Intra-node loopback: fixed latency + memory-copy bandwidth.
  des::Duration loopback_latency = 400;
  double loopback_bandwidth_Bps = 40e9;

  /// Clock skew injection: each node's local clock is offset by a value
  /// uniform in [-clock_skew_max, +clock_skew_max] (0 disables).
  des::Duration clock_skew_max = 0;
  std::uint64_t clock_seed = 0x5eed;
};

/// Parameters mirroring the paper's SDSC Expanse platform (Table 1).
inline FabricConfig expanse_config() { return FabricConfig{}; }

}  // namespace net
