// Pooled payload-buffer allocator for the fabric hot path.
//
// Every real-payload message used to cost two heap allocations (the byte
// vector plus its shared_ptr control block) at make_payload, and a third
// pair when fault injection corrupted a private copy.  The pool recycles
// whole shared_ptr<vector<byte>> cells instead: a buffer whose use_count
// has fallen back to 1 (only the pool holds it) is resized and handed out
// again, reusing both the vector's capacity and the original control
// block.  Steady-state traffic with bounded in-flight payloads therefore
// allocates nothing.
//
// Single-threaded by design, like the simulator that owns it.  Buffers are
// handed out with unspecified contents; acquire() overwrites them fully.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/message.hpp"

namespace net {

class PayloadPool {
 public:
  /// `max_pooled` caps how many buffers the pool retains; beyond it,
  /// buffers are plain allocations that die with their last reference.
  explicit PayloadPool(std::size_t max_pooled = 256)
      : max_pooled_(max_pooled) {}

  /// An immutable payload of exactly `size` bytes copied from `data`
  /// (which may be null when size == 0).
  PayloadPtr acquire(const void* data, std::size_t size);

  /// A mutable buffer of `size` bytes with unspecified contents; the
  /// caller fills it and converts to PayloadPtr (implicit const add).
  std::shared_ptr<std::vector<std::byte>> acquire_mutable(std::size_t size);

  /// Hand-outs served by recycling a pooled buffer vs. fresh allocations.
  std::uint64_t reused() const { return reused_; }
  std::uint64_t allocated() const { return allocated_; }
  std::size_t pooled() const { return pool_.size(); }

  /// The process-wide pool behind net::make_payload.
  static PayloadPool& global();

 private:
  std::vector<std::shared_ptr<std::vector<std::byte>>> pool_;
  std::size_t cursor_ = 0;  ///< round-robin scan start
  std::size_t max_pooled_;
  std::uint64_t reused_ = 0;
  std::uint64_t allocated_ = 0;
};

}  // namespace net
