#include "des/sharded_queue.hpp"

namespace des {

// Cold path: first schedule() onto a shard index beyond the current set.
// On the 1 -> N transition the candidate heap has never been maintained
// (the single-shard fast path bypasses it), so every existing shard's
// front must be seeded before multi-shard merging can trust the heap.
void ShardedEventQueue::grow_to(std::size_t n) {
  const bool was_multi = multi_;
  shards_.resize(n);
  multi_ = shards_.size() > 1;
  if (!was_multi && multi_) {
    fronts_.clear();
    cache_valid_ = false;
    for (std::uint32_t s = 0; s < shards_.size(); ++s) {
      reseed_front(s);
    }
  }
}

// Records `shard`'s current front as a candidate after any operation
// that may have changed it (pop, cancel, reschedule).  Duplicates are
// fine — the older candidate goes stale and skim() discards it.  An
// empty shard contributes nothing and releases its cache entry, if any.
void ShardedEventQueue::reseed_front(std::uint32_t shard) {
  Time t;
  std::uint64_t seq;
  if (shards_[shard].peek_front(t, seq)) {
    put_candidate(FrontEntry{t, seq, shard});
  } else if (cache_valid_ && cache_.shard == shard) {
    cache_valid_ = false;
  }
}

}  // namespace des
