#include "des/heap_slab_queue.hpp"

#include <algorithm>

namespace des {

// Cold paths of the preserved PR-4 reference queue (see header).

void HeapSlabQueue::compact() {
  std::erase_if(heap_, [this](const Entry& e) { return !entry_live(e); });
  heap_rebuild();
}

std::size_t HeapSlabQueue::cancel_all() {
  std::size_t n = 0;
  for (std::uint32_t idx = 0; idx < slots_.size(); ++idx) {
    if (!slots_[idx].live) continue;
    release(idx);
    ++n;
  }
  heap_.clear();
  live_count_ = 0;
  return n;
}

void HeapSlabQueue::heap_rebuild() {
  if (heap_.size() < 2) return;
  for (std::size_t i = (heap_.size() - 2) / kHeapArity + 1; i-- > 0;) {
    sift_down(i);
  }
}

}  // namespace des
