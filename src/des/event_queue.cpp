#include "des/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <iterator>

namespace des {

// Cold paths of the calendar/timing-wheel hybrid: wheel rotation,
// overflow re-spill, the amortized tombstone sweep, and whole-queue
// teardown.  Hot-path methods (schedule, pop, cancel, reschedule, the
// cursor walk) live inline in the header — they are the simulator's
// innermost loop.

// Rotates the wheel to the next occupied bucket.  Only called with the
// current bucket drained and wheel_entries_ > 0, so a target exists.
// Every occupied bucket holds times inside the old window, and overflow
// holds times >= the old window end, which is >= the new current
// bucket's window end — so spilling cannot add to the bucket the cursor
// is about to consume, and the jump target remains the global minimum.
void EventQueue::advance() {
  const std::uint32_t next = next_occupied();
  const auto d = static_cast<std::uint32_t>((next - cur_) & kWheelMask);
  cur_ = next;
  wheel_base_ += static_cast<Time>(d) << kBucketShift;
  cur_end_ = sat_add(wheel_base_, kBucketWidth);
  wheel_end_ = sat_add(wheel_base_, kWheelSpan);
  spill_overflow();
  begin_bucket();
}

// The wheel is empty and the overflow front (at t0) is live: re-anchor
// the window so t0's bucket becomes current, then spill everything that
// now fits.  This is what keeps sparse schedules cheap — the wheel never
// steps through empty buckets between two far-apart events.
void EventQueue::re_anchor(Time t0) {
  if (wheel_.empty()) wheel_.resize(kWheelSize);
  // When pop() consumes the wheel's last entry, the current bucket keeps
  // its consumed prefix and occupancy bit (only ensure_front's
  // wheel_entries_ > 0 branch clears exhausted buckets).  Scrub it here,
  // or the new era revisits the bucket and counts its garbage against
  // wheel_entries_, stranding that many live events.
  wheel_[cur_].clear();
  clear_occ(cur_);
  cur_pos_ = 0;
  wheel_base_ = static_cast<Time>(
      (static_cast<std::uint64_t>(t0) >> kBucketShift) << kBucketShift);
  cur_ = bucket_of(t0);
  cur_end_ = sat_add(wheel_base_, kBucketWidth);
  wheel_end_ = sat_add(wheel_base_, kWheelSpan);
  spill_overflow();
  if (wheel_entries_ == 0) {
    // t0 == kTimeNever == the saturated wheel_end_, so the spill
    // condition (time < wheel_end_) cannot admit it.  Move the front
    // entry directly; equal-time followers re-anchor one at a time in
    // (time, seq) heap order, preserving FIFO.
    const Entry e = overflow_.front();
    overflow_pop_front();
    wheel_[cur_].push_back(e);
    set_occ(cur_);
    ++wheel_entries_;
  }
  begin_bucket();
}

// Drains the unsorted far-future stage: dead entries vanish (they never
// paid a sift), in-window entries go straight to their buckets, and the
// rest heapify into the overflow tier.  Called on every window move and
// before any read of the overflow front, so between operations every
// staged entry satisfies time >= wheel_end_ — the invariant
// remove_or_tombstone's tier dispatch relies on.
void EventQueue::flush_stage() {
  for (const Entry& e : stage_) {
    if (!entry_live(e)) continue;
    if (e.time < wheel_end_) {
      const std::uint32_t bi = bucket_of(e.time);
      wheel_[bi].push_back(e);
      set_occ(bi);
      ++wheel_entries_;
    } else {
      overflow_push(e);
    }
  }
  stage_.clear();
}

// Moves every overflow entry whose time has rotated into the wheel
// window to its bucket.  Dead entries move too and are consumed as
// tombstones by the cursor — cheaper than filtering here.
void EventQueue::spill_overflow() {
  if (!stage_.empty()) flush_stage();
  while (!overflow_.empty() && overflow_.front().time < wheel_end_) {
    const Entry e = overflow_.front();
    overflow_pop_front();
    const std::uint32_t bi = bucket_of(e.time);
    wheel_[bi].push_back(e);
    set_occ(bi);
    ++wheel_entries_;
  }
}

// Sorts the new current bucket by (time, seq) and resets the cursor.
// This is the single sort that buys the whole design: every other
// bucket-touching operation is an O(1) append.
void EventQueue::begin_bucket() {
  std::vector<Entry>& b = wheel_[cur_];
  if (b.size() > 1) {
    std::sort(b.begin(), b.end(),
              [](const Entry& a, const Entry& x) { return entry_less(a, x); });
  }
  cur_pos_ = 0;
}

// First occupied bucket strictly after cur_, circularly.  Precondition:
// one exists (wheel_entries_ > 0 with the current bucket cleared).
std::uint32_t EventQueue::next_occupied() const {
  const std::uint32_t start = (cur_ + 1) & kWheelMask;
  std::uint32_t w = start >> 6;
  std::uint64_t word = occ_[w] & (~0ull << (start & 63u));
  for (std::uint32_t hops = 0; hops <= kOccWords; ++hops) {
    if (word != 0) {
      return (w << 6) + static_cast<std::uint32_t>(std::countr_zero(word));
    }
    w = (w + 1) & (kOccWords - 1);
    word = occ_[w];
  }
  assert(false && "occupancy bitmap empty with wheel_entries_ > 0");
  return cur_;
}

void EventQueue::compact() {
  // The (time, seq) order of surviving entries is untouched — wheel
  // entries keep their relative positions and the overflow heap is
  // rebuilt under the same comparator — so pop order, and therefore
  // simulation determinism, is unaffected.
  //
  // Walk only occupied buckets via the bitmap: cancel-heavy workloads
  // trigger a sweep every O(ring) operations, and touching all
  // kWheelSize bucket headers each time costs more than the sweep
  // itself when only a handful of buckets hold entries.
  if (!wheel_.empty()) {
    std::size_t remaining = 0;
    for (std::uint32_t w = 0; w < kOccWords; ++w) {
      // `word` is a snapshot, so clear_occ below cannot perturb the scan.
      for (std::uint64_t word = occ_[w]; word != 0; word &= word - 1) {
        const std::uint32_t bi =
            (w << 6) + static_cast<std::uint32_t>(std::countr_zero(word));
        std::vector<Entry>& b = wheel_[bi];
        if (bi == cur_ && cur_pos_ > 0) {
          // The current bucket also sheds its consumed prefix.
          b.erase(b.begin(),
                  b.begin() + static_cast<std::ptrdiff_t>(cur_pos_));
          cur_pos_ = 0;
        }
        std::erase_if(b, [this](const Entry& e) { return !entry_live(e); });
        if (b.empty()) {
          clear_occ(bi);
        } else {
          remaining += b.size();
        }
      }
    }
    wheel_entries_ = remaining;
  }
  const std::size_t overflow_before = overflow_.size();
  std::erase_if(overflow_, [this](const Entry& e) { return !entry_live(e); });
  // erase_if keeps the survivors' relative order, so an erase-free pass
  // leaves the heap property intact and the rebuild can be skipped.
  if (overflow_.size() != overflow_before) overflow_rebuild();
  std::erase_if(stage_, [this](const Entry& e) { return !entry_live(e); });
}

std::size_t EventQueue::cancel_all() {
  std::size_t n = 0;
  for (std::uint32_t idx = 0; idx < slots_.size(); ++idx) {
    if (!slots_[idx].live) continue;
    release(idx);
    ++n;
  }
  for (std::vector<Entry>& b : wheel_) b.clear();
  std::fill(std::begin(occ_), std::end(occ_), 0ull);
  overflow_.clear();
  stage_.clear();
  wheel_entries_ = 0;
  cur_pos_ = 0;
  live_count_ = 0;
  // The window (wheel_base_, cur_) is kept: simulation time only moves
  // forward, so the next schedule re-populates the same era.
  return n;
}

void EventQueue::reserve(std::size_t events) {
  slots_.reserve(events);
  // Compaction lets tombstones reach 2x the live count (plus the minimum
  // threshold) before sweeping, and in the worst case all of them sit in
  // one tier or one bucket.
  const std::size_t peak = 2 * events + kCompactMinEntries;
  overflow_.reserve(peak);
  stage_.reserve(peak);
  if (wheel_.empty()) wheel_.resize(kWheelSize);
  for (std::vector<Entry>& b : wheel_) b.reserve(peak);
}

void EventQueue::overflow_rebuild() {
  if (overflow_.size() < 2) return;
  for (std::size_t i = (overflow_.size() - 2) / kHeapArity + 1; i-- > 0;) {
    sift_down(i);
  }
}

}  // namespace des
