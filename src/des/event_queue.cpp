#include "des/event_queue.hpp"

#include <cassert>
#include <utility>

namespace des {

EventId EventQueue::schedule(Time t, Callback fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_count_;
  return true;
}

void EventQueue::drop_dead_front() {
  while (!heap_.empty() && !callbacks_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

Time EventQueue::next_time() {
  drop_dead_front();
  return heap_.empty() ? kTimeNever : heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_dead_front();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  const Entry e = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(e.id);
  Fired fired{e.time, e.id, std::move(it->second)};
  callbacks_.erase(it);
  --live_count_;
  return fired;
}

}  // namespace des
