// Small-buffer-optimized move-only callable, the event-queue hot path's
// replacement for std::function<void()>.
//
// The simulator schedules millions of short-lived callbacks; std::function
// heap-allocates any capture larger than its ~16-byte SSO and pays a
// virtual-ish dispatch through the allocator on every move.  Event
// callbacks here are small and move-only by design, so InplaceCallback
// keeps kInlineBytes of aligned storage inline — enough for every hot-path
// closure (a couple of pointers plus a pooled-record handle) — and only
// falls back to one heap cell for oversized captures (rare, cold paths
// like task bodies that carry a whole ReadyTask).  Moves are a relocate
// (move-construct + destroy), never an allocation.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

// The DES schedule/pop cycle is the simulator's innermost loop.  In large
// translation units (the drivers, the benches) GCC's size heuristics
// outline these small hot functions, which costs ~20% of steady-state
// event throughput; the hint keeps them in the loop body everywhere, not
// just in small TUs.  Applied to EventQueue's hot path and the callback
// primitives it is built on.
#ifndef AMTLCE_DES_HOT_INLINE
#if defined(__GNUC__) || defined(__clang__)
#define AMTLCE_DES_HOT_INLINE __attribute__((always_inline)) inline
#else
#define AMTLCE_DES_HOT_INLINE inline
#endif
#endif

namespace des {

class InplaceCallback {
 public:
  /// Inline capture budget.  Sized so a fabric delivery closure (engine +
  /// pooled-record pointers) or a wrapped std::function fits without heap.
  static constexpr std::size_t kInlineBytes = 64;

  // Default construction zeroes the storage so the trivial-path move (a
  // fixed 64-byte memcpy) never reads indeterminate tail bytes past a
  // smaller capture.  Only here: the move/converting paths overwrite the
  // storage themselves and must not pay the zeroing.
  InplaceCallback() noexcept : storage_{} {}
  InplaceCallback(std::nullptr_t) noexcept  // NOLINT(runtime/explicit)
      : storage_{} {}

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InplaceCallback(F&& f) {  // NOLINT(runtime/explicit)
    emplace(std::forward<F>(f));
  }

  /// Converting assignment: replaces the held callable by constructing the
  /// new one directly in place — no temporary InplaceCallback, no relocate
  /// hop.  The slab queue's schedule() leans on this.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  AMTLCE_DES_HOT_INLINE InplaceCallback& operator=(F&& f) {
    reset();
    emplace(std::forward<F>(f));
    return *this;
  }

  AMTLCE_DES_HOT_INLINE InplaceCallback(InplaceCallback&& o) noexcept {
    move_from(o);
  }
  AMTLCE_DES_HOT_INLINE InplaceCallback& operator=(
      InplaceCallback&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  InplaceCallback(const InplaceCallback&) = delete;
  InplaceCallback& operator=(const InplaceCallback&) = delete;
  AMTLCE_DES_HOT_INLINE ~InplaceCallback() { reset(); }

  AMTLCE_DES_HOT_INLINE void operator()() {
    assert(ops_ != nullptr && "invoking an empty InplaceCallback");
    ops_->invoke(&storage_);
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True when the callable lives inline (no heap cell).  For tests.
  bool is_inline() const noexcept { return ops_ != nullptr && ops_->inline_storage; }

  AMTLCE_DES_HOT_INLINE void reset() noexcept {
    if (ops_ != nullptr) {
      if (!ops_->trivial) ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs into dst from src, then destroys src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool inline_storage;
    /// Trivially copyable + destructible capture: moves are a memcpy and
    /// destruction is a no-op, skipping both indirect calls.  This covers
    /// every hot-path closure (pointer captures).
    bool trivial;
  };

  template <typename Fn>
  static void invoke_inline(void* p) {
    (*static_cast<Fn*>(p))();
  }
  template <typename Fn>
  static void relocate_inline(void* dst, void* src) noexcept {
    Fn* const s = static_cast<Fn*>(src);
    ::new (dst) Fn(std::move(*s));
    s->~Fn();
  }
  template <typename Fn>
  static void destroy_inline(void* p) noexcept {
    static_cast<Fn*>(p)->~Fn();
  }
  template <typename Fn>
  static const Ops* inline_ops() {
    static constexpr Ops ops{&invoke_inline<Fn>, &relocate_inline<Fn>,
                             &destroy_inline<Fn>, true,
                             std::is_trivially_copyable_v<Fn> &&
                                 std::is_trivially_destructible_v<Fn>};
    return &ops;
  }

  template <typename Fn>
  static void invoke_heap(void* p) {
    (**static_cast<Fn**>(p))();
  }
  template <typename Fn>
  static void relocate_heap(void* dst, void* src) noexcept {
    ::new (dst) Fn*(*static_cast<Fn**>(src));
  }
  template <typename Fn>
  static void destroy_heap(void* p) noexcept {
    delete *static_cast<Fn**>(p);
  }
  template <typename Fn>
  static const Ops* heap_ops() {
    static constexpr Ops ops{&invoke_heap<Fn>, &relocate_heap<Fn>,
                             &destroy_heap<Fn>, false, false};
    return &ops;
  }

  template <typename F>
  AMTLCE_DES_HOT_INLINE void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(&storage_)) Fn(std::forward<F>(f));
      ops_ = inline_ops<Fn>();
    } else {
      ::new (static_cast<void*>(&storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = heap_ops<Fn>();
    }
  }

  // The trivial path copies the full fixed-size buffer (one unrolled
  // 64-byte memcpy, no length dependence) and so reads tail bytes past a
  // smaller capture.  Those bytes are never interpreted — only the leading
  // sizeof(Fn) bytes ever reach the callable — so GCC's uninitialized-read
  // diagnosis is a false positive here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
  AMTLCE_DES_HOT_INLINE void move_from(InplaceCallback& o) noexcept {
    ops_ = o.ops_;
    if (ops_ != nullptr) {
      if (ops_->trivial) {
        std::memcpy(&storage_, &o.storage_, kInlineBytes);
      } else {
        ops_->relocate(&storage_, &o.storage_);
      }
      o.ops_ = nullptr;
    }
  }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace des
