// Sharded event queue: one slab EventQueue per shard (in the simulator,
// one shard per simulated node), merged into a single global firing order.
//
// Why shard?  At 512-4096 simulated nodes a monolithic queue interleaves
// every node's events in one slab and one heap, so the hot pop/schedule
// loop touches cache lines from the whole cluster.  Sharding keeps each
// node's slots, callbacks, and heap entries in its own compact slab
// (locality today) and gives each shard an independent timeline with a
// `safe_horizon()` lookahead bound (conservative-parallel execution
// later: a shard may run ahead to min over other shards of their next
// event time plus the wire-latency lookahead, because no cross-shard
// event can arrive earlier than that).
//
// Ordering is EXACT, not merely fair: all shards draw FIFO sequence
// numbers from one shared counter (EventQueue::schedule_seq), and pop()
// returns the global minimum by (time, seq).  The merged firing order is
// therefore bit-identical to what one monolithic EventQueue would
// produce for the same schedule() call sequence — which is what keeps
// fig4/fig5 reproductions byte-stable when the fabric shards per node.
//
// Front merging is a lazy min-heap of (time, seq, shard) candidates:
//   - schedule() records a candidate only when the new event became its
//     shard's front;
//   - pop() re-records the shard's new front after removing the old one;
//   - cancel()/reschedule() record the shard's (possibly changed) front;
//   - stale candidates (their (time, seq) no longer matches the shard's
//     true front) are skipped and discarded when they surface.
// Every front change is covered by one of those hooks, so the heap top,
// once skimmed of stale entries, is always the true global minimum.
//
// One candidate lives OUTSIDE the heap: a single-entry front cache.
// Simulated workloads fire runs of consecutive events on one shard (a
// delivery fans out into same-node follow-ups), and for such runs the
// heap-based path pays a candidate push + pop + sift per event even
// though the winning shard never changes.  The cache absorbs exactly
// that pattern: the latest recorded front goes to the cache when the
// cache is free or already holds the same shard (same-shard replacement
// is safe — a shard's older candidate is stale by construction once a
// newer one exists), and skim() returns the minimum of the validated
// cache and the validated heap top.  A same-shard run then costs zero
// heap operations after the first event.
//
// With a single shard the candidate machinery is bypassed entirely and
// the wrapper costs one branch over a bare EventQueue.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "des/event_queue.hpp"
#include "des/time.hpp"

namespace des {

class ShardedEventQueue {
 public:
  /// Identifies a scheduled event: the owning shard plus the EventId
  /// inside that shard's queue.  Shard-0 ids interoperate with code that
  /// only keeps the EventId (the Engine's legacy cancel/reschedule API).
  struct Id {
    std::uint32_t shard = 0;
    EventId ev = kInvalidEvent;
  };

  explicit ShardedEventQueue(std::size_t shards = 1) {
    shards_.resize(shards > 0 ? shards : 1);
    multi_ = shards_.size() > 1;
  }

  /// Schedules `fn` on `shard` at absolute time `t`.  Shards are created
  /// on demand: scheduling on a shard index beyond the current count
  /// grows the set (cold path; growth never perturbs pending events).
  template <typename F>
  AMTLCE_DES_HOT_INLINE Id schedule(std::uint32_t shard, Time t, F&& fn) {
    if (shard >= shards_.size()) grow_to(shard + 1);
    const std::uint64_t seq = next_seq_++;
    const EventId ev = shards_[shard].schedule_seq(t, seq,
                                                   std::forward<F>(fn));
    ++live_;
    if (multi_) {
      // Candidate needed only if this event became the shard's front.
      Time ft;
      std::uint64_t fseq;
      if (shards_[shard].peek_front(ft, fseq) && fseq == seq) {
        put_candidate(FrontEntry{t, seq, shard});
      }
    }
    return Id{shard, ev};
  }

  /// Cancels a pending event.  Returns false if unknown or already fired.
  bool cancel(const Id& id) {
    if (id.shard >= shards_.size()) return false;
    if (!shards_[id.shard].cancel(id.ev)) return false;
    --live_;
    if (multi_) reseed_front(id.shard);
    return true;
  }

  /// Moves a pending event to time `t` with a fresh global FIFO position.
  bool reschedule(const Id& id, Time t) {
    if (id.shard >= shards_.size()) return false;
    if (!shards_[id.shard].reschedule_seq(id.ev, t, next_seq_)) return false;
    ++next_seq_;
    if (multi_) reseed_front(id.shard);
    return true;
  }

  /// Cancels every pending event on one shard (fail-stop node crash).
  /// All outstanding Ids into the shard go stale.  Returns the number of
  /// events cancelled.  Cold path.
  std::size_t cancel_shard(std::uint32_t shard) {
    if (shard >= shards_.size()) return 0;
    const std::size_t n = shards_[shard].cancel_all();
    live_ -= n;
    if (multi_) reseed_front(shard);
    return n;
  }

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }
  std::size_t num_shards() const { return shards_.size(); }

  /// Time of the earliest pending event across all shards, kTimeNever
  /// when empty.
  AMTLCE_DES_HOT_INLINE Time next_time() {
    if (!multi_) return shards_[0].next_time();
    const FrontEntry* e = skim();
    return e == nullptr ? kTimeNever : e->time;
  }

  /// Pops the globally earliest event — minimum (time, seq), i.e. the
  /// exact order a monolithic queue would fire.  Precondition: !empty().
  struct Fired {
    Time time;
    Id id;
    EventQueue::Callback fn;
  };
  AMTLCE_DES_HOT_INLINE Fired pop() {
    assert(live_ > 0 && "pop() on empty ShardedEventQueue");
    std::uint32_t shard = 0;
    if (multi_) {
      const FrontEntry* e = skim();
      assert(e != nullptr && "live_ > 0 but no valid front candidate");
      shard = e->shard;
      if (e == &cache_) {
        cache_valid_ = false;  // freed for the shard's next front
      } else {
        front_pop();
      }
    }
    auto fired = shards_[shard].pop();
    --live_;
    if (multi_) reseed_front(shard);
    return Fired{fired.time, Id{shard, fired.id}, std::move(fired.fn)};
  }

  /// Earliest time at which any OTHER shard could inject work into
  /// `shard`, assuming cross-shard interactions take at least `lookahead`
  /// of simulated time (the fabric's minimum wire latency).  Events of
  /// `shard` strictly before this horizon can safely run without seeing
  /// input from the rest of the cluster — the conservative-parallel DES
  /// bound (Chandy/Misra lookahead).
  Time safe_horizon(std::uint32_t shard, Duration lookahead) {
    Time min_other = kTimeNever;
    for (std::uint32_t s = 0; s < shards_.size(); ++s) {
      if (s == shard) continue;
      const Time t = shards_[s].next_time();
      if (t < min_other) min_other = t;
    }
    if (min_other == kTimeNever) return kTimeNever;
    return min_other + lookahead;
  }

  /// Per-shard introspection (tests, schedulers).
  Time shard_next_time(std::uint32_t shard) {
    return shard < shards_.size() ? shards_[shard].next_time() : kTimeNever;
  }
  std::size_t shard_size(std::uint32_t shard) const {
    return shard < shards_.size() ? shards_[shard].size() : 0;
  }

 private:
  struct FrontEntry {
    Time time;
    std::uint64_t seq;
    std::uint32_t shard;
    bool operator>(const FrontEntry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;  // seqs are globally unique — total order
    }
  };

  void grow_to(std::size_t n);
  void reseed_front(std::uint32_t shard);

  /// True when `e` still names its shard's front (candidates go stale
  /// when the shard's front is popped, cancelled, or rescheduled).
  AMTLCE_DES_HOT_INLINE bool candidate_valid(const FrontEntry& e) {
    Time t;
    std::uint64_t seq;
    return shards_[e.shard].peek_front(t, seq) && t == e.time && seq == e.seq;
  }

  /// Records `e` as a front candidate: into the cache when it is free or
  /// holds the same shard (whose older candidate is stale by
  /// construction), into the heap otherwise.
  AMTLCE_DES_HOT_INLINE void put_candidate(const FrontEntry& e) {
    if (!cache_valid_ || cache_.shard == e.shard) {
      cache_ = e;
      cache_valid_ = true;
      return;
    }
    front_push(e);
  }

  /// Returns the true global front — the minimum of the validated cache
  /// and the validated heap top — or null when no live events remain.
  /// Stale heap candidates are discarded as they surface; a stale cache
  /// is simply invalidated.
  AMTLCE_DES_HOT_INLINE const FrontEntry* skim() {
    const FrontEntry* best = nullptr;
    if (cache_valid_) {
      if (candidate_valid(cache_)) {
        best = &cache_;
      } else {
        cache_valid_ = false;
      }
    }
    while (!fronts_.empty()) {
      const FrontEntry& e = fronts_.front();
      if (candidate_valid(e)) {
        return best != nullptr && e > *best ? best : &e;
      }
      front_pop();  // stale: cancelled, rescheduled, or duplicate
    }
    return best;
  }

  // Binary min-heap over candidates (small: O(shards + churn) entries).
  AMTLCE_DES_HOT_INLINE void front_push(const FrontEntry& e) {
    fronts_.push_back(e);
    std::size_t i = fronts_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!(fronts_[parent] > fronts_[i])) break;
      std::swap(fronts_[parent], fronts_[i]);
      i = parent;
    }
  }
  AMTLCE_DES_HOT_INLINE void front_pop() {
    fronts_.front() = fronts_.back();
    fronts_.pop_back();
    std::size_t i = 0;
    const std::size_t n = fronts_.size();
    for (;;) {
      const std::size_t l = 2 * i + 1, r = 2 * i + 2;
      std::size_t best = i;
      if (l < n && fronts_[best] > fronts_[l]) best = l;
      if (r < n && fronts_[best] > fronts_[r]) best = r;
      if (best == i) break;
      std::swap(fronts_[i], fronts_[best]);
      i = best;
    }
  }

  std::vector<EventQueue> shards_;
  std::vector<FrontEntry> fronts_;  // lazy min-heap of shard fronts
  FrontEntry cache_{};              // single-entry candidate fast path
  std::uint64_t next_seq_ = 0;      // ONE counter across all shards
  std::size_t live_ = 0;
  bool multi_ = false;
  bool cache_valid_ = false;
};

}  // namespace des
