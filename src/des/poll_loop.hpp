// PollLoop: a polling loop running on a SimThread.
//
// Real progress/communication threads spin, polling for work.  A naive
// simulated spin loop would generate events forever and the simulation
// would never drain, so PollLoop is event-driven: while the body reports
// work it re-posts itself (paying `iteration_cost` per pass, like a real
// poll); when the body reports idle the loop parks until wake() is called
// (by a NIC delivery hook, a command enqueue, ...).  This preserves the
// timing behaviour of busy polling — a parked thread resumes immediately
// on wake — without the event-queue livelock.
#pragma once

#include <functional>
#include <utility>

#include "des/sim_thread.hpp"
#include "des/time.hpp"

namespace des {

class PollLoop {
 public:
  /// `body` returns true when it did work (keeps the loop hot).
  PollLoop(SimThread& thread, Duration iteration_cost,
           std::function<bool()> body)
      : thread_(thread), iteration_cost_(iteration_cost),
        body_(std::move(body)) {}
  PollLoop(const PollLoop&) = delete;
  PollLoop& operator=(const PollLoop&) = delete;

  /// Begins polling (idempotent).
  void start() {
    started_ = true;
    arm();
  }

  /// Stops the loop permanently (pending iteration becomes a no-op).
  void stop() { started_ = false; }

  /// Signals that work may be available; resumes a parked loop.
  /// Safe to call from any simulation context, including the body.
  void wake() {
    wake_pending_ = true;
    if (started_) arm();
  }

  bool parked() const { return started_ && !armed_; }

 private:
  void arm() {
    if (armed_ || !started_) return;
    armed_ = true;
    thread_.post_work(iteration_cost_, [this]() { iterate(); }, "poll");
  }

  void iterate() {
    armed_ = false;
    if (!started_) return;
    wake_pending_ = false;
    const bool worked = body_();
    if (worked || wake_pending_) arm();
  }

  SimThread& thread_;
  Duration iteration_cost_;
  std::function<bool()> body_;
  bool started_ = false;
  bool armed_ = false;
  bool wake_pending_ = false;
};

}  // namespace des
