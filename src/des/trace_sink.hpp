// Trace hook for the discrete-event engine.
//
// A TraceSink receives completed simulated-time spans and point events
// from the engine's components (SimThread occupancy, NIC pipe activity,
// task execution, AM callbacks).  The engine holds at most one sink; when
// none is installed every producer reduces to a single null-pointer check,
// so tracing costs nothing when off.  `src/obs` provides the Chrome-trace
// implementation.
#pragma once

#include <cstdint>
#include <string_view>

#include "des/time.hpp"

namespace des {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// A completed span of simulated time on a named track (one track per
  /// simulated thread / NIC pipe).  `dur` may be zero.
  virtual void span(std::string_view track, std::string_view name,
                    Time start, Duration dur) = 0;

  /// A point event on a named track.
  virtual void instant(std::string_view track, std::string_view name,
                       Time t) = 0;

  /// One end of a causal flow arrow between tracks: `begin` marks the
  /// producing end (Chrome-trace ph:"s"), `!begin` the consuming end
  /// (ph:"f").  The viewer matches ends by (name, id); both ends bind to
  /// the slice enclosing `t` on their track.  Default: ignored, so sinks
  /// that only care about spans need not override.
  virtual void flow(std::string_view track, std::string_view name, Time t,
                    std::uint64_t id, bool begin) {
    (void)track;
    (void)name;
    (void)t;
    (void)id;
    (void)begin;
  }

  /// One point on a named counter series (Chrome-trace ph:"C"): the value
  /// of `name` on `track` becomes `value` at time `t` and holds until the
  /// next point.  The timeline sampler emits these so queue depths, link
  /// bytes, and FD states render as curves next to the span/flow tracks.
  /// Default: ignored.
  virtual void counter(std::string_view track, std::string_view name, Time t,
                       double value) {
    (void)track;
    (void)name;
    (void)t;
    (void)value;
  }
};

}  // namespace des
