#include "des/time.hpp"

#include <cstdio>

namespace des {

std::string format_time(Time t) {
  char buf[64];
  const double ns = static_cast<double>(t);
  if (t < 10 * kMicrosecond) {
    std::snprintf(buf, sizeof buf, "%lld ns", static_cast<long long>(t));
  } else if (t < 10 * kMillisecond) {
    std::snprintf(buf, sizeof buf, "%.3f us", ns / 1e3);
  } else if (t < 10 * kSecond) {
    std::snprintf(buf, sizeof buf, "%.3f ms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", ns / 1e9);
  }
  return buf;
}

}  // namespace des
