// The PR-4 binary-heap slot-slab event queue, preserved verbatim as a
// reference implementation after EventQueue moved to the calendar/
// timing-wheel hybrid.
//
// Two consumers keep it alive:
//   * tests/des/queue_differential_test.cpp pops it side-by-side with the
//     hybrid queue over randomized schedule/cancel/reschedule mixes — the
//     two must agree on every (time, seq) pop and every EventId's
//     liveness, which is the strongest correctness check we have for the
//     wheel's ordering.
//   * bench/perf_core reports its throughput as the "heapslab" row so the
//     hybrid's speedup is measured against the structure it replaced, on
//     the same machine, in the same run.
//
// Semantics (shared with the hybrid — see event_queue.hpp for the full
// contract): FIFO among equal timestamps, generation-tagged EventIds,
// O(1) amortized cancellation via tombstones, compaction whenever dead
// entries outnumber live ones, zero steady-state allocations.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "des/event_queue.hpp"  // EventId, kInvalidEvent
#include "des/inplace_callback.hpp"
#include "des/time.hpp"

namespace des {

class HeapSlabQueue {
 public:
  using Callback = InplaceCallback;

  template <typename F>
  AMTLCE_DES_HOT_INLINE EventId schedule(Time t, F&& fn);

  template <typename F>
  AMTLCE_DES_HOT_INLINE EventId schedule_seq(Time t, std::uint64_t seq,
                                             F&& fn);

  AMTLCE_DES_HOT_INLINE bool cancel(EventId id);

  AMTLCE_DES_HOT_INLINE bool reschedule(EventId id, Time t);

  AMTLCE_DES_HOT_INLINE bool reschedule_seq(EventId id, Time t,
                                            std::uint64_t seq);

  std::size_t cancel_all();

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  /// Heap entries including tombstones.
  std::size_t heap_size() const { return heap_.size(); }

  /// Slots in the slab, live or free.
  std::size_t slab_size() const { return slots_.size(); }

  AMTLCE_DES_HOT_INLINE Time next_time();

  AMTLCE_DES_HOT_INLINE bool peek_front(Time& t, std::uint64_t& seq) {
    drop_dead_front();
    if (heap_.empty()) return false;
    t = heap_.front().time;
    seq = heap_.front().key >> kSlotBits;
    return true;
  }

  struct Fired {
    Time time;
    EventId id;
    Callback fn;
  };
  AMTLCE_DES_HOT_INLINE Fired pop();

 private:
  static constexpr std::uint32_t kNoFree = 0xFFFFFFFFu;

  struct Slot {
    Callback fn;
    Time time = 0;
    std::uint64_t heap_key = 0;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNoFree;
    bool live = false;
  };

  static constexpr std::uint64_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;

  struct Entry {
    Time time;
    std::uint64_t key;  // seq << kSlotBits | slot
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return key > o.key;
    }
  };
  static_assert(sizeof(Entry) == 16, "4 children must fit one cache line");

  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id & 0xFFFFFFFFu) - 1;
  }
  static std::uint32_t gen_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) |
           (static_cast<EventId>(slot) + 1);
  }

  AMTLCE_DES_HOT_INLINE Slot* live_slot(EventId id) {
    const auto low = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
    if (low == 0 || low > slots_.size()) return nullptr;
    Slot& s = slots_[low - 1];
    if (!s.live || s.gen != gen_of(id)) return nullptr;
    return &s;
  }

  AMTLCE_DES_HOT_INLINE bool entry_live(const Entry& e) const {
    const Slot& s = slots_[e.key & kSlotMask];
    return s.live && s.heap_key == e.key;
  }

  AMTLCE_DES_HOT_INLINE void release(std::uint32_t idx) {
    Slot& s = slots_[idx];
    s.fn.reset();
    s.live = false;
    ++s.gen;
    s.next_free = free_head_;
    free_head_ = idx;
  }

  AMTLCE_DES_HOT_INLINE void drop_dead_front() {
    while (!heap_.empty() && !entry_live(heap_.front())) {
      heap_pop_front();
    }
  }

  AMTLCE_DES_HOT_INLINE void maybe_compact() {
    if (heap_.size() < kCompactMinHeap || heap_.size() <= 2 * live_count_) {
      return;
    }
    compact();
  }
  void compact();

  static constexpr std::size_t kHeapArity = 4;
  static constexpr std::size_t kCompactMinHeap = 64;

  AMTLCE_DES_HOT_INLINE void sift_up(std::size_t i) {
    const Entry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / kHeapArity;
      if (!(heap_[parent] > e)) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  AMTLCE_DES_HOT_INLINE void sift_down(std::size_t i) {
    const Entry e = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = kHeapArity * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      if (first + kHeapArity <= n) {
        for (std::size_t c = first + 1; c < first + kHeapArity; ++c) {
          if (heap_[best] > heap_[c]) best = c;
        }
      } else {
        for (std::size_t c = first + 1; c < n; ++c) {
          if (heap_[best] > heap_[c]) best = c;
        }
      }
      if (!(e > heap_[best])) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  AMTLCE_DES_HOT_INLINE void heap_push(const Entry& e) {
    heap_.push_back(e);
    sift_up(heap_.size() - 1);
  }

  AMTLCE_DES_HOT_INLINE void heap_pop_front() {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }

  void heap_rebuild();

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoFree;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
};

template <typename F>
EventId HeapSlabQueue::schedule(Time t, F&& fn) {
  return schedule_seq(t, next_seq_++, std::forward<F>(fn));
}

template <typename F>
EventId HeapSlabQueue::schedule_seq(Time t, std::uint64_t seq, F&& fn) {
  std::uint32_t idx;
  if (free_head_ != kNoFree) {
    idx = free_head_;
    free_head_ = slots_[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    assert(idx <= kSlotMask && "slot index exceeds Entry packing");
  }
  Slot& s = slots_[idx];
  s.fn = std::forward<F>(fn);
  s.time = t;
  const std::uint64_t key = (seq << kSlotBits) | idx;
  s.heap_key = key;
  s.live = true;
  heap_push(Entry{t, key});
  ++live_count_;
  maybe_compact();
  return make_id(idx, s.gen);
}

inline bool HeapSlabQueue::cancel(EventId id) {
  Slot* const s = live_slot(id);
  if (s == nullptr) return false;
  release(slot_of(id));
  --live_count_;
  maybe_compact();
  return true;
}

inline bool HeapSlabQueue::reschedule(EventId id, Time t) {
  return reschedule_seq(id, t, next_seq_++);
}

inline bool HeapSlabQueue::reschedule_seq(EventId id, Time t,
                                          std::uint64_t seq) {
  Slot* const s = live_slot(id);
  if (s == nullptr) return false;
  s->time = t;
  const std::uint64_t key = (seq << kSlotBits) | slot_of(id);
  s->heap_key = key;
  heap_push(Entry{t, key});
  maybe_compact();
  return true;
}

inline Time HeapSlabQueue::next_time() {
  drop_dead_front();
  return heap_.empty() ? kTimeNever : heap_.front().time;
}

inline HeapSlabQueue::Fired HeapSlabQueue::pop() {
  drop_dead_front();
  assert(!heap_.empty() && "pop() on empty HeapSlabQueue");
  const Entry e = heap_.front();
  heap_pop_front();
  const auto idx = static_cast<std::uint32_t>(e.key & kSlotMask);
  Slot& s = slots_[idx];
  Fired fired{e.time, make_id(idx, s.gen), std::move(s.fn)};
  release(idx);
  --live_count_;
  maybe_compact();
  return fired;
}

}  // namespace des
