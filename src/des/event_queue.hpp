// Cancellable time-ordered event queue — calendar/timing-wheel hybrid
// over a generation-tagged slot slab.
//
// DES timestamps cluster at wire-latency offsets from "now" (tens of
// nanoseconds to a few microseconds), so a comparison-based heap pays
// O(log n) per operation to maintain a total order the workload barely
// exercises.  This queue instead keeps a *calendar* of kWheelSize
// fixed-width buckets covering the near future:
//
//   * schedule(t) with t inside the wheel window is an O(1) push into the
//     bucket covering t (buckets other than the current one stay
//     unsorted);
//   * schedule(t) with t at or past the window end goes to a far-future
//     overflow tier (a small 4-ary min-heap ordered by (time, seq));
//   * pop() consumes the *current* bucket through a cursor.  A bucket is
//     sorted by (time, seq) once, the moment it becomes current — by
//     then it has received all its entries except same-window
//     stragglers, which insert sorted into the unconsumed tail;
//   * when the current bucket drains, the wheel advances directly to the
//     next occupied bucket (an occupancy bitmap makes the skip O(1)),
//     and overflow entries whose time has rotated into the window are
//     re-spilled into their buckets;
//   * when the wheel itself drains, it re-anchors at the overflow front,
//     so arbitrarily sparse schedules cost no empty-bucket scanning.
//
// Pop order is exactly the (time, seq) total order the PR-4 heap
// produced — see DESIGN.md for the ordering argument — and the external
// contract is unchanged: events with equal timestamps fire in insertion
// order (FIFO), callbacks live inline in a slab of reusable
// generation-tagged slots, and the steady-state schedule/pop cycle
// performs zero heap allocations.
//
// Cancellation is O(1) amortized via tombstoning: a cancelled (or
// rescheduled) event's entry stays behind and is skipped when the cursor
// reaches it.  Tombstones are swept — order preserved — whenever dead
// entries outnumber live ones; the sweep is triggered from schedule(),
// cancel(), AND pop(), so any operation mix keeps heap_size() within a
// constant factor of size().  Each O(entries) sweep removes >= half the
// entries, each of which took at least one O(1) operation to create, so
// the sweep cost amortizes to O(1) per operation.
//
// reschedule() moves a pending event to a new time in place: the callback
// stays in its slot, the old entry becomes a tombstone, and the event
// behaves exactly as if it had been cancelled and re-scheduled at the new
// time (fresh FIFO seq) — minus the callback teardown and slot churn.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "des/inplace_callback.hpp"
#include "des/time.hpp"

namespace des {

/// Identifies a scheduled event; valid until the event fires or is
/// cancelled.  Encodes (generation << 32 | slot + 1) so ids of fired or
/// cancelled events are never confused with the slot's next tenant.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  using Callback = InplaceCallback;

  /// Schedules `fn` to fire at absolute time `t`.  `t` must not precede the
  /// last popped event time (enforced by Engine, not here).  Accepts any
  /// void() callable and constructs it directly in the slab slot (no
  /// intermediate Callback hop).  Defined inline below: schedule/pop are
  /// the simulator's innermost loop and must inline into callers.
  template <typename F>
  AMTLCE_DES_HOT_INLINE EventId schedule(Time t, F&& fn);

  /// schedule() with an externally supplied FIFO sequence number.  Used by
  /// ShardedEventQueue to impose ONE global (time, seq) order across many
  /// per-shard queues: each shard stores its events under seqs drawn from
  /// the shared counter, so merging shard fronts by (time, seq) reproduces
  /// exactly the order a single monolithic queue would produce.  `seq`
  /// values must be strictly increasing across calls (including plain
  /// schedule()/reschedule(), which advance the same internal counter when
  /// used standalone) and must stay below 2^40.
  template <typename F>
  AMTLCE_DES_HOT_INLINE EventId schedule_seq(Time t, std::uint64_t seq,
                                             F&& fn);

  /// Cancels a pending event.  Returns false if the id is unknown or the
  /// event already fired.
  AMTLCE_DES_HOT_INLINE bool cancel(EventId id);

  /// Moves a pending event to absolute time `t`, keeping its callback.
  /// Equivalent to cancel + schedule of the same callback (the event gets
  /// a fresh FIFO position among equal timestamps) without the slot and
  /// callback churn.  Returns false if the id is unknown or already fired.
  AMTLCE_DES_HOT_INLINE bool reschedule(EventId id, Time t);

  /// reschedule() with an externally supplied FIFO sequence number (see
  /// schedule_seq); the moved event re-queues as if freshly scheduled
  /// under `seq`.
  AMTLCE_DES_HOT_INLINE bool reschedule_seq(EventId id, Time t,
                                            std::uint64_t seq);

  /// Cancels every pending event at once (fail-stop node crash: the
  /// node's whole shard dies).  All outstanding EventIds go stale and
  /// callbacks are destroyed without firing.  Returns the number of
  /// events cancelled.  Cold path: O(slab + buckets), not amortized.
  std::size_t cancel_all();

  /// Pre-sizes internal storage — slab, overflow tier, and every wheel
  /// bucket — so a steady-state workload of up to `events` concurrent
  /// events performs no allocations from the first operation on.  Cold
  /// path for benchmarks and long-lived engines; never required for
  /// correctness (storage also grows on demand).
  void reserve(std::size_t events);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  /// Pending entries including tombstones, over all tiers (for tests:
  /// compaction keeps this within a constant factor of size()).
  std::size_t heap_size() const {
    return wheel_entries_ + overflow_.size() + stage_.size();
  }

  /// Slots in the slab, live or free (for tests: bounded by peak live
  /// events, not by total events ever scheduled).
  std::size_t slab_size() const { return slots_.size(); }

  /// Time of the earliest pending event, or kTimeNever when empty.
  AMTLCE_DES_HOT_INLINE Time next_time();

  /// The front event's (time, seq) after dropping tombstones.  Returns
  /// false when the queue is empty.  The seq is the FIFO sequence the
  /// event was scheduled under (external when schedule_seq was used), so
  /// ShardedEventQueue can compare fronts across shards exactly.
  AMTLCE_DES_HOT_INLINE bool peek_front(Time& t, std::uint64_t& seq) {
    if (!ensure_front()) return false;
    const Entry& e = wheel_[cur_][cur_pos_];
    t = e.time;
    seq = e.key >> kSlotBits;
    return true;
  }

  /// Pops and returns the earliest pending event.  Precondition: !empty().
  struct Fired {
    Time time;
    EventId id;
    Callback fn;
  };
  AMTLCE_DES_HOT_INLINE Fired pop();

 private:
  static constexpr std::uint32_t kNoFree = 0xFFFFFFFFu;

  struct Slot {
    Callback fn;
    Time time = 0;            ///< currently scheduled fire time
    std::uint64_t heap_key = 0;  ///< key of the slot's live queue entry
    std::uint32_t gen = 0;    ///< bumped on release; part of the EventId
    std::uint32_t next_free = kNoFree;
    bool live = false;
  };

  /// Entries are 16 bytes so four of them span a single cache line (the
  /// overflow tier is a 4-ary heap; bucket scans are linear).  `key`
  /// packs the FIFO sequence number into the high 40 bits and the slot
  /// index into the low 24: comparing keys orders by seq (seq is globally
  /// unique, so the slot bits never decide), and the seq doubles as the
  /// liveness token — an entry is live iff its key still equals its
  /// slot's heap_key.  Limits: 2^24 (16.7M) concurrent events, 2^40
  /// (1.1e12) schedules per queue lifetime; both are orders of magnitude
  /// beyond any simulation here (the slot limit is asserted on slab
  /// growth, a cold path).
  static constexpr std::uint64_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;

  struct Entry {
    Time time;
    std::uint64_t key;  // seq << kSlotBits | slot
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return key > o.key;  // high bits are the FIFO seq
    }
  };
  static_assert(sizeof(Entry) == 16, "4 entries must fit one cache line");

  static AMTLCE_DES_HOT_INLINE bool entry_less(const Entry& a,
                                               const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.key < b.key;
  }

  // ---- Wheel geometry -------------------------------------------------
  //
  // kBucketWidth is 1024 ns: the dominant inter-event gaps in this
  // simulator are NIC/link latencies (tens to hundreds of ns) and
  // software overheads (~1 us), so a ~1 us bucket keeps same-bucket
  // sorts short while still absorbing the bulk of traffic; RTO timers
  // and end-of-phase barriers (tens of us and up) ride the overflow
  // tier and re-spill as the window rotates.  kWheelSize = 256 buckets
  // cover a 262 us window — wide enough that steady-state traffic
  // almost never touches overflow — and cost 6 KB of headers per
  // queue, which matters because ShardedEventQueue instantiates one
  // queue per node shard (the wheel itself is allocated on first use,
  // so idle shards stay tiny).
  static constexpr std::uint32_t kWheelBits = 8;
  static constexpr std::uint32_t kWheelSize = 1u << kWheelBits;
  static constexpr std::uint32_t kWheelMask = kWheelSize - 1;
  static constexpr std::uint32_t kBucketShift = 10;
  static constexpr Time kBucketWidth = Time{1} << kBucketShift;
  static constexpr Time kWheelSpan = Time{kWheelSize} << kBucketShift;
  static constexpr std::uint32_t kOccWords = kWheelSize / 64;

  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id & 0xFFFFFFFFu) - 1;
  }
  static std::uint32_t gen_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) |
           (static_cast<EventId>(slot) + 1);
  }

  /// a + b clamped to kTimeNever (window bounds must not wrap when the
  /// wheel anchors near the end of the time axis).
  static Time sat_add(Time a, Time b) {
    return a >= kTimeNever - b ? kTimeNever : a + b;
  }

  std::uint32_t bucket_of(Time t) const {
    return static_cast<std::uint32_t>(
               static_cast<std::uint64_t>(t) >> kBucketShift) &
           kWheelMask;
  }

  AMTLCE_DES_HOT_INLINE void set_occ(std::uint32_t b) {
    occ_[b >> 6] |= 1ull << (b & 63u);
  }
  AMTLCE_DES_HOT_INLINE void clear_occ(std::uint32_t b) {
    occ_[b >> 6] &= ~(1ull << (b & 63u));
  }

  /// The slot behind `id`, or null when the id is invalid, stale, or the
  /// event already fired / was cancelled.
  AMTLCE_DES_HOT_INLINE Slot* live_slot(EventId id) {
    const auto low = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
    if (low == 0 || low > slots_.size()) return nullptr;
    Slot& s = slots_[low - 1];
    if (!s.live || s.gen != gen_of(id)) return nullptr;
    return &s;
  }

  /// True when an entry still represents its slot's scheduled state (not
  /// a cancel/reschedule tombstone).  The key's seq bits are unique per
  /// schedule/reschedule, so key equality alone proves the entry is the
  /// slot's current tenant.
  AMTLCE_DES_HOT_INLINE bool entry_live(const Entry& e) const {
    const Slot& s = slots_[e.key & kSlotMask];
    return s.live && s.heap_key == e.key;
  }

  /// Returns a slot to the free list (callback destroyed, generation
  /// bumped so outstanding ids to it go stale).
  AMTLCE_DES_HOT_INLINE void release(std::uint32_t idx) {
    Slot& s = slots_[idx];
    s.fn.reset();
    s.live = false;
    ++s.gen;  // outstanding ids to this slot are now stale
    s.next_free = free_head_;
    free_head_ = idx;
  }

  /// Routes a fresh entry to its tier: current bucket (sorted insert into
  /// the unconsumed tail — also the path for times at or before the
  /// current window, so a past-time schedule still pops first), a future
  /// bucket (unsorted append), or the far-future stage (an unsorted tail
  /// heapified in bulk the next time the overflow tier is read — far
  /// inserts are O(1), and a schedule-soon-cancelled never pays a sift).
  AMTLCE_DES_HOT_INLINE void insert_entry(Time t, std::uint64_t key) {
    if (t >= wheel_end_) {
      stage_.push_back(Entry{t, key});
      return;
    }
    if (wheel_.empty()) wheel_.resize(kWheelSize);
    ++wheel_entries_;
    if (t < cur_end_) {
      std::vector<Entry>& b = wheel_[cur_];
      const Entry e{t, key};
      if (b.size() == cur_pos_ || !entry_less(e, b.back())) {
        // Hot case: a fresh seq at a time >= the tail's back lands last.
        b.push_back(e);
      } else {
        b.insert(std::lower_bound(b.begin() +
                                      static_cast<std::ptrdiff_t>(cur_pos_),
                                  b.end(), e, &EventQueue::entry_less),
                 e);
      }
      set_occ(cur_);
    } else {
      const std::uint32_t bi = bucket_of(t);
      wheel_[bi].push_back(Entry{t, key});
      set_occ(bi);
    }
  }

  /// Positions the cursor on the earliest live entry, consuming
  /// tombstones, advancing the wheel over drained buckets, and
  /// re-anchoring at the overflow front when the wheel itself drains.
  /// Returns false when no live events remain.  After a true return the
  /// front entry is wheel_[cur_][cur_pos_].
  AMTLCE_DES_HOT_INLINE bool ensure_front() {
    for (;;) {
      if (wheel_entries_ > 0) {
        std::vector<Entry>& b = wheel_[cur_];
        while (cur_pos_ < b.size()) {
          if (entry_live(b[cur_pos_])) return true;
          ++cur_pos_;  // tombstone: consumed in place
          --wheel_entries_;
        }
        b.clear();
        cur_pos_ = 0;
        clear_occ(cur_);
        if (wheel_entries_ > 0) {
          advance();
          continue;
        }
      }
      if (!stage_.empty()) {
        flush_stage();  // may feed the wheel or the heap; re-examine both
        continue;
      }
      if (overflow_.empty()) return false;
      if (!entry_live(overflow_.front())) {
        overflow_pop_front();
        continue;
      }
      re_anchor(overflow_.front().time);
    }
  }

  /// Sweeps tombstones when dead entries exceed half of all pending
  /// entries (live < dead).  Called from schedule/cancel/pop/reschedule
  /// alike, so the entry-count bound holds for every operation mix and
  /// each O(entries) sweep amortizes to O(1) per operation.  The
  /// threshold check is inline (hot path); the sweep itself is out of
  /// line.
  AMTLCE_DES_HOT_INLINE void maybe_compact() {
    const std::size_t n = wheel_entries_ + overflow_.size() + stage_.size();
    if (n < kCompactMinEntries || n <= 2 * live_count_) return;
    compact();
  }
  void compact();

  /// Physically removes a live slot's queue entry when it is cheap to
  /// find — the tail of the stage or of its wheel bucket — so a
  /// schedule-soon-cancelled event leaves no tombstone at all.  Falls
  /// back to the tombstone protocol otherwise.  Keys embed a globally
  /// unique seq, so a tail key match proves identity, and a live entry
  /// can never sit inside the current bucket's consumed prefix.  Tier
  /// dispatch is exact: at rest every far-tier entry has
  /// time >= wheel_end_ (spill/flush run on every window move) and every
  /// wheel entry sits in bucket_of(its time), which depends on the time
  /// alone.
  AMTLCE_DES_HOT_INLINE void remove_or_tombstone(const Slot& s) {
    if (s.time >= wheel_end_) {
      if (!stage_.empty() && stage_.back().key == s.heap_key) {
        stage_.pop_back();
      }
      return;
    }
    std::vector<Entry>& b = wheel_[bucket_of(s.time)];
    if (!b.empty() && b.back().key == s.heap_key) {
      b.pop_back();
      --wheel_entries_;
    }
  }

  // Cold wheel maintenance (out of line; see event_queue.cpp).
  void advance();
  void re_anchor(Time t0);
  void spill_overflow();
  void flush_stage();
  void begin_bucket();
  std::uint32_t next_occupied() const;

  // ---- Overflow tier: 4-ary min-heap on (time, seq).  Far-future
  // entries only (RTO timers, phase barriers), so it stays small; 4-ary
  // halves the depth of a binary heap and sibling entries share cache
  // lines.
  static constexpr std::size_t kHeapArity = 4;
  static constexpr std::size_t kCompactMinEntries = 64;

  AMTLCE_DES_HOT_INLINE void sift_up(std::size_t i) {
    const Entry e = overflow_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / kHeapArity;
      if (!(overflow_[parent] > e)) break;
      overflow_[i] = overflow_[parent];
      i = parent;
    }
    overflow_[i] = e;
  }

  AMTLCE_DES_HOT_INLINE void sift_down(std::size_t i) {
    const Entry e = overflow_[i];
    const std::size_t n = overflow_.size();
    for (;;) {
      const std::size_t first = kHeapArity * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      if (first + kHeapArity <= n) {
        // Full node — constant trip count, which the compiler unrolls.
        for (std::size_t c = first + 1; c < first + kHeapArity; ++c) {
          if (overflow_[best] > overflow_[c]) best = c;
        }
      } else {
        for (std::size_t c = first + 1; c < n; ++c) {
          if (overflow_[best] > overflow_[c]) best = c;
        }
      }
      if (!(e > overflow_[best])) break;
      overflow_[i] = overflow_[best];
      i = best;
    }
    overflow_[i] = e;
  }

  AMTLCE_DES_HOT_INLINE void overflow_push(const Entry& e) {
    overflow_.push_back(e);
    sift_up(overflow_.size() - 1);
  }

  AMTLCE_DES_HOT_INLINE void overflow_pop_front() {
    overflow_.front() = overflow_.back();
    overflow_.pop_back();
    if (!overflow_.empty()) sift_down(0);
  }

  void overflow_rebuild();

  // ---- Calendar state -------------------------------------------------
  std::vector<std::vector<Entry>> wheel_;  ///< kWheelSize buckets; lazy
  std::uint64_t occ_[kOccWords] = {};      ///< bucket-nonempty bitmap
  std::uint32_t cur_ = 0;       ///< current bucket index
  std::size_t cur_pos_ = 0;     ///< cursor into wheel_[cur_] (consumed prefix)
  Time wheel_base_ = 0;         ///< current bucket's window start (aligned)
  Time cur_end_ = kBucketWidth;    ///< wheel_base_ + kBucketWidth, saturated
  Time wheel_end_ = kWheelSpan;    ///< wheel_base_ + kWheelSpan, saturated
  std::size_t wheel_entries_ = 0;  ///< unconsumed entries across buckets

  std::vector<Entry> overflow_;  ///< far-future tier, 4-ary min-heap
  std::vector<Entry> stage_;     ///< far-future arrivals not yet heapified
  std::vector<Slot> slots_;      ///< the slab; EventIds index into it
  std::uint32_t free_head_ = kNoFree;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
};

template <typename F>
EventId EventQueue::schedule(Time t, F&& fn) {
  // No overflow guard on the 40-bit seq: at simulator rates (~1e8
  // events/sec) it would take >3 wall-clock hours to exhaust, orders of
  // magnitude past any run here, and the check would tax every schedule.
  return schedule_seq(t, next_seq_++, std::forward<F>(fn));
}

template <typename F>
EventId EventQueue::schedule_seq(Time t, std::uint64_t seq, F&& fn) {
  std::uint32_t idx;
  if (free_head_ != kNoFree) {
    idx = free_head_;
    free_head_ = slots_[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    assert(idx <= kSlotMask && "slot index exceeds Entry packing");
  }
  Slot& s = slots_[idx];
  s.fn = std::forward<F>(fn);  // constructed in place for raw callables
  s.time = t;
  const std::uint64_t key = (seq << kSlotBits) | idx;
  s.heap_key = key;
  s.live = true;
  insert_entry(t, key);
  ++live_count_;
  maybe_compact();
  return make_id(idx, s.gen);
}

inline bool EventQueue::cancel(EventId id) {
  Slot* const s = live_slot(id);
  if (s == nullptr) return false;
  remove_or_tombstone(*s);  // physical removal when cheap, else tombstone
  release(slot_of(id));
  --live_count_;
  maybe_compact();
  return true;
}

inline bool EventQueue::reschedule(EventId id, Time t) {
  return reschedule_seq(id, t, next_seq_++);
}

inline bool EventQueue::reschedule_seq(EventId id, Time t,
                                       std::uint64_t seq) {
  Slot* const s = live_slot(id);
  if (s == nullptr) return false;
  // The old entry is removed in place when cheap, else goes stale (key
  // mismatch); a fresh one is inserted.  The event takes a new FIFO
  // position, exactly as cancel + schedule would.
  remove_or_tombstone(*s);
  s->time = t;
  const std::uint64_t key = (seq << kSlotBits) | slot_of(id);
  s->heap_key = key;
  insert_entry(t, key);
  maybe_compact();
  return true;
}

inline Time EventQueue::next_time() {
  if (!ensure_front()) return kTimeNever;
  return wheel_[cur_][cur_pos_].time;
}

inline EventQueue::Fired EventQueue::pop() {
  const bool has = ensure_front();
  assert(has && "pop() on empty EventQueue");
  (void)has;
  const Entry e = wheel_[cur_][cur_pos_];
  ++cur_pos_;
  --wheel_entries_;
  const auto idx = static_cast<std::uint32_t>(e.key & kSlotMask);
  Slot& s = slots_[idx];
  Fired fired{e.time, make_id(idx, s.gen), std::move(s.fn)};
  release(idx);
  --live_count_;
  maybe_compact();
  return fired;
}

}  // namespace des
