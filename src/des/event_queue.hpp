// Cancellable time-ordered event queue.
//
// Events with equal timestamps fire in insertion order (FIFO), which the
// rest of the simulator relies on for determinism.  Cancellation is O(1)
// via tombstoning: cancelled entries stay in the heap and are skipped when
// popped.  This suits the network model, which reschedules in-flight
// transfer completions when link occupancy changes — but cancel-heavy
// workloads would grow the heap without bound, so the queue compacts
// (sweeps tombstones and re-heapifies) whenever dead entries outnumber
// live ones.  Compaction preserves the (time, seq) total order exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "des/time.hpp"

namespace des {

/// Identifies a scheduled event; valid until the event fires or is cancelled.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` to fire at absolute time `t`.  `t` must not precede the
  /// last popped event time (enforced by Engine, not here).
  EventId schedule(Time t, Callback fn);

  /// Cancels a pending event.  Returns false if the id is unknown or the
  /// event already fired.
  bool cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  /// Heap entries including tombstones (for tests: compaction keeps this
  /// within a constant factor of size()).
  std::size_t heap_size() const { return heap_.size(); }

  /// Time of the earliest pending event, or kTimeNever when empty.
  Time next_time();

  /// Pops and returns the earliest pending event.  Precondition: !empty().
  struct Fired {
    Time time;
    EventId id;
    Callback fn;
  };
  Fired pop();

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    EventId id;
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  void drop_dead_front();
  void maybe_compact();

  std::vector<Entry> heap_;  // min-heap via std::greater
  std::unordered_map<EventId, Callback> callbacks_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace des
