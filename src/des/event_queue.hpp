// Cancellable time-ordered event queue — generation-tagged slot slab.
//
// Events with equal timestamps fire in insertion order (FIFO), which the
// rest of the simulator relies on for determinism.  Callbacks live inline
// in a slab of reusable slots (free-list recycled, generation-tagged so a
// stale EventId can never touch a reused slot), so the steady-state
// schedule/pop cycle performs zero heap allocations: no per-event
// unordered_map node, no std::function cell.
//
// Cancellation is O(1) amortized via tombstoning: a cancelled (or
// rescheduled) event's heap entry stays behind and is skipped when it
// surfaces.  Tombstones are swept — and the heap rebuilt, preserving the
// (time, seq) total order exactly — whenever dead entries outnumber live
// ones; the sweep is triggered from schedule(), cancel(), AND pop(), so
// any operation mix (not just cancel storms) keeps heap_size() within a
// constant factor of size().  Each O(heap) sweep removes >= heap/2 dead
// entries, each of which took at least one O(log n) operation to create,
// so the sweep cost amortizes to O(1) per operation.
//
// reschedule() moves a pending event to a new time in place: the callback
// stays in its slot, the old heap entry becomes a tombstone, and the event
// behaves exactly as if it had been cancelled and re-scheduled at the new
// time (fresh FIFO seq) — minus the callback teardown and slot churn.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "des/inplace_callback.hpp"
#include "des/time.hpp"

namespace des {

/// Identifies a scheduled event; valid until the event fires or is
/// cancelled.  Encodes (generation << 32 | slot + 1) so ids of fired or
/// cancelled events are never confused with the slot's next tenant.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  using Callback = InplaceCallback;

  /// Schedules `fn` to fire at absolute time `t`.  `t` must not precede the
  /// last popped event time (enforced by Engine, not here).  Accepts any
  /// void() callable and constructs it directly in the slab slot (no
  /// intermediate Callback hop).  Defined inline below: schedule/pop are
  /// the simulator's innermost loop and must inline into callers.
  template <typename F>
  AMTLCE_DES_HOT_INLINE EventId schedule(Time t, F&& fn);

  /// schedule() with an externally supplied FIFO sequence number.  Used by
  /// ShardedEventQueue to impose ONE global (time, seq) order across many
  /// per-shard queues: each shard stores its events under seqs drawn from
  /// the shared counter, so merging shard fronts by (time, seq) reproduces
  /// exactly the order a single monolithic queue would produce.  `seq`
  /// values must be strictly increasing across calls (including plain
  /// schedule()/reschedule(), which advance the same internal counter when
  /// used standalone) and must stay below 2^40.
  template <typename F>
  AMTLCE_DES_HOT_INLINE EventId schedule_seq(Time t, std::uint64_t seq,
                                             F&& fn);

  /// Cancels a pending event.  Returns false if the id is unknown or the
  /// event already fired.
  AMTLCE_DES_HOT_INLINE bool cancel(EventId id);

  /// Moves a pending event to absolute time `t`, keeping its callback.
  /// Equivalent to cancel + schedule of the same callback (the event gets
  /// a fresh FIFO position among equal timestamps) without the slot and
  /// callback churn.  Returns false if the id is unknown or already fired.
  AMTLCE_DES_HOT_INLINE bool reschedule(EventId id, Time t);

  /// reschedule() with an externally supplied FIFO sequence number (see
  /// schedule_seq); the moved event re-queues as if freshly scheduled
  /// under `seq`.
  AMTLCE_DES_HOT_INLINE bool reschedule_seq(EventId id, Time t,
                                            std::uint64_t seq);

  /// Cancels every pending event at once (fail-stop node crash: the
  /// node's whole shard dies).  All outstanding EventIds go stale and
  /// callbacks are destroyed without firing.  Returns the number of
  /// events cancelled.  Cold path: O(slab), not amortized.
  std::size_t cancel_all();

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  /// Heap entries including tombstones (for tests: compaction keeps this
  /// within a constant factor of size()).
  std::size_t heap_size() const { return heap_.size(); }

  /// Slots in the slab, live or free (for tests: bounded by peak live
  /// events, not by total events ever scheduled).
  std::size_t slab_size() const { return slots_.size(); }

  /// Time of the earliest pending event, or kTimeNever when empty.
  AMTLCE_DES_HOT_INLINE Time next_time();

  /// The front event's (time, seq) after dropping tombstones.  Returns
  /// false when the queue is empty.  The seq is the FIFO sequence the
  /// event was scheduled under (external when schedule_seq was used), so
  /// ShardedEventQueue can compare fronts across shards exactly.
  AMTLCE_DES_HOT_INLINE bool peek_front(Time& t, std::uint64_t& seq) {
    drop_dead_front();
    if (heap_.empty()) return false;
    t = heap_.front().time;
    seq = heap_.front().key >> kSlotBits;
    return true;
  }

  /// Pops and returns the earliest pending event.  Precondition: !empty().
  struct Fired {
    Time time;
    EventId id;
    Callback fn;
  };
  AMTLCE_DES_HOT_INLINE Fired pop();

 private:
  static constexpr std::uint32_t kNoFree = 0xFFFFFFFFu;

  struct Slot {
    Callback fn;
    Time time = 0;            ///< currently scheduled fire time
    std::uint64_t heap_key = 0;  ///< key of the slot's live heap entry
    std::uint32_t gen = 0;    ///< bumped on release; part of the EventId
    std::uint32_t next_free = kNoFree;
    bool live = false;
  };

  /// Heap entries are 16 bytes so a full 4-ary node (4 children) spans a
  /// single cache line.  `key` packs the FIFO sequence number into the
  /// high 40 bits and the slot index into the low 24: comparing keys
  /// orders by seq (seq is globally unique, so the slot bits never
  /// decide), and the seq doubles as the liveness token — a heap entry is
  /// live iff its key still equals its slot's heap_key.  Limits: 2^24
  /// (16.7M) concurrent events, 2^40 (1.1e12) schedules per queue
  /// lifetime; both are orders of magnitude beyond any simulation here
  /// (the slot limit is asserted on slab growth, a cold path).
  static constexpr std::uint64_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;

  struct Entry {
    Time time;
    std::uint64_t key;  // seq << kSlotBits | slot
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return key > o.key;  // high bits are the FIFO seq
    }
  };
  static_assert(sizeof(Entry) == 16, "4 children must fit one cache line");

  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id & 0xFFFFFFFFu) - 1;
  }
  static std::uint32_t gen_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) |
           (static_cast<EventId>(slot) + 1);
  }

  /// The slot behind `id`, or null when the id is invalid, stale, or the
  /// event already fired / was cancelled.
  AMTLCE_DES_HOT_INLINE Slot* live_slot(EventId id) {
    const auto low = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
    if (low == 0 || low > slots_.size()) return nullptr;
    Slot& s = slots_[low - 1];
    if (!s.live || s.gen != gen_of(id)) return nullptr;
    return &s;
  }

  /// True when a heap entry still represents its slot's scheduled state
  /// (not a cancel/reschedule tombstone).  The key's seq bits are unique
  /// per schedule/reschedule, so key equality alone proves the entry is
  /// the slot's current tenant.
  AMTLCE_DES_HOT_INLINE bool entry_live(const Entry& e) const {
    const Slot& s = slots_[e.key & kSlotMask];
    return s.live && s.heap_key == e.key;
  }

  /// Returns a slot to the free list (callback destroyed, generation
  /// bumped so outstanding ids to it go stale).
  AMTLCE_DES_HOT_INLINE void release(std::uint32_t idx) {
    Slot& s = slots_[idx];
    s.fn.reset();
    s.live = false;
    ++s.gen;  // outstanding ids to this slot are now stale
    s.next_free = free_head_;
    free_head_ = idx;
  }

  AMTLCE_DES_HOT_INLINE void drop_dead_front() {
    while (!heap_.empty() && !entry_live(heap_.front())) {
      heap_pop_front();
    }
  }

  /// Sweeps tombstones when dead entries exceed half the heap (live <
  /// dead).  Called from schedule/cancel/pop/reschedule alike, so the
  /// heap-size bound holds for every operation mix and each O(heap) sweep
  /// amortizes to O(1) per operation.  The threshold check is inline (hot
  /// path); the sweep itself is out of line.
  AMTLCE_DES_HOT_INLINE void maybe_compact() {
    if (heap_.size() < kCompactMinHeap || heap_.size() <= 2 * live_count_) {
      return;
    }
    compact();
  }
  void compact();

  // 4-ary min-heap on (time, seq): half the depth of a binary heap and
  // sibling entries share cache lines, which matters on the pop-heavy DES
  // loop.  Arity changes nothing about pop order.
  static constexpr std::size_t kHeapArity = 4;
  static constexpr std::size_t kCompactMinHeap = 64;

  AMTLCE_DES_HOT_INLINE void sift_up(std::size_t i) {
    const Entry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / kHeapArity;
      if (!(heap_[parent] > e)) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  AMTLCE_DES_HOT_INLINE void sift_down(std::size_t i) {
    const Entry e = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = kHeapArity * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      if (first + kHeapArity <= n) {
        // Full node — constant trip count, which the compiler unrolls.
        for (std::size_t c = first + 1; c < first + kHeapArity; ++c) {
          if (heap_[best] > heap_[c]) best = c;
        }
      } else {
        for (std::size_t c = first + 1; c < n; ++c) {
          if (heap_[best] > heap_[c]) best = c;
        }
      }
      if (!(e > heap_[best])) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  AMTLCE_DES_HOT_INLINE void heap_push(const Entry& e) {
    heap_.push_back(e);
    sift_up(heap_.size() - 1);
  }

  AMTLCE_DES_HOT_INLINE void heap_pop_front() {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }

  void heap_rebuild();

  std::vector<Entry> heap_;  // 4-ary min-heap, see kHeapArity
  std::vector<Slot> slots_;  // the slab; EventIds index into it
  std::uint32_t free_head_ = kNoFree;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
};

template <typename F>
EventId EventQueue::schedule(Time t, F&& fn) {
  // No overflow guard on the 40-bit seq: at simulator rates (~3e7
  // events/sec) it would take >10 wall-clock hours to exhaust, orders of
  // magnitude past any run here, and the check would tax every schedule.
  return schedule_seq(t, next_seq_++, std::forward<F>(fn));
}

template <typename F>
EventId EventQueue::schedule_seq(Time t, std::uint64_t seq, F&& fn) {
  std::uint32_t idx;
  if (free_head_ != kNoFree) {
    idx = free_head_;
    free_head_ = slots_[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    assert(idx <= kSlotMask && "slot index exceeds Entry packing");
  }
  Slot& s = slots_[idx];
  s.fn = std::forward<F>(fn);  // constructed in place for raw callables
  s.time = t;
  const std::uint64_t key = (seq << kSlotBits) | idx;
  s.heap_key = key;
  s.live = true;
  heap_push(Entry{t, key});
  ++live_count_;
  maybe_compact();
  return make_id(idx, s.gen);
}

inline bool EventQueue::cancel(EventId id) {
  Slot* const s = live_slot(id);
  if (s == nullptr) return false;
  release(slot_of(id));  // the heap entry becomes a tombstone
  --live_count_;
  maybe_compact();
  return true;
}

inline bool EventQueue::reschedule(EventId id, Time t) {
  return reschedule_seq(id, t, next_seq_++);
}

inline bool EventQueue::reschedule_seq(EventId id, Time t,
                                       std::uint64_t seq) {
  Slot* const s = live_slot(id);
  if (s == nullptr) return false;
  // The old heap entry goes stale (key mismatch); push a fresh one.  The
  // event takes a new FIFO position, exactly as cancel + schedule would.
  s->time = t;
  const std::uint64_t key = (seq << kSlotBits) | slot_of(id);
  s->heap_key = key;
  heap_push(Entry{t, key});
  maybe_compact();
  return true;
}

inline Time EventQueue::next_time() {
  drop_dead_front();
  return heap_.empty() ? kTimeNever : heap_.front().time;
}

inline EventQueue::Fired EventQueue::pop() {
  drop_dead_front();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  const Entry e = heap_.front();
  heap_pop_front();
  const auto idx = static_cast<std::uint32_t>(e.key & kSlotMask);
  Slot& s = slots_[idx];
  Fired fired{e.time, make_id(idx, s.gen), std::move(s.fn)};
  release(idx);
  --live_count_;
  maybe_compact();
  return fired;
}

}  // namespace des
