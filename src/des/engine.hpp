// The discrete-event simulation engine.
//
// One Engine instance owns simulated time for an entire simulated cluster.
// All components (NICs, simulated threads, runtimes) schedule callbacks on
// it; the engine fires them in (time, insertion) order.  The engine is
// strictly single-(OS-)threaded: determinism comes from the total event
// order, and "parallelism" is modeled, not real.
//
// Events live in a ShardedEventQueue: callers that know which simulated
// node an event belongs to place it on that node's shard via
// schedule_on(), keeping per-node state in per-node slabs; callers that
// don't (timers, runtime bookkeeping) use the EventId-based API, which is
// shard 0.  Because all shards share one FIFO counter, the merged firing
// order is bit-identical to the former monolithic queue regardless of how
// events are spread across shards.
#pragma once

#include <cassert>
#include <functional>
#include <utility>

#include "des/sharded_queue.hpp"
#include "des/time.hpp"

namespace des {

class TraceSink;

/// Periodic simulated-time observation hook (see Engine::set_sampler).
///
/// The engine never schedules sampler work as events: doing so would
/// consume global sequence numbers (perturbing the total event order every
/// determinism pin relies on) and a self-rescheduling periodic event would
/// keep run() from ever draining.  Instead the engine compares each popped
/// event's timestamp against the sampler's next due time — one integer
/// compare per step when sampling is armed, and the same one compare
/// against kTimeNever when it is not.
class Sampler {
 public:
  virtual ~Sampler() = default;

  /// The next event to fire carries timestamp `now` >= the previously
  /// returned due time.  The implementation records samples for every due
  /// boundary <= `now` (the observable state is exactly "all events
  /// strictly before the boundary have fired") and returns the next due
  /// time, or kTimeNever to stop sampling.
  virtual Time on_sample(Time now) = 0;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now()).  Accepts any
  /// void() callable, forwarded straight into the queue's slab slot; small
  /// captures stay heap-free (des::InplaceCallback).
  template <typename F>
  EventId schedule_at(Time t, F&& fn) {
    return queue_.schedule(0, guard_time(t), std::forward<F>(fn)).ev;
  }

  /// Schedules `fn` after `d` nanoseconds of simulated time.
  template <typename F>
  EventId schedule_after(Duration d, F&& fn) {
    assert(d >= 0);
    return schedule_at(now_ + d, std::forward<F>(fn));
  }

  /// Schedules `fn` at absolute time `t` on `shard` (one shard per
  /// simulated node by convention).  Sharding changes WHERE the event's
  /// slot lives, never WHEN it fires relative to other events.
  template <typename F>
  ShardedEventQueue::Id schedule_on(std::uint32_t shard, Time t, F&& fn) {
    return queue_.schedule(shard, guard_time(t), std::forward<F>(fn));
  }

  /// Cancels a pending event; returns false if already fired/cancelled.
  bool cancel(EventId id) { return queue_.cancel({0, id}); }
  bool cancel(ShardedEventQueue::Id id) { return queue_.cancel(id); }

  /// Moves a pending event to absolute time `t` (>= now()), keeping its
  /// callback — cancel + schedule without the churn.  Returns false if the
  /// event already fired or was cancelled.
  bool reschedule(EventId id, Time t) {
    return queue_.reschedule({0, id}, guard_time(t));
  }
  bool reschedule(ShardedEventQueue::Id id, Time t) {
    return queue_.reschedule(id, guard_time(t));
  }

  /// Cancels every pending event on `shard` (fail-stop node crash).
  /// Returns the number of events cancelled.
  std::size_t cancel_shard(std::uint32_t shard) {
    return queue_.cancel_shard(shard);
  }

  /// Fires the next event.  Returns false when no events remain.
  bool step() {
    if (queue_.empty()) return false;
    auto fired = queue_.pop();
    assert(fired.time >= now_);
    // Sampling happens between events: the popped event has not run yet,
    // so a sample at boundary t <= fired.time observes the state left by
    // every event that fired strictly before t.  Event order is untouched.
    if (fired.time >= sample_due_) {
      sample_due_ = sampler_->on_sample(fired.time);
    }
    now_ = fired.time;
    ++events_fired_;
    fired.fn();
    return true;
  }

  /// Fires the next event and every subsequent event carrying the SAME
  /// timestamp, in one call.  Simulated workloads are bursty — a message
  /// delivery fans out into several zero-delay follow-ups — and batching
  /// the burst amortizes the per-event front probe across the run.
  /// Semantics are identical to calling step() in a loop: events the
  /// batch schedules at the current time still join it (the front is
  /// re-probed after every callback), cancellations of same-time events
  /// are honored (each event is popped only when it is next to fire),
  /// and the sampler sees the same per-event boundary checks.  Returns
  /// the number of events fired — 0 when the queue was empty.
  std::size_t step_batch() {
    if (queue_.empty()) return 0;
    auto fired = queue_.pop();
    assert(fired.time >= now_);
    if (fired.time >= sample_due_) {
      sample_due_ = sampler_->on_sample(fired.time);
    }
    const Time t = fired.time;
    now_ = t;
    ++events_fired_;
    std::size_t n = 1;
    fired.fn();
    while (!queue_.empty() && queue_.next_time() == t) {
      auto next = queue_.pop();
      if (t >= sample_due_) sample_due_ = sampler_->on_sample(t);
      ++events_fired_;
      ++n;
      next.fn();
    }
    return n;
  }

  /// Runs until the event queue drains.
  void run() {
    while (step_batch() != 0) {
    }
  }

  /// Runs until the queue drains or simulated time would exceed `deadline`.
  /// Events at exactly `deadline` still fire.
  void run_until(Time deadline) {
    while (!queue_.empty() && queue_.next_time() <= deadline) {
      step_batch();
    }
    if (now_ < deadline) now_ = deadline;
  }

  /// Runs until `done` returns true (checked after each event) or the queue
  /// drains.  Returns whether `done` was satisfied.
  bool run_while_pending(const std::function<bool()>& done) {
    while (!done()) {
      if (!step()) return false;
    }
    return true;
  }

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t events_fired() const { return events_fired_; }
  std::size_t num_shards() const { return queue_.num_shards(); }

  /// Past-time schedule/reschedule requests clamped to now() (only
  /// possible in builds with NDEBUG — see guard_time).  Nonzero means a
  /// caller holds a latent bug that debug builds would have asserted on.
  std::uint64_t past_schedules_clamped() const { return past_clamped_; }

  /// Pending events on one shard (shard_of(node) for per-node depth
  /// probes; shard 0 carries global timers).
  std::size_t shard_pending(std::uint32_t shard) const {
    return queue_.shard_size(shard);
  }

  /// Arms (or, with null, disarms) the periodic sampler.  `first_due` is
  /// the first boundary worth observing; the sampler must outlive every
  /// subsequent step().  Sampling never perturbs event order — see
  /// Sampler.
  void set_sampler(Sampler* s, Time first_due = 0) {
    sampler_ = s;
    sample_due_ = s == nullptr ? kTimeNever : first_due;
  }
  Sampler* sampler() const { return sampler_; }

  /// Conservative lookahead bound for `shard` (see ShardedEventQueue).
  Time safe_horizon(std::uint32_t shard, Duration lookahead) {
    return queue_.safe_horizon(shard, lookahead);
  }

  /// Installs (or, with null, removes) the trace sink.  The sink must
  /// outlive every event that may emit into it.
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }

  /// The installed trace sink, or null when tracing is off.  Producers
  /// must check for null before building event names.
  TraceSink* trace_sink() const { return trace_; }

 private:
  /// Validates a requested fire time against now().  This project builds
  /// with assertions enabled even in Release (CMakeLists strips
  /// -DNDEBUG), so the normal outcome of a past-time request is a loud
  /// assert.  If someone compiles with NDEBUG anyway, the guard FAILS
  /// CLOSED instead of vanishing: the request is clamped to now() and
  /// counted, so the event fires immediately after the current one —
  /// deterministic and order-preserving — rather than corrupting the
  /// queue's time order (the queue itself assumes monotone pops).
  /// Clamp-with-counter was chosen over a hard error because the engine
  /// is exception-free on the hot path and callers never check schedule
  /// results; see past_schedules_clamped() for detection.
  Time guard_time(Time t) {
    assert(t >= now_ && "cannot schedule into the past");
    if (t < now_) {
      ++past_clamped_;
      return now_;
    }
    return t;
  }

  ShardedEventQueue queue_;
  Time now_ = 0;
  std::uint64_t events_fired_ = 0;
  std::uint64_t past_clamped_ = 0;
  TraceSink* trace_ = nullptr;
  Sampler* sampler_ = nullptr;
  Time sample_due_ = kTimeNever;
};

}  // namespace des
