// SimThread: a serialized executor modeling one pinned OS thread.
//
// PaRSEC's communication thread, the LCI backend's progress thread, and
// worker threads are all SimThreads.  Work items run one at a time; each
// occupies the thread for a modeled duration, so a slow active-message
// callback delays everything queued behind it — the §4.3 bottleneck the
// paper describes emerges directly from this serialization.
//
// An item's function executes when its modeled duration elapses.  Code
// inside an item may call charge(extra) when the cost depends on what the
// item discovered (e.g. per-message matching cost); the extra time delays
// subsequent items and counts toward busy-time statistics.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>

#include "des/engine.hpp"
#include "des/time.hpp"

namespace des {

class SimThread {
 public:
  SimThread(Engine& engine, std::string name)
      : eng_(engine), name_(std::move(name)), created_at_(engine.now()) {}
  SimThread(const SimThread&) = delete;
  SimThread& operator=(const SimThread&) = delete;

  Engine& engine() { return eng_; }
  const std::string& name() const { return name_; }

  /// Enqueues a work item that occupies this thread for `cost` and then
  /// executes `fn`.  Items run in FIFO order.
  void post_work(Duration cost, std::function<void()> fn) {
    assert(cost >= 0);
    queue_.push_back(Item{cost, std::move(fn)});
    pump();
  }

  /// Enqueues a zero-cost item (bookkeeping that is modeled as free).
  void post(std::function<void()> fn) { post_work(0, std::move(fn)); }

  /// From inside a running item: occupies the thread for `extra` more time
  /// before the next item may start.
  void charge(Duration extra) {
    assert(in_item_ && "charge() outside of a work item");
    assert(extra >= 0);
    extra_charge_ += extra;
  }

  /// The SimThread whose work item is currently executing, or nullptr when
  /// the engine is running a non-thread event (NIC delivery, test driver).
  /// Libraries use this to charge per-call CPU costs to their caller.
  static SimThread* current() { return current_; }

  /// True while a work item body is executing (or scheduled to finish later
  /// than now) — i.e. the modeled thread is occupied.
  bool busy() const { return in_item_ || dispatch_pending_ || !queue_.empty(); }

  /// Earliest time a newly posted item could start executing.
  Time free_at() const { return free_at_; }

  std::size_t queued_items() const { return queue_.size(); }

  /// Total modeled time this thread spent executing items.
  Duration busy_time() const { return busy_total_; }

  /// Fraction of lifetime spent busy; 0 if no time has elapsed.
  double utilization() const {
    const Duration alive = eng_.now() - created_at_;
    if (alive <= 0) return 0.0;
    return static_cast<double>(busy_total_) / static_cast<double>(alive);
  }

 private:
  struct Item {
    Duration cost;
    std::function<void()> fn;
  };

  void pump() {
    if (dispatch_pending_ || in_item_ || queue_.empty()) return;
    dispatch_pending_ = true;
    Item item = std::move(queue_.front());
    queue_.pop_front();
    const Time start = std::max(eng_.now(), free_at_);
    eng_.schedule_at(start + item.cost,
                     [this, cost = item.cost, fn = std::move(item.fn)]() {
                       dispatch_pending_ = false;
                       in_item_ = true;
                       extra_charge_ = 0;
                       SimThread* const prev = current_;
                       current_ = this;
                       fn();
                       current_ = prev;
                       in_item_ = false;
                       free_at_ = eng_.now() + extra_charge_;
                       busy_total_ += cost + extra_charge_;
                       pump();
                     });
  }

  Engine& eng_;
  std::string name_;
  std::deque<Item> queue_;
  Time free_at_ = 0;
  Time created_at_ = 0;
  Duration busy_total_ = 0;
  Duration extra_charge_ = 0;
  bool in_item_ = false;
  bool dispatch_pending_ = false;

  inline static SimThread* current_ = nullptr;
};

/// Charges `cost` to the currently executing SimThread, if any.  Calls made
/// from outside any simulated thread (tests, drivers) are free — convenient
/// and harmless since such callers model no CPU.
inline void charge_current(Duration cost) {
  if (SimThread* t = SimThread::current()) t->charge(cost);
}

}  // namespace des
