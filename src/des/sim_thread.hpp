// SimThread: a serialized executor modeling one pinned OS thread.
//
// PaRSEC's communication thread, the LCI backend's progress thread, and
// worker threads are all SimThreads.  Work items run one at a time; each
// occupies the thread for a modeled duration, so a slow active-message
// callback delays everything queued behind it — the §4.3 bottleneck the
// paper describes emerges directly from this serialization.
//
// An item's function executes when its modeled duration elapses.  Code
// inside an item may call charge(extra) when the cost depends on what the
// item discovered (e.g. per-message matching cost); the extra time delays
// subsequent items and counts toward busy-time statistics.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <utility>

#include "des/engine.hpp"
#include "des/time.hpp"
#include "des/trace_sink.hpp"

namespace des {

class SimThread {
 public:
  SimThread(Engine& engine, std::string name)
      : eng_(engine), name_(std::move(name)), created_at_(engine.now()) {}
  SimThread(const SimThread&) = delete;
  SimThread& operator=(const SimThread&) = delete;

  Engine& engine() { return eng_; }
  const std::string& name() const { return name_; }

  /// Enqueues a work item that occupies this thread for `cost` and then
  /// executes `fn`.  Items run in FIFO order.  `label` (a string with
  /// static lifetime) names the item's occupancy span when tracing is on.
  void post_work(Duration cost, EventQueue::Callback fn,
                 const char* label = nullptr) {
    assert(cost >= 0);
    queue_.push_back(Item{cost, std::move(fn), label});
    pump();
  }

  /// Enqueues a zero-cost item (bookkeeping that is modeled as free).
  void post(EventQueue::Callback fn) { post_work(0, std::move(fn)); }

  /// From inside a running item: occupies the thread for `extra` more time
  /// before the next item may start.
  void charge(Duration extra) {
    assert(in_item_ && "charge() outside of a work item");
    assert(extra >= 0);
    extra_charge_ += extra;
  }

  /// Extra time charged so far by the currently running item.  Tracing uses
  /// the deltas to lay out sub-spans (callbacks) within one work item.
  Duration pending_charge() const { return extra_charge_; }

  /// The SimThread whose work item is currently executing, or nullptr when
  /// the engine is running a non-thread event (NIC delivery, test driver).
  /// Libraries use this to charge per-call CPU costs to their caller.
  static SimThread* current() { return current_; }

  /// True while a work item body is executing (or scheduled to finish later
  /// than now) — i.e. the modeled thread is occupied.
  bool busy() const { return in_item_ || dispatch_pending_ || !queue_.empty(); }

  /// Earliest time a newly posted item could start executing.
  Time free_at() const { return free_at_; }

  std::size_t queued_items() const { return queue_.size(); }

  /// Total modeled time this thread spent executing items.
  Duration busy_time() const { return busy_total_; }

  /// Fraction of lifetime spent busy; 0 if no time has elapsed.
  double utilization() const {
    const Duration alive = eng_.now() - created_at_;
    if (alive <= 0) return 0.0;
    return static_cast<double>(busy_total_) / static_cast<double>(alive);
  }

 private:
  struct Item {
    Duration cost;
    EventQueue::Callback fn;
    const char* label = nullptr;
  };

  // Only one item is in flight per thread, so the dispatched item parks in
  // running_ and the scheduled closure captures just `this` — it always
  // fits InplaceCallback's inline storage, keeping the per-item event
  // allocation-free even when the item's own fn carries a large capture.
  void pump() {
    if (dispatch_pending_ || in_item_ || queue_.empty()) return;
    dispatch_pending_ = true;
    running_ = std::move(queue_.front());
    queue_.pop_front();
    running_start_ = std::max(eng_.now(), free_at_);
    eng_.schedule_at(running_start_ + running_.cost,
                     [this]() { run_item(); });
  }

  void run_item() {
    Item item = std::move(running_);  // fn may post work and re-pump
    dispatch_pending_ = false;
    in_item_ = true;
    extra_charge_ = 0;
    SimThread* const prev = current_;
    current_ = this;
    item.fn();
    current_ = prev;
    in_item_ = false;
    free_at_ = eng_.now() + extra_charge_;
    busy_total_ += item.cost + extra_charge_;
    if (TraceSink* sink = eng_.trace_sink()) {
      const Duration occupied = item.cost + extra_charge_;
      if (occupied > 0) {
        sink->span(name_, item.label ? item.label : "work", running_start_,
                   occupied);
      }
    }
    pump();
  }

  Engine& eng_;
  std::string name_;
  std::deque<Item> queue_;
  Item running_{};
  Time running_start_ = 0;
  Time free_at_ = 0;
  Time created_at_ = 0;
  Duration busy_total_ = 0;
  Duration extra_charge_ = 0;
  bool in_item_ = false;
  bool dispatch_pending_ = false;

  inline static SimThread* current_ = nullptr;
};

/// Charges `cost` to the currently executing SimThread, if any.  Calls made
/// from outside any simulated thread (tests, drivers) are free — convenient
/// and harmless since such callers model no CPU.
inline void charge_current(Duration cost) {
  if (SimThread* t = SimThread::current()) t->charge(cost);
}

/// Emits one end of a causal flow arrow at the current charged-local time
/// on the current SimThread's track ("events" outside any thread).  Sim
/// time does not advance inside a work item, so the timestamp is laid at
/// now() + charge-so-far — the same layout rule ChargeSpan uses — which
/// binds the arrow end to the sub-span being traced around it.  No-op when
/// no sink is installed.
inline void emit_flow(Engine& engine, std::string_view name,
                      std::uint64_t id, bool begin) {
  TraceSink* const sink = engine.trace_sink();
  if (sink == nullptr) return;
  SimThread* const t = SimThread::current();
  const Time ts = engine.now() + (t ? t->pending_charge() : 0);
  sink->flow(t ? t->name() : "events", name, ts, id, begin);
}

/// RAII trace span covering the simulated CPU time charged to the current
/// SimThread while it is alive.  Sim time does not advance inside a work
/// item, so the span is laid out at now() + charge-so-far: consecutive
/// ChargeSpans within one item render sequentially, nested inside the
/// item's occupancy span.  Construct only when engine.trace_sink() is
/// non-null (callers guard, so name formatting is never paid when off).
class ChargeSpan {
 public:
  ChargeSpan(Engine& engine, std::string name)
      : sink_(engine.trace_sink()), name_(std::move(name)) {
    assert(sink_ && "ChargeSpan requires an installed trace sink");
    thread_ = SimThread::current();
    charge0_ = thread_ ? thread_->pending_charge() : 0;
    start_ = engine.now() + charge0_;
  }
  ChargeSpan(const ChargeSpan&) = delete;
  ChargeSpan& operator=(const ChargeSpan&) = delete;
  ~ChargeSpan() {
    const Duration dur =
        (thread_ ? thread_->pending_charge() : 0) - charge0_;
    sink_->span(thread_ ? thread_->name() : "events", name_, start_,
                dur >= 0 ? dur : 0);
  }

 private:
  TraceSink* sink_;
  SimThread* thread_ = nullptr;
  std::string name_;
  Time start_ = 0;
  Duration charge0_ = 0;
};

}  // namespace des
