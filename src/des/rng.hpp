// Deterministic random-number generation for the simulator.
//
// xoshiro256** seeded via SplitMix64.  Every stochastic component takes an
// explicit seed so experiments are bit-reproducible; derive_seed() gives
// decorrelated per-component streams from one experiment seed.
#pragma once

#include <cstdint>

namespace des {

/// SplitMix64 step — used for seeding and for cheap seed derivation.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Derives a decorrelated child seed from (seed, stream-id).
constexpr std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t s = seed ^ (0xA0761D6478BD642FULL * (stream + 1));
  splitmix64(s);
  return splitmix64(s);
}

/// xoshiro256** 1.0 (Blackman & Vigna), public-domain algorithm.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n); n must be > 0.  Uses rejection to avoid
  /// modulo bias.
  std::uint64_t below(std::uint64_t n) {
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace des
