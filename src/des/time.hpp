// Simulated-time primitives for the discrete-event engine.
//
// All simulated timestamps and durations are integer nanoseconds.  Integer
// time gives exact comparisons and bit-reproducible runs; sub-nanosecond
// rounding error is far below every modeled cost (the cheapest modeled
// operation is a few nanoseconds).
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace des {

/// A point in simulated time, in nanoseconds since simulation start.
using Time = std::int64_t;

/// A span of simulated time, in nanoseconds.  May be zero but never negative
/// in a well-formed schedule.
using Duration = std::int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1000 * kNanosecond;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;

/// Sentinel meaning "never" / "not scheduled".
inline constexpr Time kTimeNever = std::numeric_limits<Time>::max();

/// Converts a duration in (possibly fractional) seconds to integer
/// nanoseconds, rounding half away from zero.
constexpr Duration from_seconds(double seconds) {
  const double ns = seconds * 1e9;
  return static_cast<Duration>(ns + (ns >= 0 ? 0.5 : -0.5));
}

/// Converts an integer-nanosecond time to floating-point seconds.
constexpr double to_seconds(Time t) { return static_cast<double>(t) * 1e-9; }

/// Duration of transferring `bytes` at `bytes_per_second`, rounded up so a
/// nonzero transfer never takes zero time.
constexpr Duration transfer_time(std::uint64_t bytes, double bytes_per_second) {
  if (bytes == 0 || bytes_per_second <= 0.0) return 0;
  const double ns = static_cast<double>(bytes) / bytes_per_second * 1e9;
  auto d = static_cast<Duration>(ns);
  if (static_cast<double>(d) < ns) ++d;
  return d > 0 ? d : 1;
}

/// Human-readable rendering, e.g. "12.345 ms", for logs and bench tables.
std::string format_time(Time t);

}  // namespace des
