// Minimal coroutine support over the DES engine.
//
// CoTask is a fire-and-forget coroutine used to express sequential
// simulated-time flows (benchmark drivers, test scenarios) without hand
// written state machines:
//
//   des::CoTask pingpong(des::Engine& eng) {
//     co_await des::delay(eng, 5 * des::kMicrosecond);
//     ...
//   }
//
// Coroutines start eagerly and self-destroy at completion.  Awaitables:
//   delay(engine, d)  — resume after d simulated nanoseconds
//   SimEvent          — one-shot broadcast event; co_await until trigger()
//   SimFuture<T>      — one-shot value; co_await yields the value
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>
#include <vector>

#include "des/engine.hpp"

namespace des {

/// Fire-and-forget coroutine handle.  The coroutine frame owns itself; the
/// returned object is an inert token (keeps call sites explicit).
struct CoTask {
  struct promise_type {
    CoTask get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

/// Awaitable that resumes the coroutine after `d` simulated nanoseconds.
struct DelayAwaiter {
  Engine& eng;
  Duration d;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    eng.schedule_after(d, [h]() { h.resume(); });
  }
  void await_resume() const noexcept {}
};

inline DelayAwaiter delay(Engine& eng, Duration d) { return {eng, d}; }

/// One-shot broadcast event.  Coroutines that co_await before trigger()
/// suspend; trigger() resumes them all (in await order, via the event queue
/// so resumption is not re-entrant).  Awaiting after trigger() is a no-op.
class SimEvent {
 public:
  explicit SimEvent(Engine& eng) : eng_(eng) {}

  void trigger() {
    if (triggered_) return;
    triggered_ = true;
    for (auto h : waiters_) {
      eng_.schedule_after(0, [h]() { h.resume(); });
    }
    waiters_.clear();
  }

  bool triggered() const { return triggered_; }

  /// Registers a coroutine to resume on trigger (resumes via the event
  /// queue immediately if already triggered).  Used by awaiters.
  void add_waiter(std::coroutine_handle<> h) {
    if (triggered_) {
      eng_.schedule_after(0, [h]() { h.resume(); });
    } else {
      waiters_.push_back(h);
    }
  }

  auto operator co_await() {
    struct Awaiter {
      SimEvent& ev;
      bool await_ready() const noexcept { return ev.triggered_; }
      void await_suspend(std::coroutine_handle<> h) {
        ev.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Engine& eng_;
  bool triggered_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// One-shot value channel: co_await yields the value once set_value() runs.
/// Single producer; multiple awaiting consumers each receive a copy.
template <typename T>
class SimFuture {
 public:
  explicit SimFuture(Engine& eng) : ev_(eng) {}

  void set_value(T v) {
    assert(!value_.has_value() && "SimFuture set twice");
    value_ = std::move(v);
    ev_.trigger();
  }

  bool ready() const { return value_.has_value(); }

  /// Value accessor once ready (for non-coroutine consumers).
  const T& get() const {
    assert(value_.has_value());
    return *value_;
  }

  auto operator co_await() {
    struct Awaiter {
      SimFuture& f;
      bool await_ready() const noexcept { return f.ready(); }
      void await_suspend(std::coroutine_handle<> h) {
        f.ev_.add_waiter(h);
      }
      T await_resume() const { return *f.value_; }
    };
    return Awaiter{*this};
  }

 private:
  SimEvent ev_;
  std::optional<T> value_;
};

}  // namespace des
