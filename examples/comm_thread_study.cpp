// Communication-thread study: demonstrates the §4.3 effect directly.
//
// A burst of puts lands on a node whose communication thread is busy
// running expensive active-message callbacks.  With the MPI backend,
// message matching only happens inside MPI calls on that same thread, so
// every transfer stalls behind the callbacks; the LCI backend's dedicated
// progress thread keeps transfers moving and only the callback dispatch
// queues.  The example prints put completion latency percentiles for all
// three configurations.
//
// Set AMTLCE_TRACE=<path> to dump a Chrome-trace JSON per case (suffixed
// .1/.2 for the second and third case); load it in chrome://tracing or
// https://ui.perfetto.dev to see the AM callbacks blocking the "comm-1"
// track while nic ingress spans complete long before their put callbacks
// fire on the MPI backend.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "ce/world.hpp"
#include "des/engine.hpp"
#include "des/poll_loop.hpp"
#include "des/sim_thread.hpp"
#include "net/fabric.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"

namespace {

obs::Histogram run_case(ce::BackendKind kind, bool progress_thread) {
  des::Engine eng;
  const auto tracer = obs::Tracer::attach_from_env(eng);
  net::Fabric fabric(eng, 2);
  ce::CeConfig ce_cfg;
  ce_cfg.progress_thread = progress_thread;
  ce_cfg.eager_put_max = 0;
  ce::CommWorld world(fabric, kind, ce_cfg);

  std::vector<std::unique_ptr<des::SimThread>> threads;
  std::vector<std::unique_ptr<des::PollLoop>> loops;
  for (int n = 0; n < 2; ++n) {
    threads.push_back(
        std::make_unique<des::SimThread>(eng, "comm-" + std::to_string(n)));
    auto& engine = world.engine(n);
    loops.push_back(std::make_unique<des::PollLoop>(
        *threads.back(), 50, [&engine]() { return engine.progress() > 0; }));
    engine.set_wake_callback([loop = loops.back().get()]() { loop->wake(); });
    loops.back()->start();
  }

  constexpr ce::Tag kBusy = 1, kDone = 2;
  // Node 1's AM callback is expensive (an ACTIVATE unpacking stand-in).
  world.engine(1).tag_reg(
      kBusy,
      [](ce::CommEngine&, ce::Tag, const void*, std::size_t, int, void*) {
        des::charge_current(80 * des::kMicrosecond);
      },
      nullptr, 64);
  world.engine(0).tag_reg(kBusy, [](auto&&...) {}, nullptr, 64);

  obs::Histogram latency;
  constexpr int kPuts = 32;
  std::vector<des::Time> start(kPuts);
  world.engine(1).tag_reg(
      kDone,
      [&](ce::CommEngine&, ce::Tag, const void* msg, std::size_t, int,
          void*) {
        int idx = 0;
        std::memcpy(&idx, msg, sizeof idx);
        latency.add(static_cast<double>(
            eng.now() - start[static_cast<std::size_t>(idx)]));
      },
      nullptr, 64);
  world.engine(0).tag_reg(kDone, [](auto&&...) {}, nullptr, 64);

  // Keep node 1's communication thread saturated with AMs...
  for (int i = 0; i < 64; ++i) world.engine(0).send_am(kBusy, 1, "b", 1);
  // ...while data transfers race it.
  const ce::MemReg lreg{0, nullptr, 1 << 20};
  const ce::MemReg rreg{1, nullptr, 1 << 20};
  for (int i = 0; i < kPuts; ++i) {
    start[static_cast<std::size_t>(i)] = eng.now();
    world.engine(0).put(lreg, 0, rreg, 0, 256 * 1024, 1, nullptr, nullptr,
                        kDone, &i, sizeof i);
  }
  for (auto& loop : loops) loop->wake();
  eng.run();
  for (auto& loop : loops) loop->stop();
  return latency;
}

void report(const char* name, const obs::Histogram& h) {
  std::printf("  %-27s: mean %8.1f  p50 %8.1f  p99 %8.1f  max %8.1f us\n",
              name, h.mean() / 1e3, h.p50() / 1e3, h.p99() / 1e3,
              h.max() / 1e3);
}

}  // namespace

int main() {
  std::printf("put latency under AM-callback load (32 x 256 KiB):\n");
  report("Open MPI backend", run_case(ce::BackendKind::Mpi, true));
  report("LCI backend", run_case(ce::BackendKind::Lci, true));
  report("LCI without progress thread", run_case(ce::BackendKind::Lci, false));
  std::printf(
      "\nThe dedicated progress thread decouples transfer progress from\n"
      "callback execution (paper SS5.3.1); the MPI backend serializes\n"
      "both on the communication thread (SS4.3).\n");
  return 0;
}
