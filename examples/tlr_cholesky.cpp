// TLR Cholesky with real numerics: factorizes a small st-2d-sqexp
// covariance matrix through the full distributed runtime (activates,
// fetches, puts, multicast) and verifies ||L L^T - A|| / ||A||.
//
// Usage: tlr_cholesky [nt] [nb] [nodes] [accuracy] [backend: lci|mpi]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_util/harness.hpp"
#include "hicma/driver.hpp"

int main(int argc, char** argv) {
  const int nt = argc > 1 ? std::atoi(argv[1]) : 6;
  const int nb = argc > 2 ? std::atoi(argv[2]) : 48;
  const int nodes = argc > 3 ? std::atoi(argv[3]) : 4;
  const double acc = argc > 4 ? std::atof(argv[4]) : 1e-9;
  const bool mpi = argc > 5 && std::strcmp(argv[5], "mpi") == 0;

  hicma::ExperimentConfig cfg;
  cfg.nodes = nodes;
  cfg.backend = mpi ? ce::BackendKind::Mpi : ce::BackendKind::Lci;
  cfg.tlr.mode = hicma::TlrOptions::Mode::Real;
  cfg.tlr.n = nt * nb;
  cfg.tlr.nb = nb;
  cfg.tlr.accuracy = acc;
  cfg.tlr.maxrank = nb;
  cfg.tlr.problem.length_scale = 0.2;
  cfg.tlr.problem.noise = 0.05;
  cfg.workers_override = 4;

  std::printf(
      "TLR Cholesky (real numerics): N=%d, tile=%d (%d x %d tiles), "
      "%d nodes, accuracy %.1e, backend %s\n",
      cfg.tlr.n, nb, nt, nt, nodes, acc,
      ce::backend_name(cfg.backend));

  const auto res = hicma::run_tlr_cholesky(cfg);

  std::printf("  tasks executed      : %llu\n",
              static_cast<unsigned long long>(res.tasks));
  std::printf("  mean off-diag rank  : %.2f\n", res.mean_rank);
  std::printf("  simulated TTS       : %.6f s\n", res.tts_s);
  std::printf("  comm latency (mean) : %.1f us end-to-end\n",
              res.latency.e2e_mean_ns() / 1e3);
  std::printf("  latency stages (us) :");
  for (int s = 0; s < amt::kE2eStages; ++s) {
    std::printf(" %s %.1f", amt::kStageNames[static_cast<std::size_t>(s)],
                res.runtime_stats.stages.h[static_cast<std::size_t>(s)]
                        .mean() / 1e3);
  }
  std::printf("\n  %s\n",
              bench::critical_path_line(res.runtime_stats.crit).c_str());
  bench::metrics_accumulator().merge(res.metrics);
  bench::export_metrics_env();
  std::printf("  residual ||LL^T-A||/||A|| = %.3e  -> %s\n", res.residual,
              res.residual < 1e-6 ? "PASS" : "FAIL");
  return res.residual < 1e-6 ? 0 : 1;
}
