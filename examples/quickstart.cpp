// Quickstart: the PaRSEC-style communication engine on a simulated
// 4-node cluster — register active messages, send one, and move bulk
// data with a put() that notifies both sides.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "ce/world.hpp"
#include "des/engine.hpp"
#include "des/poll_loop.hpp"
#include "des/sim_thread.hpp"
#include "net/fabric.hpp"

int main() {
  // 1. A simulated cluster: Expanse-like fabric (100 Gbit/s, ~1 us).
  des::Engine eng;
  net::Fabric fabric(eng, /*num_nodes=*/4);

  // 2. A communication engine per node.  Swap BackendKind::Lci for
  //    BackendKind::Mpi to compare the two designs from the paper.
  ce::CommWorld world(fabric, ce::BackendKind::Lci);

  // 3. Each node runs a communication thread polling progress(), exactly
  //    like the PaRSEC runtime does.
  std::vector<std::unique_ptr<des::SimThread>> threads;
  std::vector<std::unique_ptr<des::PollLoop>> loops;
  for (int n = 0; n < 4; ++n) {
    threads.push_back(
        std::make_unique<des::SimThread>(eng, "comm-" + std::to_string(n)));
    auto& engine = world.engine(n);
    loops.push_back(std::make_unique<des::PollLoop>(
        *threads.back(), 50, [&engine]() { return engine.progress() > 0; }));
    engine.set_wake_callback([loop = loops.back().get()]() { loop->wake(); });
    loops.back()->start();
  }

  // 4. Register active messages (the runtime registers ACTIVATE and
  //    GET DATA this way).
  constexpr ce::Tag kHello = 1, kDataDone = 2;
  for (int n = 0; n < 4; ++n) {
    world.engine(n).tag_reg(
        kHello,
        [](ce::CommEngine& engine, ce::Tag, const void* msg,
           std::size_t size, int src, void*) {
          std::printf("[%.3f us] node %d got AM from %d: \"%.*s\"\n",
                      0.0, engine.rank(), src, static_cast<int>(size),
                      static_cast<const char*>(msg));
        },
        nullptr, 128);
    world.engine(n).tag_reg(
        kDataDone,
        [](ce::CommEngine& engine, ce::Tag, const void* msg,
           std::size_t size, int src, void*) {
          std::printf("node %d: put from %d complete (%.*s)\n",
                      engine.rank(), src, static_cast<int>(size),
                      static_cast<const char*>(msg));
        },
        nullptr, 64);
  }

  // 5. Send an active message.
  const std::string hello = "hello from node 0";
  world.engine(0).send_am(kHello, 2, hello.data(), hello.size());

  // 6. One-sided put with completion on both ends.
  std::vector<char> src_buf(64 * 1024, 'x');
  std::vector<char> dst_buf(64 * 1024);
  const ce::MemReg lreg = world.engine(0).mem_reg(src_buf.data(),
                                                  src_buf.size());
  const ce::MemReg rreg{3, dst_buf.data(), dst_buf.size()};
  world.engine(0).put(
      lreg, 0, rreg, 0, src_buf.size(), /*remote=*/3,
      [](ce::CommEngine&, const ce::MemReg&, std::ptrdiff_t,
         const ce::MemReg&, std::ptrdiff_t, std::size_t size, int remote,
         void*) {
        std::printf("node 0: local completion, %zu bytes to node %d\n",
                    size, remote);
      },
      nullptr, kDataDone, "flow-A", 6);

  for (auto& loop : loops) loop->wake();
  eng.run();

  std::printf("data landed intact: %s\n",
              std::memcmp(src_buf.data(), dst_buf.data(), src_buf.size()) ==
                      0
                  ? "yes"
                  : "NO");
  std::printf("simulated time: %s\n", des::format_time(eng.now()).c_str());
  for (auto& loop : loops) loop->stop();
  return 0;
}
