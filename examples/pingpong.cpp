// Ping-pong demo: the paper's §6.2 task-based bandwidth benchmark at a
// single granularity, printed for both backends plus the raw-fabric
// ceiling.  A miniature version of bench/fig2a_pingpong_bw.
#include <cstdio>
#include <cstdlib>

#include "bench_util/harness.hpp"

int main(int argc, char** argv) {
  bench::PingPongOptions opts;
  opts.fragment_bytes = argc > 1
                            ? static_cast<std::size_t>(std::atoll(argv[1]))
                            : (128 << 10);
  opts.total_bytes = 64ull << 20;  // lighter than the paper's 256 MiB
  opts.iterations = 4;

  std::printf("task-based ping-pong, fragment %s, window %d\n",
              bench::human_bytes(opts.fragment_bytes).c_str(),
              opts.window());
  const auto lci = bench::run_pingpong(ce::BackendKind::Lci, opts);
  const auto mpi = bench::run_pingpong(ce::BackendKind::Mpi, opts);
  const double raw =
      bench::netpipe_gbit(opts.fragment_bytes, opts.total_bytes);
  std::printf("  LCI backend    : %7.1f Gbit/s  (%.3f s simulated)\n",
              lci.gbit_per_s, lci.tts_s);
  std::printf("  Open MPI       : %7.1f Gbit/s  (%.3f s simulated)\n",
              mpi.gbit_per_s, mpi.tts_s);
  std::printf("  NetPIPE ceiling: %7.1f Gbit/s\n", raw);
  return 0;
}
