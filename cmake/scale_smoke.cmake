# ctest script behind the "perf"-labeled fig5_scale_smoke test: runs the
# strong-scaling sweep in smoke mode and validates the emitted
# BENCH_scale.json against the schema EXPERIMENTS.md documents.  As with
# perf_smoke.cmake, wall-clock and time-to-solution values are checked
# for shape and sanity only — never against thresholds.  Invoked as:
#   cmake -DFIG5_SCALE=<binary> -DOUT_JSON=<path> -P scale_smoke.cmake
cmake_minimum_required(VERSION 3.19)  # string(JSON)

if(NOT DEFINED FIG5_SCALE OR NOT DEFINED OUT_JSON)
  message(FATAL_ERROR "usage: cmake -DFIG5_SCALE=... -DOUT_JSON=... -P scale_smoke.cmake")
endif()

execute_process(
  COMMAND "${FIG5_SCALE}" --smoke --out "${OUT_JSON}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fig5_scale --smoke failed (rc=${rc}):\n${run_out}\n${run_err}")
endif()

file(READ "${OUT_JSON}" doc)

string(JSON bench ERROR_VARIABLE err GET "${doc}" bench)
if(err OR NOT bench STREQUAL "fig5_scale")
  message(FATAL_ERROR "BENCH_scale.json: bad 'bench' field: ${bench} ${err}")
endif()
string(JSON schema ERROR_VARIABLE err GET "${doc}" schema_version)
if(err OR NOT schema EQUAL 1)
  message(FATAL_ERROR "BENCH_scale.json: bad 'schema_version': ${schema} ${err}")
endif()
string(JSON mode ERROR_VARIABLE err GET "${doc}" mode)
if(err OR NOT mode STREQUAL "smoke")
  message(FATAL_ERROR "BENCH_scale.json: bad 'mode': ${mode} ${err}")
endif()
foreach(field n nb)
  string(JSON v ERROR_VARIABLE err GET "${doc}" problem ${field})
  if(err OR NOT v GREATER 0)
    message(FATAL_ERROR "BENCH_scale.json: bad problem.${field}: ${v} ${err}")
  endif()
endforeach()
string(JSON max_nodes ERROR_VARIABLE err GET "${doc}" max_nodes)
if(err OR NOT max_nodes GREATER 0)
  message(FATAL_ERROR "BENCH_scale.json: bad 'max_nodes': ${max_nodes} ${err}")
endif()

# Every run row must carry the full column set with sane values, and the
# sweep must cover both backends and both fabric models — the whole point
# of the bench is those contrasts.
string(JSON nruns ERROR_VARIABLE err LENGTH "${doc}" runs)
if(err OR NOT nruns GREATER 0)
  message(FATAL_ERROR "BENCH_scale.json: empty or missing 'runs': ${err}")
endif()
set(seen_lci 0)
set(seen_mpi 0)
set(seen_flat 0)
set(seen_fat 0)
math(EXPR last "${nruns} - 1")
foreach(i RANGE ${last})
  foreach(field nodes tts_s msgs bytes wall_s)
    string(JSON v ERROR_VARIABLE err GET "${doc}" runs ${i} ${field})
    if(err)
      message(FATAL_ERROR "BENCH_scale.json: runs[${i}].${field} missing: ${err}")
    endif()
    if(NOT v GREATER 0)
      message(FATAL_ERROR "BENCH_scale.json: runs[${i}].${field} not positive: ${v}")
    endif()
  endforeach()
  foreach(field e2e_p50_ms e2e_p99_ms crit_ms utilization mt_activate congestion)
    string(JSON v ERROR_VARIABLE err GET "${doc}" runs ${i} ${field})
    if(err)
      message(FATAL_ERROR "BENCH_scale.json: runs[${i}].${field} missing: ${err}")
    endif()
    if(v LESS 0)
      message(FATAL_ERROR "BENCH_scale.json: runs[${i}].${field} negative: ${v}")
    endif()
  endforeach()
  string(JSON backend GET "${doc}" runs ${i} backend)
  if(backend STREQUAL "lci")
    set(seen_lci 1)
  elseif(backend STREQUAL "mpi")
    set(seen_mpi 1)
  else()
    message(FATAL_ERROR "BENCH_scale.json: runs[${i}].backend bad: ${backend}")
  endif()
  string(JSON congestion GET "${doc}" runs ${i} congestion)
  if(congestion EQUAL 0)
    set(seen_flat 1)
  else()
    set(seen_fat 1)
  endif()
endforeach()
if(NOT (seen_lci AND seen_mpi AND seen_flat AND seen_fat))
  message(FATAL_ERROR
    "BENCH_scale.json: sweep must cover both backends and both fabric "
    "models (lci=${seen_lci} mpi=${seen_mpi} flat=${seen_flat} fat=${seen_fat})")
endif()

message(STATUS "fig5_scale smoke OK: ${nruns} runs in ${OUT_JSON}")
