# ctest script behind the "perf"-labeled fig_recovery_smoke test: runs
# the crash-recovery sweep in smoke mode and validates the emitted
# BENCH_recovery.json against the schema EXPERIMENTS.md documents.  The
# bench itself exits non-zero if the tolerance-off baseline drifts from
# the pinned fig5 fingerprints or any sweep run fails to complete, so
# this script additionally requires the fingerprint_ok marker in the run
# output for both backends.  Invoked as:
#   cmake -DFIG_RECOVERY=<binary> -DOUT_JSON=<path> -P recovery_smoke.cmake
cmake_minimum_required(VERSION 3.19)  # string(JSON)

if(NOT DEFINED FIG_RECOVERY OR NOT DEFINED OUT_JSON)
  message(FATAL_ERROR "usage: cmake -DFIG_RECOVERY=... -DOUT_JSON=... -P recovery_smoke.cmake")
endif()

execute_process(
  COMMAND "${FIG_RECOVERY}" --smoke --out "${OUT_JSON}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fig_recovery --smoke failed (rc=${rc}):\n${run_out}\n${run_err}")
endif()
foreach(backend lci mpi)
  if(NOT run_out MATCHES "fingerprint_ok backend=${backend}")
    message(FATAL_ERROR
      "fig_recovery smoke: no fingerprint_ok marker for ${backend}:\n${run_out}")
  endif()
endforeach()

file(READ "${OUT_JSON}" doc)

string(JSON bench ERROR_VARIABLE err GET "${doc}" bench)
if(err OR NOT bench STREQUAL "fig_recovery")
  message(FATAL_ERROR "BENCH_recovery.json: bad 'bench' field: ${bench} ${err}")
endif()
string(JSON schema ERROR_VARIABLE err GET "${doc}" schema_version)
if(err OR NOT schema EQUAL 1)
  message(FATAL_ERROR "BENCH_recovery.json: bad 'schema_version': ${schema} ${err}")
endif()
string(JSON mode ERROR_VARIABLE err GET "${doc}" mode)
if(err OR NOT mode STREQUAL "smoke")
  message(FATAL_ERROR "BENCH_recovery.json: bad 'mode': ${mode} ${err}")
endif()
foreach(field n nb)
  string(JSON v ERROR_VARIABLE err GET "${doc}" problem ${field})
  if(err OR NOT v GREATER 0)
    message(FATAL_ERROR "BENCH_recovery.json: bad problem.${field}: ${v} ${err}")
  endif()
endforeach()

# Every run row must carry the full column set; the sweep must cover both
# backends, a tolerance-off baseline, and at least one crashed run that
# actually re-executed lost work.
string(JSON nruns ERROR_VARIABLE err LENGTH "${doc}" runs)
if(err OR NOT nruns GREATER 0)
  message(FATAL_ERROR "BENCH_recovery.json: empty or missing 'runs': ${err}")
endif()
set(seen_lci 0)
set(seen_mpi 0)
set(seen_baseline 0)
set(seen_recovery 0)
math(EXPR last "${nruns} - 1")
foreach(i RANGE ${last})
  foreach(field nodes tts_s msgs bytes ok)
    string(JSON v ERROR_VARIABLE err GET "${doc}" runs ${i} ${field})
    if(err)
      message(FATAL_ERROR "BENCH_recovery.json: runs[${i}].${field} missing: ${err}")
    endif()
    if(NOT v GREATER 0)
      message(FATAL_ERROR "BENCH_recovery.json: runs[${i}].${field} not positive: ${v}")
    endif()
  endforeach()
  foreach(field ft crashes overhead reexecuted reannounces deaths detect_p99_ms wall_s)
    string(JSON v ERROR_VARIABLE err GET "${doc}" runs ${i} ${field})
    if(err)
      message(FATAL_ERROR "BENCH_recovery.json: runs[${i}].${field} missing: ${err}")
    endif()
  endforeach()
  string(JSON backend GET "${doc}" runs ${i} backend)
  if(backend STREQUAL "lci")
    set(seen_lci 1)
  elseif(backend STREQUAL "mpi")
    set(seen_mpi 1)
  else()
    message(FATAL_ERROR "BENCH_recovery.json: runs[${i}].backend bad: ${backend}")
  endif()
  string(JSON ft GET "${doc}" runs ${i} ft)
  string(JSON crashes GET "${doc}" runs ${i} crashes)
  if(ft EQUAL 0 AND crashes EQUAL 0)
    set(seen_baseline 1)
  endif()
  if(crashes GREATER 0)
    string(JSON reexec GET "${doc}" runs ${i} reexecuted)
    string(JSON deaths GET "${doc}" runs ${i} deaths)
    if(reexec GREATER 0 AND deaths GREATER 0)
      set(seen_recovery 1)
    endif()
  endif()
endforeach()
if(NOT (seen_lci AND seen_mpi AND seen_baseline AND seen_recovery))
  message(FATAL_ERROR
    "BENCH_recovery.json: sweep must cover both backends, a tolerance-off "
    "baseline, and a recovered crash run (lci=${seen_lci} mpi=${seen_mpi} "
    "baseline=${seen_baseline} recovery=${seen_recovery})")
endif()

message(STATUS "fig_recovery smoke OK: ${nruns} runs in ${OUT_JSON}")
