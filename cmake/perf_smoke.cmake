# ctest script behind the "perf"-labeled perf_core_smoke test: runs the
# perf_core harness in smoke mode and validates the emitted
# BENCH_core.json against the schema (v2) EXPERIMENTS.md documents.
# Absolute smoke-mode timing numbers are not checked against thresholds —
# wall-clock on a loaded CI machine is noise — but the hybrid/legacy and
# hybrid/heapslab SPEEDUP RATIOS are machine-portable (numerator and
# denominator run interleaved under the same load), so they are guarded
# against the committed BENCH_core.json: a ratio more than 10% below the
# committed full-mode ratio fails the test.  Invoked as:
#   cmake -DPERF_CORE=<binary> -DOUT_JSON=<path> \
#         [-DBASELINE_JSON=<committed BENCH_core.json>] -P perf_smoke.cmake
cmake_minimum_required(VERSION 3.19)  # string(JSON)

if(NOT DEFINED PERF_CORE OR NOT DEFINED OUT_JSON)
  message(FATAL_ERROR "usage: cmake -DPERF_CORE=... -DOUT_JSON=... -P perf_smoke.cmake")
endif()

execute_process(
  COMMAND "${PERF_CORE}" --smoke --out "${OUT_JSON}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "perf_core --smoke failed (rc=${rc}):\n${run_out}\n${run_err}")
endif()

file(READ "${OUT_JSON}" doc)

# Scalar header fields.
string(JSON bench ERROR_VARIABLE err GET "${doc}" bench)
if(err OR NOT bench STREQUAL "perf_core")
  message(FATAL_ERROR "BENCH_core.json: bad 'bench' field: ${bench} ${err}")
endif()
string(JSON schema ERROR_VARIABLE err GET "${doc}" schema_version)
if(err OR NOT schema EQUAL 2)
  message(FATAL_ERROR "BENCH_core.json: bad 'schema_version': ${schema} ${err}")
endif()
string(JSON mode ERROR_VARIABLE err GET "${doc}" mode)
if(err OR NOT mode STREQUAL "smoke")
  message(FATAL_ERROR "BENCH_core.json: bad 'mode': ${mode} ${err}")
endif()

# Every benchmark section must exist with its numeric fields; throughput
# numbers must be positive and alloc counts non-negative.
function(check_number section field)
  string(JSON v ERROR_VARIABLE err GET "${doc}" ${section} ${field})
  if(err)
    message(FATAL_ERROR "BENCH_core.json: missing ${section}.${field}: ${err}")
  endif()
  if(v LESS 0)
    message(FATAL_ERROR "BENCH_core.json: ${section}.${field} negative: ${v}")
  endif()
  set(checked_value "${v}" PARENT_SCOPE)
endfunction()

function(check_positive section field)
  check_number(${section} ${field})
  if(NOT checked_value GREATER 0)
    message(FATAL_ERROR "BENCH_core.json: ${section}.${field} not positive: ${checked_value}")
  endif()
endfunction()

foreach(section schedule_pop cancel_heavy)
  check_positive(${section} events_per_sec)
  check_positive(${section} heapslab_events_per_sec)
  check_positive(${section} legacy_events_per_sec)
  check_positive(${section} speedup)
  check_positive(${section} speedup_vs_heapslab)
  check_number(${section} steady_state_allocs_per_event)
  check_number(${section} heapslab_allocs_per_event)
  check_number(${section} legacy_allocs_per_event)
endforeach()
check_positive(fabric_throughput msgs_per_sec)
check_number(fabric_throughput allocs_per_msg)
check_positive(fabric_throughput sim_seconds)
check_positive(fig4_reduced wall_s)
check_positive(fig4_reduced tts_s)
check_positive(fig4_reduced messages)

# The structural guarantee — zero steady-state heap allocations per event
# in the hybrid and heap-slab queues — is deterministic (an allocation
# counter, not a timer), so smoke mode asserts EXACTLY zero on both the
# schedule/pop and the cancel-heavy paths.  (A one-ring-lap warm-up used
# to leak a capacity doubling into cancel_heavy's measured loop — the
# 5e-7 allocs/op of record — so this check was schedule_pop-only and
# merely "not positive".  The harness now warms every container to its
# steady-state footprint first; anything nonzero here is a real leak.)
foreach(section schedule_pop cancel_heavy)
  foreach(field steady_state_allocs_per_event heapslab_allocs_per_event)
    string(JSON allocs GET "${doc}" ${section} ${field})
    if(allocs GREATER 0)
      message(FATAL_ERROR
        "queue allocated on the steady-state ${section} path: "
        "${section}.${field} = ${allocs} allocs/event (expected exactly 0)")
    endif()
  endforeach()
endforeach()

# Regression guard vs. the committed baseline.  Absolute ev/s depends on
# the machine, but the hybrid/legacy and hybrid/heapslab ratios come from
# interleaved reps under identical load, so a committed-ratio shortfall
# of more than 10% means the hybrid queue itself got slower.
#
# CMake's math() is integer-only; ratios are converted to micro-units
# (6 fractional digits, ample for a speedup guard) before comparing.
function(ratio_to_micro outvar x)
  string(REGEX MATCH "^([0-9]+)(\\.([0-9]*))?" m "${x}")
  if(CMAKE_MATCH_1 STREQUAL "")
    message(FATAL_ERROR "unparsable ratio: ${x}")
  endif()
  string(SUBSTRING "${CMAKE_MATCH_3}000000" 0 6 frac6)
  math(EXPR micro "${CMAKE_MATCH_1} * 1000000 + ${frac6}")
  set(${outvar} "${micro}" PARENT_SCOPE)
endfunction()

if(DEFINED BASELINE_JSON AND EXISTS "${BASELINE_JSON}")
  file(READ "${BASELINE_JSON}" base)
  foreach(section schedule_pop cancel_heavy)
    foreach(field speedup speedup_vs_heapslab)
      string(JSON want ERROR_VARIABLE err GET "${base}" ${section} ${field})
      if(err)
        message(FATAL_ERROR
          "baseline ${BASELINE_JSON} missing ${section}.${field}: ${err}")
      endif()
      string(JSON got GET "${doc}" ${section} ${field})
      ratio_to_micro(got_u "${got}")
      ratio_to_micro(want_u "${want}")
      math(EXPR lhs "${got_u} * 100")
      math(EXPR rhs "${want_u} * 90")  # 10% below baseline = failure
      if(lhs LESS rhs)
        message(FATAL_ERROR
          "perf regression: ${section}.${field} = ${got} is more than 10% "
          "below the committed baseline ${want} (${BASELINE_JSON})")
      endif()
    endforeach()
  endforeach()
  message(STATUS "perf_core ratios within 10% of committed baseline")
endif()

message(STATUS "perf_core smoke OK: ${OUT_JSON}")
