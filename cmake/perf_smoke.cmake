# ctest script behind the "perf"-labeled perf_core_smoke test: runs the
# perf_core harness in smoke mode and validates the emitted
# BENCH_core.json against the schema EXPERIMENTS.md documents.  Smoke-mode
# timing numbers are not checked against thresholds — wall-clock on a
# loaded CI machine is noise — only the shape and basic sanity of the
# report are.  Invoked as:
#   cmake -DPERF_CORE=<binary> -DOUT_JSON=<path> -P perf_smoke.cmake
cmake_minimum_required(VERSION 3.19)  # string(JSON)

if(NOT DEFINED PERF_CORE OR NOT DEFINED OUT_JSON)
  message(FATAL_ERROR "usage: cmake -DPERF_CORE=... -DOUT_JSON=... -P perf_smoke.cmake")
endif()

execute_process(
  COMMAND "${PERF_CORE}" --smoke --out "${OUT_JSON}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "perf_core --smoke failed (rc=${rc}):\n${run_out}\n${run_err}")
endif()

file(READ "${OUT_JSON}" doc)

# Scalar header fields.
string(JSON bench ERROR_VARIABLE err GET "${doc}" bench)
if(err OR NOT bench STREQUAL "perf_core")
  message(FATAL_ERROR "BENCH_core.json: bad 'bench' field: ${bench} ${err}")
endif()
string(JSON schema ERROR_VARIABLE err GET "${doc}" schema_version)
if(err OR NOT schema EQUAL 1)
  message(FATAL_ERROR "BENCH_core.json: bad 'schema_version': ${schema} ${err}")
endif()
string(JSON mode ERROR_VARIABLE err GET "${doc}" mode)
if(err OR NOT mode STREQUAL "smoke")
  message(FATAL_ERROR "BENCH_core.json: bad 'mode': ${mode} ${err}")
endif()

# Every benchmark section must exist with its numeric fields; throughput
# numbers must be positive and alloc counts non-negative.
function(check_number section field)
  string(JSON v ERROR_VARIABLE err GET "${doc}" ${section} ${field})
  if(err)
    message(FATAL_ERROR "BENCH_core.json: missing ${section}.${field}: ${err}")
  endif()
  if(v LESS 0)
    message(FATAL_ERROR "BENCH_core.json: ${section}.${field} negative: ${v}")
  endif()
  set(checked_value "${v}" PARENT_SCOPE)
endfunction()

function(check_positive section field)
  check_number(${section} ${field})
  if(NOT checked_value GREATER 0)
    message(FATAL_ERROR "BENCH_core.json: ${section}.${field} not positive: ${checked_value}")
  endif()
endfunction()

foreach(section schedule_pop cancel_heavy)
  check_positive(${section} events_per_sec)
  check_positive(${section} legacy_events_per_sec)
  check_positive(${section} speedup)
  check_number(${section} steady_state_allocs_per_event)
  check_number(${section} legacy_allocs_per_event)
endforeach()
check_positive(fabric_throughput msgs_per_sec)
check_number(fabric_throughput allocs_per_msg)
check_positive(fabric_throughput sim_seconds)
check_positive(fig4_reduced wall_s)
check_positive(fig4_reduced tts_s)
check_positive(fig4_reduced messages)

# The structural guarantee — zero steady-state heap allocations per event
# in the slab queue — is deterministic (an allocation counter, not a
# timer), so smoke mode can assert it.
string(JSON allocs GET "${doc}" schedule_pop steady_state_allocs_per_event)
if(allocs GREATER 0)
  message(FATAL_ERROR
    "slab queue allocated on the steady-state schedule/pop path: "
    "${allocs} allocs/event (expected 0)")
endif()

message(STATUS "perf_core smoke OK: ${OUT_JSON}")
