# ctest script behind the "perf"-labeled timeline_smoke test: runs a small
# real-numerics TLR Cholesky with AMTLCE_TIMELINE set, validates the
# emitted timeline JSON against the schema EXPERIMENTS.md documents, then
# runs perf_core --smoke and asserts the observability overhead guards:
# the sampler at its default cadence costs <= 5% on engine schedule/pop,
# and the always-on flight recorder <= 1% of an end-to-end run.  Those two
# ratios are the only wall-clock-derived values any smoke script checks
# against a threshold — perf_core measures them as best-of-9 interleaved
# ratios (sampler) and a direct per-record cost share (recorder), so they
# are stable on a loaded machine where raw throughputs are not.  Invoked:
#   cmake -DTLR_EXAMPLE=<binary> -DPERF_CORE=<binary> -DWORK_DIR=<dir> \
#         -P timeline_smoke.cmake
cmake_minimum_required(VERSION 3.19)  # string(JSON)

if(NOT DEFINED TLR_EXAMPLE OR NOT DEFINED PERF_CORE OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
    "usage: cmake -DTLR_EXAMPLE=... -DPERF_CORE=... -DWORK_DIR=... -P timeline_smoke.cmake")
endif()

# --- 1. Timeline JSON schema -------------------------------------------------

set(tl_json "${WORK_DIR}/timeline_smoke.json")
file(REMOVE "${tl_json}")
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env "AMTLCE_TIMELINE=${tl_json}"
          "${TLR_EXAMPLE}" 4 32 4
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tlr_cholesky with AMTLCE_TIMELINE failed (rc=${rc}):\n${run_out}\n${run_err}")
endif()
if(NOT EXISTS "${tl_json}")
  message(FATAL_ERROR "AMTLCE_TIMELINE=${tl_json} was set but no file was written")
endif()

file(READ "${tl_json}" doc)
string(JSON bench ERROR_VARIABLE err GET "${doc}" bench)
if(err OR NOT bench STREQUAL "timeline")
  message(FATAL_ERROR "timeline json: bad 'bench' field: ${bench} ${err}")
endif()
string(JSON schema ERROR_VARIABLE err GET "${doc}" schema_version)
if(err OR NOT schema EQUAL 1)
  message(FATAL_ERROR "timeline json: bad 'schema_version': ${schema} ${err}")
endif()
string(JSON interval ERROR_VARIABLE err GET "${doc}" interval_ns)
if(err OR NOT interval GREATER 0)
  message(FATAL_ERROR "timeline json: bad 'interval_ns': ${interval} ${err}")
endif()
string(JSON nphases ERROR_VARIABLE err LENGTH "${doc}" phases)
if(err OR NOT nphases GREATER 0)
  message(FATAL_ERROR "timeline json: no phases (run.start missing): ${err}")
endif()

# Every probe row must carry the full column set; the standard probe set
# must include at least the DES, AMT, and cluster-wide net families.
string(JSON nprobes ERROR_VARIABLE err LENGTH "${doc}" probes)
if(err OR NOT nprobes GREATER 0)
  message(FATAL_ERROR "timeline json: empty or missing 'probes': ${err}")
endif()
set(seen_des 0)
set(seen_amt 0)
set(seen_net 0)
math(EXPR last "${nprobes} - 1")
foreach(i RANGE ${last})
  foreach(field name node samples stored dropped min max tw_mean points)
    string(JSON v ERROR_VARIABLE err GET "${doc}" probes ${i} ${field})
    if(err)
      message(FATAL_ERROR "timeline json: probes[${i}].${field} missing: ${err}")
    endif()
  endforeach()
  string(JSON nsamples GET "${doc}" probes ${i} samples)
  if(NOT nsamples GREATER 0)
    message(FATAL_ERROR "timeline json: probes[${i}] observed no samples")
  endif()
  string(JSON pname GET "${doc}" probes ${i} name)
  if(pname STREQUAL "des.qdepth")
    set(seen_des 1)
  elseif(pname STREQUAL "amt.ready")
    set(seen_amt 1)
  elseif(pname STREQUAL "net.msgs")
    set(seen_net 1)
  endif()
endforeach()
if(NOT (seen_des AND seen_amt AND seen_net))
  message(FATAL_ERROR
    "timeline json: standard probe families missing "
    "(des.qdepth=${seen_des} amt.ready=${seen_amt} net.msgs=${seen_net})")
endif()
message(STATUS "timeline json OK: ${nprobes} probes, ${nphases} phases")

# --- 2. Overhead guards ------------------------------------------------------

set(core_json "${WORK_DIR}/BENCH_core_timeline.json")
execute_process(
  COMMAND "${PERF_CORE}" --smoke --out "${core_json}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "perf_core --smoke failed (rc=${rc}):\n${run_out}\n${run_err}")
endif()
file(READ "${core_json}" core)

string(JSON sampler ERROR_VARIABLE err GET "${core}" timeline sampler_overhead)
if(err)
  message(FATAL_ERROR "BENCH_core.json: timeline.sampler_overhead missing: ${err}")
endif()
if(sampler GREATER 0.05)
  message(FATAL_ERROR
    "sampler overhead guard: timeline sampling at the default cadence "
    "costs ${sampler} (> 5%) on engine schedule/pop")
endif()
string(JSON recorder ERROR_VARIABLE err GET "${core}" timeline recorder_overhead)
if(err)
  message(FATAL_ERROR "BENCH_core.json: timeline.recorder_overhead missing: ${err}")
endif()
if(recorder GREATER 0.01)
  message(FATAL_ERROR
    "flight-recorder overhead guard: the always-on recorder costs "
    "${recorder} (> 1%) of an end-to-end reduced-fig4 run")
endif()
message(STATUS
  "overhead guards OK: sampler ${sampler} (<= 0.05), recorder ${recorder} (<= 0.01)")
