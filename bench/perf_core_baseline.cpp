// Pre-overhaul EventQueue implementation, verbatim from the original
// src/des/event_queue.cpp (namespace aside).  See perf_core_baseline.hpp
// for why this lives in its own translation unit.
#include "perf_core_baseline.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace baseline {
namespace {

/// Below this heap size compaction is not worth the re-heapify.
constexpr std::size_t kCompactMinHeap = 64;

}  // namespace

EventId EventQueue::schedule(des::Time t, Callback fn) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{t, next_seq_++, id});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  callbacks_.emplace(id, std::move(fn));
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_count_;
  maybe_compact();
  return true;
}

void EventQueue::maybe_compact() {
  if (heap_.size() < kCompactMinHeap || heap_.size() <= 2 * live_count_) {
    return;
  }
  std::erase_if(heap_,
                [this](const Entry& e) { return !callbacks_.contains(e.id); });
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
}

void EventQueue::drop_dead_front() {
  while (!heap_.empty() && !callbacks_.contains(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
  }
}

des::Time EventQueue::next_time() {
  drop_dead_front();
  return heap_.empty() ? des::kTimeNever : heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_dead_front();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  const Entry e = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  heap_.pop_back();
  auto it = callbacks_.find(e.id);
  Fired fired{e.time, e.id, std::move(it->second)};
  callbacks_.erase(it);
  --live_count_;
  return fired;
}

}  // namespace baseline
