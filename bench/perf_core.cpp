// Core-runtime perf-regression harness (not a paper figure).
//
// Measures the DES hot path and guards it against regressions.  Three
// queue generations run the identical workload side by side:
//
//   hybrid   — des::EventQueue, the calendar/timing-wheel hybrid;
//   heapslab — des::HeapSlabQueue, the PR-4 4-ary-heap slot slab the
//              hybrid replaced (preserved verbatim);
//   legacy   — the pre-overhaul implementation (unordered_map callback
//              store, std::function), preserved in perf_core_baseline.*.
//
//   * schedule_pop     — steady-state schedule+pop throughput.  Also
//                        counts heap allocations per event in steady
//                        state — hybrid and heapslab must stay at
//                        exactly zero (warm-up runs long enough that
//                        every internal vector reaches its steady-state
//                        capacity BEFORE measurement starts; the old
//                        one-ring-lap warm-up missed a capacity
//                        doubling and leaked a 5e-7 allocs/op residue
//                        into the "steady state").
//   * cancel_heavy     — the network model's churn pattern: every event
//                        is cancelled (or rescheduled) before it fires.
//   * fabric_throughput— chained 8-byte fabric sends through the full
//                        engine + NIC pipes, wall-clock messages/sec and
//                        steady-state allocations per message (payload
//                        pool + delivery slots + inline callbacks).
//   * fig4_reduced     — wall-clock of a reduced fig-4 cell (4 nodes,
//                        N=36,000, nb=3,000, Model mode, LCI backend):
//                        end-to-end sanity that micro-wins survive the
//                        full stack.
//
// Emits BENCH_core.json, schema_version 2 (see --out).  --smoke shrinks
// iteration counts for CI; timing numbers from smoke runs are schema
// fodder, not data.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include <type_traits>

#include "des/engine.hpp"
#include "des/event_queue.hpp"
#include "des/heap_slab_queue.hpp"
#include "des/inplace_callback.hpp"
#include "hicma/driver.hpp"
#include "net/fabric.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/timeline.hpp"
#include "perf_core_baseline.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter.  Every operator new in the process bumps it,
// so "allocations per event" is a hard number, not an estimate.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

std::uint64_t allocs_now() { return g_allocs.load(std::memory_order_relaxed); }

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ---------------------------------------------------------------------------
// Benchmarks.  Each workload is identical across queue implementations:
// same ring size, same capture size (two pointers — the fabric delivery
// closure shape), same op sequence.

struct QueueBenchResult {
  double events_per_sec = 0;
  double allocs_per_event = 0;
};

// Each queue carries the delivery closure its era actually scheduled, so
// the comparison is hot path vs. hot path, not container vs. container.
//
// Pre-overhaul, Fabric::do_send captured the full Message (wire header +
// payload handle + route) in every delivery lambda — far past
// std::function's ~16-byte SSO, so each schedule paid a heap cell on top
// of the queue's own map node.  Post-overhaul the message parks in a
// pooled record and the closure is two pointers, inline in
// InplaceCallback.
struct LegacyDeliveryShape {
  std::uint64_t* sink;
  std::uint64_t hdr[8];    // WireHeader stand-in
  std::uint64_t route[4];  // src, dst, wire_bytes, hops
  void operator()() const { *sink += hdr[0] + route[3]; }
};
static_assert(sizeof(LegacyDeliveryShape) > 16, "must overflow SSO");

struct PooledDeliveryShape {
  std::uint64_t* sink;
  const void* record;  // the pooled Delivery* in production
  void operator()() const {
    *sink += reinterpret_cast<std::uintptr_t>(record) & 1u;
  }
};
static_assert(sizeof(PooledDeliveryShape) <= des::InplaceCallback::kInlineBytes);

// Schedule-delta mix, replayed deterministically from the measured
// distribution of (fire_time - now) across every schedule in a 4-node
// Model-mode TLR Cholesky run: p10 25 ns (NIC msg-rate gap), p50 675 ns,
// p75 1 us (wire latency), p90 63 us, p99 80 ms (timers).  Heterogeneous
// deltas land new events throughout the heap, the way real traffic does —
// a monotone pattern would let every insert park at a leaf and understate
// the heap work both queues pay.
constexpr des::Time kScheduleDeltas[16] = {25,   25,   25,    25,    50,    50,
                                           675,  675,  675,   675,   1000,  1000,
                                           1000, 63366, 63366, 80413426};

template <typename Queue, typename Shape>
QueueBenchResult bench_schedule_pop(std::size_t ring, std::size_t ops) {
  Queue q;
  std::uint64_t sink = 0;
  const Shape cb = [&sink] {
    if constexpr (std::is_same_v<Shape, LegacyDeliveryShape>) {
      return LegacyDeliveryShape{&sink, {1, 2, 3, 4, 5, 6, 7, 8}, {0, 1, 8, 2}};
    } else {
      return PooledDeliveryShape{&sink, &sink};
    }
  }();
  if constexpr (requires { q.reserve(std::size_t{}); }) q.reserve(2 * ring);
  for (std::size_t i = 0; i < ring; ++i) {
    q.schedule(static_cast<des::Time>(i * 100), cb);
  }
  // Warm-up: slab free lists, map buckets, bucket/heap capacity all
  // settle.  Several full compaction cycles and wheel revolutions, not
  // one ring lap — a capacity doubling inside the measured loop reads as
  // a phantom "steady-state" allocation.
  const std::size_t warm = std::max<std::size_t>(8 * ring, 8192);
  for (std::size_t i = 0; i < warm; ++i) {
    auto fired = q.pop();
    q.schedule(fired.time + kScheduleDeltas[i & 15], cb);
  }
  const std::uint64_t a0 = allocs_now();
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < ops; ++i) {
    auto fired = q.pop();
    fired.fn();
    q.schedule(fired.time + kScheduleDeltas[i & 15], cb);
  }
  const double elapsed = seconds_since(t0);
  const std::uint64_t a1 = allocs_now();
  while (!q.empty()) q.pop();
  volatile std::uint64_t observe = sink;  // keep the callbacks' work alive
  (void)observe;
  QueueBenchResult r;
  r.events_per_sec = static_cast<double>(ops) / elapsed;
  r.allocs_per_event = static_cast<double>(a1 - a0) / static_cast<double>(ops);
  return r;
}

// RTO-timer closure shape, identical in both eras: {channel, dst, seq}.
// 24 bytes — already past std::function's SSO, inline for the slab.
struct TimerShape {
  std::uint64_t* sink;
  std::uint32_t dst;
  std::uint64_t seq;
  void operator()() const { *sink += dst + seq; }
};

template <typename Queue>
QueueBenchResult bench_cancel_heavy(std::size_t ring, std::size_t ops) {
  Queue q;
  std::uint64_t sink = 0;
  const TimerShape cb{&sink, 3, 41};
  if constexpr (requires { q.reserve(std::size_t{}); }) q.reserve(2 * ring);
  // Long-lived anchors keep the heap honest (compaction has survivors).
  for (std::size_t i = 0; i < ring; ++i) {
    q.schedule(static_cast<des::Time>(1'000'000'000 + i), cb);
  }
  // Warm-up: enough schedule/cancel pairs that tombstone compaction has
  // cycled several times and every container has reached its
  // steady-state capacity (one ring lap left a heap-vector doubling to
  // fire mid-measurement: the 5e-7 allocs/op "steady state" of record).
  const std::size_t warm = std::max<std::size_t>(8 * ring, 8192);
  for (std::size_t i = 0; i < warm; ++i) {
    auto id = q.schedule(static_cast<des::Time>(i), cb);
    q.cancel(id);
  }
  const std::uint64_t a0 = allocs_now();
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < ops; ++i) {
    auto id = q.schedule(static_cast<des::Time>(i), cb);
    q.cancel(id);
  }
  const double elapsed = seconds_since(t0);
  const std::uint64_t a1 = allocs_now();
  while (!q.empty()) q.pop();
  volatile std::uint64_t observe = sink;  // keep the callbacks' work alive
  (void)observe;
  QueueBenchResult r;
  // One schedule + one cancel per iteration.
  r.events_per_sec = static_cast<double>(2 * ops) / elapsed;
  r.allocs_per_event =
      static_cast<double>(a1 - a0) / static_cast<double>(2 * ops);
  return r;
}

struct FabricBenchResult {
  double msgs_per_sec = 0;
  double allocs_per_msg = 0;
  double sim_seconds = 0;
};

// Chained sends: the next message leaves when the previous one clears the
// egress pipe, so the in-flight population — and therefore the pooled
// resources exercised — stays small and steady.
FabricBenchResult bench_fabric_throughput(std::size_t msgs) {
  des::Engine eng;
  net::FabricConfig cfg;
  cfg.link_bandwidth_Bps = 10e9;
  cfg.wire_latency = 1000;
  cfg.per_hop_latency = 0;
  cfg.nodes_per_switch = 1024;
  cfg.nic_msg_rate = 10e6;
  net::Fabric fab(eng, 2, cfg);
  std::uint64_t received = 0;
  fab.nic(1).set_deliver_handler([&](net::Message&&) { ++received; });

  struct Sender {
    net::Fabric* fab;
    std::size_t remaining;
    void send_one() {
      net::Message m;
      m.src = 0;
      m.dst = 1;
      m.wire_bytes = 8;
      net::Fabric* const f = fab;
      f->nic(0).send(std::move(m), [this] {
        if (--remaining > 0) send_one();
      });
    }
  };

  // Warm-up pass populates the delivery-record arena, the payload pool,
  // and — at one send per 100 ns of simulated time — spans the event
  // queue's full 262 µs wheel rotation, so every calendar bucket reaches
  // its steady-state capacity before the measured region starts.
  Sender warm{&fab, std::min<std::size_t>(msgs, 4096)};
  warm.send_one();
  eng.run();

  Sender s{&fab, msgs};
  const des::Time sim0 = eng.now();
  const std::uint64_t a0 = allocs_now();
  const auto t0 = Clock::now();
  s.send_one();
  eng.run();
  const double elapsed = seconds_since(t0);
  const std::uint64_t a1 = allocs_now();
  FabricBenchResult r;
  r.msgs_per_sec = static_cast<double>(msgs) / elapsed;
  r.allocs_per_msg = static_cast<double>(a1 - a0) / static_cast<double>(msgs);
  r.sim_seconds = static_cast<double>(eng.now() - sim0) / 1e9;
  if (received == 0) std::fprintf(stderr, "fabric bench delivered nothing\n");
  return r;
}

// ---------------------------------------------------------------------------
// Timeline-sampler and flight-recorder overhead (the observability PR's
// perf guards): the sampler hook is one compare per engine step, the
// recorder a branch + 32-byte store per fabric send.  Both are measured
// against the identical workload with the feature off.

// Dense traffic deltas only (25 ns .. 675 ns): a 100 us sample boundary
// then lands every few hundred events, the density of a real run's hot
// phase.  Long timer deltas would make the catch-up loop sample hundreds
// of boundaries per event and overstate the cost.
constexpr des::Time kStepDeltas[8] = {25, 25, 25, 25, 50, 50, 675, 675};

double bench_engine_steps(bool sampled, std::size_t ops) {
  des::Engine eng;
  obs::Timeline tl{obs::TimelineConfig{}};  // default cadence, in-memory
  struct Stepper {
    des::Engine* eng;
    std::uint64_t fired = 0;
    std::size_t remaining = 0;
    void fire() {
      ++fired;
      if (remaining == 0) return;
      --remaining;
      eng->schedule_at(eng->now() + kStepDeltas[fired & 7],
                       [this]() { fire(); });
    }
  };
  Stepper st{&eng, 0, ops};
  if (sampled) {
    // A representative per-node probe set (the standard set registers a
    // handful per node); all read live state.
    for (int i = 0; i < 4; ++i) {
      tl.add_probe("perf.qdepth", i, [&eng]() {
        return static_cast<double>(eng.shard_pending(0));
      });
    }
    tl.add_probe("perf.fired", -1,
                 [&st]() { return static_cast<double>(st.fired); });
    tl.arm(eng);
  }
  for (std::size_t i = 0; i < 64; ++i) {
    eng.schedule_at(static_cast<des::Time>(i * 100), [&st]() { st.fire(); });
  }
  const auto t0 = Clock::now();
  eng.run();
  const double elapsed = seconds_since(t0);
  return static_cast<double>(ops) / elapsed;
}

// Direct cost of one FlightRecorder::record() call (the fabric send path
// makes exactly one per message).  Measured straight rather than by
// differencing two fabric-throughput runs: the per-record cost is a few
// nanoseconds, so at smoke sizes the difference of two wall-clock
// throughputs is pure scheduler noise, while a tight loop over the call
// itself is stable to a fraction of a nanosecond.
double bench_record_ns(std::size_t n) {
  obs::FlightRecorder& fr = obs::FlightRecorder::global();
  fr.begin_run(2);
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    fr.record(static_cast<int>(i & 1), obs::FlightKind::MsgSend,
              static_cast<des::Time>(i), 0, i & 1, 8);
  }
  const double elapsed = seconds_since(t0);
  return elapsed * 1e9 / static_cast<double>(n);
}

struct Fig4Result {
  double wall_s = 0;
  double tts_s = 0;
  double msgs = 0;
};

Fig4Result bench_fig4_reduced() {
  hicma::ExperimentConfig cfg;
  cfg.nodes = 4;
  cfg.backend = ce::BackendKind::Lci;
  cfg.mt_activate = false;
  cfg.tlr.mode = hicma::TlrOptions::Mode::Model;
  cfg.tlr.n = 36000;
  cfg.tlr.nb = 3000;
  (void)hicma::run_tlr_cholesky(cfg);  // warm-up (pools, code paths)
  const auto t0 = Clock::now();
  const auto res = hicma::run_tlr_cholesky(cfg);
  Fig4Result r;
  r.wall_s = seconds_since(t0);
  r.tts_s = res.tts_s;
  r.msgs = static_cast<double>(res.fabric_messages);
  return r;
}

void json_field(std::FILE* f, const char* key, double v, bool last = false) {
  std::fprintf(f, "    \"%s\": %.17g%s\n", key, v, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_core.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  // In-flight event population, sampled every 100 us of simulated time
  // across a 4-node Model-mode TLR Cholesky run: mean 9, peak 28.  A ring
  // of 64 covers that peak with headroom; inflating it further would just
  // let heap-sift costs (common to both queues) drown the per-event fixed
  // costs this benchmark exists to compare.
  const std::size_t ring = 64;
  // Smoke keeps the FULL-SIZE measured loops and trims only rep count
  // (and the fabric/timeline legs): the CI regression guard compares
  // smoke-mode speedup ratios against the committed full-mode baseline,
  // so the measured region must be identical — and a rep shorter than
  // one OS scheduler tick (~10 ms) is one preemption away from a
  // 2x-skewed ratio and a false alarm.  9 reps of ~10-70 ms loops keep
  // the queue legs under ~3 s total.
  const std::size_t ops = 1'000'000;
  const std::size_t fab_msgs = smoke ? 20'000 : 200'000;
  // Best-of-N over INTERLEAVED hybrid/heapslab/legacy reps: wall-clock
  // on a shared machine is noisy, the fastest rep is the closest
  // estimate of the code's intrinsic cost, and alternating the queues
  // rep-by-rep keeps a load spike from taxing only one side of a ratio.
  const int reps = smoke ? 9 : 15;

  std::printf("perf_core (%s mode)\n", smoke ? "smoke" : "full");

  struct ThreeWay {
    QueueBenchResult hybrid, heapslab, legacy;
  };
  const auto best_of3 = [reps](auto&& measure_a, auto&& measure_b,
                               auto&& measure_c) {
    ThreeWay best{measure_a(), measure_b(), measure_c()};
    for (int r = 1; r < reps; ++r) {
      const QueueBenchResult a = measure_a();
      const QueueBenchResult b = measure_b();
      const QueueBenchResult c = measure_c();
      if (a.events_per_sec > best.hybrid.events_per_sec) best.hybrid = a;
      if (b.events_per_sec > best.heapslab.events_per_sec) best.heapslab = b;
      if (c.events_per_sec > best.legacy.events_per_sec) best.legacy = c;
    }
    return best;
  };

  const ThreeWay sp = best_of3(
      [&] {
        return bench_schedule_pop<des::EventQueue, PooledDeliveryShape>(ring,
                                                                        ops);
      },
      [&] {
        return bench_schedule_pop<des::HeapSlabQueue, PooledDeliveryShape>(
            ring, ops);
      },
      [&] {
        return bench_schedule_pop<baseline::EventQueue, LegacyDeliveryShape>(
            ring, ops);
      });
  std::printf(
      "schedule_pop   : hybrid %.3g ev/s (%.3g allocs/ev), heapslab %.3g "
      "ev/s, legacy %.3g ev/s, speedup %.2fx vs legacy, %.2fx vs heapslab\n",
      sp.hybrid.events_per_sec, sp.hybrid.allocs_per_event,
      sp.heapslab.events_per_sec, sp.legacy.events_per_sec,
      sp.hybrid.events_per_sec / sp.legacy.events_per_sec,
      sp.hybrid.events_per_sec / sp.heapslab.events_per_sec);

  const ThreeWay ch = best_of3(
      [&] { return bench_cancel_heavy<des::EventQueue>(ring, ops); },
      [&] { return bench_cancel_heavy<des::HeapSlabQueue>(ring, ops); },
      [&] { return bench_cancel_heavy<baseline::EventQueue>(ring, ops); });
  std::printf(
      "cancel_heavy   : hybrid %.3g op/s (%.3g allocs/op), heapslab %.3g "
      "op/s, legacy %.3g op/s, speedup %.2fx vs legacy, %.2fx vs heapslab\n",
      ch.hybrid.events_per_sec, ch.hybrid.allocs_per_event,
      ch.heapslab.events_per_sec, ch.legacy.events_per_sec,
      ch.hybrid.events_per_sec / ch.legacy.events_per_sec,
      ch.hybrid.events_per_sec / ch.heapslab.events_per_sec);

  const auto fabr = bench_fabric_throughput(fab_msgs);
  std::printf("fabric         : %.3g msg/s wall (%.3g allocs/msg)\n",
              fabr.msgs_per_sec, fabr.allocs_per_msg);

  // A real end-to-end run first: its wall-clock and flight-record count
  // are the denominator of the recorder-overhead guard below.
  const auto fig4 = bench_fig4_reduced();
  std::printf("fig4_reduced   : wall %.3f s, tts %.6f s, %.0f msgs\n",
              fig4.wall_s, fig4.tts_s, fig4.msgs);
  std::uint64_t fig4_records = 0;
  for (int n = -1; n < obs::FlightRecorder::global().num_nodes(); ++n) {
    fig4_records += obs::FlightRecorder::global().total_records(n);
  }

  // Observability overhead guards.  Best-of interleaved pairs, like the
  // queue comparison: the min over reps estimates intrinsic cost, and
  // alternating keeps machine noise from taxing one side.  The recorder
  // guard is direct-cost based — (records made by the fig4 run) x (cost
  // of one record()) over the run's wall-clock — because the per-record
  // cost is a few nanoseconds and differencing two wall-clock throughputs
  // at smoke sizes measures scheduler noise, not the recorder.
  const std::size_t tl_ops = smoke ? 400'000 : 2'000'000;
  const int tl_reps = 9;
  double base_steps = 0;
  double sampled_steps = 0;
  double base_msgs = 0;
  double recorder_msgs = 0;
  double record_ns = 1e99;
  for (int r = 0; r < tl_reps; ++r) {
    base_steps = std::max(base_steps, bench_engine_steps(false, tl_ops));
    sampled_steps = std::max(sampled_steps, bench_engine_steps(true, tl_ops));
    obs::FlightRecorder::global().set_enabled(false);
    base_msgs = std::max(base_msgs, bench_fabric_throughput(fab_msgs).msgs_per_sec);
    obs::FlightRecorder::global().set_enabled(true);
    recorder_msgs =
        std::max(recorder_msgs, bench_fabric_throughput(fab_msgs).msgs_per_sec);
    record_ns = std::min(record_ns, bench_record_ns(tl_ops));
  }
  const double sampler_overhead = 1.0 - sampled_steps / base_steps;
  const double recorder_overhead =
      record_ns * static_cast<double>(fig4_records) / (fig4.wall_s * 1e9);
  std::printf(
      "timeline       : sampler %.3g ev/s vs %.3g (overhead %.2f%%), "
      "recorder %.2f ns/record x %llu records (overhead %.2f%%)\n",
      sampled_steps, base_steps, sampler_overhead * 100.0, record_ns,
      static_cast<unsigned long long>(fig4_records), recorder_overhead * 100.0);

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"perf_core\",\n");
  std::fprintf(f, "  \"schema_version\": 2,\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"schedule_pop\": {\n");
  json_field(f, "ops", static_cast<double>(ops));
  json_field(f, "ring", static_cast<double>(ring));
  json_field(f, "events_per_sec", sp.hybrid.events_per_sec);
  json_field(f, "heapslab_events_per_sec", sp.heapslab.events_per_sec);
  json_field(f, "legacy_events_per_sec", sp.legacy.events_per_sec);
  json_field(f, "speedup", sp.hybrid.events_per_sec / sp.legacy.events_per_sec);
  json_field(f, "speedup_vs_heapslab",
             sp.hybrid.events_per_sec / sp.heapslab.events_per_sec);
  json_field(f, "steady_state_allocs_per_event", sp.hybrid.allocs_per_event);
  json_field(f, "heapslab_allocs_per_event", sp.heapslab.allocs_per_event);
  json_field(f, "legacy_allocs_per_event", sp.legacy.allocs_per_event, true);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"cancel_heavy\": {\n");
  json_field(f, "ops", static_cast<double>(2 * ops));
  json_field(f, "events_per_sec", ch.hybrid.events_per_sec);
  json_field(f, "heapslab_events_per_sec", ch.heapslab.events_per_sec);
  json_field(f, "legacy_events_per_sec", ch.legacy.events_per_sec);
  json_field(f, "speedup", ch.hybrid.events_per_sec / ch.legacy.events_per_sec);
  json_field(f, "speedup_vs_heapslab",
             ch.hybrid.events_per_sec / ch.heapslab.events_per_sec);
  json_field(f, "steady_state_allocs_per_event", ch.hybrid.allocs_per_event);
  json_field(f, "heapslab_allocs_per_event", ch.heapslab.allocs_per_event);
  json_field(f, "legacy_allocs_per_event", ch.legacy.allocs_per_event, true);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"fabric_throughput\": {\n");
  json_field(f, "messages", static_cast<double>(fab_msgs));
  json_field(f, "msgs_per_sec", fabr.msgs_per_sec);
  json_field(f, "allocs_per_msg", fabr.allocs_per_msg);
  json_field(f, "sim_seconds", fabr.sim_seconds, true);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"timeline\": {\n");
  json_field(f, "ops", static_cast<double>(tl_ops));
  json_field(f, "base_events_per_sec", base_steps);
  json_field(f, "sampled_events_per_sec", sampled_steps);
  json_field(f, "sampler_overhead", sampler_overhead);
  json_field(f, "base_msgs_per_sec", base_msgs);
  json_field(f, "recorder_msgs_per_sec", recorder_msgs);
  json_field(f, "record_ns_per_call", record_ns);
  json_field(f, "fig4_records", static_cast<double>(fig4_records));
  json_field(f, "recorder_overhead", recorder_overhead, true);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"fig4_reduced\": {\n");
  json_field(f, "nodes", 4);
  json_field(f, "n", 36000);
  json_field(f, "nb", 3000);
  json_field(f, "wall_s", fig4.wall_s);
  json_field(f, "tts_s", fig4.tts_s);
  json_field(f, "messages", fig4.msgs, true);
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
