// CommBench-style group-to-group microbenchmarks (Rail / Dense / Fan x
// uni / bi / omni) run against the explicit-link fat tree, validated
// against closed-form expectations of the cut-through fluid link model.
//
// Geometry follows CommBench: p nodes in M groups of g (one group per
// leaf switch), the first k <= g nodes of each group form the active
// subgroup.  Patterns between adjacent groups A -> B:
//   Rail   subgroup node i of A sends to node i of B (k parallel rails)
//   Dense  every subgroup node of A sends to every subgroup node of B
//   Fan    node 0 of A sends to all k subgroup nodes of B
// Directions:
//   uni    A -> B only (A = group 0, B = group 1)
//   bi     A -> B and B -> A simultaneously
//   omni   directed ring: every group j -> group j+1 mod M, all at once
//
// The leaves are deliberately built with ONE uplink, so every cross-leaf
// byte of a group serializes through a single 10 GB/s port and the
// completion time has a pencil-and-paper answer (see expected_last()).
// The bench asserts the simulated last-delivery time equals it to the
// nanosecond, that full-duplex links make bi no slower than uni, that
// ring parallelism makes omni no slower than uni, and that per-link
// counters conserve messages.  Any mismatch exits non-zero, so the CI
// smoke entry is a real model check, not a timing snapshot.
//
//   commbench_patterns [--smoke]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util/harness.hpp"
#include "des/engine.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"

namespace {

enum class Pattern { Rail, Dense, Fan };
enum class Direction { Uni, Bi, Omni };

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::Rail: return "Rail";
    case Pattern::Dense: return "Dense";
    case Pattern::Fan: return "Fan";
  }
  return "?";
}

const char* direction_name(Direction d) {
  switch (d) {
    case Direction::Uni: return "uni";
    case Direction::Bi: return "bi";
    case Direction::Omni: return "omni";
  }
  return "?";
}

struct Geometry {
  int groups;         ///< M leaf groups
  int group_size;     ///< g nodes per leaf
  int subgroup;       ///< k active nodes per group
  std::uint64_t bytes;
};

// One-uplink leaves: all cross-leaf traffic of a group serializes on a
// single port running at the node link rate, so congestion is exact.
net::FabricConfig fabric_config(const Geometry& geo) {
  net::FabricConfig cfg;
  cfg.link_bandwidth_Bps = 10e9;  // 10 B/ns
  cfg.wire_latency = 1000;
  cfg.per_hop_latency = 100;
  cfg.nic_msg_rate = 10e6;  // 100 ns message-rate floor << serialization
  cfg.nodes_per_switch = geo.group_size;
  cfg.topology.explicit_links = true;
  cfg.topology.levels = {
      net::TopologyLevel{geo.group_size, /*uplinks=*/1,
                         /*uplink_bandwidth_Bps=*/10e9,
                         /*switch_latency=*/-1},
      net::TopologyLevel{},
  };
  return cfg;
}

struct Measured {
  des::Time last_delivery = 0;
  std::uint64_t delivered = 0;
  std::uint64_t uplink_msgs = 0;  ///< boundary total, all leaves
};

// The (src, dst) flows of one pattern instance A -> B, in canonical
// issue order.  Dense rounds form a Latin square (round r: i -> (i+r)
// mod k) so every round targets k distinct destinations and arrival
// times on the shared uplink are nondecreasing in issue order.
void append_flows(Pattern p, const Geometry& geo, int group_a, int group_b,
                  int round, std::vector<std::pair<int, int>>& flows) {
  const int base_a = group_a * geo.group_size;
  const int base_b = group_b * geo.group_size;
  const int k = geo.subgroup;
  switch (p) {
    case Pattern::Rail:
      if (round == 0) {
        for (int i = 0; i < k; ++i) flows.emplace_back(base_a + i, base_b + i);
      }
      break;
    case Pattern::Dense:
      if (round < k) {
        for (int i = 0; i < k; ++i) {
          flows.emplace_back(base_a + i, base_b + (i + round) % k);
        }
      }
      break;
    case Pattern::Fan:
      if (round == 0) {
        for (int i = 0; i < k; ++i) flows.emplace_back(base_a, base_b + i);
      }
      break;
  }
}

Measured run_case(Pattern p, Direction d, const Geometry& geo) {
  const int nodes = geo.groups * geo.group_size;
  des::Engine eng;
  net::Fabric fab(eng, nodes, fabric_config(geo));

  Measured m;
  for (int n = 0; n < nodes; ++n) {
    fab.nic(n).set_deliver_handler([&m, &eng](net::Message&&) {
      ++m.delivered;
      m.last_delivery = std::max(m.last_delivery, eng.now());
    });
  }

  // Round-major issue order across all active group pairs: every flow is
  // scheduled as its own t=0 event, so the engine's FIFO tie-break
  // reproduces exactly this order at the NICs and uplinks.
  std::vector<std::pair<int, int>> flows;
  for (int round = 0; round < geo.subgroup; ++round) {
    if (d == Direction::Omni) {
      for (int j = 0; j < geo.groups; ++j) {
        append_flows(p, geo, j, (j + 1) % geo.groups, round, flows);
      }
    } else {
      append_flows(p, geo, 0, 1, round, flows);
      if (d == Direction::Bi) append_flows(p, geo, 1, 0, round, flows);
    }
  }
  for (const auto& [src, dst] : flows) {
    eng.schedule_at(0, [&fab, src = src, dst = dst, bytes = geo.bytes] {
      net::Message msg;
      msg.src = src;
      msg.dst = dst;
      msg.wire_bytes = bytes;
      fab.nic(src).raw_send(std::move(msg));
    });
  }
  eng.run();
  m.uplink_msgs = fab.topology().boundary_msgs_up(0);
  return m;
}

struct Expectation {
  des::Time last;           ///< exact last-delivery time, ns
  std::uint64_t delivered;  ///< total messages
};

Expectation expected_last(Pattern p, Direction d, const Geometry& geo,
                          const net::FabricConfig& cfg) {
  // Single-flow-group timing under the cut-through fluid model with one
  // uplink.  occ = NIC egress occupancy, ser = uplink re-serialization
  // (equal here by construction); path = leaf + spine + leaf switch
  // latencies; wire = first-byte wire latency.
  const auto occ = std::max(
      des::transfer_time(geo.bytes, cfg.link_bandwidth_Bps),
      des::from_seconds(1.0 / cfg.nic_msg_rate));
  const auto ser = des::transfer_time(
      geo.bytes, cfg.topology.levels[0].uplink_bandwidth_Bps);
  const des::Duration path = 3 * cfg.per_hop_latency;
  const std::uint64_t k = static_cast<std::uint64_t>(geo.subgroup);

  des::Time last = 0;
  std::uint64_t per_pair = 0;
  switch (p) {
    case Pattern::Rail:
      // k distinct NICs egress together; the shared uplink drains them
      // FIFO, one serialization apiece; distinct downlinks pass through.
      last = occ + static_cast<des::Duration>(k - 1) * ser;
      per_pair = k;
      break;
    case Pattern::Dense:
      // k^2 messages saturate the uplink from the first arrival on;
      // downlinks and ingress pipes never queue because each destination
      // sees only every k-th frame.
      last = occ + static_cast<des::Duration>(k * k - 1) * ser;
      per_pair = k * k;
      break;
    case Pattern::Fan:
      // The root's own egress pipe is the bottleneck — frames reach the
      // uplink pre-spaced one serialization apart, so it never queues.
      // Every direction replicates the scatter on disjoint resources.
      last = static_cast<des::Duration>(k) * occ;
      per_pair = k;
      break;
  }
  // bi adds the mirrored flows on disjoint links and NIC pipes; omni
  // adds a whole ring of disjoint instances.  Neither moves the clock.
  const std::uint64_t pairs = d == Direction::Uni   ? 1
                              : d == Direction::Bi  ? 2
                                                    : static_cast<std::uint64_t>(geo.groups);
  return {last + path + cfg.wire_latency, per_pair * pairs};
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }

  // Full: 8 groups of 8, 100 KB frames; smoke trims the geometry but
  // exercises the identical model checks.
  const Geometry geo = smoke ? Geometry{4, 4, 4, 10000}
                             : Geometry{8, 8, 8, 100000};
  const net::FabricConfig cfg = fabric_config(geo);

  bench::Table table(
      "CommBench patterns on the one-uplink fat tree (last delivery, us)",
      {"pattern", "direction", "msgs", "measured", "analytic"});

  int failures = 0;
  for (const Pattern p : {Pattern::Rail, Pattern::Dense, Pattern::Fan}) {
    for (const Direction d :
         {Direction::Uni, Direction::Bi, Direction::Omni}) {
      const Measured got = run_case(p, d, geo);
      const Expectation want = expected_last(p, d, geo, cfg);
      table.add_row({pattern_name(p), direction_name(d),
                     std::to_string(got.delivered),
                     bench::fmt(static_cast<double>(got.last_delivery) / 1e3),
                     bench::fmt(static_cast<double>(want.last) / 1e3)});
      if (got.last_delivery != want.last || got.delivered != want.delivered ||
          got.uplink_msgs != want.delivered) {
        ++failures;
        std::fprintf(stderr,
                     "MISMATCH %s/%s: last %lld vs analytic %lld ns, "
                     "delivered %llu vs %llu, uplink msgs %llu\n",
                     pattern_name(p), direction_name(d),
                     static_cast<long long>(got.last_delivery),
                     static_cast<long long>(want.last),
                     static_cast<unsigned long long>(got.delivered),
                     static_cast<unsigned long long>(want.delivered),
                     static_cast<unsigned long long>(got.uplink_msgs));
      }
    }
  }

  if (failures != 0) {
    std::fprintf(stderr, "%d pattern/direction cases diverged from the "
                 "analytic model\n", failures);
    return 1;
  }
  std::printf("all %d cases match the analytic model exactly\n", 9);
  return 0;
}
