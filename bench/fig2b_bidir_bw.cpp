// Figure 2b: two-stream (bidirectional) ping-pong bandwidth vs
// granularity, with and without the inter-iteration Sync task.  The paper
// observes that with Sync, large-message bandwidth is depressed by a
// queueing effect (streams travel together, each node alternately only
// sending or receiving); removing the synchronization recovers near-peak
// bidirectional bandwidth.
#include <vector>

#include "bench_util/harness.hpp"

int main() {
  const auto reps = bench::Reps::from_env();
  std::vector<std::size_t> sizes;
  for (std::size_t s = 16 << 10; s <= (8u << 20); s *= 2) {
    sizes.push_back(s);
  }

  bench::Table table(
      "Fig 2b: ping-pong bandwidth, two streams (Gbit/s)",
      {"granularity", "LCI", "Open MPI", "LCI (no sync)",
       "Open MPI (no sync)", "LCI p99 (us)", "Open MPI p99 (us)"});

  for (const auto size : sizes) {
    auto run = [&](ce::BackendKind kind, bool sync) {
      bench::PingPongOptions opts;
      opts.fragment_bytes = size;
      opts.streams = 2;
      opts.iterations = 4;
      opts.sync = sync;
      return bench::run_pingpong_series(reps, kind, opts);
    };
    const auto lci = run(ce::BackendKind::Lci, true);
    const auto mpi = run(ce::BackendKind::Mpi, true);
    table.add_row({bench::human_bytes(size), bench::fmt(lci.gbit_per_s, 1),
                   bench::fmt(mpi.gbit_per_s, 1),
                   bench::fmt(run(ce::BackendKind::Lci, false).gbit_per_s, 1),
                   bench::fmt(run(ce::BackendKind::Mpi, false).gbit_per_s, 1),
                   bench::fmt(lci.latency.e2e_p99_ns() / 1e3, 1),
                   bench::fmt(mpi.latency.e2e_p99_ns() / 1e3, 1)});
  }
  return 0;
}
