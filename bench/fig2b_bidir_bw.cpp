// Figure 2b: two-stream (bidirectional) ping-pong bandwidth vs
// granularity, with and without the inter-iteration Sync task.  The paper
// observes that with Sync, large-message bandwidth is depressed by a
// queueing effect (streams travel together, each node alternately only
// sending or receiving); removing the synchronization recovers near-peak
// bidirectional bandwidth.
#include <vector>

#include "bench_util/harness.hpp"

int main() {
  const auto reps = bench::Reps::from_env();
  std::vector<std::size_t> sizes;
  for (std::size_t s = 16 << 10; s <= (8u << 20); s *= 2) {
    sizes.push_back(s);
  }

  bench::Table table(
      "Fig 2b: ping-pong bandwidth, two streams (Gbit/s)",
      {"granularity", "LCI", "Open MPI", "LCI (no sync)",
       "Open MPI (no sync)"});

  for (const auto size : sizes) {
    auto run = [&](ce::BackendKind kind, bool sync) {
      bench::PingPongOptions opts;
      opts.fragment_bytes = size;
      opts.streams = 2;
      opts.iterations = 4;
      opts.sync = sync;
      return bench::mean_of(reps, [&](int) {
        return bench::run_pingpong(kind, opts).gbit_per_s;
      });
    };
    table.add_row({bench::human_bytes(size),
                   bench::fmt(run(ce::BackendKind::Lci, true), 1),
                   bench::fmt(run(ce::BackendKind::Mpi, true), 1),
                   bench::fmt(run(ce::BackendKind::Lci, false), 1),
                   bench::fmt(run(ce::BackendKind::Mpi, false), 1)});
  }
  return 0;
}
