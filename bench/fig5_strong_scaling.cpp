// Figures 5a/5b + Table 2: strong scaling of the TLR Cholesky
// (N = 360,000) from 1 to 32 nodes.  For each node count both backends
// sweep a set of candidate tile sizes; the best time-to-solution is
// reported ("Open MPI (best)"), along with Open MPI at LCI's best tile
// (the paper's "Open MPI" series) and Table 2's best-tile summary.
//
// Set AMTLCE_QUICK=1 to trim the candidate sets.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "bench_util/harness.hpp"
#include "hicma/driver.hpp"

namespace {

struct Best {
  int tile = 0;
  double tts = 1e30;
  double lat_ms = 0;
};

hicma::ExperimentResult run(int nodes, int nb, ce::BackendKind kind) {
  hicma::ExperimentConfig cfg;
  cfg.nodes = nodes;
  cfg.backend = kind;
  cfg.tlr.mode = hicma::TlrOptions::Mode::Model;
  cfg.tlr.n = 360000;
  cfg.tlr.nb = nb;
  auto res = hicma::run_tlr_cholesky(cfg);
  bench::metrics_accumulator().merge(res.metrics);
  return res;
}

}  // namespace

int main() {
  const bool quick = std::getenv("AMTLCE_QUICK") != nullptr;
  // Candidate tiles per node count (must keep enough parallelism per
  // §6.4.4; the sets bracket the paper's Table 2 values).
  std::map<int, std::vector<int>> candidates = {
      {1, {3600, 4500, 6000}},  {2, {3600, 4500, 6000}},
      {4, {3000, 3600, 4500}},  {8, {2400, 3000, 3600}},
      {16, {1800, 2400, 3000}}, {32, {1500, 1800, 2400}},
  };
  if (quick) {
    for (auto& [nodes, tiles] : candidates) {
      tiles.erase(tiles.begin());  // drop the most expensive candidate
    }
  }

  bench::Table tts("Fig 5a: strong scaling time-to-solution (s)",
                   {"nodes", "LCI", "Open MPI", "Open MPI (best)"});
  bench::Table lat("Fig 5b: end-to-end communication latency (ms)",
                   {"nodes", "LCI", "Open MPI", "Open MPI (best)",
                    "LCI p50", "LCI p99", "Open MPI p50", "Open MPI p99"});
  bench::Table t2("Table 2: tile size with lowest time-to-solution",
                  {"nodes", "Open MPI", "LCI"});

  for (const auto& [nodes, tiles] : candidates) {
    Best best_lci, best_mpi;
    std::map<int, hicma::ExperimentResult> mpi_runs, lci_runs;
    for (const int nb : tiles) {
      const auto lci = run(nodes, nb, ce::BackendKind::Lci);
      const auto mpi = run(nodes, nb, ce::BackendKind::Mpi);
      mpi_runs[nb] = mpi;
      lci_runs[nb] = lci;
      if (lci.tts_s < best_lci.tts) {
        best_lci = {nb, lci.tts_s, lci.latency.e2e_mean_ns() / 1e6};
      }
      if (mpi.tts_s < best_mpi.tts) {
        best_mpi = {nb, mpi.tts_s, mpi.latency.e2e_mean_ns() / 1e6};
      }
      std::printf("nodes %d tile %d done (LCI %.2f s, MPI %.2f s)\n",
                  nodes, nb, lci.tts_s, mpi.tts_s);
      std::fflush(stdout);
    }
    const auto& mpi_at_lci_tile = mpi_runs.at(best_lci.tile);
    tts.add_row({std::to_string(nodes), bench::fmt(best_lci.tts),
                 bench::fmt(mpi_at_lci_tile.tts_s),
                 bench::fmt(best_mpi.tts)});
    const auto& lci_best_run = lci_runs.at(best_lci.tile);
    lat.add_row({std::to_string(nodes), bench::fmt(best_lci.lat_ms),
                 bench::fmt(mpi_at_lci_tile.latency.e2e_mean_ns() / 1e6),
                 bench::fmt(best_mpi.lat_ms),
                 bench::fmt(lci_best_run.latency.e2e_p50_ns() / 1e6),
                 bench::fmt(lci_best_run.latency.e2e_p99_ns() / 1e6),
                 bench::fmt(mpi_at_lci_tile.latency.e2e_p50_ns() / 1e6),
                 bench::fmt(mpi_at_lci_tile.latency.e2e_p99_ns() / 1e6)});
    t2.add_row({std::to_string(nodes), std::to_string(best_mpi.tile),
                std::to_string(best_lci.tile)});
    std::printf(
        "nodes %d, LCI best tile %d: %s\n", nodes, best_lci.tile,
        bench::critical_path_line(lci_best_run.runtime_stats.crit).c_str());
    std::printf(
        "nodes %d, MPI @ LCI tile:   %s\n", nodes,
        bench::critical_path_line(mpi_at_lci_tile.runtime_stats.crit)
            .c_str());
    std::fflush(stdout);
  }
  bench::export_metrics_env();
  return 0;
}
