// Ablation studies for the design choices the paper calls out:
//
//   (1) §5.3.1 LCI dedicated progress thread: on vs off.
//   (2) §5.3.3 LCI eager-data-in-handshake optimization: on vs off.
//   (3) §4.2.2 MPI backend concurrent-transfer cap (30): sweep.
//   (4) §4.3   ACTIVATE aggregation: on vs record-per-message.
//
// Each ablation runs the TLR Cholesky (model mode, 16 nodes, tile 2400 —
// near the sweet spot, where both compute and communication matter).
#include <cstdio>
#include <vector>

#include "bench_util/harness.hpp"
#include "hicma/driver.hpp"

namespace {

hicma::ExperimentResult run(ce::BackendKind kind,
                            const std::function<void(hicma::ExperimentConfig&)>&
                                tweak) {
  hicma::ExperimentConfig cfg;
  cfg.nodes = 16;
  cfg.backend = kind;
  cfg.tlr.mode = hicma::TlrOptions::Mode::Model;
  cfg.tlr.n = 360000;
  cfg.tlr.nb = 2400;
  tweak(cfg);
  return hicma::run_tlr_cholesky(cfg);
}

}  // namespace

int main() {
  {
    bench::Table t("Ablation: LCI progress thread (§5.3.1)",
                   {"variant", "TTS (s)", "e2e latency (ms)", "e2e p50 (ms)",
                    "e2e p99 (ms)", "workers"});
    for (const bool pt : {true, false}) {
      const auto r = run(ce::BackendKind::Lci,
                         [&](hicma::ExperimentConfig& cfg) {
                           cfg.ce.progress_thread = pt;
                         });
      t.add_row({pt ? "dedicated progress thread" : "coupled (comm thread)",
                 bench::fmt(r.tts_s),
                 bench::fmt(r.latency.e2e_mean_ns() / 1e6),
                 bench::fmt(r.latency.e2e_p50_ns() / 1e6),
                 bench::fmt(r.latency.e2e_p99_ns() / 1e6),
                 std::to_string(pt ? 126 : 127)});
    }
  }
  {
    // Eager put data must fit the Buffered protocol (<= 12 KiB); HiCMA's
    // factor messages are larger (min rank ~7 at tile 1200 => >= 67 KiB),
    // so this optimization is exercised on the fine-grained ping-pong
    // benchmark instead (8 KiB fragments).
    // Note: steady-state throughput is pipeline-rate bound, so the rows
    // typically tie; the optimization's per-put latency saving (skipping
    // the rendezvous round-trip) is demonstrated by the CE unit test
    // CeLciBackend.EagerPutRidesHandshake and subsumed by the native-put
    // ablation above.
    bench::Table t("Ablation: LCI eager put data in handshake (§5.3.3)",
                   {"eager_put_max", "bandwidth (Gbit/s)", "fragment"});
    for (const std::size_t limit : {std::size_t{0}, std::size_t{8192}}) {
      bench::PingPongOptions opts;
      opts.fragment_bytes = 8 << 10;
      opts.total_bytes = 64ull << 20;
      opts.iterations = 4;
      ce::CeConfig ce_cfg;
      ce_cfg.eager_put_max = limit;
      const auto r = bench::run_pingpong(ce::BackendKind::Lci, opts,
                                         net::expanse_config(), ce_cfg);
      t.add_row({std::to_string(limit), bench::fmt(r.gbit_per_s, 1),
                 bench::human_bytes(opts.fragment_bytes)});
    }
  }
  {
    bench::Table t(
        "Ablation: LCI native one-sided put (§7 future work)",
        {"variant", "TTS (s)", "e2e latency (ms)", "wire messages"});
    for (const bool native : {false, true}) {
      const auto r = run(ce::BackendKind::Lci,
                         [&](hicma::ExperimentConfig& cfg) {
                           cfg.ce.native_put = native;
                         });
      t.add_row({native ? "native put (1 msg)" : "emulated (hs+rndv)",
                 bench::fmt(r.tts_s),
                 bench::fmt(r.latency.e2e_mean_ns() / 1e6),
                 std::to_string(r.fabric_messages)});
    }
  }
  {
    bench::Table t("Ablation: MPI concurrent-transfer cap (§4.2.2)",
                   {"cap", "TTS (s)", "e2e latency (ms)", "e2e p99 (ms)",
                    "deferred puts", "dynamic recvs"});
    for (const int cap : {5, 30, 120, 100000}) {
      const auto r = run(ce::BackendKind::Mpi,
                         [&](hicma::ExperimentConfig& cfg) {
                           cfg.ce.max_concurrent_transfers = cap;
                         });
      t.add_row({std::to_string(cap), bench::fmt(r.tts_s),
                 bench::fmt(r.latency.e2e_mean_ns() / 1e6),
                 bench::fmt(r.latency.e2e_p99_ns() / 1e6),
                 std::to_string(r.ce_stats.puts_deferred),
                 std::to_string(r.ce_stats.recvs_dynamic)});
    }
  }
  {
    bench::Table t("Ablation: ACTIVATE aggregation (§4.3)",
                   {"batch bytes", "TTS (s)", "activate AMs",
                    "activation records"});
    for (const std::size_t batch : {std::size_t{96}, std::size_t{3072},
                                    std::size_t{12288}}) {
      const auto r = run(ce::BackendKind::Lci,
                         [&](hicma::ExperimentConfig& cfg) {
                           cfg.rt.am_batch_bytes = batch;
                         });
      t.add_row({std::to_string(batch), bench::fmt(r.tts_s),
                 std::to_string(r.runtime_stats.activate_ams),
                 std::to_string(r.runtime_stats.activations_sent)});
    }
  }
  {
    // End-to-end reliability sublayer (ce/reliable) overhead on a
    // fault-free fabric: the fig. 2a ping-pong with the sublayer off vs
    // on at fault rate 0.  The sequence/CRC fields ride the fixed-size
    // wire header, so the only cost is the 32-byte ACK per data message.
    bench::Table t("Ablation: reliability-sublayer overhead at fault rate 0",
                   {"backend", "fragment", "off (Gbit/s)", "on (Gbit/s)",
                    "delta (%)"});
    for (const auto kind : {ce::BackendKind::Mpi, ce::BackendKind::Lci}) {
      for (const std::size_t frag :
           {std::size_t{8} << 10, std::size_t{64} << 10,
            std::size_t{1} << 20}) {
        bench::PingPongOptions opts;
        opts.fragment_bytes = frag;
        opts.total_bytes = 64ull << 20;
        opts.iterations = 4;
        const auto bw = [&](bool reliable) {
          ce::CeConfig ce_cfg;
          ce_cfg.reliable.enabled = reliable;
          return bench::run_pingpong(kind, opts, net::expanse_config(),
                                     ce_cfg)
              .gbit_per_s;
        };
        const double off = bw(false);
        const double on = bw(true);
        t.add_row({kind == ce::BackendKind::Mpi ? "MPI" : "LCI",
                   bench::human_bytes(frag), bench::fmt(off, 1),
                   bench::fmt(on, 1),
                   bench::fmt((off - on) / off * 100.0, 2)});
      }
    }
  }
  return 0;
}
