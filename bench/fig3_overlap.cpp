// Figure 3: computation/communication overlap with GEMM-like intensity.
//
// Each PINGPONG task executes sqrt(M/8) FMA per 8 bytes of its M-byte
// fragment (no Sync, so rounds pipeline).  Reported: achieved FLOP rate
// for both backends, plus the two model curves from the paper:
//   Roofline   — perfect overlap:   min(task-parallelism cap, network cap)
//   No Overlap — strict alternation: flops / (compute time + comm time)
#include <cmath>
#include <vector>

#include "bench_util/harness.hpp"

int main() {
  const auto reps = bench::Reps::from_env();
  constexpr double kCoreGflops = 40.0;  // GEMM-like FMA rate per core
  constexpr int kWorkers = 127, kNodes = 2, kStreams = 2;

  bench::Table table(
      "Fig 3: overlap benchmark, GEMM-like intensity (GFLOP/s)",
      {"granularity", "LCI", "Open MPI", "No Overlap", "Roofline",
       "LCI p99 lat (us)", "Open MPI p99 lat (us)"});

  for (std::size_t size = 16 << 10; size <= (8u << 20); size *= 2) {
    bench::PingPongOptions opts;
    opts.fragment_bytes = size;
    opts.streams = kStreams;
    opts.iterations = 4;
    opts.sync = false;
    opts.fma_per_8bytes = std::sqrt(static_cast<double>(size) / 8.0);
    opts.core_gflops = kCoreGflops;

    const auto lci_res =
        bench::run_pingpong_series(reps, ce::BackendKind::Lci, opts);
    const auto mpi_res =
        bench::run_pingpong_series(reps, ce::BackendKind::Mpi, opts);
    const double lci = lci_res.gflop_per_s;
    const double mpi = mpi_res.gflop_per_s;

    // Model curves.
    const double frag_flops =
        2.0 * opts.fma_per_8bytes * (static_cast<double>(size) / 8.0);
    const int window = opts.window();
    const double concurrent_tasks =
        std::min(window * kStreams, kWorkers * kNodes);
    const double compute_cap = concurrent_tasks * kCoreGflops * 1e9;
    const double link_Bps = 12.5e9;  // per direction
    const double net_cap =
        2.0 * link_Bps * frag_flops / static_cast<double>(size);
    const double roofline = std::min(compute_cap, net_cap);
    const double round_flops =
        frag_flops * window * kStreams;
    const double t_comp = round_flops / compute_cap;
    const double t_comm = static_cast<double>(opts.total_bytes) *
                          kStreams / (2.0 * link_Bps);
    const double no_overlap = round_flops / (t_comp + t_comm);

    // run_pingpong already reports GFLOP/s; the model curves are flops/s.
    table.add_row({bench::human_bytes(size), bench::fmt(lci, 1),
                   bench::fmt(mpi, 1), bench::fmt(no_overlap / 1e9, 1),
                   bench::fmt(roofline / 1e9, 1),
                   bench::fmt(lci_res.latency.e2e_p99_ns() / 1e3, 1),
                   bench::fmt(mpi_res.latency.e2e_p99_ns() / 1e3, 1)});
  }
  return 0;
}
