// Crash-recovery overhead sweep: the fig5 fingerprint problem (N = 36,000
// TLR Cholesky, 3,000-wide tiles) run on 8-32 nodes with the full
// crash-tolerance stack — failure detector, reliable dead-peer fast-fail,
// and lineage re-execution — while k in {0, 1, 2, 4} fail-stop crashes
// land at evenly spaced fractions of the clean makespan.
//
// Per (nodes, backend) the sweep emits a tolerance-off baseline row, a
// tolerance-on-no-crash row (the steady-state tax of heartbeats plus
// lineage tracking), and one row per crash count with the recovery
// overhead, re-execution counts, and failure-detection latency.  On 8
// nodes the tolerance-off baseline is additionally checked against the
// pinned fig5 fingerprints — recovery work must never perturb the
// fault-free schedule — and the binary exits non-zero on drift.
// Emits BENCH_recovery.json.
//
//   fig_recovery [--smoke] [--out FILE]
//
// --smoke shrinks the sweep (8 nodes, k <= 2) so CI can validate the
// schema and the fingerprints in seconds; timings in smoke are real data
// here because the problem is identical — only coverage shrinks.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util/harness.hpp"
#include "des/time.hpp"
#include "hicma/driver.hpp"

namespace {

struct RunSpec {
  int nodes;
  ce::BackendKind backend;
  bool ft;  ///< crash-tolerance stack (FD + reliable + lineage) enabled
  int k;    ///< fail-stop crashes injected
};

struct RunResult {
  RunSpec spec;
  bool ok = false;
  double tts_s = 0;
  double overhead = 0;  ///< tts / same-config clean (ft on, k = 0) tts - 1
  std::uint64_t reexecuted = 0;
  std::uint64_t reannounces = 0;
  std::uint64_t deaths = 0;
  double detect_p99_ms = 0;  ///< failure-detection latency (ground truth)
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  double wall_s = 0;
};

// Distinct victims, never rank 0, spread over the machine (matches the
// crash-soak integration test so results cross-check).
constexpr int kVictims[] = {1, 3, 5, 6};

RunResult run_one(const RunSpec& spec, int n, int nb, des::Duration clean_ns,
                  double clean_tts_s) {
  hicma::ExperimentConfig cfg;
  cfg.nodes = spec.nodes;
  cfg.backend = spec.backend;
  cfg.tlr.mode = hicma::TlrOptions::Mode::Model;
  cfg.tlr.n = n;
  cfg.tlr.nb = nb;
  if (spec.ft) {
    cfg.rt.ft.enabled = true;
    cfg.ce.fd.enabled = true;
    cfg.ce.reliable.enabled = true;
  }
  for (int i = 0; i < spec.k; ++i) {
    // Crash times at fractions (i+1)/(k+1) of the clean makespan: every
    // crash lands while work is provably still in flight.
    cfg.fabric.faults.crashes.push_back(
        net::CrashEvent{kVictims[i], clean_ns * (i + 1) / (spec.k + 1), 0});
  }
  const auto t0 = std::chrono::steady_clock::now();
  const auto res = hicma::run_tlr_cholesky(cfg);
  const auto t1 = std::chrono::steady_clock::now();
  bench::metrics_accumulator().merge(res.metrics);

  RunResult r;
  r.spec = spec;
  r.ok = res.run_status == amt::RunStatus::Ok;
  r.tts_s = res.tts_s;
  r.overhead = clean_tts_s > 0 ? res.tts_s / clean_tts_s - 1.0 : 0.0;
  r.reexecuted = res.runtime_stats.tasks_reexecuted;
  r.reannounces = res.runtime_stats.reannounces;
  const obs::Counter* dead = res.metrics.find_counter("ce.fd.dead");
  r.deaths = dead ? dead->value() : 0;
  const obs::Histogram* det = res.metrics.find_histogram("ce.fd.detect_ns");
  r.detect_p99_ms = det ? det->p99() / 1e6 : 0.0;
  r.msgs = res.fabric_messages;
  r.bytes = res.fabric_bytes;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

const char* backend_key(ce::BackendKind k) {
  return k == ce::BackendKind::Lci ? "lci" : "mpi";
}

// Pinned 8-node fingerprints from tests/integration/fingerprint_test.cpp:
// the tolerance-off baseline must reproduce them bit-for-bit, proving the
// recovery layer costs the fault-free path nothing.
bool check_fingerprint(ce::BackendKind backend, const RunResult& r) {
  struct Pin {
    ce::BackendKind backend;
    double tts_s;
    std::uint64_t msgs;
    std::uint64_t bytes;
  };
  static constexpr Pin kPins[] = {
      {ce::BackendKind::Lci, 2.5041015840000003, 2674, 1145289249},
      {ce::BackendKind::Mpi, 2.5595929630000001, 2671, 1145289051},
  };
  for (const Pin& p : kPins) {
    if (p.backend != backend) continue;
    if (r.tts_s == p.tts_s && r.msgs == p.msgs && r.bytes == p.bytes) {
      std::printf("fingerprint_ok backend=%s\n", backend_key(backend));
      return true;
    }
    std::fprintf(stderr,
                 "fingerprint MISMATCH backend=%s: tts %.17g (want %.17g) "
                 "msgs %llu (want %llu) bytes %llu (want %llu)\n",
                 backend_key(backend), r.tts_s, p.tts_s,
                 static_cast<unsigned long long>(r.msgs),
                 static_cast<unsigned long long>(p.msgs),
                 static_cast<unsigned long long>(r.bytes),
                 static_cast<unsigned long long>(p.bytes));
    return false;
  }
  return true;  // no pin for this backend
}

void write_json(const std::string& path, bool smoke, int n, int nb,
                const std::vector<RunResult>& runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"fig_recovery\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"problem\": { \"n\": %d, \"nb\": %d },\n", n, nb);
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::fprintf(
        f,
        "    { \"nodes\": %d, \"backend\": \"%s\", \"ft\": %d, "
        "\"crashes\": %d, \"ok\": %d, \"tts_s\": %.17g, "
        "\"overhead\": %.17g, \"reexecuted\": %llu, \"reannounces\": %llu, "
        "\"deaths\": %llu, \"detect_p99_ms\": %.17g, \"msgs\": %llu, "
        "\"bytes\": %llu, \"wall_s\": %.3f }%s\n",
        r.spec.nodes, backend_key(r.spec.backend), r.spec.ft ? 1 : 0,
        r.spec.k, r.ok ? 1 : 0, r.tts_s, r.overhead,
        static_cast<unsigned long long>(r.reexecuted),
        static_cast<unsigned long long>(r.reannounces),
        static_cast<unsigned long long>(r.deaths), r.detect_p99_ms,
        static_cast<unsigned long long>(r.msgs),
        static_cast<unsigned long long>(r.bytes), r.wall_s,
        i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu runs)\n", path.c_str(), runs.size());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_recovery.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  // The fig5 fingerprint problem, fixed across the whole sweep so every
  // row is comparable and the 8-node baseline is fingerprint-checkable.
  const int n = 36000;
  const int nb = 3000;
  const std::vector<int> node_counts =
      smoke ? std::vector<int>{8} : std::vector<int>{8, 16, 32};
  const std::vector<int> crash_counts =
      smoke ? std::vector<int>{0, 1, 2} : std::vector<int>{0, 1, 2, 4};

  bool fingerprints_ok = true;
  std::vector<RunResult> runs;
  bench::Table tab("fig_recovery: tts (s) under k fail-stop crashes",
                   {"nodes", "backend", "baseline", "ft k=0", "k=1", "k=2",
                    "k=4"});
  for (const int nodes : node_counts) {
    for (const auto backend : {ce::BackendKind::Lci, ce::BackendKind::Mpi}) {
      std::vector<std::string> row = {std::to_string(nodes),
                                      backend_key(backend)};
      // Tolerance-off baseline: the run the fingerprints pin.
      const RunResult base =
          run_one({nodes, backend, /*ft=*/false, /*k=*/0}, n, nb, 0, 0);
      runs.push_back(base);
      row.push_back(bench::fmt(base.tts_s));
      if (nodes == 8 && !check_fingerprint(backend, base)) {
        fingerprints_ok = false;
      }
      // Tolerance-on clean run: calibrates crash times and measures the
      // steady-state cost of heartbeats + lineage tracking.
      const RunResult clean =
          run_one({nodes, backend, /*ft=*/true, /*k=*/0}, n, nb, 0, 0);
      runs.push_back(clean);
      row.push_back(bench::fmt(clean.tts_s));
      const auto clean_ns = static_cast<des::Duration>(clean.tts_s * 1e9);
      for (const int k : crash_counts) {
        if (k == 0) continue;
        const RunResult r = run_one({nodes, backend, /*ft=*/true, k}, n, nb,
                                    clean_ns, clean.tts_s);
        runs.push_back(r);
        row.push_back(bench::fmt(r.tts_s));
        std::printf(
            "nodes %3d %-3s k=%d: tts %.3f s (+%.1f%%), reexec %llu, "
            "reannounce %llu, detect p99 %.2f ms, ok=%d\n",
            nodes, backend_key(backend), k, r.tts_s, r.overhead * 100.0,
            static_cast<unsigned long long>(r.reexecuted),
            static_cast<unsigned long long>(r.reannounces), r.detect_p99_ms,
            r.ok ? 1 : 0);
        std::fflush(stdout);
      }
      while (row.size() < 7) row.push_back("-");
      tab.add_row(row);
    }
  }

  write_json(out, smoke, n, nb, runs);
  bench::export_metrics_env();
  if (!fingerprints_ok) {
    std::fprintf(stderr, "fault-free fingerprints drifted; failing\n");
    return 1;
  }
  for (const RunResult& r : runs) {
    if (!r.ok) {
      std::fprintf(stderr, "a sweep run did not complete Ok; failing\n");
      return 1;
    }
  }
  return 0;
}
