// Strong scaling past the paper's 32 nodes: the same N = 360,000 TLR
// Cholesky (fixed tile, 240 tile-columns) swept to 1024 nodes on both
// backends, with and without communication multithreading, and with the
// fabric either in the legacy uncongested fixed-latency model or the
// explicit-link Expanse fat-tree (7 x 25 GB/s uplinks per 56-node rack,
// ~4:1 oversubscribed — cross-rack traffic contends for uplinks).
//
// The sweep exists to answer two questions the paper's figures stop
// short of: where does the mlci/mmpi gap go as the task-per-node ratio
// collapses, and how much of the large-scale plateau is fabric
// congestion rather than runtime overhead.  Emits BENCH_scale.json.
//
//   fig5_scale [--smoke] [--out FILE] [--nodes N1,N2,...]
//
// --smoke shrinks the sweep (a small problem to 16 nodes) so CI can
// validate the schema in seconds; smoke timing numbers are not data.
// --nodes restricts the sweep to a subset of the node counts (partial
// regeneration: rows for other counts are simply not produced).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util/harness.hpp"
#include "hicma/driver.hpp"

namespace {

struct RunSpec {
  int nodes;
  ce::BackendKind backend;
  bool mt_activate;
  bool congestion;
};

struct RunResult {
  RunSpec spec;
  double tts_s = 0;
  double e2e_p50_ms = 0;
  double e2e_p99_ms = 0;
  double crit_ms = 0;
  double utilization = 0;
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  double wall_s = 0;
};

RunResult run_one(const RunSpec& spec, int n, int nb) {
  hicma::ExperimentConfig cfg;
  cfg.nodes = spec.nodes;
  cfg.backend = spec.backend;
  cfg.mt_activate = spec.mt_activate;
  cfg.tlr.mode = hicma::TlrOptions::Mode::Model;
  cfg.tlr.n = n;
  cfg.tlr.nb = nb;
  // Congestion on = the Expanse hybrid fat-tree with explicit per-link
  // queues; off = the legacy two-level fixed-latency model.  Both use
  // identical latency/bandwidth constants, so any delta is queueing.
  if (spec.congestion) cfg.fabric = net::expanse_fat_tree_config();
  const auto t0 = std::chrono::steady_clock::now();
  const auto res = hicma::run_tlr_cholesky(cfg);
  const auto t1 = std::chrono::steady_clock::now();
  bench::metrics_accumulator().merge(res.metrics);

  RunResult r;
  r.spec = spec;
  r.tts_s = res.tts_s;
  r.e2e_p50_ms = res.latency.e2e_p50_ns() / 1e6;
  r.e2e_p99_ms = res.latency.e2e_p99_ns() / 1e6;
  r.crit_ms = static_cast<double>(res.runtime_stats.crit.finish_g) / 1e6;
  r.utilization = res.worker_utilization;
  r.msgs = res.fabric_messages;
  r.bytes = res.fabric_bytes;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

const char* backend_key(ce::BackendKind k) {
  return k == ce::BackendKind::Lci ? "lci" : "mpi";
}

void write_json(const std::string& path, bool smoke, int n, int nb,
                int max_nodes, const std::vector<RunResult>& runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"fig5_scale\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"problem\": { \"n\": %d, \"nb\": %d },\n", n, nb);
  std::fprintf(f, "  \"max_nodes\": %d,\n", max_nodes);
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::fprintf(
        f,
        "    { \"nodes\": %d, \"backend\": \"%s\", \"mt_activate\": %d, "
        "\"congestion\": %d, \"tts_s\": %.17g, \"e2e_p50_ms\": %.17g, "
        "\"e2e_p99_ms\": %.17g, \"crit_ms\": %.17g, \"utilization\": %.17g, "
        "\"msgs\": %llu, \"bytes\": %llu, \"wall_s\": %.3f }%s\n",
        r.spec.nodes, backend_key(r.spec.backend),
        r.spec.mt_activate ? 1 : 0, r.spec.congestion ? 1 : 0, r.tts_s,
        r.e2e_p50_ms, r.e2e_p99_ms, r.crit_ms, r.utilization,
        static_cast<unsigned long long>(r.msgs),
        static_cast<unsigned long long>(r.bytes), r.wall_s,
        i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu runs)\n", path.c_str(), runs.size());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_scale.json";
  std::vector<int> only_nodes;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      for (const char* p = argv[++i]; *p != '\0';) {
        char* end = nullptr;
        const long v = std::strtol(p, &end, 10);
        if (end == p || v <= 0) {
          std::fprintf(stderr, "bad --nodes list: %s\n", argv[i]);
          return 2;
        }
        only_nodes.push_back(static_cast<int>(v));
        p = *end == ',' ? end + 1 : end;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out FILE] [--nodes N1,N2,...]\n",
                   argv[0]);
      return 2;
    }
  }

  // Fixed problem across all node counts — a true strong-scaling sweep.
  // nb = 1500 keeps 240 tile-columns, so everything from 512 nodes up
  // runs task-starved on purpose: that is the regime the sweep is
  // probing, and at 2048/4096 nodes the task-per-node ratio drops below
  // one tile-column per node — the far shoulder of the paper's fig 5.
  const int n = smoke ? 36000 : 360000;
  const int nb = smoke ? 3000 : 1500;
  std::vector<int> node_counts =
      smoke ? std::vector<int>{8, 16}
            : std::vector<int>{32, 128, 512, 1024, 2048, 4096};
  if (!only_nodes.empty()) node_counts = only_nodes;

  std::vector<RunResult> runs;
  bench::Table tts("fig5_scale: time-to-solution (s), N fixed",
                   {"nodes", "fabric", "LCI", "LCI+mt", "MPI", "MPI+mt"});
  for (const int nodes : node_counts) {
    for (const bool congestion : {false, true}) {
      std::vector<std::string> row = {std::to_string(nodes),
                                      congestion ? "fat-tree" : "flat"};
      for (const auto backend : {ce::BackendKind::Lci, ce::BackendKind::Mpi}) {
        for (const bool mt : {false, true}) {
          const RunSpec spec{nodes, backend, mt, congestion};
          const RunResult r = run_one(spec, n, nb);
          runs.push_back(r);
          row.push_back(bench::fmt(r.tts_s));
          std::printf(
              "nodes %4d %-3s mt=%d congestion=%d: tts %.3f s "
              "(p99 %.3f ms, util %.2f, wall %.1f s)\n",
              nodes, backend_key(backend), mt ? 1 : 0, congestion ? 1 : 0,
              r.tts_s, r.e2e_p99_ms, r.utilization, r.wall_s);
          std::fflush(stdout);
        }
      }
      tts.add_row(row);
    }
  }

  write_json(out, smoke, n, nb, node_counts.back(), runs);
  bench::export_metrics_env();
  return 0;
}
