// Figures 4a/4b: HiCMA TLR Cholesky on 16 nodes, N = 360,000, scaling the
// tile size; time-to-solution and mean end-to-end communication latency
// (ACTIVATE send at the multicast root -> data arrival), for both
// backends with and without communication multithreading (§6.4.3).
//
// Set AMTLCE_QUICK=1 to skip the most expensive tile sizes.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util/harness.hpp"
#include "hicma/driver.hpp"

namespace {

hicma::ExperimentResult run(int nb, ce::BackendKind kind, bool mt) {
  hicma::ExperimentConfig cfg;
  cfg.nodes = 16;
  cfg.backend = kind;
  cfg.mt_activate = mt;
  cfg.tlr.mode = hicma::TlrOptions::Mode::Model;
  cfg.tlr.n = 360000;
  cfg.tlr.nb = nb;
  auto res = hicma::run_tlr_cholesky(cfg);
  bench::metrics_accumulator().merge(res.metrics);
  return res;
}

/// One latency-stage row: the seven telescoping e2e stages, their sum,
/// and the e2e mean the sum must reproduce (all ms).
std::vector<std::string> stage_row(int nb, const char* config,
                                   const hicma::ExperimentResult& r) {
  std::vector<std::string> row = {std::to_string(nb), config};
  for (int s = 0; s < amt::kE2eStages; ++s) {
    row.push_back(bench::fmt(
        r.runtime_stats.stages.h[static_cast<std::size_t>(s)].mean() / 1e6,
        3));
  }
  row.push_back(
      bench::fmt(r.runtime_stats.stages.e2e_stage_mean_sum_ns() / 1e6, 3));
  row.push_back(bench::fmt(r.latency.e2e_mean_ns() / 1e6, 3));
  return row;
}

}  // namespace

int main() {
  const bool quick = std::getenv("AMTLCE_QUICK") != nullptr;
  std::vector<int> tiles = {1200, 1500, 1800, 2400, 3000, 3600, 4500, 6000};
  if (quick) tiles = {1800, 2400, 3000, 4500, 6000};

  bench::Table tts("Fig 4a: TLR Cholesky time-to-solution, 16 nodes (s)",
                   {"tile", "LCI", "Open MPI", "LCI (MT)", "Open MPI (MT)"});
  bench::Table lat(
      "Fig 4b: end-to-end communication latency, 16 nodes (ms)",
      {"tile", "LCI", "Open MPI", "LCI (MT)", "Open MPI (MT)"});
  bench::Table hop("Fig 4b aux: per-hop multicast latency, 16 nodes (ms)",
                   {"tile", "LCI", "Open MPI", "LCI (MT)", "Open MPI (MT)"});
  bench::Table pct(
      "Fig 4b aux: e2e latency percentiles, 16 nodes (ms)",
      {"tile", "LCI p50", "LCI p99", "Open MPI p50", "Open MPI p99",
       "LCI (MT) p50", "LCI (MT) p99", "Open MPI (MT) p50",
       "Open MPI (MT) p99"});
  std::vector<std::string> stage_cols = {"tile", "config"};
  for (int s = 0; s < amt::kE2eStages; ++s) {
    stage_cols.push_back(amt::kStageNames[static_cast<std::size_t>(s)]);
  }
  stage_cols.push_back("sum");
  stage_cols.push_back("e2e");
  bench::Table stages(
      "Fig 4b aux: e2e latency-stage means, 16 nodes (ms)", stage_cols);

  double lci_1200 = 0, lci_mt_1200 = 0, lci_2400 = 0, lci_mt_2400 = 0;
  for (const int nb : tiles) {
    const auto lci = run(nb, ce::BackendKind::Lci, false);
    const auto mpi = run(nb, ce::BackendKind::Mpi, false);
    const auto lci_mt = run(nb, ce::BackendKind::Lci, true);
    const auto mpi_mt = run(nb, ce::BackendKind::Mpi, true);
    tts.add_row({std::to_string(nb), bench::fmt(lci.tts_s),
                 bench::fmt(mpi.tts_s), bench::fmt(lci_mt.tts_s),
                 bench::fmt(mpi_mt.tts_s)});
    lat.add_row({std::to_string(nb),
                 bench::fmt(lci.latency.e2e_mean_ns() / 1e6),
                 bench::fmt(mpi.latency.e2e_mean_ns() / 1e6),
                 bench::fmt(lci_mt.latency.e2e_mean_ns() / 1e6),
                 bench::fmt(mpi_mt.latency.e2e_mean_ns() / 1e6)});
    hop.add_row({std::to_string(nb),
                 bench::fmt(lci.latency.hop_mean_ns() / 1e6),
                 bench::fmt(mpi.latency.hop_mean_ns() / 1e6),
                 bench::fmt(lci_mt.latency.hop_mean_ns() / 1e6),
                 bench::fmt(mpi_mt.latency.hop_mean_ns() / 1e6)});
    pct.add_row({std::to_string(nb),
                 bench::fmt(lci.latency.e2e_p50_ns() / 1e6),
                 bench::fmt(lci.latency.e2e_p99_ns() / 1e6),
                 bench::fmt(mpi.latency.e2e_p50_ns() / 1e6),
                 bench::fmt(mpi.latency.e2e_p99_ns() / 1e6),
                 bench::fmt(lci_mt.latency.e2e_p50_ns() / 1e6),
                 bench::fmt(lci_mt.latency.e2e_p99_ns() / 1e6),
                 bench::fmt(mpi_mt.latency.e2e_p50_ns() / 1e6),
                 bench::fmt(mpi_mt.latency.e2e_p99_ns() / 1e6)});
    stages.add_row(stage_row(nb, "LCI", lci));
    stages.add_row(stage_row(nb, "Open MPI", mpi));
    stages.add_row(stage_row(nb, "LCI (MT)", lci_mt));
    stages.add_row(stage_row(nb, "Open MPI (MT)", mpi_mt));
    if (nb == 1200) {
      lci_1200 = lci.tts_s;
      lci_mt_1200 = lci_mt.tts_s;
    }
    if (nb == 2400) {
      lci_2400 = lci.tts_s;
      lci_mt_2400 = lci_mt.tts_s;
    }
    std::printf("tile %d done\n", nb);
    std::printf("  LCI      %s\n",
                bench::critical_path_line(lci.runtime_stats.crit).c_str());
    std::printf("  LCI (MT) %s\n",
                bench::critical_path_line(lci_mt.runtime_stats.crit).c_str());
    std::fflush(stdout);
  }

  if (lci_1200 > 0) {
    std::printf(
        "\n-- §6.4.3: LCI communication multithreading speedup --\n"
        "tile 1200: %.3f s -> %.3f s (%.1f%%; paper: 16.384 -> 14.839, "
        "10%%)\n",
        lci_1200, lci_mt_1200, 100.0 * (1.0 - lci_mt_1200 / lci_1200));
  }
  if (lci_2400 > 0) {
    std::printf(
        "tile 2400: %.3f s -> %.3f s (%.1f%%; paper: 3%% to 10.516 s)\n",
        lci_2400, lci_mt_2400, 100.0 * (1.0 - lci_mt_2400 / lci_2400));
  }
  bench::export_metrics_env();
  return 0;
}
