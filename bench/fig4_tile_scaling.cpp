// Figures 4a/4b: HiCMA TLR Cholesky on 16 nodes, N = 360,000, scaling the
// tile size; time-to-solution and mean end-to-end communication latency
// (ACTIVATE send at the multicast root -> data arrival), for both
// backends with and without communication multithreading (§6.4.3).
//
// Set AMTLCE_QUICK=1 to skip the most expensive tile sizes.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util/harness.hpp"
#include "hicma/driver.hpp"

namespace {

hicma::ExperimentResult run(int nb, ce::BackendKind kind, bool mt) {
  hicma::ExperimentConfig cfg;
  cfg.nodes = 16;
  cfg.backend = kind;
  cfg.mt_activate = mt;
  cfg.tlr.mode = hicma::TlrOptions::Mode::Model;
  cfg.tlr.n = 360000;
  cfg.tlr.nb = nb;
  return hicma::run_tlr_cholesky(cfg);
}

}  // namespace

int main() {
  const bool quick = std::getenv("AMTLCE_QUICK") != nullptr;
  std::vector<int> tiles = {1200, 1500, 1800, 2400, 3000, 3600, 4500, 6000};
  if (quick) tiles = {1800, 2400, 3000, 4500, 6000};

  bench::Table tts("Fig 4a: TLR Cholesky time-to-solution, 16 nodes (s)",
                   {"tile", "LCI", "Open MPI", "LCI (MT)", "Open MPI (MT)"});
  bench::Table lat(
      "Fig 4b: end-to-end communication latency, 16 nodes (ms)",
      {"tile", "LCI", "Open MPI", "LCI (MT)", "Open MPI (MT)"});
  bench::Table hop("Fig 4b aux: per-hop multicast latency, 16 nodes (ms)",
                   {"tile", "LCI", "Open MPI", "LCI (MT)", "Open MPI (MT)"});
  bench::Table pct(
      "Fig 4b aux: e2e latency percentiles, 16 nodes (ms)",
      {"tile", "LCI p50", "LCI p99", "Open MPI p50", "Open MPI p99",
       "LCI (MT) p50", "LCI (MT) p99", "Open MPI (MT) p50",
       "Open MPI (MT) p99"});

  double lci_1200 = 0, lci_mt_1200 = 0, lci_2400 = 0, lci_mt_2400 = 0;
  for (const int nb : tiles) {
    const auto lci = run(nb, ce::BackendKind::Lci, false);
    const auto mpi = run(nb, ce::BackendKind::Mpi, false);
    const auto lci_mt = run(nb, ce::BackendKind::Lci, true);
    const auto mpi_mt = run(nb, ce::BackendKind::Mpi, true);
    tts.add_row({std::to_string(nb), bench::fmt(lci.tts_s),
                 bench::fmt(mpi.tts_s), bench::fmt(lci_mt.tts_s),
                 bench::fmt(mpi_mt.tts_s)});
    lat.add_row({std::to_string(nb),
                 bench::fmt(lci.latency.e2e_mean_ns() / 1e6),
                 bench::fmt(mpi.latency.e2e_mean_ns() / 1e6),
                 bench::fmt(lci_mt.latency.e2e_mean_ns() / 1e6),
                 bench::fmt(mpi_mt.latency.e2e_mean_ns() / 1e6)});
    hop.add_row({std::to_string(nb),
                 bench::fmt(lci.latency.hop_mean_ns() / 1e6),
                 bench::fmt(mpi.latency.hop_mean_ns() / 1e6),
                 bench::fmt(lci_mt.latency.hop_mean_ns() / 1e6),
                 bench::fmt(mpi_mt.latency.hop_mean_ns() / 1e6)});
    pct.add_row({std::to_string(nb),
                 bench::fmt(lci.latency.e2e_p50_ns() / 1e6),
                 bench::fmt(lci.latency.e2e_p99_ns() / 1e6),
                 bench::fmt(mpi.latency.e2e_p50_ns() / 1e6),
                 bench::fmt(mpi.latency.e2e_p99_ns() / 1e6),
                 bench::fmt(lci_mt.latency.e2e_p50_ns() / 1e6),
                 bench::fmt(lci_mt.latency.e2e_p99_ns() / 1e6),
                 bench::fmt(mpi_mt.latency.e2e_p50_ns() / 1e6),
                 bench::fmt(mpi_mt.latency.e2e_p99_ns() / 1e6)});
    if (nb == 1200) {
      lci_1200 = lci.tts_s;
      lci_mt_1200 = lci_mt.tts_s;
    }
    if (nb == 2400) {
      lci_2400 = lci.tts_s;
      lci_mt_2400 = lci_mt.tts_s;
    }
    std::printf("tile %d done\n", nb);
    std::fflush(stdout);
  }

  if (lci_1200 > 0) {
    std::printf(
        "\n-- §6.4.3: LCI communication multithreading speedup --\n"
        "tile 1200: %.3f s -> %.3f s (%.1f%%; paper: 16.384 -> 14.839, "
        "10%%)\n",
        lci_1200, lci_mt_1200, 100.0 * (1.0 - lci_mt_1200 / lci_1200));
  }
  if (lci_2400 > 0) {
    std::printf(
        "tile 2400: %.3f s -> %.3f s (%.1f%%; paper: 3%% to 10.516 s)\n",
        lci_2400, lci_mt_2400, 100.0 * (1.0 - lci_mt_2400 / lci_2400));
  }
  return 0;
}
