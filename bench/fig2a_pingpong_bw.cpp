// Figure 2a: one-stream task-based ping-pong bandwidth vs granularity.
//
// Fragment size sweeps 8 KiB .. 8 MiB with the window scaled to keep
// 256 MiB of data per iteration; series: LCI backend, Open MPI backend,
// and the NetPIPE-style raw-fabric ceiling.  The §6.2 text statistics
// (granularity where each backend crosses ~62.5 and ~45 Gbit/s) are
// printed below the table.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util/harness.hpp"

int main() {
  const auto reps = bench::Reps::from_env();
  std::vector<std::size_t> sizes;
  for (std::size_t s = 8 << 10; s <= (8u << 20); s *= 2) sizes.push_back(s);

  bench::Table table("Fig 2a: ping-pong bandwidth, one stream (Gbit/s)",
                     {"granularity", "LCI", "Open MPI", "NetPIPE",
                      "LCI p50 (us)", "LCI p99 (us)", "Open MPI p50 (us)",
                      "Open MPI p99 (us)"});

  struct Point {
    std::size_t size;
    double lci, mpi;
  };
  std::vector<Point> points;

  for (const auto size : sizes) {
    bench::PingPongOptions opts;
    opts.fragment_bytes = size;
    opts.streams = 1;
    opts.iterations = 4;
    const auto lci =
        bench::run_pingpong_series(reps, ce::BackendKind::Lci, opts);
    const auto mpi =
        bench::run_pingpong_series(reps, ce::BackendKind::Mpi, opts);
    const double raw = bench::netpipe_gbit(size);
    points.push_back({size, lci.gbit_per_s, mpi.gbit_per_s});
    table.add_row({bench::human_bytes(size), bench::fmt(lci.gbit_per_s, 1),
                   bench::fmt(mpi.gbit_per_s, 1), bench::fmt(raw, 1),
                   bench::fmt(lci.latency.e2e_p50_ns() / 1e3, 1),
                   bench::fmt(lci.latency.e2e_p99_ns() / 1e3, 1),
                   bench::fmt(mpi.latency.e2e_p50_ns() / 1e3, 1),
                   bench::fmt(mpi.latency.e2e_p99_ns() / 1e3, 1)});
  }

  // §6.2 text: granularity at which each backend falls below a bandwidth
  // level (linear interpolation on the log-size axis).
  auto crossing = [&](bool lci, double level) -> double {
    for (std::size_t i = points.size(); i-- > 1;) {
      const double hi = lci ? points[i].lci : points[i].mpi;
      const double lo = lci ? points[i - 1].lci : points[i - 1].mpi;
      if (hi >= level && lo < level) {
        const double f = (level - lo) / (hi - lo);
        return static_cast<double>(points[i - 1].size) *
               std::pow(2.0, f);
      }
    }
    return 0;
  };
  std::printf("\n-- §6.2 efficiency-crossing statistics --\n");
  for (const double level : {62.5, 45.0}) {
    const double m = crossing(false, level);
    const double l = crossing(true, level);
    if (m > 0 && l > 0) {
      std::printf(
          "%.1f Gbit/s crossing: Open MPI at %.1f KiB, LCI at %.1f KiB "
          "=> LCI sustains tasks %.2fx smaller\n",
          level, m / 1024, l / 1024, m / l);
    }
  }
  return 0;
}
