// The pre-overhaul des::EventQueue, preserved verbatim (modulo namespace)
// as the perf_core regression baseline: a binary heap of (time, seq, id)
// entries over an unordered_map<EventId, std::function> callback store.
// Every schedule pays a map-node allocation (plus a std::function cell
// once the capture outgrows its ~16-byte SSO); every pop pays hash
// lookups and an erase.
//
// Deliberately implemented in its own translation unit
// (perf_core_baseline.cpp), exactly as the original event_queue.cpp was:
// the pre-overhaul queue ran behind a call boundary, and inlining it into
// the benchmark loop would flatter it by ~40% relative to the artifact
// that actually shipped.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "des/time.hpp"

namespace baseline {

using EventId = std::uint64_t;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventId schedule(des::Time t, Callback fn);
  bool cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }
  std::size_t heap_size() const { return heap_.size(); }

  des::Time next_time();

  struct Fired {
    des::Time time;
    EventId id;
    Callback fn;
  };
  Fired pop();

 private:
  struct Entry {
    des::Time time;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    EventId id;
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  void drop_dead_front();
  void maybe_compact();

  std::vector<Entry> heap_;  // min-heap via std::greater
  std::unordered_map<EventId, Callback> callbacks_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace baseline
