// Cross-backend tests of the PaRSEC communication-engine API: every
// behavioural test runs against both the MPI backend (§4.2) and the LCI
// backend (§5.3) via a parameterized fixture, plus backend-specific tests
// for the mechanisms unique to each design.
#include "ce/comm_engine.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "ce/lci_backend.hpp"
#include "ce/mpi_backend.hpp"
#include "ce/world.hpp"
#include "des/engine.hpp"
#include "des/poll_loop.hpp"
#include "des/sim_thread.hpp"
#include "net/fabric.hpp"

namespace {

using ce::BackendKind;
using ce::CeConfig;
using ce::CommEngine;
using ce::CommWorld;
using ce::MemReg;
using ce::Tag;

constexpr Tag kActivate = 1;
constexpr Tag kGetData = 2;
constexpr Tag kPutDone = 3;

/// Test world: a fabric, a CommWorld, and one "communication thread"
/// (SimThread + PollLoop over progress()) per node, wired to the engine
/// wake callbacks — the same shape the AMT runtime uses.
struct CeWorld {
  des::Engine eng;
  net::Fabric fab;
  CommWorld world;
  std::vector<std::unique_ptr<des::SimThread>> threads;
  std::vector<std::unique_ptr<des::PollLoop>> loops;

  CeWorld(int nodes, BackendKind kind, CeConfig cfg = {},
          mmpi::Config mpi_cfg = {}, mlci::Config lci_cfg = {})
      : fab(eng, nodes), world(fab, kind, cfg, mpi_cfg, lci_cfg) {
    for (int n = 0; n < nodes; ++n) {
      threads.push_back(std::make_unique<des::SimThread>(
          eng, "comm-" + std::to_string(n)));
      auto& engine = world.engine(n);
      loops.push_back(std::make_unique<des::PollLoop>(
          *threads.back(), 25, [&engine]() { return engine.progress() > 0; }));
      engine.set_wake_callback(
          [loop = loops.back().get()]() { loop->wake(); });
      loops.back()->start();
    }
  }

  ~CeWorld() {
    for (auto& l : loops) l->stop();
  }

  CommEngine& engine(int n) { return world.engine(n); }

  /// Nudges every comm loop (after driver-initiated sends) and runs the
  /// simulation until quiescent.
  void run() {
    for (auto& l : loops) l->wake();
    eng.run();
  }
};

class CeBackends : public ::testing::TestWithParam<BackendKind> {};

TEST_P(CeBackends, ActiveMessageDelivery) {
  CeWorld w(2, GetParam());
  std::string got;
  int got_src = -1;
  int cookie = 7;
  void* got_cookie = nullptr;
  w.engine(1).tag_reg(
      kActivate,
      [&](CommEngine&, Tag, const void* msg, std::size_t size, int src,
          void* cb_data) {
        got.assign(static_cast<const char*>(msg), size);
        got_src = src;
        got_cookie = cb_data;
      },
      &cookie, 256);
  w.engine(0).tag_reg(kActivate, [](auto&&...) {}, nullptr, 256);

  const std::string msg = "activate:task(3,4)";
  EXPECT_EQ(w.engine(0).send_am(kActivate, 1, msg.data(), msg.size()),
            ce::Status::Ok);
  w.run();
  EXPECT_EQ(got, msg);
  EXPECT_EQ(got_src, 0);
  EXPECT_EQ(got_cookie, &cookie);
  EXPECT_EQ(w.engine(0).stats().ams_sent, 1u);
  EXPECT_EQ(w.engine(1).stats().ams_delivered, 1u);
}

TEST_P(CeBackends, ManyAmsAllDelivered) {
  CeWorld w(2, GetParam());
  int count = 0;
  w.engine(1).tag_reg(
      kActivate,
      [&](CommEngine&, Tag, const void*, std::size_t, int, void*) {
        ++count;
      },
      nullptr, 64);
  w.engine(0).tag_reg(kActivate, [](auto&&...) {}, nullptr, 64);
  for (int i = 0; i < 100; ++i) {
    char body[16];
    std::snprintf(body, sizeof body, "am-%03d", i);
    w.engine(0).send_am(kActivate, 1, body, 8);
  }
  w.run();
  EXPECT_EQ(count, 100);
}

TEST_P(CeBackends, DistinctTagsRouteToDistinctCallbacks) {
  CeWorld w(2, GetParam());
  int activates = 0, getdatas = 0;
  w.engine(1).tag_reg(
      kActivate,
      [&](CommEngine&, Tag, const void*, std::size_t, int, void*) {
        ++activates;
      },
      nullptr, 64);
  w.engine(1).tag_reg(
      kGetData,
      [&](CommEngine&, Tag, const void*, std::size_t, int, void*) {
        ++getdatas;
      },
      nullptr, 64);
  w.engine(0).tag_reg(kActivate, [](auto&&...) {}, nullptr, 64);
  w.engine(0).tag_reg(kGetData, [](auto&&...) {}, nullptr, 64);
  w.engine(0).send_am(kActivate, 1, "a", 1);
  w.engine(0).send_am(kGetData, 1, "g", 1);
  w.engine(0).send_am(kActivate, 1, "a", 1);
  w.run();
  EXPECT_EQ(activates, 2);
  EXPECT_EQ(getdatas, 1);
}

TEST_P(CeBackends, PutMovesDataAndNotifiesBothSides) {
  CeWorld w(2, GetParam());
  std::vector<char> src(64 * 1024);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<char>(i * 17 + 3);
  }
  std::vector<char> dst(src.size() + 128, 0);

  bool local_done = false;
  std::string remote_info;
  int remote_src = -1;
  w.engine(1).tag_reg(
      kPutDone,
      [&](CommEngine&, Tag, const void* msg, std::size_t size, int from,
          void*) {
        remote_info.assign(static_cast<const char*>(msg), size);
        remote_src = from;
      },
      nullptr, 64);
  w.engine(0).tag_reg(kPutDone, [](auto&&...) {}, nullptr, 64);

  const MemReg lreg = w.engine(0).mem_reg(src.data(), src.size());
  const MemReg rreg{1, dst.data(), dst.size()};
  const char rinfo[] = "flow:A->B";
  int lcb_cookie = 0;
  w.engine(0).put(
      lreg, 0, rreg, 128, src.size(), 1,
      [&](CommEngine&, const MemReg&, std::ptrdiff_t, const MemReg&,
          std::ptrdiff_t, std::size_t size, int remote, void* cb) {
        local_done = true;
        EXPECT_EQ(size, src.size());
        EXPECT_EQ(remote, 1);
        EXPECT_EQ(cb, &lcb_cookie);
      },
      &lcb_cookie, kPutDone, rinfo, sizeof rinfo - 1);
  w.run();

  EXPECT_TRUE(local_done);
  EXPECT_EQ(remote_info, "flow:A->B");
  EXPECT_EQ(remote_src, 0);
  // Data landed at displacement 128.
  EXPECT_EQ(0, std::memcmp(dst.data() + 128, src.data(), src.size()));
  EXPECT_EQ(dst[0], 0);
  EXPECT_EQ(w.engine(0).stats().puts_completed_local, 1u);
  EXPECT_EQ(w.engine(1).stats().puts_completed_remote, 1u);
}

TEST_P(CeBackends, VirtualPut) {
  CeWorld w(2, GetParam());
  bool local_done = false, remote_done = false;
  w.engine(1).tag_reg(
      kPutDone,
      [&](CommEngine&, Tag, const void*, std::size_t, int, void*) {
        remote_done = true;
      },
      nullptr, 64);
  w.engine(0).tag_reg(kPutDone, [](auto&&...) {}, nullptr, 64);
  const MemReg lreg{0, nullptr, 1 << 22};
  const MemReg rreg{1, nullptr, 1 << 22};
  w.engine(0).put(
      lreg, 0, rreg, 0, 1 << 22, 1,
      [&](CommEngine&, const MemReg&, std::ptrdiff_t, const MemReg&,
          std::ptrdiff_t, std::size_t, int, void*) { local_done = true; },
      nullptr, kPutDone, "x", 1);
  w.run();
  EXPECT_TRUE(local_done);
  EXPECT_TRUE(remote_done);
}

TEST_P(CeBackends, ManyConcurrentPutsAllComplete) {
  CeWorld w(2, GetParam());
  constexpr int kPuts = 80;  // over the MPI backend's 30-transfer cap
  int remote_done = 0, local_done = 0;
  w.engine(1).tag_reg(
      kPutDone,
      [&](CommEngine&, Tag, const void*, std::size_t, int, void*) {
        ++remote_done;
      },
      nullptr, 64);
  w.engine(0).tag_reg(kPutDone, [](auto&&...) {}, nullptr, 64);
  const MemReg lreg{0, nullptr, 1 << 20};
  const MemReg rreg{1, nullptr, 1 << 20};
  for (int i = 0; i < kPuts; ++i) {
    w.engine(0).put(
        lreg, 0, rreg, 0, 256 * 1024, 1,
        [&](CommEngine&, const MemReg&, std::ptrdiff_t, const MemReg&,
            std::ptrdiff_t, std::size_t, int, void*) { ++local_done; },
        nullptr, kPutDone, "d", 1);
  }
  w.run();
  EXPECT_EQ(local_done, kPuts);
  EXPECT_EQ(remote_done, kPuts);
}

TEST_P(CeBackends, BidirectionalTrafficQuiesces) {
  CeWorld w(4, GetParam());
  std::vector<int> received(4, 0);
  for (int n = 0; n < 4; ++n) {
    w.engine(n).tag_reg(
        kActivate,
        [&received, n](CommEngine&, Tag, const void*, std::size_t, int,
                       void*) { ++received[static_cast<std::size_t>(n)]; },
        nullptr, 64);
  }
  for (int src = 0; src < 4; ++src) {
    for (int dst = 0; dst < 4; ++dst) {
      if (src == dst) continue;
      w.engine(src).send_am(kActivate, dst, "ping", 4);
    }
  }
  w.run();
  for (int n = 0; n < 4; ++n) EXPECT_EQ(received[static_cast<std::size_t>(n)], 3);
  EXPECT_TRUE(w.world.all_idle());
}

TEST_P(CeBackends, ReentrantPutFromAmCallback) {
  // GET DATA pattern: an AM callback at the data owner starts the put.
  CeWorld w(2, GetParam());
  std::vector<char> payload(32 * 1024, 'q');
  std::vector<char> sink(payload.size());
  bool data_arrived = false;

  // Node 1 = data owner: on GET DATA, put to the requester.
  w.engine(1).tag_reg(
      kGetData,
      [&](CommEngine& eng, Tag, const void* msg, std::size_t, int src,
          void*) {
        MemReg lr = eng.mem_reg(payload.data(), payload.size());
        MemReg rr{};
        std::memcpy(&rr, msg, sizeof rr);
        eng.put(lr, 0, rr, 0, payload.size(), src, nullptr, nullptr,
                kPutDone, "done", 4);
      },
      nullptr, 64);
  w.engine(0).tag_reg(kGetData, [](auto&&...) {}, nullptr, 64);
  w.engine(0).tag_reg(
      kPutDone,
      [&](CommEngine&, Tag, const void*, std::size_t, int, void*) {
        data_arrived = true;
      },
      nullptr, 64);
  w.engine(1).tag_reg(kPutDone, [](auto&&...) {}, nullptr, 64);

  const MemReg sink_reg = w.engine(0).mem_reg(sink.data(), sink.size());
  w.engine(0).send_am(kGetData, 1, &sink_reg, sizeof sink_reg);
  w.run();
  EXPECT_TRUE(data_arrived);
  EXPECT_EQ(sink[1000], 'q');
}

INSTANTIATE_TEST_SUITE_P(Backends, CeBackends,
                         ::testing::Values(BackendKind::Mpi,
                                           BackendKind::Lci),
                         [](const auto& info) {
                           return info.param == BackendKind::Mpi ? "Mpi"
                                                                 : "Lci";
                         });

// --- MPI-backend-specific mechanisms ---------------------------------------

TEST(CeMpiBackend, TransferCapDefersPuts) {
  CeConfig cfg;
  cfg.max_concurrent_transfers = 4;
  CeWorld w(2, BackendKind::Mpi, cfg);
  int remote_done = 0;
  w.engine(1).tag_reg(
      kPutDone,
      [&](CommEngine&, Tag, const void*, std::size_t, int, void*) {
        ++remote_done;
      },
      nullptr, 64);
  w.engine(0).tag_reg(kPutDone, [](auto&&...) {}, nullptr, 64);
  const MemReg lreg{0, nullptr, 1 << 20};
  const MemReg rreg{1, nullptr, 1 << 20};
  constexpr int kPuts = 20;
  for (int i = 0; i < kPuts; ++i) {
    w.engine(0).put(lreg, 0, rreg, 0, 128 * 1024, 1, nullptr, nullptr,
                    kPutDone, "d", 1);
  }
  // The driver issued 20 puts back-to-back with a cap of 4: some must have
  // been deferred before any progress happened.
  EXPECT_GT(w.engine(0).stats().puts_deferred, 0u);
  w.run();
  EXPECT_EQ(remote_done, kPuts);
  EXPECT_TRUE(w.world.all_idle());
}

TEST(CeMpiBackend, DynamicRecvsPromotedInFifoOrder) {
  CeConfig cfg;
  cfg.max_concurrent_transfers = 2;
  CeWorld w(2, BackendKind::Mpi, cfg);
  std::vector<int> order;
  w.engine(1).tag_reg(
      kPutDone,
      [&](CommEngine&, Tag, const void* msg, std::size_t, int, void*) {
        int idx = 0;
        std::memcpy(&idx, msg, sizeof idx);
        order.push_back(idx);
      },
      nullptr, 64);
  w.engine(0).tag_reg(kPutDone, [](auto&&...) {}, nullptr, 64);
  const MemReg lreg{0, nullptr, 1 << 20};
  const MemReg rreg{1, nullptr, 1 << 20};
  for (int i = 0; i < 10; ++i) {
    w.engine(0).put(lreg, 0, rreg, 0, 64 * 1024, 1, nullptr, nullptr,
                    kPutDone, &i, sizeof i);
  }
  w.run();
  ASSERT_EQ(order.size(), 10u);
  // The target sees some receives land without array space; all must
  // still complete.  (Arrival order is not contractual, but with a single
  // pair and FIFO pipes it is in fact in-order here.)
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

// --- LCI-backend-specific mechanisms ---------------------------------------

TEST(CeLciBackend, EagerPutRidesHandshake) {
  CeConfig cfg;
  cfg.eager_put_max = 4096;
  CeWorld w(2, BackendKind::Lci, cfg);
  std::vector<char> src(2048, 'e');
  std::vector<char> dst(2048, 0);
  bool local_done = false;
  bool remote_done = false;
  w.engine(1).tag_reg(
      kPutDone,
      [&](CommEngine&, Tag, const void*, std::size_t, int, void*) {
        remote_done = true;
      },
      nullptr, 64);
  w.engine(0).tag_reg(kPutDone, [](auto&&...) {}, nullptr, 64);
  const MemReg lreg{0, src.data(), src.size()};
  const MemReg rreg{1, dst.data(), dst.size()};
  w.engine(0).put(
      lreg, 0, rreg, 0, src.size(), 1,
      [&](CommEngine&, const MemReg&, std::ptrdiff_t, const MemReg&,
          std::ptrdiff_t, std::size_t, int, void*) { local_done = true; },
      nullptr, kPutDone, "e", 1);
  // §5.3.3: eager puts complete locally at the call, before any progress.
  EXPECT_TRUE(local_done);
  EXPECT_EQ(w.engine(0).stats().eager_puts, 1u);
  w.run();
  EXPECT_TRUE(remote_done);
  EXPECT_EQ(dst[100], 'e');
}

TEST(CeLciBackend, EagerPutDisabledUsesDirect) {
  CeConfig cfg;
  cfg.eager_put_max = 0;
  CeWorld w(2, BackendKind::Lci, cfg);
  bool remote_done = false;
  w.engine(1).tag_reg(
      kPutDone,
      [&](CommEngine&, Tag, const void*, std::size_t, int, void*) {
        remote_done = true;
      },
      nullptr, 64);
  w.engine(0).tag_reg(kPutDone, [](auto&&...) {}, nullptr, 64);
  const MemReg lreg{0, nullptr, 4096};
  const MemReg rreg{1, nullptr, 4096};
  w.engine(0).put(lreg, 0, rreg, 0, 2048, 1, nullptr, nullptr, kPutDone,
                  "d", 1);
  w.run();
  EXPECT_TRUE(remote_done);
  EXPECT_EQ(w.engine(0).stats().eager_puts, 0u);
}

TEST(CeLciBackend, RecvRetryDelegatedToCommThread) {
  CeConfig cfg;
  cfg.eager_put_max = 0;
  mlci::Config lci_cfg;
  lci_cfg.direct_slots = 2;  // scarce hardware resources
  CeWorld w(2, BackendKind::Lci, cfg, {}, lci_cfg);
  int remote_done = 0;
  w.engine(1).tag_reg(
      kPutDone,
      [&](CommEngine&, Tag, const void*, std::size_t, int, void*) {
        ++remote_done;
      },
      nullptr, 64);
  w.engine(0).tag_reg(kPutDone, [](auto&&...) {}, nullptr, 64);
  const MemReg lreg{0, nullptr, 1 << 20};
  const MemReg rreg{1, nullptr, 1 << 20};
  constexpr int kPuts = 12;
  for (int i = 0; i < kPuts; ++i) {
    w.engine(0).put(lreg, 0, rreg, 0, 64 * 1024, 1, nullptr, nullptr,
                    kPutDone, "d", 1);
  }
  w.run();
  EXPECT_EQ(remote_done, kPuts);
  EXPECT_TRUE(w.world.all_idle());
}

TEST(CeLciBackend, WorksWithoutProgressThread) {
  CeConfig cfg;
  cfg.progress_thread = false;
  CeWorld w(2, BackendKind::Lci, cfg);
  int delivered = 0;
  w.engine(1).tag_reg(
      kActivate,
      [&](CommEngine&, Tag, const void*, std::size_t, int, void*) {
        ++delivered;
      },
      nullptr, 64);
  w.engine(0).tag_reg(kActivate, [](auto&&...) {}, nullptr, 64);
  for (int i = 0; i < 10; ++i) w.engine(0).send_am(kActivate, 1, "x", 1);
  w.run();
  EXPECT_EQ(delivered, 10);
}

TEST(CeLciBackend, ProgressThreadReducesAmLatencyUnderCallbackLoad) {
  // §4.3/§5.2: while the communication thread executes a long callback, a
  // backend whose progress is coupled to that thread cannot match incoming
  // messages.  The dedicated progress thread decouples them.
  auto measure = [](bool progress_thread) {
    CeConfig cfg;
    cfg.progress_thread = progress_thread;
    CeWorld w(2, BackendKind::Lci, cfg);
    des::Time last_arrival = 0;
    int count = 0;
    // The receiving callback is expensive (models ACTIVATE unpacking).
    w.engine(1).tag_reg(
        kActivate,
        [&](CommEngine&, Tag, const void*, std::size_t, int, void*) {
          des::charge_current(50 * des::kMicrosecond);
          ++count;
          last_arrival = w.eng.now();
        },
        nullptr, 64);
    w.engine(0).tag_reg(kActivate, [](auto&&...) {}, nullptr, 64);
    for (int i = 0; i < 20; ++i) w.engine(0).send_am(kActivate, 1, "x", 1);
    w.run();
    EXPECT_EQ(count, 20);
    return last_arrival;
  };
  const des::Time with_pt = measure(true);
  const des::Time without_pt = measure(false);
  // Both complete; the callbacks dominate either way, so the completion
  // times are close — the decoupling benefit shows in message *matching*
  // (exercised in the bandwidth benches).  Here we only require that the
  // progress-thread variant is not slower.
  EXPECT_LE(with_pt, without_pt);
}

}  // namespace

namespace {

// --- §7 future work: native one-sided put ----------------------------------

TEST(CeLciBackend, NativePutMovesDataWithOneMessage) {
  CeConfig cfg;
  cfg.native_put = true;
  CeWorld w(2, BackendKind::Lci, cfg);
  std::vector<char> src(64 * 1024, 'n');
  std::vector<char> dst(64 * 1024, 0);
  bool local_done = false;
  std::string rinfo;
  w.engine(1).tag_reg(
      kPutDone,
      [&](CommEngine&, Tag, const void* msg, std::size_t size, int, void*) {
        rinfo.assign(static_cast<const char*>(msg), size);
      },
      nullptr, 64);
  w.engine(0).tag_reg(kPutDone, [](auto&&...) {}, nullptr, 64);
  const MemReg lreg{0, src.data(), src.size()};
  const MemReg rreg{1, dst.data(), dst.size()};
  const std::uint64_t msgs_before = w.fab.total_messages();
  w.engine(0).put(
      lreg, 0, rreg, 0, src.size(), 1,
      [&](CommEngine&, const MemReg&, std::ptrdiff_t, const MemReg&,
          std::ptrdiff_t, std::size_t, int, void*) { local_done = true; },
      nullptr, kPutDone, "native", 6);
  w.run();
  EXPECT_TRUE(local_done);
  EXPECT_EQ(rinfo, "native");
  EXPECT_EQ(dst[100], 'n');
  // One wire message for the whole put.
  EXPECT_EQ(w.fab.total_messages() - msgs_before, 1u);
}

TEST(CeLciBackend, NativePutLowerLatencyThanEmulated) {
  auto measure = [](bool native) {
    CeConfig cfg;
    cfg.native_put = native;
    cfg.eager_put_max = 0;
    CeWorld w(2, BackendKind::Lci, cfg);
    des::Time done = 0;
    w.engine(1).tag_reg(
        kPutDone,
        [&](CommEngine&, Tag, const void*, std::size_t, int, void*) {
          done = w.eng.now();
        },
        nullptr, 64);
    w.engine(0).tag_reg(kPutDone, [](auto&&...) {}, nullptr, 64);
    const MemReg lreg{0, nullptr, 1 << 20};
    const MemReg rreg{1, nullptr, 1 << 20};
    w.engine(0).put(lreg, 0, rreg, 0, 256 * 1024, 1, nullptr, nullptr,
                    kPutDone, "x", 1);
    w.run();
    return done;
  };
  const des::Time native = measure(true);
  const des::Time emulated = measure(false);
  EXPECT_GT(native, 0);
  // Saves the rendezvous round-trip.
  EXPECT_LT(native, emulated);
}

TEST(CeLciBackend, NativePutManyConcurrentAllComplete) {
  CeConfig cfg;
  cfg.native_put = true;
  mlci::Config lci_cfg;
  lci_cfg.direct_slots = 4;  // force Retry + comm-thread retries
  CeWorld w(2, BackendKind::Lci, cfg, {}, lci_cfg);
  int done = 0;
  w.engine(1).tag_reg(
      kPutDone,
      [&](CommEngine&, Tag, const void*, std::size_t, int, void*) {
        ++done;
      },
      nullptr, 64);
  w.engine(0).tag_reg(kPutDone, [](auto&&...) {}, nullptr, 64);
  const MemReg lreg{0, nullptr, 1 << 20};
  const MemReg rreg{1, nullptr, 1 << 20};
  for (int i = 0; i < 40; ++i) {
    w.engine(0).put(lreg, 0, rreg, 0, 128 * 1024, 1, nullptr, nullptr,
                    kPutDone, "d", 1);
  }
  w.run();
  EXPECT_EQ(done, 40);
  EXPECT_TRUE(w.world.all_idle());
}

}  // namespace
