// End-to-end reliability sublayer (ce/reliable): checksum primitives,
// backoff policy, and — against both backends — exactly-once delivery under
// injected drops / duplicates / corruption, recoverable timeouts, and zero
// overhead accounting on a clean fabric.
#include "ce/reliable.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ce/comm_engine.hpp"
#include "ce/world.hpp"
#include "des/engine.hpp"
#include "des/poll_loop.hpp"
#include "des/rng.hpp"
#include "des/sim_thread.hpp"
#include "net/fabric.hpp"

namespace {

using ce::BackendKind;
using ce::CeConfig;
using ce::CommWorld;
using ce::Tag;

constexpr Tag kPing = 1;

// ---------------------------------------------------------------------------
// Primitives

TEST(Crc32c, KnownVector) {
  // The canonical CRC-32C check value.
  EXPECT_EQ(ce::crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32c, SeedChainsMultiBufferChecksums) {
  const char data[] = "the quick brown fox";
  const auto whole = ce::crc32c(data, sizeof data - 1);
  const auto first = ce::crc32c(data, 9);
  const auto chained = ce::crc32c(data + 9, sizeof data - 1 - 9, first);
  EXPECT_EQ(chained, whole);
  EXPECT_NE(first, whole);
}

TEST(MessageCrc, CoversHeaderAndPayload) {
  net::Message m;
  m.src = 0;
  m.dst = 1;
  m.wire_bytes = 128;
  m.hdr.tag = 42;
  m.hdr.rel_seq = 7;
  const char body[] = "payload-bytes";
  m.payload = net::make_payload(body, sizeof body);
  const auto base = ce::message_crc(m);

  net::Message imm = m;
  imm.hdr.imm[3] ^= 1ULL << 17;  // what in-flight corruption flips
  EXPECT_NE(ce::message_crc(imm), base);

  net::Message pay = m;
  auto copy = std::make_shared<std::vector<std::byte>>(*m.payload);
  (*copy)[3] ^= std::byte{0x10};
  pay.payload = copy;
  EXPECT_NE(ce::message_crc(pay), base);

  net::Message seq = m;
  seq.hdr.rel_seq = 8;
  EXPECT_NE(ce::message_crc(seq), base);
}

TEST(Backoff, GrowsExponentiallyUnderCapWithJitter) {
  ce::Backoff b;  // base 1 us, cap 64 us, factor 2, jitter 0.25
  des::Rng rng(7);
  des::Duration prev = 0;
  for (int i = 0; i < 12; ++i) {
    const des::Duration d = b.next(rng);
    EXPECT_GE(d, prev / 4) << "not collapsing";  // jitter can wiggle
    // Never above cap * (1 + jitter).
    EXPECT_LE(d, static_cast<des::Duration>(64 * des::kMicrosecond * 1.25));
    EXPECT_GE(d, 1 * des::kMicrosecond);
    prev = d;
  }
  EXPECT_EQ(b.attempts(), 12);
  b.reset();
  EXPECT_EQ(b.attempts(), 0);
  EXPECT_LE(b.next(rng),
            static_cast<des::Duration>(1 * des::kMicrosecond * 1.25));
}

// ---------------------------------------------------------------------------
// Backend integration

/// CeWorld with a configurable fabric: reliability on by default.
struct RelWorld {
  des::Engine eng;
  net::Fabric fab;
  CommWorld world;
  std::vector<std::unique_ptr<des::SimThread>> threads;
  std::vector<std::unique_ptr<des::PollLoop>> loops;

  RelWorld(int nodes, BackendKind kind, net::FabricConfig fab_cfg,
           CeConfig cfg = make_reliable_cfg())
      : fab(eng, nodes, fab_cfg), world(fab, kind, cfg) {
    for (int n = 0; n < nodes; ++n) {
      threads.push_back(std::make_unique<des::SimThread>(
          eng, "comm-" + std::to_string(n)));
      auto& engine = world.engine(n);
      loops.push_back(std::make_unique<des::PollLoop>(
          *threads.back(), 25, [&engine]() { return engine.progress() > 0; }));
      engine.set_wake_callback(
          [loop = loops.back().get()]() { loop->wake(); });
      loops.back()->start();
    }
  }

  static CeConfig make_reliable_cfg() {
    CeConfig cfg;
    cfg.reliable.enabled = true;
    return cfg;
  }

  ~RelWorld() {
    for (auto& l : loops) l->stop();
  }

  void run() {
    for (auto& l : loops) l->wake();
    eng.run();
  }
};

class RelBackends : public ::testing::TestWithParam<BackendKind> {};

TEST_P(RelBackends, CleanFabricDeliversWithZeroFaultCounters) {
  RelWorld w(2, GetParam(), net::FabricConfig{});
  int got = 0;
  w.world.engine(1).tag_reg(
      kPing, [&](auto&&...) { ++got; }, nullptr, 64);
  w.world.engine(0).tag_reg(kPing, [](auto&&...) {}, nullptr, 64);
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(w.world.engine(0).send_am(kPing, 1, "x", 1), ce::Status::Ok);
  }
  w.run();
  EXPECT_EQ(got, 25);
  const ce::ReliableStats& rs = w.world.reliability()->stats();
  EXPECT_GE(rs.data_sent, 25u);
  EXPECT_EQ(rs.acks_sent, rs.data_sent);  // one ACK per tracked message
  EXPECT_EQ(rs.retransmits, 0u);
  EXPECT_EQ(rs.timeouts, 0u);
  EXPECT_EQ(rs.duplicates_suppressed, 0u);
  EXPECT_EQ(rs.nacks_sent, 0u);
  EXPECT_EQ(rs.corrupt_discarded, 0u);
  EXPECT_EQ(w.world.reliability()->unacked(), 0u);
}

TEST_P(RelBackends, ExactlyOnceDeliveryUnderChaos) {
  net::FabricConfig fc;
  fc.faults.drop_prob = 0.05;
  fc.faults.dup_prob = 0.05;
  fc.faults.corrupt_prob = 0.05;
  fc.faults.jitter_max = 2 * des::kMicrosecond;
  RelWorld w(2, GetParam(), fc);
  std::multiset<int> got;
  w.world.engine(1).tag_reg(
      kPing,
      [&](ce::CommEngine&, Tag, const void* msg, std::size_t size, int,
          void*) {
        ASSERT_EQ(size, sizeof(int));
        int v;
        std::memcpy(&v, msg, sizeof v);
        got.insert(v);
      },
      nullptr, 64);
  w.world.engine(0).tag_reg(kPing, [](auto&&...) {}, nullptr, 64);
  const int kMsgs = 200;
  for (int i = 0; i < kMsgs; ++i) {
    ASSERT_EQ(w.world.engine(0).send_am(kPing, 1, &i, sizeof i),
              ce::Status::Ok);
  }
  w.run();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kMsgs));
  for (int i = 0; i < kMsgs; ++i) {
    EXPECT_EQ(got.count(i), 1u) << "message " << i << " not exactly-once";
  }
  const ce::ReliableStats& rs = w.world.reliability()->stats();
  EXPECT_GT(rs.retransmits, 0u);
  EXPECT_EQ(rs.timeouts, 0u) << "retry budget should ride out 5% faults";
  EXPECT_EQ(w.world.reliability()->unacked(), 0u);
  // Fabric saw real faults; the sublayer absorbed them.
  EXPECT_GT(w.fab.fault_stats().drops + w.fab.fault_stats().corruptions +
                w.fab.fault_stats().dups,
            0u);
}

TEST_P(RelBackends, InjectedDuplicatesAreSuppressed) {
  net::FabricConfig fc;
  fc.faults.dup_prob = 1.0;  // every wire message delivered twice
  RelWorld w(2, GetParam(), fc);
  int got = 0;
  w.world.engine(1).tag_reg(
      kPing, [&](auto&&...) { ++got; }, nullptr, 64);
  w.world.engine(0).tag_reg(kPing, [](auto&&...) {}, nullptr, 64);
  for (int i = 0; i < 30; ++i) {
    ASSERT_EQ(w.world.engine(0).send_am(kPing, 1, "d", 1), ce::Status::Ok);
  }
  w.run();
  EXPECT_EQ(got, 30);
  EXPECT_GT(w.world.reliability()->stats().duplicates_suppressed, 0u);
}

TEST_P(RelBackends, TotalLossSurfacesRecoverableTimeout) {
  net::FabricConfig fc;
  fc.faults.drop_prob = 1.0;  // nothing ever arrives
  CeConfig cfg = RelWorld::make_reliable_cfg();
  cfg.reliable.max_retries = 3;  // keep the test quick
  RelWorld w(2, GetParam(), fc, cfg);
  std::vector<std::uint64_t> failed_seqs;
  ce::Status failed_status = ce::Status::Ok;
  w.world.reliability()->set_error_callback(
      [&](net::NodeId src, net::NodeId dst, std::uint64_t seq,
          ce::Status st) {
        EXPECT_EQ(src, 0);
        EXPECT_EQ(dst, 1);
        failed_seqs.push_back(seq);
        failed_status = st;
      });
  w.world.engine(1).tag_reg(kPing, [](auto&&...) {}, nullptr, 64);
  w.world.engine(0).tag_reg(kPing, [](auto&&...) {}, nullptr, 64);
  ASSERT_EQ(w.world.engine(0).send_am(kPing, 1, "x", 1), ce::Status::Ok);
  w.run();  // must quiesce: the retry budget bounds the retransmissions
  ASSERT_EQ(failed_seqs.size(), 1u);
  EXPECT_EQ(failed_seqs[0], 1u);
  EXPECT_EQ(failed_status, ce::Status::ErrTimeout);
  const ce::ReliableStats& rs = w.world.reliability()->stats();
  EXPECT_EQ(rs.timeouts, 1u);
  EXPECT_EQ(rs.retransmits, 3u);
  EXPECT_EQ(w.world.reliability()->unacked(), 0u);
}

TEST_P(RelBackends, ChaosScheduleIsDeterministicPerSeed) {
  auto run = [&](std::uint64_t seed) {
    net::FabricConfig fc;
    fc.faults.seed = seed;
    fc.faults.drop_prob = 0.08;
    fc.faults.dup_prob = 0.05;
    fc.faults.corrupt_prob = 0.05;
    RelWorld w(2, GetParam(), fc);
    std::vector<int> order;
    w.world.engine(1).tag_reg(
        kPing,
        [&](ce::CommEngine&, Tag, const void* msg, std::size_t, int, void*) {
          int v;
          std::memcpy(&v, msg, sizeof v);
          order.push_back(v);
        },
        nullptr, 64);
    w.world.engine(0).tag_reg(kPing, [](auto&&...) {}, nullptr, 64);
    for (int i = 0; i < 60; ++i) {
      w.world.engine(0).send_am(kPing, 1, &i, sizeof i);
    }
    w.run();
    const ce::ReliableStats& rs = w.world.reliability()->stats();
    return std::make_tuple(order, rs.retransmits, rs.duplicates_suppressed,
                           rs.corrupt_discarded, w.eng.now());
  };
  EXPECT_EQ(run(11), run(11)) << "same seed, same delivery schedule";
}

INSTANTIATE_TEST_SUITE_P(Backends, RelBackends,
                         ::testing::Values(BackendKind::Mpi,
                                           BackendKind::Lci),
                         [](const auto& pinfo) {
                           return pinfo.param == BackendKind::Mpi ? "Mpi"
                                                                  : "Lci";
                         });

}  // namespace
