// Failure detector: heartbeats into silence, adaptive suspicion, sticky
// death confirmation, revival on ground-truth restart, and external
// suspicion hints — all against the fabric's seeded fail-stop schedule.
#include "ce/failure_detector.hpp"

#include <gtest/gtest.h>

#include "ce/world.hpp"
#include "des/engine.hpp"
#include "des/time.hpp"
#include "net/fabric.hpp"

namespace {

using ce::CeConfig;
using ce::CommWorld;
using ce::PeerState;

struct FdWorld {
  des::Engine eng;
  net::Fabric fab;
  CommWorld comm;
  FdWorld(int nodes, const net::FaultConfig& faults)
      : fab(eng, nodes,
            [&faults]() {
              net::FabricConfig fc;
              fc.faults = faults;
              return fc;
            }()),
        comm(fab, ce::BackendKind::Mpi, fd_on()) {}
  static CeConfig fd_on() {
    CeConfig cfg;
    cfg.fd.enabled = true;
    return cfg;
  }
  ce::FailureDetectorDomain& fd() { return *comm.failure_detector(); }
};

TEST(FailureDetector, DetectsCrashWithinTheConfiguredBound) {
  const des::Time crash_at = 100 * des::kMillisecond;
  net::FaultConfig faults;
  faults.crashes.push_back(net::CrashEvent{2, crash_at, 0});
  FdWorld w(4, faults);

  const bool detected = w.eng.run_while_pending([&]() {
    for (int n = 0; n < 4; ++n) {
      if (n == 2) continue;
      if (w.fd().peer_state(n, 2) != PeerState::Dead) return false;
    }
    return true;  // every survivor has confirmed independently
  });
  ASSERT_TRUE(detected);
  const ce::FdConfig& cfg = w.fd().config();
  // Silence bound + confirmation + a few heartbeat periods of timer
  // granularity. The adaptive threshold cannot exceed min_timeout here
  // because heartbeats flow every heartbeat_interval before the crash.
  const des::Duration bound = cfg.min_timeout + cfg.confirm_timeout +
                              4 * cfg.heartbeat_interval;
  EXPECT_LE(w.eng.now() - crash_at, bound);
  EXPECT_GE(w.eng.now(), crash_at);  // no premature verdicts
  EXPECT_GE(w.fd().stats().deaths, 1u);
  // Detection latency histogram recorded against ground truth.
  const obs::Histogram* h = w.comm.metrics().find_histogram("ce.fd.detect_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_GT(h->count(), 0u);
  w.fd().stop();
  w.eng.run();  // the stopped detector lets the queue drain
  // Every survivor eventually agrees; the corpse's own view is unused.
  for (int n = 0; n < 4; ++n) {
    if (n == 2) continue;
    EXPECT_EQ(w.fd().peer_state(n, 2), PeerState::Dead) << "observer " << n;
  }
}

TEST(FailureDetector, NoFalsePositivesOnACleanFabric) {
  FdWorld w(4, {});
  w.eng.run_until(500 * des::kMillisecond);
  EXPECT_EQ(w.fd().stats().suspects, 0u);
  EXPECT_EQ(w.fd().stats().deaths, 0u);
  EXPECT_GT(w.fd().stats().heartbeats_sent, 0u);
  w.fd().stop();
  w.eng.run();
}

TEST(FailureDetector, RestartRevivesAStickyDeadVerdict) {
  net::FaultConfig faults;
  faults.crashes.push_back(net::CrashEvent{1, 50 * des::kMillisecond,
                                           300 * des::kMillisecond});
  FdWorld w(3, faults);
  const bool detected = w.eng.run_while_pending(
      [&]() { return w.fd().peer_state(0, 1) == PeerState::Dead; });
  ASSERT_TRUE(detected);
  EXPECT_LT(w.eng.now(), 300 * des::kMillisecond);

  w.eng.run_until(400 * des::kMillisecond);
  EXPECT_EQ(w.fd().peer_state(0, 1), PeerState::Alive);
  EXPECT_GE(w.fd().stats().revivals, 1u);
  w.fd().stop();
  w.eng.run();
}

TEST(FailureDetector, SuspicionHintAcceleratesButHeartbeatsClearIt) {
  FdWorld w(2, {});
  // Let a few heartbeats flow so the peer is established as Alive.
  w.eng.run_until(20 * des::kMillisecond);
  ASSERT_EQ(w.fd().peer_state(0, 1), PeerState::Alive);

  // An external hint (the reliability sublayer's ErrTimeout) suspects the
  // peer immediately — no silence bound needed.
  w.fd().suspect_hint(0, 1);
  EXPECT_EQ(w.fd().peer_state(0, 1), PeerState::Suspect);
  EXPECT_GE(w.fd().stats().hints, 1u);

  // The peer is actually fine: its next heartbeat flips the verdict back
  // before the confirmation timeout can declare death.
  w.eng.run_until(60 * des::kMillisecond);
  EXPECT_EQ(w.fd().peer_state(0, 1), PeerState::Alive);
  EXPECT_GE(w.fd().stats().false_suspects, 1u);
  EXPECT_EQ(w.fd().stats().deaths, 0u);
  w.fd().stop();
  w.eng.run();
}

}  // namespace
