#include "bench_util/harness.hpp"

#include <gtest/gtest.h>

#include "obs/trace.hpp"  // json_parse_ok

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

// -- netpipe_gbit edge cases (the zero-message / single-message fixes) ----

TEST(Netpipe, ZeroMessagesReturnsZeroNotNan) {
  // total < fragment => zero messages; the old code divided 0 bytes by a
  // 0-second window (inf/NaN).
  const double g = bench::netpipe_gbit(1 << 20, 0);
  EXPECT_TRUE(std::isfinite(g));
  EXPECT_DOUBLE_EQ(g, 0.0);
  const double g2 = bench::netpipe_gbit(1 << 20, 1 << 10);
  EXPECT_DOUBLE_EQ(g2, 0.0);
}

TEST(Netpipe, SingleMessageFallsBackToInjectionLatency) {
  // Exactly one message: no arrival-to-arrival window; the documented
  // fallback divides by injection-to-arrival time, so the result is a
  // finite, positive rate (below the steady-state link rate).
  const double g = bench::netpipe_gbit(64 << 10, 64 << 10);
  EXPECT_TRUE(std::isfinite(g));
  EXPECT_GT(g, 0.0);
  EXPECT_LT(g, 200.0);  // HDR-100-class fabric: sanity ceiling
}

TEST(Netpipe, SteadyStateRateIsFiniteAndPositive) {
  const double g = bench::netpipe_gbit(256 << 10, 8 << 20);
  EXPECT_TRUE(std::isfinite(g));
  EXPECT_GT(g, 0.0);
}

// -- run_pingpong volume convention (the iterations-1 fix) ----------------

TEST(PingPong, OneIterationReportsZeroNotUnderflow) {
  bench::PingPongOptions opts;
  opts.fragment_bytes = 64 << 10;
  opts.total_bytes = 256 << 10;
  opts.iterations = 1;
  const auto r = bench::run_pingpong(ce::BackendKind::Lci, opts);
  // One iteration never crosses the wire; the old size_t expression
  // underflowed (iterations - 1) to ~2^64 and reported absurd bandwidth.
  EXPECT_TRUE(std::isfinite(r.gbit_per_s));
  EXPECT_DOUBLE_EQ(r.gbit_per_s, 0.0);
  EXPECT_GT(r.tts_s, 0.0);
}

TEST(PingPong, BandwidthCannotBeatTheWire) {
  bench::PingPongOptions opts;
  opts.fragment_bytes = 256 << 10;
  opts.total_bytes = 8ull << 20;
  opts.iterations = 4;
  const auto r = bench::run_pingpong(ce::BackendKind::Lci, opts);
  EXPECT_GT(r.gbit_per_s, 0.0);
  EXPECT_LT(r.gbit_per_s, 100.5);  // HDR-100 physical limit
}

TEST(PingPong, LatencyHistogramIsPopulated) {
  bench::PingPongOptions opts;
  opts.fragment_bytes = 64 << 10;
  opts.total_bytes = 256 << 10;
  opts.iterations = 2;
  const auto r = bench::run_pingpong(ce::BackendKind::Mpi, opts);
  EXPECT_GT(r.latency.count(), 0u);
  EXPECT_GT(r.latency.e2e_p50_ns(), 0.0);
  EXPECT_GE(r.latency.e2e_p99_ns(), r.latency.e2e_p50_ns());
  EXPECT_GE(r.latency.e2e_max_ns(), r.latency.e2e_p99_ns());
}

TEST(PingPong, SeriesMergesLatencyAcrossReps) {
  bench::PingPongOptions opts;
  opts.fragment_bytes = 64 << 10;
  opts.total_bytes = 256 << 10;
  opts.iterations = 2;
  bench::Reps reps;
  reps.total = 2;
  reps.warmup = 1;
  const auto once = bench::run_pingpong(ce::BackendKind::Lci, opts);
  const auto series =
      bench::run_pingpong_series(reps, ce::BackendKind::Lci, opts);
  // warmup=1 of total=2: scalars come from one measured run, latency too.
  EXPECT_NEAR(series.gbit_per_s, once.gbit_per_s, 1e-9);
  EXPECT_EQ(series.latency.count(), once.latency.count());
}

// -- Reps env clamping ----------------------------------------------------

struct EnvGuard {
  ~EnvGuard() {
    ::unsetenv("AMTLCE_REPS");
    ::unsetenv("AMTLCE_WARMUP");
  }
};

TEST(Reps, NegativeWarmupClampsToZero) {
  EnvGuard guard;
  ::setenv("AMTLCE_REPS", "3", 1);
  ::setenv("AMTLCE_WARMUP", "-5", 1);
  const auto r = bench::Reps::from_env();
  EXPECT_EQ(r.total, 3);
  EXPECT_EQ(r.warmup, 0);
}

TEST(Reps, WarmupClampedBelowTotal) {
  EnvGuard guard;
  ::setenv("AMTLCE_REPS", "2", 1);
  ::setenv("AMTLCE_WARMUP", "99", 1);
  const auto r = bench::Reps::from_env();
  EXPECT_EQ(r.total, 2);
  EXPECT_LT(r.warmup, r.total);
  EXPECT_GE(r.warmup, 0);
}

TEST(Reps, NonPositiveTotalClampsToOne) {
  EnvGuard guard;
  ::setenv("AMTLCE_REPS", "0", 1);
  const auto r = bench::Reps::from_env();
  EXPECT_GE(r.total, 1);
  EXPECT_GE(r.warmup, 0);
  EXPECT_LT(r.warmup, r.total);
}

// -- AMTLCE_FAULT_* / AMTLCE_RELIABLE env overlays ------------------------

struct FaultEnvGuard {
  ~FaultEnvGuard() {
    for (const char* name :
         {"AMTLCE_FAULT_SEED", "AMTLCE_FAULT_DROP", "AMTLCE_FAULT_DUP",
          "AMTLCE_FAULT_CORRUPT", "AMTLCE_FAULT_SPIKE_PROB",
          "AMTLCE_FAULT_SPIKE_US", "AMTLCE_FAULT_JITTER_US",
          "AMTLCE_FAULT_BROWNOUT", "AMTLCE_FAULT_STALL", "AMTLCE_RELIABLE"}) {
      ::unsetenv(name);
    }
  }
};

TEST(FaultEnv, NoVariablesMeansNoOverrides) {
  FaultEnvGuard guard;
  net::FabricConfig cfg;
  EXPECT_FALSE(bench::apply_fault_env(cfg));
  EXPECT_FALSE(cfg.faults.any());
  EXPECT_FALSE(bench::reliable_from_env());
}

TEST(FaultEnv, ParsesScalarKnobsAndWindows) {
  FaultEnvGuard guard;
  ::setenv("AMTLCE_FAULT_SEED", "0xBEEF", 1);
  ::setenv("AMTLCE_FAULT_DROP", "0.01", 1);
  ::setenv("AMTLCE_FAULT_DUP", "0.02", 1);
  ::setenv("AMTLCE_FAULT_CORRUPT", "0.03", 1);
  ::setenv("AMTLCE_FAULT_SPIKE_PROB", "0.1", 1);
  ::setenv("AMTLCE_FAULT_SPIKE_US", "50", 1);
  ::setenv("AMTLCE_FAULT_JITTER_US", "2.5", 1);
  ::setenv("AMTLCE_FAULT_BROWNOUT", "3:10:1.5", 1);
  ::setenv("AMTLCE_FAULT_STALL", "1:20:0.5", 1);
  net::FabricConfig cfg;
  EXPECT_TRUE(bench::apply_fault_env(cfg));
  const net::FaultConfig& f = cfg.faults;
  EXPECT_EQ(f.seed, 0xBEEFu);
  EXPECT_DOUBLE_EQ(f.drop_prob, 0.01);
  EXPECT_DOUBLE_EQ(f.dup_prob, 0.02);
  EXPECT_DOUBLE_EQ(f.corrupt_prob, 0.03);
  EXPECT_DOUBLE_EQ(f.spike_prob, 0.1);
  EXPECT_EQ(f.spike_max, 50 * des::kMicrosecond);
  EXPECT_EQ(f.jitter_max, des::Duration{2500});
  EXPECT_EQ(f.brownout_node, 3);
  EXPECT_EQ(f.brownout_start, 10 * des::kMillisecond);
  EXPECT_EQ(f.brownout_duration,
            static_cast<des::Duration>(1.5 * des::kMillisecond));
  EXPECT_EQ(f.stall_node, 1);
  EXPECT_EQ(f.stall_start, 20 * des::kMillisecond);
  EXPECT_TRUE(f.any());
}

TEST(FaultEnv, RejectsOutOfRangeAndMalformedValues) {
  FaultEnvGuard guard;
  ::setenv("AMTLCE_FAULT_DROP", "1.5", 1);  // probability > 1
  net::FabricConfig cfg;
  EXPECT_THROW(bench::apply_fault_env(cfg), std::invalid_argument);
  ::unsetenv("AMTLCE_FAULT_DROP");
  ::setenv("AMTLCE_FAULT_BROWNOUT", "not-a-window", 1);
  net::FabricConfig cfg2;
  EXPECT_THROW(bench::apply_fault_env(cfg2), std::invalid_argument);
}

TEST(FaultEnv, ReliableSwitchUnderstandsOffSpellings) {
  FaultEnvGuard guard;
  for (const char* off : {"0", "off", "false"}) {
    ::setenv("AMTLCE_RELIABLE", off, 1);
    EXPECT_FALSE(bench::reliable_from_env()) << off;
  }
  ::setenv("AMTLCE_RELIABLE", "1", 1);
  EXPECT_TRUE(bench::reliable_from_env());
}

TEST(FaultEnv, PingPongUnderEnvChaosStillMovesData) {
  FaultEnvGuard guard;
  ::setenv("AMTLCE_FAULT_DROP", "0.01", 1);
  ::setenv("AMTLCE_FAULT_CORRUPT", "0.01", 1);
  ::setenv("AMTLCE_RELIABLE", "1", 1);
  bench::PingPongOptions opts;
  opts.fragment_bytes = 64 << 10;
  opts.total_bytes = 1 << 20;
  opts.iterations = 3;
  const auto r = bench::run_pingpong(ce::BackendKind::Lci, opts);
  EXPECT_GT(r.gbit_per_s, 0.0);
  EXPECT_TRUE(std::isfinite(r.gbit_per_s));
}

// -- Table CSV writer (padding + escaping fixes) --------------------------

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(TableCsv, PadsShortRowsAndEscapesCells) {
  const std::string prefix = "harness_csv_test_";
  ::setenv("AMTLCE_CSV", prefix.c_str(), 1);
  {
    bench::Table t("csvcheck", {"a", "b", "c"});
    t.add_row({"1", "2", "3"});
    t.add_row({"only"});                            // short: pad to 3 fields
    t.add_row({"x,y", "say \"hi\"", "plain"});      // needs quoting
  }  // destructor writes the CSV
  ::unsetenv("AMTLCE_CSV");

  const std::string path = prefix + "csvcheck.csv";
  const auto lines = read_lines(path);
  std::remove(path.c_str());
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "a,b,c");
  EXPECT_EQ(lines[1], "1,2,3");
  // The ragged row is padded with empty cells up to the header width, so
  // every data line has the same field count.
  EXPECT_EQ(lines[2], "only,,");
  // RFC-4180: comma'd cells quoted, embedded quotes doubled.
  EXPECT_EQ(lines[3], "\"x,y\",\"say \"\"hi\"\"\",plain");
}

TEST(TableCsv, NoFileWithoutEnv) {
  ::unsetenv("AMTLCE_CSV");
  { bench::Table t("nocsv", {"a"}); }
  std::ifstream in("nocsv.csv");
  EXPECT_FALSE(in.good());
}

// -- AMTLCE_METRICS export + stage/critical-path plumbing -----------------

TEST(Metrics, ExportDisabledWithoutEnv) {
  ::unsetenv("AMTLCE_METRICS");
  EXPECT_FALSE(bench::export_metrics_env());
}

TEST(Metrics, ExportWritesParsableJsonOfAccumulator) {
  bench::metrics_accumulator().histogram("test.export_ns").add(123.0);
  const std::string path = "metrics_export_test.json";
  ::setenv("AMTLCE_METRICS", path.c_str(), 1);
  EXPECT_TRUE(bench::export_metrics_env());
  ::unsetenv("AMTLCE_METRICS");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  std::remove(path.c_str());
  EXPECT_TRUE(obs::json_parse_ok(ss.str())) << ss.str();
  EXPECT_NE(ss.str().find("\"test.export_ns\""), std::string::npos);
}

TEST(PingPong, PopulatesStagesCriticalPathAndAccumulator) {
  bench::PingPongOptions opts;
  opts.fragment_bytes = 64 << 10;
  opts.total_bytes = 256 << 10;
  opts.iterations = 2;
  const auto r = bench::run_pingpong(ce::BackendKind::Lci, opts);
  // The telescoping stage decomposition covers every recorded arrival.
  ASSERT_GT(r.latency.count(), 0u);
  for (int s = 0; s < amt::kE2eStages; ++s) {
    EXPECT_EQ(r.stages.h[static_cast<std::size_t>(s)].count(),
              r.latency.count())
        << amt::kStageNames[static_cast<std::size_t>(s)];
  }
  const double e2e = r.latency.e2e_mean_ns();
  EXPECT_NEAR(r.stages.e2e_stage_mean_sum_ns(), e2e, 1e-6 * e2e);
  // Critical path: consistent sums and a printable line.
  ASSERT_TRUE(r.crit.seen);
  EXPECT_EQ(r.crit.sums.total(), r.crit.finish_g);
  const std::string line = bench::critical_path_line(r.crit);
  EXPECT_NE(line.find("critical path:"), std::string::npos);
  EXPECT_NE(line.find("compute"), std::string::npos);
  // Every run folds its metrics into the process accumulator, including
  // the amt.lat.* stage histograms.
  const auto* h =
      bench::metrics_accumulator().find_histogram("amt.lat.stage.queue_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_GT(h->count(), 0u);
}

TEST(CriticalPathLine, UnseenPathPrintsPlaceholder) {
  const amt::CriticalPath cp;
  EXPECT_EQ(bench::critical_path_line(cp),
            "critical path: (no tasks observed)");
}

}  // namespace
