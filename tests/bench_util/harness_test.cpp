#include "bench_util/harness.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

// -- netpipe_gbit edge cases (the zero-message / single-message fixes) ----

TEST(Netpipe, ZeroMessagesReturnsZeroNotNan) {
  // total < fragment => zero messages; the old code divided 0 bytes by a
  // 0-second window (inf/NaN).
  const double g = bench::netpipe_gbit(1 << 20, 0);
  EXPECT_TRUE(std::isfinite(g));
  EXPECT_DOUBLE_EQ(g, 0.0);
  const double g2 = bench::netpipe_gbit(1 << 20, 1 << 10);
  EXPECT_DOUBLE_EQ(g2, 0.0);
}

TEST(Netpipe, SingleMessageFallsBackToInjectionLatency) {
  // Exactly one message: no arrival-to-arrival window; the documented
  // fallback divides by injection-to-arrival time, so the result is a
  // finite, positive rate (below the steady-state link rate).
  const double g = bench::netpipe_gbit(64 << 10, 64 << 10);
  EXPECT_TRUE(std::isfinite(g));
  EXPECT_GT(g, 0.0);
  EXPECT_LT(g, 200.0);  // HDR-100-class fabric: sanity ceiling
}

TEST(Netpipe, SteadyStateRateIsFiniteAndPositive) {
  const double g = bench::netpipe_gbit(256 << 10, 8 << 20);
  EXPECT_TRUE(std::isfinite(g));
  EXPECT_GT(g, 0.0);
}

// -- run_pingpong volume convention (the iterations-1 fix) ----------------

TEST(PingPong, OneIterationReportsZeroNotUnderflow) {
  bench::PingPongOptions opts;
  opts.fragment_bytes = 64 << 10;
  opts.total_bytes = 256 << 10;
  opts.iterations = 1;
  const auto r = bench::run_pingpong(ce::BackendKind::Lci, opts);
  // One iteration never crosses the wire; the old size_t expression
  // underflowed (iterations - 1) to ~2^64 and reported absurd bandwidth.
  EXPECT_TRUE(std::isfinite(r.gbit_per_s));
  EXPECT_DOUBLE_EQ(r.gbit_per_s, 0.0);
  EXPECT_GT(r.tts_s, 0.0);
}

TEST(PingPong, BandwidthCannotBeatTheWire) {
  bench::PingPongOptions opts;
  opts.fragment_bytes = 256 << 10;
  opts.total_bytes = 8ull << 20;
  opts.iterations = 4;
  const auto r = bench::run_pingpong(ce::BackendKind::Lci, opts);
  EXPECT_GT(r.gbit_per_s, 0.0);
  EXPECT_LT(r.gbit_per_s, 100.5);  // HDR-100 physical limit
}

TEST(PingPong, LatencyHistogramIsPopulated) {
  bench::PingPongOptions opts;
  opts.fragment_bytes = 64 << 10;
  opts.total_bytes = 256 << 10;
  opts.iterations = 2;
  const auto r = bench::run_pingpong(ce::BackendKind::Mpi, opts);
  EXPECT_GT(r.latency.count(), 0u);
  EXPECT_GT(r.latency.e2e_p50_ns(), 0.0);
  EXPECT_GE(r.latency.e2e_p99_ns(), r.latency.e2e_p50_ns());
  EXPECT_GE(r.latency.e2e_max_ns(), r.latency.e2e_p99_ns());
}

TEST(PingPong, SeriesMergesLatencyAcrossReps) {
  bench::PingPongOptions opts;
  opts.fragment_bytes = 64 << 10;
  opts.total_bytes = 256 << 10;
  opts.iterations = 2;
  bench::Reps reps;
  reps.total = 2;
  reps.warmup = 1;
  const auto once = bench::run_pingpong(ce::BackendKind::Lci, opts);
  const auto series =
      bench::run_pingpong_series(reps, ce::BackendKind::Lci, opts);
  // warmup=1 of total=2: scalars come from one measured run, latency too.
  EXPECT_NEAR(series.gbit_per_s, once.gbit_per_s, 1e-9);
  EXPECT_EQ(series.latency.count(), once.latency.count());
}

// -- Reps env clamping ----------------------------------------------------

struct EnvGuard {
  ~EnvGuard() {
    ::unsetenv("AMTLCE_REPS");
    ::unsetenv("AMTLCE_WARMUP");
  }
};

TEST(Reps, NegativeWarmupClampsToZero) {
  EnvGuard guard;
  ::setenv("AMTLCE_REPS", "3", 1);
  ::setenv("AMTLCE_WARMUP", "-5", 1);
  const auto r = bench::Reps::from_env();
  EXPECT_EQ(r.total, 3);
  EXPECT_EQ(r.warmup, 0);
}

TEST(Reps, WarmupClampedBelowTotal) {
  EnvGuard guard;
  ::setenv("AMTLCE_REPS", "2", 1);
  ::setenv("AMTLCE_WARMUP", "99", 1);
  const auto r = bench::Reps::from_env();
  EXPECT_EQ(r.total, 2);
  EXPECT_LT(r.warmup, r.total);
  EXPECT_GE(r.warmup, 0);
}

TEST(Reps, NonPositiveTotalClampsToOne) {
  EnvGuard guard;
  ::setenv("AMTLCE_REPS", "0", 1);
  const auto r = bench::Reps::from_env();
  EXPECT_GE(r.total, 1);
  EXPECT_GE(r.warmup, 0);
  EXPECT_LT(r.warmup, r.total);
}

// -- Table CSV writer (padding + escaping fixes) --------------------------

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(TableCsv, PadsShortRowsAndEscapesCells) {
  const std::string prefix = "harness_csv_test_";
  ::setenv("AMTLCE_CSV", prefix.c_str(), 1);
  {
    bench::Table t("csvcheck", {"a", "b", "c"});
    t.add_row({"1", "2", "3"});
    t.add_row({"only"});                            // short: pad to 3 fields
    t.add_row({"x,y", "say \"hi\"", "plain"});      // needs quoting
  }  // destructor writes the CSV
  ::unsetenv("AMTLCE_CSV");

  const std::string path = prefix + "csvcheck.csv";
  const auto lines = read_lines(path);
  std::remove(path.c_str());
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "a,b,c");
  EXPECT_EQ(lines[1], "1,2,3");
  // The ragged row is padded with empty cells up to the header width, so
  // every data line has the same field count.
  EXPECT_EQ(lines[2], "only,,");
  // RFC-4180: comma'd cells quoted, embedded quotes doubled.
  EXPECT_EQ(lines[3], "\"x,y\",\"say \"\"hi\"\"\",plain");
}

TEST(TableCsv, NoFileWithoutEnv) {
  ::unsetenv("AMTLCE_CSV");
  { bench::Table t("nocsv", {"a"}); }
  std::ifstream in("nocsv.csv");
  EXPECT_FALSE(in.good());
}

}  // namespace
