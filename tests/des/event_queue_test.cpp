#include "des/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using des::EventQueue;
using des::kTimeNever;

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(30, [&] { fired.push_back(3); });
  q.schedule(10, [&] { fired.push_back(1); });
  q.schedule(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 16; ++i) {
    q.schedule(42, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  ASSERT_EQ(fired.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  auto id = q.schedule(5, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  auto id = q.schedule(5, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(9999));
  EXPECT_FALSE(q.cancel(des::kInvalidEvent));
}

TEST(EventQueue, CancelledEventSkippedByNextTime) {
  EventQueue q;
  auto early = q.schedule(1, [] {});
  q.schedule(7, [] {});
  EXPECT_EQ(q.next_time(), 1);
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 7);
}

TEST(EventQueue, NextTimeOnEmptyIsNever) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), kTimeNever);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  auto a = q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PopReturnsTimeAndId) {
  EventQueue q;
  auto id = q.schedule(123, [] {});
  auto fired = q.pop();
  EXPECT_EQ(fired.time, 123);
  EXPECT_EQ(fired.id, id);
}

TEST(EventQueue, ManyCancellationsDoNotDisturbOrder) {
  EventQueue q;
  std::vector<des::EventId> ids;
  ids.reserve(100);
  for (int i = 0; i < 100; ++i) ids.push_back(q.schedule(i, [] {}));
  for (int i = 0; i < 100; i += 2) q.cancel(ids[static_cast<size_t>(i)]);
  des::Time prev = -1;
  while (!q.empty()) {
    auto fired = q.pop();
    EXPECT_GT(fired.time, prev);
    EXPECT_EQ(fired.time % 2, 1);  // even times were cancelled
    prev = fired.time;
  }
}

TEST(EventQueue, CancelStormKeepsHeapCompact) {
  // The network model's reschedule pattern: a completion event is
  // cancelled and rescheduled every time link occupancy changes.  Without
  // compaction each cycle leaks one tombstone into the heap.
  EventQueue q;
  q.schedule(1'000'000'000, [] {});  // long-lived anchor event
  std::size_t peak = 0;
  for (int i = 0; i < 100000; ++i) {
    auto id = q.schedule(1000 + i, [] {});
    q.cancel(id);
    peak = std::max(peak, q.heap_size());
  }
  EXPECT_EQ(q.size(), 1u);
  // Compaction triggers once dead entries outnumber live ones (above a
  // small floor), so the heap never grows past that constant bound.
  EXPECT_LE(peak, 130u);
  EXPECT_LE(q.heap_size(), 130u);
  EXPECT_EQ(q.pop().time, 1'000'000'000);
}

TEST(EventQueue, CompactionPreservesOrderAndFifoTies) {
  EventQueue q;
  std::vector<des::EventId> doomed;
  std::vector<int> fired;
  // Live events: equal-time group (FIFO-sensitive) plus spread-out times.
  for (int i = 0; i < 8; ++i) {
    q.schedule(500, [&fired, i] { fired.push_back(i); });
  }
  for (int i = 0; i < 8; ++i) {
    q.schedule(1000 + 10 * i, [&fired, i] { fired.push_back(100 + i); });
  }
  // Cancel-storm enough events to force several compactions underneath.
  for (int round = 0; round < 200; ++round) {
    doomed.push_back(q.schedule(2000 + round, [] {}));
  }
  for (const auto id : doomed) EXPECT_TRUE(q.cancel(id));
  while (!q.empty()) q.pop().fn();
  ASSERT_EQ(fired.size(), 16u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(fired[static_cast<size_t>(i)], i);  // FIFO among time ties
    EXPECT_EQ(fired[static_cast<size_t>(8 + i)], 100 + i);
  }
}

}  // namespace
