#include "des/event_queue.hpp"

#include <gtest/gtest.h>

#include <array>
#include <map>
#include <utility>
#include <vector>

#include "des/rng.hpp"

namespace {

using des::EventQueue;
using des::kTimeNever;

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(30, [&] { fired.push_back(3); });
  q.schedule(10, [&] { fired.push_back(1); });
  q.schedule(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 16; ++i) {
    q.schedule(42, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  ASSERT_EQ(fired.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  auto id = q.schedule(5, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  auto id = q.schedule(5, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(9999));
  EXPECT_FALSE(q.cancel(des::kInvalidEvent));
}

TEST(EventQueue, CancelledEventSkippedByNextTime) {
  EventQueue q;
  auto early = q.schedule(1, [] {});
  q.schedule(7, [] {});
  EXPECT_EQ(q.next_time(), 1);
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 7);
}

TEST(EventQueue, NextTimeOnEmptyIsNever) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), kTimeNever);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  auto a = q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PopReturnsTimeAndId) {
  EventQueue q;
  auto id = q.schedule(123, [] {});
  auto fired = q.pop();
  EXPECT_EQ(fired.time, 123);
  EXPECT_EQ(fired.id, id);
}

TEST(EventQueue, ManyCancellationsDoNotDisturbOrder) {
  EventQueue q;
  std::vector<des::EventId> ids;
  ids.reserve(100);
  for (int i = 0; i < 100; ++i) ids.push_back(q.schedule(i, [] {}));
  for (int i = 0; i < 100; i += 2) q.cancel(ids[static_cast<size_t>(i)]);
  des::Time prev = -1;
  while (!q.empty()) {
    auto fired = q.pop();
    EXPECT_GT(fired.time, prev);
    EXPECT_EQ(fired.time % 2, 1);  // even times were cancelled
    prev = fired.time;
  }
}

TEST(EventQueue, CancelStormKeepsHeapCompact) {
  // The network model's reschedule pattern: a completion event is
  // cancelled and rescheduled every time link occupancy changes.  Without
  // compaction each cycle leaks one tombstone into the heap.
  EventQueue q;
  q.schedule(1'000'000'000, [] {});  // long-lived anchor event
  std::size_t peak = 0;
  for (int i = 0; i < 100000; ++i) {
    auto id = q.schedule(1000 + i, [] {});
    q.cancel(id);
    peak = std::max(peak, q.heap_size());
  }
  EXPECT_EQ(q.size(), 1u);
  // Compaction triggers once dead entries outnumber live ones (above a
  // small floor), so the heap never grows past that constant bound.
  EXPECT_LE(peak, 130u);
  EXPECT_LE(q.heap_size(), 130u);
  EXPECT_EQ(q.pop().time, 1'000'000'000);
}

TEST(EventQueue, FiredIdCannotBeCancelled) {
  EventQueue q;
  auto id = q.schedule(5, [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, StaleIdDoesNotCancelSlotReuser) {
  // The slab recycles slots; a stale id for a fired/cancelled event must
  // never reach the NEW event occupying the same slot.  The generation tag
  // is what prevents that.
  EventQueue q;
  auto old_id = q.schedule(5, [] {});
  q.pop();  // slot freed, generation bumped
  bool fired = false;
  auto new_id = q.schedule(7, [&] { fired = true; });
  EXPECT_NE(old_id, new_id);
  EXPECT_FALSE(q.cancel(old_id));  // stale id bounces off the reused slot
  EXPECT_EQ(q.size(), 1u);
  q.pop().fn();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, SlotReuseAcrossManyGenerations) {
  EventQueue q;
  std::vector<des::EventId> history;
  for (int i = 0; i < 1000; ++i) {
    auto id = q.schedule(i, [] {});
    history.push_back(id);
    q.pop();
  }
  // A single-slot slab serviced all 1000 events; every retired id is dead.
  EXPECT_EQ(q.slab_size(), 1u);
  for (const auto id : history) EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, RescheduleMovesEventInTime) {
  EventQueue q;
  std::vector<int> fired;
  auto id = q.schedule(10, [&] { fired.push_back(1); });
  q.schedule(20, [&] { fired.push_back(2); });
  EXPECT_TRUE(q.reschedule(id, 30));  // now fires after the other event
  EXPECT_EQ(q.next_time(), 20);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{2, 1}));
}

TEST(EventQueue, RescheduleKeepsIdValid) {
  EventQueue q;
  auto id = q.schedule(10, [] {});
  EXPECT_TRUE(q.reschedule(id, 50));
  EXPECT_TRUE(q.cancel(id));  // same handle still names the event
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RescheduleDeadIdFails) {
  EventQueue q;
  auto id = q.schedule(10, [] {});
  q.pop();
  EXPECT_FALSE(q.reschedule(id, 50));
  EXPECT_FALSE(q.reschedule(des::kInvalidEvent, 50));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RescheduleToSameTimeMovesBehindTies) {
  // reschedule assigns a fresh FIFO sequence number, exactly as a
  // cancel+schedule pair would — an event re-armed at time T fires after
  // events already waiting at T.
  EventQueue q;
  std::vector<int> fired;
  auto id = q.schedule(10, [&] { fired.push_back(1); });
  q.schedule(10, [&] { fired.push_back(2); });
  EXPECT_TRUE(q.reschedule(id, 10));
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{2, 1}));
}

TEST(EventQueue, RescheduleStormKeepsHeapCompact) {
  // The reliability sublayer re-arms RTO timers in place.  Each
  // reschedule leaves one tombstone behind; pop()/schedule()-triggered
  // sweeps must keep the heap within a constant factor of live events.
  EventQueue q;
  auto timer = q.schedule(1'000'000, [] {});
  std::size_t peak = 0;
  for (int i = 0; i < 100000; ++i) {
    ASSERT_TRUE(q.reschedule(timer, 1'000'000 + i));
    peak = std::max(peak, q.heap_size());
  }
  EXPECT_EQ(q.size(), 1u);
  EXPECT_LE(peak, 130u);
  EXPECT_EQ(q.pop().time, 1'000'000 + 99999);
}

TEST(EventQueue, PopTriggeredCompactionBoundsHeap) {
  // Build a heap that is mostly tombstones while staying under the
  // cancel-path trigger, then verify that draining via pop() compacts:
  // heap_size stays within a small constant factor of size().
  EventQueue q;
  std::vector<des::EventId> doomed;
  for (int i = 0; i < 600; ++i) {
    q.schedule(10 * i, [] {});          // live
    doomed.push_back(q.schedule(10 * i + 5, [] {}));
  }
  for (const auto id : doomed) ASSERT_TRUE(q.cancel(id));
  std::size_t pops = 0;
  while (!q.empty()) {
    q.pop();
    ++pops;
    EXPECT_LE(q.heap_size(), 2 * q.size() + 64);
  }
  EXPECT_EQ(pops, 600u);
}

TEST(EventQueue, FuzzAgainstReferenceModel) {
  // Random schedule/cancel/reschedule/pop interleavings, checked against a
  // multimap-based reference queue.  The reference keys on (time, seq) so
  // FIFO tie-breaks are part of the contract being checked.
  des::Rng rng(0xFEEDFACE);
  EventQueue q;
  struct Ref {
    des::EventId id;
    int tag;
  };
  std::multimap<std::pair<des::Time, std::uint64_t>, Ref> model;
  std::uint64_t next_seq = 0;
  std::vector<int> fired_q, fired_model;
  int next_tag = 0;
  des::Time now = 0;
  for (int step = 0; step < 20000; ++step) {
    const double roll = rng.uniform();
    if (roll < 0.45) {
      const des::Time t = now + static_cast<des::Time>(rng() % 1000);
      const int tag = next_tag++;
      auto id = q.schedule(t, [&fired_q, tag] { fired_q.push_back(tag); });
      model.emplace(std::make_pair(t, next_seq++), Ref{id, tag});
    } else if (roll < 0.60 && !model.empty()) {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng() % model.size()));
      ASSERT_TRUE(q.cancel(it->second.id));
      model.erase(it);
    } else if (roll < 0.70 && !model.empty()) {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng() % model.size()));
      const des::Time t = now + static_cast<des::Time>(rng() % 1000);
      ASSERT_TRUE(q.reschedule(it->second.id, t));
      Ref ref = it->second;
      model.erase(it);
      model.emplace(std::make_pair(t, next_seq++), ref);
    } else if (!model.empty()) {
      ASSERT_FALSE(q.empty());
      auto expect = model.begin();
      ASSERT_EQ(q.next_time(), expect->first.first);
      auto fired = q.pop();
      now = fired.time;
      EXPECT_EQ(fired.id, expect->second.id);
      fired.fn();
      fired_model.push_back(expect->second.tag);
      model.erase(expect);
      ASSERT_EQ(fired_q.size(), fired_model.size());
      ASSERT_EQ(fired_q.back(), fired_model.back());
    }
    ASSERT_EQ(q.size(), model.size());
  }
  while (!q.empty()) {
    auto expect = model.begin();
    auto fired = q.pop();
    EXPECT_EQ(fired.id, expect->second.id);
    fired.fn();
    fired_model.push_back(expect->second.tag);
    model.erase(expect);
  }
  EXPECT_TRUE(model.empty());
  EXPECT_EQ(fired_q, fired_model);
}

TEST(EventQueue, CallbackWithLargeCaptureSurvivesSlab) {
  // Captures beyond InplaceCallback's inline buffer fall back to a heap
  // cell; the slab must move/destroy those correctly through slot reuse.
  EventQueue q;
  std::vector<int> sink;
  struct Big {
    std::array<std::uint64_t, 16> blob;
    std::vector<int>* out;
  };
  Big big{{}, &sink};
  big.blob[0] = 7;
  big.blob[15] = 9;
  auto id = q.schedule(
      1, [big] { big.out->push_back(static_cast<int>(big.blob[0] + big.blob[15])); });
  EXPECT_TRUE(q.cancel(id));  // heap cell destroyed without firing
  q.schedule(2, [big] { big.out->push_back(static_cast<int>(big.blob[15])); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(sink, (std::vector<int>{9}));
}

TEST(EventQueue, CompactionPreservesOrderAndFifoTies) {
  EventQueue q;
  std::vector<des::EventId> doomed;
  std::vector<int> fired;
  // Live events: equal-time group (FIFO-sensitive) plus spread-out times.
  for (int i = 0; i < 8; ++i) {
    q.schedule(500, [&fired, i] { fired.push_back(i); });
  }
  for (int i = 0; i < 8; ++i) {
    q.schedule(1000 + 10 * i, [&fired, i] { fired.push_back(100 + i); });
  }
  // Cancel-storm enough events to force several compactions underneath.
  for (int round = 0; round < 200; ++round) {
    doomed.push_back(q.schedule(2000 + round, [] {}));
  }
  for (const auto id : doomed) EXPECT_TRUE(q.cancel(id));
  while (!q.empty()) q.pop().fn();
  ASSERT_EQ(fired.size(), 16u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(fired[static_cast<size_t>(i)], i);  // FIFO among time ties
    EXPECT_EQ(fired[static_cast<size_t>(8 + i)], 100 + i);
  }
}

}  // namespace
