// Differential fuzzing: the calendar/timing-wheel hybrid EventQueue
// against the 4-ary-heap slot-slab queue it replaced (preserved verbatim
// as des::HeapSlabQueue).  Both queues promise the same contract —
// exact global (time, seq) pop order, generation-tagged EventIds whose
// cancel/reschedule outcomes depend only on the call history — so any
// randomized mix of operations driven at both must produce identical
// observable behavior, operation by operation.  The two implementations
// share no ordering machinery (sorted calendar buckets + overflow heap
// vs. one 4-ary heap), which is what gives the comparison its teeth:
// a bucket-boundary or spill bug in the hybrid cannot be mirrored by a
// matching bug in the reference.
//
// The op mix deliberately includes the hybrid's edge geometry: deltas
// that straddle its bucket width (1024 ns) and wheel span (256 KiB ns),
// far-future times that park in the overflow tier and must re-spill as
// the wheel advances, same-tick collisions (FIFO order must hold), and
// past-time schedules (the queue orders them before the rest of the
// current bucket rather than asserting — the ENGINE owns past-time
// policy, see engine_release_guard_test.cpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <vector>

#include "des/event_queue.hpp"
#include "des/heap_slab_queue.hpp"
#include "des/rng.hpp"

namespace {

using des::EventId;
using des::EventQueue;
using des::HeapSlabQueue;
using des::kInvalidEvent;
using des::Time;

// One live event mirrored in both queues.  `tag` is the payload both
// callbacks deliver, so pop-order equality is checked on user-visible
// data, not on internal ids.
struct Mirrored {
  EventId hybrid = kInvalidEvent;
  EventId heapslab = kInvalidEvent;
  std::uint64_t tag = 0;
};

class Differ {
 public:
  void schedule(Time t, std::uint64_t tag) {
    Mirrored m;
    m.tag = tag;
    m.hybrid = hybrid_.schedule(t, [this, tag] { hybrid_fired_.push_back(tag); });
    m.heapslab =
        heapslab_.schedule(t, [this, tag] { heapslab_fired_.push_back(tag); });
    live_.push_back(m);
  }

  // Applies cancel/reschedule to BOTH queues and asserts they agree on
  // the outcome (true = was live).  `idx` indexes live_; stale handles
  // (already popped/cancelled) are legal inputs — the generation tag
  // must make both queues reject them identically.
  void cancel(std::size_t idx) {
    const Mirrored m = live_[idx];
    const bool a = hybrid_.cancel(m.hybrid);
    const bool b = heapslab_.cancel(m.heapslab);
    ASSERT_EQ(a, b) << "cancel liveness diverged for tag " << m.tag;
    if (a) forget(idx);
  }

  void reschedule(std::size_t idx, Time t) {
    const Mirrored m = live_[idx];
    const bool a = hybrid_.reschedule(m.hybrid, t);
    const bool b = heapslab_.reschedule(m.heapslab, t);
    ASSERT_EQ(a, b) << "reschedule liveness diverged for tag " << m.tag;
  }

  void reschedule_seq(std::size_t idx, Time t, std::uint64_t seq) {
    const Mirrored m = live_[idx];
    const bool a = hybrid_.reschedule_seq(m.hybrid, t, seq);
    const bool b = heapslab_.reschedule_seq(m.heapslab, t, seq);
    ASSERT_EQ(a, b) << "reschedule_seq liveness diverged for tag " << m.tag;
  }

  // Pops one event from each queue and asserts identical (time, tag).
  void pop_one() {
    ASSERT_EQ(hybrid_.empty(), heapslab_.empty());
    if (hybrid_.empty()) return;
    Time ta, tb;
    std::uint64_t sa, sb;
    ASSERT_TRUE(hybrid_.peek_front(ta, sa));
    ASSERT_TRUE(heapslab_.peek_front(tb, sb));
    ASSERT_EQ(ta, tb) << "front time diverged";
    ASSERT_EQ(sa, sb) << "front seq diverged";
    ASSERT_EQ(hybrid_.next_time(), heapslab_.next_time());
    auto fa = hybrid_.pop();
    auto fb = heapslab_.pop();
    ASSERT_EQ(fa.time, fb.time);
    fa.fn();
    fb.fn();
    ASSERT_EQ(hybrid_fired_.size(), heapslab_fired_.size());
    ASSERT_EQ(hybrid_fired_.back(), heapslab_fired_.back())
        << "pop order diverged at event " << hybrid_fired_.size();
  }

  void drain() {
    while (!hybrid_.empty() || !heapslab_.empty()) pop_one();
    ASSERT_EQ(hybrid_fired_, heapslab_fired_);
  }

  std::size_t tracked() const { return live_.size(); }
  bool queues_empty() const { return hybrid_.empty() && heapslab_.empty(); }
  std::size_t size() const { return hybrid_.size(); }

  void check_sizes() const {
    ASSERT_EQ(hybrid_.size(), heapslab_.size());
    ASSERT_EQ(hybrid_.slab_size(), heapslab_.slab_size());
  }

 private:
  // Swap-removes a consumed handle so the live_ pool stays dense; stale
  // handles deliberately LINGER with probability (see callers) to keep
  // exercising generation-tag rejection.
  void forget(std::size_t idx) {
    live_[idx] = live_.back();
    live_.pop_back();
  }

  EventQueue hybrid_;
  HeapSlabQueue heapslab_;
  std::vector<Mirrored> live_;
  std::vector<std::uint64_t> hybrid_fired_;
  std::vector<std::uint64_t> heapslab_fired_;
};

// Deltas chosen around the hybrid's geometry: same-tick (0), sub-bucket,
// exactly one bucket (1024), bucket-straddling, most of the wheel span,
// exactly the span (262144), just past it (overflow), and deep overflow
// (re-spills through many wheel revolutions).
constexpr Time kDeltas[] = {0,    1,      7,      1023,   1024,  1025,
                            4096, 200000, 262143, 262144, 262145, 1 << 20,
                            50'000'000, 80'413'426};

TEST(QueueDifferential, RandomizedOpMixMatchesReference) {
  des::Rng rng(0xD1FFu);
  Differ d;
  Time now = 0;
  std::uint64_t next_tag = 0;
  for (int op = 0; op < 200'000; ++op) {
    const std::uint32_t dice = rng.below(100);
    if (dice < 45 || d.queues_empty()) {
      const Time delta = kDeltas[rng.below(std::size(kDeltas))];
      d.schedule(now + delta, next_tag++);
    } else if (dice < 65) {
      d.pop_one();
    } else if (dice < 80 && d.tracked() > 0) {
      d.cancel(rng.below(d.tracked()));
    } else if (dice < 90 && d.tracked() > 0) {
      // Reschedules may target the past (relative to pops so far): the
      // queue contract orders such events before everything pending.
      const Time delta = kDeltas[rng.below(std::size(kDeltas))];
      const Time t = (rng() & 1) != 0 && now > 2048
                         ? now - 2048 + static_cast<Time>(rng.below(4096))
                         : now + delta;
      d.reschedule(rng.below(d.tracked()), t);
    } else if (d.tracked() > 0) {
      // Explicit-seq reschedule, the crash-recovery replay path: a
      // far-future seq must not disturb relative order of later pops.
      const Time delta = kDeltas[rng.below(std::size(kDeltas))];
      d.reschedule_seq(rng.below(d.tracked()), now + delta,
                       (1u << 30) + static_cast<std::uint64_t>(op));
    }
    if ((op & 1023) == 0) d.check_sizes();
    now += static_cast<Time>(rng.below(512));
  }
  d.drain();
}

// A second run biased toward churn (cancel/reschedule dominate): the
// tombstone-compaction path runs constantly in both queues, which is
// where liveness bookkeeping bugs would hide.
TEST(QueueDifferential, ChurnHeavyMixMatchesReference) {
  des::Rng rng(0xC4A7u);
  Differ d;
  Time now = 0;
  std::uint64_t next_tag = 0;
  for (int op = 0; op < 120'000; ++op) {
    const std::uint32_t dice = rng.below(100);
    if (dice < 30 || d.queues_empty()) {
      const Time delta = kDeltas[rng.below(std::size(kDeltas))];
      d.schedule(now + delta, next_tag++);
    } else if (dice < 40) {
      d.pop_one();
    } else if (dice < 75 && d.tracked() > 0) {
      d.cancel(rng.below(d.tracked()));
    } else if (d.tracked() > 0) {
      const Time delta = kDeltas[rng.below(std::size(kDeltas))];
      d.reschedule(rng.below(d.tracked()), now + delta);
    }
    if ((op & 511) == 0) d.check_sizes();
    now += static_cast<Time>(rng.below(128));
  }
  d.drain();
}

}  // namespace
