#include "des/coro.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using des::CoTask;
using des::Engine;
using des::SimEvent;
using des::SimFuture;

TEST(Coro, DelayResumesAtRightTime) {
  Engine eng;
  std::vector<des::Time> marks;
  auto body = [&](Engine& e) -> CoTask {
    marks.push_back(e.now());
    co_await des::delay(e, 100);
    marks.push_back(e.now());
    co_await des::delay(e, 50);
    marks.push_back(e.now());
  };
  body(eng);
  eng.run();
  EXPECT_EQ(marks, (std::vector<des::Time>{0, 100, 150}));
}

TEST(Coro, StartsEagerly) {
  Engine eng;
  bool started = false;
  auto body = [&](Engine& e) -> CoTask {
    started = true;
    co_await des::delay(e, 1);
  };
  body(eng);
  EXPECT_TRUE(started);  // before eng.run()
  eng.run();
}

TEST(Coro, SimEventWakesAllWaiters) {
  Engine eng;
  SimEvent ev(eng);
  std::vector<int> woke;
  auto waiter = [&](int id) -> CoTask {
    co_await ev;
    woke.push_back(id);
  };
  waiter(1);
  waiter(2);
  waiter(3);
  eng.schedule_at(10, [&] { ev.trigger(); });
  eng.run();
  EXPECT_EQ(woke, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(ev.triggered());
}

TEST(Coro, AwaitAfterTriggerDoesNotBlock) {
  Engine eng;
  SimEvent ev(eng);
  ev.trigger();
  bool ran = false;
  auto body = [&]() -> CoTask {
    co_await ev;
    ran = true;
  };
  body();
  eng.run();
  EXPECT_TRUE(ran);
}

TEST(Coro, TriggerIsIdempotent) {
  Engine eng;
  SimEvent ev(eng);
  int wakes = 0;
  auto body = [&]() -> CoTask {
    co_await ev;
    ++wakes;
  };
  body();
  ev.trigger();
  ev.trigger();
  eng.run();
  EXPECT_EQ(wakes, 1);
}

TEST(Coro, SimFutureDeliversValue) {
  Engine eng;
  SimFuture<int> fut(eng);
  int got = 0;
  auto body = [&]() -> CoTask {
    got = co_await fut;
  };
  body();
  eng.schedule_at(5, [&] { fut.set_value(42); });
  eng.run();
  EXPECT_EQ(got, 42);
  EXPECT_TRUE(fut.ready());
  EXPECT_EQ(fut.get(), 42);
}

TEST(Coro, SimFutureAwaitAfterSetYieldsImmediately) {
  Engine eng;
  SimFuture<int> fut(eng);
  fut.set_value(7);
  int got = 0;
  auto body = [&]() -> CoTask {
    got = co_await fut;
  };
  body();
  EXPECT_EQ(got, 7);  // ready future resumes synchronously
}

TEST(Coro, PingPongBetweenTwoCoroutines) {
  Engine eng;
  SimEvent ping(eng), pong(eng);
  std::vector<std::pair<char, des::Time>> log;
  auto a = [&]() -> CoTask {
    co_await des::delay(eng, 10);
    log.emplace_back('a', eng.now());
    ping.trigger();
    co_await pong;
    log.emplace_back('a', eng.now());
  };
  auto b = [&]() -> CoTask {
    co_await ping;
    co_await des::delay(eng, 10);
    log.emplace_back('b', eng.now());
    pong.trigger();
  };
  a();
  b();
  eng.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], std::make_pair('a', des::Time{10}));
  EXPECT_EQ(log[1], std::make_pair('b', des::Time{20}));
  EXPECT_EQ(log[2], std::make_pair('a', des::Time{20}));
}

}  // namespace
