#include "des/inplace_callback.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace {

using des::InplaceCallback;

TEST(InplaceCallback, DefaultIsEmpty) {
  InplaceCallback cb;
  EXPECT_FALSE(cb);
  InplaceCallback null_cb = nullptr;
  EXPECT_FALSE(null_cb);
}

TEST(InplaceCallback, SmallCaptureStaysInline) {
  int hits = 0;
  InplaceCallback cb = [&hits] { ++hits; };
  ASSERT_TRUE(cb);
  EXPECT_TRUE(cb.is_inline());
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceCallback, CaptureAtInlineBoundaryStaysInline) {
  struct Exact {
    std::array<std::byte, InplaceCallback::kInlineBytes> blob;
    void operator()() {}
  };
  static_assert(sizeof(Exact) == InplaceCallback::kInlineBytes);
  InplaceCallback cb = Exact{};
  EXPECT_TRUE(cb.is_inline());
}

TEST(InplaceCallback, OversizedCaptureFallsBackToHeap) {
  std::array<std::uint64_t, 12> blob{};
  blob[11] = 42;
  std::uint64_t got = 0;
  InplaceCallback cb = [blob, &got] { got = blob[11]; };
  ASSERT_TRUE(cb);
  EXPECT_FALSE(cb.is_inline());
  cb();
  EXPECT_EQ(got, 42u);
}

TEST(InplaceCallback, MoveTransfersOwnership) {
  int hits = 0;
  InplaceCallback a = [&hits] { ++hits; };
  InplaceCallback b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): testing moved-from state
  ASSERT_TRUE(b);
  b();
  EXPECT_EQ(hits, 1);
  InplaceCallback c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceCallback, MoveOnlyCaptureWorks) {
  auto owned = std::make_unique<int>(7);
  int got = 0;
  InplaceCallback cb = [p = std::move(owned), &got] { got = *p; };
  InplaceCallback moved = std::move(cb);
  moved();
  EXPECT_EQ(got, 7);
}

TEST(InplaceCallback, DestructorRunsCaptureDestructors) {
  auto counter = std::make_shared<int>(0);
  {
    InplaceCallback cb = [counter] { (void)counter; };
    EXPECT_EQ(counter.use_count(), 2);
  }
  EXPECT_EQ(counter.use_count(), 1);
  {
    // Same check through the heap-cell path.
    std::array<std::byte, 128> pad{};
    InplaceCallback cb = [counter, pad] { (void)pad; };
    EXPECT_FALSE(cb.is_inline());
    EXPECT_EQ(counter.use_count(), 2);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(InplaceCallback, ResetReleasesAndEmpties) {
  auto counter = std::make_shared<int>(0);
  InplaceCallback cb = [counter] { (void)counter; };
  EXPECT_EQ(counter.use_count(), 2);
  cb.reset();
  EXPECT_FALSE(cb);
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(InplaceCallback, MoveAssignReplacesExisting) {
  auto a = std::make_shared<int>(0);
  auto b = std::make_shared<int>(0);
  InplaceCallback cb = [a] { (void)a; };
  cb = InplaceCallback([b] { (void)b; });
  EXPECT_EQ(a.use_count(), 1);  // old capture destroyed on assignment
  EXPECT_EQ(b.use_count(), 2);
}

TEST(InplaceCallback, HeapCellMoveDoesNotReallocate) {
  // Moving a heap-fallback callback just relocates the cell pointer; the
  // callable object itself must not be copied or re-created.
  std::array<std::uint64_t, 16> blob{};
  int constructions = 0;
  struct Probe {
    std::array<std::uint64_t, 16> pad;
    int* count;
    Probe(std::array<std::uint64_t, 16> p, int* c) : pad(p), count(c) { ++*count; }
    Probe(const Probe& o) : pad(o.pad), count(o.count) { ++*count; }
    Probe(Probe&& o) noexcept : pad(o.pad), count(o.count) { ++*count; }
    void operator()() {}
  };
  InplaceCallback cb = Probe(blob, &constructions);
  const int after_emplace = constructions;
  InplaceCallback moved = std::move(cb);
  InplaceCallback moved_again = std::move(moved);
  EXPECT_EQ(constructions, after_emplace);  // pointer relocation only
  moved_again();
}

}  // namespace
