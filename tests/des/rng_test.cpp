#include "des/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "des/time.hpp"

namespace {

using des::Rng;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(99);
  double sum = 0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng r(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DeriveSeedDecorrelatesStreams) {
  const auto s1 = des::derive_seed(42, 0);
  const auto s2 = des::derive_seed(42, 1);
  EXPECT_NE(s1, s2);
  Rng a(s1), b(s2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(TimeUtils, FromSecondsRoundTrips) {
  EXPECT_EQ(des::from_seconds(1.0), des::kSecond);
  EXPECT_EQ(des::from_seconds(1e-6), des::kMicrosecond);
  EXPECT_DOUBLE_EQ(des::to_seconds(des::kSecond), 1.0);
}

TEST(TimeUtils, TransferTimeMatchesRate) {
  // 12.5 GB/s (100 Gbit/s): 125000 bytes take 10 us.
  EXPECT_EQ(des::transfer_time(125000, 12.5e9), 10 * des::kMicrosecond);
  EXPECT_EQ(des::transfer_time(0, 12.5e9), 0);
  // Tiny transfers round up to at least 1 ns.
  EXPECT_GE(des::transfer_time(1, 12.5e9), 1);
}

TEST(TimeUtils, FormatTimePicksUnits) {
  EXPECT_EQ(des::format_time(5), "5 ns");
  EXPECT_EQ(des::format_time(12'345), "12.345 us");
  EXPECT_EQ(des::format_time(12'345'678), "12.346 ms");
  EXPECT_EQ(des::format_time(12'345'678'901), "12.346 s");
}

}  // namespace
