// Release-build scheduling-guard regression test.
//
// The engine's past-time guard used to be assert-only: correct in every
// build this project ships (CMakeLists strips -DNDEBUG so Release keeps
// assertions), but UNDEFINED BEHAVIOR the day someone compiles the
// header into an embedding project with NDEBUG — the hybrid queue's
// bucket cursor assumes monotone pops, so a past-time schedule that
// slips through silently corrupts firing order.  Engine::guard_time now
// fails CLOSED under NDEBUG: the request is clamped to now(), counted in
// past_schedules_clamped(), and the event fires immediately after the
// current one — deterministic, order-preserving, observable.
//
// This TU is the regression proof: it is compiled with NDEBUG force-
// defined (see tests/des/CMakeLists.txt) and linked as its own binary so
// no assert-enabled TU in the same image can supply competing inline
// definitions of the engine.  The engine is header-only, so the NDEBUG
// definition here is the one that governs guard_time.
#ifndef NDEBUG
#error "this test must be compiled with NDEBUG (see tests/des/CMakeLists.txt)"
#endif

#include <gtest/gtest.h>

#include <vector>

#include "des/engine.hpp"

namespace {

TEST(EngineReleaseGuard, PastScheduleClampsAndCounts) {
  des::Engine eng;
  std::vector<int> order;
  eng.schedule_at(100, [&] { order.push_back(1); });
  eng.run();
  ASSERT_EQ(eng.now(), 100);
  ASSERT_EQ(eng.past_schedules_clamped(), 0u);

  // A request 50 ns in the past must not assert (NDEBUG), must not
  // corrupt queue order, and must be visible in the clamp counter.
  eng.schedule_at(50, [&] { order.push_back(2); });
  EXPECT_EQ(eng.past_schedules_clamped(), 1u);
  eng.schedule_at(100, [&] { order.push_back(3); });  // t == now() is legal
  eng.run();
  EXPECT_EQ(eng.now(), 100);  // clamped event fired AT now(), not before
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));  // FIFO among same-time
}

TEST(EngineReleaseGuard, PastRescheduleClampsAndCounts) {
  des::Engine eng;
  int fired_at = -1;
  eng.schedule_at(10, [] {});
  const des::EventId id = eng.schedule_at(500, [&] {
    fired_at = static_cast<int>(eng.now());
  });
  eng.schedule_at(200, [&] {
    // From event context at t=200, rescheduling to t=40 is a past-time
    // request: clamp to 200 and fire it next.
    EXPECT_TRUE(eng.reschedule(id, 40));
  });
  eng.run();
  EXPECT_EQ(eng.past_schedules_clamped(), 1u);
  EXPECT_EQ(fired_at, 200);
}

TEST(EngineReleaseGuard, ShardedPastScheduleClamps) {
  des::Engine eng;
  std::vector<int> order;
  eng.schedule_on(3, 1000, [&] { order.push_back(1); });
  eng.run();
  ASSERT_EQ(eng.now(), 1000);
  eng.schedule_on(7, 250, [&] { order.push_back(2); });
  EXPECT_EQ(eng.past_schedules_clamped(), 1u);
  eng.run();
  EXPECT_EQ(eng.now(), 1000);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EngineReleaseGuard, LegalSchedulesNeverCount) {
  des::Engine eng;
  for (int i = 0; i < 1000; ++i) {
    eng.schedule_at(i * 10, [] {});
  }
  eng.run();
  EXPECT_EQ(eng.past_schedules_clamped(), 0u);
  EXPECT_EQ(eng.events_fired(), 1000u);
}

}  // namespace
