#include "des/poll_loop.hpp"

#include <gtest/gtest.h>

#include "des/engine.hpp"
#include "des/sim_thread.hpp"

namespace {

using des::Engine;
using des::PollLoop;
using des::SimThread;

TEST(PollLoop, RunsWhileBodyReportsWork) {
  Engine eng;
  SimThread th(eng, "t");
  int remaining = 5;
  int iterations = 0;
  PollLoop loop(th, 10, [&]() {
    ++iterations;
    return --remaining > 0;
  });
  loop.start();
  eng.run();
  EXPECT_EQ(iterations, 5);
  EXPECT_EQ(remaining, 0);
}

TEST(PollLoop, ParksWhenIdleAndResumesOnWake) {
  Engine eng;
  SimThread th(eng, "t");
  int iterations = 0;
  PollLoop loop(th, 10, [&]() {
    ++iterations;
    return false;  // always idle
  });
  loop.start();
  eng.run();
  EXPECT_EQ(iterations, 1);
  EXPECT_TRUE(loop.parked());
  // A parked loop generates no events: the engine stays drained.
  EXPECT_EQ(eng.pending_events(), 0u);
  loop.wake();
  eng.run();
  EXPECT_EQ(iterations, 2);
}

TEST(PollLoop, WakeDuringBodyTriggersAnotherIteration) {
  Engine eng;
  SimThread th(eng, "t");
  int iterations = 0;
  PollLoop* self = nullptr;
  PollLoop loop(th, 10, [&]() {
    ++iterations;
    if (iterations == 1) self->wake();  // new work arrived mid-poll
    return false;
  });
  self = &loop;
  loop.start();
  eng.run();
  EXPECT_EQ(iterations, 2);
}

TEST(PollLoop, StopPreventsFurtherIterations) {
  Engine eng;
  SimThread th(eng, "t");
  int iterations = 0;
  PollLoop loop(th, 10, [&]() {
    ++iterations;
    return true;  // would run forever
  });
  loop.start();
  for (int i = 0; i < 20 && eng.step(); ++i) {
  }
  loop.stop();
  eng.run();
  const int at_stop = iterations;
  EXPECT_EQ(iterations, at_stop);
  loop.wake();  // wake after stop is a no-op
  eng.run();
  EXPECT_EQ(iterations, at_stop);
}

TEST(PollLoop, IterationCostOccupiesThread) {
  Engine eng;
  SimThread th(eng, "t");
  int iterations = 0;
  PollLoop loop(th, 100, [&]() { return ++iterations < 4; });
  loop.start();
  eng.run();
  EXPECT_EQ(th.busy_time(), 400);
}

}  // namespace
