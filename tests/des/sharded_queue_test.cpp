// ShardedEventQueue: the load-bearing property is EXACT order equivalence
// with a monolithic EventQueue — sharding must change where events live,
// never when they fire.  The fuzz test drives both queues with an
// identical randomized operation mix (schedule on random shards, cancel,
// reschedule, pop) and requires identical pop sequences.
#include "des/sharded_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "des/event_queue.hpp"
#include "des/rng.hpp"

namespace des {
namespace {

TEST(ShardedQueue, SingleShardBasicOrder) {
  ShardedEventQueue q(1);
  std::vector<int> fired;
  q.schedule(0, 30, [&] { fired.push_back(3); });
  q.schedule(0, 10, [&] { fired.push_back(1); });
  q.schedule(0, 20, [&] { fired.push_back(2); });
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.next_time(), 10);
  while (!q.empty()) {
    auto f = q.pop();
    f.fn();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(ShardedQueue, CrossShardFifoTieBreak) {
  // Equal timestamps across DIFFERENT shards must fire in global
  // scheduling order — the property that makes sharding invisible.
  ShardedEventQueue q(4);
  std::vector<int> fired;
  q.schedule(2, 100, [&] { fired.push_back(0); });
  q.schedule(0, 100, [&] { fired.push_back(1); });
  q.schedule(3, 100, [&] { fired.push_back(2); });
  q.schedule(1, 100, [&] { fired.push_back(3); });
  q.schedule(2, 100, [&] { fired.push_back(4); });
  while (!q.empty()) {
    auto f = q.pop();
    EXPECT_EQ(f.time, 100);
    f.fn();
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ShardedQueue, GrowOnDemandPreservesOrder) {
  // Start single-shard (fast path), then schedule onto a high shard index:
  // the 1 -> N transition must seed the candidate heap with the existing
  // shard-0 front or earlier events would be lost from the merge.
  ShardedEventQueue q(1);
  std::vector<int> fired;
  q.schedule(0, 10, [&] { fired.push_back(1); });
  q.schedule(0, 50, [&] { fired.push_back(5); });
  q.schedule(7, 20, [&] { fired.push_back(2); });  // grows to 8 shards
  EXPECT_EQ(q.num_shards(), 8u);
  q.schedule(3, 40, [&] { fired.push_back(4); });
  q.schedule(7, 30, [&] { fired.push_back(3); });
  while (!q.empty()) {
    auto f = q.pop();
    f.fn();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(ShardedQueue, CancelAndRescheduleAcrossShards) {
  ShardedEventQueue q(3);
  std::vector<int> fired;
  auto a = q.schedule(0, 10, [&] { fired.push_back(1); });
  auto b = q.schedule(1, 20, [&] { fired.push_back(2); });
  auto c = q.schedule(2, 30, [&] { fired.push_back(3); });
  EXPECT_TRUE(q.cancel(b));
  EXPECT_FALSE(q.cancel(b));  // already gone
  EXPECT_TRUE(q.reschedule(c, 5));  // now fires before a
  EXPECT_EQ(q.next_time(), 5);
  while (!q.empty()) {
    auto f = q.pop();
    f.fn();
  }
  EXPECT_EQ(fired, (std::vector<int>{3, 1}));
  EXPECT_FALSE(q.cancel(a));  // fired events cannot be cancelled
}

TEST(ShardedQueue, SafeHorizonIsMinOtherShardPlusLookahead) {
  ShardedEventQueue q(4);
  q.schedule(0, 100, [] {});
  q.schedule(1, 250, [] {});
  q.schedule(2, 400, [] {});
  // Shard 3 empty.  Horizon of shard 0 = min(250, 400) + lookahead.
  EXPECT_EQ(q.safe_horizon(0, 600), 250 + 600);
  // Horizon of shard 1 = min(100, 400) + lookahead.
  EXPECT_EQ(q.safe_horizon(1, 600), 100 + 600);
  // With every other shard empty the horizon is unbounded.
  ShardedEventQueue lone(4);
  lone.schedule(2, 77, [] {});
  EXPECT_EQ(lone.safe_horizon(2, 600), kTimeNever);
}

// The equivalence oracle: a monolithic EventQueue fed the identical
// schedule/cancel/reschedule/pop sequence.  Payloads are unique ints so
// order mismatches cannot cancel out.
TEST(ShardedQueue, FuzzExactEquivalenceWithMonolithicQueue) {
  for (std::uint64_t seed : {1ull, 42ull, 20260808ull}) {
    Rng rng(seed);
    constexpr std::uint32_t kShards = 9;  // deliberately not a power of 2
    ShardedEventQueue sharded(1);         // force the grow path too
    EventQueue mono;
    std::vector<std::pair<ShardedEventQueue::Id, EventId>> live;
    std::vector<int> fired_sharded, fired_mono;
    int payload = 0;
    Time max_popped = 0;

    for (int op = 0; op < 20000; ++op) {
      const std::uint64_t dice = rng() % 100;
      if (dice < 55 || live.empty()) {
        const Time t = max_popped + static_cast<Time>(rng() % 64);
        const auto shard =
            static_cast<std::uint32_t>(rng() % kShards);
        const int p = payload++;
        auto sid = sharded.schedule(shard, t, [&, p] {
          fired_sharded.push_back(p);
        });
        auto mid = mono.schedule(t, [&, p] { fired_mono.push_back(p); });
        live.emplace_back(sid, mid);
      } else if (dice < 70) {
        const std::size_t pick = rng() % live.size();
        const bool a = sharded.cancel(live[pick].first);
        const bool b = mono.cancel(live[pick].second);
        ASSERT_EQ(a, b);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      } else if (dice < 80) {
        const std::size_t pick = rng() % live.size();
        const Time t = max_popped + static_cast<Time>(rng() % 64);
        const bool a = sharded.reschedule(live[pick].first, t);
        const bool b = mono.reschedule(live[pick].second, t);
        ASSERT_EQ(a, b);
      } else {
        ASSERT_EQ(sharded.empty(), mono.empty());
        if (!sharded.empty()) {
          ASSERT_EQ(sharded.next_time(), mono.next_time());
          auto fs = sharded.pop();
          auto fm = mono.pop();
          ASSERT_EQ(fs.time, fm.time);
          max_popped = fs.time;
          fs.fn();
          fm.fn();
          ASSERT_EQ(fired_sharded.back(), fired_mono.back());
        }
      }
      ASSERT_EQ(sharded.size(), mono.size());
    }
    // Drain both and require the full residual order to match.
    while (!mono.empty()) {
      ASSERT_FALSE(sharded.empty());
      auto fs = sharded.pop();
      auto fm = mono.pop();
      ASSERT_EQ(fs.time, fm.time);
      fs.fn();
      fm.fn();
    }
    EXPECT_TRUE(sharded.empty());
    EXPECT_EQ(fired_sharded, fired_mono);
  }
}

// Fail-stop crash DURING the hot phase of the hybrid queue: the victim
// shard dies while its queue holds events in both tiers — some in the
// near-future calendar wheel (cursor mid-bucket, pops in progress) and
// some parked in the far-future overflow heap awaiting a spill.
// cancel_shard() must drop every one of them without perturbing the
// global (time, seq) order of the survivors, and the shard must accept
// fresh events afterwards (lineage recovery reuses the shard index).
TEST(ShardedQueue, CancelShardMidRunWithBothTiersPopulated) {
  ShardedEventQueue q(4);
  // kWheelSpan for the hybrid queue is 262144 ns; times below 200k land
  // in the wheel, the +10ms/+80ms groups start in the overflow tier.
  constexpr Time kFar1 = 10'000'000;
  constexpr Time kFar2 = 80'000'000;
  struct Expect {
    Time time;
    std::uint64_t idx;  // global schedule order == FIFO seq order
    int tag;
  };
  std::vector<int> fired;
  std::vector<Expect> pending;  // mirror of every still-live event
  std::uint64_t idx = 0;
  auto sched = [&](std::uint32_t shard, Time t, int tag) {
    q.schedule(shard, t, [&fired, tag] { fired.push_back(tag); });
    pending.push_back({t, idx++, tag});
  };
  const std::uint32_t victim = 2;
  for (std::uint32_t s = 0; s < 4; ++s) {
    for (int i = 0; i < 32; ++i) {
      const int tag = static_cast<int>(s) * 1000 + i;
      sched(s, static_cast<Time>(i) * 5000, tag);            // wheel tier
      sched(s, kFar1 + static_cast<Time>(i) * 3000, tag + 100);  // overflow
      sched(s, kFar2 + static_cast<Time>(i) * 7000, tag + 200);  // overflow
    }
  }
  // Hot phase: pop a third of the population, so every shard's wheel
  // cursor is mid-flight and part of the overflow has spilled.
  const std::size_t total = pending.size();
  for (std::size_t i = 0; i < total / 3; ++i) {
    auto f = q.pop();
    f.fn();
  }
  // The mirror drops what fired (fired order is checked at the end).
  std::erase_if(pending, [&](const Expect& e) {
    for (int tag : fired) {
      if (tag == e.tag) return true;
    }
    return false;
  });

  const std::size_t victim_live = q.shard_size(victim);
  EXPECT_GT(victim_live, 0u);
  EXPECT_EQ(q.cancel_shard(victim), victim_live);
  EXPECT_EQ(q.shard_size(victim), 0u);
  std::erase_if(pending, [&](const Expect& e) {
    return static_cast<std::uint32_t>(e.tag / 1000) == victim;
  });
  EXPECT_EQ(q.size(), pending.size());

  // Recovery path: the crashed shard keeps working for re-executed
  // lineage — schedule near-tier AND far-tier events on it post-crash.
  sched(victim, kFar1, 9001);
  sched(victim, kFar2 + 1, 9002);
  const Time resume = q.next_time();
  sched(victim, resume, 9000);  // ties with the current front; FIFO-last

  const std::size_t fired_before_drain = fired.size();
  while (!q.empty()) q.pop().fn();

  // Survivors must have fired in exact (time, seq) order.
  std::sort(pending.begin(), pending.end(), [](const Expect& a, const Expect& b) {
    return a.time != b.time ? a.time < b.time : a.idx < b.idx;
  });
  ASSERT_EQ(fired.size(), fired_before_drain + pending.size());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    EXPECT_EQ(fired[fired_before_drain + i], pending[i].tag) << "at " << i;
  }
}

}  // namespace
}  // namespace des
