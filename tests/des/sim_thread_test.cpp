#include "des/sim_thread.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using des::Engine;
using des::SimThread;

TEST(SimThread, ItemsExecuteSeriallyWithCosts) {
  Engine eng;
  SimThread th(eng, "t");
  std::vector<des::Time> done;
  th.post_work(100, [&] { done.push_back(eng.now()); });
  th.post_work(50, [&] { done.push_back(eng.now()); });
  th.post_work(25, [&] { done.push_back(eng.now()); });
  eng.run();
  EXPECT_EQ(done, (std::vector<des::Time>{100, 150, 175}));
  EXPECT_EQ(th.busy_time(), 175);
}

TEST(SimThread, ZeroCostPostRunsInOrder) {
  Engine eng;
  SimThread th(eng, "t");
  std::vector<int> order;
  th.post([&] { order.push_back(1); });
  th.post([&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimThread, ChargeExtendsOccupancy) {
  Engine eng;
  SimThread th(eng, "t");
  std::vector<des::Time> done;
  th.post_work(10, [&] {
    th.charge(90);  // discovered work: costs 90 more
    done.push_back(eng.now());
  });
  th.post_work(10, [&] { done.push_back(eng.now()); });
  eng.run();
  // First item fires at 10 (its nominal cost); the charge delays the second
  // item's start to 100, so it completes at 110.
  EXPECT_EQ(done, (std::vector<des::Time>{10, 110}));
  EXPECT_EQ(th.busy_time(), 110);
}

TEST(SimThread, PostFromWithinItemQueuesAfter) {
  Engine eng;
  SimThread th(eng, "t");
  std::vector<des::Time> done;
  th.post_work(10, [&] {
    done.push_back(eng.now());
    th.post_work(5, [&] { done.push_back(eng.now()); });
  });
  eng.run();
  EXPECT_EQ(done, (std::vector<des::Time>{10, 15}));
}

TEST(SimThread, IdleGapDoesNotCountAsBusy) {
  Engine eng;
  SimThread th(eng, "t");
  th.post_work(10, [] {});
  eng.run();
  eng.schedule_at(1000, [&] { th.post_work(10, [] {}); });
  eng.run();
  EXPECT_EQ(eng.now(), 1010);
  EXPECT_EQ(th.busy_time(), 20);
  EXPECT_NEAR(th.utilization(), 20.0 / 1010.0, 1e-12);
}

TEST(SimThread, LatePostStartsAtPostTimeNotThreadCreation) {
  Engine eng;
  SimThread th(eng, "t");
  std::vector<des::Time> done;
  eng.schedule_at(500, [&] { th.post_work(7, [&] { done.push_back(eng.now()); }); });
  eng.run();
  EXPECT_EQ(done, (std::vector<des::Time>{507}));
}

TEST(SimThread, BusyReflectsQueueState) {
  Engine eng;
  SimThread th(eng, "t");
  EXPECT_FALSE(th.busy());
  th.post_work(10, [] {});
  EXPECT_TRUE(th.busy());
  eng.run();
  EXPECT_FALSE(th.busy());
}

TEST(SimThread, TwoThreadsRunConcurrentlyInSimTime) {
  Engine eng;
  SimThread a(eng, "a");
  SimThread b(eng, "b");
  std::vector<des::Time> done;
  a.post_work(100, [&] { done.push_back(eng.now()); });
  b.post_work(100, [&] { done.push_back(eng.now()); });
  eng.run();
  // Independent threads overlap: both finish at t=100.
  EXPECT_EQ(done, (std::vector<des::Time>{100, 100}));
}

}  // namespace
