#include "des/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using des::Engine;

TEST(Engine, NowAdvancesToFiredEventTime) {
  Engine eng;
  des::Time seen = -1;
  eng.schedule_at(50, [&] { seen = eng.now(); });
  eng.run();
  EXPECT_EQ(seen, 50);
  EXPECT_EQ(eng.now(), 50);
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine eng;
  std::vector<des::Time> times;
  eng.schedule_at(10, [&] {
    eng.schedule_after(5, [&] { times.push_back(eng.now()); });
  });
  eng.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], 15);
}

TEST(Engine, EventsCascade) {
  Engine eng;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) eng.schedule_after(1, chain);
  };
  eng.schedule_at(0, chain);
  eng.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(eng.now(), 9);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine eng;
  int fired = 0;
  eng.schedule_at(10, [&] { ++fired; });
  eng.schedule_at(20, [&] { ++fired; });
  eng.schedule_at(30, [&] { ++fired; });
  eng.run_until(20);
  EXPECT_EQ(fired, 2);          // events at 10 and exactly 20 fire
  EXPECT_EQ(eng.now(), 20);
  EXPECT_EQ(eng.pending_events(), 1u);
  eng.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, RunUntilAdvancesClockWhenIdle) {
  Engine eng;
  eng.run_until(1000);
  EXPECT_EQ(eng.now(), 1000);
}

TEST(Engine, CancelScheduledEvent) {
  Engine eng;
  bool fired = false;
  auto id = eng.schedule_at(5, [&] { fired = true; });
  EXPECT_TRUE(eng.cancel(id));
  eng.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, StepReturnsFalseWhenDrained) {
  Engine eng;
  eng.schedule_at(1, [] {});
  EXPECT_TRUE(eng.step());
  EXPECT_FALSE(eng.step());
}

TEST(Engine, RunWhilePendingStopsOnPredicate) {
  Engine eng;
  int count = 0;
  for (int i = 1; i <= 10; ++i) eng.schedule_at(i, [&] { ++count; });
  EXPECT_TRUE(eng.run_while_pending([&] { return count >= 4; }));
  EXPECT_EQ(count, 4);
  EXPECT_EQ(eng.now(), 4);
}

TEST(Engine, RunWhilePendingReturnsFalseOnDrain) {
  Engine eng;
  eng.schedule_at(1, [] {});
  EXPECT_FALSE(eng.run_while_pending([] { return false; }));
}

TEST(Engine, CountsFiredEvents) {
  Engine eng;
  for (int i = 0; i < 7; ++i) eng.schedule_at(i, [] {});
  eng.run();
  EXPECT_EQ(eng.events_fired(), 7u);
}

}  // namespace
