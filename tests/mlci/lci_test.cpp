#include "mlci/lci.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "des/engine.hpp"
#include "net/fabric.hpp"

namespace {

using des::Engine;
using mlci::Comp;
using mlci::CompQueue;
using mlci::Device;
using mlci::Lci;
using mlci::Request;
using mlci::Status;
using mlci::Synchronizer;

struct World {
  Engine eng;
  net::Fabric fab;
  Lci lci;
  explicit World(int nodes, mlci::Config cfg = {})
      : fab(eng, nodes), lci(fab, cfg) {}

  // Runs the engine to completion, calling progress on every device after
  // each event (standing in for per-node progress threads).
  void run() {
    do {
      for (int r = 0; r < lci.size(); ++r) mlci::progress(lci.device(r));
    } while (eng.step());
    for (int r = 0; r < lci.size(); ++r) mlci::progress(lci.device(r));
  }
};

TEST(Mlci, ImmediateSendInvokesAmHandler) {
  World w(2);
  std::string got;
  int from = -1;
  std::uint64_t tag = 0;
  w.lci.device(1).set_am_handler([&](Request&& r) {
    from = r.peer;
    tag = r.tag;
    got.assign(reinterpret_cast<const char*>(r.payload->data()), r.size);
  });
  ASSERT_EQ(w.lci.device(0).sends(1, 33, "hi", 2), Status::Ok);
  w.run();
  EXPECT_EQ(got, "hi");
  EXPECT_EQ(from, 0);
  EXPECT_EQ(tag, 33u);
}

TEST(Mlci, BufferedSendCarriesPagesOfData) {
  World w(2);
  std::vector<char> payload(8000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i % 251);
  }
  std::vector<char> got;
  w.lci.device(1).set_am_handler([&](Request&& r) {
    got.assign(reinterpret_cast<const char*>(r.payload->data()),
               reinterpret_cast<const char*>(r.payload->data()) + r.size);
  });
  ASSERT_EQ(w.lci.device(0).sendm(1, 1, payload.data(), payload.size()),
            Status::Ok);
  w.run();
  ASSERT_EQ(got.size(), payload.size());
  EXPECT_EQ(0, std::memcmp(got.data(), payload.data(), payload.size()));
}

TEST(Mlci, BufferedSendUserBufferReusableImmediately) {
  World w(2);
  std::vector<char> buf(128, 'x');
  char first = 0;
  w.lci.device(1).set_am_handler([&](Request&& r) {
    first = static_cast<char>(r.payload->at(0));
  });
  ASSERT_EQ(w.lci.device(0).sendm(1, 1, buf.data(), buf.size()), Status::Ok);
  std::fill(buf.begin(), buf.end(), 'y');
  w.run();
  EXPECT_EQ(first, 'x');
}

TEST(Mlci, DirectTransferWithCompletionQueues) {
  World w(2);
  std::vector<char> src(100 * 1024);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<char>(i * 13 + 1);
  }
  std::vector<char> dst(src.size(), 0);
  CompQueue send_cq, recv_cq;
  ASSERT_EQ(w.lci.device(1).recvd(0, 9, dst.data(), dst.size(),
                                  Comp::queue(&recv_cq)),
            Status::Ok);
  ASSERT_EQ(w.lci.device(0).sendd(1, 9, src.data(), src.size(),
                                  Comp::queue(&send_cq)),
            Status::Ok);
  w.run();
  auto rc = recv_cq.poll();
  ASSERT_TRUE(rc.has_value());
  EXPECT_EQ(rc->type, Request::Type::RecvDone);
  EXPECT_EQ(rc->size, src.size());
  EXPECT_EQ(rc->peer, 0);
  auto sc = send_cq.poll();
  ASSERT_TRUE(sc.has_value());
  EXPECT_EQ(sc->type, Request::Type::SendDone);
  EXPECT_EQ(0, std::memcmp(dst.data(), src.data(), src.size()));
}

TEST(Mlci, DirectSendBeforeRecvMatchesWhenPosted) {
  World w(2);
  std::vector<char> src(4096, 'd');
  std::vector<char> dst(4096, 0);
  CompQueue cq;
  ASSERT_EQ(w.lci.device(0).sendd(1, 5, src.data(), src.size(),
                                  Comp::none()),
            Status::Ok);
  w.run();  // RTS arrives; no matching receive posted yet
  ASSERT_EQ(w.lci.device(1).recvd(0, 5, dst.data(), dst.size(),
                                  Comp::queue(&cq)),
            Status::Ok);
  w.run();
  ASSERT_TRUE(cq.poll().has_value());
  EXPECT_EQ(dst[17], 'd');
}

TEST(Mlci, SynchronizerSignalsCompletion) {
  World w(2);
  Synchronizer sync;
  std::vector<char> dst(1024);
  ASSERT_EQ(w.lci.device(1).recvd(0, 2, dst.data(), dst.size(),
                                  Comp::sync(&sync)),
            Status::Ok);
  EXPECT_FALSE(sync.test());
  std::vector<char> src(1024, 'k');
  ASSERT_EQ(w.lci.device(0).sendd(1, 2, src.data(), src.size(), Comp::none()),
            Status::Ok);
  w.run();
  EXPECT_TRUE(sync.test());
  EXPECT_EQ(sync.request().type, Request::Type::RecvDone);
  EXPECT_EQ(sync.request().size, 1024u);
}

TEST(Mlci, HandlerCompletionRunsInsideProgress) {
  World w(2);
  bool handled = false;
  std::vector<char> dst(256);
  ASSERT_EQ(w.lci.device(1).recvd(0, 3, dst.data(), dst.size(),
                                  Comp::handler([&](Request&& r) {
                                    handled = true;
                                    EXPECT_EQ(r.type,
                                              Request::Type::RecvDone);
                                  })),
            Status::Ok);
  std::vector<char> src(256, 's');
  ASSERT_EQ(w.lci.device(0).sendd(1, 3, src.data(), src.size(), Comp::none()),
            Status::Ok);
  w.run();
  EXPECT_TRUE(handled);
}

TEST(Mlci, UserContextRoundTrips) {
  World w(2);
  int cookie = 1234;
  void* seen = nullptr;
  CompQueue cq;
  std::vector<char> dst(64);
  ASSERT_EQ(w.lci.device(1).recvd(0, 4, dst.data(), dst.size(),
                                  Comp::queue(&cq), &cookie),
            Status::Ok);
  std::vector<char> src(64, 'c');
  ASSERT_EQ(w.lci.device(0).sendd(1, 4, src.data(), src.size(), Comp::none()),
            Status::Ok);
  w.run();
  auto rc = cq.poll();
  ASSERT_TRUE(rc.has_value());
  seen = rc->user_context;
  EXPECT_EQ(seen, &cookie);
}

TEST(Mlci, BufferedPoolExhaustionReturnsRetry) {
  mlci::Config cfg;
  cfg.packet_pool_size = 4;
  World w(2, cfg);
  w.lci.device(1).set_am_handler([](Request&&) {});
  char b[8] = "payload";
  int ok = 0;
  Status last = Status::Ok;
  for (int i = 0; i < 10; ++i) {
    last = w.lci.device(0).sendm(1, 1, b, 8);
    if (last == Status::Ok) ++ok;
  }
  EXPECT_EQ(ok, 4);
  EXPECT_EQ(last, Status::Retry);
  // Draining the network returns packets to the pool; sends succeed again.
  w.run();
  EXPECT_EQ(w.lci.device(0).free_packets(), 4);
  EXPECT_EQ(w.lci.device(0).sendm(1, 1, b, 8), Status::Ok);
}

TEST(Mlci, DirectSlotExhaustionReturnsRetry) {
  mlci::Config cfg;
  cfg.direct_slots = 2;
  World w(2, cfg);
  std::vector<char> dst(64);
  EXPECT_EQ(w.lci.device(1).recvd(0, 1, dst.data(), 64, Comp::none()),
            Status::Ok);
  EXPECT_EQ(w.lci.device(1).recvd(0, 2, dst.data(), 64, Comp::none()),
            Status::Ok);
  EXPECT_EQ(w.lci.device(1).recvd(0, 3, dst.data(), 64, Comp::none()),
            Status::Retry);
  // Completing one transfer frees its slot.
  std::vector<char> src(64, 'r');
  EXPECT_EQ(w.lci.device(0).sendd(1, 1, src.data(), 64, Comp::none()),
            Status::Ok);
  w.run();
  EXPECT_EQ(w.lci.device(1).recvd(0, 3, dst.data(), 64, Comp::none()),
            Status::Ok);
}

TEST(Mlci, NoProgressNoDelivery) {
  World w(2);
  bool handled = false;
  w.lci.device(1).set_am_handler([&](Request&&) { handled = true; });
  ASSERT_EQ(w.lci.device(0).sends(1, 1, "x", 1), Status::Ok);
  w.eng.run();  // hardware delivered, but nobody called progress()
  EXPECT_FALSE(handled);
  EXPECT_EQ(w.lci.device(1).pending_hw_events(), 1u);
  mlci::progress(w.lci.device(1));
  EXPECT_TRUE(handled);
}

TEST(Mlci, ProgressReturnsProcessedCount) {
  World w(2);
  w.lci.device(1).set_am_handler([](Request&&) {});
  ASSERT_EQ(w.lci.device(0).sends(1, 1, "a", 1), Status::Ok);
  ASSERT_EQ(w.lci.device(0).sends(1, 2, "b", 1), Status::Ok);
  w.eng.run();
  EXPECT_EQ(mlci::progress(w.lci.device(1)), 2);
  EXPECT_EQ(mlci::progress(w.lci.device(1)), 0);
}

TEST(Mlci, ProgressCostChargedToCallingThread) {
  World w(2);
  des::SimThread prog(w.eng, "progress");
  w.lci.device(1).set_am_handler([](Request&&) {});
  ASSERT_EQ(w.lci.device(0).sends(1, 1, "x", 1), Status::Ok);
  w.eng.run();
  prog.post([&] { mlci::progress(w.lci.device(1)); });
  w.eng.run();
  EXPECT_GT(prog.busy_time(), 0);
}

TEST(Mlci, VirtualPayloadDirectTransfer) {
  World w(2);
  CompQueue cq;
  ASSERT_EQ(w.lci.device(1).recvd(0, 7, nullptr, 1 << 22, Comp::queue(&cq)),
            Status::Ok);
  ASSERT_EQ(w.lci.device(0).sendd(1, 7, nullptr, 1 << 22, Comp::none()),
            Status::Ok);
  w.run();
  auto rc = cq.poll();
  ASSERT_TRUE(rc.has_value());
  EXPECT_EQ(rc->size, static_cast<std::size_t>(1 << 22));
}

// Multiple concurrent direct transfers with distinct tags complete exactly
// once each, independent of ordering.
class MlciConcurrentDirect : public ::testing::TestWithParam<int> {};

TEST_P(MlciConcurrentDirect, AllTransfersCompleteOnce) {
  const int count = GetParam();
  World w(2);
  CompQueue cq;
  std::vector<std::vector<char>> srcs, dsts;
  for (int i = 0; i < count; ++i) {
    srcs.emplace_back(static_cast<std::size_t>(512 + i * 64),
                      static_cast<char>('A' + i % 26));
    dsts.emplace_back(srcs.back().size(), 0);
  }
  for (int i = 0; i < count; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    ASSERT_EQ(w.lci.device(1).recvd(0, static_cast<mlci::Tag>(i),
                                    dsts[ui].data(), dsts[ui].size(),
                                    Comp::queue(&cq)),
              Status::Ok);
  }
  for (int i = 0; i < count; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    ASSERT_EQ(w.lci.device(0).sendd(1, static_cast<mlci::Tag>(i),
                                    srcs[ui].data(), srcs[ui].size(),
                                    Comp::none()),
              Status::Ok);
  }
  w.run();
  int completions = 0;
  while (auto rc = cq.poll()) {
    ++completions;
    const auto i = static_cast<std::size_t>(rc->tag);
    EXPECT_EQ(rc->size, dsts[i].size());
    EXPECT_EQ(dsts[i][0], srcs[i][0]);
  }
  EXPECT_EQ(completions, count);
}

INSTANTIATE_TEST_SUITE_P(Counts, MlciConcurrentDirect,
                         ::testing::Values(1, 4, 16, 64));

}  // namespace

// --- native one-sided put (§7 future-work feature) --------------------------

namespace {

TEST(MlciNativePut, WritesDataAndDeliversImmediate) {
  World w(2);
  std::vector<char> src(32 * 1024);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<char>(i * 7 + 1);
  }
  std::vector<char> dst(src.size(), 0);
  std::string imm_seen;
  std::size_t size_seen = 0;
  w.lci.device(1).set_put_handler([&](Request&& r) {
    imm_seen.assign(reinterpret_cast<const char*>(r.payload->data()),
                    r.payload->size());
    size_seen = r.size;
  });
  Synchronizer local;
  ASSERT_EQ(w.lci.device(0).putd(
                1, 9, src.data(), src.size(),
                reinterpret_cast<std::uint64_t>(dst.data()),
                Comp::sync(&local), "imm!", 4),
            Status::Ok);
  w.run();
  EXPECT_TRUE(local.test());
  EXPECT_EQ(imm_seen, "imm!");
  EXPECT_EQ(size_seen, src.size());
  EXPECT_EQ(0, std::memcmp(dst.data(), src.data(), src.size()));
}

TEST(MlciNativePut, VirtualPayloadDeliversSizeOnly) {
  World w(2);
  std::size_t size_seen = 0;
  w.lci.device(1).set_put_handler(
      [&](Request&& r) { size_seen = r.size; });
  ASSERT_EQ(w.lci.device(0).putd(1, 2, nullptr, 1 << 20, 0, Comp::none(),
                                 "x", 1),
            Status::Ok);
  w.run();
  EXPECT_EQ(size_seen, static_cast<std::size_t>(1 << 20));
}

TEST(MlciNativePut, UsesOneWireMessage) {
  World w(2);
  w.lci.device(1).set_put_handler([](Request&&) {});
  ASSERT_EQ(w.lci.device(0).putd(1, 3, nullptr, 64 * 1024, 0, Comp::none(),
                                 "y", 1),
            Status::Ok);
  w.run();
  // One message, versus four (handshake + RTS + CTS + DATA) for the
  // emulated rendezvous path.
  EXPECT_EQ(w.fab.total_messages(), 1u);
}

TEST(MlciNativePut, RespectsDirectSlotBackpressure) {
  mlci::Config cfg;
  cfg.direct_slots = 1;
  World w(2, cfg);
  w.lci.device(1).set_put_handler([](Request&&) {});
  EXPECT_EQ(w.lci.device(0).putd(1, 1, nullptr, 1024, 0, Comp::none(),
                                 "a", 1),
            Status::Ok);
  EXPECT_EQ(w.lci.device(0).putd(1, 2, nullptr, 1024, 0, Comp::none(),
                                 "b", 1),
            Status::Retry);
  w.run();  // slot returns at egress completion
  EXPECT_EQ(w.lci.device(0).putd(1, 2, nullptr, 1024, 0, Comp::none(),
                                 "b", 1),
            Status::Ok);
  w.run();
}

}  // namespace
