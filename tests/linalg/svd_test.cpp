#include "linalg/svd.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "des/rng.hpp"
#include "linalg/blas.hpp"

namespace {

using linalg::Matrix;
using linalg::svd_jacobi;
using linalg::Trans;

Matrix random_matrix(int m, int n, std::uint64_t seed) {
  des::Rng rng(seed);
  Matrix a(m, n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) a(i, j) = rng.uniform(-1.0, 1.0);
  }
  return a;
}

Matrix reconstruct(const linalg::SvdResult& svd) {
  const int k = static_cast<int>(svd.s.size());
  Matrix us = svd.u;
  for (int j = 0; j < k; ++j) {
    for (int i = 0; i < us.rows(); ++i) {
      us(i, j) *= svd.s[static_cast<std::size_t>(j)];
    }
  }
  Matrix a(svd.u.rows(), svd.v.rows());
  linalg::gemm(1.0, us, Trans::No, svd.v, Trans::Yes, 0.0, a);
  return a;
}

class SvdShapes : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SvdShapes, ReconstructsInput) {
  const auto [m, n] = GetParam();
  const Matrix a = random_matrix(m, n, 17);
  const auto svd = svd_jacobi(a);
  EXPECT_LT(linalg::frobenius_diff(reconstruct(svd), a), 1e-10);
}

TEST_P(SvdShapes, SingularValuesSortedAndNonNegative) {
  const auto [m, n] = GetParam();
  const auto svd = svd_jacobi(random_matrix(m, n, 18));
  for (std::size_t i = 0; i < svd.s.size(); ++i) {
    EXPECT_GE(svd.s[i], 0.0);
    if (i > 0) EXPECT_LE(svd.s[i], svd.s[i - 1]);
  }
}

TEST_P(SvdShapes, FactorsAreOrthonormal) {
  const auto [m, n] = GetParam();
  const auto svd = svd_jacobi(random_matrix(m, n, 19));
  const int k = static_cast<int>(svd.s.size());
  Matrix utu(k, k), vtv(k, k);
  linalg::gemm(1.0, svd.u, Trans::Yes, svd.u, Trans::No, 0.0, utu);
  linalg::gemm(1.0, svd.v, Trans::Yes, svd.v, Trans::No, 0.0, vtv);
  EXPECT_LT(linalg::frobenius_diff(utu, Matrix::identity(k)), 1e-9);
  EXPECT_LT(linalg::frobenius_diff(vtv, Matrix::identity(k)), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdShapes,
                         ::testing::Values(std::make_tuple(8, 8),
                                           std::make_tuple(16, 5),
                                           std::make_tuple(5, 16),
                                           std::make_tuple(1, 1),
                                           std::make_tuple(20, 20)));

TEST(Svd, ExactLowRankMatrixHasTinyTrailingValues) {
  // A = x y^T has rank 1.
  const Matrix x = random_matrix(12, 1, 20);
  const Matrix y = random_matrix(9, 1, 21);
  Matrix a(12, 9);
  linalg::gemm(1.0, x, Trans::No, y, Trans::Yes, 0.0, a);
  const auto svd = svd_jacobi(a);
  EXPECT_GT(svd.s[0], 0.1);
  for (std::size_t i = 1; i < svd.s.size(); ++i) {
    EXPECT_LT(svd.s[i], 1e-10 * svd.s[0]);
  }
}

TEST(Svd, DiagonalMatrixGivesItsEntries) {
  Matrix a(4, 4);
  a(0, 0) = 4;
  a(1, 1) = 3;
  a(2, 2) = 2;
  a(3, 3) = 1;
  const auto svd = svd_jacobi(a);
  ASSERT_EQ(svd.s.size(), 4u);
  EXPECT_NEAR(svd.s[0], 4, 1e-12);
  EXPECT_NEAR(svd.s[1], 3, 1e-12);
  EXPECT_NEAR(svd.s[2], 2, 1e-12);
  EXPECT_NEAR(svd.s[3], 1, 1e-12);
}

}  // namespace
