#include "linalg/hcore.hpp"

#include <gtest/gtest.h>

#include "des/rng.hpp"
#include "linalg/blas.hpp"

namespace {

using linalg::compress;
using linalg::CompressOptions;
using linalg::lr_to_dense;
using linalg::LrTile;
using linalg::Matrix;
using linalg::Trans;

constexpr CompressOptions kOpts{.accuracy = 1e-12, .maxrank = 0};

Matrix random_matrix(int m, int n, std::uint64_t seed) {
  des::Rng rng(seed);
  Matrix a(m, n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) a(i, j) = rng.uniform(-1.0, 1.0);
  }
  return a;
}

Matrix random_lowrank(int m, int n, int r, std::uint64_t seed) {
  Matrix u = random_matrix(m, r, seed);
  Matrix v = random_matrix(n, r, seed + 1);
  Matrix a(m, n);
  linalg::gemm(1.0, u, Trans::No, v, Trans::Yes, 0.0, a);
  return a;
}

Matrix random_lower_spd_chol(int n, std::uint64_t seed) {
  Matrix b = random_matrix(n, n, seed);
  Matrix a(n, n);
  linalg::gemm(1.0, b, Trans::No, b, Trans::Yes, 0.0, a);
  for (int i = 0; i < n; ++i) a(i, i) += n;
  EXPECT_TRUE(linalg::potrf_lower(a));
  return a;
}

TEST(Hcore, LrTrsmMatchesDenseTrsm) {
  const int nb = 16;
  const Matrix a = random_lowrank(nb, nb, 3, 41);
  const Matrix l = random_lower_spd_chol(nb, 43);
  // Dense reference: A <- A L^{-T}.
  Matrix dense = a;
  linalg::trsm_right_lower_trans(l, dense);
  // TLR version.
  LrTile t = compress(a, kOpts);
  linalg::lr_trsm(l, t);
  EXPECT_LT(linalg::frobenius_diff(lr_to_dense(t), dense), 1e-8);
}

TEST(Hcore, LrSyrkMatchesDenseSyrk) {
  const int nb = 16;
  const Matrix a = random_lowrank(nb, nb, 4, 44);
  Matrix c_dense = random_matrix(nb, nb, 46);
  // Symmetrize C so mirror-updates compare cleanly.
  for (int j = 0; j < nb; ++j) {
    for (int i = 0; i < j; ++i) c_dense(i, j) = c_dense(j, i);
  }
  Matrix c_ref = c_dense;
  linalg::gemm(-1.0, a, Trans::No, a, Trans::Yes, 1.0, c_ref);
  const LrTile t = compress(a, kOpts);
  linalg::lr_syrk(t, c_dense);
  EXPECT_LT(linalg::frobenius_diff(c_dense, c_ref), 1e-8);
}

TEST(Hcore, LrGemmMatchesDenseGemm) {
  const int nb = 16;
  const Matrix a = random_lowrank(nb, nb, 3, 47);
  const Matrix b = random_lowrank(nb, nb, 2, 49);
  const Matrix c = random_lowrank(nb, nb, 4, 51);
  Matrix c_ref = c;
  linalg::gemm(-1.0, a, Trans::No, b, Trans::Yes, 1.0, c_ref);

  const LrTile ta = compress(a, kOpts);
  const LrTile tb = compress(b, kOpts);
  LrTile tc = compress(c, kOpts);
  linalg::lr_gemm(ta, tb, tc, kOpts);
  EXPECT_LT(linalg::frobenius_diff(lr_to_dense(tc), c_ref), 1e-7);
}

TEST(Hcore, LrGemmRecompressionKeepsRankBounded) {
  const int nb = 24;
  const CompressOptions loose{.accuracy = 1e-6, .maxrank = 8};
  LrTile c = compress(random_lowrank(nb, nb, 4, 53), loose);
  for (int iter = 0; iter < 5; ++iter) {
    const LrTile a = compress(
        random_lowrank(nb, nb, 3, 55 + static_cast<std::uint64_t>(iter)),
        loose);
    const LrTile b = compress(
        random_lowrank(nb, nb, 3, 75 + static_cast<std::uint64_t>(iter)),
        loose);
    linalg::lr_gemm(a, b, c, loose);
    EXPECT_LE(c.rank(), 8);
  }
}

TEST(HcoreFlops, CountsArePositiveAndMonotonic) {
  namespace f = linalg::flops;
  EXPECT_GT(f::potrf(100), 0.0);
  EXPECT_GT(f::potrf(200), f::potrf(100));
  EXPECT_GT(f::trsm(100, 100), 0.0);
  EXPECT_GT(f::gemm(100, 100, 100), f::syrk(100, 100));
  EXPECT_GT(f::total(f::lr_gemm(1200, 20, 20, 20)),
            f::total(f::lr_gemm(1200, 10, 10, 10)));
  EXPECT_GT(f::total(f::lr_syrk(1200, 10)), 0.0);
  EXPECT_GT(f::total(f::lr_trsm(1200, 10)), 0.0);
  // The TLR point: at realistic ranks the LR GEMM is orders of magnitude
  // cheaper than the dense one.
  EXPECT_LT(f::total(f::lr_gemm(1200, 10, 10, 10)),
            f::gemm(1200, 1200, 1200) / 100.0);
}

}  // namespace
