#include "linalg/blas.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "des/rng.hpp"

namespace {

using linalg::Matrix;
using linalg::Trans;

Matrix random_matrix(int m, int n, std::uint64_t seed) {
  des::Rng rng(seed);
  Matrix a(m, n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) a(i, j) = rng.uniform(-1.0, 1.0);
  }
  return a;
}

Matrix random_spd(int n, std::uint64_t seed) {
  Matrix b = random_matrix(n, n, seed);
  Matrix a(n, n);
  linalg::gemm(1.0, b, Trans::No, b, Trans::Yes, 0.0, a);
  for (int i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

TEST(Blas, GemmMatchesManualReference) {
  const Matrix a = random_matrix(4, 3, 1);
  const Matrix b = random_matrix(3, 5, 2);
  Matrix c(4, 5);
  linalg::gemm(2.0, a, Trans::No, b, Trans::No, 0.0, c);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 5; ++j) {
      double s = 0;
      for (int l = 0; l < 3; ++l) s += a(i, l) * b(l, j);
      EXPECT_NEAR(c(i, j), 2.0 * s, 1e-12);
    }
  }
}

TEST(Blas, GemmTransposeVariantsAgree) {
  const Matrix a = random_matrix(4, 3, 3);
  const Matrix b = random_matrix(3, 5, 4);
  Matrix c_nn(4, 5), c_tn(4, 5), c_nt(4, 5), c_tt(4, 5);
  linalg::gemm(1.0, a, Trans::No, b, Trans::No, 0.0, c_nn);
  linalg::gemm(1.0, a.transposed(), Trans::Yes, b, Trans::No, 0.0, c_tn);
  linalg::gemm(1.0, a, Trans::No, b.transposed(), Trans::Yes, 0.0, c_nt);
  linalg::gemm(1.0, a.transposed(), Trans::Yes, b.transposed(), Trans::Yes,
               0.0, c_tt);
  EXPECT_LT(linalg::frobenius_diff(c_nn, c_tn), 1e-12);
  EXPECT_LT(linalg::frobenius_diff(c_nn, c_nt), 1e-12);
  EXPECT_LT(linalg::frobenius_diff(c_nn, c_tt), 1e-12);
}

TEST(Blas, GemmAccumulatesWithBeta) {
  const Matrix a = random_matrix(3, 3, 5);
  const Matrix b = random_matrix(3, 3, 6);
  Matrix c = random_matrix(3, 3, 7);
  const Matrix c0 = c;
  linalg::gemm(1.0, a, Trans::No, b, Trans::No, 1.0, c);
  Matrix prod(3, 3);
  linalg::gemm(1.0, a, Trans::No, b, Trans::No, 0.0, prod);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(c(i, j), c0(i, j) + prod(i, j), 1e-12);
    }
  }
}

TEST(Blas, SyrkLowerMatchesGemm) {
  const Matrix a = random_matrix(5, 3, 8);
  Matrix c1(5, 5), c2(5, 5);
  linalg::syrk_lower(-1.0, a, 1.0, c1);
  linalg::gemm(-1.0, a, Trans::No, a, Trans::Yes, 1.0, c2);
  EXPECT_LT(linalg::frobenius_diff(c1, c2), 1e-12);
}

TEST(Blas, TrsmLeftLowerSolves) {
  Matrix a = random_spd(6, 9);
  Matrix l = a;
  ASSERT_TRUE(linalg::potrf_lower(l));
  const Matrix b = random_matrix(6, 4, 10);
  Matrix x = b;
  linalg::trsm_left_lower(l, x);
  Matrix lx(6, 4);
  linalg::gemm(1.0, l, Trans::No, x, Trans::No, 0.0, lx);
  EXPECT_LT(linalg::frobenius_diff(lx, b), 1e-10);
}

TEST(Blas, TrsmRightLowerTransSolves) {
  Matrix a = random_spd(5, 11);
  Matrix l = a;
  ASSERT_TRUE(linalg::potrf_lower(l));
  const Matrix b = random_matrix(7, 5, 12);
  Matrix x = b;
  linalg::trsm_right_lower_trans(l, x);
  Matrix xlt(7, 5);
  linalg::gemm(1.0, x, Trans::No, l, Trans::Yes, 0.0, xlt);
  EXPECT_LT(linalg::frobenius_diff(xlt, b), 1e-10);
}

TEST(Blas, PotrfReconstructs) {
  Matrix a = random_spd(8, 13);
  Matrix l = a;
  ASSERT_TRUE(linalg::potrf_lower(l));
  Matrix llt(8, 8);
  linalg::gemm(1.0, l, Trans::No, l, Trans::Yes, 0.0, llt);
  EXPECT_LT(linalg::frobenius_diff(llt, a) / linalg::frobenius_norm(a),
            1e-12);
}

TEST(Blas, PotrfRejectsIndefinite) {
  Matrix a(3, 3);
  a(0, 0) = 1;
  a(1, 1) = -1;  // indefinite
  a(2, 2) = 1;
  EXPECT_FALSE(linalg::potrf_lower(a));
}

TEST(Blas, QrThinReconstructsAndIsOrthonormal) {
  const Matrix a = random_matrix(10, 4, 14);
  Matrix q, r;
  linalg::qr_thin(a, q, r);
  ASSERT_EQ(q.rows(), 10);
  ASSERT_EQ(q.cols(), 4);
  Matrix qr(10, 4);
  linalg::gemm(1.0, q, Trans::No, r, Trans::No, 0.0, qr);
  EXPECT_LT(linalg::frobenius_diff(qr, a), 1e-10);
  Matrix qtq(4, 4);
  linalg::gemm(1.0, q, Trans::Yes, q, Trans::No, 0.0, qtq);
  EXPECT_LT(linalg::frobenius_diff(qtq, Matrix::identity(4)), 1e-10);
  // R upper triangular.
  for (int j = 0; j < 4; ++j) {
    for (int i = j + 1; i < 4; ++i) EXPECT_EQ(r.cols(), 4);
  }
}

class BlasSquareSweep : public ::testing::TestWithParam<int> {};

TEST_P(BlasSquareSweep, PotrfTrsmRoundTrip) {
  const int n = GetParam();
  Matrix a = random_spd(n, static_cast<std::uint64_t>(n) * 31);
  Matrix l = a;
  ASSERT_TRUE(linalg::potrf_lower(l));
  Matrix llt(n, n);
  linalg::gemm(1.0, l, Trans::No, l, Trans::Yes, 0.0, llt);
  EXPECT_LT(linalg::frobenius_diff(llt, a) / linalg::frobenius_norm(a),
            1e-11);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BlasSquareSweep,
                         ::testing::Values(1, 2, 3, 5, 16, 33, 64));

}  // namespace
