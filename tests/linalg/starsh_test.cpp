#include "linalg/starsh.hpp"

#include <gtest/gtest.h>

#include "linalg/blas.hpp"
#include "linalg/lowrank.hpp"

namespace {

using linalg::Matrix;
using linalg::SqExpProblem;

TEST(Starsh, PointsCoverUnitSquare) {
  SqExpProblem p;
  p.n = 100;
  const auto pts = linalg::sqexp_points(p);
  ASSERT_EQ(pts.size(), 100u);
  for (const auto& [x, y] : pts) {
    EXPECT_GT(x, -0.2);
    EXPECT_LT(x, 1.2);
    EXPECT_GT(y, -0.2);
    EXPECT_LT(y, 1.2);
  }
}

TEST(Starsh, PointsAreDeterministicPerSeed) {
  SqExpProblem p;
  p.n = 50;
  const auto a = linalg::sqexp_points(p);
  const auto b = linalg::sqexp_points(p);
  EXPECT_EQ(a, b);
  p.seed = 43;
  const auto c = linalg::sqexp_points(p);
  EXPECT_NE(a, c);
}

TEST(Starsh, CovarianceIsSymmetricWithUnitPlusNoiseDiagonal) {
  SqExpProblem p;
  p.n = 36;
  const auto pts = linalg::sqexp_points(p);
  const Matrix a = linalg::sqexp_block(p, pts, 0, 36, 0, 36);
  for (int i = 0; i < 36; ++i) {
    EXPECT_NEAR(a(i, i), 1.0 + p.noise, 1e-12);
    for (int j = 0; j < i; ++j) {
      EXPECT_NEAR(a(i, j), a(j, i), 1e-12);
      EXPECT_GT(a(i, j), 0.0);
      EXPECT_LE(a(i, j), 1.0);
    }
  }
}

TEST(Starsh, MatrixIsPositiveDefinite) {
  SqExpProblem p;
  p.n = 64;
  const auto pts = linalg::sqexp_points(p);
  Matrix a = linalg::sqexp_block(p, pts, 0, 64, 0, 64);
  EXPECT_TRUE(linalg::potrf_lower(a));
}

TEST(Starsh, OffDiagonalBlocksAreLowRank) {
  // The property HiCMA exploits: blocks far from the diagonal compress to
  // small rank at fixed accuracy, and rank decays with distance.
  SqExpProblem p;
  p.n = 256;
  const auto pts = linalg::sqexp_points(p);
  const linalg::CompressOptions opts{.accuracy = 1e-8, .maxrank = 0};
  // Blocks separated from the diagonal by 0.25 resp. 0.5 in space
  // (row-major grid ordering: 64 indices = a quarter of the unit square).
  const Matrix near = linalg::sqexp_block(p, pts, 128, 64, 0, 64);
  const Matrix far = linalg::sqexp_block(p, pts, 192, 64, 0, 64);
  const auto t_near = linalg::compress(near, opts);
  const auto t_far = linalg::compress(far, opts);
  EXPECT_LT(t_near.rank(), 64);
  EXPECT_LE(t_far.rank(), t_near.rank());
  // Compression must still be accurate.
  EXPECT_LT(linalg::frobenius_diff(linalg::lr_to_dense(t_far), far), 1e-6);
}

TEST(Starsh, VeryShortLengthScaleDecorrelatesSeparatedBlocks) {
  // For blocks well separated in space, a very short correlation length
  // makes the covariance block numerically zero => rank collapses, while
  // a moderate length scale keeps genuine structure => higher rank.
  SqExpProblem moderate;
  moderate.n = 256;
  moderate.length_scale = 0.15;
  SqExpProblem rough = moderate;
  rough.length_scale = 0.02;
  const auto pts_m = linalg::sqexp_points(moderate);
  const auto pts_r = linalg::sqexp_points(rough);
  const linalg::CompressOptions opts{.accuracy = 1e-8, .maxrank = 0};
  const auto t_m = linalg::compress(
      linalg::sqexp_block(moderate, pts_m, 192, 64, 0, 64), opts);
  const auto t_r = linalg::compress(
      linalg::sqexp_block(rough, pts_r, 192, 64, 0, 64), opts);
  EXPECT_GT(t_m.rank(), t_r.rank());
  EXPECT_LE(t_r.rank(), 2);
}

}  // namespace
