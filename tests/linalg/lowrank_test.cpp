#include "linalg/lowrank.hpp"

#include <gtest/gtest.h>

#include "des/rng.hpp"
#include "linalg/blas.hpp"
#include "linalg/starsh.hpp"

namespace {

using linalg::compress;
using linalg::CompressOptions;
using linalg::lr_to_dense;
using linalg::LrTile;
using linalg::Matrix;
using linalg::Trans;

Matrix random_lowrank(int m, int n, int r, std::uint64_t seed) {
  des::Rng rng(seed);
  Matrix u(m, r), v(n, r);
  for (int j = 0; j < r; ++j) {
    for (int i = 0; i < m; ++i) u(i, j) = rng.uniform(-1.0, 1.0);
    for (int i = 0; i < n; ++i) v(i, j) = rng.uniform(-1.0, 1.0);
  }
  Matrix a(m, n);
  linalg::gemm(1.0, u, Trans::No, v, Trans::Yes, 0.0, a);
  return a;
}

TEST(LowRank, CompressRecoversExactRank) {
  const Matrix a = random_lowrank(24, 20, 3, 31);
  const LrTile t = compress(a, {.accuracy = 1e-10, .maxrank = 0});
  EXPECT_EQ(t.rank(), 3);
  EXPECT_LT(linalg::frobenius_diff(lr_to_dense(t), a), 1e-8);
}

TEST(LowRank, CompressionErrorBoundedByAccuracy) {
  // A covariance block: numerically low rank with fast decay.
  linalg::SqExpProblem prob;
  prob.n = 64;
  const auto pts = linalg::sqexp_points(prob);
  const Matrix a = linalg::sqexp_block(prob, pts, 0, 32, 32, 32);
  for (const double acc : {1e-2, 1e-4, 1e-6, 1e-8}) {
    const LrTile t = compress(a, {.accuracy = acc, .maxrank = 0});
    const double err = linalg::frobenius_diff(lr_to_dense(t), a);
    // Truncated singular values are each < acc; the Frobenius error is
    // bounded by sqrt(count) * acc.
    EXPECT_LT(err, acc * 8) << "accuracy " << acc;
  }
}

TEST(LowRank, TighterAccuracyGivesHigherRank) {
  linalg::SqExpProblem prob;
  prob.n = 64;
  const auto pts = linalg::sqexp_points(prob);
  const Matrix a = linalg::sqexp_block(prob, pts, 0, 32, 32, 32);
  const LrTile loose = compress(a, {.accuracy = 1e-2, .maxrank = 0});
  const LrTile tight = compress(a, {.accuracy = 1e-10, .maxrank = 0});
  EXPECT_LT(loose.rank(), tight.rank());
}

TEST(LowRank, MaxrankCapsRank) {
  const Matrix a = random_lowrank(16, 16, 10, 33);
  const LrTile t = compress(a, {.accuracy = 1e-14, .maxrank = 4});
  EXPECT_EQ(t.rank(), 4);
}

TEST(LowRank, BytesMatchesPackedUxVFootprint) {
  const Matrix a = random_lowrank(30, 20, 5, 34);
  const LrTile t = compress(a, {.accuracy = 1e-10, .maxrank = 0});
  EXPECT_EQ(t.bytes(), (30u + 20u) * 5u * sizeof(double));
}

TEST(LowRank, RecompressReducesInflatedRank) {
  const Matrix a = random_lowrank(20, 20, 2, 35);
  LrTile t = compress(a, {.accuracy = 1e-12, .maxrank = 0});
  // Inflate artificially: duplicate factors with opposite signs added.
  LrTile inflated;
  inflated.u = Matrix(20, t.rank() * 2);
  inflated.v = Matrix(20, t.rank() * 2);
  for (int j = 0; j < t.rank(); ++j) {
    for (int i = 0; i < 20; ++i) {
      inflated.u(i, j) = t.u(i, j);
      inflated.u(i, t.rank() + j) = 0.5 * t.u(i, j);
      inflated.v(i, j) = t.v(i, j);
      inflated.v(i, t.rank() + j) = t.v(i, j);
    }
  }
  const Matrix dense_before = lr_to_dense(inflated);
  linalg::recompress(inflated, {.accuracy = 1e-10, .maxrank = 0});
  EXPECT_EQ(inflated.rank(), 2);
  EXPECT_LT(linalg::frobenius_diff(lr_to_dense(inflated), dense_before),
            1e-8);
}

TEST(LowRank, AxpySubtractsInFactoredForm) {
  const Matrix a = random_lowrank(16, 16, 3, 36);
  const Matrix b = random_lowrank(16, 16, 2, 37);
  const CompressOptions opts{.accuracy = 1e-12, .maxrank = 0};
  LrTile ta = compress(a, opts);
  const LrTile tb = compress(b, opts);
  linalg::lr_axpy(ta, -1.0, tb, opts);
  Matrix expect = a;
  linalg::gemm(-1.0, tb.u, Trans::No, tb.v, Trans::Yes, 1.0, expect);
  EXPECT_LT(linalg::frobenius_diff(lr_to_dense(ta), expect), 1e-8);
}

}  // namespace
