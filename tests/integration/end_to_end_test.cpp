// Full-stack integration tests: fabric + library + backend + runtime +
// application, on both backends, including clock-skew instrumentation
// and the microbenchmark graphs the paper's evaluation uses.
#include <gtest/gtest.h>

#include "bench_util/harness.hpp"
#include "ce/world.hpp"
#include "des/engine.hpp"
#include "hicma/driver.hpp"
#include "net/clock_sync.hpp"
#include "net/fabric.hpp"
#include "amt/runtime.hpp"

namespace {

using ce::BackendKind;

class E2eBackends : public ::testing::TestWithParam<BackendKind> {};

TEST_P(E2eBackends, RealTlrCholeskyOnSkewedClusterVerifies) {
  // Clock skew injected; latency instrumentation must still yield sane
  // (non-negative, clock-corrected) values and the numerics must hold.
  des::Engine eng;
  net::FabricConfig fc;
  fc.clock_skew_max = 5 * des::kMillisecond;
  net::Fabric fab(eng, 4, fc);
  const net::GlobalClock clock(net::ClockSync::synchronize(fab));

  ce::CommWorld comm(fab, GetParam());
  hicma::TlrOptions opts;
  opts.mode = hicma::TlrOptions::Mode::Real;
  opts.n = 192;
  opts.nb = 32;
  opts.accuracy = 1e-9;
  opts.maxrank = 32;
  opts.problem.length_scale = 0.2;
  opts.problem.noise = 0.05;
  hicma::TlrCholeskyGraph graph(opts, 4);
  amt::RuntimeConfig rt;
  rt.workers = 4;
  amt::Runtime runtime(eng, fab, comm, graph, rt, clock);
  runtime.run();

  EXPECT_LT(graph.verify(), 1e-7);
  const auto agg = runtime.aggregate_stats();
  ASSERT_GT(agg.latency.count(), 0u);
  EXPECT_GT(agg.latency.e2e_mean_ns(), 0.0);
  EXPECT_GE(agg.latency.hop_mean_ns(), 0.0);
  // Corrected latencies must be far below the injected multi-ms skew.
  EXPECT_LT(agg.latency.e2e_mean_ns(), 2e6);
}

TEST_P(E2eBackends, PingPongBandwidthIsPhysical) {
  bench::PingPongOptions opts;
  opts.fragment_bytes = 256 << 10;
  opts.total_bytes = 32ull << 20;
  opts.iterations = 4;
  const auto res = bench::run_pingpong(GetParam(), opts);
  EXPECT_GT(res.gbit_per_s, 10.0);
  EXPECT_LT(res.gbit_per_s, 100.5);  // cannot beat the wire
}

TEST_P(E2eBackends, PingPongNoSyncAtLeastAsFast) {
  bench::PingPongOptions opts;
  opts.fragment_bytes = 1 << 20;
  opts.total_bytes = 32ull << 20;
  opts.iterations = 4;
  opts.streams = 2;
  const auto with_sync = bench::run_pingpong(GetParam(), opts);
  opts.sync = false;
  const auto without = bench::run_pingpong(GetParam(), opts);
  EXPECT_GE(without.gbit_per_s, with_sync.gbit_per_s * 0.95);
}

TEST_P(E2eBackends, ModelModeHicmaSmallTileIsCommHeavier) {
  auto run = [&](int nb) {
    hicma::ExperimentConfig cfg;
    cfg.nodes = 4;
    cfg.backend = GetParam();
    cfg.tlr.mode = hicma::TlrOptions::Mode::Model;
    cfg.tlr.n = 36000;
    cfg.tlr.nb = nb;
    cfg.workers_override = 16;
    return hicma::run_tlr_cholesky(cfg);
  };
  const auto small = run(1200);
  const auto large = run(3600);
  // Smaller tiles => more messages on the wire.
  EXPECT_GT(small.fabric_messages, large.fabric_messages);
  EXPECT_EQ(small.residual, -1);  // model mode has no numerics
}

INSTANTIATE_TEST_SUITE_P(Backends, E2eBackends,
                         ::testing::Values(BackendKind::Mpi,
                                           BackendKind::Lci),
                         [](const auto& info) {
                           return info.param == BackendKind::Mpi ? "Mpi"
                                                                 : "Lci";
                         });

TEST(E2eComparison, LciBeatsMpiOnFineGrainedPingPong) {
  // The paper's headline microbenchmark claim at a fine granularity.
  bench::PingPongOptions opts;
  opts.fragment_bytes = 32 << 10;
  opts.total_bytes = 32ull << 20;
  opts.iterations = 4;
  const auto lci = bench::run_pingpong(BackendKind::Lci, opts);
  const auto mpi = bench::run_pingpong(BackendKind::Mpi, opts);
  EXPECT_GT(lci.gbit_per_s, mpi.gbit_per_s * 1.5);
}

}  // namespace
