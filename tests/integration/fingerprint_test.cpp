// Bit-reproducibility fingerprints for the fig4/fig5 pipeline.
//
// Each row pins the EXACT time-to-solution, message count, byte count,
// and critical-path finish of a small model-mode TLR-Cholesky run under
// the default two-level fabric preset.  These values were captured from
// the pre-topology build; the sharded event queue, per-node delivery
// slabs, and fat-tree plumbing must all reproduce them to the last bit
// — any drift here means a published figure silently changed.
//
// If a deliberate model change invalidates these rows, re-capture them
// in the same commit and say so in the commit message.
#include <gtest/gtest.h>

#include <cstdint>

#include "hicma/driver.hpp"

namespace {

struct Fingerprint {
  int nodes;
  ce::BackendKind backend;
  bool mt_activate;
  double tts_s;
  std::uint64_t msgs;
  std::uint64_t bytes;
  std::int64_t crit;
};

constexpr Fingerprint kExpected[] = {
    {4, ce::BackendKind::Lci, false, 2.688176066, 1474, 993860329,
     2688176066},
    {4, ce::BackendKind::Lci, true, 2.7107365540000004, 1518, 993863233,
     2710732339},
    {4, ce::BackendKind::Mpi, false, 2.7108171470000002, 1470, 993860065,
     2710817147},
    {4, ce::BackendKind::Mpi, true, 2.7108881970000001, 1518, 993863233,
     2710876682},
    {8, ce::BackendKind::Lci, false, 2.5041015840000003, 2674, 1145289249,
     2504101584},
    {8, ce::BackendKind::Lci, true, 2.6315685360000001, 2718, 1145292153,
     2631564321},
    {8, ce::BackendKind::Mpi, false, 2.5595929630000001, 2671, 1145289051,
     2559592963},
    {8, ce::BackendKind::Mpi, true, 2.4638495120000004, 2718, 1145292153,
     2463837997},
};

TEST(Fingerprint, Fig5PipelineIsBitIdenticalToBaseline) {
  for (const Fingerprint& fp : kExpected) {
    hicma::ExperimentConfig cfg;
    cfg.nodes = fp.nodes;
    cfg.backend = fp.backend;
    cfg.mt_activate = fp.mt_activate;
    cfg.tlr.mode = hicma::TlrOptions::Mode::Model;
    cfg.tlr.n = 36000;
    cfg.tlr.nb = 3000;
    const auto res = hicma::run_tlr_cholesky(cfg);
    const char* label =
        fp.backend == ce::BackendKind::Lci ? "lci" : "mpi";
    SCOPED_TRACE(::testing::Message()
                 << "nodes=" << fp.nodes << " backend=" << label
                 << " mt=" << fp.mt_activate);
    // Exact double equality is intentional: the simulation is integer
    // nanoseconds underneath, so equality is reproducibility, and any
    // epsilon would mask real drift.
    EXPECT_EQ(res.tts_s, fp.tts_s);
    EXPECT_EQ(res.fabric_messages, fp.msgs);
    EXPECT_EQ(res.fabric_bytes, fp.bytes);
    EXPECT_EQ(res.runtime_stats.crit.finish_g, fp.crit);
  }
}

}  // namespace
