// Crash soak: fail-stop node crashes mid-TLR-Cholesky with the full
// production stack enabled — failure detector (realistic detection
// latency), end-to-end reliability sublayer (dead-peer fast-fail), and
// lineage recovery.  For k in {1, 2, 4} crashes on both backends the run
// must complete with RunStatus::Ok, re-execute lost work, and reproduce
// bit-identically per crash schedule.  A real-payload run additionally
// pins the numerics: the factorization residual must survive the loss
// and recomputation of actual tiles.
#include <gtest/gtest.h>

#include <tuple>

#include "ce/world.hpp"
#include "des/time.hpp"
#include "hicma/driver.hpp"
#include "net/config.hpp"

namespace {

using ce::BackendKind;

std::uint64_t counter(const hicma::ExperimentResult& res,
                      std::string_view name) {
  const obs::Counter* c = res.metrics.find_counter(name);
  return c ? c->value() : 0;
}

// 8-node model-mode config matching the fig5 fingerprint rows, with the
// crash-tolerance stack switched on.
hicma::ExperimentConfig base_config(BackendKind kind) {
  hicma::ExperimentConfig cfg;
  cfg.nodes = 8;
  cfg.backend = kind;
  cfg.tlr.mode = hicma::TlrOptions::Mode::Model;
  cfg.tlr.n = 36000;
  cfg.tlr.nb = 3000;
  cfg.rt.ft.enabled = true;
  cfg.ce.fd.enabled = true;
  cfg.ce.reliable.enabled = true;
  return cfg;
}

// Distinct victims, never rank 0, spread over the machine.
constexpr int kVictims[] = {1, 3, 5, 6};

hicma::ExperimentConfig crashed_config(BackendKind kind, int k,
                                       des::Duration clean_ns) {
  hicma::ExperimentConfig cfg = base_config(kind);
  for (int i = 0; i < k; ++i) {
    // Crash times at fractions (i+1)/(k+1) of the clean makespan: every
    // crash lands while work is provably still in flight.
    cfg.fabric.faults.crashes.push_back(net::CrashEvent{
        kVictims[i], clean_ns * (i + 1) / (k + 1), 0});
  }
  return cfg;
}

class CrashBackends : public ::testing::TestWithParam<BackendKind> {};

TEST_P(CrashBackends, TlrCholeskySurvivesCrashesAndIsDeterministic) {
  const auto clean = hicma::run_tlr_cholesky(base_config(GetParam()));
  ASSERT_EQ(clean.run_status, amt::RunStatus::Ok);
  const auto clean_ns = static_cast<des::Duration>(clean.tts_s * 1e9);
  ASSERT_GT(clean_ns, 0);

  for (const int k : {1, 2, 4}) {
    SCOPED_TRACE(::testing::Message() << "crashes=" << k);
    const auto cfg = crashed_config(GetParam(), k, clean_ns);
    const auto a = hicma::run_tlr_cholesky(cfg);
    // Graceful degradation: the run completes on the survivors.
    EXPECT_EQ(a.run_status, amt::RunStatus::Ok);
    // Every scheduled crash really fired mid-run.
    EXPECT_EQ(counter(a, "net.fault.crashes"),
              static_cast<std::uint64_t>(k));
    // Detection came from the failure detector, not ground truth.
    EXPECT_GE(counter(a, "ce.fd.dead"), static_cast<std::uint64_t>(k));
    // Lost work was actually re-executed and lost tiles re-served.
    EXPECT_GT(a.runtime_stats.tasks_reexecuted, 0u);
    EXPECT_GE(a.tasks, clean.tasks);  // re-executions add raw task runs
    // Recovery costs time, never silence: makespan grows.
    EXPECT_GT(a.tts_s, clean.tts_s);

    // Bit-identical reproduction per crash schedule — the recovery
    // fingerprint the paper-style sweeps pin.
    const auto b = hicma::run_tlr_cholesky(cfg);
    EXPECT_EQ(a.tts_s, b.tts_s);
    EXPECT_EQ(a.fabric_messages, b.fabric_messages);
    EXPECT_EQ(a.fabric_bytes, b.fabric_bytes);
    EXPECT_EQ(a.tasks, b.tasks);
    EXPECT_EQ(a.runtime_stats.tasks_reexecuted,
              b.runtime_stats.tasks_reexecuted);
    EXPECT_EQ(a.runtime_stats.reannounces, b.runtime_stats.reannounces);
  }
}

TEST_P(CrashBackends, RealPayloadFactorizationSurvivesACrash) {
  // Real (numeric) tiles: a mid-run crash loses actual data; recovery
  // must re-produce it and the factorization must still verify.
  auto real_cfg = [&](bool with_crash, des::Duration clean_ns) {
    hicma::ExperimentConfig cfg;
    cfg.nodes = 4;
    cfg.backend = GetParam();
    cfg.tlr.mode = hicma::TlrOptions::Mode::Real;
    cfg.tlr.n = 192;
    cfg.tlr.nb = 32;
    cfg.tlr.accuracy = 1e-9;
    cfg.tlr.maxrank = 32;
    cfg.tlr.problem.length_scale = 0.2;
    cfg.tlr.problem.noise = 0.05;
    cfg.workers_override = 4;
    cfg.rt.ft.enabled = true;
    cfg.ce.fd.enabled = true;
    cfg.ce.reliable.enabled = true;
    if (with_crash) {
      cfg.fabric.faults.crashes.push_back(
          net::CrashEvent{2, clean_ns / 3, 0});
    }
    return cfg;
  };
  const auto clean = hicma::run_tlr_cholesky(real_cfg(false, 0));
  ASSERT_EQ(clean.run_status, amt::RunStatus::Ok);
  ASSERT_LT(clean.residual, 1e-7);
  const auto clean_ns = static_cast<des::Duration>(clean.tts_s * 1e9);

  const auto a = hicma::run_tlr_cholesky(real_cfg(true, clean_ns));
  EXPECT_EQ(a.run_status, amt::RunStatus::Ok);
  EXPECT_LT(a.residual, 1e-7);  // recomputed tiles are numerically right
  EXPECT_GT(a.runtime_stats.tasks_reexecuted, 0u);

  const auto b = hicma::run_tlr_cholesky(real_cfg(true, clean_ns));
  EXPECT_EQ(a.residual, b.residual);  // bit-identical numerics per seed
  EXPECT_EQ(a.tts_s, b.tts_s);
}

INSTANTIATE_TEST_SUITE_P(Backends, CrashBackends,
                         ::testing::Values(BackendKind::Mpi,
                                           BackendKind::Lci),
                         [](const auto& pinfo) {
                           return pinfo.param == BackendKind::Mpi ? "Mpi"
                                                                  : "Lci";
                         });

}  // namespace
