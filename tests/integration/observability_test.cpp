// End-to-end checks for the time-resolved observability stack: the
// timeline sampler must not perturb the pinned fingerprints and must
// render byte-identically for identical runs; a run that fails closed
// must leave a complete post-mortem bundle; and the end-of-run metrics
// export must carry the fabric, link, and failure-detector counters.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "hicma/driver.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"  // json_parse_ok

namespace {

using ce::BackendKind;

hicma::ExperimentConfig fingerprint_config(BackendKind kind) {
  hicma::ExperimentConfig cfg;
  cfg.nodes = 8;
  cfg.backend = kind;
  cfg.tlr.mode = hicma::TlrOptions::Mode::Model;
  cfg.tlr.n = 36000;
  cfg.tlr.nb = 3000;
  return cfg;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Timeline::attach_from_env suffixes repeat attachments in one process
// with ".1", ".2", ... on a process-global counter, so the file a given
// run wrote is "base" or "base.<k>"; with unique bases per run exactly
// one candidate exists.
std::string find_written(const std::string& base) {
  std::ifstream probe(base);
  if (probe.good()) return base;
  for (int k = 1; k < 64; ++k) {
    const std::string candidate = base + "." + std::to_string(k);
    std::ifstream c(candidate);
    if (c.good()) return candidate;
  }
  return {};
}

struct TimelinePin {
  BackendKind backend;
  double tts_s;
  std::uint64_t msgs;
  std::uint64_t bytes;
};

// The sampler-off values these rows pin live in fingerprint_test.cpp;
// a sampler-on run must reproduce them exactly (the sampler is an
// engine hook, never an event).
constexpr TimelinePin kPins[] = {
    {BackendKind::Lci, 2.5041015840000003, 2674, 1145289249},
    {BackendKind::Mpi, 2.5595929630000001, 2671, 1145289051},
};

TEST(TimelineIntegration, SamplerPreservesFingerprintsAndIsDeterministic) {
  for (const TimelinePin& pin : kPins) {
    const char* label = pin.backend == BackendKind::Lci ? "lci" : "mpi";
    SCOPED_TRACE(::testing::Message() << "backend=" << label);
    std::string written[2];
    for (int run = 0; run < 2; ++run) {
      const std::string base = std::string("obs_tl_") + label + "_" +
                               std::to_string(run) + ".json";
      std::remove(base.c_str());
      ASSERT_EQ(::setenv("AMTLCE_TIMELINE", base.c_str(), 1), 0);
      const auto res = hicma::run_tlr_cholesky(fingerprint_config(pin.backend));
      ::unsetenv("AMTLCE_TIMELINE");
      // Bit-identical to the sampler-off pins: exact equality intended.
      EXPECT_EQ(res.tts_s, pin.tts_s);
      EXPECT_EQ(res.fabric_messages, pin.msgs);
      EXPECT_EQ(res.fabric_bytes, pin.bytes);
      written[run] = find_written(base);
      ASSERT_FALSE(written[run].empty()) << "no timeline written for " << base;
    }
    const std::string a = slurp(written[0]);
    const std::string b = slurp(written[1]);
    ASSERT_FALSE(a.empty());
    // Same seed, same schedule: the whole delta-encoded timeline must
    // render byte-identically run over run.
    EXPECT_EQ(a, b);
    EXPECT_TRUE(obs::json_parse_ok(a));
    EXPECT_NE(a.find("\"des.qdepth\""), std::string::npos);
    EXPECT_NE(a.find("\"amt.ready\""), std::string::npos);
    std::remove(written[0].c_str());
    std::remove(written[1].c_str());
  }
}

TEST(PostmortemIntegration, NoSurvivorsRunEmitsCompleteBundle) {
  hicma::ExperimentConfig cfg;
  cfg.nodes = 4;
  cfg.backend = BackendKind::Lci;
  cfg.tlr.mode = hicma::TlrOptions::Mode::Model;
  cfg.tlr.n = 36000;
  cfg.tlr.nb = 3000;
  // Ground-truth recovery (no failure detector): every death is
  // observed instantly, so when the last node fail-stops the recovery
  // pass finds an empty survivor set.  With an FD, nobody survives to
  // deliver the final verdict and the run drains to ErrDeadlock instead.
  cfg.rt.ft.enabled = true;
  // Every node fail-stops mid-run, no restarts: the tolerant runtime
  // must fail closed with ErrNoSurvivors and the driver must dump the
  // bundle.
  for (int n = 0; n < cfg.nodes; ++n) {
    cfg.fabric.faults.crashes.push_back(
        net::CrashEvent{n, 10'000'000 * (n + 1), 0});
  }

  const std::string path = "obs_postmortem_test.json";
  std::remove(path.c_str());
  ASSERT_EQ(::setenv("AMTLCE_POSTMORTEM", path.c_str(), 1), 0);
  const auto res = hicma::run_tlr_cholesky(cfg);
  ::unsetenv("AMTLCE_POSTMORTEM");

  ASSERT_EQ(res.run_status, amt::RunStatus::ErrNoSurvivors);
  const std::string bundle = slurp(path);
  ASSERT_FALSE(bundle.empty()) << "no post-mortem bundle at " << path;
  EXPECT_TRUE(obs::json_parse_ok(bundle));
  // The bundle must carry all four context sections plus the rings, and
  // the rings must hold the ground-truth crash records.
  EXPECT_NE(bundle.find("\"reason\": \"err_no_survivors\""),
            std::string::npos);
  EXPECT_NE(bundle.find("\"rings\""), std::string::npos);
  EXPECT_NE(bundle.find("\"config\""), std::string::npos);
  EXPECT_NE(bundle.find("\"crash_schedule\""), std::string::npos);
  EXPECT_NE(bundle.find("\"metrics\""), std::string::npos);
  EXPECT_NE(bundle.find("\"crash\""), std::string::npos);
  EXPECT_NE(bundle.find("\"recovery\""), std::string::npos);
  EXPECT_NE(bundle.find("\"run_status\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(MetricsExportIntegration, FabricAndLinkCountersLandInMetrics) {
  hicma::ExperimentConfig cfg;
  cfg.nodes = 8;
  cfg.backend = BackendKind::Lci;
  cfg.tlr.mode = hicma::TlrOptions::Mode::Model;
  cfg.tlr.n = 36000;
  cfg.tlr.nb = 3000;
  // Expanse-style fat tree shrunk to 4-node leaves so an 8-node run
  // spans two leaves and cross-leaf traffic exercises the boundary-tier
  // link counters.
  cfg.fabric = net::expanse_fat_tree_config();
  cfg.fabric.nodes_per_switch = 4;
  cfg.fabric.topology.levels[0].radix = 4;
  cfg.fabric.topology.levels[0].uplinks = 1;
  cfg.rt.ft.enabled = true;  // the tolerant runtime drives (and stops) the FD
  cfg.ce.fd.enabled = true;
  cfg.ce.reliable.enabled = true;

  const auto res = hicma::run_tlr_cholesky(cfg);
  ASSERT_EQ(res.run_status, amt::RunStatus::Ok);

  const auto counter = [&res](const char* name) -> std::uint64_t {
    const obs::Counter* const c = res.metrics.find_counter(name);
    return c ? c->value() : 0;
  };
  // Frame totals mirror the fabric's own counters exactly.
  EXPECT_EQ(counter("net.msgs"), res.fabric_messages);
  EXPECT_EQ(counter("net.bytes"), res.fabric_bytes);
  // Everything sent on a lossless fabric is delivered.
  EXPECT_EQ(counter("net.delivered_msgs"), res.fabric_messages);
  EXPECT_GT(counter("net.delivered_bytes"), 0u);
  // Explicit-link routing: the boundary-tier counters must be present
  // and consistent (tier-0 up traffic is cross-leaf traffic, which an
  // 8-node 2-leaf run necessarily has).
  EXPECT_GT(counter("net.link.t0.up_msgs"), 0u);
  EXPECT_GT(counter("net.link.t0.up_bytes"), 0u);
  EXPECT_GT(counter("net.link.t0.down_bytes"), 0u);
  // The failure detector ran (enabled, no crashes): its heartbeat
  // counter must land in the same recorder the driver exports.
  EXPECT_GT(counter("ce.fd.heartbeats"), 0u);
  // And the whole set renders into the AMTLCE_METRICS JSON document.
  const std::string json = obs::metrics_json(res.metrics);
  EXPECT_TRUE(obs::json_parse_ok(json));
  EXPECT_NE(json.find("\"net.link.t0.up_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"ce.fd.heartbeats\""), std::string::npos);
}

}  // namespace
