// Chaos soak: a real (numeric) TLR Cholesky factorization over a fabric
// injecting drops, corruption, duplicates, jitter, a timed link brownout,
// and a NIC stall — with the end-to-end reliability sublayer enabled.  The
// factorization must still verify, the fault schedule must be
// bit-reproducible per seed, and the sublayer must have actually worked
// (retransmissions observed, no delivery timeouts).
#include <gtest/gtest.h>

#include <tuple>

#include "ce/world.hpp"
#include "des/time.hpp"
#include "hicma/driver.hpp"
#include "net/config.hpp"

namespace {

using ce::BackendKind;

hicma::ExperimentConfig base_config(BackendKind kind) {
  hicma::ExperimentConfig cfg;
  cfg.nodes = 4;
  cfg.backend = kind;
  cfg.tlr.mode = hicma::TlrOptions::Mode::Real;
  cfg.tlr.n = 192;
  cfg.tlr.nb = 32;
  cfg.tlr.accuracy = 1e-9;
  cfg.tlr.maxrank = 32;
  cfg.tlr.problem.length_scale = 0.2;
  cfg.tlr.problem.noise = 0.05;
  cfg.workers_override = 4;
  return cfg;
}

std::uint64_t rel_counter(const hicma::ExperimentResult& res,
                          std::string_view name) {
  const obs::Counter* c = res.metrics.find_counter(name);
  return c ? c->value() : 0;
}

class ChaosBackends : public ::testing::TestWithParam<BackendKind> {};

TEST_P(ChaosBackends, TlrCholeskySurvivesChaosAndIsDeterministic) {
  // Calibrate the fault windows against the fault-free makespan so the
  // brownout and stall land mid-factorization regardless of backend.
  const auto clean = hicma::run_tlr_cholesky(base_config(GetParam()));
  ASSERT_LT(clean.residual, 1e-7);
  const auto makespan_ns =
      static_cast<des::Duration>(clean.tts_s * 1e9);
  ASSERT_GT(makespan_ns, 0);

  auto chaos_cfg = [&]() {
    hicma::ExperimentConfig cfg = base_config(GetParam());
    cfg.ce.reliable.enabled = true;
    net::FaultConfig& f = cfg.fabric.faults;
    f.seed = 0xC0DE5;
    f.drop_prob = 0.01;
    f.dup_prob = 0.01;
    f.corrupt_prob = 0.01;
    f.jitter_max = 1 * des::kMicrosecond;
    f.spike_prob = 0.01;
    f.spike_max = 20 * des::kMicrosecond;
    // One link browns out for a stretch the retry budget can ride out.
    f.brownout_node = 2;
    f.brownout_start = makespan_ns / 4;
    f.brownout_duration =
        std::min<des::Duration>(makespan_ns / 20, 2 * des::kMillisecond);
    // And one NIC freezes its egress pipe for a while.
    f.stall_node = 1;
    f.stall_start = makespan_ns / 2;
    f.stall_duration =
        std::min<des::Duration>(makespan_ns / 20, 1 * des::kMillisecond);
    return cfg;
  };

  const auto a = hicma::run_tlr_cholesky(chaos_cfg());
  // Numerics hold despite ≥1% loss, corruption, a brownout, and a stall.
  EXPECT_LT(a.residual, 1e-7);
  EXPECT_EQ(a.tasks, clean.tasks);
  // The fault schedule really fired and the sublayer really recovered.
  EXPECT_GT(rel_counter(a, "net.fault.drops"), 0u);
  EXPECT_GT(rel_counter(a, "net.fault.corruptions"), 0u);
  EXPECT_GT(rel_counter(a, "ce.rel.retransmits"), 0u);
  EXPECT_EQ(rel_counter(a, "ce.rel.timeouts"), 0u);
  // Chaos costs time, never answers.
  EXPECT_GT(a.tts_s, clean.tts_s);

  const auto b = hicma::run_tlr_cholesky(chaos_cfg());
  // Bit-identical reproduction: same seed, same everything.
  EXPECT_EQ(a.residual, b.residual);
  EXPECT_EQ(a.tts_s, b.tts_s);
  EXPECT_EQ(a.fabric_messages, b.fabric_messages);
  EXPECT_EQ(a.fabric_bytes, b.fabric_bytes);
  EXPECT_EQ(rel_counter(a, "ce.rel.retransmits"),
            rel_counter(b, "ce.rel.retransmits"));
  EXPECT_EQ(rel_counter(a, "net.fault.drops"),
            rel_counter(b, "net.fault.drops"));

  // A different seed reshuffles the schedule (sanity that the comparison
  // above is not vacuous).
  auto other = chaos_cfg();
  other.fabric.faults.seed = 0xC0DE6;
  const auto c = hicma::run_tlr_cholesky(other);
  EXPECT_LT(c.residual, 1e-7);
  EXPECT_NE(std::make_tuple(a.tts_s, rel_counter(a, "net.fault.drops")),
            std::make_tuple(c.tts_s, rel_counter(c, "net.fault.drops")));
}

INSTANTIATE_TEST_SUITE_P(Backends, ChaosBackends,
                         ::testing::Values(BackendKind::Mpi,
                                           BackendKind::Lci),
                         [](const auto& pinfo) {
                           return pinfo.param == BackendKind::Mpi ? "Mpi"
                                                                  : "Lci";
                         });

}  // namespace
