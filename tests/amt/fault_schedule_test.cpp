// Fault schedules under the full AMT runtime: delay faults (jitter and
// latency spikes) must never change computed results, and loss faults
// (drop / duplicate / corrupt) must be fully absorbed by the reliability
// sublayer so task graphs still complete with sequential-reference
// results on both backends.
#include <gtest/gtest.h>

#include <tuple>

#include "amt/runtime.hpp"
#include "ce/world.hpp"
#include "des/engine.hpp"
#include "net/fabric.hpp"
#include "test_graphs.hpp"

namespace {

using amt::Runtime;
using amt_test::WavefrontGraph;
using ce::BackendKind;

struct FaultWorld {
  des::Engine eng;
  net::Fabric fab;
  ce::CommWorld comm;
  FaultWorld(int nodes, BackendKind kind, net::FabricConfig fab_cfg,
             ce::CeConfig ce_cfg = {})
      : fab(eng, nodes, fab_cfg), comm(fab, kind, ce_cfg) {}
};

class FaultBackends : public ::testing::TestWithParam<BackendKind> {};

TEST_P(FaultBackends, DelayJitterNeverChangesResults) {
  auto run = [&](net::FabricConfig fc) {
    FaultWorld w(4, GetParam(), fc);
    WavefrontGraph graph(8, 4);
    Runtime rt(w.eng, w.fab, w.comm, graph);
    const auto makespan = rt.run();
    EXPECT_EQ(rt.total_tasks_executed(), 64u);
    EXPECT_EQ(graph.corner(), graph.expected_corner());
    return makespan;
  };
  const auto clean = run(net::FabricConfig{});

  net::FabricConfig jittery;
  jittery.faults.jitter_max = 3 * des::kMicrosecond;
  jittery.faults.spike_prob = 0.05;
  jittery.faults.spike_max = 50 * des::kMicrosecond;
  const auto delayed = run(jittery);
  // Same answer, different schedule: delays stretch the critical path.
  EXPECT_GT(delayed, clean);
}

TEST_P(FaultBackends, LossFaultsAbsorbedByReliabilitySublayer) {
  net::FabricConfig fc;
  fc.faults.drop_prob = 0.02;
  fc.faults.dup_prob = 0.02;
  fc.faults.corrupt_prob = 0.02;
  fc.faults.jitter_max = 1 * des::kMicrosecond;
  ce::CeConfig cc;
  cc.reliable.enabled = true;
  FaultWorld w(4, GetParam(), fc, cc);
  WavefrontGraph graph(10, 4);
  Runtime rt(w.eng, w.fab, w.comm, graph);
  rt.run();
  EXPECT_EQ(rt.total_tasks_executed(), 100u);
  EXPECT_EQ(graph.corner(), graph.expected_corner());
  const auto& fs = w.fab.fault_stats();
  EXPECT_GT(fs.drops + fs.corruptions + fs.dups, 0u)
      << "the schedule must actually have exercised faults";
  EXPECT_GT(w.comm.reliability()->stats().retransmits, 0u);
  EXPECT_EQ(w.comm.reliability()->stats().timeouts, 0u);
  EXPECT_EQ(w.comm.reliability()->unacked(), 0u);
}

TEST_P(FaultBackends, ChaosRunIsDeterministicPerSeed) {
  auto run = [&]() {
    net::FabricConfig fc;
    fc.faults.seed = 0xC0FFEE;
    fc.faults.drop_prob = 0.02;
    fc.faults.dup_prob = 0.02;
    fc.faults.corrupt_prob = 0.02;
    ce::CeConfig cc;
    cc.reliable.enabled = true;
    FaultWorld w(4, GetParam(), fc, cc);
    WavefrontGraph graph(8, 4);
    Runtime rt(w.eng, w.fab, w.comm, graph);
    const auto makespan = rt.run();
    const auto& fs = w.fab.fault_stats();
    return std::make_tuple(makespan, graph.corner(),
                           w.comm.reliability()->stats().retransmits,
                           fs.drops, fs.dups, fs.corruptions);
  };
  EXPECT_EQ(run(), run()) << "same fault seed, same schedule and stats";
}

INSTANTIATE_TEST_SUITE_P(Backends, FaultBackends,
                         ::testing::Values(BackendKind::Mpi,
                                           BackendKind::Lci),
                         [](const auto& pinfo) {
                           return pinfo.param == BackendKind::Mpi ? "Mpi"
                                                                  : "Lci";
                         });

}  // namespace
