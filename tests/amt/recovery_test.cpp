// Fail-stop recovery: lineage-tracker unit semantics (deterministic
// re-homing, epoch bumps, exact done-counting) and ground-truth crash
// recovery through the full runtime — a node dies mid-graph, its
// unfinished lineage re-homes onto survivors, lost inputs are re-served
// or re-produced, and the numeric answer still comes out right.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "amt/lineage.hpp"
#include "amt/runtime.hpp"
#include "ce/world.hpp"
#include "des/engine.hpp"
#include "des/time.hpp"
#include "net/fabric.hpp"
#include "test_graphs.hpp"

namespace {

using amt::FaultState;
using amt::LineageTracker;
using amt::RunStatus;
using amt::Runtime;
using amt::RuntimeConfig;
using amt::TaskKey;
using amt::TaskPhase;
using amt_test::ChainGraph;
using amt_test::WavefrontGraph;
using ce::BackendKind;

// ---------------------------------------------------------------------------
// LineageTracker units

TEST(Lineage, ReownerIsDeterministicAndCoversSurvivors) {
  const std::vector<int> survivors{0, 2, 3, 5};
  std::set<int> hit;
  for (int i = 0; i < 64; ++i) {
    const TaskKey t{1, i, i / 3, 0};
    const int a = LineageTracker::reowner(t, survivors);
    const int b = LineageTracker::reowner(t, survivors);
    EXPECT_EQ(a, b);  // same key, same survivor list => same home
    EXPECT_TRUE(std::count(survivors.begin(), survivors.end(), a));
    hit.insert(a);
  }
  // The hash rule spreads work: 64 keys over 4 survivors hit them all.
  EXPECT_EQ(hit.size(), survivors.size());
}

TEST(Lineage, RearmUncountsDoneAndBumpsEpoch) {
  ChainGraph graph(4, 2);
  LineageTracker lin(graph);
  const TaskKey t{0, 1};
  EXPECT_EQ(lin.phase(t), TaskPhase::Pending);
  EXPECT_EQ(lin.home(t), 1);  // owner-computes default (t.i % nodes)

  lin.mark_ready(t);
  lin.mark_done(t);
  lin.mark_done(t);  // idempotent
  EXPECT_EQ(lin.done_count(), 1u);
  EXPECT_EQ(lin.epoch(t), 0);

  const std::vector<int> survivors{0};
  EXPECT_EQ(lin.rearm(t, survivors), 1);
  EXPECT_EQ(lin.done_count(), 0u);  // the completion predicate stays exact
  EXPECT_EQ(lin.phase(t), TaskPhase::Pending);
  EXPECT_EQ(lin.home(t), 0);  // re-homed off the corpse

  lin.mark_done(t);
  EXPECT_EQ(lin.done_count(), 1u);
  EXPECT_EQ(lin.rearm(t, survivors), 2);  // epoch counts re-executions
}

TEST(Lineage, FaultStateFirstErrorWinsAndSurvivorsAscend) {
  ChainGraph graph(4, 4);
  FaultState ft(graph, {});
  ft.node_dead.assign(4, 0);
  ft.node_dead[2] = 1;
  EXPECT_FALSE(ft.alive(2));
  EXPECT_TRUE(ft.alive(3));
  EXPECT_EQ(ft.survivors(), (std::vector<int>{0, 1, 3}));

  ft.fail(RunStatus::ErrTileLost);
  ft.fail(RunStatus::ErrDeadlock);
  EXPECT_EQ(ft.status, RunStatus::ErrTileLost);
}

// ---------------------------------------------------------------------------
// Ground-truth crash recovery through the full runtime (no failure
// detector: the fabric crash handler drives recovery with zero detection
// latency, which keeps these tests small and fast).

struct CrashWorld {
  des::Engine eng;
  net::Fabric fab;
  ce::CommWorld comm;
  CrashWorld(int nodes, BackendKind kind, const net::FaultConfig& faults)
      : fab(eng, nodes,
            [&faults]() {
              net::FabricConfig fc;
              fc.faults = faults;
              return fc;
            }()),
        comm(fab, kind) {}
};

RuntimeConfig tolerant_cfg() {
  RuntimeConfig cfg;
  cfg.ft.enabled = true;
  return cfg;
}

class RecoveryBackends : public ::testing::TestWithParam<BackendKind> {};

TEST_P(RecoveryBackends, ToleranceOffMatchesLegacyRun) {
  // ft off must stay byte-identical to the pre-recovery runtime; ft on
  // with no crashes must produce the same answer and task count.
  des::Duration legacy = 0;
  {
    CrashWorld w(4, GetParam(), {});
    WavefrontGraph graph(8, 4);
    Runtime rt(w.eng, w.fab, w.comm, graph);
    legacy = rt.run();
    EXPECT_EQ(graph.corner(), graph.expected_corner());
  }
  CrashWorld w(4, GetParam(), {});
  WavefrontGraph graph(8, 4);
  Runtime rt(w.eng, w.fab, w.comm, graph, tolerant_cfg());
  const des::Duration tol = rt.run();
  EXPECT_EQ(rt.run_status(), RunStatus::Ok);
  EXPECT_EQ(tol, legacy);  // no crashes: identical schedule
  EXPECT_EQ(graph.corner(), graph.expected_corner());
  const auto agg = rt.aggregate_stats();
  EXPECT_EQ(agg.tasks_reexecuted, 0u);
  EXPECT_EQ(agg.reannounces, 0u);
  EXPECT_EQ(agg.dup_inputs_dropped, 0u);
}

TEST_P(RecoveryBackends, WavefrontSurvivesMidRunCrash) {
  // Calibrate crashes against the fault-free makespan so they land with
  // work done on the victim and work still pending.  A single instant
  // can catch the victim's wavefront diagonal idle (nothing to
  // re-execute), so sweep several: every run must recover exactly, and
  // across the sweep lost work must provably have re-executed.
  des::Duration clean = 0;
  {
    CrashWorld w(4, GetParam(), {});
    WavefrontGraph graph(8, 4);
    Runtime rt(w.eng, w.fab, w.comm, graph, tolerant_cfg());
    clean = rt.run();
    ASSERT_EQ(rt.run_status(), RunStatus::Ok);
  }

  std::uint64_t reexecuted = 0;
  std::uint64_t reannounced = 0;
  for (const int eighth : {1, 2, 3, 4, 5}) {
    SCOPED_TRACE(::testing::Message() << "crash at " << eighth << "/8");
    net::FaultConfig faults;
    faults.crashes.push_back(net::CrashEvent{1, clean * eighth / 8, 0});
    CrashWorld w(4, GetParam(), faults);
    WavefrontGraph graph(8, 4);
    Runtime rt(w.eng, w.fab, w.comm, graph, tolerant_cfg());
    rt.run();
    EXPECT_EQ(rt.run_status(), RunStatus::Ok);
    // Every task completed exactly once in lineage terms, and the
    // numeric wavefront recursion still checks out.
    EXPECT_EQ(rt.fault_state()->lineage.done_count(), graph.total_tasks());
    EXPECT_EQ(graph.corner(), graph.expected_corner());
    // Re-executions only add raw task runs, never lose them.
    EXPECT_GE(rt.total_tasks_executed(), graph.total_tasks());
    // The corpse did not keep working.
    EXPECT_TRUE(rt.node(1).crashed());
    const auto agg = rt.aggregate_stats();
    reexecuted += agg.tasks_reexecuted;
    reannounced += agg.reannounces;
  }
  // Somewhere in the sweep the victim held finished-or-running work.
  EXPECT_GT(reexecuted, 0u);
  EXPECT_GT(reannounced, 0u);
}

TEST_P(RecoveryBackends, RecoveryIsDeterministicPerSchedule) {
  auto once = [&](des::Duration crash_at) {
    net::FaultConfig faults;
    faults.crashes.push_back(net::CrashEvent{2, crash_at, 0});
    CrashWorld w(4, GetParam(), faults);
    WavefrontGraph graph(8, 4);
    Runtime rt(w.eng, w.fab, w.comm, graph, tolerant_cfg());
    const des::Duration makespan = rt.run();
    EXPECT_EQ(rt.run_status(), RunStatus::Ok);
    EXPECT_EQ(graph.corner(), graph.expected_corner());
    const auto agg = rt.aggregate_stats();
    return std::make_tuple(makespan, agg.tasks_reexecuted, agg.reannounces,
                           rt.total_tasks_executed());
  };
  const auto a = once(40 * des::kMicrosecond);
  const auto b = once(40 * des::kMicrosecond);
  EXPECT_EQ(a, b);  // same crash schedule => bit-identical recovery
}

TEST_P(RecoveryBackends, ChainLosesEveryThirdNodeAndStillCounts) {
  // A 30-task chain over 3 nodes where the middle node dies early: every
  // in-flight hand-off through rank 1 must re-home and the final counter
  // must still see all 29 increments.
  des::Duration clean = 0;
  {
    CrashWorld w(3, GetParam(), {});
    ChainGraph graph(30, 3);
    Runtime rt(w.eng, w.fab, w.comm, graph, tolerant_cfg());
    clean = rt.run();
  }
  net::FaultConfig faults;
  faults.crashes.push_back(net::CrashEvent{1, clean / 3, 0});
  CrashWorld w(3, GetParam(), faults);
  ChainGraph graph(30, 3);
  Runtime rt(w.eng, w.fab, w.comm, graph, tolerant_cfg());
  rt.run();
  EXPECT_EQ(rt.run_status(), RunStatus::Ok);
  EXPECT_EQ(rt.fault_state()->lineage.done_count(), 30u);
  EXPECT_EQ(graph.final_value(), 29);
}

TEST_P(RecoveryBackends, AllPeersDeadFailsClosed) {
  // Kill every node but none survive to recover: the run must end with
  // ErrNoSurvivors, not an abort or a hang.
  net::FaultConfig faults;
  for (int n = 0; n < 2; ++n) {
    faults.crashes.push_back(
        net::CrashEvent{n, 10 * des::kMicrosecond, 0});
  }
  CrashWorld w(2, GetParam(), faults);
  WavefrontGraph graph(6, 2);
  Runtime rt(w.eng, w.fab, w.comm, graph, tolerant_cfg());
  rt.run();
  EXPECT_EQ(rt.run_status(), RunStatus::ErrNoSurvivors);
  EXPECT_LT(rt.fault_state()->lineage.done_count(), graph.total_tasks());
}

INSTANTIATE_TEST_SUITE_P(Backends, RecoveryBackends,
                         ::testing::Values(BackendKind::Mpi,
                                           BackendKind::Lci),
                         [](const auto& pinfo) {
                           return pinfo.param == BackendKind::Mpi ? "Mpi"
                                                                  : "Lci";
                         });

}  // namespace
