// Small task-graph definitions used by the runtime tests.
#pragma once

#include <cassert>
#include <cstring>
#include <vector>

#include "amt/task_graph.hpp"

namespace amt_test {

using amt::DataCopy;
using amt::DataCopyPtr;
using amt::Dep;
using amt::RunContext;
using amt::TaskKey;

/// A linear chain of `length` tasks; task t runs on rank t % nodes and
/// passes an 8-byte counter that each task increments.
class ChainGraph final : public amt::TaskGraphDef {
 public:
  ChainGraph(int length, int nodes, bool real_data = true,
             std::size_t data_size = 8)
      : length_(length), nodes_(nodes), real_(real_data), size_(data_size) {}

  int num_inputs(const TaskKey& t) const override { return t.i == 0 ? 0 : 1; }
  int num_outputs(const TaskKey& t) const override {
    return t.i + 1 < length_ ? 1 : 0;
  }
  int rank_of(const TaskKey& t) const override { return t.i % nodes_; }
  void successors(const TaskKey& t, int, std::vector<Dep>& out) const override {
    if (t.i + 1 < length_) out.push_back(Dep{TaskKey{0, t.i + 1}, 0});
  }
  des::Duration execute(const TaskKey& t, RunContext& ctx) override {
    if (num_outputs(t) > 0) {
      DataCopyPtr out =
          real_ ? DataCopy::real(std::max<std::size_t>(size_, 8))
                : DataCopy::virt(size_);
      if (real_) {
        std::int64_t v = 0;
        if (t.i > 0 && ctx.input(0)->bytes) {
          std::memcpy(&v, ctx.input(0)->bytes->data(), sizeof v);
        }
        ++v;
        std::memcpy(out->bytes->data(), &v, sizeof v);
      }
      ctx.set_output(0, out);
    } else if (t.i > 0 && real_ && ctx.input(0)->bytes) {
      std::memcpy(&final_value_, ctx.input(0)->bytes->data(),
                  sizeof final_value_);
    }
    return 1000;  // 1 us body
  }
  void initial_tasks(int rank, std::vector<TaskKey>& out) const override {
    if (rank_of(TaskKey{0, 0}) == rank) out.push_back(TaskKey{0, 0});
  }
  std::uint64_t total_tasks() const override {
    return static_cast<std::uint64_t>(length_);
  }

  std::int64_t final_value() const { return final_value_; }

 private:
  int length_, nodes_;
  bool real_;
  std::size_t size_;
  std::int64_t final_value_ = -1;
};

/// One root task broadcasting a datum to `fanout` consumer tasks spread
/// round-robin over ranks (exercises the multicast tree).
class BroadcastGraph final : public amt::TaskGraphDef {
 public:
  BroadcastGraph(int fanout, int nodes, std::size_t data_size = 4096)
      : fanout_(fanout), nodes_(nodes), size_(data_size) {}

  int num_inputs(const TaskKey& t) const override {
    return t.cls == 0 ? 0 : 1;
  }
  int num_outputs(const TaskKey& t) const override {
    return t.cls == 0 ? 1 : 0;
  }
  int rank_of(const TaskKey& t) const override {
    return t.cls == 0 ? 0 : (1 + t.i) % nodes_;
  }
  void successors(const TaskKey& t, int, std::vector<Dep>& out) const override {
    if (t.cls != 0) return;
    for (int c = 0; c < fanout_; ++c) out.push_back(Dep{TaskKey{1, c}, 0});
  }
  des::Duration execute(const TaskKey& t, RunContext& ctx) override {
    if (t.cls == 0) {
      auto out = DataCopy::real(size_);
      std::memset(out->bytes->data(), 0x5A, size_);
      ctx.set_output(0, out);
    } else {
      const auto& in = ctx.input(0);
      if (in->bytes && (*in->bytes)[0] == std::byte{0x5A}) {
        ++verified_;
      }
    }
    return 500;
  }
  void initial_tasks(int rank, std::vector<TaskKey>& out) const override {
    if (rank == 0) out.push_back(TaskKey{0, 0});
  }
  std::uint64_t total_tasks() const override {
    return 1 + static_cast<std::uint64_t>(fanout_);
  }

  int verified() const { return verified_; }

 private:
  int fanout_, nodes_;
  std::size_t size_;
  int verified_ = 0;
};

/// N x N wavefront: task (i,j) depends on (i-1,j) and (i,j-1); values
/// propagate as out = left + up + 1, checkable against a sequential DP.
/// rank_of = (i + j) % nodes gives heavy cross-node traffic.
class WavefrontGraph final : public amt::TaskGraphDef {
 public:
  WavefrontGraph(int n, int nodes) : n_(n), nodes_(nodes) {}

  int num_inputs(const TaskKey& t) const override {
    return (t.i > 0 ? 1 : 0) + (t.j > 0 ? 1 : 0);
  }
  int num_outputs(const TaskKey& t) const override {
    // Flow 0 feeds (i+1, j); flow 1 feeds (i, j+1).
    return 2;
  }
  int rank_of(const TaskKey& t) const override {
    return (t.i + t.j) % nodes_;
  }
  void successors(const TaskKey& t, int flow,
                  std::vector<Dep>& out) const override {
    if (flow == 0 && t.i + 1 < n_) {
      // (i+1, j)'s input 0 is its "up" neighbour.
      out.push_back(Dep{TaskKey{0, t.i + 1, t.j}, 0});
    }
    if (flow == 1 && t.j + 1 < n_) {
      // (i, j+1)'s input layout: input 0 = up when i > 0, left otherwise.
      const int input = t.i > 0 ? 1 : 0;
      out.push_back(Dep{TaskKey{0, t.i, t.j + 1}, input});
    }
  }
  double priority(const TaskKey& t) const override {
    return static_cast<double>(2 * n_ - t.i - t.j);  // wavefront order
  }
  des::Duration execute(const TaskKey& t, RunContext& ctx) override {
    std::int64_t up = 0, left = 0;
    if (t.i > 0) read_value(ctx.input(0), up);
    if (t.j > 0) read_value(ctx.input(t.i > 0 ? 1 : 0), left);
    const std::int64_t v = up + left + 1;
    auto mk = [&]() {
      auto d = DataCopy::real(8);
      std::memcpy(d->bytes->data(), &v, 8);
      return d;
    };
    ctx.set_output(0, mk());
    ctx.set_output(1, mk());
    if (t.i == n_ - 1 && t.j == n_ - 1) corner_ = v;
    return 2000;
  }
  void initial_tasks(int rank, std::vector<TaskKey>& out) const override {
    if (rank_of(TaskKey{0, 0, 0}) == rank) out.push_back(TaskKey{0, 0, 0});
  }
  std::uint64_t total_tasks() const override {
    return static_cast<std::uint64_t>(n_) * static_cast<std::uint64_t>(n_);
  }

  std::int64_t corner() const { return corner_; }
  std::int64_t expected_corner() const {
    // Sequential DP reference.
    std::vector<std::vector<std::int64_t>> v(
        static_cast<std::size_t>(n_),
        std::vector<std::int64_t>(static_cast<std::size_t>(n_), 0));
    for (int i = 0; i < n_; ++i) {
      for (int j = 0; j < n_; ++j) {
        const std::int64_t up = i > 0 ? v[static_cast<std::size_t>(i - 1)]
                                         [static_cast<std::size_t>(j)]
                                      : 0;
        const std::int64_t left = j > 0 ? v[static_cast<std::size_t>(i)]
                                           [static_cast<std::size_t>(j - 1)]
                                        : 0;
        v[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            up + left + 1;
      }
    }
    return v[static_cast<std::size_t>(n_ - 1)]
            [static_cast<std::size_t>(n_ - 1)];
  }

 private:
  static void read_value(const DataCopyPtr& d, std::int64_t& v) {
    assert(d && d->bytes);
    std::memcpy(&v, d->bytes->data(), 8);
  }
  int n_, nodes_;
  std::int64_t corner_ = -1;
};

}  // namespace amt_test
