#include "amt/runtime.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "ce/world.hpp"
#include "des/engine.hpp"
#include "net/fabric.hpp"
#include "test_graphs.hpp"

namespace {

using amt::Runtime;
using amt::RuntimeConfig;
using amt_test::BroadcastGraph;
using amt_test::ChainGraph;
using amt_test::WavefrontGraph;
using ce::BackendKind;

struct RtWorld {
  des::Engine eng;
  net::Fabric fab;
  ce::CommWorld comm;
  RtWorld(int nodes, BackendKind kind, ce::CeConfig ce_cfg = {})
      : fab(eng, nodes), comm(fab, kind, ce_cfg) {}
};

class RtBackends : public ::testing::TestWithParam<BackendKind> {};

TEST_P(RtBackends, SingleNodeChainExecutesInOrder) {
  RtWorld w(1, GetParam());
  ChainGraph graph(20, 1);
  Runtime rt(w.eng, w.fab, w.comm, graph);
  rt.run();
  EXPECT_EQ(rt.total_tasks_executed(), 20u);
  EXPECT_EQ(graph.final_value(), 19);  // 19 increments reach the last task
}

TEST_P(RtBackends, CrossNodeChainDeliversData) {
  RtWorld w(4, GetParam());
  ChainGraph graph(21, 4);
  Runtime rt(w.eng, w.fab, w.comm, graph);
  rt.run();
  EXPECT_EQ(rt.total_tasks_executed(), 21u);
  EXPECT_EQ(graph.final_value(), 20);
  const auto agg = rt.aggregate_stats();
  // Every hop crosses nodes: 20 activations, 20 fetches, 20 arrivals.
  EXPECT_EQ(agg.activations_sent, 20u);
  EXPECT_EQ(agg.getdata_sent, 20u);
  EXPECT_EQ(agg.data_arrivals, 20u);
  EXPECT_GT(agg.latency.count(), 0u);
  EXPECT_GT(agg.latency.e2e_mean_ns(), 0.0);
}

TEST_P(RtBackends, BroadcastReachesAllConsumers) {
  RtWorld w(8, GetParam());
  BroadcastGraph graph(/*fanout=*/28, /*nodes=*/8);
  Runtime rt(w.eng, w.fab, w.comm, graph);
  rt.run();
  EXPECT_EQ(rt.total_tasks_executed(), 29u);
  EXPECT_EQ(graph.verified(), 28);
  const auto agg = rt.aggregate_stats();
  // 7 remote ranks with arity 2 => forwarding must have happened.
  EXPECT_GT(agg.forwards, 0u);
}

TEST_P(RtBackends, WavefrontComputesCorrectCorner) {
  RtWorld w(4, GetParam());
  WavefrontGraph graph(8, 4);
  Runtime rt(w.eng, w.fab, w.comm, graph);
  rt.run();
  EXPECT_EQ(rt.total_tasks_executed(), 64u);
  EXPECT_EQ(graph.corner(), graph.expected_corner());
}

TEST_P(RtBackends, MtActivateProducesSameResult) {
  RtWorld w(4, GetParam());
  WavefrontGraph graph(8, 4);
  RuntimeConfig cfg;
  cfg.mt_activate = true;
  Runtime rt(w.eng, w.fab, w.comm, graph, cfg);
  rt.run();
  EXPECT_EQ(graph.corner(), graph.expected_corner());
  const auto agg = rt.aggregate_stats();
  // No aggregation: one AM per activation record.
  EXPECT_EQ(agg.activate_ams, agg.activations_sent);
}

TEST_P(RtBackends, AggregationBatchesActivations) {
  RtWorld w(4, GetParam());
  WavefrontGraph graph(10, 4);
  Runtime rt(w.eng, w.fab, w.comm, graph);
  rt.run();
  const auto agg = rt.aggregate_stats();
  EXPECT_GT(agg.activations_sent, 0u);
  EXPECT_LE(agg.activate_ams, agg.activations_sent);
}

TEST_P(RtBackends, VirtualPayloadGraphCompletes) {
  RtWorld w(4, GetParam());
  ChainGraph graph(30, 4, /*real_data=*/false, /*data_size=*/1 << 20);
  Runtime rt(w.eng, w.fab, w.comm, graph);
  const auto makespan = rt.run();
  EXPECT_EQ(rt.total_tasks_executed(), 30u);
  EXPECT_GT(makespan, 0);
}

TEST_P(RtBackends, FetchCapDefersGetData) {
  RtWorld w(2, GetParam());
  BroadcastGraph graph(/*fanout=*/40, /*nodes=*/2);
  RuntimeConfig cfg;
  cfg.max_inflight_fetches = 1;  // extreme: serialize fetches
  cfg.multicast_arity = 64;      // no forwarding, all direct
  Runtime rt(w.eng, w.fab, w.comm, graph, cfg);
  rt.run();
  EXPECT_EQ(graph.verified(), 40);
}

TEST_P(RtBackends, MakespanScalesDownWithWorkers) {
  auto run_with_workers = [&](int workers) {
    RtWorld w(1, GetParam());
    BroadcastGraph graph(64, 1);
    RuntimeConfig cfg;
    cfg.workers = workers;
    Runtime rt(w.eng, w.fab, w.comm, graph, cfg);
    return rt.run();
  };
  const auto t1 = run_with_workers(1);
  const auto t8 = run_with_workers(8);
  EXPECT_LT(t8, t1);
}

TEST_P(RtBackends, StageHistogramsTelescopeToE2eLatency) {
  RtWorld w(4, GetParam());
  WavefrontGraph graph(8, 4);
  Runtime rt(w.eng, w.fab, w.comm, graph);
  rt.run();
  const auto agg = rt.aggregate_stats();
  ASSERT_GT(agg.latency.count(), 0u);
  // Every delivery contributes one sample to each of the seven e2e stages
  // (zero-valued for the stages a control-only record skips), so stage
  // counts track the e2e count exactly.
  for (int s = 0; s < amt::kE2eStages; ++s) {
    const auto& h = agg.stages.h[static_cast<std::size_t>(s)];
    EXPECT_EQ(h.count(), agg.latency.count()) << amt::kStageNames[s];
    EXPECT_GE(h.min(), 0.0) << amt::kStageNames[s];
  }
  // Telescoping: consecutive stage timestamps share endpoints, so under
  // identity clocks the stage means sum to the e2e mean to fp rounding.
  const double e2e = agg.latency.e2e_mean_ns();
  EXPECT_NEAR(agg.stages.e2e_stage_mean_sum_ns(), e2e, 1e-6 * e2e);
}

TEST_P(RtBackends, MtActivateShrinksTheQueueStage) {
  auto run_cfg = [&](bool mt) {
    RtWorld w(4, GetParam());
    WavefrontGraph graph(10, 4);
    RuntimeConfig cfg;
    cfg.mt_activate = mt;
    Runtime rt(w.eng, w.fab, w.comm, graph, cfg);
    rt.run();
    return rt.aggregate_stats();
  };
  const auto agg = run_cfg(false);
  const auto mt = run_cfg(true);
  const double q_agg = agg.stages[amt::Stage::Queue].mean();
  const double q_mt = mt.stages[amt::Stage::Queue].mean();
  // Aggregation makes records wait for the comm thread's flush; workers
  // sending directly (§6.4.3) all but eliminates that queueing stage.
  EXPECT_GT(q_agg, 0.0);
  EXPECT_LT(q_mt, q_agg * 0.5);
  // And the queue stage is where the aggregation-mode latency hides: its
  // gain carries a major share of the total e2e improvement.  (Downstream
  // stages such as transfer can improve too — earlier sends decongest the
  // wire — so require a share, not strict per-stage dominance.)
  const double e2e_gain = agg.latency.e2e_mean_ns() - mt.latency.e2e_mean_ns();
  EXPECT_GT(e2e_gain, 0.0);
  EXPECT_GE(q_agg - q_mt, 0.25 * e2e_gain);
}

TEST_P(RtBackends, CriticalPathIsConsistentAndDeterministic) {
  auto run_once = [&]() {
    RtWorld w(4, GetParam());
    WavefrontGraph graph(8, 4);
    Runtime rt(w.eng, w.fab, w.comm, graph);
    const des::Duration makespan = rt.run();
    return std::make_pair(rt.aggregate_stats(), makespan);
  };
  const auto [a, span_a] = run_once();
  ASSERT_TRUE(a.crit.seen);
  // Invariant: the chain sums reconstruct the final task's finish time
  // exactly, and the chain fits inside the run.
  EXPECT_EQ(a.crit.sums.total(), a.crit.finish_g);
  EXPECT_LE(a.crit.finish_g, span_a);
  EXPECT_GT(a.crit.sums.tasks, 1u);       // spans multiple tasks
  EXPECT_GT(a.crit.sums.compute, 0);
  EXPECT_GT(a.crit.sums.comm, 0);         // wavefront crosses nodes
  EXPECT_GE(a.crit.sums.overhead, 0);
  // Bit-identical across reruns of the same seed (acceptance criterion).
  const auto [b, span_b] = run_once();
  EXPECT_EQ(span_a, span_b);
  EXPECT_EQ(a.crit.finish_g, b.crit.finish_g);
  EXPECT_EQ(a.crit.sums.compute, b.crit.sums.compute);
  EXPECT_EQ(a.crit.sums.comm, b.crit.sums.comm);
  EXPECT_EQ(a.crit.sums.overhead, b.crit.sums.overhead);
  EXPECT_EQ(a.crit.sums.tasks, b.crit.sums.tasks);
  EXPECT_TRUE(a.crit.last == b.crit.last);
  // Stage histograms are deterministic too: same counts and exact sums.
  for (int s = 0; s < amt::kNumStages; ++s) {
    const auto& ha = a.stages.h[static_cast<std::size_t>(s)];
    const auto& hb = b.stages.h[static_cast<std::size_t>(s)];
    EXPECT_EQ(ha.count(), hb.count()) << amt::kStageNames[s];
    EXPECT_DOUBLE_EQ(ha.sum(), hb.sum()) << amt::kStageNames[s];
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, RtBackends,
                         ::testing::Values(BackendKind::Mpi,
                                           BackendKind::Lci),
                         [](const auto& info) {
                           return info.param == BackendKind::Mpi ? "Mpi"
                                                                 : "Lci";
                         });

// Wavefront correctness sweep across sizes, node counts, and backends —
// the full protocol (activate, fetch, put, release, multicast) must
// deliver exactly the sequential result every time.
class RtWavefrontSweep
    : public ::testing::TestWithParam<std::tuple<int, int, BackendKind>> {};

TEST_P(RtWavefrontSweep, MatchesSequentialReference) {
  const auto [n, nodes, kind] = GetParam();
  RtWorld w(nodes, kind);
  WavefrontGraph graph(n, nodes);
  Runtime rt(w.eng, w.fab, w.comm, graph);
  rt.run();
  EXPECT_EQ(rt.total_tasks_executed(),
            static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n));
  EXPECT_EQ(graph.corner(), graph.expected_corner());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RtWavefrontSweep,
    ::testing::Combine(::testing::Values(2, 5, 12),
                       ::testing::Values(1, 2, 3, 7),
                       ::testing::Values(BackendKind::Mpi, BackendKind::Lci)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_nodes" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) == BackendKind::Mpi ? "_Mpi" : "_Lci");
    });

TEST(RtPriorities, HigherPriorityTasksRunFirstOnSingleWorker) {
  // A broadcast fanout on one node with one worker: consumer execution
  // order must follow priority.  Build a custom graph inline.
  class PrioGraph final : public amt::TaskGraphDef {
   public:
    int num_inputs(const amt::TaskKey& t) const override {
      return t.cls == 0 ? 0 : 1;
    }
    int num_outputs(const amt::TaskKey& t) const override {
      return t.cls == 0 ? 1 : 0;
    }
    int rank_of(const amt::TaskKey&) const override { return 0; }
    void successors(const amt::TaskKey& t, int,
                    std::vector<amt::Dep>& out) const override {
      if (t.cls != 0) return;
      for (int c = 0; c < 6; ++c) out.push_back({amt::TaskKey{1, c}, 0});
    }
    double priority(const amt::TaskKey& t) const override {
      return t.cls == 0 ? 100.0 : static_cast<double>(t.i);
    }
    des::Duration execute(const amt::TaskKey& t,
                          amt::RunContext& ctx) override {
      if (t.cls == 0) {
        ctx.set_output(0, amt::DataCopy::virt(8));
      } else {
        order.push_back(t.i);
      }
      return 100;
    }
    void initial_tasks(int rank, std::vector<amt::TaskKey>& out) const override {
      if (rank == 0) out.push_back(amt::TaskKey{0, 0});
    }
    std::uint64_t total_tasks() const override { return 7; }
    std::vector<int> order;
  };

  RtWorld w(1, BackendKind::Lci);
  PrioGraph graph;
  amt::RuntimeConfig cfg;
  cfg.workers = 1;
  Runtime rt(w.eng, w.fab, w.comm, graph, cfg);
  rt.run();
  ASSERT_EQ(graph.order.size(), 6u);
  for (std::size_t i = 1; i < graph.order.size(); ++i) {
    EXPECT_GT(graph.order[i - 1], graph.order[i])
        << "priority order violated at " << i;
  }
}

TEST(RtLatency, LciLatencyNotWorseThanMpiOnCongestedChain) {
  auto mean_latency = [](BackendKind kind) {
    RtWorld w(2, kind);
    ChainGraph graph(60, 2, /*real_data=*/false, /*data_size=*/256 * 1024);
    Runtime rt(w.eng, w.fab, w.comm, graph);
    rt.run();
    return rt.aggregate_stats().latency.e2e_mean_ns();
  };
  const double mpi = mean_latency(BackendKind::Mpi);
  const double lci = mean_latency(BackendKind::Lci);
  EXPECT_GT(mpi, 0.0);
  EXPECT_GT(lci, 0.0);
  EXPECT_LE(lci, mpi);
}

}  // namespace
