#include "mmpi/mpi.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "des/engine.hpp"
#include "net/fabric.hpp"

namespace {

using des::Engine;
using mmpi::kAnySource;
using mmpi::Mpi;
using mmpi::MpiStatus;
using mmpi::Rank;
using mmpi::RequestId;

struct World {
  Engine eng;
  net::Fabric fab;
  Mpi mpi;
  explicit World(int nodes, mmpi::Config cfg = {})
      : fab(eng, nodes), mpi(fab, cfg) {}

  // Drives the engine until `req` on `rank` completes (polling like a real
  // progress loop, but from the test driver).
  bool wait(int rank, RequestId req, MpiStatus* st = nullptr) {
    for (int spins = 0; spins < 100000; ++spins) {
      if (mpi.rank(rank).test(req, st)) return true;
      // Every rank progresses, as real processes polling MPI would.
      for (int r = 0; r < mpi.size(); ++r) {
        if (r != rank) mpi.rank(r).poll();
      }
      if (!eng.step()) {
        for (int r = 0; r < mpi.size(); ++r) mpi.rank(r).poll();
        return mpi.rank(rank).test(req, st);
      }
    }
    return false;
  }
};

TEST(Mmpi, EagerSendRecvDeliversData) {
  World w(2);
  const std::string text = "hello, rank 1";
  std::array<char, 64> buf{};
  const RequestId r = w.mpi.rank(1).irecv(buf.data(), buf.size(), 0, /*tag=*/7);
  w.mpi.rank(0).send(text.data(), text.size(), 1, 7);
  MpiStatus st;
  ASSERT_TRUE(w.wait(1, r, &st));
  EXPECT_EQ(st.source, 0);
  EXPECT_EQ(st.tag, 7u);
  EXPECT_EQ(st.count, text.size());
  EXPECT_EQ(std::string(buf.data(), st.count), text);
}

TEST(Mmpi, RecvBeforeSendMatches) {
  World w(2);
  std::array<char, 16> buf{};
  const RequestId r = w.mpi.rank(1).irecv(buf.data(), buf.size(), 0, 3);
  w.eng.run();  // nothing to do yet
  w.mpi.rank(0).send("abc", 3, 1, 3);
  MpiStatus st;
  ASSERT_TRUE(w.wait(1, r, &st));
  EXPECT_EQ(st.count, 3u);
}

TEST(Mmpi, SendBeforeRecvGoesThroughUnexpectedQueue) {
  World w(2);
  w.mpi.rank(0).send("xyz", 3, 1, 9);
  w.eng.run();  // message delivered, sits unmatched
  // Force the receiver to notice it (progress happens inside MPI calls).
  std::array<char, 16> buf{};
  const RequestId r = w.mpi.rank(1).irecv(buf.data(), buf.size(), 0, 9);
  MpiStatus st;
  ASSERT_TRUE(w.wait(1, r, &st));
  EXPECT_EQ(std::string(buf.data(), 3), "xyz");
}

TEST(Mmpi, AnySourceMatchesAnySender) {
  World w(3);
  std::array<char, 16> buf{};
  const RequestId r =
      w.mpi.rank(2).irecv(buf.data(), buf.size(), kAnySource, 5);
  w.mpi.rank(1).send("from1", 5, 2, 5);
  MpiStatus st;
  ASSERT_TRUE(w.wait(2, r, &st));
  EXPECT_EQ(st.source, 1);
  EXPECT_EQ(std::string(buf.data(), 5), "from1");
}

TEST(Mmpi, TagsKeepMessagesApart) {
  World w(2);
  std::array<char, 8> buf_a{}, buf_b{};
  const RequestId ra = w.mpi.rank(1).irecv(buf_a.data(), 8, 0, 100);
  const RequestId rb = w.mpi.rank(1).irecv(buf_b.data(), 8, 0, 200);
  w.mpi.rank(0).send("BBB", 3, 1, 200);
  w.mpi.rank(0).send("AAA", 3, 1, 100);
  ASSERT_TRUE(w.wait(1, ra, nullptr));
  ASSERT_TRUE(w.wait(1, rb, nullptr));
  EXPECT_EQ(std::string(buf_a.data(), 3), "AAA");
  EXPECT_EQ(std::string(buf_b.data(), 3), "BBB");
}

TEST(Mmpi, SameTagMatchesInSendOrder) {
  World w(2);
  std::array<char, 8> b1{}, b2{};
  const RequestId r1 = w.mpi.rank(1).irecv(b1.data(), 8, 0, 1);
  const RequestId r2 = w.mpi.rank(1).irecv(b2.data(), 8, 0, 1);
  w.mpi.rank(0).send("first", 5, 1, 1);
  w.mpi.rank(0).send("secnd", 5, 1, 1);
  ASSERT_TRUE(w.wait(1, r1, nullptr));
  ASSERT_TRUE(w.wait(1, r2, nullptr));
  EXPECT_EQ(std::string(b1.data(), 5), "first");
  EXPECT_EQ(std::string(b2.data(), 5), "secnd");
}

TEST(Mmpi, RendezvousTransfersLargeMessage) {
  mmpi::Config cfg;
  cfg.eager_threshold = 1024;
  World w(2, cfg);
  std::vector<char> big(100 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('a' + (i % 26));
  }
  std::vector<char> dst(big.size());
  const RequestId rr = w.mpi.rank(1).irecv(dst.data(), dst.size(), 0, 42);
  const RequestId rs =
      w.mpi.rank(0).isend(big.data(), big.size(), 1, 42);
  MpiStatus st;
  ASSERT_TRUE(w.wait(1, rr, &st));
  EXPECT_EQ(st.count, big.size());
  EXPECT_EQ(0, std::memcmp(dst.data(), big.data(), big.size()));
  ASSERT_TRUE(w.wait(0, rs, nullptr));
}

TEST(Mmpi, RendezvousUnexpectedRtsMatchesLater) {
  mmpi::Config cfg;
  cfg.eager_threshold = 64;
  World w(2, cfg);
  std::vector<char> big(4096, 'z');
  const RequestId rs = w.mpi.rank(0).isend(big.data(), big.size(), 1, 8);
  w.eng.run();  // RTS delivered, no posted recv
  std::vector<char> dst(4096);
  const RequestId rr = w.mpi.rank(1).irecv(dst.data(), dst.size(), 0, 8);
  ASSERT_TRUE(w.wait(1, rr, nullptr));
  EXPECT_EQ(dst[100], 'z');
  ASSERT_TRUE(w.wait(0, rs, nullptr));
}

TEST(Mmpi, SenderBufferReusableAfterEagerSend) {
  World w(2);
  std::vector<char> buf(32, 'p');
  std::array<char, 32> dst{};
  const RequestId r = w.mpi.rank(1).irecv(dst.data(), 32, 0, 4);
  w.mpi.rank(0).send(buf.data(), buf.size(), 1, 4);
  std::fill(buf.begin(), buf.end(), 'q');  // reuse immediately
  ASSERT_TRUE(w.wait(1, r, nullptr));
  EXPECT_EQ(dst[0], 'p');
}

TEST(Mmpi, PersistentRecvRestartReceivesAgain) {
  World w(2);
  std::array<char, 16> buf{};
  const RequestId r = w.mpi.rank(1).recv_init(buf.data(), 16, kAnySource, 11);
  for (int round = 0; round < 3; ++round) {
    w.mpi.rank(1).start(r);
    const std::string payload = "round" + std::to_string(round);
    w.mpi.rank(0).send(payload.data(), payload.size(), 1, 11);
    MpiStatus st;
    ASSERT_TRUE(w.wait(1, r, &st)) << "round " << round;
    EXPECT_EQ(std::string(buf.data(), st.count), payload);
  }
  w.mpi.rank(1).free_request(r);
}

TEST(Mmpi, TestsomeReportsOnlyCompleted) {
  World w(2);
  std::array<char, 8> b1{}, b2{};
  const RequestId r1 = w.mpi.rank(1).irecv(b1.data(), 8, 0, 1);
  const RequestId r2 = w.mpi.rank(1).irecv(b2.data(), 8, 0, 2);
  w.mpi.rank(0).send("one", 3, 1, 1);
  w.eng.run();
  const std::array<RequestId, 3> reqs{r1, r2, mmpi::kNullRequest};
  auto res = w.mpi.rank(1).testsome(reqs);
  ASSERT_EQ(res.indices.size(), 1u);
  EXPECT_EQ(res.indices[0], 0u);
  EXPECT_EQ(res.statuses[0].tag, 1u);
  // r2 still pending.
  res = w.mpi.rank(1).testsome(reqs);
  EXPECT_TRUE(res.indices.empty());
  w.mpi.rank(0).send("two", 3, 1, 2);
  w.eng.run();
  res = w.mpi.rank(1).testsome(reqs);
  ASSERT_EQ(res.indices.size(), 1u);
  EXPECT_EQ(res.indices[0], 1u);
}

TEST(Mmpi, TestsomeResetsPersistentToInactive) {
  World w(2);
  std::array<char, 8> buf{};
  const RequestId r = w.mpi.rank(1).recv_init(buf.data(), 8, 0, 1);
  w.mpi.rank(1).start(r);
  w.mpi.rank(0).send("hi", 2, 1, 1);
  w.eng.run();
  const std::array<RequestId, 1> reqs{r};
  auto res = w.mpi.rank(1).testsome(reqs);
  ASSERT_EQ(res.indices.size(), 1u);
  // Inactive now: another testsome does not re-report it.
  res = w.mpi.rank(1).testsome(reqs);
  EXPECT_TRUE(res.indices.empty());
  // And it can be started again.
  w.mpi.rank(1).start(r);
  w.mpi.rank(0).send("yo", 2, 1, 1);
  w.eng.run();
  res = w.mpi.rank(1).testsome(reqs);
  EXPECT_EQ(res.indices.size(), 1u);
}

TEST(Mmpi, NoProgressWithoutMpiCalls) {
  World w(2);
  w.mpi.rank(0).send("hi", 2, 1, 1);
  w.eng.run();
  // Message was delivered by hardware but never matched by software.
  EXPECT_EQ(w.mpi.rank(1).pending_incoming(), 1u);
  std::array<char, 8> buf{};
  const RequestId r = w.mpi.rank(1).irecv(buf.data(), 8, 0, 1);
  // irecv posts but does not drain the hardware queue; test() progresses.
  EXPECT_TRUE(w.mpi.rank(1).test(r, nullptr));
  EXPECT_EQ(w.mpi.rank(1).pending_incoming(), 0u);
}

TEST(Mmpi, VirtualPayloadCompletesWithoutData) {
  World w(2);
  const RequestId r = w.mpi.rank(1).irecv(nullptr, 1 << 20, 0, 6);
  const RequestId s = w.mpi.rank(0).isend(nullptr, 1 << 20, 1, 6);
  MpiStatus st;
  ASSERT_TRUE(w.wait(1, r, &st));
  EXPECT_EQ(st.count, static_cast<std::size_t>(1 << 20));
  ASSERT_TRUE(w.wait(0, s, nullptr));
}

TEST(Mmpi, SoftwareOverheadChargedToCallingThread) {
  World w(2);
  des::SimThread comm(w.eng, "comm");
  bool checked = false;
  comm.post([&] {
    w.mpi.rank(0).send("hi", 2, 1, 1);
    checked = true;
  });
  w.eng.run();
  ASSERT_TRUE(checked);
  EXPECT_GT(comm.busy_time(), 0);
}

TEST(Mmpi, ThreadSwitchCostChargedOnAlternatingCallers) {
  // The §6.4.3 contention model: alternating calling threads pay the
  // global-lock hand-off; a single steady caller does not.
  World w(2);
  des::SimThread a(w.eng, "a"), b(w.eng, "b");
  const auto run_pattern = [&](bool alternate) {
    des::Duration before = a.busy_time() + b.busy_time();
    for (int i = 0; i < 10; ++i) {
      des::SimThread& th = (alternate && i % 2 == 1) ? b : a;
      th.post([&w] { w.mpi.rank(0).poll(); });
      w.eng.run();
    }
    return (a.busy_time() + b.busy_time()) - before;
  };
  const des::Duration steady = run_pattern(false);
  const des::Duration alternating = run_pattern(true);
  EXPECT_GT(alternating, steady);
  // Roughly one switch cost per alternation (9 hand-offs after warm-up).
  EXPECT_GE(alternating - steady,
            8 * mmpi::Config{}.thread_switch_cost);
}

TEST(Mmpi, RendezvousLatencyExceedsEagerForSmallVsLarge) {
  mmpi::Config cfg;
  cfg.eager_threshold = 1024;
  World w(2, cfg);
  // Eager message round.
  const RequestId re = w.mpi.rank(1).irecv(nullptr, 512, 0, 1);
  w.mpi.rank(0).send(nullptr, 512, 1, 1);
  const des::Time t0 = w.eng.now();
  ASSERT_TRUE(w.wait(1, re, nullptr));
  const des::Time eager_latency = w.eng.now() - t0;
  // Rendezvous needs RTS+CTS first: same payload size, higher latency.
  const des::Time t1 = w.eng.now();
  const RequestId rr = w.mpi.rank(1).irecv(nullptr, 2048, 0, 2);
  const RequestId rs = w.mpi.rank(0).isend(nullptr, 2048, 1, 2);
  ASSERT_TRUE(w.wait(1, rr, nullptr));
  const des::Time rndv_latency = w.eng.now() - t1;
  EXPECT_GT(rndv_latency, eager_latency);
  ASSERT_TRUE(w.wait(0, rs, nullptr));
}

// Parameterized sweep across message sizes spanning the eager/rendezvous
// boundary: payload integrity must hold for every size.
class MmpiSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MmpiSizeSweep, PayloadIntegrity) {
  mmpi::Config cfg;
  cfg.eager_threshold = 8192;
  World w(2, cfg);
  const std::size_t n = GetParam();
  std::vector<char> src(n), dst(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    src[i] = static_cast<char>(i * 31 + 7);
  }
  const RequestId rr = w.mpi.rank(1).irecv(dst.data(), n, 0, 77);
  const RequestId rs = w.mpi.rank(0).isend(src.data(), n, 1, 77);
  MpiStatus st;
  ASSERT_TRUE(w.wait(1, rr, &st));
  EXPECT_EQ(st.count, n);
  EXPECT_EQ(0, std::memcmp(src.data(), dst.data(), n));
  ASSERT_TRUE(w.wait(0, rs, nullptr));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MmpiSizeSweep,
                         ::testing::Values(1, 64, 4096, 8192, 8193, 65536,
                                           1 << 20));

// Many-to-one property test: every message must be received exactly once,
// regardless of arrival interleaving, with ANY_SOURCE receives.
class MmpiManyToOne : public ::testing::TestWithParam<int> {};

TEST_P(MmpiManyToOne, AllMessagesMatchedOnce) {
  const int senders = GetParam();
  World w(senders + 1);
  const int recv_rank = senders;
  constexpr int kPerSender = 10;
  std::vector<std::array<char, 16>> bufs(
      static_cast<std::size_t>(senders * kPerSender));
  std::vector<RequestId> reqs;
  for (auto& b : bufs) {
    reqs.push_back(w.mpi.rank(recv_rank).irecv(b.data(), 16, kAnySource, 1));
  }
  for (int s = 0; s < senders; ++s) {
    for (int i = 0; i < kPerSender; ++i) {
      char payload[16];
      std::snprintf(payload, sizeof payload, "s%02d-%02d", s, i);
      w.mpi.rank(s).send(payload, 8, recv_rank, 1);
    }
  }
  w.eng.run();
  auto res = w.mpi.rank(recv_rank).testsome(reqs);
  EXPECT_EQ(res.indices.size(), bufs.size());
  // Each sender's messages must appear in order.
  std::vector<int> last_seen(static_cast<std::size_t>(senders), -1);
  for (const auto& b : bufs) {
    int s = 0, i = 0;
    ASSERT_EQ(2, std::sscanf(b.data(), "s%d-%d", &s, &i));
    EXPECT_EQ(last_seen[static_cast<std::size_t>(s)], i - 1)
        << "per-sender FIFO violated";
    last_seen[static_cast<std::size_t>(s)] = i;
  }
}

INSTANTIATE_TEST_SUITE_P(Senders, MmpiManyToOne, ::testing::Values(2, 5, 9));

}  // namespace
