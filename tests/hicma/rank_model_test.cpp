#include "hicma/rank_model.hpp"

#include <gtest/gtest.h>

namespace {

using hicma::RankModel;

TEST(RankModel, CalibratedToPaperStatistics) {
  // §6.4.2 at tile 1200, accuracy 1e-8, N = 360,000 (nt = 300):
  // average rank 10.44, largest low-rank tile rank 29.
  RankModel m;
  m.tile_size = 1200;
  m.maxrank = 150;
  const double mean = m.mean_rank(300);
  EXPECT_NEAR(mean, 10.44, 1.2);
  int max_rank = 0;
  for (int i = 1; i < 300; ++i) {
    for (int j = 0; j < i; ++j) max_rank = std::max(max_rank, m.rank(i, j));
  }
  EXPECT_NEAR(max_rank, 29, 4);
}

TEST(RankModel, RankDecaysWithDistanceFromDiagonal) {
  RankModel m;
  m.jitter = 0.0;
  EXPECT_GT(m.rank(1, 0), m.rank(10, 0));
  EXPECT_GT(m.rank(10, 0), m.rank(200, 0));
  EXPECT_GE(m.rank(299, 0), 1);
}

TEST(RankModel, LargerTilesCarryHigherRank) {
  RankModel small, large;
  small.tile_size = 1200;
  large.tile_size = 4800;
  small.jitter = large.jitter = 0.0;
  EXPECT_GT(large.rank(5, 0), small.rank(5, 0));
}

TEST(RankModel, MaxrankCaps) {
  RankModel m;
  m.maxrank = 5;
  for (int i = 1; i < 50; ++i) EXPECT_LE(m.rank(i, 0), 5);
}

TEST(RankModel, DeterministicPerTile) {
  RankModel m;
  EXPECT_EQ(m.rank(7, 3), m.rank(7, 3));
}

TEST(RankModel, FactorBytesMatchPackedLayout) {
  RankModel m;
  m.tile_size = 1200;
  // Rank 29 => one factor = 1200 * 29 * 8 bytes; U + V together = 544 KiB
  // (the paper's largest low-rank tile).
  EXPECT_EQ(2 * m.factor_bytes(29), 2ull * 1200 * 29 * 8);
  EXPECT_NEAR(static_cast<double>(2 * m.factor_bytes(29)) / 1024.0, 544.0,
              1.0);
}

}  // namespace
