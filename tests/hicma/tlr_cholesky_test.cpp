#include "hicma/tlr_cholesky.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "hicma/driver.hpp"

namespace {

using ce::BackendKind;
using hicma::ExperimentConfig;
using hicma::run_tlr_cholesky;
using hicma::TlrCholeskyGraph;
using hicma::TlrOptions;

TlrOptions real_options(int n, int nb) {
  TlrOptions o;
  o.mode = TlrOptions::Mode::Real;
  o.n = n;
  o.nb = nb;
  o.accuracy = 1e-9;
  o.maxrank = nb;  // uncapped at test scale
  o.problem.length_scale = 0.2;
  o.problem.noise = 0.05;  // healthy SPD margin at small N
  return o;
}

TEST(TlrGraphShape, TaskCountFormula) {
  TlrOptions o;
  o.mode = TlrOptions::Mode::Model;
  o.n = 12000;
  o.nb = 1200;  // nt = 10
  TlrCholeskyGraph g(o, 4);
  // nt=10: 10 diag + 45 cmpr + 10 potrf + 45 trsm + 45 syrk + 120 gemm
  EXPECT_EQ(g.total_tasks(), 10u + 45 + 10 + 45 + 45 + 120);
}

TEST(TlrGraphShape, PaperScaleTaskCountMatchesText) {
  // §6.4.2: tile 6000 on N=360,000 gives 60 tiles/dim, 1830 tiles total
  // on/below the diagonal, and ~37,820 tasks.
  TlrOptions o;
  o.mode = TlrOptions::Mode::Model;
  o.n = 360000;
  o.nb = 6000;
  TlrCholeskyGraph g(o, 16);
  EXPECT_EQ(g.total_tasks(),
            60u + 1770 + 60 + 1770 + 1770 + 60u * 59 * 58 / 6);
  EXPECT_NEAR(static_cast<double>(g.total_tasks()), 37820.0, 2000.0);
}

TEST(TlrGraphShape, EveryTaskHasAnOwnerInRange) {
  TlrOptions o;
  o.mode = TlrOptions::Mode::Model;
  o.n = 9600;
  o.nb = 1200;
  TlrCholeskyGraph g(o, 6);
  const int nt = o.nt();
  for (int i = 0; i < nt; ++i) {
    for (int j = 0; j <= i; ++j) {
      for (int cls : {hicma::kDiag, hicma::kPotrf, hicma::kTrsm,
                      hicma::kSyrk}) {
        const amt::TaskKey t{cls, i, j};
        EXPECT_GE(g.rank_of(t), 0);
        EXPECT_LT(g.rank_of(t), 6);
      }
    }
  }
}

TEST(TlrGraphShape, SuccessorInputIndicesAreConsistent) {
  // For every task and output flow, each successor must list an input
  // index < its num_inputs, and flow fan-ins must be unique.
  TlrOptions o;
  o.mode = TlrOptions::Mode::Model;
  o.n = 8400;
  o.nb = 1200;  // nt = 7
  TlrCholeskyGraph g(o, 4);
  const int nt = o.nt();
  std::map<std::pair<std::array<int, 4>, int>, int> fanin;
  auto visit = [&](const amt::TaskKey& t) {
    std::vector<amt::Dep> deps;
    for (int f = 0; f < g.num_outputs(t); ++f) {
      deps.clear();
      g.successors(t, f, deps);
      for (const auto& d : deps) {
        EXPECT_LT(d.input, g.num_inputs(d.task));
        EXPECT_GE(d.input, 0);
        const std::array<int, 4> key{d.task.cls, d.task.i, d.task.j,
                                     d.task.k};
        ++fanin[{key, d.input}];
      }
    }
  };
  for (int i = 0; i < nt; ++i) {
    visit({hicma::kDiag, i});
    visit({hicma::kPotrf, i});
    for (int j = 0; j < i; ++j) {
      visit({hicma::kCmpr, i, j});
      visit({hicma::kTrsm, i, j});
      visit({hicma::kSyrk, i, j});
      for (int k = 0; k < j; ++k) visit({hicma::kGemm, i, j, k});
    }
  }
  // Every (task, input) port is fed exactly once, and the total number of
  // fed ports equals the sum of num_inputs over all tasks.
  std::uint64_t expected_ports = 0;
  for (int i = 0; i < nt; ++i) {
    expected_ports += static_cast<std::uint64_t>(
        g.num_inputs({hicma::kPotrf, i}));
    for (int j = 0; j < i; ++j) {
      expected_ports +=
          static_cast<std::uint64_t>(g.num_inputs({hicma::kTrsm, i, j})) +
          static_cast<std::uint64_t>(g.num_inputs({hicma::kSyrk, i, j}));
      for (int k = 0; k < j; ++k) {
        expected_ports += static_cast<std::uint64_t>(
            g.num_inputs({hicma::kGemm, i, j, k}));
      }
    }
  }
  std::uint64_t fed = 0;
  for (const auto& [port, count] : fanin) {
    EXPECT_EQ(count, 1) << "port fed " << count << " times";
    ++fed;
  }
  EXPECT_EQ(fed, expected_ports);
}

class TlrRealCorrectness
    : public ::testing::TestWithParam<std::tuple<int, int, BackendKind>> {};

TEST_P(TlrRealCorrectness, FactorizationResidualIsSmall) {
  const auto [nt, nodes, kind] = GetParam();
  const int nb = 32;
  ExperimentConfig cfg;
  cfg.nodes = nodes;
  cfg.backend = kind;
  cfg.tlr = real_options(nt * nb, nb);
  cfg.workers_override = 4;
  const auto res = run_tlr_cholesky(cfg);
  EXPECT_EQ(res.tasks, TlrCholeskyGraph(cfg.tlr, nodes).total_tasks());
  EXPECT_GE(res.residual, 0.0);
  EXPECT_LT(res.residual, 1e-6)
      << "TLR factorization residual too large";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TlrRealCorrectness,
    ::testing::Combine(::testing::Values(2, 4, 6), ::testing::Values(1, 4),
                       ::testing::Values(BackendKind::Mpi, BackendKind::Lci)),
    [](const auto& info) {
      return "nt" + std::to_string(std::get<0>(info.param)) + "_nodes" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) == BackendKind::Mpi ? "_Mpi" : "_Lci");
    });

TEST(TlrRealAccuracy, LooserAccuracyGivesLargerResidualAndLowerRank) {
  auto run_at = [&](double acc) {
    ExperimentConfig cfg;
    cfg.nodes = 2;
    cfg.backend = BackendKind::Lci;
    cfg.tlr = real_options(160, 32);
    cfg.tlr.accuracy = acc;
    cfg.workers_override = 2;
    return run_tlr_cholesky(cfg);
  };
  const auto tight = run_at(1e-10);
  const auto loose = run_at(1e-3);
  EXPECT_LT(tight.residual, loose.residual + 1e-12);
  EXPECT_GE(tight.mean_rank, loose.mean_rank);
}

TEST(TlrModel, ModelModeRunsPaperTileAtSmallN) {
  ExperimentConfig cfg;
  cfg.nodes = 4;
  cfg.backend = BackendKind::Lci;
  cfg.tlr.mode = TlrOptions::Mode::Model;
  cfg.tlr.n = 48000;
  cfg.tlr.nb = 2400;  // nt = 20
  cfg.workers_override = 16;
  const auto res = run_tlr_cholesky(cfg);
  EXPECT_GT(res.tts_s, 0.0);
  EXPECT_GT(res.latency.count(), 0u);
  EXPECT_GT(res.fabric_bytes, 0u);
  EXPECT_GT(res.mean_rank, 1.0);
}

TEST(TlrModel, BothBackendsMoveIdenticalLogicalTraffic) {
  auto run_kind = [&](BackendKind kind) {
    ExperimentConfig cfg;
    cfg.nodes = 4;
    cfg.backend = kind;
    cfg.tlr.mode = TlrOptions::Mode::Model;
    cfg.tlr.n = 24000;
    cfg.tlr.nb = 2400;
    cfg.workers_override = 8;
    return run_tlr_cholesky(cfg);
  };
  const auto mpi = run_kind(BackendKind::Mpi);
  const auto lci = run_kind(BackendKind::Lci);
  // The task graph and data distribution are backend-independent.
  EXPECT_EQ(mpi.tasks, lci.tasks);
  EXPECT_EQ(mpi.runtime_stats.data_arrivals, lci.runtime_stats.data_arrivals);
  EXPECT_EQ(mpi.runtime_stats.getdata_sent, lci.runtime_stats.getdata_sent);
}

}  // namespace
