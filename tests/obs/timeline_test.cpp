#include "obs/timeline.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "des/engine.hpp"
#include "des/trace_sink.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"  // json_parse_ok

namespace {

using obs::FlightKind;
using obs::FlightRecorder;
using obs::Timeline;
using obs::TimelineConfig;

TimelineConfig mem_config(des::Duration interval) {
  TimelineConfig cfg;
  cfg.interval = interval;  // empty path: in-memory only
  return cfg;
}

// Drives `tl` through an event schedule with a counter the events bump.
// Returns the number of engine events fired.
int drive(des::Engine& eng, Timeline& tl, const std::vector<des::Time>& at,
          double* level) {
  int fired = 0;
  for (const des::Time t : at) {
    eng.schedule_at(t, [level, &fired]() {
      *level += 1;
      ++fired;
    });
  }
  tl.arm(eng);
  eng.run();
  return fired;
}

TEST(Timeline, SamplesEveryBoundaryAndObservesPreBoundaryState) {
  des::Engine eng;
  Timeline tl(mem_config(100));
  double level = 0;
  tl.add_probe("level", 0, [&level]() { return level; });
  // Events at 50, 150, 250: the boundary at 100 must observe the state
  // after the t=50 event (level 1), the boundary at 200 the state after
  // t=150 (level 2).
  drive(eng, tl, {50, 150, 250}, &level);
  tl.finish(300);
  const obs::ProbeSeries& s = tl.probe(0);
  // Boundaries 100, 200 fire inside the run; finish() adds t=300.
  ASSERT_EQ(s.samples, 3u);
  ASSERT_EQ(s.times.size(), 3u);
  EXPECT_EQ(s.times[0], 100);
  EXPECT_DOUBLE_EQ(s.values[0], 1);
  EXPECT_EQ(s.times[1], 200);
  EXPECT_DOUBLE_EQ(s.values[1], 2);
  EXPECT_EQ(s.times[2], 300);
  EXPECT_DOUBLE_EQ(s.values[2], 3);
}

TEST(Timeline, CatchUpSamplesEveryBoundaryAcrossEventGaps) {
  des::Engine eng;
  Timeline tl(mem_config(100));
  double level = 0;
  tl.add_probe("level", 0, [&level]() { return level; });
  // One event at 50, then a gap to 950: the t=950 event catches the
  // sampler up over boundaries 100..900 in one call, but delta encoding
  // stores only the changes.
  drive(eng, tl, {50, 950}, &level);
  tl.finish(1000);
  const obs::ProbeSeries& s = tl.probe(0);
  EXPECT_EQ(s.samples, 10u);  // 100..900 plus the finish() sample
  // Stored: first sample (level 1 at 100) and the finish sample (level 2
  // at 1000, after the t=950 event).
  ASSERT_EQ(s.times.size(), 2u);
  EXPECT_EQ(s.times[0], 100);
  EXPECT_EQ(s.times[1], 1000);
  EXPECT_DOUBLE_EQ(s.values[1], 2);
}

TEST(Timeline, TimeWeightedStatsCoverSuppressedSamples) {
  des::Engine eng;
  Timeline tl(mem_config(100));
  double level = 0;
  tl.add_probe("level", 0, [&level]() { return level; });
  drive(eng, tl, {50, 450}, &level);  // level 1 over [100, 500), 2 at 500
  tl.finish(500);
  const obs::ProbeSeries& s = tl.probe(0);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 2);
  EXPECT_EQ(s.t_max, 500);
  // Level 1 held over [100, 500): tw_mean = 400/400 = 1.
  EXPECT_DOUBLE_EQ(s.tw_mean(), 1.0);
}

TEST(Timeline, PerProbeCapCountsDrops) {
  des::Engine eng;
  TimelineConfig cfg = mem_config(100);
  cfg.max_samples_per_probe = 4;
  Timeline tl(cfg);
  double level = 0;
  tl.add_probe("level", 0, [&level]() { return level; });
  std::vector<des::Time> at;
  for (int i = 0; i < 10; ++i) at.push_back(50 + 100 * i);  // change per tick
  drive(eng, tl, at, &level);
  tl.finish(1100);
  const obs::ProbeSeries& s = tl.probe(0);
  EXPECT_EQ(s.times.size(), 4u);
  EXPECT_EQ(s.dropped, 6u);  // boundaries 100..900 + finish, 4 stored
  // Statistics still cover every sample, including dropped ones.
  EXPECT_DOUBLE_EQ(s.max, 10);
}

TEST(Timeline, SamplingDoesNotPerturbEventOrder) {
  // Identical schedules with and without an armed sampler must fire the
  // same events at the same times — the sampler never schedules events.
  const std::vector<des::Time> at = {50, 150, 155, 400, 999};
  std::vector<des::Time> plain_fires;
  {
    des::Engine eng;
    for (const des::Time t : at) {
      eng.schedule_at(t, [&eng, &plain_fires]() {
        plain_fires.push_back(eng.now());
      });
    }
    eng.run();
  }
  std::vector<des::Time> sampled_fires;
  {
    des::Engine eng;
    Timeline tl(mem_config(100));
    tl.add_probe("noop", 0, []() { return 0.0; });
    for (const des::Time t : at) {
      eng.schedule_at(t, [&eng, &sampled_fires]() {
        sampled_fires.push_back(eng.now());
      });
    }
    tl.arm(eng);
    eng.run();
    tl.finish(999);
  }
  EXPECT_EQ(plain_fires, sampled_fires);
}

TEST(Timeline, IdenticalRunsRenderIdenticalJson) {
  const auto run_once = []() {
    des::Engine eng;
    Timeline tl(mem_config(100));
    double level = 0;
    tl.add_probe("level", 1, [&level]() { return level; });
    tl.add_probe("flat", -1, []() { return 7.5; });
    tl.mark_phase("run.start", 0);
    drive(eng, tl, {50, 150, 250}, &level);
    tl.finish(300);
    return tl.json();
  };
  const std::string a = run_once();
  const std::string b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_TRUE(obs::json_parse_ok(a));
  EXPECT_NE(a.find("\"bench\": \"timeline\""), std::string::npos);
  EXPECT_NE(a.find("\"run.start\""), std::string::npos);
}

TEST(Timeline, CsvHasOneRowPerStoredSample) {
  des::Engine eng;
  Timeline tl(mem_config(100));
  double level = 0;
  tl.add_probe("level", 2, [&level]() { return level; });
  drive(eng, tl, {50, 150}, &level);
  tl.finish(200);
  const std::string csv = tl.csv();
  EXPECT_NE(csv.find("probe,node,t_ns,value"), std::string::npos);
  EXPECT_NE(csv.find("level,2,100,1"), std::string::npos);
  EXPECT_NE(csv.find("level,2,200,2"), std::string::npos);
}

// Counter forwarding: every STORED sample lands in the sink as a ph:"C"
// point with the node folded into the counter name.
TEST(Timeline, ForwardsStoredSamplesToCounterSink) {
  struct CaptureSink final : des::TraceSink {
    struct Point {
      std::string track, name;
      des::Time t;
      double v;
    };
    std::vector<Point> points;
    void span(std::string_view, std::string_view, des::Time,
              des::Duration) override {}
    void instant(std::string_view, std::string_view, des::Time) override {}
    void counter(std::string_view track, std::string_view name, des::Time t,
                 double v) override {
      points.push_back({std::string(track), std::string(name), t, v});
    }
  };
  CaptureSink sink;
  des::Engine eng;
  Timeline tl(mem_config(100));
  double level = 0;
  tl.add_probe("des.qdepth", 3, [&level]() { return level; });
  tl.add_probe("net.msgs", -1, [&level]() { return 2 * level; });
  tl.set_counter_sink(&sink);
  drive(eng, tl, {50}, &level);
  tl.finish(100);
  ASSERT_EQ(sink.points.size(), 2u);
  EXPECT_EQ(sink.points[0].track, "node3.counters");
  EXPECT_EQ(sink.points[0].name, "des.qdepth.n3");
  EXPECT_EQ(sink.points[0].t, 100);
  EXPECT_DOUBLE_EQ(sink.points[0].v, 1);
  EXPECT_EQ(sink.points[1].track, "cluster.counters");
  EXPECT_EQ(sink.points[1].name, "net.msgs");
  EXPECT_DOUBLE_EQ(sink.points[1].v, 2);
}

TEST(Timeline, ReportNamesPeaksAndPhases) {
  des::Engine eng;
  Timeline tl(mem_config(100));
  double level = 0;
  tl.add_probe("des.qdepth", 0, [&level]() { return level; });
  tl.add_probe("des.qdepth", 1, [&level]() { return 3 * level; });
  tl.mark_phase("run.start", 0);
  tl.mark_phase("drain", 150);
  drive(eng, tl, {50, 150, 250}, &level);
  tl.finish(300);
  const std::string rep = tl.report();
  EXPECT_NE(rep.find("des.qdepth"), std::string::npos);
  EXPECT_NE(rep.find("run.start"), std::string::npos);
  EXPECT_NE(rep.find("drain"), std::string::npos);
}

TEST(TimelineConfig, FromEnvParsesPathAndInterval) {
  ::setenv("AMTLCE_TIMELINE", "/tmp/t.json,250", 1);
  TimelineConfig cfg = TimelineConfig::from_env();
  EXPECT_TRUE(cfg.enabled());
  EXPECT_EQ(cfg.path, "/tmp/t.json");
  EXPECT_EQ(cfg.interval, 250'000);  // us -> ns

  ::setenv("AMTLCE_TIMELINE", "/tmp/plain.json", 1);
  cfg = TimelineConfig::from_env();
  EXPECT_EQ(cfg.path, "/tmp/plain.json");
  EXPECT_EQ(cfg.interval, TimelineConfig::kDefaultInterval);

  ::unsetenv("AMTLCE_TIMELINE");
  cfg = TimelineConfig::from_env();
  EXPECT_FALSE(cfg.enabled());
}

// --- FlightRecorder --------------------------------------------------------

TEST(FlightRecorder, RingWrapsKeepingNewestOldestFirst) {
  FlightRecorder fr;
  fr.begin_run(2);
  const std::size_t cap = fr.ring_capacity();
  const std::size_t n = cap + 10;
  for (std::size_t i = 0; i < n; ++i) {
    fr.record(1, FlightKind::MsgSend, static_cast<des::Time>(i), 0, i, 8);
  }
  EXPECT_EQ(fr.total_records(1), n);
  EXPECT_EQ(fr.total_records(0), 0u);
  const auto snap = fr.snapshot(1);
  ASSERT_EQ(snap.size(), cap);
  // Oldest surviving record is i = n - cap; newest is n - 1.
  EXPECT_EQ(snap.front().a, n - cap);
  EXPECT_EQ(snap.back().a, n - 1);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LE(snap[i - 1].t, snap[i].t);
  }
}

TEST(FlightRecorder, ClusterRingCatchesNegativeAndOutOfRangeNodes) {
  FlightRecorder fr;
  fr.begin_run(2);
  fr.record(-1, FlightKind::RunStatus, 10, 0, 3);
  fr.record(99, FlightKind::Invariant, 20, 7);
  EXPECT_EQ(fr.total_records(-1), 2u);
  const auto snap = fr.snapshot(-1);
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].kind, static_cast<std::uint16_t>(FlightKind::RunStatus));
  EXPECT_EQ(snap[1].code, 7u);
}

TEST(FlightRecorder, BeginRunResetsRings) {
  FlightRecorder fr;
  fr.begin_run(2);
  fr.record(0, FlightKind::Crash, 5);
  fr.begin_run(3);
  EXPECT_EQ(fr.num_nodes(), 3);
  EXPECT_EQ(fr.total_records(0), 0u);
  EXPECT_TRUE(fr.snapshot(0).empty());
}

TEST(FlightRecorder, DisabledRecordsNothing) {
  FlightRecorder fr;
  fr.begin_run(1);
  fr.set_enabled(false);
  fr.record(0, FlightKind::Crash, 5);
  EXPECT_EQ(fr.total_records(0), 0u);
  fr.set_enabled(true);
  fr.record(0, FlightKind::Crash, 6);
  EXPECT_EQ(fr.total_records(0), 1u);
}

TEST(FlightRecorder, BundleJsonIsParseableAndCarriesContext) {
  FlightRecorder fr;
  fr.begin_run(2);
  fr.record(0, FlightKind::Crash, 100);
  fr.record(1, FlightKind::FdState, 200, 0, 0, 2);
  fr.record(-1, FlightKind::RunStatus, 300, 0, 4);
  const std::string bundle = fr.bundle_json(
      "ErrNoSurvivors", "{ \"nodes\": 2 }", "[ { \"node\": 0 } ]", "null");
  EXPECT_TRUE(obs::json_parse_ok(bundle));
  EXPECT_NE(bundle.find("\"ErrNoSurvivors\""), std::string::npos);
  EXPECT_NE(bundle.find("\"crash\""), std::string::npos);      // kind names
  EXPECT_NE(bundle.find("\"fd_state\""), std::string::npos);
  EXPECT_NE(bundle.find("\"nodes\": 2"), std::string::npos);   // config
  EXPECT_NE(bundle.find("\"node\": 0"), std::string::npos);    // schedule
}

}  // namespace
