// Flow-trace end-to-end check: runs a small 4-node model-mode TLR
// Cholesky with tracing enabled, then validates the emitted Chrome trace:
//   * the file is one well-formed JSON value,
//   * it contains cross-node flow events ("activate"/"getdata"/"put"
//     legs), and every flow finish (ph:"f") has a matching start (ph:"s")
//     with the same id,
//   * nothing was dropped at the default event cap
//     (otherData.droppedEvents == 0).
//
// Usage: flow_trace_check <trace-output-path>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "hicma/driver.hpp"
#include "obs/trace.hpp"

namespace {

/// Extracts the numeric value of `"key":<digits>` following `pos`.
/// Returns false when the key does not appear before the event's closing
/// brace.
bool field_u64(const std::string& text, std::size_t pos, const char* key,
               unsigned long long& out) {
  const std::size_t brace = text.find('}', pos);
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = text.find(needle, pos);
  if (at == std::string::npos || (brace != std::string::npos && at > brace)) {
    return false;
  }
  out = std::strtoull(text.c_str() + at + needle.size(), nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s trace.json\n", argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  ::setenv("AMTLCE_TRACE", path.c_str(), 1);
  ::unsetenv("AMTLCE_TRACE_MAX_EVENTS");  // default cap must not drop

  hicma::ExperimentConfig cfg;
  cfg.nodes = 4;
  cfg.backend = ce::BackendKind::Lci;
  cfg.tlr.mode = hicma::TlrOptions::Mode::Model;
  cfg.tlr.n = 24000;
  cfg.tlr.nb = 2400;  // nt = 10: small, but plenty of remote flows
  const auto res = hicma::run_tlr_cholesky(cfg);
  ::unsetenv("AMTLCE_TRACE");
  if (res.runtime_stats.data_arrivals == 0) {
    std::fprintf(stderr, "FAIL: run produced no remote deliveries\n");
    return 1;
  }

  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "FAIL: trace file %s not written\n", path.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  if (!obs::json_parse_ok(text)) {
    std::fprintf(stderr, "FAIL: malformed JSON (%zu bytes)\n", text.size());
    return 1;
  }
  unsigned long long dropped = ~0ull;
  const std::size_t other = text.find("\"droppedEvents\":");
  if (other == std::string::npos ||
      !field_u64(text, other, "droppedEvents", dropped) || dropped != 0) {
    std::fprintf(stderr, "FAIL: droppedEvents missing or nonzero (%llu)\n",
                 dropped);
    return 1;
  }

  // Collect flow ids by phase and check f ⊆ s.
  std::set<unsigned long long> starts, finishes;
  for (std::size_t pos = text.find("\"ph\":\"s\""); pos != std::string::npos;
       pos = text.find("\"ph\":\"s\"", pos + 1)) {
    unsigned long long id = 0;
    if (!field_u64(text, pos, "id", id)) {
      std::fprintf(stderr, "FAIL: flow start without id at %zu\n", pos);
      return 1;
    }
    starts.insert(id);
  }
  for (std::size_t pos = text.find("\"ph\":\"f\""); pos != std::string::npos;
       pos = text.find("\"ph\":\"f\"", pos + 1)) {
    unsigned long long id = 0;
    if (!field_u64(text, pos, "id", id)) {
      std::fprintf(stderr, "FAIL: flow finish without id at %zu\n", pos);
      return 1;
    }
    finishes.insert(id);
  }
  if (starts.empty() || finishes.empty()) {
    std::fprintf(stderr, "FAIL: no flow events (starts=%zu finishes=%zu)\n",
                 starts.size(), finishes.size());
    return 1;
  }
  for (const unsigned long long id : finishes) {
    if (!starts.contains(id)) {
      std::fprintf(stderr, "FAIL: flow finish id %llu has no start\n", id);
      return 1;
    }
  }
  for (const char* name : {"activate", "getdata", "data", "put"}) {
    const std::string needle =
        std::string("\"cat\":\"flow\",\"id\":");  // all flows carry this
    (void)needle;
    if (text.find(std::string("\"name\":\"") + name + "\"") ==
        std::string::npos) {
      std::fprintf(stderr, "FAIL: no \"%s\" flow events\n", name);
      return 1;
    }
  }

  std::printf(
      "OK   %s: %zu flow starts, %zu finishes, 0 dropped (%zu bytes)\n",
      path.c_str(), starts.size(), finishes.size(), text.size());
  std::remove(path.c_str());
  return 0;
}
