#include "obs/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "obs/trace.hpp"  // json_parse_ok

namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::Recorder;

TEST(Counter, AddsAndMerges) {
  Counter a, b;
  a.add();
  a.add(4);
  b.add(10);
  EXPECT_EQ(a.value(), 5u);
  a.merge(b);
  EXPECT_EQ(a.value(), 15u);
}

TEST(Gauge, TracksExtremes) {
  Gauge g;
  g.set(5);
  g.set(-3);
  g.set(2);
  EXPECT_DOUBLE_EQ(g.value(), 2);
  EXPECT_DOUBLE_EQ(g.max(), 5);
  EXPECT_DOUBLE_EQ(g.min(), -3);
}

TEST(Gauge, MergeIgnoresUntouched) {
  Gauge a, untouched;
  a.set(10);
  a.merge(untouched);
  EXPECT_DOUBLE_EQ(a.max(), 10);
  EXPECT_DOUBLE_EQ(a.min(), 10);
}

TEST(Gauge, MergeCombinesExtremes) {
  Gauge a, b;
  a.set(10);
  b.set(-7);
  b.set(42);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.value(), 42);  // last writer
  EXPECT_DOUBLE_EQ(a.max(), 42);
  EXPECT_DOUBLE_EQ(a.min(), -7);
}

// Cross-node merge semantics, pinned: min/max combine, count and sum
// add (so mean() is the global sample mean), and the time-weighted
// integrals add so tw_mean() weights each node by its observed span.
// The merged "current value" stays last-writer by merge order.
TEST(Gauge, MergeCarriesCountAndMeans) {
  Gauge a, b;
  // Node a: level 10 held for 4 time units, then 0.
  a.set_at(10, 0);
  a.set_at(0, 4);
  // Node b: level 2 held for 2 time units, then 42.
  b.set_at(2, 10);
  b.set_at(42, 12);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.value(), 42);  // last writer
  EXPECT_DOUBLE_EQ(a.min(), 0);
  EXPECT_DOUBLE_EQ(a.max(), 42);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), (10 + 0 + 2 + 42) / 4.0);
  // (10*4 + 2*2) / (4 + 2): disjoint windows, each weighted by its span.
  EXPECT_DOUBLE_EQ(a.tw_mean(), 44.0 / 6.0);
  EXPECT_DOUBLE_EQ(a.tw_span(), 6.0);
}

TEST(Gauge, MergedGaugeDoesNotContinueTimedStream) {
  Gauge a, b;
  a.set_at(10, 0);
  a.set_at(10, 4);
  b.set_at(6, 0);
  b.set_at(6, 2);
  a.merge(b);
  // A set_at() after the merge must not charge an interval spanning the
  // two nodes' unrelated clocks: the first post-merge sample only
  // re-establishes the time base.
  a.set_at(100, 50);
  EXPECT_DOUBLE_EQ(a.tw_span(), 6.0);
  a.set_at(100, 51);
  EXPECT_DOUBLE_EQ(a.tw_span(), 7.0);
  EXPECT_DOUBLE_EQ(a.tw_mean(), (10 * 4 + 6 * 2 + 100 * 1) / 7.0);
}

TEST(Histogram, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0);
  EXPECT_DOUBLE_EQ(h.min(), 0);
  EXPECT_DOUBLE_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.p50(), 0);
  EXPECT_DOUBLE_EQ(h.p99(), 0);
}

TEST(Histogram, SingleSampleIsEveryPercentile) {
  Histogram h;
  h.add(1234.5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 1234.5);
  EXPECT_DOUBLE_EQ(h.max(), 1234.5);
  EXPECT_DOUBLE_EQ(h.mean(), 1234.5);
  // Clamping to [min, max] makes a one-sample histogram exact.
  EXPECT_DOUBLE_EQ(h.percentile(0), 1234.5);
  EXPECT_DOUBLE_EQ(h.p50(), 1234.5);
  EXPECT_DOUBLE_EQ(h.p99(), 1234.5);
  EXPECT_DOUBLE_EQ(h.percentile(100), 1234.5);
}

TEST(Histogram, SubUnitSamplesLandInZeroBucket) {
  Histogram h;
  h.add(0.0);
  h.add(0.25);
  h.add(0.9);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_GE(h.p50(), 0.0);
  EXPECT_LE(h.p99(), 0.9);  // clamped to observed max
}

TEST(Histogram, UniformPercentilesWithinBucketResolution) {
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.add(v);
  // 8 sub-buckets per octave => <= ~9% relative error, plus clamping.
  EXPECT_NEAR(h.p50(), 500, 500 * 0.10);
  EXPECT_NEAR(h.p90(), 900, 900 * 0.10);
  EXPECT_NEAR(h.p99(), 990, 990 * 0.10);
  EXPECT_DOUBLE_EQ(h.percentile(100), 1000);
  EXPECT_DOUBLE_EQ(h.min(), 1);
  EXPECT_DOUBLE_EQ(h.max(), 1000);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
}

TEST(Histogram, PercentilesAreMonotone) {
  Histogram h;
  for (int v = 1; v <= 317; ++v) h.add(v * 7.0);
  double prev = 0;
  for (double p = 0; p <= 100; p += 2.5) {
    const double q = h.percentile(p);
    EXPECT_GE(q, prev) << "p=" << p;
    prev = q;
  }
}

TEST(Histogram, MergeMatchesCombinedStream) {
  Histogram a, b, combined;
  std::vector<double> xs = {3, 17, 250, 80000, 1.5e9};
  std::vector<double> ys = {1, 9, 1024, 5.5, 123456};
  for (const double v : xs) {
    a.add(v);
    combined.add(v);
  }
  for (const double v : ys) {
    b.add(v);
    combined.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  for (const double p : {10.0, 50.0, 90.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.percentile(p), combined.percentile(p)) << "p=" << p;
  }
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  Histogram a, empty;
  a.add(42);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.max(), 42);
  Histogram b;
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.p50(), a.p50());
}

TEST(Histogram, HugeValuesSaturateLastOctave) {
  Histogram h;
  h.add(1e300);  // way past 2^40: must not index out of bounds
  h.add(1e301);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.max(), 1e301);
  EXPECT_LE(h.p99(), 1e301);
  EXPECT_GE(h.p50(), 1e300);  // clamped to observed min
}

TEST(Histogram, PercentilesClampAtExactBucketBoundaries) {
  // Powers of two sit exactly on octave boundaries; clamping must keep
  // every percentile inside [min, max] even there.
  Histogram h;
  h.add(2.0);
  h.add(4.0);
  h.add(8.0);
  // p0 lands in the lowest occupied bucket [2, 2.25); p100 interpolates
  // past 8 within its bucket and must be clamped back to the observed max.
  EXPECT_GE(h.percentile(0), 2.0);
  EXPECT_LT(h.percentile(0), 2.25);
  EXPECT_DOUBLE_EQ(h.percentile(100), 8.0);
  for (double p = 0; p <= 100; p += 1.0) {
    const double q = h.percentile(p);
    EXPECT_GE(q, 2.0) << "p=" << p;
    EXPECT_LE(q, 8.0) << "p=" << p;
  }
}

TEST(Histogram, MergeEmptyIntoNonemptyAndBack) {
  Histogram filled, empty;
  filled.add(10);
  filled.add(1000);
  // empty -> nonempty: a no-op that must not disturb min/max/percentiles.
  const double p0 = filled.percentile(0);
  const double p100 = filled.percentile(100);
  filled.merge(empty);
  EXPECT_EQ(filled.count(), 2u);
  EXPECT_DOUBLE_EQ(filled.min(), 10);
  EXPECT_DOUBLE_EQ(filled.max(), 1000);
  EXPECT_DOUBLE_EQ(filled.percentile(0), p0);
  EXPECT_DOUBLE_EQ(filled.percentile(100), p100);
  EXPECT_GE(p0, 10);
  EXPECT_LE(p100, 1000);
  // nonempty -> empty: the empty side adopts the distribution wholesale.
  empty.merge(filled);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.min(), 10);
  EXPECT_DOUBLE_EQ(empty.max(), 1000);
  EXPECT_DOUBLE_EQ(empty.p50(), filled.p50());
}

TEST(MetricsJson, EmitsParsableJsonWithAllMetricKinds) {
  Recorder r;
  r.counter("ce.puts").add(7);
  r.gauge("queue.depth").set(2);
  r.gauge("queue.depth").set(5);
  r.histogram("lat_ns").add(100);
  r.histogram("lat_ns").add(300);
  const std::string j = obs::metrics_json(r);
  EXPECT_TRUE(obs::json_parse_ok(j)) << j;
  EXPECT_NE(j.find("\"ce.puts\": 7"), std::string::npos);
  EXPECT_NE(j.find("\"queue.depth\""), std::string::npos);
  EXPECT_NE(j.find("\"lat_ns\""), std::string::npos);
  EXPECT_NE(j.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(j.find("\"mean\": 200"), std::string::npos);
}

TEST(MetricsJson, EscapesHostileNamesAndIsDeterministic) {
  const auto build = [] {
    Recorder r;
    r.counter("weird \"name\"\\with\njunk").add(1);
    r.histogram("h").add(3.5);
    return r;
  };
  const Recorder a = build();
  const std::string ja = obs::metrics_json(a);
  EXPECT_TRUE(obs::json_parse_ok(ja)) << ja;
  // Identical recorders must render byte-identically (sorted iteration).
  EXPECT_EQ(ja, obs::metrics_json(build()));
}

TEST(MetricsJson, EmptyRecorderIsValid) {
  EXPECT_TRUE(obs::json_parse_ok(obs::metrics_json(Recorder{})));
}

TEST(Recorder, CreatesOnUseAndFinds) {
  Recorder r;
  EXPECT_EQ(r.find_counter("x"), nullptr);
  r.counter("x").add(3);
  ASSERT_NE(r.find_counter("x"), nullptr);
  EXPECT_EQ(r.find_counter("x")->value(), 3u);
  EXPECT_EQ(r.find_histogram("lat"), nullptr);
  r.histogram("lat").add(10);
  EXPECT_EQ(r.find_histogram("lat")->count(), 1u);
  r.gauge("depth").set(4);
  EXPECT_DOUBLE_EQ(r.find_gauge("depth")->value(), 4);
}

TEST(Recorder, MergeCombinesByName) {
  Recorder a, b;
  a.counter("msgs").add(2);
  b.counter("msgs").add(5);
  b.counter("only_b").add(1);
  a.histogram("lat").add(100);
  b.histogram("lat").add(300);
  a.merge(b);
  EXPECT_EQ(a.find_counter("msgs")->value(), 7u);
  EXPECT_EQ(a.find_counter("only_b")->value(), 1u);
  EXPECT_EQ(a.find_histogram("lat")->count(), 2u);
  EXPECT_DOUBLE_EQ(a.find_histogram("lat")->max(), 300);
}

TEST(Recorder, SummaryListsEveryMetric) {
  Recorder r;
  r.counter("ce.puts").add(12);
  r.histogram("net.wire_transit_ns").add(5000);
  r.gauge("queue.depth").set(3);
  const std::string s = r.summary();
  EXPECT_NE(s.find("ce.puts"), std::string::npos);
  EXPECT_NE(s.find("net.wire_transit_ns"), std::string::npos);
  EXPECT_NE(s.find("queue.depth"), std::string::npos);
}

}  // namespace
