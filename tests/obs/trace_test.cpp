#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "des/engine.hpp"

namespace {

using obs::json_parse_ok;
using obs::TraceConfig;
using obs::Tracer;

TEST(JsonParseOk, AcceptsWellFormedValues) {
  EXPECT_TRUE(json_parse_ok("{}"));
  EXPECT_TRUE(json_parse_ok("[]"));
  EXPECT_TRUE(json_parse_ok("  [1, 2.5, -3e-4, true, false, null]  "));
  EXPECT_TRUE(json_parse_ok(R"({"a":{"b":[{"c":"d\"e\\f"}]},"n":0.125})"));
  EXPECT_TRUE(json_parse_ok("\"just a string\""));
  EXPECT_TRUE(json_parse_ok("42"));
}

TEST(JsonParseOk, RejectsMalformedValues) {
  EXPECT_FALSE(json_parse_ok(""));
  EXPECT_FALSE(json_parse_ok("{"));
  EXPECT_FALSE(json_parse_ok("}"));
  EXPECT_FALSE(json_parse_ok(R"({"a":})"));
  EXPECT_FALSE(json_parse_ok(R"({"a":1,})"));
  EXPECT_FALSE(json_parse_ok("[1,]"));
  EXPECT_FALSE(json_parse_ok("[1 2]"));
  EXPECT_FALSE(json_parse_ok(R"("unterminated)"));
  EXPECT_FALSE(json_parse_ok("01x"));
  EXPECT_FALSE(json_parse_ok("{} trailing"));
  EXPECT_FALSE(json_parse_ok("1."));
  EXPECT_FALSE(json_parse_ok("-"));
}

TEST(JsonParseOk, RejectsPathologicalNesting) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(json_parse_ok(deep));
}

TEST(Tracer, EmitsWellFormedJson) {
  Tracer t(TraceConfig{});  // disabled: no file, but events still collect
  t.span("comm-0", "task T1(0,0,0)", 1000, 2500);
  t.span("nic0.egress", "msg 2.0KiB", 1500, 800);
  t.instant("comm-0", "wake \"now\"\n", 4200);
  EXPECT_EQ(t.num_events(), 3u);
  const std::string j = t.json();
  EXPECT_TRUE(json_parse_ok(j)) << j;
  // Track metadata + the span/instant bodies.
  EXPECT_NE(j.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(j.find("nic0.egress"), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"i\""), std::string::npos);
  // ns -> us conversion: 1000 ns span at ts 1.000, dur 2.500.
  EXPECT_NE(j.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(j.find("\"dur\":2.500"), std::string::npos);
}

TEST(Tracer, EmptyTraceIsStillValid) {
  Tracer t(TraceConfig{});
  EXPECT_TRUE(json_parse_ok(t.json()));
}

TEST(Tracer, SameTrackReusesTid) {
  Tracer t(TraceConfig{});
  t.span("comm-0", "a", 0, 1);
  t.span("comm-0", "b", 1, 1);
  t.span("comm-1", "c", 2, 1);
  const std::string j = t.json();
  // Exactly two thread_name metadata records.
  std::size_t n = 0;
  for (std::size_t pos = j.find("thread_name"); pos != std::string::npos;
       pos = j.find("thread_name", pos + 1)) {
    ++n;
  }
  EXPECT_EQ(n, 2u);
}

TEST(Tracer, WriteProducesParsableFile) {
  const std::string path = "tracer_write_test.json";
  {
    Tracer t(TraceConfig{path});
    t.span("comm-0", "task", 10, 20);
  }  // destructor writes
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_TRUE(json_parse_ok(ss.str()));
  EXPECT_NE(ss.str().find("traceEvents"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Tracer, FlowEventsRenderAsChromeFlowPairs) {
  Tracer t(TraceConfig{});
  t.span("comm-0", "send", 1000, 500);
  t.flow("comm-0", "activate", 1200, 0xABCDu, /*begin=*/true);
  t.span("comm-1", "recv", 5000, 700);
  t.flow("comm-1", "activate", 5100, 0xABCDu, /*begin=*/false);
  const std::string j = t.json();
  EXPECT_TRUE(json_parse_ok(j)) << j;
  EXPECT_NE(j.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"f\""), std::string::npos);
  // The finish end binds to the enclosing slice (bp:"e"), and both ends
  // carry the matching id in the "flow" category.
  EXPECT_NE(j.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(j.find("\"cat\":\"flow\""), std::string::npos);
  EXPECT_NE(j.find("\"id\":43981"), std::string::npos);  // 0xABCD
}

TEST(Tracer, BoundedBufferCountsDroppedEvents) {
  TraceConfig cfg;
  cfg.max_events = 3;
  Tracer t(cfg);
  t.span("a", "s1", 0, 1);
  t.instant("a", "i1", 2);
  t.flow("a", "f1", 3, 7, true);
  EXPECT_EQ(t.num_events(), 3u);
  EXPECT_EQ(t.dropped_events(), 0u);
  t.span("a", "s2", 4, 1);  // over the cap
  t.flow("a", "f1", 5, 7, false);
  EXPECT_EQ(t.num_events(), 3u);
  EXPECT_EQ(t.dropped_events(), 2u);
  const std::string j = t.json();
  EXPECT_TRUE(json_parse_ok(j)) << j;
  EXPECT_NE(j.find("\"droppedEvents\":2"), std::string::npos);
  EXPECT_NE(j.find("\"maxEvents\":3"), std::string::npos);
}

TEST(Tracer, DefaultCapReportsZeroDrops) {
  Tracer t(TraceConfig{});
  t.span("a", "s", 0, 1);
  EXPECT_EQ(t.dropped_events(), 0u);
  EXPECT_NE(t.json().find("\"droppedEvents\":0"), std::string::npos);
}

TEST(TraceConfig, MaxEventsFromEnv) {
  ::setenv("AMTLCE_TRACE", "cap_test.json", 1);
  ::setenv("AMTLCE_TRACE_MAX_EVENTS", "12345", 1);
  EXPECT_EQ(TraceConfig::from_env().max_events, 12345u);
  ::setenv("AMTLCE_TRACE_MAX_EVENTS", "0", 1);  // nonsense: keep default
  EXPECT_EQ(TraceConfig::from_env().max_events,
            TraceConfig::kDefaultMaxEvents);
  ::setenv("AMTLCE_TRACE_MAX_EVENTS", "banana", 1);
  EXPECT_EQ(TraceConfig::from_env().max_events,
            TraceConfig::kDefaultMaxEvents);
  ::unsetenv("AMTLCE_TRACE_MAX_EVENTS");
  EXPECT_EQ(TraceConfig::from_env().max_events,
            TraceConfig::kDefaultMaxEvents);
  ::unsetenv("AMTLCE_TRACE");
}

TEST(TraceConfig, DisabledWithoutEnv) {
  ::unsetenv("AMTLCE_TRACE");
  EXPECT_FALSE(TraceConfig::from_env().enabled());
  des::Engine eng;
  EXPECT_EQ(Tracer::attach_from_env(eng), nullptr);
  EXPECT_EQ(eng.trace_sink(), nullptr);
}

TEST(TraceConfig, AttachFromEnvInstallsSink) {
  ::setenv("AMTLCE_TRACE", "attach_test.json", 1);
  {
    des::Engine eng;
    const auto tracer = Tracer::attach_from_env(eng);
    ASSERT_NE(tracer, nullptr);
    EXPECT_EQ(eng.trace_sink(), tracer.get());
  }  // destructor writes the (empty) trace
  ::unsetenv("AMTLCE_TRACE");
  // Repeated attaches in one process suffix .1, .2, ...; this binary only
  // attaches once, but clean up defensively.
  std::remove("attach_test.json");
  std::remove("attach_test.json.1");
}

}  // namespace
