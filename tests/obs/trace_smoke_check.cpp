// Trace smoke validator: reads each file named on the command line and
// verifies it is one complete, well-formed JSON value containing a
// traceEvents array.  Paired (via CTest fixtures) with a run of
// examples/comm_thread_study under AMTLCE_TRACE.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/trace.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s trace.json [trace.json...]\n", argv[0]);
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in.good()) {
      std::fprintf(stderr, "FAIL %s: cannot open\n", argv[i]);
      rc = 1;
      continue;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    if (!obs::json_parse_ok(text)) {
      std::fprintf(stderr, "FAIL %s: malformed JSON\n", argv[i]);
      rc = 1;
    } else if (text.find("\"traceEvents\"") == std::string::npos) {
      std::fprintf(stderr, "FAIL %s: no traceEvents array\n", argv[i]);
      rc = 1;
    } else if (text.find("\"ph\":\"X\"") == std::string::npos) {
      std::fprintf(stderr, "FAIL %s: no complete (ph:X) events\n", argv[i]);
      rc = 1;
    } else {
      std::printf("OK   %s (%zu bytes)\n", argv[i], text.size());
    }
  }
  return rc;
}
