#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "des/engine.hpp"

namespace {

using des::Engine;
using net::Fabric;
using net::FabricConfig;
using net::Message;

// A config with round numbers so expected times are easy to compute:
// 10 GB/s links, 1 us wire latency, no hop cost, 10M msg/s (100 ns gap).
FabricConfig simple_config() {
  FabricConfig cfg;
  cfg.link_bandwidth_Bps = 10e9;
  cfg.wire_latency = 1000;
  cfg.per_hop_latency = 0;
  cfg.nodes_per_switch = 1024;
  cfg.nic_msg_rate = 10e6;
  return cfg;
}

Message msg(net::NodeId src, net::NodeId dst, std::uint64_t bytes) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.wire_bytes = bytes;
  return m;
}

TEST(Fabric, SingleMessageLatencyAndBandwidth) {
  Engine eng;
  Fabric fab(eng, 2, simple_config());
  des::Time delivered = -1;
  fab.nic(1).set_deliver_handler([&](Message&&) { delivered = eng.now(); });
  fab.nic(0).set_deliver_handler([](Message&&) {});
  // 100000 bytes at 10 GB/s = 10 us serialization; + 1 us latency.
  fab.nic(0).send(msg(0, 1, 100000));
  eng.run();
  EXPECT_EQ(delivered, 10 * des::kMicrosecond + 1 * des::kMicrosecond);
}

TEST(Fabric, SentHandlerFiresAtEgressEnd) {
  Engine eng;
  Fabric fab(eng, 2, simple_config());
  fab.nic(1).set_deliver_handler([](Message&&) {});
  des::Time sent_at = -1;
  fab.nic(0).send(msg(0, 1, 100000), [&] { sent_at = eng.now(); });
  eng.run();
  EXPECT_EQ(sent_at, 10 * des::kMicrosecond);
}

TEST(Fabric, EgressSerializesBackToBackMessages) {
  Engine eng;
  Fabric fab(eng, 2, simple_config());
  std::vector<des::Time> deliveries;
  fab.nic(1).set_deliver_handler(
      [&](Message&&) { deliveries.push_back(eng.now()); });
  fab.nic(0).send(msg(0, 1, 100000));
  fab.nic(0).send(msg(0, 1, 100000));
  eng.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], 11 * des::kMicrosecond);
  // Second message starts serializing only at 10 us.
  EXPECT_EQ(deliveries[1], 21 * des::kMicrosecond);
}

TEST(Fabric, MessageRateGapLimitsSmallMessages) {
  Engine eng;
  Fabric fab(eng, 2, simple_config());
  std::vector<des::Time> deliveries;
  fab.nic(1).set_deliver_handler(
      [&](Message&&) { deliveries.push_back(eng.now()); });
  // 8-byte messages: serialization ~1 ns but the 100 ns message gap rules.
  for (int i = 0; i < 10; ++i) fab.nic(0).send(msg(0, 1, 8));
  eng.run();
  ASSERT_EQ(deliveries.size(), 10u);
  for (std::size_t i = 1; i < deliveries.size(); ++i) {
    EXPECT_EQ(deliveries[i] - deliveries[i - 1], 100);
  }
}

TEST(Fabric, IngressSerializesConcurrentSenders) {
  Engine eng;
  Fabric fab(eng, 3, simple_config());
  std::vector<des::Time> deliveries;
  fab.nic(2).set_deliver_handler(
      [&](Message&&) { deliveries.push_back(eng.now()); });
  // Two senders inject 100 KB each simultaneously; the receiver port must
  // serialize them: first at 11 us, second 10 us later.
  fab.nic(0).send(msg(0, 2, 100000));
  fab.nic(1).send(msg(1, 2, 100000));
  eng.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], 11 * des::kMicrosecond);
  EXPECT_EQ(deliveries[1], 21 * des::kMicrosecond);
}

TEST(Fabric, DeliveryPreservesHeaderAndPayload) {
  Engine eng;
  Fabric fab(eng, 2, simple_config());
  Message got;
  fab.nic(1).set_deliver_handler([&](Message&& m) { got = std::move(m); });
  Message m = msg(0, 1, 64);
  m.hdr.proto = net::kProtoMpi;
  m.hdr.kind = 3;
  m.hdr.tag = 0xDEAD;
  m.hdr.seq = 42;
  m.hdr.size = 5;
  m.hdr.imm[2] = 0xBEEF;
  const char text[] = "hello";
  m.payload = net::make_payload(text, sizeof text);
  fab.nic(0).send(std::move(m));
  eng.run();
  EXPECT_EQ(got.hdr.proto, net::kProtoMpi);
  EXPECT_EQ(got.hdr.kind, 3);
  EXPECT_EQ(got.hdr.tag, 0xDEADu);
  EXPECT_EQ(got.hdr.seq, 42u);
  EXPECT_EQ(got.hdr.size, 5u);
  EXPECT_EQ(got.hdr.imm[2], 0xBEEFu);
  ASSERT_NE(got.payload, nullptr);
  EXPECT_EQ(0, std::memcmp(got.payload->data(), text, sizeof text));
}

TEST(Fabric, PayloadCopyIsIndependentOfSourceBuffer) {
  Engine eng;
  Fabric fab(eng, 2, simple_config());
  std::vector<char> buf(16, 'a');
  Message m = msg(0, 1, 16);
  m.payload = net::make_payload(buf.data(), buf.size());
  std::fill(buf.begin(), buf.end(), 'b');  // reuse the app buffer
  Message got;
  fab.nic(1).set_deliver_handler([&](Message&& mm) { got = std::move(mm); });
  fab.nic(0).send(std::move(m));
  eng.run();
  ASSERT_NE(got.payload, nullptr);
  EXPECT_EQ(static_cast<char>((*got.payload)[0]), 'a');
}

TEST(Fabric, LoopbackDelivers) {
  Engine eng;
  Fabric fab(eng, 2, simple_config());
  des::Time delivered = -1;
  fab.nic(0).set_deliver_handler([&](Message&&) { delivered = eng.now(); });
  fab.nic(0).send(msg(0, 0, 1000));
  eng.run();
  EXPECT_GT(delivered, 0);
  EXPECT_LT(delivered, 2 * des::kMicrosecond);
}

TEST(Fabric, LoopbackAndNicPathsAgreeOnSentSemantics) {
  // on_sent means "the last byte left the sender; the send buffer is
  // reusable" on BOTH paths.  The loopback path used to fire it at
  // delivery time (after the loopback latency), overstating sender-side
  // completion latency for self-sends.
  Engine eng;
  FabricConfig cfg = simple_config();
  cfg.loopback_bandwidth_Bps = cfg.link_bandwidth_Bps;  // same serialization
  cfg.loopback_latency = 5 * des::kMicrosecond;         // and a visible gap
  Fabric fab(eng, 2, cfg);
  des::Time loop_sent = -1, loop_delivered = -1;
  des::Time wire_sent = -1, wire_delivered = -1;
  fab.nic(0).set_deliver_handler([&](Message&&) { loop_delivered = eng.now(); });
  fab.nic(1).set_deliver_handler([&](Message&&) { wire_delivered = eng.now(); });
  const std::uint64_t bytes = 100000;  // 10 us at 10 GB/s: above msg-rate gap
  fab.nic(0).send(msg(0, 0, bytes), [&]() { loop_sent = eng.now(); });
  fab.nic(0).send(msg(0, 1, bytes), [&]() { wire_sent = eng.now(); });
  eng.run();
  // The loopback copy leaves the sender when its serialization finishes,
  // exactly like the NIC path's egress — not at delivery.
  const auto copy_time = des::transfer_time(bytes, cfg.loopback_bandwidth_Bps);
  EXPECT_EQ(loop_sent, copy_time);
  EXPECT_EQ(loop_delivered, loop_sent + cfg.loopback_latency);
  EXPECT_LT(loop_sent, loop_delivered);
  // NIC path for comparison: on_sent at egress_end, delivery later.  (The
  // second send queued behind the loopback copy?  No: loopback skips the
  // egress pipe, so the wire send's egress starts at t=0 too.)
  EXPECT_EQ(wire_sent, fab.occupancy(bytes));
  EXPECT_LT(wire_sent, wire_delivered);
}

TEST(Fabric, FatTreeHops) {
  Engine eng;
  FabricConfig cfg = simple_config();
  cfg.nodes_per_switch = 4;
  cfg.per_hop_latency = 100;
  Fabric fab(eng, 16, cfg);
  EXPECT_EQ(fab.hops(0, 0), 0);
  EXPECT_EQ(fab.hops(0, 3), 1);   // same leaf
  EXPECT_EQ(fab.hops(0, 4), 3);   // cross-leaf
  EXPECT_EQ(fab.latency(0, 3), 1000 + 100);
  EXPECT_EQ(fab.latency(0, 4), 1000 + 300);
}

TEST(Fabric, StatsCountMessagesAndBytes) {
  Engine eng;
  Fabric fab(eng, 2, simple_config());
  fab.nic(1).set_deliver_handler([](Message&&) {});
  fab.nic(0).send(msg(0, 1, 100));
  fab.nic(0).send(msg(0, 1, 200));
  eng.run();
  EXPECT_EQ(fab.nic(0).stats().msgs_sent, 2u);
  EXPECT_EQ(fab.nic(0).stats().bytes_sent, 300u);
  EXPECT_EQ(fab.nic(1).stats().msgs_received, 2u);
  EXPECT_EQ(fab.nic(1).stats().bytes_received, 300u);
  EXPECT_EQ(fab.total_messages(), 2u);
  EXPECT_EQ(fab.total_bytes(), 300u);
}

// Property sweep: bytes are conserved for random traffic patterns.
class FabricConservation : public ::testing::TestWithParam<int> {};

TEST_P(FabricConservation, BytesSentEqualBytesReceived) {
  Engine eng;
  const int nodes = GetParam();
  Fabric fab(eng, nodes, simple_config());
  std::vector<std::uint64_t> received(static_cast<std::size_t>(nodes), 0);
  for (int n = 0; n < nodes; ++n) {
    fab.nic(n).set_deliver_handler([&received, n](Message&& m) {
      received[static_cast<std::size_t>(n)] += m.wire_bytes;
    });
  }
  des::Rng rng(des::derive_seed(17, static_cast<std::uint64_t>(nodes)));
  std::uint64_t sent_total = 0;
  for (int i = 0; i < 500; ++i) {
    const auto src = static_cast<net::NodeId>(rng.below(
        static_cast<std::uint64_t>(nodes)));
    auto dst = static_cast<net::NodeId>(
        rng.below(static_cast<std::uint64_t>(nodes)));
    const std::uint64_t bytes = 8 + rng.below(1 << 16);
    sent_total += bytes;
    eng.schedule_at(static_cast<des::Time>(rng.below(1'000'000)),
                    [&fab, src, dst, bytes]() {
                      Message m;
                      m.src = src;
                      m.dst = dst;
                      m.wire_bytes = bytes;
                      fab.nic(src).send(std::move(m));
                    });
  }
  eng.run();
  std::uint64_t recv_total = 0;
  for (auto r : received) recv_total += r;
  EXPECT_EQ(recv_total, sent_total);
  EXPECT_EQ(fab.total_bytes(), sent_total);
}

INSTANTIATE_TEST_SUITE_P(Nodes, FabricConservation,
                         ::testing::Values(2, 3, 8, 17, 32));

// Property sweep: sustained bandwidth over many messages approaches the
// configured link bandwidth for large messages and the message-rate cap for
// small ones.
class FabricBandwidth : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FabricBandwidth, SustainedRateMatchesModel) {
  Engine eng;
  Fabric fab(eng, 2, simple_config());
  const std::uint64_t bytes = GetParam();
  constexpr int kCount = 1000;
  des::Time last = 0;
  int delivered = 0;
  fab.nic(1).set_deliver_handler([&](Message&&) {
    last = eng.now();
    ++delivered;
  });
  for (int i = 0; i < kCount; ++i) fab.nic(0).send(msg(0, 1, bytes));
  eng.run();
  ASSERT_EQ(delivered, kCount);
  const double seconds = des::to_seconds(last);
  const double achieved_Bps =
      static_cast<double>(bytes) * kCount / seconds;
  const double serial = static_cast<double>(bytes) / 10e9;
  const double gap = 1.0 / 10e6;
  const double expected_Bps =
      static_cast<double>(bytes) / std::max(serial, gap);
  EXPECT_NEAR(achieved_Bps / expected_Bps, 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FabricBandwidth,
                         ::testing::Values(64, 1024, 8192, 65536, 1 << 20));

}  // namespace
